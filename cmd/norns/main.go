// norns is the user command-line client: submit and monitor
// asynchronous I/O tasks against the local urd daemon.
//
// Usage:
//
//	norns -socket /tmp/norns.sock dataspaces
//	norns copy nvme0://results/out.dat lustre://archive/out.dat
//	norns move nvme0://scratch/a lustre://keep/a
//	norns remove nvme0://scratch/tmp
//	norns wait 7
//	norns status 7
//	norns cancel 7
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/task"
)

func parseRef(ref string) (task.Resource, error) {
	i := strings.Index(ref, "://")
	if i <= 0 {
		return task.Resource{}, fmt.Errorf("malformed reference %q (want dataspace://path)", ref)
	}
	ds, path := ref[:i+3], ref[i+3:]
	// node@dataspace://path targets a remote node.
	if at := strings.Index(ds, "@"); at > 0 {
		return task.RemotePosixPath(ds[:at], ds[at+1:], path), nil
	}
	return task.PosixPath(ds, path), nil
}

func main() {
	socket := flag.String("socket", "/tmp/norns.sock", "user socket path")
	timeout := flag.Duration("timeout", 5*time.Minute, "wait timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: norns [-socket PATH] COMMAND [ARGS]")
	}

	c, err := norns.Dial(*socket)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *socket, err)
	}
	defer c.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "dataspaces":
		infos, err := c.GetDataspaceInfo()
		if err != nil {
			log.Fatal(err)
		}
		for _, ds := range infos {
			fmt.Printf("%-12s backend=%d mount=%s used=%d capacity=%d\n",
				ds.ID, ds.Backend, ds.Mount, ds.UsedBytes, ds.Capacity)
		}
	case "copy", "move":
		if len(rest) < 2 {
			log.Fatalf("usage: %s SRC DST", cmd)
		}
		src, err := parseRef(rest[0])
		if err != nil {
			log.Fatal(err)
		}
		dst, err := parseRef(rest[1])
		if err != nil {
			log.Fatal(err)
		}
		kind := norns.Copy
		if cmd == "move" {
			kind = norns.Move
		}
		tk := norns.NewIOTask(kind, src, dst)
		if err := c.Submit(&tk); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %d submitted\n", tk.ID)
	case "remove":
		if len(rest) < 1 {
			log.Fatal("usage: remove REF")
		}
		src, err := parseRef(rest[0])
		if err != nil {
			log.Fatal(err)
		}
		tk := norns.NewIOTask(norns.Remove, src, task.Resource{})
		if err := c.Submit(&tk); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %d submitted\n", tk.ID)
	case "cancel":
		if len(rest) < 1 {
			log.Fatal("usage: cancel TASK_ID")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("task ID %q: %v", rest[0], err)
		}
		tk := norns.IOTask{ID: id}
		stats, err := c.Cancel(&tk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %d: %s moved=%d/%d\n", id, stats.Status, stats.MovedBytes, stats.TotalBytes)
	case "wait", "status":
		if len(rest) < 1 {
			log.Fatalf("usage: %s TASK_ID", cmd)
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("task ID %q: %v", rest[0], err)
		}
		tk := norns.IOTask{ID: id}
		if cmd == "wait" {
			if err := c.Wait(&tk, *timeout); err != nil {
				log.Fatal(err)
			}
		}
		stats, err := c.Error(&tk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %d: %s moved=%d/%d", id, stats.Status, stats.MovedBytes, stats.TotalBytes)
		if stats.Err != "" {
			fmt.Printf(" error=%q", stats.Err)
		}
		fmt.Println()
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
