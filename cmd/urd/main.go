// urd is the NORNS resource-control daemon: one instance per compute
// node, serving the user API on one AF_UNIX socket and the control API
// on another, with an optional fabric listener for node-to-node
// transfers.
//
// Usage:
//
//	urd -node node001 -user /tmp/norns.sock -control /tmp/nornsctl.sock \
//	    -workers 4 -policy fcfs -state-dir /var/lib/urd \
//	    -transfer-streams 4 -segment-size 8M -max-bandwidth 500M \
//	    -fabric ofi+tcp -fabric-addr 0.0.0.0:4710
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/ngioproject/norns-go/internal/gateway/auth"
	"github.com/ngioproject/norns-go/internal/journal"
	"github.com/ngioproject/norns-go/internal/queue"
	"github.com/ngioproject/norns-go/internal/urd"
)

// parseSize parses a byte count with an optional K/M/G suffix (powers
// of 1024), e.g. "8M" or "262144".
func parseSize(s string) (int64, error) {
	if s == "" || s == "0" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

func main() {
	var (
		node        = flag.String("node", hostnameOr("node001"), "cluster node name")
		userSock    = flag.String("user", "/tmp/norns.sock", "user API socket path")
		ctlSock     = flag.String("control", "/tmp/nornsctl.sock", "control API socket path")
		workers     = flag.Int("workers", 4, "transfer worker threads per shard")
		policy      = flag.String("policy", "fcfs", "task queue policy: fcfs|sjf|priority|fair-share")
		shardQueue  = flag.Int("shard-queue", 0, "max pending tasks per shard (0 = unbounded)")
		maxTasks    = flag.Int("max-in-flight", 0, "global cap on queued+running tasks (0 = unbounded)")
		stateDir    = flag.String("state-dir", "", "directory for the durable task journal; on restart, pending and running tasks are re-queued from it (empty = in-memory only)")
		stateSync   = flag.Bool("state-sync", false, "fsync the journal after every group-commit flush (durability over submit latency)")
		jrFlush     = flag.Duration("journal-flush", 0, "journal group-commit window: concurrent records coalesce into one write+fsync per window, at up to this much added submit latency (0 = flush immediately, still coalescing concurrent appends)")
		retain      = flag.Int("retain-tasks", 0, "terminal tasks kept in memory answering status queries before the oldest are retired (0 = default 16384)")
		fabric      = flag.String("fabric", "", "mercury NA plugin for node-to-node transfers (e.g. ofi+tcp); empty disables")
		fabricAddr  = flag.String("fabric-addr", "", "fabric listen address")
		peers       = flag.String("peers", "", "comma-separated node=addr fabric peers")
		streams     = flag.Int("transfer-streams", 0, "concurrent segment streams per transfer (0 = default 4)")
		segSize     = flag.String("segment-size", "", "transfer segment size, e.g. 8M (empty = default 8M); segments parallelize and checkpoint individually")
		autotune    = flag.Bool("autotune", false, "adapt streams/segment-size per route from observed goodput; -transfer-streams/-segment-size become the initial operating point")
		autotuneMin = flag.Int("autotune-min-samples", 0, "transfers observed per operating point before the autotuner scores it (0 = default 2)")
		noOffload   = flag.Bool("no-offload", false, "force local staging onto the portable user-space copy path even when the kernel range-copy offload is available")
		maxBW       = flag.String("max-bandwidth", "", "aggregate transfer bandwidth cap in bytes/s, e.g. 500M (empty = unlimited)")
		bufSize     = flag.String("buf-size", "", "copy/throttle chunk size, e.g. 256K (empty = default 256K); bounds cancel latency")
		cacheDir    = flag.String("cache-dir", "", "directory for the content-addressed staging cache; repeated stage-ins of unchanged segments are served from local disk and delta transfers skip matching segments (empty disables)")
		cacheSize   = flag.String("cache-size", "", "staging-cache size bound, e.g. 4G (empty = default 1G); least-recently-used entries are evicted past it")
		rpcTimeout  = flag.Duration("rpc-timeout", 30*time.Second, "deadline per peer RPC / bulk-stream idle gap (0 = none)")
		eventQueue  = flag.Int("event-queue", 0, "max queued push events per subscriber before coalescing into a gap event (0 = default 256)")
		progressIv  = flag.Duration("progress-interval", 0, "floor between per-task progress-tick events pushed to subscribers (0 = default 100ms)")
		httpAddr    = flag.String("http-addr", "", "TCP address for the HTTP/JSON gateway, e.g. 127.0.0.1:9300 (empty disables; requires -http-token-file)")
		httpToken   = flag.String("http-token-file", "", "file holding the gateway bearer token (mandatory with -http-addr; the gateway refuses to serve unauthenticated)")
		httpMaxBody = flag.String("http-max-body", "", "gateway JSON request body clamp, e.g. 8M (empty = default 8M)")
		retryMax    = flag.Int("retry-max", 0, "default per-task retry budget for transient transfer faults before dead-letter quarantine (0 disables automatic retries)")
		retryBO     = flag.Duration("retry-backoff", 0, "base of the exponential retry backoff, doubled per attempt with +/-25% jitter (0 = default 250ms)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain bound: running transfers get this long to finish before being checkpointed and handed to the next daemon (0 = wait indefinitely)")
	)
	flag.Parse()

	segBytes, err := parseSize(*segSize)
	if err != nil {
		log.Fatalf("bad -segment-size %q: %v", *segSize, err)
	}
	bwBytes, err := parseSize(*maxBW)
	if err != nil {
		log.Fatalf("bad -max-bandwidth %q: %v", *maxBW, err)
	}
	bufBytes, err := parseSize(*bufSize)
	if err != nil {
		log.Fatalf("bad -buf-size %q: %v", *bufSize, err)
	}
	cacheBytes, err := parseSize(*cacheSize)
	if err != nil {
		log.Fatalf("bad -cache-size %q: %v", *cacheSize, err)
	}
	httpBodyBytes, err := parseSize(*httpMaxBody)
	if err != nil {
		log.Fatalf("bad -http-max-body %q: %v", *httpMaxBody, err)
	}

	var factory func() queue.Policy
	switch *policy {
	case "fcfs":
		factory = func() queue.Policy { return queue.NewFCFS() }
	case "sjf":
		factory = func() queue.Policy { return queue.NewSJF(nil) }
	case "priority":
		factory = func() queue.Policy { return queue.NewPriority() }
	case "fair-share":
		factory = func() queue.Policy { return queue.NewFairShare() }
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	cfg := urd.Config{
		NodeName:           *node,
		UserSocket:         *userSock,
		ControlSocket:      *ctlSock,
		Workers:            *workers,
		PolicyFactory:      factory,
		MaxShardQueue:      *shardQueue,
		MaxInFlight:        *maxTasks,
		StateDir:           *stateDir,
		JournalOptions:     journal.Options{Sync: *stateSync, FlushInterval: *jrFlush},
		RetainTasks:        *retain,
		BufSize:            int(bufBytes),
		SegmentSize:        segBytes,
		TransferStreams:    *streams,
		MaxBandwidthBps:    bwBytes,
		Autotune:           *autotune,
		AutotuneMinSamples: *autotuneMin,
		DisableOffload:     *noOffload,
		CacheDir:           *cacheDir,
		CacheSize:          cacheBytes,
		RPCTimeout:         *rpcTimeout,
		EventQueue:         *eventQueue,
		ProgressInterval:   *progressIv,
		RetryMax:           *retryMax,
		RetryBackoff:       *retryBO,
	}
	if *httpAddr != "" {
		// Fail fast: gateway.New would reject an empty token anyway, but
		// a clear message beats a wrapped one. The token travels via file
		// so it never appears in `ps` output or shell history.
		if *httpToken == "" {
			log.Fatalf("-http-addr requires -http-token-file (the gateway refuses to serve unauthenticated)")
		}
		tok, err := auth.LoadFile(*httpToken)
		if err != nil {
			log.Fatalf("urd: %v", err)
		}
		cfg.HTTPAddr = *httpAddr
		cfg.HTTPToken = tok.Secret()
		cfg.HTTPMaxBody = httpBodyBytes
	}
	if *fabric != "" {
		resolver := urd.NewStaticResolver()
		for _, pair := range strings.Split(*peers, ",") {
			if pair == "" {
				continue
			}
			name, addr, ok := strings.Cut(pair, "=")
			if !ok {
				log.Fatalf("malformed peer %q (want node=addr)", pair)
			}
			resolver.Set(name, addr)
		}
		cfg.Fabric = *fabric
		cfg.FabricAddr = *fabricAddr
		cfg.Resolver = resolver
	}

	// Stale sockets from a previous run would fail the bind.
	os.Remove(*userSock)
	os.Remove(*ctlSock)

	d, err := urd.New(cfg)
	if err != nil {
		log.Fatalf("urd: %v", err)
	}
	fmt.Printf("%s on %s: user=%s control=%s", urd.Version, *node, *userSock, *ctlSock)
	if addr := d.FabricAddr(); addr != "" {
		fmt.Printf(" fabric=%s", addr)
	}
	// The startup line names the bound address, never the token.
	if addr := d.HTTPAddr(); addr != "" {
		fmt.Printf(" http=%s", addr)
	}
	if *stateDir != "" {
		rec := d.Recovered()
		fmt.Printf(" journal=%s recovered=%d", *stateDir, rec.Requeued())
	}
	fmt.Println()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		if s == syscall.SIGTERM {
			// Graceful drain: stop admission, leave queued tasks journaled
			// Pending, give running transfers -drain-timeout to finish,
			// and seal the journal with the clean-shutdown marker so the
			// next daemon replays fast and re-copies nothing.
			fmt.Println("draining")
			d.Shutdown(*drainWait)
		} else {
			fmt.Println("shutting down")
			d.Close()
		}
	case <-d.Done():
		// `nornsctl shutdown` closed the daemon over the control API;
		// without this arm the process would linger on the signal wait.
		fmt.Println("shut down via control API")
	}
}

func hostnameOr(fallback string) string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return fallback
}
