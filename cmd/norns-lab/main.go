// norns-lab runs deterministic failure scenarios against the real
// daemon: the sim/simnet discrete-event stack models the cluster shape
// (fig-6/7-style tables) while fault-injecting shims (urd.Hooks) drive
// crash, partition, slow-disk and clock-skew schedules through the
// production registry, shards, journal, governor, tuner and event hub.
//
// Usage:
//
//	norns-lab -list
//	norns-lab -run all -seed 42
//	norns-lab -run crash-mid-transfer -seed 7
//	norns-lab -run class:partition -seed 3 -json
//	norns-lab -run soak -tasks 1000000 -measure
//
// Output for a given (-run, -seed) pair is deterministic: the
// normalized logs and model tables of two identical invocations are
// byte-for-byte equal. -measure adds wall-clock tables (soak
// throughput, governor aggregate) that are explicitly outside that
// contract. On scenario failure the process exits 1 after writing a
// repro bundle (spec+seed, log, journal state) under -bundle-dir.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/ngioproject/norns-go/internal/lab"
	"github.com/ngioproject/norns-go/internal/metrics"
)

func usageExit(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "norns-lab: "+format+"\n", args...)
	names := make([]string, 0)
	classes := map[string]bool{}
	for _, s := range lab.Scenarios() {
		names = append(names, s.Name)
		classes[s.Class] = true
	}
	cls := make([]string, 0, len(classes))
	for c := range classes {
		cls = append(cls, "class:"+c)
	}
	sort.Strings(cls)
	fmt.Fprintf(os.Stderr, "scenarios: all, %s\n", strings.Join(names, ", "))
	fmt.Fprintf(os.Stderr, "classes: %s\n", strings.Join(cls, ", "))
	flag.Usage()
	os.Exit(2)
}

func main() {
	run := flag.String("run", "", "scenario name, comma-separated names, class:<class>, or all")
	list := flag.Bool("list", false, "list built-in scenarios and exit")
	seed := flag.Int64("seed", 1, "root seed; identical (run, seed) pairs produce identical output")
	asJSON := flag.Bool("json", false, "emit results as a metrics.Report JSON document")
	measure := flag.Bool("measure", false, "add wall-clock measured tables (outside the determinism contract)")
	tasks := flag.Int("tasks", 0, "override the soak scenario's task count (0 = spec default)")
	bundleDir := flag.String("bundle-dir", "lab-bundles", "directory for repro bundles of failing scenarios")
	note := flag.String("note", "", "free-form annotation stored in the -json envelope")
	flag.Parse()

	if *list {
		for _, s := range lab.Scenarios() {
			fmt.Printf("%-20s %-10s %s\n", s.Name, s.Class, s.Desc)
		}
		return
	}
	if *run == "" {
		usageExit("-run is required (or -list)")
	}

	var selected []*lab.Spec
	for _, sel := range strings.Split(*run, ",") {
		sel = strings.TrimSpace(sel)
		switch {
		case sel == "":
		case sel == "all":
			selected = lab.Scenarios()
		case strings.HasPrefix(sel, "class:"):
			specs := lab.ByClass(strings.TrimPrefix(sel, "class:"))
			if len(specs) == 0 {
				usageExit("unknown scenario class %q", sel)
			}
			selected = append(selected, specs...)
		default:
			s := lab.ByName(sel)
			if s == nil {
				usageExit("unknown scenario %q", sel)
			}
			selected = append(selected, s)
		}
	}
	if len(selected) == 0 {
		usageExit("-run selected no scenarios")
	}

	runner := &lab.Runner{Seed: *seed, Measure: *measure, TaskOverride: *tasks}
	rep := metrics.NewReport(*note)
	failed := 0
	for _, spec := range selected {
		res, err := runner.Run(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "norns-lab: %s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		for _, line := range res.Log {
			if !*asJSON {
				fmt.Println(line)
			}
		}
		for _, t := range res.Tables {
			rep.Add(t)
			if !*asJSON {
				fmt.Println()
				fmt.Println(t)
			}
		}
		if !*asJSON {
			fmt.Println()
		}
		if !res.Passed {
			failed++
			dir := filepath.Join(*bundleDir, fmt.Sprintf("%s-seed%d", spec.Name, *seed))
			if err := lab.WriteBundle(dir, res); err != nil {
				fmt.Fprintf(os.Stderr, "norns-lab: writing bundle: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "norns-lab: %s FAILED — repro bundle at %s\n", spec.Name, dir)
			}
		}
	}
	if *asJSON {
		if err := rep.Encode(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "norns-lab: %v\n", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "norns-lab: %d of %d scenarios failed\n", failed, len(selected))
		os.Exit(1)
	}
}
