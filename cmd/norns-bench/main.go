// norns-bench regenerates every table and figure of the paper's
// evaluation section (see EXPERIMENTS.md for the mapping and the
// expected shapes).
//
// Usage:
//
//	norns-bench -run all
//	norns-bench -run fig1a,tab3 -reps 25
//	norns-bench -run hotpath -json > BENCH.json
//	norns-bench -run hotpath -compare BENCH_PR5.json
//
// -json emits the selected tables as one machine-readable JSON document
// instead of text, seeding the repo's performance trajectory
// (BENCH_PR5.json); -compare re-runs the selected experiments and
// renders a benchstat-style old/new delta table against a committed
// baseline document.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/ngioproject/norns-go/internal/experiments"
	"github.com/ngioproject/norns-go/internal/metrics"
)

// knownExperiments is the -run vocabulary. A selector outside it exits
// non-zero with usage instead of silently running nothing.
var knownExperiments = []string{
	"fig1a", "fig1b", "fig4", "fig5", "fig6", "fig7", "fig8",
	"tab3", "tab4", "tab5",
	"streams", "batch", "hotpath", "localcopy", "autotune", "ablations", "cache",
	"gateway",
}

func main() {
	run := flag.String("run", "all", "comma-separated experiments: "+strings.Join(knownExperiments, ","))
	reps := flag.Int("reps", 0, "repetitions for the variability figures (0 = experiment default)")
	reqs := flag.Int("reqs", 0, "requests per client for the request-rate figures (0 = default; the paper used 50000)")
	asJSON := flag.Bool("json", false, "emit results as one JSON document instead of text tables")
	compare := flag.String("compare", "", "baseline JSON document (from -json) to render an old/new comparison against")
	note := flag.String("note", "", "free-form annotation stored in the -json envelope")
	flag.Parse()

	known := map[string]bool{"all": true}
	for _, name := range knownExperiments {
		known[name] = true
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			fmt.Fprintf(os.Stderr, "norns-bench: unknown experiment %q\n", name)
			sort.Strings(knownExperiments)
			fmt.Fprintf(os.Stderr, "known experiments: all,%s\n", strings.Join(knownExperiments, ","))
			flag.Usage()
			os.Exit(2)
		}
		want[name] = true
	}
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "norns-bench: -run selected no experiments")
		flag.Usage()
		os.Exit(2)
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	rep := metrics.NewReport(*note)
	show := func(t *metrics.Table, err error) {
		if err != nil {
			log.Fatalf("experiment failed: %v", err)
		}
		rep.Add(t)
		if !*asJSON && *compare == "" {
			fmt.Println(t)
		}
	}

	tmp, err := os.MkdirTemp("", "norns-bench")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	if selected("fig1a") {
		show(experiments.Fig1a(*reps), nil)
	}
	if selected("fig1b") {
		show(experiments.Fig1b(*reps), nil)
	}
	if selected("fig4") {
		show(experiments.Fig4(tmp, *reqs))
	}
	if selected("fig5") {
		show(experiments.Fig5(*reqs))
	}
	if selected("fig6") {
		show(experiments.Fig6(), nil)
	}
	if selected("fig7") {
		show(experiments.Fig7(), nil)
	}
	if selected("fig8") {
		show(experiments.Fig8(), nil)
	}
	if selected("tab3") {
		show(experiments.Table3())
	}
	if selected("tab4") {
		show(experiments.Table4())
	}
	if selected("tab5") {
		show(experiments.Table5())
	}
	if selected("streams") {
		show(experiments.AblationStreams(tmp, 0))
	}
	if selected("batch") {
		show(experiments.BatchSubmit(tmp, *reqs))
	}
	if selected("gateway") {
		show(experiments.GatewaySubmit(tmp, *reqs))
	}
	if selected("hotpath") {
		show(experiments.HotPath(tmp, *reqs))
		show(experiments.HotPathWire(), nil)
	}
	if selected("localcopy") {
		show(experiments.LocalCopy(tmp, 0))
	}
	if selected("autotune") {
		show(experiments.AutotuneConverge(tmp, 0))
		show(experiments.AutotuneCapCeiling(tmp))
	}
	if selected("cache") {
		show(experiments.RepeatStageIn(tmp))
	}
	if selected("ablations") {
		show(experiments.AblationScheduler(tmp, 0))
		show(experiments.AblationWorkers(tmp, 0))
		show(experiments.AblationBufSize(0))
		show(experiments.AblationDataAware())
		show(experiments.AblationStagingTier())
	}

	if *compare != "" {
		baseline, err := metrics.LoadReport(*compare)
		if err != nil {
			log.Fatalf("baseline %s: %v", *compare, err)
		}
		for _, t := range rep.Tables {
			fmt.Println(compareTables(baseline.FindTable(t.Title), t))
		}
		return
	}
	if *asJSON {
		if err := rep.Encode(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// compareTables renders a benchstat-style old/new delta table: rows are
// matched on their leading (non-numeric) key cells and each numeric
// column becomes "old -> new (±delta%)". A row or table absent from the
// baseline renders the new values alone.
func compareTables(old, cur *metrics.Table) *metrics.Table {
	out := metrics.NewTable(cur.Title+" — vs baseline", cur.Headers...)
	for _, row := range cur.Rows {
		orow := matchRow(old, cur, row)
		cells := make([]any, len(row))
		for i, c := range row {
			nv, nok := parseNumeric(c)
			if !nok || i == 0 || orow == nil || i >= len(orow) {
				cells[i] = c
				continue
			}
			ov, ook := parseNumeric(orow[i])
			if !ook {
				cells[i] = c
				continue
			}
			delta := "~"
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			}
			cells[i] = fmt.Sprintf("%s -> %s (%s)", orow[i], c, delta)
		}
		out.AddRow(cells...)
	}
	return out
}

// matchRow finds the baseline row with the same identity cells: every
// textual cell, plus the leading cell even when numeric (sweep keys
// like a client count render as numbers but are identity, not
// measurements).
func matchRow(old, cur *metrics.Table, row []string) []string {
	if old == nil {
		return nil
	}
	for _, orow := range old.Rows {
		if len(orow) != len(row) {
			continue
		}
		match := true
		for i := range row {
			_, numeric := parseNumeric(row[i])
			if (!numeric || i == 0) && orow[i] != row[i] {
				match = false
				break
			}
		}
		if match {
			return orow
		}
	}
	return nil
}

func parseNumeric(s string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return v, err == nil
}
