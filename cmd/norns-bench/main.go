// norns-bench regenerates every table and figure of the paper's
// evaluation section (see EXPERIMENTS.md for the mapping and the
// expected shapes).
//
// Usage:
//
//	norns-bench -run all
//	norns-bench -run fig1a,tab3 -reps 25
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/ngioproject/norns-go/internal/experiments"
	"github.com/ngioproject/norns-go/internal/metrics"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiments: fig1a,fig1b,fig4,fig5,fig6,fig7,fig8,tab3,tab4,tab5,streams,batch,ablations")
	reps := flag.Int("reps", 0, "repetitions for the variability figures (0 = experiment default)")
	reqs := flag.Int("reqs", 0, "requests per client for the request-rate figures (0 = default; the paper used 50000)")
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	show := func(t *metrics.Table, err error) {
		if err != nil {
			log.Fatalf("experiment failed: %v", err)
		}
		fmt.Println(t)
	}

	tmp, err := os.MkdirTemp("", "norns-bench")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	if selected("fig1a") {
		show(experiments.Fig1a(*reps), nil)
	}
	if selected("fig1b") {
		show(experiments.Fig1b(*reps), nil)
	}
	if selected("fig4") {
		show(experiments.Fig4(tmp, *reqs))
	}
	if selected("fig5") {
		show(experiments.Fig5(*reqs))
	}
	if selected("fig6") {
		show(experiments.Fig6(), nil)
	}
	if selected("fig7") {
		show(experiments.Fig7(), nil)
	}
	if selected("fig8") {
		show(experiments.Fig8(), nil)
	}
	if selected("tab3") {
		show(experiments.Table3())
	}
	if selected("tab4") {
		show(experiments.Table4())
	}
	if selected("tab5") {
		show(experiments.Table5())
	}
	if selected("streams") {
		show(experiments.AblationStreams(tmp, 0))
	}
	if selected("batch") {
		show(experiments.BatchSubmit(tmp, *reqs))
	}
	if selected("ablations") {
		show(experiments.AblationScheduler(tmp, 0))
		show(experiments.AblationWorkers(tmp, 0))
		show(experiments.AblationBufSize(0))
		show(experiments.AblationDataAware())
		show(experiments.AblationStagingTier())
	}
}
