// nornsctl is the administrative command-line client for a urd daemon:
// what the Slurm extensions call programmatically, exposed for
// operators.
//
// Usage:
//
//	nornsctl -socket /tmp/nornsctl.sock ping
//	nornsctl status
//	nornsctl register-dataspace nvme0:// nvm /mnt/pmem0
//	nornsctl unregister-dataspace nvme0://
//	nornsctl register-job 42 node001,node002 nvme0://,lustre://
//	nornsctl unregister-job 42
//	nornsctl track nvme0:// on|off
//	nornsctl tracked-non-empty
//	nornsctl cancel 17
//	nornsctl task-status 17
//	nornsctl watch 17
//	nornsctl shutdown
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/task"
)

var backendNames = map[string]uint32{
	"posix-dir":    nornsctl.BackendPosixDir,
	"nvm":          nornsctl.BackendNVM,
	"parallel-fs":  nornsctl.BackendParallelFS,
	"burst-buffer": nornsctl.BackendBurstBuffer,
	"memory":       nornsctl.BackendMemory,
}

// mib renders a byte count in MiB with one decimal.
func mib(n int64) string { return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20)) }

// progressLine renders one watch snapshot.
func progressLine(id uint64, st nornsctl.Stats) string {
	line := fmt.Sprintf("task %d: %s %s/%s", id, st.Status, mib(st.MovedBytes), mib(st.TotalBytes))
	if st.SegmentsTotal > 0 {
		line += fmt.Sprintf(" segments %d/%d", st.SegmentsDone, st.SegmentsTotal)
	}
	if st.BandwidthBps > 0 {
		line += fmt.Sprintf(" %.1f MiB/s", st.BandwidthBps/(1<<20))
	}
	return line
}

func main() {
	socket := flag.String("socket", "/tmp/nornsctl.sock", "control socket path")
	interval := flag.Duration("interval", 500*time.Millisecond, "poll interval for the watch command")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: nornsctl [-socket PATH] COMMAND [ARGS]")
	}

	c, err := nornsctl.Dial(*socket)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *socket, err)
	}
	defer c.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ping":
		if err := c.Ping(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("pong")
	case "status":
		// One round trip serves both the text line and the structured
		// report; older daemons without the latter fall back to Status.
		st, err := c.StatusInfo()
		if err != nil {
			s, ferr := c.Status()
			if ferr != nil {
				log.Fatal(ferr)
			}
			fmt.Println(s)
			break
		}
		fmt.Println(st.Info)
		if st.Journal {
			fmt.Printf("journal: enabled; recovered requeued=%d (pending=%d running=%d) cancelled=%d terminal=%d\n",
				st.RecoveredPending+st.RecoveredRunning, st.RecoveredPending, st.RecoveredRunning,
				st.RecoveredCancelled, st.RecoveredTerminal)
		}
		if st.Autotune {
			if len(st.AutotuneRoutes) == 0 {
				fmt.Println("autotune: enabled; no routes observed yet")
			}
			for _, r := range st.AutotuneRoutes {
				fmt.Printf("autotune: %s -> %s (%s): streams=%d seg=%s goodput=%.1f MiB/s samples=%d %s\n",
					r.In, r.Out, r.Kind, r.Streams, mib(r.SegSize), r.GoodputBps/(1<<20), r.Samples, r.State)
			}
		}
		if st.CacheEnabled {
			fmt.Printf("cache: %s/%s hits=%d misses=%d evictions=%d\n",
				mib(st.CacheBytes), mib(st.CacheCapBytes), st.CacheHits, st.CacheMisses, st.CacheEvictions)
		}
	case "shutdown":
		if err := c.Shutdown(); err != nil {
			log.Fatal(err)
		}
	case "register-dataspace":
		if len(rest) < 2 {
			log.Fatal("usage: register-dataspace ID BACKEND [MOUNT]")
		}
		backend, ok := backendNames[rest[1]]
		if !ok {
			log.Fatalf("unknown backend %q (want posix-dir|nvm|parallel-fs|burst-buffer|memory)", rest[1])
		}
		def := nornsctl.DataspaceDef{ID: rest[0], Backend: backend}
		if len(rest) >= 3 {
			def.Mount = rest[2]
		}
		if err := c.RegisterDataspace(def); err != nil {
			log.Fatal(err)
		}
	case "unregister-dataspace":
		if len(rest) < 1 {
			log.Fatal("usage: unregister-dataspace ID")
		}
		if err := c.UnregisterDataspace(rest[0]); err != nil {
			log.Fatal(err)
		}
	case "register-job":
		if len(rest) < 3 {
			log.Fatal("usage: register-job ID HOST1,HOST2 DS1,DS2")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("job ID %q: %v", rest[0], err)
		}
		def := nornsctl.JobDef{ID: id, Hosts: strings.Split(rest[1], ",")}
		for _, ds := range strings.Split(rest[2], ",") {
			def.Limits = append(def.Limits, nornsctl.JobLimit{Dataspace: ds})
		}
		if err := c.RegisterJob(def); err != nil {
			log.Fatal(err)
		}
	case "unregister-job":
		if len(rest) < 1 {
			log.Fatal("usage: unregister-job ID")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("job ID %q: %v", rest[0], err)
		}
		if err := c.UnregisterJob(id); err != nil {
			log.Fatal(err)
		}
	case "track":
		if len(rest) < 2 {
			log.Fatal("usage: track ID on|off")
		}
		if err := c.TrackDataspace(rest[0], rest[1] == "on"); err != nil {
			log.Fatal(err)
		}
	case "tracked-non-empty":
		ids, err := c.TrackedNonEmpty()
		if err != nil {
			log.Fatal(err)
		}
		for _, id := range ids {
			fmt.Println(id)
		}
	case "cancel":
		if len(rest) < 1 {
			log.Fatal("usage: cancel TASK-ID")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("task ID %q: %v", rest[0], err)
		}
		st, err := c.Cancel(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %d: %s (%d/%d bytes)\n", id, st.Status, st.MovedBytes, st.TotalBytes)
	case "task-status":
		if len(rest) < 1 {
			log.Fatal("usage: task-status TASK-ID")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("task ID %q: %v", rest[0], err)
		}
		st, err := c.TaskStatus(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %d: %s (%d/%d bytes)", id, st.Status, st.MovedBytes, st.TotalBytes)
		if st.SegmentsTotal > 0 {
			fmt.Printf(" segments %d/%d", st.SegmentsDone, st.SegmentsTotal)
		}
		if st.CacheBytes > 0 || st.DeltaBytes > 0 {
			fmt.Printf(" cached=%d delta-skipped=%d", st.CacheBytes, st.DeltaBytes)
		}
		if st.Err != "" {
			fmt.Printf(" err=%q", st.Err)
		}
		fmt.Println()
	case "watch":
		// Live progress: poll the extended task status and redraw one
		// line until the task terminates.
		if len(rest) < 1 {
			log.Fatal("usage: watch TASK-ID")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("task ID %q: %v", rest[0], err)
		}
		st, err := c.Watch(id, *interval, func(st nornsctl.Stats) {
			fmt.Printf("\r\x1b[K%s", progressLine(id, st))
		})
		if err != nil {
			fmt.Println()
			log.Fatal(err)
		}
		fmt.Println()
		if st.Status == task.Failed {
			log.Fatalf("task %d failed: %s", id, st.Err)
		}
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
