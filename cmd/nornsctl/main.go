// nornsctl is the administrative command-line client for a urd daemon:
// what the Slurm extensions call programmatically, exposed for
// operators.
//
// Socket commands (control API over AF_UNIX):
//
//	nornsctl -socket /tmp/nornsctl.sock ping
//	nornsctl status [-json]
//	nornsctl register-dataspace nvme0:// nvm /mnt/pmem0
//	nornsctl unregister-dataspace nvme0://
//	nornsctl register-job 42 node001,node002 nvme0://,lustre://
//	nornsctl unregister-job 42
//	nornsctl track nvme0:// on|off
//	nornsctl tracked-non-empty
//	nornsctl cancel 17
//	nornsctl task-status 17 [-json]
//	nornsctl watch 17
//	nornsctl health
//	nornsctl deadletter list
//	nornsctl deadletter requeue [TASK-ID]
//	nornsctl shutdown
//
// HTTP gateway commands (require -http and a bearer token):
//
//	nornsctl -http http://HOST:PORT -token-file F export [-state pending] [-o FILE]
//	nornsctl -http http://HOST:PORT -token-file F import [-dry-run] [-atomic] [-dedupe MODE] [FILE]
//	nornsctl -http http://HOST:PORT -token-file F drain -to http://HOST2:PORT2 [-to-token-file F2]
//	nornsctl -http http://HOST:PORT -token-file F events [-ids 1,2,3] [-progress-ms N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/gateway"
	"github.com/ngioproject/norns-go/internal/gateway/auth"
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/task"
)

var backendNames = map[string]uint32{
	"posix-dir":    nornsctl.BackendPosixDir,
	"nvm":          nornsctl.BackendNVM,
	"parallel-fs":  nornsctl.BackendParallelFS,
	"burst-buffer": nornsctl.BackendBurstBuffer,
	"memory":       nornsctl.BackendMemory,
}

// mib renders a byte count in MiB with one decimal.
func mib(n int64) string { return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20)) }

// progressLine renders one watch snapshot.
func progressLine(id uint64, st nornsctl.Stats) string {
	line := fmt.Sprintf("task %d: %s %s/%s", id, st.Status, mib(st.MovedBytes), mib(st.TotalBytes))
	if st.SegmentsTotal > 0 {
		line += fmt.Sprintf(" segments %d/%d", st.SegmentsDone, st.SegmentsTotal)
	}
	if st.BandwidthBps > 0 {
		line += fmt.Sprintf(" %.1f MiB/s", st.BandwidthBps/(1<<20))
	}
	return line
}

// statusReport wraps the structured daemon status in the repo's
// machine-readable table envelope (the same shape norns-bench -json
// emits), so `nornsctl status -json` diffs and scripts like any other
// report artifact.
func statusReport(st nornsctl.DaemonStatus) *metrics.Report {
	rep := metrics.NewReport("nornsctl status")
	d := metrics.NewTable("daemon", "field", "value")
	d.AddRow("version", st.Version)
	d.AddRow("node", st.Node)
	d.AddRow("policy", st.Policy)
	d.AddRow("shards", st.Shards)
	d.AddRow("pending", st.Pending)
	d.AddRow("tasks", st.Tasks)
	d.AddRow("journal", st.Journal)
	if st.Journal {
		d.AddRow("recovered_pending", st.RecoveredPending)
		d.AddRow("recovered_running", st.RecoveredRunning)
		d.AddRow("recovered_cancelled", st.RecoveredCancelled)
		d.AddRow("recovered_terminal", st.RecoveredTerminal)
	}
	d.AddRow("autotune", st.Autotune)
	d.AddRow("cache_enabled", st.CacheEnabled)
	d.AddRow("degraded", st.Degraded)
	d.AddRow("dead_letter_tasks", st.DeadLetterTasks)
	if st.RetryMax > 0 {
		d.AddRow("retry_max", st.RetryMax)
		d.AddRow("retry_backoff_ms", st.RetryBackoffMS)
	}
	if st.Journal {
		d.AddRow("recovered_clean", st.RecoveredClean)
	}
	rep.Add(d)
	if len(st.Breakers) > 0 {
		t := metrics.NewTable("breakers", "addr", "state", "fails", "trips")
		for _, b := range st.Breakers {
			t.AddRow(b.Addr, b.State, b.Fails, b.Trips)
		}
		rep.Add(t)
	}
	if st.Autotune && len(st.AutotuneRoutes) > 0 {
		t := metrics.NewTable("autotune-routes",
			"in", "out", "kind", "streams", "seg_size", "goodput_bps", "samples", "state")
		for _, r := range st.AutotuneRoutes {
			t.AddRow(r.In, r.Out, r.Kind, r.Streams, r.SegSize, r.GoodputBps, r.Samples, r.State)
		}
		rep.Add(t)
	}
	if st.CacheEnabled {
		t := metrics.NewTable("cache", "field", "value")
		t.AddRow("bytes", st.CacheBytes)
		t.AddRow("cap_bytes", st.CacheCapBytes)
		t.AddRow("hits", st.CacheHits)
		t.AddRow("misses", st.CacheMisses)
		t.AddRow("evictions", st.CacheEvictions)
		rep.Add(t)
	}
	return rep
}

// taskReport is the task-status counterpart of statusReport.
func taskReport(id uint64, st nornsctl.Stats) *metrics.Report {
	rep := metrics.NewReport("nornsctl task-status")
	t := metrics.NewTable("task", "field", "value")
	t.AddRow("task_id", id)
	t.AddRow("status", st.Status.String())
	if st.Err != "" {
		t.AddRow("error", st.Err)
	}
	t.AddRow("total_bytes", st.TotalBytes)
	t.AddRow("moved_bytes", st.MovedBytes)
	t.AddRow("segments_total", st.SegmentsTotal)
	t.AddRow("segments_done", st.SegmentsDone)
	t.AddRow("bandwidth_bps", st.BandwidthBps)
	t.AddRow("cache_bytes", st.CacheBytes)
	t.AddRow("delta_bytes", st.DeltaBytes)
	if st.Attempts > 0 {
		t.AddRow("attempts", st.Attempts)
	}
	rep.Add(t)
	return rep
}

func main() {
	socket := flag.String("socket", "/tmp/nornsctl.sock", "control socket path")
	interval := flag.Duration("interval", 500*time.Millisecond, "poll interval for the watch command")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (status, task-status, and the HTTP commands)")
	httpBase := flag.String("http", "", "gateway base URL, e.g. http://127.0.0.1:9300 (required for export/import/drain/events)")
	token := flag.String("token", "", "gateway bearer token (prefer -token-file: flags leak into ps output)")
	tokenFile := flag.String("token-file", "", "file holding the gateway bearer token")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: nornsctl [-socket PATH | -http URL -token-file F] COMMAND [ARGS]")
	}

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "export", "import", "drain", "events":
		runHTTP(cmd, rest, *httpBase, resolveToken(*token, *tokenFile), *jsonOut)
		return
	}

	// Socket commands dial lazily so the HTTP commands above never need
	// a control socket.
	c, err := nornsctl.Dial(*socket)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *socket, err)
	}
	defer c.Close()

	switch cmd {
	case "ping":
		if err := c.Ping(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("pong")
	case "status":
		// One round trip serves both the text line and the structured
		// report; older daemons without the latter fall back to Status.
		st, err := c.StatusInfo()
		if err != nil {
			if *jsonOut {
				log.Fatal(err)
			}
			s, ferr := c.Status()
			if ferr != nil {
				log.Fatal(ferr)
			}
			fmt.Println(s)
			break
		}
		if *jsonOut {
			if err := statusReport(st).Encode(os.Stdout); err != nil {
				log.Fatal(err)
			}
			break
		}
		fmt.Println(st.Info)
		if st.Journal {
			fmt.Printf("journal: enabled; recovered requeued=%d (pending=%d running=%d) cancelled=%d terminal=%d\n",
				st.RecoveredPending+st.RecoveredRunning, st.RecoveredPending, st.RecoveredRunning,
				st.RecoveredCancelled, st.RecoveredTerminal)
		}
		if st.Autotune {
			if len(st.AutotuneRoutes) == 0 {
				fmt.Println("autotune: enabled; no routes observed yet")
			}
			for _, r := range st.AutotuneRoutes {
				fmt.Printf("autotune: %s -> %s (%s): streams=%d seg=%s goodput=%.1f MiB/s samples=%d %s\n",
					r.In, r.Out, r.Kind, r.Streams, mib(r.SegSize), r.GoodputBps/(1<<20), r.Samples, r.State)
			}
		}
		if st.CacheEnabled {
			fmt.Printf("cache: %s/%s hits=%d misses=%d evictions=%d\n",
				mib(st.CacheBytes), mib(st.CacheCapBytes), st.CacheHits, st.CacheMisses, st.CacheEvictions)
		}
		if st.Degraded {
			fmt.Println("journal: DEGRADED (read-only; new submissions shed until the WAL is writable)")
		}
		if st.DeadLetterTasks > 0 {
			fmt.Printf("dead-letter: %d quarantined tasks (nornsctl deadletter list)\n", st.DeadLetterTasks)
		}
		if st.RetryMax > 0 {
			fmt.Printf("retry: max=%d backoff=%dms\n", st.RetryMax, st.RetryBackoffMS)
		}
		for _, b := range st.Breakers {
			fmt.Printf("breaker: %s %s fails=%d trips=%d\n", b.Addr, b.State, b.Fails, b.Trips)
		}
	case "health":
		if err := c.Health(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("ready")
	case "deadletter":
		if len(rest) < 1 {
			log.Fatal("usage: deadletter list | deadletter requeue [TASK-ID]")
		}
		switch rest[0] {
		case "list":
			entries, err := c.DeadLetterList()
			if err != nil {
				log.Fatal(err)
			}
			if *jsonOut {
				rep := metrics.NewReport("nornsctl deadletter list")
				t := metrics.NewTable("deadletter", "task_id", "attempts", "error")
				for _, e := range entries {
					t.AddRow(e.TaskID, e.Attempts, e.Err)
				}
				rep.Add(t)
				if err := rep.Encode(os.Stdout); err != nil {
					log.Fatal(err)
				}
				break
			}
			if len(entries) == 0 {
				fmt.Println("dead-letter set is empty")
				break
			}
			for _, e := range entries {
				fmt.Printf("task %d: attempts=%d err=%q\n", e.TaskID, e.Attempts, e.Err)
			}
		case "requeue":
			var id uint64
			if len(rest) >= 2 {
				var err error
				id, err = strconv.ParseUint(rest[1], 10, 64)
				if err != nil {
					log.Fatalf("task ID %q: %v", rest[1], err)
				}
			}
			ids, err := c.DeadLetterRequeue(id)
			if err != nil {
				log.Fatal(err)
			}
			if len(ids) == 0 {
				fmt.Println("nothing to requeue")
				break
			}
			for _, nid := range ids {
				fmt.Printf("requeued as task %d\n", nid)
			}
		default:
			log.Fatalf("unknown deadletter subcommand %q (want list|requeue)", rest[0])
		}
	case "shutdown":
		if err := c.Shutdown(); err != nil {
			log.Fatal(err)
		}
	case "register-dataspace":
		if len(rest) < 2 {
			log.Fatal("usage: register-dataspace ID BACKEND [MOUNT]")
		}
		backend, ok := backendNames[rest[1]]
		if !ok {
			log.Fatalf("unknown backend %q (want posix-dir|nvm|parallel-fs|burst-buffer|memory)", rest[1])
		}
		def := nornsctl.DataspaceDef{ID: rest[0], Backend: backend}
		if len(rest) >= 3 {
			def.Mount = rest[2]
		}
		if err := c.RegisterDataspace(def); err != nil {
			log.Fatal(err)
		}
	case "unregister-dataspace":
		if len(rest) < 1 {
			log.Fatal("usage: unregister-dataspace ID")
		}
		if err := c.UnregisterDataspace(rest[0]); err != nil {
			log.Fatal(err)
		}
	case "register-job":
		if len(rest) < 3 {
			log.Fatal("usage: register-job ID HOST1,HOST2 DS1,DS2")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("job ID %q: %v", rest[0], err)
		}
		def := nornsctl.JobDef{ID: id, Hosts: strings.Split(rest[1], ",")}
		for _, ds := range strings.Split(rest[2], ",") {
			def.Limits = append(def.Limits, nornsctl.JobLimit{Dataspace: ds})
		}
		if err := c.RegisterJob(def); err != nil {
			log.Fatal(err)
		}
	case "unregister-job":
		if len(rest) < 1 {
			log.Fatal("usage: unregister-job ID")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("job ID %q: %v", rest[0], err)
		}
		if err := c.UnregisterJob(id); err != nil {
			log.Fatal(err)
		}
	case "track":
		if len(rest) < 2 {
			log.Fatal("usage: track ID on|off")
		}
		if err := c.TrackDataspace(rest[0], rest[1] == "on"); err != nil {
			log.Fatal(err)
		}
	case "tracked-non-empty":
		ids, err := c.TrackedNonEmpty()
		if err != nil {
			log.Fatal(err)
		}
		for _, id := range ids {
			fmt.Println(id)
		}
	case "cancel":
		if len(rest) < 1 {
			log.Fatal("usage: cancel TASK-ID")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("task ID %q: %v", rest[0], err)
		}
		st, err := c.Cancel(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %d: %s (%d/%d bytes)\n", id, st.Status, st.MovedBytes, st.TotalBytes)
	case "task-status":
		if len(rest) < 1 {
			log.Fatal("usage: task-status TASK-ID")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("task ID %q: %v", rest[0], err)
		}
		st, err := c.TaskStatus(id)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			if err := taskReport(id, st).Encode(os.Stdout); err != nil {
				log.Fatal(err)
			}
			break
		}
		fmt.Printf("task %d: %s (%d/%d bytes)", id, st.Status, st.MovedBytes, st.TotalBytes)
		if st.SegmentsTotal > 0 {
			fmt.Printf(" segments %d/%d", st.SegmentsDone, st.SegmentsTotal)
		}
		if st.CacheBytes > 0 || st.DeltaBytes > 0 {
			fmt.Printf(" cached=%d delta-skipped=%d", st.CacheBytes, st.DeltaBytes)
		}
		if st.Err != "" {
			fmt.Printf(" err=%q", st.Err)
		}
		fmt.Println()
	case "watch":
		// Live progress: poll the extended task status and redraw one
		// line until the task terminates.
		if len(rest) < 1 {
			log.Fatal("usage: watch TASK-ID")
		}
		id, err := strconv.ParseUint(rest[0], 10, 64)
		if err != nil {
			log.Fatalf("task ID %q: %v", rest[0], err)
		}
		st, err := c.Watch(id, *interval, func(st nornsctl.Stats) {
			fmt.Printf("\r\x1b[K%s", progressLine(id, st))
		})
		if err != nil {
			fmt.Println()
			log.Fatal(err)
		}
		fmt.Println()
		if st.Status == task.Failed {
			log.Fatalf("task %d failed: %s", id, st.Err)
		}
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// resolveToken loads the bearer secret from -token or -token-file.
// Empty when neither is set; the HTTP commands fail fast on that.
func resolveToken(token, tokenFile string) string {
	if token != "" {
		return token
	}
	if tokenFile == "" {
		return ""
	}
	t, err := auth.LoadFile(tokenFile)
	if err != nil {
		log.Fatalf("nornsctl: %v", err)
	}
	return t.Secret()
}

// runHTTP dispatches the gateway commands. They never touch the control
// socket.
func runHTTP(cmd string, rest []string, base, token string, jsonOut bool) {
	if base == "" {
		log.Fatalf("%s requires -http URL", cmd)
	}
	if token == "" {
		log.Fatalf("%s requires a bearer token (-token-file or -token)", cmd)
	}
	client := &gateway.Client{Base: base, Token: token}
	// SIGINT cancels in-flight streams cleanly (SSE watches especially).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	switch cmd {
	case "export":
		fs := flag.NewFlagSet("export", flag.ExitOnError)
		state := fs.String("state", "", "status filter: pending|running|terminal|... (empty = all)")
		out := fs.String("o", "", "output file (empty = stdout)")
		fs.Parse(rest)
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		n, err := client.Export(ctx, w, *state)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "exported %d tasks\n", n)
	case "import":
		fs := flag.NewFlagSet("import", flag.ExitOnError)
		dryRun := fs.Bool("dry-run", false, "validate every record, submit nothing")
		atomic := fs.Bool("atomic", false, "all-or-nothing: any bad record aborts the whole batch")
		dedupe := fs.String("dedupe", "", "duplicate-ID handling: skip|overwrite|error (empty = server default skip)")
		ids := fs.Bool("ids", false, "echo assigned task IDs")
		fs.Parse(rest)
		r := io.Reader(os.Stdin)
		if fs.NArg() > 0 {
			f, err := os.Open(fs.Arg(0))
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}
		res, err := client.Import(ctx, r, gateway.ImportOptions{
			DryRun: *dryRun, Atomic: *atomic, Dedupe: *dedupe, IncludeIDs: *ids,
		})
		if err != nil {
			if res != nil {
				printImportResult(res, jsonOut)
			}
			log.Fatal(err)
		}
		printImportResult(res, jsonOut)
		if res.Failed > 0 {
			os.Exit(1)
		}
	case "drain":
		fs := flag.NewFlagSet("drain", flag.ExitOnError)
		to := fs.String("to", "", "destination gateway base URL (required)")
		toToken := fs.String("to-token", "", "destination bearer token (empty = same as source)")
		toTokenFile := fs.String("to-token-file", "", "file holding the destination bearer token")
		fs.Parse(rest)
		if *to == "" {
			log.Fatal("usage: drain -to http://HOST:PORT [-to-token-file F]")
		}
		dstToken := resolveToken(*toToken, *toTokenFile)
		if dstToken == "" {
			dstToken = token
		}
		dst := &gateway.Client{Base: *to, Token: dstToken}
		res, err := client.Drain(ctx, dst)
		if err != nil {
			log.Fatal(err)
		}
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(res)
			return
		}
		fmt.Printf("drained %d tasks (%s) -> %s: imported=%d cancelled-at-source=%d\n",
			res.Tasks, mib(res.Bytes), *to, res.Imported, res.Cancelled)
	case "events":
		fs := flag.NewFlagSet("events", flag.ExitOnError)
		idsCSV := fs.String("ids", "", "comma-separated task IDs; the stream ends once all are terminal (empty = all tasks, stream until interrupted)")
		progressMS := fs.Int64("progress-ms", 0, "request throttled progress ticks at this interval")
		fs.Parse(rest)
		var ids []uint64
		if *idsCSV != "" {
			for _, f := range strings.Split(*idsCSV, ",") {
				id, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
				if err != nil {
					log.Fatalf("bad task ID %q", f)
				}
				ids = append(ids, id)
			}
		}
		enc := json.NewEncoder(os.Stdout)
		err := client.Events(ctx, ids, *progressMS, func(ev gateway.SSEEvent) bool {
			switch {
			case ev.Gap:
				fmt.Fprintf(os.Stderr, "gap: %d events dropped\n", ev.Dropped)
			case ev.Kind == "end":
				if !jsonOut {
					fmt.Println("all tasks terminal")
				}
			case jsonOut:
				enc.Encode(struct {
					Kind   string            `json:"kind"`
					TaskID uint64            `json:"task_id"`
					Stats  *gateway.TaskJSON `json:"stats,omitempty"`
				}{ev.Kind, ev.TaskID, ev.Stats})
			default:
				line := fmt.Sprintf("%s task %d", ev.Kind, ev.TaskID)
				if ev.Stats != nil {
					line += ": " + ev.Stats.Status
					if ev.Stats.TotalBytes > 0 {
						line += fmt.Sprintf(" %s/%s", mib(ev.Stats.MovedBytes), mib(ev.Stats.TotalBytes))
					}
					if ev.Stats.Error != "" {
						line += " err=" + strconv.Quote(ev.Stats.Error)
					}
				}
				fmt.Println(line)
			}
			return true
		})
		if err != nil && ctx.Err() == nil {
			log.Fatal(err)
		}
	}
}

func printImportResult(res *gateway.ImportResult, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
		return
	}
	mode := "imported"
	if res.DryRun {
		mode = "validated (dry run)"
	}
	fmt.Printf("%s %d/%d records: submitted=%d skipped=%d overwritten=%d failed=%d\n",
		mode, res.Submitted, res.Lines, res.Submitted, res.Skipped, res.Overwritten, res.Failed)
	for _, e := range res.Errors {
		fmt.Fprintf(os.Stderr, "  line %d: %s: %s\n", e.Line, e.Code, e.Message)
	}
}
