// slurm-sim runs data-driven workflows through the workflow-aware
// scheduler on a simulated cluster, printing the scheduler event log
// and per-job accounting. Batch scripts with #NORNS directives are read
// from the command line; each script's compute phase is modeled as
// compute seconds plus I/O volume given via flags on the script name:
//
//	slurm-sim -nodes 8 \
//	    'producer.sh:compute=64,write=nvme0://inter:100e9' \
//	    'consumer.sh:compute=30,read=nvme0://inter'
//
// Without arguments it runs the built-in Table III demonstration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/simnet"
	"github.com/ngioproject/norns-go/internal/simstore"
	"github.com/ngioproject/norns-go/internal/slurm"
	"github.com/ngioproject/norns-go/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster size")
	dataAware := flag.Bool("data-aware", true, "prefer nodes already holding workflow data")
	flag.Parse()

	eng := sim.NewEngine()
	env := slurm.NewSimEnv(eng)
	env.AddTier("lustre://", simstore.NewPFS(eng, simstore.PFSConfig{
		Name: "lustre", ReadBW: 2.27e9, WriteBW: 3.125e9, Stripes: 6, ClientCap: 0.35e9,
	}))
	env.AddTier("nvme0://", simstore.NewNodeLocal(eng, simstore.NodeLocalConfig{
		Name: "dcpmm", ReadBW: 62e9, WriteBW: 50e9,
	}))
	env.Fabric = simnet.NewFabric(eng, 0.94e9, 0, 0.0009)

	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%02d", i+1)
	}
	ctl, err := slurm.NewController(env, slurm.Config{
		Nodes: names, DataAware: *dataAware, PriorityBoost: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	var jobIDs []slurm.JobID
	if flag.NArg() == 0 {
		jobIDs = builtinDemo(ctl)
	} else {
		var prev slurm.JobID
		for i, arg := range flag.Args() {
			spec, err := parseJobArg(arg)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				spec.WorkflowStart = true
			} else {
				spec.Dependencies = []slurm.JobID{prev}
			}
			if i == flag.NArg()-1 {
				spec.WorkflowEnd = true
			}
			id, err := ctl.Submit(spec)
			if err != nil {
				log.Fatal(err)
			}
			prev = id
			jobIDs = append(jobIDs, id)
		}
	}

	eng.Run()

	fmt.Println("=== scheduler event log ===")
	for _, ev := range ctl.Events() {
		fmt.Println(ev)
	}
	fmt.Println()
	fmt.Println("=== job accounting ===")
	for _, id := range jobIDs {
		j, err := ctl.Job(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %d (%s): %s nodes=%v stage-in=%.1fs compute=%.1fs total-hold=%.1fs\n",
			j.ID, j.Spec.Name, j.State, j.Nodes,
			j.StartTime-j.StageInStart, j.EndTime-j.StartTime, j.ReleaseTime-j.StageInStart)
		if j.FailReason != "" {
			fmt.Printf("  reason: %s\n", j.FailReason)
		}
	}
}

// builtinDemo submits the Table III producer/consumer workflow on NVM.
func builtinDemo(ctl *slurm.Controller) []slurm.JobID {
	prod, err := ctl.Submit(&slurm.JobSpec{
		Name: "producer", Nodes: 1, WorkflowStart: true,
		Payload: workload.Seq{
			workload.Compute{Seconds: 64},
			workload.IO{Dataspace: "nvme0://", Ref: "inter", Bytes: 100e9, Write: true, Procs: 24},
		},
		Persists: []slurm.PersistDirective{{Op: slurm.PersistStore, Location: "nvme0://inter"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	cons, err := ctl.Submit(&slurm.JobSpec{
		Name: "consumer", Nodes: 1, WorkflowEnd: true, Dependencies: []slurm.JobID{prod},
		Payload: workload.Seq{
			workload.IO{Dataspace: "nvme0://", Ref: "inter", Procs: 24},
			workload.Compute{Seconds: 30},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return []slurm.JobID{prod, cons}
}

// parseJobArg parses "script.sh:compute=64,write=nvme0://x:100e9,read=..."
// into a JobSpec: the script file supplies #SBATCH/#NORNS directives and
// the suffix describes the modeled workload.
func parseJobArg(arg string) (*slurm.JobSpec, error) {
	path, desc, _ := strings.Cut(arg, ":")
	script, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	spec, err := slurm.ParseScript(string(script))
	if err != nil {
		return nil, err
	}
	if spec.Name == "" {
		spec.Name = path
	}
	var seq workload.Seq
	for _, item := range strings.Split(desc, ",") {
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("malformed workload item %q", item)
		}
		switch key {
		case "compute":
			sec, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("compute=%q: %w", val, err)
			}
			seq = append(seq, workload.Compute{Seconds: sec})
		case "write", "read":
			ref := val
			var bytes float64
			if i := strings.LastIndex(val, ":"); i > strings.Index(val, "://")+2 {
				b, err := strconv.ParseFloat(val[i+1:], 64)
				if err != nil {
					return nil, fmt.Errorf("volume in %q: %w", val, err)
				}
				bytes = b
				ref = val[:i]
			}
			ds, rel := slurm.SplitRef(ref)
			io := workload.IO{Dataspace: ds, Ref: rel, Bytes: bytes, Write: key == "write", Procs: 24}
			seq = append(seq, io)
		default:
			return nil, fmt.Errorf("unknown workload key %q", key)
		}
	}
	spec.Payload = seq
	return spec, nil
}
