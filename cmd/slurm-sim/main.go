// slurm-sim runs data-driven workflows through the workflow-aware
// scheduler on a simulated cluster, printing the scheduler event log
// and per-job accounting. Batch scripts with #NORNS directives are read
// from the command line; each script's compute phase is modeled as
// compute seconds plus I/O volume given via flags on the script name:
//
//	slurm-sim -nodes 8 \
//	    'producer.sh:compute=64,write=nvme0://inter:100e9' \
//	    'consumer.sh:compute=30,read=nvme0://inter'
//
// Without arguments it runs the built-in workflow selected by -run
// (default tab3, the Table III producer/consumer pair). An unknown
// -run selector exits non-zero with usage. -json renders the job
// accounting through the shared metrics.Report schema (the same
// envelope norns-bench and norns-lab emit), so CI artifacts are
// uniform across commands.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/simnet"
	"github.com/ngioproject/norns-go/internal/simstore"
	"github.com/ngioproject/norns-go/internal/slurm"
	"github.com/ngioproject/norns-go/internal/workload"
)

// builtins maps -run selectors to built-in workflow submitters. "demo"
// stays as a compatibility alias for tab3.
var builtins = map[string]func(*slurm.Controller) ([]slurm.JobID, error){
	"tab3":     submitTab3,
	"demo":     submitTab3,
	"openfoam": submitOpenFOAM,
}

func usageExit(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "slurm-sim: "+format+"\n", args...)
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "built-in workflows for -run: %s\n", strings.Join(names, ", "))
	flag.Usage()
	os.Exit(2)
}

func main() {
	nodes := flag.Int("nodes", 4, "cluster size")
	dataAware := flag.Bool("data-aware", true, "prefer nodes already holding workflow data")
	run := flag.String("run", "tab3", "built-in workflow to run when no scripts are given: tab3 (producer/consumer), openfoam")
	asJSON := flag.Bool("json", false, "emit the job accounting as a metrics.Report JSON document")
	note := flag.String("note", "", "free-form annotation stored in the -json envelope")
	flag.Parse()

	builtin, ok := builtins[strings.TrimSpace(*run)]
	if !ok {
		usageExit("unknown -run selector %q", *run)
	}
	if flag.NArg() > 0 && *run != "tab3" {
		usageExit("-run selects a built-in workflow and cannot be combined with script arguments")
	}

	eng := sim.NewEngine()
	env := slurm.NewSimEnv(eng)
	env.AddTier("lustre://", simstore.NewPFS(eng, simstore.PFSConfig{
		Name: "lustre", ReadBW: 2.27e9, WriteBW: 3.125e9, Stripes: 6, ClientCap: 0.35e9,
	}))
	env.AddTier("nvme0://", simstore.NewNodeLocal(eng, simstore.NodeLocalConfig{
		Name: "dcpmm", ReadBW: 62e9, WriteBW: 50e9,
	}))
	env.Fabric = simnet.NewFabric(eng, 0.94e9, 0, 0.0009)

	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%02d", i+1)
	}
	ctl, err := slurm.NewController(env, slurm.Config{
		Nodes: names, DataAware: *dataAware, PriorityBoost: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	var jobIDs []slurm.JobID
	if flag.NArg() == 0 {
		jobIDs, err = builtin(ctl)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var prev slurm.JobID
		for i, arg := range flag.Args() {
			spec, err := parseJobArg(arg)
			if err != nil {
				usageExit("%v", err)
			}
			if i == 0 {
				spec.WorkflowStart = true
			} else {
				spec.Dependencies = []slurm.JobID{prev}
			}
			if i == flag.NArg()-1 {
				spec.WorkflowEnd = true
			}
			id, err := ctl.Submit(spec)
			if err != nil {
				log.Fatal(err)
			}
			prev = id
			jobIDs = append(jobIDs, id)
		}
	}

	eng.Run()

	table, err := ctl.AccountingTable(jobIDs)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		rep := metrics.NewReport(*note)
		rep.Add(table)
		if err := rep.Encode(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println("=== scheduler event log ===")
	for _, ev := range ctl.Events() {
		fmt.Println(ev)
	}
	fmt.Println()
	fmt.Println(table)
}

// submitTab3 submits the Table III producer/consumer workflow on NVM.
func submitTab3(ctl *slurm.Controller) ([]slurm.JobID, error) {
	prod, err := ctl.Submit(&slurm.JobSpec{
		Name: "producer", Nodes: 1, WorkflowStart: true,
		Payload: workload.Seq{
			workload.Compute{Seconds: 64},
			workload.IO{Dataspace: "nvme0://", Ref: "inter", Bytes: 100e9, Write: true, Procs: 24},
		},
		Persists: []slurm.PersistDirective{{Op: slurm.PersistStore, Location: "nvme0://inter"}},
	})
	if err != nil {
		return nil, err
	}
	cons, err := ctl.Submit(&slurm.JobSpec{
		Name: "consumer", Nodes: 1, WorkflowEnd: true, Dependencies: []slurm.JobID{prod},
		Payload: workload.Seq{
			workload.IO{Dataspace: "nvme0://", Ref: "inter", Procs: 24},
			workload.Compute{Seconds: 30},
		},
	})
	if err != nil {
		return nil, err
	}
	return []slurm.JobID{prod, cons}, nil
}

// submitOpenFOAM submits the Table V decompose/solve workflow: a serial
// mesh decomposition feeding a parallel solver phase.
func submitOpenFOAM(ctl *slurm.Controller) ([]slurm.JobID, error) {
	dec, err := ctl.Submit(&slurm.JobSpec{
		Name: "decompose", Nodes: 1, WorkflowStart: true,
		Payload: workload.OpenFOAMDecompose(120, "nvme0://", 8e9),
		Persists: []slurm.PersistDirective{
			{Op: slurm.PersistStore, Location: "nvme0://mesh"},
		},
	})
	if err != nil {
		return nil, err
	}
	sol, err := ctl.Submit(&slurm.JobSpec{
		Name: "solver", Nodes: 4, WorkflowEnd: true, Dependencies: []slurm.JobID{dec},
		Payload: workload.OpenFOAMSolver(600, "nvme0://", 8e9, 24e9),
	})
	if err != nil {
		return nil, err
	}
	return []slurm.JobID{dec, sol}, nil
}

// parseJobArg parses "script.sh:compute=64,write=nvme0://x:100e9,read=..."
// into a JobSpec: the script file supplies #SBATCH/#NORNS directives and
// the suffix describes the modeled workload.
func parseJobArg(arg string) (*slurm.JobSpec, error) {
	path, desc, _ := strings.Cut(arg, ":")
	script, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	spec, err := slurm.ParseScript(string(script))
	if err != nil {
		return nil, err
	}
	if spec.Name == "" {
		spec.Name = path
	}
	var seq workload.Seq
	for _, item := range strings.Split(desc, ",") {
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("malformed workload item %q", item)
		}
		switch key {
		case "compute":
			sec, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("compute=%q: %w", val, err)
			}
			seq = append(seq, workload.Compute{Seconds: sec})
		case "write", "read":
			ref := val
			var bytes float64
			if i := strings.LastIndex(val, ":"); i > strings.Index(val, "://")+2 {
				b, err := strconv.ParseFloat(val[i+1:], 64)
				if err != nil {
					return nil, fmt.Errorf("volume in %q: %w", val, err)
				}
				bytes = b
				ref = val[:i]
			}
			ds, rel := slurm.SplitRef(ref)
			io := workload.IO{Dataspace: ds, Ref: rel, Bytes: bytes, Write: key == "write", Procs: 24}
			seq = append(seq, io)
		default:
			return nil, fmt.Errorf("unknown workload key %q", key)
		}
	}
	spec.Payload = seq
	return spec, nil
}
