#!/usr/bin/env bash
# Gateway end-to-end smoke: exercises the HTTP/JSON gateway the way an
# operator would, through the shipped binaries only — no Go test
# harness. Run from the repository root (CI runs it in the gateway-e2e
# job):
#
#   ./scripts/gateway-e2e.sh
#
# Covered, in order:
#   1. bulk import of 1000 NDJSON tasks with per-entry acceptance
#   2. SSE watch (nornsctl events) driving the batch to terminal
#   3. export + lossless round trip through a fresh daemon
#   4. nornsctl drain moving a populated queue between daemons with
#      task and byte counters preserved, payloads verified on arrival
#   5. documented 401/413 rejection paths
#   6. SIGTERM graceful drain: the running transfer finishes, queued
#      tasks stay journaled, the restart replays from the clean marker
#      and no acked task is lost
set -euo pipefail

T=$(mktemp -d)
URD=${URD:-$T/urd}
CTL=${CTL:-$T/nornsctl}
trap 'kill $(jobs -p) 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$T"' EXIT

[ -x "$URD" ] || go build -o "$URD" ./cmd/urd
[ -x "$CTL" ] || go build -o "$CTL" ./cmd/nornsctl

echo "gateway-e2e-token-$RANDOM" > "$T/token"
mkdir -p "$T/a-data" "$T/b-data"

A=http://127.0.0.1:9411
B=http://127.0.0.1:9412
C=http://127.0.0.1:9413

# Daemon A is deliberately slow (one worker, small copy chunks) so a
# throttled blocker keeps its queue populated for the drain step.
"$URD" -node a -user "$T/a-user.sock" -control "$T/a-ctl.sock" \
  -workers 1 -buf-size 4K \
  -http-addr 127.0.0.1:9411 -http-token-file "$T/token" &
"$URD" -node b -user "$T/b-user.sock" -control "$T/b-ctl.sock" \
  -http-addr 127.0.0.1:9412 -http-token-file "$T/token" &

for s in a b; do
  for i in $(seq 1 50); do
    "$CTL" -socket "$T/$s-ctl.sock" ping 2>/dev/null && break
    sleep 0.2
  done
done
"$CTL" -socket "$T/a-ctl.sock" register-dataspace disk0:// posix-dir "$T/a-data"
"$CTL" -socket "$T/b-ctl.sock" register-dataspace disk0:// posix-dir "$T/b-data"

### 1. bulk import: 1000 noop tasks into B, per-entry acceptance
python3 - "$T/bulk.ndjson" <<'EOF'
import json, sys
with open(sys.argv[1], "w") as f:
    for i in range(1000):
        f.write(json.dumps({
            "kind": "noop", "priority": i % 5,
            "input": {"kind": "memory"}, "output": {"kind": "memory"},
        }) + "\n")
EOF
"$CTL" -http "$B" -token-file "$T/token" -json import -ids "$T/bulk.ndjson" > "$T/import.json"
python3 - "$T/import.json" <<'EOF'
import json, sys
res = json.load(open(sys.argv[1]))
assert res["lines"] == 1000 and res["submitted"] == 1000 and res["failed"] == 0, res
assert len(res["task_ids"]) == 1000, res
print(f'imported {res["submitted"]} tasks')
EOF
CSV=$(python3 -c 'import json,sys; print(",".join(map(str, json.load(open(sys.argv[1]))["task_ids"])))' "$T/import.json")

### 2. SSE-watch the batch to terminal (the stream ends itself)
timeout 60 "$CTL" -http "$B" -token-file "$T/token" events -ids "$CSV" | tail -n 1 | grep -qx "all tasks terminal"
echo "SSE watch drove 1000 tasks to terminal"

### 3. export and verify a lossless round trip through a fresh daemon
"$CTL" -http "$B" -token-file "$T/token" export -state all -o "$T/export.ndjson"
[ "$(wc -l < "$T/export.ndjson")" -eq 1000 ] || { echo "export lost lines"; exit 1; }

"$URD" -node c -user "$T/c-user.sock" -control "$T/c-ctl.sock" \
  -http-addr 127.0.0.1:9413 -http-token-file "$T/token" &
for i in $(seq 1 50); do
  "$CTL" -socket "$T/c-ctl.sock" ping 2>/dev/null && break
  sleep 0.2
done
"$CTL" -http "$C" -token-file "$T/token" -json import -atomic "$T/export.ndjson" > "$T/import2.json"
python3 -c 'import json,sys; r=json.load(open(sys.argv[1])); assert r["submitted"]==1000 and r["atomic"], r' "$T/import2.json"
"$CTL" -http "$C" -token-file "$T/token" export -state all -o "$T/export2.ndjson"
# Lossless on every submission-relevant field; IDs and runtime state
# are daemon-local and excluded.
python3 - "$T/export.ndjson" "$T/export2.ndjson" <<'EOF'
import json, sys
def keys(path):
    out = []
    for line in open(path):
        rec = json.loads(line)
        for k in ("id", "state", "error", "moved_bytes", "total_bytes", "node"):
            rec.pop(k, None)
        out.append(json.dumps(rec, sort_keys=True))
    return sorted(out)
a, b = keys(sys.argv[1]), keys(sys.argv[2])
assert a == b, "round trip diverged"
print(f"round trip lossless: {len(a)} records")
EOF

### 4. drain: move a populated queue from slow daemon A to B
# One 64 KiB copy throttled to 2 KiB/s occupies A's single worker; the
# five 1 KiB copies behind it stay pending.
python3 - "$T/drain.ndjson" <<'EOF'
import base64, json, sys
with open(sys.argv[1], "w") as f:
    blocker = {
        "kind": "copy", "max_bps": 2048,
        "input": {"kind": "memory", "data": base64.b64encode(b"x" * 65536).decode()},
        "output": {"kind": "local-path", "dataspace": "disk0://", "path": "blocker"},
    }
    f.write(json.dumps(blocker) + "\n")
    for i in range(5):
        rec = {
            "kind": "copy",
            "input": {"kind": "memory", "data": base64.b64encode(bytes([i]) * 1024).decode()},
            "output": {"kind": "local-path", "dataspace": "disk0://", "path": f"t{i}"},
        }
        f.write(json.dumps(rec) + "\n")
EOF
"$CTL" -http "$A" -token-file "$T/token" -json import -ids "$T/drain.ndjson" > "$T/drain-import.json"
BLOCKER=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["task_ids"][0])' "$T/drain-import.json")

"$CTL" -http "$A" -token-file "$T/token" -json drain -to "$B" > "$T/drain.json"
python3 - "$T/drain.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["tasks"] == 5 and r["imported"] == 5 and r["cancelled"] == 5, r
assert r["bytes"] == 5 * 1024, r
print(f'drained {r["tasks"]} tasks / {r["bytes"]} bytes, counters preserved')
EOF

# The drained copies run to completion on B with their payloads intact.
for i in $(seq 1 100); do
  [ "$(ls "$T/b-data" 2>/dev/null | wc -l)" -eq 5 ] && break
  sleep 0.2
done
[ "$(ls "$T/b-data" | wc -l)" -eq 5 ] || { echo "drained tasks did not land on B"; exit 1; }
for i in 0 1 2 3 4; do
  [ "$(stat -c %s "$T/b-data/t$i")" -eq 1024 ] || { echo "payload t$i corrupted"; exit 1; }
done
echo "drained payloads verified on destination"

### 5. documented rejection paths
curl -s -o /dev/null -w '%{http_code}\n' "$B/v2/status" | grep -qx 401
head -c 9000000 /dev/zero | curl -s -o /dev/null -w '%{http_code}\n' \
  -H "Authorization: Bearer $(cat "$T/token")" \
  -X POST --data-binary @- "$B/v2/tasks" | grep -qx 413
echo "401/413 rejection paths verified"

# Cancel the throttled blocker so daemon A shuts down promptly.
"$CTL" -socket "$T/a-ctl.sock" cancel "$BLOCKER" >/dev/null 2>&1 || true

### 6. SIGTERM drain: clean-shutdown marker, fast replay, nothing lost
mkdir -p "$T/d-data"
D=http://127.0.0.1:9414
"$URD" -node d -user "$T/d-user.sock" -control "$T/d-ctl.sock" \
  -workers 1 -state-dir "$T/d-state" -drain-timeout 30s \
  -http-addr 127.0.0.1:9414 -http-token-file "$T/token" &
D_PID=$!
for i in $(seq 1 50); do
  "$CTL" -socket "$T/d-ctl.sock" ping 2>/dev/null && break
  sleep 0.2
done
"$CTL" -socket "$T/d-ctl.sock" register-dataspace disk0:// posix-dir "$T/d-data"

# The probe endpoints answer ahead of bearer auth.
curl -s -o /dev/null -w '%{http_code}\n' "$D/v2/healthz" | grep -qx 200
curl -s -o /dev/null -w '%{http_code}\n' "$D/v2/readyz" | grep -qx 200

# A throttled blocker (16 KiB at 16 KiB/s, ~1 s) occupies the single
# worker; the five quick copies behind it stay queued.
python3 - "$T/term.ndjson" <<'EOF'
import base64, json, sys
with open(sys.argv[1], "w") as f:
    blocker = {
        "kind": "copy", "max_bps": 16384,
        "input": {"kind": "memory", "data": base64.b64encode(b"y" * 16384).decode()},
        "output": {"kind": "local-path", "dataspace": "disk0://", "path": "blocker"},
    }
    f.write(json.dumps(blocker) + "\n")
    for i in range(5):
        rec = {
            "kind": "copy",
            "input": {"kind": "memory", "data": base64.b64encode(bytes([i]) * 1024).decode()},
            "output": {"kind": "local-path", "dataspace": "disk0://", "path": f"d{i}"},
        }
        f.write(json.dumps(rec) + "\n")
EOF
"$CTL" -http "$D" -token-file "$T/token" -json import -ids "$T/term.ndjson" > "$T/term-import.json"
TERM_IDS=$(python3 -c 'import json,sys; r=json.load(open(sys.argv[1])); assert r["submitted"]==6, r; print(" ".join(map(str, r["task_ids"])))' "$T/term-import.json")

# SIGTERM mid-transfer: the drain lets the blocker finish, leaves the
# queued copies journaled Pending, and seals the clean-shutdown marker.
kill -TERM "$D_PID"
wait "$D_PID" 2>/dev/null || true
[ -s "$T/d-data/blocker" ] && [ "$(stat -c %s "$T/d-data/blocker")" -eq 16384 ] \
  || { echo "drain did not finish the running transfer"; exit 1; }
[ "$(ls "$T/d-data" | wc -l)" -eq 1 ] || { echo "drain started queued tasks"; exit 1; }

# Restart on the same state dir: the replay sees the clean marker, the
# finished blocker stays terminal, and the queued five re-run.
"$URD" -node d -user "$T/d-user.sock" -control "$T/d-ctl.sock" \
  -workers 1 -state-dir "$T/d-state" \
  -http-addr 127.0.0.1:9414 -http-token-file "$T/token" &
for i in $(seq 1 50); do
  "$CTL" -socket "$T/d-ctl.sock" ping 2>/dev/null && break
  sleep 0.2
done
"$CTL" -socket "$T/d-ctl.sock" status > "$T/term-status.txt"
grep -q ' clean' "$T/term-status.txt" \
  || { echo "restart missed the clean-shutdown marker"; cat "$T/term-status.txt"; exit 1; }
grep -q 'requeued=5 (pending=5 running=0) cancelled=0 terminal=1' "$T/term-status.txt" \
  || { echo "unexpected replay ledger"; cat "$T/term-status.txt"; exit 1; }

# Zero lost acked tasks: every imported ID resolves finished.
for id in $TERM_IDS; do
  for i in $(seq 1 100); do
    "$CTL" -socket "$T/d-ctl.sock" task-status "$id" | grep -q finished && break
    sleep 0.2
  done
  "$CTL" -socket "$T/d-ctl.sock" task-status "$id" | grep -q finished \
    || { echo "acked task $id lost across the drain"; exit 1; }
done
for i in 0 1 2 3 4; do
  [ "$(stat -c %s "$T/d-data/d$i")" -eq 1024 ] || { echo "payload d$i corrupted"; exit 1; }
done
curl -s -o /dev/null -w '%{http_code}\n' "$D/v2/readyz" | grep -qx 200
echo "SIGTERM drain verified: clean marker replayed, zero acked tasks lost"
echo "gateway e2e OK"
