// Package norns is a from-scratch Go reproduction of "NORNS: Extending
// Slurm to Support Data-Driven Workflows through Asynchronous Data
// Staging" (Miranda, Jackson, Tocci, Panourgias & Nou, IEEE CLUSTER
// 2019).
//
// The implementation lives under internal/: the urd daemon and its
// user/control APIs (internal/urd, internal/api), the transfer plugins
// and Mercury-style fabric (internal/transfer, internal/mercury), the
// Slurm workflow extensions (internal/slurm), and the discrete-event
// substrate that stands in for the paper's testbed hardware
// (internal/sim, internal/simstore, internal/simnet). See README.md for
// the architecture overview and DESIGN.md for the system inventory. The
// top-level bench_test.go regenerates every table and figure of the
// evaluation.
package norns
