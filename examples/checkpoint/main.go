// Checkpoint offloading: the paper's Listing 2 scenario. A compute
// process periodically offloads in-memory checkpoint buffers to
// node-local storage through asynchronous NORNS tasks, overlapping the
// I/O with the next compute step, then verifies every checkpoint landed.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/urd"
)

const (
	checkpoints    = 8
	checkpointSize = 4 << 20 // 4 MiB per checkpoint
)

// computeStep stands in for one iteration of a solver: it mutates the
// state buffer.
func computeStep(state []byte, rng *rand.Rand) {
	for i := 0; i < 1024; i++ {
		state[rng.Intn(len(state))] = byte(rng.Int())
	}
}

func main() {
	dir, err := os.MkdirTemp("", "norns-checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	daemon, err := urd.New(urd.Config{
		NodeName:      "node001",
		UserSocket:    filepath.Join(dir, "norns.sock"),
		ControlSocket: filepath.Join(dir, "nornsctl.sock"),
		Workers:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer daemon.Close()

	ctl, err := nornsctl.Dial(filepath.Join(dir, "nornsctl.sock"))
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{
		ID: "tmp0://", Backend: nornsctl.BackendNVM, Mount: filepath.Join(dir, "pmem"),
	}); err != nil {
		log.Fatal(err)
	}
	if err := ctl.RegisterJob(nornsctl.JobDef{
		ID: 1, Hosts: []string{"node001"},
		Limits: []nornsctl.JobLimit{{Dataspace: "tmp0://"}},
	}); err != nil {
		log.Fatal(err)
	}
	if err := ctl.AddProcess(1, nornsctl.ProcDef{PID: uint64(os.Getpid())}); err != nil {
		log.Fatal(err)
	}

	app, err := norns.Dial(filepath.Join(dir, "norns.sock"))
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	rng := rand.New(rand.NewSource(1))
	state := make([]byte, checkpointSize)
	var pending []*norns.IOTask

	start := time.Now()
	for step := 1; step <= checkpoints; step++ {
		computeStep(state, rng)

		// Listing 2: snapshot the buffer and submit the transfer without
		// waiting; the next compute step overlaps with the I/O.
		snapshot := make([]byte, len(state))
		copy(snapshot, state)
		tk := norns.NewIOTask(norns.Copy,
			norns.MemoryRegion(snapshot),
			norns.PosixPath("tmp0://", fmt.Sprintf("ckpt/%04d", step)))
		if err := app.Submit(&tk); err != nil {
			log.Fatalf("task submission failed: %v", err)
		}
		pending = append(pending, &tk)
		fmt.Printf("step %d: checkpoint %d submitted as task %d\n", step, step, tk.ID)
	}

	// End of run: wait for every offload and check its status, exactly
	// as Listing 2 does with norns_wait + norns_error.
	for _, tk := range pending {
		if err := app.Wait(tk, 30*time.Second); err != nil {
			log.Fatalf("norns_wait: %v", err)
		}
		stats, err := app.Error(tk)
		if err != nil {
			log.Fatalf("norns_error: %v", err)
		}
		if stats.Status != task.Finished {
			log.Fatalf("task %d failed: %s", tk.ID, stats.Err)
		}
	}
	fmt.Printf("all %d checkpoints (%d MiB) offloaded in %v\n",
		checkpoints, checkpoints*checkpointSize>>20, time.Since(start).Round(time.Millisecond))

	files, err := os.ReadDir(filepath.Join(dir, "pmem", "ckpt"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d checkpoint files on node-local storage\n", len(files))
}
