// Quickstart: start a urd daemon in-process, register a dataspace and a
// job through the nornsctl (control) API, then drive asynchronous I/O
// tasks through the norns (user) API — batch-submitted, tracked through
// event-resolved TaskHandles, and cancelled — and finally restart the
// daemon to show the durable task journal (urd -state-dir) replaying
// its state.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/urd"
)

func main() {
	dir, err := os.MkdirTemp("", "norns-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Start the urd daemon, as slurmd would on node boot. StateDir
	//    enables the write-ahead task journal: submissions and state
	//    transitions are durable, so a daemon restart does not lose the
	//    staging work a batch job is counting on.
	daemon, err := urd.New(urd.Config{
		NodeName:      "node001",
		UserSocket:    filepath.Join(dir, "norns.sock"),
		ControlSocket: filepath.Join(dir, "nornsctl.sock"),
		Workers:       4,
		StateDir:      filepath.Join(dir, "state"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer daemon.Close()
	fmt.Println("urd daemon up on node001")

	// 2. Administrative setup (what the Slurm extensions do per job):
	//    register a node-local dataspace and a job allowed to use it.
	ctl, err := nornsctl.Dial(filepath.Join(dir, "nornsctl.sock"))
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{
		ID:      "nvme0://",
		Backend: nornsctl.BackendNVM,
		Mount:   filepath.Join(dir, "nvme0"), // the device mount point
	}); err != nil {
		log.Fatal(err)
	}
	jobID := uint64(1001)
	if err := ctl.RegisterJob(nornsctl.JobDef{
		ID:     jobID,
		Hosts:  []string{"node001"},
		Limits: []nornsctl.JobLimit{{Dataspace: "nvme0://"}},
	}); err != nil {
		log.Fatal(err)
	}
	pid := uint64(os.Getpid())
	if err := ctl.AddProcess(jobID, nornsctl.ProcDef{PID: pid, UID: 1000, GID: 1000}); err != nil {
		log.Fatal(err)
	}
	status, err := ctl.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemon status:", status)

	// 3. The application side: list dataspaces and run an async copy.
	app, err := norns.Dial(filepath.Join(dir, "norns.sock"))
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	infos, err := app.GetDataspaceInfo()
	if err != nil {
		log.Fatal(err)
	}
	for _, ds := range infos {
		fmt.Printf("dataspace %s (backend %d) at %s\n", ds.ID, ds.Backend, ds.Mount)
	}

	//    The v2 surface batches the whole stage-out into ONE RPC and
	//    tracks completion through server-pushed events: every call
	//    takes a context, handles resolve without a single status poll,
	//    and a full daemon rejects individual entries with ErrAgain
	//    (retry just those) instead of failing the batch.
	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	payload := []byte("simulation output block, 10 MiB in a real run")
	blocks := make([]*norns.IOTask, 0, 4)
	for i := range cap(blocks) {
		tk := norns.NewIOTask(norns.Copy,
			norns.MemoryRegion(payload),
			norns.PosixPath("nvme0://", fmt.Sprintf("results/block-%04d", i)))
		blocks = append(blocks, &tk)
	}
	results, err := app.SubmitBatch(ctx, blocks) // one RPC for the whole stage-out
	if err != nil {
		log.Fatal(err)
	}
	handles := make([]*norns.TaskHandle, 0, len(results))
	for i, r := range results {
		if errors.Is(r.Err, norns.ErrAgain) {
			log.Fatalf("daemon at capacity, resubmit entry %d later", i)
		} else if r.Err != nil {
			log.Fatal(r.Err)
		}
		handles = append(handles, r.Handle)
	}
	fmt.Printf("batch of %d queued in one RPC; doing other work while it runs...\n", len(handles))

	// WaitAll resolves from pushed events — the daemon serves zero
	// OpTaskStatus polls for this whole flow.
	if err := app.WaitAll(ctx, handles...); err != nil {
		log.Fatal(err)
	}
	for _, h := range handles {
		st := h.Stats()
		fmt.Printf("task %d finished: %d/%d bytes moved\n", h.ID(), st.MovedBytes, st.TotalBytes)
	}

	data, err := os.ReadFile(filepath.Join(dir, "nvme0", "results", "block-0001"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified %d bytes on the node-local tier\n", len(data))

	// 4. Cancellation (norns_cancel): abort a task the application no
	//    longer needs. Pending tasks free their queue slot immediately;
	//    running ones are interrupted at the next chunk boundary. The
	//    handle resolves to ErrCancelled through the same event stream.
	doomed := norns.NewIOTask(norns.Copy,
		norns.MemoryRegion(payload),
		norns.PosixPath("nvme0://", "results/abandoned"))
	doomed.Deadline = 30 * time.Second // belt-and-braces bound on execution
	dh, err := app.SubmitTask(ctx, &doomed)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := app.Cancel(&doomed); err != nil {
		fmt.Printf("cancel raced with completion: %v\n", err)
	}
	select {
	case <-dh.Done():
	case <-ctx.Done():
		log.Fatal(ctx.Err())
	}
	stats := dh.Stats()
	fmt.Printf("task %d ended as %s after %d/%d bytes (handle err: %v)\n",
		doomed.ID, stats.Status, stats.MovedBytes, stats.TotalBytes, dh.Err())
	tk := *blocks[0] // the journal lookup below re-checks this task after restart

	// 5. Durability: restart the daemon on the same state directory and
	//    watch the journal replay. Dataspaces come back without
	//    re-registration, finished tasks keep answering status queries
	//    (they are never re-run), and — after a crash — anything still
	//    pending or running is re-queued and driven to completion.
	app.Close()
	ctl.Close()
	daemon.Close() // graceful here; a SIGKILL would recover the same way
	daemon2, err := urd.New(urd.Config{
		NodeName:      "node001",
		ControlSocket: filepath.Join(dir, "nornsctl2.sock"),
		Workers:       4,
		StateDir:      filepath.Join(dir, "state"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer daemon2.Close()
	rec := daemon2.Recovered()
	fmt.Printf("daemon restarted: %d terminal task(s) resurrected, %d re-queued\n",
		rec.Terminal, rec.Requeued())

	ctl2, err := nornsctl.Dial(filepath.Join(dir, "nornsctl2.sock"))
	if err != nil {
		log.Fatal(err)
	}
	defer ctl2.Close()
	recovered, err := ctl2.TaskStatus(tk.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task %d after restart: %s (%d/%d bytes) — served from the journal\n",
		tk.ID, recovered.Status, recovered.MovedBytes, recovered.TotalBytes)
	info, err := ctl2.StatusInfo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status: journal=%v tasks=%d policy=%s\n", info.Journal, info.Tasks, info.Policy)
}
