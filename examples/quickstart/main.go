// Quickstart: start a urd daemon in-process, register a dataspace and a
// job through the nornsctl (control) API, then submit, wait on, check,
// and cancel asynchronous I/O tasks through the norns (user) API — the
// complete life cycle of Section IV — and finally restart the daemon to
// show the durable task journal (urd -state-dir) replaying its state.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/urd"
)

func main() {
	dir, err := os.MkdirTemp("", "norns-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Start the urd daemon, as slurmd would on node boot. StateDir
	//    enables the write-ahead task journal: submissions and state
	//    transitions are durable, so a daemon restart does not lose the
	//    staging work a batch job is counting on.
	daemon, err := urd.New(urd.Config{
		NodeName:      "node001",
		UserSocket:    filepath.Join(dir, "norns.sock"),
		ControlSocket: filepath.Join(dir, "nornsctl.sock"),
		Workers:       4,
		StateDir:      filepath.Join(dir, "state"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer daemon.Close()
	fmt.Println("urd daemon up on node001")

	// 2. Administrative setup (what the Slurm extensions do per job):
	//    register a node-local dataspace and a job allowed to use it.
	ctl, err := nornsctl.Dial(filepath.Join(dir, "nornsctl.sock"))
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{
		ID:      "nvme0://",
		Backend: nornsctl.BackendNVM,
		Mount:   filepath.Join(dir, "nvme0"), // the device mount point
	}); err != nil {
		log.Fatal(err)
	}
	jobID := uint64(1001)
	if err := ctl.RegisterJob(nornsctl.JobDef{
		ID:     jobID,
		Hosts:  []string{"node001"},
		Limits: []nornsctl.JobLimit{{Dataspace: "nvme0://"}},
	}); err != nil {
		log.Fatal(err)
	}
	pid := uint64(os.Getpid())
	if err := ctl.AddProcess(jobID, nornsctl.ProcDef{PID: pid, UID: 1000, GID: 1000}); err != nil {
		log.Fatal(err)
	}
	status, err := ctl.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemon status:", status)

	// 3. The application side: list dataspaces and run an async copy.
	app, err := norns.Dial(filepath.Join(dir, "norns.sock"))
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	infos, err := app.GetDataspaceInfo()
	if err != nil {
		log.Fatal(err)
	}
	for _, ds := range infos {
		fmt.Printf("dataspace %s (backend %d) at %s\n", ds.ID, ds.Backend, ds.Mount)
	}

	payload := []byte("simulation output block, 10 MiB in a real run")
	tk := norns.NewIOTask(norns.Copy,
		norns.MemoryRegion(payload),
		norns.PosixPath("nvme0://", "results/block-0001"))
	if err := app.Submit(&tk); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted task %d; doing other work while it runs...\n", tk.ID)

	if err := app.Wait(&tk, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	stats, err := app.Error(&tk)
	if err != nil {
		log.Fatal(err)
	}
	if stats.Status != task.Finished {
		log.Fatalf("task failed: %+v", stats)
	}
	fmt.Printf("task %d finished: %d/%d bytes moved\n", tk.ID, stats.MovedBytes, stats.TotalBytes)

	data, err := os.ReadFile(filepath.Join(dir, "nvme0", "results", "block-0001"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified %d bytes on the node-local tier\n", len(data))

	// 4. Cancellation (norns_cancel): abort a task the application no
	//    longer needs. Pending tasks free their queue slot immediately;
	//    running ones are interrupted at the next chunk boundary.
	doomed := norns.NewIOTask(norns.Copy,
		norns.MemoryRegion(payload),
		norns.PosixPath("nvme0://", "results/abandoned"))
	doomed.Deadline = 30 * time.Second // belt-and-braces bound on execution
	if err := app.Submit(&doomed); err != nil {
		log.Fatal(err)
	}
	if _, err := app.Cancel(&doomed); err != nil {
		fmt.Printf("cancel raced with completion: %v\n", err)
	}
	if err := app.Wait(&doomed, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	stats, err = app.Error(&doomed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task %d ended as %s after %d/%d bytes\n",
		doomed.ID, stats.Status, stats.MovedBytes, stats.TotalBytes)

	// 5. Durability: restart the daemon on the same state directory and
	//    watch the journal replay. Dataspaces come back without
	//    re-registration, finished tasks keep answering status queries
	//    (they are never re-run), and — after a crash — anything still
	//    pending or running is re-queued and driven to completion.
	app.Close()
	ctl.Close()
	daemon.Close() // graceful here; a SIGKILL would recover the same way
	daemon2, err := urd.New(urd.Config{
		NodeName:      "node001",
		ControlSocket: filepath.Join(dir, "nornsctl2.sock"),
		Workers:       4,
		StateDir:      filepath.Join(dir, "state"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer daemon2.Close()
	rec := daemon2.Recovered()
	fmt.Printf("daemon restarted: %d terminal task(s) resurrected, %d re-queued\n",
		rec.Terminal, rec.Requeued())

	ctl2, err := nornsctl.Dial(filepath.Join(dir, "nornsctl2.sock"))
	if err != nil {
		log.Fatal(err)
	}
	defer ctl2.Close()
	recovered, err := ctl2.TaskStatus(tk.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task %d after restart: %s (%d/%d bytes) — served from the journal\n",
		tk.ID, recovered.Status, recovered.MovedBytes, recovered.TotalBytes)
	info, err := ctl2.StatusInfo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status: journal=%v tasks=%d policy=%s\n", info.Journal, info.Tasks, info.Policy)
}
