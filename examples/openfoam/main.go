// OpenFOAM-style staged workflow: the Table V scenario. A serial mesh
// decomposition on one node, an inter-node redistribution staged by
// NORNS over the fabric, and a 16-node solver — compared against the
// same workflow running directly on the parallel file system.
package main

import (
	"fmt"
	"log"

	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/simnet"
	"github.com/ngioproject/norns-go/internal/simstore"
	"github.com/ngioproject/norns-go/internal/slurm"
	"github.com/ngioproject/norns-go/internal/workload"
)

const (
	meshBytes   = 30e9
	outputBytes = 160e9
	solverNodes = 16
)

func newCluster() (*sim.Engine, *slurm.SimEnv, *slurm.Controller) {
	eng := sim.NewEngine()
	env := slurm.NewSimEnv(eng)
	env.AddTier("lustre://", simstore.NewPFS(eng, simstore.PFSConfig{
		Name: "lustre", ReadBW: 2.27e9, WriteBW: 3.125e9, Stripes: 6, ClientCap: 0.35e9,
	}))
	env.AddTier("nvme0://", simstore.NewNodeLocal(eng, simstore.NodeLocalConfig{
		Name: "dcpmm", ReadBW: 62e9, WriteBW: 50e9,
	}))
	env.Fabric = simnet.NewFabric(eng, 0.94e9, 0, 0.0009)
	nodes := make([]string, solverNodes)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%02d", i+1)
	}
	ctl, err := slurm.NewController(env, slurm.Config{Nodes: nodes, DataAware: true})
	if err != nil {
		log.Fatal(err)
	}
	return eng, env, ctl
}

func runWorkflow(tier string, staged bool) (decomp, staging, solver float64) {
	eng, _, ctl := newCluster()

	decompSpec := &slurm.JobSpec{
		Name: "decomposePar", Nodes: 1, WorkflowStart: true,
		Payload: workload.Seq{
			workload.Compute{Seconds: 1105},
			// The decomposition is serial: one writer stream.
			workload.IO{Dataspace: tier, Ref: "mesh", Bytes: meshBytes, Write: true, Procs: 1},
		},
	}
	if staged {
		decompSpec.Persists = []slurm.PersistDirective{{Op: slurm.PersistStore, Location: tier + "mesh"}}
	}
	dID, err := ctl.Submit(decompSpec)
	if err != nil {
		log.Fatal(err)
	}

	solverSpec := &slurm.JobSpec{
		Name: "picoFoam", Nodes: solverNodes, WorkflowEnd: true,
		Dependencies: []slurm.JobID{dID},
		Payload: workload.Seq{
			workload.IO{Dataspace: tier, Ref: "mesh", Procs: 48},
			workload.Compute{Seconds: 59}, // 20 timesteps, 768 ranks
			workload.IO{Dataspace: tier, Ref: "solution", Bytes: outputBytes, Write: true, Procs: 48},
		},
	}
	if staged {
		solverSpec.StageIns = []slurm.StageDirective{{
			Kind: slurm.StageIn, Origin: tier + "mesh", Destination: tier + "mesh",
		}}
	}
	sID, err := ctl.Submit(solverSpec)
	if err != nil {
		log.Fatal(err)
	}
	eng.Run()

	dj, _ := ctl.Job(dID)
	sj, _ := ctl.Job(sID)
	if dj.State != slurm.JobCompleted || sj.State != slurm.JobCompleted {
		log.Fatalf("workflow failed: decompose=%v (%s), solver=%v (%s)",
			dj.State, dj.FailReason, sj.State, sj.FailReason)
	}
	return dj.EndTime - dj.StartTime, sj.StartTime - sj.StageInStart, sj.EndTime - sj.StartTime
}

func main() {
	fmt.Println("OpenFOAM aircraft simulation, ~43M mesh points, 768 MPI ranks over 16 nodes")
	fmt.Println()

	ld, _, ls := runWorkflow("lustre://", false)
	nd, nstage, ns := runWorkflow("nvme0://", true)

	fmt.Printf("%-16s %12s %12s\n", "Workflow phase", "Lustre", "NVMs")
	fmt.Printf("%-16s %11.0fs %11.0fs\n", "decomposition", ld, nd)
	fmt.Printf("%-16s %12s %11.0fs\n", "data-staging", "-", nstage)
	fmt.Printf("%-16s %11.0fs %11.0fs\n", "solver", ls, ns)
	fmt.Println()
	fmt.Printf("solver speedup on node-local NVM: %.1fx\n", ls/ns)
	fmt.Printf("redistribution cost (%.0f GB over the fabric): %.0fs — amortized over a full\n", meshBytes/1e9, nstage)
	fmt.Println("simulation of thousands of timesteps, it is negligible (Section V-D).")
}
