// Pipeline: a three-stage workflow driven by the workflow-aware
// scheduler against REAL urd daemons — the deployment architecture of
// the paper at laptop scale. Stage-in pulls input from a shared
// directory (standing in for the PFS mount), each stage computes on
// node-local storage, and the final stage-out publishes results,
// with the daemons' observed-bandwidth feedback printed at the end.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/slurm"
	"github.com/ngioproject/norns-go/internal/urd"
)

func main() {
	base, err := os.MkdirTemp("", "norns-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	share := filepath.Join(base, "lustre")

	// Two compute nodes, each with its own urd daemon and NVM mount.
	env := slurm.NewRealEnv()
	nodes := []string{"node001", "node002"}
	nvme := map[string]string{}
	ctls := map[string]*nornsctl.Client{}
	for _, name := range nodes {
		sock := filepath.Join(base, name+".sock")
		d, err := urd.New(urd.Config{NodeName: name, ControlSocket: sock, Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		ctl, err := nornsctl.Dial(sock)
		if err != nil {
			log.Fatal(err)
		}
		defer ctl.Close()
		nvme[name] = filepath.Join(base, name+"-nvme")
		must(ctl.RegisterDataspace(nornsctl.DataspaceDef{
			ID: "nvme0://", Backend: nornsctl.BackendNVM, Mount: nvme[name]}))
		must(ctl.RegisterDataspace(nornsctl.DataspaceDef{
			ID: "lustre://", Backend: nornsctl.BackendParallelFS, Mount: share}))
		env.AttachNode(name, ctl)
		ctls[name] = ctl
	}
	ctl, err := slurm.NewController(env, slurm.Config{Nodes: nodes, DataAware: true})
	if err != nil {
		log.Fatal(err)
	}

	// Input dataset on the shared tier.
	must(os.MkdirAll(filepath.Join(share, "input"), 0o755))
	must(os.WriteFile(filepath.Join(share, "input", "samples.txt"),
		[]byte("alpha\nbeta\ngamma\ndelta\n"), 0o644))

	stage := func(name string, fn slurm.JobFunc) *slurm.JobSpec {
		return &slurm.JobSpec{Name: name, Nodes: 1, Payload: fn}
	}

	ingest := stage("ingest", func(alloc []string) error {
		dir := nvme[alloc[0]]
		in, err := os.ReadFile(filepath.Join(dir, "raw", "samples.txt"))
		if err != nil {
			return err
		}
		up := strings.ToUpper(string(in))
		must(os.MkdirAll(filepath.Join(dir, "clean"), 0o755))
		return os.WriteFile(filepath.Join(dir, "clean", "samples.txt"), []byte(up), 0o644)
	})
	ingest.StageIns = []slurm.StageDirective{{
		Kind: slurm.StageIn, Origin: "lustre://input/samples.txt", Destination: "nvme0://raw/samples.txt",
	}}
	ingest.Persists = []slurm.PersistDirective{{Op: slurm.PersistStore, Location: "nvme0://clean"}}

	transform := stage("transform", func(alloc []string) error {
		dir := nvme[alloc[0]]
		in, err := os.ReadFile(filepath.Join(dir, "clean", "samples.txt"))
		if err != nil {
			return err
		}
		lines := strings.Split(strings.TrimSpace(string(in)), "\n")
		var out strings.Builder
		for i, l := range lines {
			fmt.Fprintf(&out, "%d: %s\n", i+1, l)
		}
		must(os.MkdirAll(filepath.Join(dir, "numbered"), 0o755))
		return os.WriteFile(filepath.Join(dir, "numbered", "samples.txt"), []byte(out.String()), 0o644)
	})
	transform.Persists = []slurm.PersistDirective{{Op: slurm.PersistStore, Location: "nvme0://numbered"}}

	publish := stage("publish", func(alloc []string) error {
		dir := nvme[alloc[0]]
		in, err := os.ReadFile(filepath.Join(dir, "numbered", "samples.txt"))
		if err != nil {
			return err
		}
		must(os.MkdirAll(filepath.Join(dir, "report"), 0o755))
		report := fmt.Sprintf("report generated from %d bytes\n%s", len(in), in)
		return os.WriteFile(filepath.Join(dir, "report", "final.txt"), []byte(report), 0o644)
	})
	publish.StageOuts = []slurm.StageDirective{{
		Kind: slurm.StageOut, Origin: "nvme0://report/final.txt", Destination: "lustre://results/final.txt",
	}}

	ids, err := slurm.SubmitPipeline(ctl, []*slurm.JobSpec{ingest, transform, publish})
	if err != nil {
		log.Fatal(err)
	}

	// Wait for the last stage.
	for {
		j, err := ctl.Job(ids[len(ids)-1])
		if err != nil {
			log.Fatal(err)
		}
		if j.State.Terminal() {
			if j.State != slurm.JobCompleted {
				log.Fatalf("pipeline failed: %v (%s)", j.State, j.FailReason)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	result, err := os.ReadFile(filepath.Join(share, "results", "final.txt"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipeline output on the shared tier:")
	fmt.Println(string(result))

	for name, c := range ctls {
		m, err := c.TransferStats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d transfers, %d bytes moved, observed bandwidth %.1f MiB/s\n",
			name, m.Finished, m.MovedBytes, m.BandwidthBps/(1<<20))
	}
	fmt.Println("\nscheduler event log:")
	for _, ev := range ctl.Events() {
		fmt.Println(" ", ev)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
