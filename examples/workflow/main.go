// Workflow: a two-phase producer/consumer data-driven workflow driven
// through the Slurm extensions, using batch scripts with #NORNS
// directives, the workflow-aware scheduler, data-aware node selection,
// and the simulated NEXTGenIO-style cluster. This is the Table III
// scenario end to end.
package main

import (
	"fmt"
	"log"

	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/simstore"
	"github.com/ngioproject/norns-go/internal/slurm"
	"github.com/ngioproject/norns-go/internal/workload"
)

const producerScript = `#!/bin/bash
#SBATCH --job-name=producer --nodes=1
#SBATCH --workflow-start
#NORNS stage_in lustre://input/params.dat nvme0://params.dat
#NORNS persist store nvme0://inter
srun ./producer
`

const consumerScript = `#!/bin/bash
#SBATCH --job-name=consumer --nodes=1
#SBATCH --workflow-end
#NORNS stage_out nvme0://final lustre://results/final
srun ./consumer
`

func main() {
	// A 4-node cluster with a Lustre-like PFS and node-local NVM.
	eng := sim.NewEngine()
	env := slurm.NewSimEnv(eng)
	env.AddTier("lustre://", simstore.NewPFS(eng, simstore.PFSConfig{
		Name: "lustre", ReadBW: 2.27e9, WriteBW: 3.125e9, Stripes: 6, ClientCap: 0.35e9,
	}))
	env.AddTier("nvme0://", simstore.NewNodeLocal(eng, simstore.NodeLocalConfig{
		Name: "dcpmm", ReadBW: 62e9, WriteBW: 50e9,
	}))
	ctl, err := slurm.NewController(env, slurm.Config{
		Nodes:     []string{"n1", "n2", "n3", "n4"},
		DataAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Input data waiting on the PFS.
	env.PutData("", "lustre://input/params.dat", 1e9)

	// Parse the batch scripts exactly as sbatch would.
	prodSpec, err := slurm.ParseScript(producerScript)
	if err != nil {
		log.Fatal(err)
	}
	prodSpec.Payload = workload.Seq{
		workload.IO{Dataspace: "nvme0://", Ref: "params.dat"}, // read staged input
		workload.Compute{Seconds: 64},
		workload.IO{Dataspace: "nvme0://", Ref: "inter", Bytes: 100e9, Write: true, Procs: 24},
	}
	prodID, err := ctl.Submit(prodSpec)
	if err != nil {
		log.Fatal(err)
	}

	consSpec, err := slurm.ParseScript(consumerScript)
	if err != nil {
		log.Fatal(err)
	}
	consSpec.Dependencies = []slurm.JobID{prodID}
	consSpec.Payload = workload.Seq{
		workload.IO{Dataspace: "nvme0://", Ref: "inter", Procs: 24}, // shared via node-local NVM
		workload.Compute{Seconds: 30},
		workload.IO{Dataspace: "nvme0://", Ref: "final", Bytes: 10e9, Write: true, Procs: 24},
	}
	consID, err := ctl.Submit(consSpec)
	if err != nil {
		log.Fatal(err)
	}

	// Run the cluster to completion.
	eng.Run()

	prod, _ := ctl.Job(prodID)
	cons, _ := ctl.Job(consID)
	wfID := prod.Workflow
	state, jobs, err := ctl.WorkflowStatus(wfID)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workflow %d: %s\n", wfID, state)
	for _, js := range jobs {
		fmt.Printf("  job %d (%s): %s\n", js.ID, js.Name, js.State)
	}
	fmt.Printf("producer: nodes=%v staged-in %.1fs, compute %.1fs\n",
		prod.Nodes, prod.StartTime-prod.StageInStart, prod.EndTime-prod.StartTime)
	fmt.Printf("consumer: nodes=%v compute %.1fs (data shared on node-local NVM)\n",
		cons.Nodes, cons.EndTime-cons.StartTime)
	fmt.Printf("consumer stage-out finished at t=%.1fs\n", cons.ReleaseTime)
	if b, ok := env.GetData("", "lustre://results/final"); ok {
		fmt.Printf("results on the PFS: %.0f bytes\n", b)
	}
	fmt.Println("\nscheduler event log:")
	for _, ev := range ctl.Events() {
		fmt.Println(" ", ev)
	}
}
