package nornsctl_test

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/urd"
)

func harness(t *testing.T) *nornsctl.Client {
	t.Helper()
	dir := t.TempDir()
	d, err := urd.New(urd.Config{
		NodeName:      "ctltest",
		ControlSocket: filepath.Join(dir, "c.sock"),
		Workers:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	c, err := nornsctl.Dial(filepath.Join(dir, "c.sock"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPingStatus(t *testing.T) {
	c := harness(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	s, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "ctltest") || !strings.Contains(s, "policy=fcfs") {
		t.Fatalf("status = %q", s)
	}
}

func TestDataspaceManagement(t *testing.T) {
	c := harness(t)
	def := nornsctl.DataspaceDef{ID: "nvme0://", Backend: nornsctl.BackendNVM, Capacity: 1 << 30}
	if err := c.RegisterDataspace(def); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterDataspace(def); err == nil {
		t.Fatal("duplicate register accepted")
	}
	if err := c.UpdateDataspace(def); err != nil {
		t.Fatal(err)
	}
	if err := c.TrackDataspace("nvme0://", true); err != nil {
		t.Fatal(err)
	}
	ids, err := c.TrackedNonEmpty()
	if err != nil || len(ids) != 0 {
		t.Fatalf("TrackedNonEmpty = %v, %v", ids, err)
	}
	if err := c.UnregisterDataspace("nvme0://"); err != nil {
		t.Fatal(err)
	}
}

func TestJobAndProcessManagement(t *testing.T) {
	c := harness(t)
	def := nornsctl.JobDef{ID: 9, Hosts: []string{"ctltest"},
		Limits: []nornsctl.JobLimit{{Dataspace: "x://", Quota: 5}}}
	if err := c.RegisterJob(def); err != nil {
		t.Fatal(err)
	}
	def.Hosts = append(def.Hosts, "other")
	if err := c.UpdateJob(def); err != nil {
		t.Fatal(err)
	}
	if err := c.AddProcess(9, nornsctl.ProcDef{PID: 4242}); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveProcess(9, nornsctl.ProcDef{PID: 4242}); err != nil {
		t.Fatal(err)
	}
	if err := c.UnregisterJob(9); err != nil {
		t.Fatal(err)
	}
	if err := c.UnregisterJob(9); err == nil {
		t.Fatal("double unregister accepted")
	}
}

func TestAdminTaskSubmitWaitStatus(t *testing.T) {
	c := harness(t)
	if err := c.RegisterDataspace(nornsctl.DataspaceDef{ID: "m://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit(task.Copy, task.MemoryRegion([]byte("admin staged")), task.PosixPath("m://", "f"), 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != task.Finished || st.MovedBytes != 12 {
		t.Fatalf("stats = %+v", st)
	}
	ts, err := c.TaskStatus(id)
	if err != nil || ts.Status != task.Finished {
		t.Fatalf("TaskStatus = %+v, %v", ts, err)
	}
}

func TestWaitUnknownTask(t *testing.T) {
	c := harness(t)
	if _, err := c.Wait(99999, 10*time.Millisecond); err == nil {
		t.Fatal("wait on unknown task succeeded")
	}
}

func TestTransferStatsReporting(t *testing.T) {
	c := harness(t)
	if err := c.RegisterDataspace(nornsctl.DataspaceDef{ID: "m://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	m, err := c.TransferStats()
	if err != nil {
		t.Fatal(err)
	}
	if m.Samples != 0 || m.Finished != 0 {
		t.Fatalf("fresh daemon metrics = %+v", m)
	}
	id, err := c.Submit(task.Copy, task.MemoryRegion(make([]byte, 64<<10)), task.PosixPath("m://", "f"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(id, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	m, err = c.TransferStats()
	if err != nil {
		t.Fatal(err)
	}
	if m.Finished != 1 || m.MovedBytes != 64<<10 || m.Samples != 1 {
		t.Fatalf("metrics after transfer = %+v", m)
	}
	if m.BandwidthBps <= 0 {
		t.Fatalf("bandwidth = %v", m.BandwidthBps)
	}
}

func TestShutdownStopsDaemon(t *testing.T) {
	dir := t.TempDir()
	d, err := urd.New(urd.Config{NodeName: "s", ControlSocket: filepath.Join(dir, "c.sock"), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c, err := nornsctl.Dial(filepath.Join(dir, "c.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Subsequent calls must fail once the daemon is down.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Ping(); err != nil {
			return // connection dropped, daemon is gone
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon still responding after shutdown")
}

func TestErrTimeoutSentinel(t *testing.T) {
	if !errors.Is(nornsctl.ErrTimeout, nornsctl.ErrTimeout) {
		t.Fatal("sentinel identity broken")
	}
}
