// Package nornsctl is the administrative NORNS API (the nornsctl_*
// functions of Table I): job schedulers use it to control the urd
// daemon, define dataspaces and jobs, attach processes, and submit the
// staging I/O tasks that run a scheduled job.
package nornsctl

import (
	"context"
	"errors"
	"os"
	"sync"
	"time"

	"github.com/ngioproject/norns-go/internal/api/apierr"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
)

// Typed error sentinels shared with the norns API: every failed
// response satisfies errors.Is against the sentinel for its status
// code (ErrAgain is the backpressure retry signal).
var (
	ErrAgain       = apierr.ErrAgain
	ErrBadRequest  = apierr.ErrBadRequest
	ErrNoSuchTask  = apierr.ErrNoSuchTask
	ErrExists      = apierr.ErrExists
	ErrPermission  = apierr.ErrPermission
	ErrTaskError   = apierr.ErrTaskError
	ErrInternal    = apierr.ErrInternal
	ErrUnavailable = apierr.ErrUnavailable
)

// Backend kinds for RegisterDataspace, mirroring
// dataspace.BackendKind values.
const (
	BackendPosixDir    = 1
	BackendNVM         = 2
	BackendParallelFS  = 3
	BackendBurstBuffer = 4
	BackendMemory      = 5
)

// DataspaceDef describes a dataspace to register
// (nornsctl_backend_init + register_dataspace).
type DataspaceDef struct {
	ID       string
	Backend  uint32
	Mount    string // host directory backing the tier; "" = in-memory
	Capacity int64
	Track    bool
}

// JobLimit is one dataspace allowance.
type JobLimit struct {
	Dataspace string
	Quota     int64
}

// JobDef describes a job registration (nornsctl_job_init +
// register_job).
type JobDef struct {
	ID     uint64
	Hosts  []string
	Limits []JobLimit
}

// ProcDef describes a process registration (nornsctl_proc_init).
type ProcDef struct {
	PID uint64
	UID uint64
	GID uint64
}

// Stats mirrors the user API's completion report, extended with the
// segmented transfer engine's live progress: polling a running task
// reports bytes moved, segments done, and the observed rate.
type Stats struct {
	Status     task.Status
	Err        string
	TotalBytes int64
	MovedBytes int64
	// SizeErr reports a failed up-front size probe; TotalBytes is then an
	// explicit 0 fallback rather than a measured value.
	SizeErr string
	// SegmentsTotal/SegmentsDone report the transfer plan's completion
	// (0 total = unsegmented path).
	SegmentsTotal uint64
	SegmentsDone  uint64
	// BandwidthBps is the task's observed transfer rate at poll time.
	BandwidthBps float64
	// CacheBytes is the subset of MovedBytes served from the daemon's
	// staging cache instead of the fabric; DeltaBytes counts bytes never
	// moved because the destination already matched the source digests.
	CacheBytes int64
	DeltaBytes int64
	// Attempts counts completed execution attempts that failed
	// transiently and were retried (0 = first attempt succeeded or is
	// still running).
	Attempts uint64
}

func statsOf(st *proto.TaskStats) Stats {
	return Stats{
		Status:        task.Status(st.Status),
		Err:           st.Err,
		TotalBytes:    st.TotalBytes,
		MovedBytes:    st.MovedBytes,
		SizeErr:       st.SizeErr,
		SegmentsTotal: st.SegmentsTotal,
		SegmentsDone:  st.SegmentsDone,
		BandwidthBps:  st.BandwidthBps,
		CacheBytes:    st.CacheBytes,
		DeltaBytes:    st.DeltaBytes,
		Attempts:      st.Attempts,
	}
}

// Client speaks the control protocol to a urd daemon.
type Client struct {
	conn *transport.Conn
	pid  uint64

	// Push-event demultiplexing for Watch: one dispatch goroutine
	// drains the connection's event channel and routes by subscription
	// ID, so concurrent Watch calls on one client cannot steal each
	// other's events. Events arriving before their subscribe response
	// is processed are parked until the sink claims them.
	dispatchOnce sync.Once
	mu           sync.Mutex
	sinks        map[uint64]chan proto.Event
	unclaimed    map[uint64][]proto.Event
	unclaimedIDs []uint64
	// dispatchDead marks the router as exited (connection gone): sinks
	// claimed afterwards are closed immediately instead of hanging.
	dispatchDead bool
}

// unclaimed bounds, mirroring the norns client: per parked
// subscription, and across parked subscriptions.
const (
	unclaimedPerSub = 256
	unclaimedSubs   = 8
)

// startDispatch launches the shared event router (idempotent).
func (c *Client) startDispatch() {
	c.dispatchOnce.Do(func() {
		c.mu.Lock()
		c.sinks = make(map[uint64]chan proto.Event)
		c.unclaimed = make(map[uint64][]proto.Event)
		c.mu.Unlock()
		events := c.conn.Events()
		go func() {
			for ev := range events {
				c.mu.Lock()
				if sink, ok := c.sinks[ev.SubID]; ok {
					forwardEvent(sink, ev)
				} else {
					c.parkLocked(ev)
				}
				c.mu.Unlock()
			}
			// Connection gone: release every waiting Watch, present
			// and future (claimSink checks dispatchDead).
			c.mu.Lock()
			c.dispatchDead = true
			for id, sink := range c.sinks {
				close(sink)
				delete(c.sinks, id)
			}
			c.unclaimed, c.unclaimedIDs = make(map[uint64][]proto.Event), nil
			c.mu.Unlock()
		}()
	})
}

// forwardEvent hands one event to a sink without ever blocking the
// router. A full sink sheds its oldest queued event (in practice a
// progress tick) to admit a state event, so a terminal transition is
// never lost to progress backlog; overflowing progress ticks are
// simply dropped.
func forwardEvent(sink chan proto.Event, ev proto.Event) {
	select {
	case sink <- ev:
		return
	default:
	}
	if proto.EventKind(ev.Kind) != proto.EvState {
		return
	}
	select {
	case <-sink:
	default:
	}
	select {
	case sink <- ev:
	default:
	}
}

func (c *Client) parkLocked(ev proto.Event) {
	evs, known := c.unclaimed[ev.SubID]
	if !known {
		if len(c.unclaimedIDs) >= unclaimedSubs {
			oldest := c.unclaimedIDs[0]
			c.unclaimedIDs = c.unclaimedIDs[1:]
			delete(c.unclaimed, oldest)
		}
		c.unclaimedIDs = append(c.unclaimedIDs, ev.SubID)
	}
	if len(evs) < unclaimedPerSub {
		c.unclaimed[ev.SubID] = append(evs, ev)
	}
}

// claimSink registers a Watch's sink and replays events that raced
// ahead of the subscribe response. A sink claimed after the router
// exited is closed on the spot so its Watch unblocks with the
// connection error instead of hanging.
func (c *Client) claimSink(subID uint64, sink chan proto.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dispatchDead {
		close(sink)
		return
	}
	for _, ev := range c.unclaimed[subID] {
		forwardEvent(sink, ev)
	}
	delete(c.unclaimed, subID)
	for i, id := range c.unclaimedIDs {
		if id == subID {
			c.unclaimedIDs = append(c.unclaimedIDs[:i], c.unclaimedIDs[i+1:]...)
			break
		}
	}
	c.sinks[subID] = sink
}

func (c *Client) releaseSink(subID uint64) {
	c.mu.Lock()
	delete(c.sinks, subID)
	c.mu.Unlock()
}

// Dial connects to the daemon's control socket.
func Dial(socket string) (*Client, error) {
	return DialNetwork("unix", socket)
}

// DialNetwork connects over an explicit network.
func DialNetwork(network, addr string) (*Client, error) {
	conn, err := transport.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, pid: uint64(os.Getpid())}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// apiError converts a failed response into a typed error: the result
// satisfies errors.Is against the sentinel for its status code.
func apiError(resp *proto.Response) error {
	return apierr.New("nornsctl", resp)
}

func (c *Client) simple(req *proto.Request) error {
	req.PID = c.pid
	resp, err := c.conn.Call(context.Background(), req)
	if err != nil {
		return err
	}
	if resp.Status != proto.Success {
		return apiError(resp)
	}
	return nil
}

// Ping checks daemon liveness (nornsctl_send_command).
func (c *Client) Ping() error {
	return c.simple(&proto.Request{Op: proto.OpPing})
}

// Status returns the daemon's status line (nornsctl_status).
func (c *Client) Status() (string, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpStatus, PID: c.pid})
	if err != nil {
		return "", err
	}
	if resp.Status != proto.Success {
		return "", apiError(resp)
	}
	return resp.DaemonInfo, nil
}

// DaemonStatus is the structured nornsctl_status report, including what
// the daemon's last journal replay recovered (all-zero when the daemon
// runs without a state directory).
type DaemonStatus struct {
	// Info is the daemon's human-readable status line (what Status
	// returns), carried along so one round trip serves both forms.
	Info    string
	Version string
	Node    string
	Policy  string
	Shards  uint64
	Pending uint64
	Tasks   uint64
	// Journal reports whether the daemon persists a durable task journal.
	Journal bool
	// RecoveredPending/RecoveredRunning tasks were re-queued by the last
	// restart; RecoveredCancelled were mid-cancellation and confirmed;
	// RecoveredTerminal were resurrected for status queries only.
	RecoveredPending   uint64
	RecoveredRunning   uint64
	RecoveredCancelled uint64
	RecoveredTerminal  uint64
	// Autotune reports whether the per-route transfer tuner is enabled;
	// AutotuneRoutes is its live table, one row per route the daemon has
	// moved data on.
	Autotune       bool
	AutotuneRoutes []AutotuneRoute
	// CacheEnabled reports whether the content-addressed staging cache
	// is configured; the gauges below are its lifetime counters and
	// current footprint versus the configured bound.
	CacheEnabled   bool
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	CacheBytes     int64
	CacheCapBytes  int64
	// Degraded reports journal degrade mode: the WAL hit a write error
	// and new submissions are being shed with EUnavailable.
	Degraded bool
	// DeadLetterTasks counts tasks quarantined after exhausting their
	// retry budget (inspect with DeadLetterList).
	DeadLetterTasks uint64
	// RetryMax/RetryBackoffMS are the daemon's default retry policy
	// (0 retries = automatic retry disabled).
	RetryMax       uint64
	RetryBackoffMS int64
	// Breakers is the fabric circuit-breaker table, one row per remote
	// endpoint the daemon has dialed.
	Breakers []BreakerState
	// RecoveredClean reports that the last journal replay found the
	// clean-shutdown marker (the previous daemon drained gracefully).
	RecoveredClean bool
}

// BreakerState is one fabric circuit-breaker row: the health of one
// remote endpoint as the daemon's transport layer sees it.
type BreakerState struct {
	Addr  string
	State string // closed | open | half-open
	Fails uint64 // current consecutive-failure count
	Trips uint64 // lifetime open transitions
}

// AutotuneRoute is one row of the daemon's transfer-tuning table.
type AutotuneRoute struct {
	// In/Out name the route's endpoints (dataspace IDs, node-prefixed
	// for remote ends); Kind is the resource pair.
	In, Out, Kind string
	// Streams and SegSize are the route's current operating point;
	// GoodputBps the EWMA goodput observed there.
	Streams    uint32
	SegSize    int64
	GoodputBps float64
	// Samples counts all observations on the route; State is the
	// controller state (seeding, probing, settled, capped).
	Samples uint64
	State   string
}

// StatusInfo returns the daemon's structured status report.
func (c *Client) StatusInfo() (DaemonStatus, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpStatus, PID: c.pid})
	if err != nil {
		return DaemonStatus{}, err
	}
	if resp.Status != proto.Success || resp.StatusInfo == nil {
		return DaemonStatus{}, apiError(resp)
	}
	s := resp.StatusInfo
	out := DaemonStatus{
		Info:               resp.DaemonInfo,
		Version:            s.Version,
		Node:               s.Node,
		Policy:             s.Policy,
		Shards:             s.Shards,
		Pending:            s.Pending,
		Tasks:              s.Tasks,
		Journal:            s.Journal,
		RecoveredPending:   s.RecoveredPending,
		RecoveredRunning:   s.RecoveredRunning,
		RecoveredCancelled: s.RecoveredCancelled,
		RecoveredTerminal:  s.RecoveredTerminal,
		Autotune:           s.Autotune,
		CacheEnabled:       s.CacheEnabled,
		CacheHits:          s.CacheHits,
		CacheMisses:        s.CacheMisses,
		CacheEvictions:     s.CacheEvictions,
		CacheBytes:         s.CacheBytes,
		CacheCapBytes:      s.CacheCapBytes,
		Degraded:           s.Degraded,
		DeadLetterTasks:    s.DeadLetterTasks,
		RetryMax:           s.RetryMax,
		RetryBackoffMS:     s.RetryBackoffMS,
		RecoveredClean:     s.RecoveredClean,
	}
	for _, b := range s.Breakers {
		out.Breakers = append(out.Breakers, BreakerState{
			Addr: b.Addr, State: b.State, Fails: b.Fails, Trips: b.Trips,
		})
	}
	for _, r := range s.AutotuneRoutes {
		out.AutotuneRoutes = append(out.AutotuneRoutes, AutotuneRoute{
			In: r.In, Out: r.Out, Kind: r.Kind,
			Streams:    r.Streams,
			SegSize:    r.SegSize,
			GoodputBps: r.GoodputBps,
			Samples:    r.Samples,
			State:      r.State,
		})
	}
	return out, nil
}

// Shutdown asks the daemon to exit.
func (c *Client) Shutdown() error {
	return c.simple(&proto.Request{Op: proto.OpShutdown})
}

// Health is the readiness probe: nil when the daemon accepts new work,
// an ErrUnavailable-matching error while it is draining or its journal
// is degraded (read-only).
func (c *Client) Health() error {
	return c.simple(&proto.Request{Op: proto.OpHealth})
}

// DeadLetterEntry is one quarantined task: it exhausted its retry
// budget and sits parked until an operator requeues or retires it.
type DeadLetterEntry struct {
	TaskID uint64
	// Attempts is how many execution attempts were consumed; Err is the
	// last failure message.
	Attempts uint64
	Err      string
}

// DeadLetterList reports the tasks currently quarantined in the
// dead-letter set, ordered by task ID.
func (c *Client) DeadLetterList() ([]DeadLetterEntry, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpDeadletterList, PID: c.pid})
	if err != nil {
		return nil, err
	}
	if resp.Status != proto.Success {
		return nil, apiError(resp)
	}
	out := make([]DeadLetterEntry, 0, len(resp.DeadLetters))
	for _, dl := range resp.DeadLetters {
		out = append(out, DeadLetterEntry{TaskID: dl.TaskID, Attempts: dl.Attempts, Err: dl.Err})
	}
	return out, nil
}

// DeadLetterRequeue resubmits quarantined tasks as fresh submissions
// with reset retry budgets, returning the new task IDs. taskID 0
// sweeps the whole dead-letter set; a specific ID requeues that task
// alone (ErrNoSuchTask if it is not quarantined).
func (c *Client) DeadLetterRequeue(taskID uint64) ([]uint64, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpDeadletterRequeue, PID: c.pid, TaskID: taskID})
	if err != nil {
		return nil, err
	}
	if resp.Status != proto.Success {
		return nil, apiError(resp)
	}
	return resp.TaskIDs, nil
}

// TransferMetrics is the daemon's observed-performance report.
type TransferMetrics struct {
	BandwidthBps float64
	Samples      uint64
	Pending      uint64
	Running      uint64
	Finished     uint64
	Failed       uint64
	Cancelled    uint64
	MovedBytes   int64
}

// TransferStats fetches observed transfer performance from the daemon,
// letting the scheduler refine staging estimates over time.
func (c *Client) TransferStats() (TransferMetrics, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpTransferStats, PID: c.pid})
	if err != nil {
		return TransferMetrics{}, err
	}
	if resp.Status != proto.Success || resp.Metrics == nil {
		return TransferMetrics{}, apiError(resp)
	}
	m := resp.Metrics
	return TransferMetrics{
		BandwidthBps: m.BandwidthBps,
		Samples:      m.Samples,
		Pending:      m.Pending,
		Running:      m.Running,
		Finished:     m.Finished,
		Failed:       m.Failed,
		Cancelled:    m.Cancelled,
		MovedBytes:   m.MovedBytes,
	}, nil
}

// RegisterDataspace mirrors nornsctl_register_dataspace.
func (c *Client) RegisterDataspace(def DataspaceDef) error {
	return c.simple(&proto.Request{Op: proto.OpRegisterDataspace, Dataspace: specOf(def)})
}

// UpdateDataspace mirrors nornsctl_update_dataspace.
func (c *Client) UpdateDataspace(def DataspaceDef) error {
	return c.simple(&proto.Request{Op: proto.OpUpdateDataspace, Dataspace: specOf(def)})
}

// UnregisterDataspace mirrors nornsctl_unregister_dataspace.
func (c *Client) UnregisterDataspace(id string) error {
	return c.simple(&proto.Request{Op: proto.OpUnregisterDataspace, Dataspace: &proto.DataspaceSpec{ID: id}})
}

// TrackDataspace toggles release-time emptiness tracking.
func (c *Client) TrackDataspace(id string, track bool) error {
	return c.simple(&proto.Request{Op: proto.OpTrackDataspace, Dataspace: &proto.DataspaceSpec{ID: id}, Track: track})
}

// TrackedNonEmpty returns tracked dataspaces that still hold data — the
// check Slurm runs before releasing a node.
func (c *Client) TrackedNonEmpty() ([]string, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpTrackedNonEmpty, PID: c.pid})
	if err != nil {
		return nil, err
	}
	if resp.Status != proto.Success {
		return nil, apiError(resp)
	}
	return resp.NonEmpty, nil
}

func specOf(def DataspaceDef) *proto.DataspaceSpec {
	return &proto.DataspaceSpec{
		ID:       def.ID,
		Backend:  def.Backend,
		Mount:    def.Mount,
		Capacity: def.Capacity,
		Track:    def.Track,
	}
}

func jobSpecOf(def JobDef) *proto.JobSpec {
	js := &proto.JobSpec{ID: def.ID, Hosts: def.Hosts}
	for _, l := range def.Limits {
		js.Limits = append(js.Limits, proto.JobLimitSpec{Dataspace: l.Dataspace, Quota: l.Quota})
	}
	return js
}

// RegisterJob mirrors nornsctl_register_job.
func (c *Client) RegisterJob(def JobDef) error {
	return c.simple(&proto.Request{Op: proto.OpRegisterJob, Job: jobSpecOf(def)})
}

// UpdateJob mirrors nornsctl_update_job.
func (c *Client) UpdateJob(def JobDef) error {
	return c.simple(&proto.Request{Op: proto.OpUpdateJob, Job: jobSpecOf(def)})
}

// UnregisterJob mirrors nornsctl_unregister_job.
func (c *Client) UnregisterJob(id uint64) error {
	return c.simple(&proto.Request{Op: proto.OpUnregisterJob, Job: &proto.JobSpec{ID: id}})
}

// AddProcess mirrors nornsctl_add_process.
func (c *Client) AddProcess(jobID uint64, p ProcDef) error {
	return c.simple(&proto.Request{
		Op:   proto.OpAddProcess,
		Job:  &proto.JobSpec{ID: jobID},
		Proc: &proto.ProcSpec{PID: p.PID, UID: p.UID, GID: p.GID},
	})
}

// RemoveProcess mirrors nornsctl_remove_process.
func (c *Client) RemoveProcess(jobID uint64, p ProcDef) error {
	return c.simple(&proto.Request{
		Op:   proto.OpRemoveProcess,
		Job:  &proto.JobSpec{ID: jobID},
		Proc: &proto.ProcSpec{PID: p.PID, UID: p.UID, GID: p.GID},
	})
}

// SubmitOptions carries the optional knobs of a staging submission.
type SubmitOptions struct {
	JobID    uint64
	Priority int
	// DeadlineMS bounds the task's execution (0 = none).
	DeadlineMS int64
	// MaxBps caps the task's transfer bandwidth in bytes per second
	// (0 = none), layered under the daemon-wide governor.
	MaxBps int64
	// RetryMax overrides the daemon's default retry budget for this task
	// (0 = daemon default): transient transfer faults re-queue the task
	// with exponential backoff until the budget is spent, then it is
	// quarantined to the dead-letter set.
	RetryMax uint32
}

// Submit queues an administrative I/O task (staging), returning its ID.
func (c *Client) Submit(kind task.Kind, input, output task.Resource, jobID uint64, priority int) (uint64, error) {
	return c.SubmitTask(kind, input, output, SubmitOptions{JobID: jobID, Priority: priority})
}

// SubmitTask queues a staging task with the full option set.
func (c *Client) SubmitTask(kind task.Kind, input, output task.Resource, opts SubmitOptions) (uint64, error) {
	spec := &proto.TaskSpec{
		Kind:       uint32(kind),
		Input:      proto.FromResource(input),
		Output:     proto.FromResource(output),
		Priority:   int64(opts.Priority),
		JobID:      opts.JobID,
		DeadlineMS: opts.DeadlineMS,
		MaxBps:     opts.MaxBps,
		RetryMax:   opts.RetryMax,
	}
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpSubmit, PID: c.pid, Task: spec})
	if err != nil {
		return 0, err
	}
	if resp.Status != proto.Success {
		return 0, apiError(resp)
	}
	return resp.TaskID, nil
}

// Watch follows a task's progress, invoking fn with each snapshot (the
// last call is the terminal one) until the task reaches a terminal
// state, and returns the terminal stats — what `nornsctl watch`
// renders as a live progress line.
//
// It subscribes to the daemon's server-push events — an initial
// current-state snapshot, progress ticks at most every interval, and
// the terminal transition — so a watch costs zero status polls. A
// daemon that predates subscriptions (EBadRequest on the subscribe)
// falls back to the v1 poll loop transparently.
func (c *Client) Watch(taskID uint64, interval time.Duration, fn func(Stats)) (Stats, error) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	c.startDispatch()
	progressMS := interval.Milliseconds()
	if progressMS <= 0 {
		progressMS = 1 // sub-millisecond intervals still want ticks; the daemon floors the rate
	}
	resp, err := c.conn.Call(context.Background(), &proto.Request{
		Op: proto.OpSubscribe, PID: c.pid,
		Subscribe: &proto.SubscribeSpec{TaskIDs: []uint64{taskID}, ProgressMS: progressMS},
	})
	if err != nil {
		return Stats{}, err
	}
	if resp.Status != proto.Success {
		if errors.Is(apiError(resp), ErrBadRequest) {
			return c.watchPoll(taskID, interval, fn)
		}
		return Stats{}, apiError(resp)
	}
	sink := make(chan proto.Event, 256)
	c.claimSink(resp.SubID, sink)
	defer c.releaseSink(resp.SubID)
	for ev := range sink {
		if proto.EventKind(ev.Kind) == proto.EvGap || !ev.HasStats {
			continue
		}
		st := statsOf(&ev.Stats)
		if fn != nil {
			fn(st)
		}
		if st.Status.Terminal() {
			// The subscription is spent — the daemon reaps it after the
			// terminal event — so there is nothing to unsubscribe.
			return st, nil
		}
	}
	return Stats{}, transport.ErrConnClosed
}

// watchPoll is the v1 fallback: poll TaskStatus every interval.
func (c *Client) watchPoll(taskID uint64, interval time.Duration, fn func(Stats)) (Stats, error) {
	for {
		st, err := c.TaskStatus(taskID)
		if err != nil {
			return Stats{}, err
		}
		if fn != nil {
			fn(st)
		}
		if st.Status.Terminal() {
			return st, nil
		}
		time.Sleep(interval)
	}
}

// ErrTimeout is returned by Wait when the timeout elapses first.
var ErrTimeout = errors.New("nornsctl: wait timed out")

// Wait blocks until the task terminates (timeout <= 0 waits forever)
// and returns its stats.
func (c *Client) Wait(taskID uint64, timeout time.Duration) (Stats, error) {
	req := &proto.Request{Op: proto.OpWait, PID: c.pid, TaskID: taskID, TimeoutMS: timeout.Milliseconds()}
	resp, err := c.conn.Call(context.Background(), req)
	if err != nil {
		return Stats{}, err
	}
	switch resp.Status {
	case proto.Success:
	case proto.ETimeout:
		return Stats{}, ErrTimeout
	default:
		return Stats{}, apiError(resp)
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("nornsctl: response without stats")
	}
	return statsOf(resp.Stats), nil
}

// TaskStatus fetches a task's stats without blocking.
func (c *Client) TaskStatus(taskID uint64) (Stats, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpTaskStatus, PID: c.pid, TaskID: taskID})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, apiError(resp)
	}
	return statsOf(resp.Stats), nil
}

// Cancel aborts a task (the nornsctl_cancel admin control): pending
// tasks are cancelled immediately and their queue slot freed; running
// tasks are interrupted cooperatively at the next chunk boundary.
// The returned stats are the snapshot right after the request; use Wait
// to observe the terminal state of a running task.
func (c *Client) Cancel(taskID uint64) (Stats, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpCancel, PID: c.pid, TaskID: taskID})
	if err != nil {
		return Stats{}, err
	}
	if resp.Status != proto.Success {
		return Stats{}, apiError(resp)
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("nornsctl: response without stats")
	}
	return statsOf(resp.Stats), nil
}
