// Package apierr defines the typed client-side errors shared by the
// norns and nornsctl API libraries. Every failed daemon response maps
// to an *Error carrying the protocol status code, and errors.Is
// matches it against the exported sentinels — so callers branch on
// errors.Is(err, apierr.ErrAgain) to retry under backpressure instead
// of string-matching "NORNS_EAGAIN".
package apierr

import (
	"errors"
	"fmt"

	"github.com/ngioproject/norns-go/internal/proto"
)

// Sentinels, one per protocol status code. They carry no context of
// their own; use them only as errors.Is targets.
var (
	// ErrBadRequest reports a malformed or illegal request (including
	// illegal task state transitions, e.g. cancelling a finished task).
	ErrBadRequest = errors.New("bad request")
	// ErrNoSuchTask reports an unknown task, dataspace, job, or process
	// — the NORNS_ENOTFOUND space.
	ErrNoSuchTask = errors.New("not found")
	// ErrExists reports a duplicate registration.
	ErrExists = errors.New("already exists")
	// ErrPermission reports an authorization failure.
	ErrPermission = errors.New("permission denied")
	// ErrTaskError reports a task that reached the Failed state.
	ErrTaskError = errors.New("task failed")
	// ErrTimeout reports a daemon-side wait timeout.
	ErrTimeout = errors.New("timed out")
	// ErrInternal reports a daemon-side internal error.
	ErrInternal = errors.New("internal error")
	// ErrAgain is the backpressure signal: the daemon's pipeline is at
	// its in-flight limit or a shard queue is full. Retry after backing
	// off; for batch submissions it applies per entry.
	ErrAgain = errors.New("resource temporarily unavailable")
	// ErrUnavailable reports a daemon that is temporarily refusing work
	// daemon-wide: degraded mode after a journal write failure, or
	// draining for shutdown. Retry after backing off, ideally against
	// another daemon.
	ErrUnavailable = errors.New("service unavailable")
)

// Error is a failed daemon response: the protocol status code plus the
// daemon's message, prefixed with the originating API for display.
type Error struct {
	// API is the client library name ("norns" or "nornsctl").
	API string
	// Code is the protocol status code of the response.
	Code proto.StatusCode
	// Msg is the daemon's error text.
	Msg string
}

// New builds an *Error from a failed response.
func New(api string, resp *proto.Response) *Error {
	return &Error{API: api, Code: resp.Status, Msg: resp.Error}
}

// Error renders like the historical string form, e.g.
// "norns: NORNS_EAGAIN: 128 tasks in flight".
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.API, e.Code, e.Msg)
}

// sentinel maps a status code to its errors.Is target.
func sentinel(code proto.StatusCode) error {
	switch code {
	case proto.EBadRequest:
		return ErrBadRequest
	case proto.ENotFound:
		return ErrNoSuchTask
	case proto.EExists:
		return ErrExists
	case proto.EPermission:
		return ErrPermission
	case proto.ETaskError:
		return ErrTaskError
	case proto.ETimeout:
		return ErrTimeout
	case proto.EAgain:
		return ErrAgain
	case proto.EUnavailable:
		return ErrUnavailable
	case proto.EInternal:
		return ErrInternal
	default:
		return nil
	}
}

// Retryable reports whether a status code names a transient condition
// that a client (or the daemon's own task-retry machinery) should retry
// after backing off: backpressure (EAgain), daemon-side wait timeouts
// (ETimeout), and daemon-wide unavailability (EUnavailable). Permanent
// failures — bad requests, missing tasks, task errors — are not.
func Retryable(code proto.StatusCode) bool {
	switch code {
	case proto.EAgain, proto.ETimeout, proto.EUnavailable:
		return true
	default:
		return false
	}
}

// IsRetryable reports whether err is (or wraps) a retryable daemon
// response: an *Error whose code Retryable accepts, or one of the
// retryable sentinels themselves.
func IsRetryable(err error) bool {
	var e *Error
	if errors.As(err, &e) {
		return Retryable(e.Code)
	}
	return errors.Is(err, ErrAgain) || errors.Is(err, ErrTimeout) || errors.Is(err, ErrUnavailable)
}

// Is matches the sentinel for the error's status code, so
// errors.Is(err, apierr.ErrAgain) holds for any EAgain response.
func (e *Error) Is(target error) bool {
	s := sentinel(e.Code)
	return s != nil && target == s
}

// HTTPStatus is the documented protocol-to-HTTP status table served by
// the gateway's JSON error envelope (see DESIGN.md). Every typed error
// class has exactly one HTTP status:
//
//	Success      -> 200 OK
//	EBadRequest  -> 400 Bad Request
//	ENotFound    -> 404 Not Found
//	EExists      -> 409 Conflict
//	EPermission  -> 403 Forbidden
//	ETaskError   -> 422 Unprocessable Entity (the task ran and failed)
//	ETimeout     -> 504 Gateway Timeout (the daemon-side wait expired)
//	EAgain       -> 429 Too Many Requests (backpressure; retry later)
//	EUnavailable -> 503 Service Unavailable (degraded or draining)
//	EInternal    -> 500 Internal Server Error
//
// Unknown codes map to 500: an unmapped failure must read as a server
// bug, never as client success.
func HTTPStatus(code proto.StatusCode) int {
	switch code {
	case proto.Success:
		return 200
	case proto.EBadRequest:
		return 400
	case proto.ENotFound:
		return 404
	case proto.EExists:
		return 409
	case proto.EPermission:
		return 403
	case proto.ETaskError:
		return 422
	case proto.ETimeout:
		return 504
	case proto.EAgain:
		return 429
	case proto.EUnavailable:
		return 503
	default:
		return 500
	}
}

// FromHTTPStatus inverts HTTPStatus for the gateway's HTTP clients, so
// a decoded error envelope still satisfies errors.Is against the
// sentinels even when the body carried no protocol code.
func FromHTTPStatus(status int) proto.StatusCode {
	switch status {
	case 200:
		return proto.Success
	case 400:
		return proto.EBadRequest
	case 404:
		return proto.ENotFound
	case 409:
		return proto.EExists
	case 401, 403:
		return proto.EPermission
	case 422:
		return proto.ETaskError
	case 504:
		return proto.ETimeout
	case 429:
		return proto.EAgain
	case 503:
		return proto.EUnavailable
	default:
		return proto.EInternal
	}
}
