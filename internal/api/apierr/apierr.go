// Package apierr defines the typed client-side errors shared by the
// norns and nornsctl API libraries. Every failed daemon response maps
// to an *Error carrying the protocol status code, and errors.Is
// matches it against the exported sentinels — so callers branch on
// errors.Is(err, apierr.ErrAgain) to retry under backpressure instead
// of string-matching "NORNS_EAGAIN".
package apierr

import (
	"errors"
	"fmt"

	"github.com/ngioproject/norns-go/internal/proto"
)

// Sentinels, one per protocol status code. They carry no context of
// their own; use them only as errors.Is targets.
var (
	// ErrBadRequest reports a malformed or illegal request (including
	// illegal task state transitions, e.g. cancelling a finished task).
	ErrBadRequest = errors.New("bad request")
	// ErrNoSuchTask reports an unknown task, dataspace, job, or process
	// — the NORNS_ENOTFOUND space.
	ErrNoSuchTask = errors.New("not found")
	// ErrExists reports a duplicate registration.
	ErrExists = errors.New("already exists")
	// ErrPermission reports an authorization failure.
	ErrPermission = errors.New("permission denied")
	// ErrTaskError reports a task that reached the Failed state.
	ErrTaskError = errors.New("task failed")
	// ErrTimeout reports a daemon-side wait timeout.
	ErrTimeout = errors.New("timed out")
	// ErrInternal reports a daemon-side internal error.
	ErrInternal = errors.New("internal error")
	// ErrAgain is the backpressure signal: the daemon's pipeline is at
	// its in-flight limit or a shard queue is full. Retry after backing
	// off; for batch submissions it applies per entry.
	ErrAgain = errors.New("resource temporarily unavailable")
)

// Error is a failed daemon response: the protocol status code plus the
// daemon's message, prefixed with the originating API for display.
type Error struct {
	// API is the client library name ("norns" or "nornsctl").
	API string
	// Code is the protocol status code of the response.
	Code proto.StatusCode
	// Msg is the daemon's error text.
	Msg string
}

// New builds an *Error from a failed response.
func New(api string, resp *proto.Response) *Error {
	return &Error{API: api, Code: resp.Status, Msg: resp.Error}
}

// Error renders like the historical string form, e.g.
// "norns: NORNS_EAGAIN: 128 tasks in flight".
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.API, e.Code, e.Msg)
}

// sentinel maps a status code to its errors.Is target.
func sentinel(code proto.StatusCode) error {
	switch code {
	case proto.EBadRequest:
		return ErrBadRequest
	case proto.ENotFound:
		return ErrNoSuchTask
	case proto.EExists:
		return ErrExists
	case proto.EPermission:
		return ErrPermission
	case proto.ETaskError:
		return ErrTaskError
	case proto.ETimeout:
		return ErrTimeout
	case proto.EAgain:
		return ErrAgain
	case proto.EInternal:
		return ErrInternal
	default:
		return nil
	}
}

// Is matches the sentinel for the error's status code, so
// errors.Is(err, apierr.ErrAgain) holds for any EAgain response.
func (e *Error) Is(target error) bool {
	s := sentinel(e.Code)
	return s != nil && target == s
}
