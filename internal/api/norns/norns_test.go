package norns_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/urd"
)

// harness starts a daemon with one memory dataspace and a registered
// job/process for the test's PID.
func harness(t *testing.T) (*norns.Client, *nornsctl.Client) {
	t.Helper()
	dir := t.TempDir()
	d, err := urd.New(urd.Config{
		NodeName:      "apitest",
		UserSocket:    filepath.Join(dir, "u.sock"),
		ControlSocket: filepath.Join(dir, "c.sock"),
		Workers:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	ctl, err := nornsctl.Dial(filepath.Join(dir, "c.sock"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.RegisterJob(nornsctl.JobDef{ID: 1, Hosts: []string{"apitest"},
		Limits: []nornsctl.JobLimit{{Dataspace: "tmp0://"}}}); err != nil {
		t.Fatal(err)
	}
	user, err := norns.Dial(filepath.Join(dir, "u.sock"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { user.Close() })
	user.SetPID(777)
	if err := ctl.AddProcess(1, nornsctl.ProcDef{PID: 777, UID: 1, GID: 1}); err != nil {
		t.Fatal(err)
	}
	return user, ctl
}

func TestListing2Flow(t *testing.T) {
	user, _ := harness(t)
	tk := norns.NewIOTask(norns.Copy,
		norns.MemoryRegion([]byte("buffer")),
		norns.PosixPath("tmp0://", "path/to/output"))
	if err := user.Submit(&tk); err != nil {
		t.Fatalf("norns_submit: %v", err)
	}
	if err := user.Wait(&tk, 5*time.Second); err != nil {
		t.Fatalf("norns_wait: %v", err)
	}
	st, err := user.Error(&tk)
	if err != nil {
		t.Fatalf("norns_error: %v", err)
	}
	if st.Status != task.Finished || st.MovedBytes != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWaitTimeoutReturnsErrTimeout(t *testing.T) {
	user, ctl := harness(t)
	// A task that stays queued: saturate the 2 workers with large
	// transfers first is racy; instead use a remote task that fails fast
	// — no. Simplest reliable approach: wait on a pending task ID before
	// any worker can finish is unreliable; instead submit enough work
	// that one of the later tasks is still queued when we wait 0ms.
	big := make([]byte, 4<<20)
	var last norns.IOTask
	for i := 0; i < 16; i++ {
		tk := norns.NewIOTask(norns.Copy, norns.MemoryRegion(big), norns.PosixPath("tmp0://", fmt.Sprintf("f%d", i)))
		if err := user.Submit(&tk); err != nil {
			t.Fatal(err)
		}
		last = tk
	}
	err := user.Wait(&last, time.Nanosecond)
	if err != nil && !errors.Is(err, norns.ErrTimeout) {
		t.Fatalf("Wait = %v, want nil or ErrTimeout", err)
	}
	// Eventually it finishes.
	if err := user.Wait(&last, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	_ = ctl
}

func TestSubmitAsyncPipelining(t *testing.T) {
	user, _ := harness(t)
	const n = 32
	resolvers := make([]func() error, 0, n)
	tasks := make([]*norns.IOTask, 0, n)
	for i := 0; i < n; i++ {
		tk := norns.NewIOTask(norns.Copy,
			norns.MemoryRegion([]byte("x")),
			norns.PosixPath("tmp0://", fmt.Sprintf("async/%d", i)))
		resolve, err := user.SubmitAsync(&tk)
		if err != nil {
			t.Fatal(err)
		}
		resolvers = append(resolvers, resolve)
		tasks = append(tasks, &tk)
	}
	for i, resolve := range resolvers {
		if err := resolve(); err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
		if tasks[i].ID == 0 {
			t.Fatalf("task %d has no ID after resolve", i)
		}
	}
	for _, tk := range tasks {
		if err := user.Wait(tk, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGetDataspaceInfoThroughUserAPI(t *testing.T) {
	user, _ := harness(t)
	infos, err := user.GetDataspaceInfo()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != "tmp0://" {
		t.Fatalf("infos = %+v", infos)
	}
}

func TestErrorOnFailedTaskCarriesReason(t *testing.T) {
	user, ctl := harness(t)
	// Remove of a missing path fails at execution.
	id, err := ctl.Submit(task.Remove, task.PosixPath("tmp0://", "nope"), task.Resource{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Wait(id, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	tk := norns.IOTask{ID: id}
	st, err := user.Error(&tk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != task.Failed || st.Err == "" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubmitValidationErrorSurfaced(t *testing.T) {
	user, _ := harness(t)
	// Memory output resources are rejected by task validation.
	tk := norns.NewIOTask(norns.Copy,
		norns.PosixPath("tmp0://", "src"),
		norns.MemoryRegion(make([]byte, 4)))
	err := user.Submit(&tk)
	if err == nil {
		t.Fatal("invalid task accepted")
	}
}

func TestDialMissingSocket(t *testing.T) {
	if _, err := norns.Dial(filepath.Join(t.TempDir(), "nope.sock")); err == nil {
		t.Fatal("Dial succeeded on missing socket")
	}
}
