package norns_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
	"github.com/ngioproject/norns-go/internal/urd"
)

// harness starts a daemon with one memory dataspace and a registered
// job/process for the test's PID.
func harness(t *testing.T) (*norns.Client, *nornsctl.Client) {
	user, ctl, _ := harnessCfg(t, urd.Config{Workers: 2})
	return user, ctl
}

// harnessCfg starts a daemon with the given pipeline knobs (sockets and
// node name are filled in) and returns clients plus the daemon itself,
// so tests can assert on daemon-side gauges like StatusPolls.
func harnessCfg(t *testing.T, cfg urd.Config) (*norns.Client, *nornsctl.Client, *urd.Daemon) {
	t.Helper()
	dir := t.TempDir()
	cfg.NodeName = "apitest"
	cfg.UserSocket = filepath.Join(dir, "u.sock")
	cfg.ControlSocket = filepath.Join(dir, "c.sock")
	d, err := urd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	ctl, err := nornsctl.Dial(filepath.Join(dir, "c.sock"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.RegisterJob(nornsctl.JobDef{ID: 1, Hosts: []string{"apitest"},
		Limits: []nornsctl.JobLimit{{Dataspace: "tmp0://"}}}); err != nil {
		t.Fatal(err)
	}
	user, err := norns.Dial(filepath.Join(dir, "u.sock"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { user.Close() })
	user.SetPID(777)
	if err := ctl.AddProcess(1, nornsctl.ProcDef{PID: 777, UID: 1, GID: 1}); err != nil {
		t.Fatal(err)
	}
	return user, ctl, d
}

func TestListing2Flow(t *testing.T) {
	user, _ := harness(t)
	tk := norns.NewIOTask(norns.Copy,
		norns.MemoryRegion([]byte("buffer")),
		norns.PosixPath("tmp0://", "path/to/output"))
	if err := user.Submit(&tk); err != nil {
		t.Fatalf("norns_submit: %v", err)
	}
	if err := user.Wait(&tk, 5*time.Second); err != nil {
		t.Fatalf("norns_wait: %v", err)
	}
	st, err := user.Error(&tk)
	if err != nil {
		t.Fatalf("norns_error: %v", err)
	}
	if st.Status != task.Finished || st.MovedBytes != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWaitTimeoutReturnsErrTimeout(t *testing.T) {
	user, ctl := harness(t)
	// A task that stays queued: saturate the 2 workers with large
	// transfers first is racy; instead use a remote task that fails fast
	// — no. Simplest reliable approach: wait on a pending task ID before
	// any worker can finish is unreliable; instead submit enough work
	// that one of the later tasks is still queued when we wait 0ms.
	big := make([]byte, 4<<20)
	var last norns.IOTask
	for i := 0; i < 16; i++ {
		tk := norns.NewIOTask(norns.Copy, norns.MemoryRegion(big), norns.PosixPath("tmp0://", fmt.Sprintf("f%d", i)))
		if err := user.Submit(&tk); err != nil {
			t.Fatal(err)
		}
		last = tk
	}
	err := user.Wait(&last, time.Nanosecond)
	if err != nil && !errors.Is(err, norns.ErrTimeout) {
		t.Fatalf("Wait = %v, want nil or ErrTimeout", err)
	}
	// Eventually it finishes.
	if err := user.Wait(&last, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	_ = ctl
}

func TestSubmitAsyncPipelining(t *testing.T) {
	user, _ := harness(t)
	const n = 32
	resolvers := make([]func() error, 0, n)
	tasks := make([]*norns.IOTask, 0, n)
	for i := 0; i < n; i++ {
		tk := norns.NewIOTask(norns.Copy,
			norns.MemoryRegion([]byte("x")),
			norns.PosixPath("tmp0://", fmt.Sprintf("async/%d", i)))
		resolve, err := user.SubmitAsync(&tk)
		if err != nil {
			t.Fatal(err)
		}
		resolvers = append(resolvers, resolve)
		tasks = append(tasks, &tk)
	}
	for i, resolve := range resolvers {
		if err := resolve(); err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
		if tasks[i].ID == 0 {
			t.Fatalf("task %d has no ID after resolve", i)
		}
	}
	for _, tk := range tasks {
		if err := user.Wait(tk, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGetDataspaceInfoThroughUserAPI(t *testing.T) {
	user, _ := harness(t)
	infos, err := user.GetDataspaceInfo()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != "tmp0://" {
		t.Fatalf("infos = %+v", infos)
	}
}

func TestErrorOnFailedTaskCarriesReason(t *testing.T) {
	user, ctl := harness(t)
	// Remove of a missing path fails at execution.
	id, err := ctl.Submit(task.Remove, task.PosixPath("tmp0://", "nope"), task.Resource{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Wait(id, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	tk := norns.IOTask{ID: id}
	st, err := user.Error(&tk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != task.Failed || st.Err == "" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubmitValidationErrorSurfaced(t *testing.T) {
	user, _ := harness(t)
	// Memory output resources are rejected by task validation.
	tk := norns.NewIOTask(norns.Copy,
		norns.PosixPath("tmp0://", "src"),
		norns.MemoryRegion(make([]byte, 4)))
	err := user.Submit(&tk)
	if err == nil {
		t.Fatal("invalid task accepted")
	}
}

func TestDialMissingSocket(t *testing.T) {
	if _, err := norns.Dial(filepath.Join(t.TempDir(), "nope.sock")); err == nil {
		t.Fatal("Dial succeeded on missing socket")
	}
}

// TestBatchSubscribeNoPolling is the v2 acceptance test: one
// SubmitBatch RPC queues well over 100 tasks, and a subscribed client
// observes every terminal transition — Done fires on all handles with
// final stats — without the daemon serving a single OpTaskStatus poll.
// (The daemon counts status ops served; the v1 flow in the other tests
// proves the old protocol still works.)
func TestBatchSubscribeNoPolling(t *testing.T) {
	user, _, d := harnessCfg(t, urd.Config{Workers: 4})
	const n = 120
	tasks := make([]*norns.IOTask, n)
	for i := range tasks {
		tk := norns.NewIOTask(norns.Copy,
			norns.MemoryRegion([]byte("batch payload")),
			norns.PosixPath("tmp0://", fmt.Sprintf("batch/%d", i)))
		tasks[i] = &tk
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := user.SubmitBatch(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*norns.TaskHandle, 0, n)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("entry %d rejected: %v", i, r.Err)
		}
		if r.Handle == nil || r.Handle.ID() == 0 || tasks[i].ID != r.Handle.ID() {
			t.Fatalf("entry %d handle = %+v, task ID = %d", i, r.Handle, tasks[i].ID)
		}
		handles = append(handles, r.Handle)
	}
	if err := user.WaitAll(ctx, handles...); err != nil {
		t.Fatal(err)
	}
	for _, h := range handles {
		st := h.Stats()
		if st.Status != task.Finished || st.MovedBytes != int64(len("batch payload")) {
			t.Fatalf("task %d stats = %+v", h.ID(), st)
		}
		if h.Err() != nil {
			t.Fatalf("task %d err = %v", h.ID(), h.Err())
		}
	}
	if polls := d.StatusPolls(); polls != 0 {
		t.Fatalf("daemon served %d status polls for an event-driven client", polls)
	}
}

// TestBatchPartialAcceptance: a bounded shard rejects overflow entries
// with ErrAgain while accepting the rest of the same batch — the
// per-entry EAGAIN contract.
func TestBatchPartialAcceptance(t *testing.T) {
	user, _, _ := harnessCfg(t, urd.Config{Workers: 1, MaxShardQueue: 2})
	const n = 50
	tasks := make([]*norns.IOTask, n)
	payload := make([]byte, 1<<20)
	for i := range tasks {
		tk := norns.NewIOTask(norns.Copy,
			norns.MemoryRegion(payload),
			norns.PosixPath("tmp0://", fmt.Sprintf("over/%d", i)))
		tasks[i] = &tk
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := user.SubmitBatch(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	var accepted []*norns.TaskHandle
	rejected := 0
	for i, r := range results {
		switch {
		case r.Err == nil:
			accepted = append(accepted, r.Handle)
		case errors.Is(r.Err, norns.ErrAgain):
			rejected++
		default:
			t.Fatalf("entry %d failed with %v, want ErrAgain", i, r.Err)
		}
	}
	// One running + two queued ensures at least one acceptance; a
	// 50-entry burst against a 2-slot queue ensures rejections.
	if len(accepted) == 0 || rejected == 0 {
		t.Fatalf("accepted %d rejected %d, want both non-zero", len(accepted), rejected)
	}
	if err := user.WaitAll(ctx, accepted...); err != nil {
		t.Fatal(err)
	}
}

// TestTaskHandleFailureAndCancel: handles resolve failures to
// ErrTaskError-matching errors and cancellations to ErrCancelled.
func TestTaskHandleFailureAndCancel(t *testing.T) {
	user, _, _ := harnessCfg(t, urd.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Remove of a missing path fails at execution.
	doomed := norns.NewIOTask(norns.Remove, norns.PosixPath("tmp0://", "missing"), task.Resource{})
	h, err := user.SubmitTask(ctx, &doomed)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-ctx.Done():
		t.Fatal("handle never resolved")
	}
	if err := h.Err(); !errors.Is(err, norns.ErrTaskError) {
		t.Fatalf("failed task Err = %v, want ErrTaskError match", err)
	}
	if st := h.Stats(); st.Status != task.Failed || st.Err == "" {
		t.Fatalf("failed task stats = %+v", st)
	}

	// A cancelled task resolves to ErrCancelled. The throttled daemon
	// below makes the transfer slow enough that the cancel reliably
	// lands mid-flight; the admin-side cancel also exercises the
	// cross-client event path.
	user2, ctl2, _ := harnessCfg(t, urd.Config{
		Workers: 1, MaxBandwidthBps: 64 << 10, BufSize: 16 << 10,
	})
	victim := norns.NewIOTask(norns.Copy,
		norns.MemoryRegion(make([]byte, 4<<20)),
		norns.PosixPath("tmp0://", "victim"))
	vh, err := user2.SubmitTask(ctx, &victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl2.Cancel(vh.ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-vh.Done():
	case <-ctx.Done():
		t.Fatal("cancelled handle never resolved")
	}
	if err := vh.Err(); !errors.Is(err, norns.ErrCancelled) {
		t.Fatalf("cancelled task Err = %v, want ErrCancelled", err)
	}
	if st := vh.Stats(); st.Status != task.Cancelled {
		t.Fatalf("cancelled task stats = %+v", st)
	}
}

// TestWaitAny returns as soon as one handle resolves.
func TestWaitAny(t *testing.T) {
	user, _, _ := harnessCfg(t, urd.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	quick := norns.NewIOTask(norns.NoOp, task.Resource{}, task.Resource{})
	slow := norns.NewIOTask(norns.Copy,
		norns.MemoryRegion(make([]byte, 8<<20)),
		norns.PosixPath("tmp0://", "slow"))
	// Submit the slow one first so the single worker is busy with it.
	sh, err := user.SubmitTask(ctx, &slow)
	if err != nil {
		t.Fatal(err)
	}
	qh, err := user.SubmitTask(ctx, &quick)
	if err != nil {
		t.Fatal(err)
	}
	if i, err := user.WaitAny(ctx, sh, qh); err != nil || i < 0 {
		t.Fatalf("WaitAny = %d, %v", i, err)
	}
	if err := user.WaitAll(ctx, sh, qh); err != nil {
		t.Fatal(err)
	}
	// WaitAny on already-resolved handles returns immediately.
	if i, err := user.WaitAny(ctx, sh, qh); err != nil || i < 0 {
		t.Fatalf("WaitAny(resolved) = %d, %v", i, err)
	}
}

// TestEventsStream: an all-tasks subscription observes another
// client's submissions through to their terminal states.
func TestEventsStream(t *testing.T) {
	user, ctl, _ := harnessCfg(t, urd.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	events, err := user.Events(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Submit through the admin API: the events still reach the user
	// connection's subscription.
	id, err := ctl.Submit(task.Copy, task.MemoryRegion([]byte("observed")), task.PosixPath("tmp0://", "ev"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sawPending, sawTerminal := false, false
	for !sawTerminal {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("events channel closed early")
			}
			if ev.TaskID != id {
				continue
			}
			if ev.Kind == norns.EventState && ev.Stats.Status == task.Pending {
				sawPending = true
			}
			if ev.Kind == norns.EventState && ev.Stats.Status.Terminal() {
				if ev.Stats.Status != task.Finished || ev.Stats.MovedBytes != int64(len("observed")) {
					t.Fatalf("terminal event = %+v", ev.Stats)
				}
				sawTerminal = true
			}
		case <-ctx.Done():
			t.Fatal("no terminal event")
		}
	}
	if !sawPending {
		t.Fatal("submission event not observed")
	}
	cancel()
	// The stream closes once the context ends.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-events:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("events channel not closed after context cancellation")
		}
	}
}

// TestTypedErrors: failed responses satisfy errors.Is against the
// exported sentinels instead of demanding string matching.
func TestTypedErrors(t *testing.T) {
	user, ctl, _ := harnessCfg(t, urd.Config{Workers: 1})
	// Unknown task -> ErrNoSuchTask.
	unknown := norns.IOTask{ID: 99999}
	if err := user.Wait(&unknown, time.Second); !errors.Is(err, norns.ErrNoSuchTask) {
		t.Fatalf("Wait(unknown) = %v, want ErrNoSuchTask", err)
	}
	// Cancelling a finished task -> ErrBadRequest.
	tk := norns.NewIOTask(norns.NoOp, task.Resource{}, task.Resource{})
	if err := user.Submit(&tk); err != nil {
		t.Fatal(err)
	}
	if err := user.Wait(&tk, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := user.Cancel(&tk); !errors.Is(err, norns.ErrBadRequest) {
		t.Fatalf("Cancel(finished) = %v, want ErrBadRequest", err)
	}
	// Duplicate dataspace -> ErrExists via the admin client.
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); !errors.Is(err, nornsctl.ErrExists) {
		t.Fatalf("duplicate register = %v, want ErrExists", err)
	}
	// The rendered form keeps the historical shape.
	if err := user.Wait(&unknown, time.Second); err == nil || !strings.Contains(err.Error(), "NORNS_ENOTFOUND") {
		t.Fatalf("error text = %v", err)
	}
}

// TestSubscriptionWatch: the admin Watch rides the push subscription —
// zero status polls — and still reports live progress and the terminal
// state.
func TestSubscriptionWatch(t *testing.T) {
	_, ctl, d := harnessCfg(t, urd.Config{Workers: 2})
	id, err := ctl.Submit(task.Copy, task.MemoryRegion(make([]byte, 2<<20)), task.PosixPath("tmp0://", "w"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	st, err := ctl.Watch(id, 10*time.Millisecond, func(nornsctl.Stats) { snaps++ })
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != task.Finished || st.MovedBytes != 2<<20 {
		t.Fatalf("terminal stats = %+v", st)
	}
	if snaps == 0 {
		t.Fatal("watch callback never invoked")
	}
	if polls := d.StatusPolls(); polls != 0 {
		t.Fatalf("watch caused %d status polls", polls)
	}
}

// TestConcurrentWatches: two Watch calls sharing one admin client must
// each observe their own task's progress and terminal state — the
// dispatcher routes by subscription, so neither can steal or drop the
// other's events.
func TestConcurrentWatches(t *testing.T) {
	_, ctl, d := harnessCfg(t, urd.Config{
		Workers: 2, MaxBandwidthBps: 4 << 20, BufSize: 64 << 10,
	})
	ids := make([]uint64, 2)
	for i := range ids {
		id, err := ctl.Submit(task.Copy, task.MemoryRegion(make([]byte, 1<<20)),
			task.PosixPath("tmp0://", fmt.Sprintf("cw/%d", i)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	type outcome struct {
		st  nornsctl.Stats
		err error
	}
	results := make(chan outcome, len(ids))
	for _, id := range ids {
		go func(id uint64) {
			st, err := ctl.Watch(id, 20*time.Millisecond, nil)
			results <- outcome{st, err}
		}(id)
	}
	for range ids {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if r.st.Status != task.Finished || r.st.MovedBytes != 1<<20 {
				t.Fatalf("terminal stats = %+v", r.st)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("a concurrent watch never resolved")
		}
	}
	if polls := d.StatusPolls(); polls != 0 {
		t.Fatalf("concurrent watches caused %d status polls", polls)
	}
}

// TestSubscribeToExpiredDeadlineTask: subscribing to a still-pending
// task whose deadline already lapsed expires it and delivers the
// failure — with another subscriber live, which once self-deadlocked
// the hub (the expiry published from inside the subscribe path).
func TestSubscribeToExpiredDeadlineTask(t *testing.T) {
	user, ctl, _ := harnessCfg(t, urd.Config{
		Workers: 1, MaxBandwidthBps: 64 << 10, BufSize: 16 << 10,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// A live all-tasks subscription keeps the hub's publish path hot.
	if _, err := user.Events(ctx); err != nil {
		t.Fatal(err)
	}
	// Occupy the single worker, then queue a task on the same shard
	// (same mem->tmp0:// route) with a deadline that lapses while it
	// waits behind the hog.
	hogID, err := ctl.Submit(task.Copy, task.MemoryRegion(make([]byte, 2<<20)),
		task.PosixPath("tmp0://", "hog"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Cancel(hogID) // fast daemon drain at cleanup
	id, err := ctl.SubmitTask(task.Copy, task.MemoryRegion([]byte("late")),
		task.PosixPath("tmp0://", "late"), nornsctl.SubmitOptions{DeadlineMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the deadline lapse while queued
	st, err := ctl.Watch(id, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != task.Failed || !strings.Contains(st.Err, "deadline") {
		t.Fatalf("expired task stats = %+v", st)
	}
}

// TestSubmitBatchFallbackToSeparateSubscribe drives SubmitBatch against
// a daemon that predates the combined submit+subscribe path — modeled
// by a shim that strips the Subscribe field from OpSubmitBatch requests
// (so the response carries SubID 0) while serving OpSubscribe normally.
// The client must fall back to the explicit subscription RPC and every
// handle must still resolve.
func TestSubmitBatchFallbackToSeparateSubscribe(t *testing.T) {
	dir := t.TempDir()
	cfg := urd.Config{
		NodeName:      "oldd",
		ControlSocket: filepath.Join(dir, "c.sock"),
		Workers:       2,
	}
	d, err := urd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	// The "old daemon": same handler, minus the v2.1 field.
	shim := transport.NewServer(func(peer transport.PeerInfo, req *proto.Request) *proto.Response {
		if req.Op == proto.OpSubmitBatch {
			req.Subscribe = nil
		}
		return d.Handle(peer, req)
	}, false)
	addr, err := shim.Listen("unix", filepath.Join(dir, "u.sock"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shim.Close)
	ctl, err := nornsctl.Dial(cfg.ControlSocket)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	if err := ctl.RegisterJob(nornsctl.JobDef{ID: 1, Hosts: []string{"oldd"}}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.AddProcess(1, nornsctl.ProcDef{PID: 777}); err != nil {
		t.Fatal(err)
	}
	c, err := norns.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetPID(777)

	tasks := make([]*norns.IOTask, 24)
	for i := range tasks {
		tk := norns.NewIOTask(norns.NoOp, norns.MemoryRegion(nil), norns.MemoryRegion(nil))
		tasks[i] = &tk
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	results, err := c.SubmitBatch(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*norns.TaskHandle, 0, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("entry %d: %v", i, r.Err)
		}
		handles = append(handles, r.Handle)
	}
	if err := c.WaitAll(ctx, handles...); err != nil {
		t.Fatalf("WaitAll via fallback subscription: %v", err)
	}
}

// TestManyConcurrentBatchesOneClient drives more concurrent
// SubmitBatch calls through one client than the parking table's base
// capacity (unclaimedSubs): each combined submit+subscribe batch can
// have all its terminal events pushed ahead of its response, and an
// eviction of any batch's parked events would strand its handles
// unresolved. The widened eviction cap (expectSubs) must keep every
// in-flight batch's parked subscription alive.
func TestManyConcurrentBatchesOneClient(t *testing.T) {
	c, _ := harness(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const batches = 12 // > unclaimedSubs (8)
	errs := make(chan error, batches)
	for b := 0; b < batches; b++ {
		go func() {
			tasks := make([]*norns.IOTask, 8)
			for i := range tasks {
				tk := norns.NewIOTask(norns.NoOp, norns.MemoryRegion(nil), norns.MemoryRegion(nil))
				tasks[i] = &tk
			}
			results, err := c.SubmitBatch(ctx, tasks)
			if err != nil {
				errs <- err
				return
			}
			handles := make([]*norns.TaskHandle, 0, len(results))
			for i, r := range results {
				if r.Err != nil {
					errs <- fmt.Errorf("entry %d: %w", i, r.Err)
					return
				}
				handles = append(handles, r.Handle)
			}
			errs <- c.WaitAll(ctx, handles...)
		}()
	}
	for b := 0; b < batches; b++ {
		if err := <-errs; err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
}
