// Package norns is the user-level NORNS API (the norns_* functions of
// Table I): parallel applications running inside a batch job use it to
// query the dataspaces configured for them and to define, submit,
// monitor, and wait on asynchronous I/O tasks, as in the paper's
// Listing 2.
//
// The v2 surface is event-driven: SubmitBatch queues many tasks in one
// RPC and returns *TaskHandle values that resolve from server-pushed
// events (no polling), WaitAll/WaitAny compose handles under a
// context, and Events streams every task transition the daemon
// observes. The v1 calls (Submit, Wait, Error, Cancel) remain and keep
// speaking the original single-op protocol.
package norns

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/ngioproject/norns-go/internal/api/apierr"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
)

// Re-exported task kinds, mirroring NORNS_IOTASK_*.
const (
	Copy   = task.Copy
	Move   = task.Move
	Remove = task.Remove
	NoOp   = task.NoOp
)

// MemoryRegion mirrors NORNS_MEMORY_REGION(buffer, size).
func MemoryRegion(buf []byte) task.Resource { return task.MemoryRegion(buf) }

// PosixPath mirrors NORNS_POSIX_PATH(nsid, path).
func PosixPath(dataspace, path string) task.Resource {
	return task.PosixPath(dataspace, path)
}

// RemotePosixPath mirrors NORNS_REMOTE_PATH(host, nsid, path).
func RemotePosixPath(node, dataspace, path string) task.Resource {
	return task.RemotePosixPath(node, dataspace, path)
}

// IOTask is a client-side task descriptor (norns_iotask_t).
type IOTask struct {
	ID     uint64
	Kind   task.Kind
	Input  task.Resource
	Output task.Resource
	// Priority is a hint to priority-based queue policies.
	Priority int
	// Deadline, when positive, bounds the task's execution to this long
	// after the daemon accepts it; past it the task fails with a
	// deadline-exceeded error instead of running indefinitely.
	Deadline time.Duration
}

// NewIOTask mirrors NORNS_IOTASK(op, input, output).
func NewIOTask(kind task.Kind, input, output task.Resource) IOTask {
	return IOTask{Kind: kind, Input: input, Output: output}
}

// Stats is the norns_stat_t completion report, extended with the
// segmented transfer engine's live progress fields: polling a running
// task reports bytes moved, segments done, and the observed rate.
type Stats struct {
	Status     task.Status
	Err        string
	TotalBytes int64
	MovedBytes int64
	// SizeErr reports a failed up-front size probe; TotalBytes is then an
	// explicit 0 fallback rather than a measured value.
	SizeErr string
	// SegmentsTotal/SegmentsDone report the transfer plan's completion
	// (0 total = unsegmented path).
	SegmentsTotal uint64
	SegmentsDone  uint64
	// BandwidthBps is the task's observed transfer rate at poll time.
	BandwidthBps float64
}

// DataspaceInfo describes one dataspace visible to the caller.
type DataspaceInfo struct {
	ID        string
	Backend   uint32
	Mount     string
	Capacity  int64
	UsedBytes int64
}

// Typed error sentinels. Every failed response satisfies errors.Is
// against the sentinel matching its status code, so callers branch
// programmatically — errors.Is(err, norns.ErrAgain) is the retry
// signal under backpressure — instead of string-matching.
var (
	ErrAgain      = apierr.ErrAgain
	ErrBadRequest = apierr.ErrBadRequest
	ErrNoSuchTask = apierr.ErrNoSuchTask
	ErrExists     = apierr.ErrExists
	ErrPermission = apierr.ErrPermission
	ErrTaskError  = apierr.ErrTaskError
	ErrInternal   = apierr.ErrInternal
)

// ErrCancelled is returned by TaskHandle.Err for cancelled tasks.
var ErrCancelled = errors.New("norns: task cancelled")

// Client speaks the user protocol to a urd daemon.
type Client struct {
	conn *transport.Conn
	pid  uint64

	// v2 event-driven state: one dispatch goroutine drains the
	// connection's push-event channel, resolving task handles and
	// feeding Events subscribers.
	dispatchOnce sync.Once
	mu           sync.Mutex
	handles      map[uint64]*TaskHandle // by task ID, open tasks only
	sinks        map[uint64]*eventSink  // by subscription ID
	// unclaimed parks events whose SubID has no sink yet: the daemon's
	// pump can push a subscription's first events before the client has
	// processed the OpSubscribe response carrying that SubID. Claimed
	// (Events) or discarded (SubmitBatch, whose events route to handles
	// by task ID) as soon as the subscribing RPC returns.
	unclaimed    map[uint64][]TaskEvent
	unclaimedIDs []uint64 // insertion order, for bounded eviction
	// discarded remembers recently settled SubIDs whose later events
	// route elsewhere (batch handles) or nowhere (ended Events
	// streams), so they are dropped instead of endlessly re-parked.
	discarded     map[uint64]struct{}
	discardedRing []uint64 // bounded FIFO over discarded
	// expectParked / expectSubs widen the parking bounds while combined
	// submit+subscribe batches are in flight: each such batch can have
	// every terminal event arrive before its response is processed, and
	// none may be dropped — nor may its whole parked subscription be
	// evicted by sibling batches racing alongside it — or a handle would
	// never resolve. expectParked widens the per-subscription event cap;
	// expectSubs widens the cross-subscription eviction cap (one extra
	// unclaimed subscription per outstanding batch).
	expectParked int
	expectSubs   int
	// dispatchDead marks the dispatcher as exited (connection gone):
	// sinks claimed afterwards are closed immediately.
	dispatchDead bool
	dispatchDone chan struct{}
}

// discardedCap bounds the settled-SubID memory; past it the oldest
// entry is forgotten (its events then fall back to bounded parking).
const discardedCap = 128

// Dial connects to the daemon's user socket.
func Dial(socket string) (*Client, error) {
	return DialNetwork("unix", socket)
}

// DialNetwork connects over an explicit network ("unix" or "tcp").
func DialNetwork(network, addr string) (*Client, error) {
	conn, err := transport.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, pid: uint64(os.Getpid())}, nil
}

// SetPID overrides the credential sent with requests; tests use it to
// simulate multiple client processes from one test binary.
func (c *Client) SetPID(pid uint64) { c.pid = pid }

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// apiError converts a failed response into a typed error: the result
// satisfies errors.Is against the sentinel for its status code.
func apiError(resp *proto.Response) error {
	return apierr.New("norns", resp)
}

func specOf(t *IOTask) *proto.TaskSpec {
	spec := new(proto.TaskSpec)
	fillSpec(t, spec)
	return spec
}

// fillSpec writes t's wire spec into dst — the batch path fills the
// request's spec slice in place instead of allocating a TaskSpec per
// task only to copy it.
func fillSpec(t *IOTask, dst *proto.TaskSpec) {
	*dst = proto.TaskSpec{
		Kind:       uint32(t.Kind),
		Input:      proto.FromResource(t.Input),
		Output:     proto.FromResource(t.Output),
		Priority:   int64(t.Priority),
		DeadlineMS: t.Deadline.Milliseconds(),
	}
}

// Submit mirrors norns_submit: the task is queued asynchronously and its
// ID is stored in t.
func (c *Client) Submit(t *IOTask) error {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpSubmit, PID: c.pid, Task: specOf(t)})
	if err != nil {
		return err
	}
	if resp.Status != proto.Success {
		return apiError(resp)
	}
	t.ID = resp.TaskID
	return nil
}

// ErrTimeout is returned by Wait when the timeout elapses first.
var ErrTimeout = errors.New("norns: wait timed out")

// Wait mirrors norns_wait(task, timeout): it blocks until the task
// reaches a terminal state. timeout <= 0 waits forever.
func (c *Client) Wait(t *IOTask, timeout time.Duration) error {
	req := &proto.Request{Op: proto.OpWait, PID: c.pid, TaskID: t.ID, TimeoutMS: timeout.Milliseconds()}
	resp, err := c.conn.Call(context.Background(), req)
	if err != nil {
		return err
	}
	switch resp.Status {
	case proto.Success:
		return nil
	case proto.ETimeout:
		return ErrTimeout
	default:
		return apiError(resp)
	}
}

// Error mirrors norns_error(task, stats): it fetches the task's current
// statistics. A Failed task yields stats with Status == task.Failed and
// a nil error — matching the C API, where the stats carry the failure.
func (c *Client) Error(t *IOTask) (Stats, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpTaskStatus, PID: c.pid, TaskID: t.ID})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		if resp.Status != proto.Success {
			return Stats{}, apiError(resp)
		}
		return Stats{}, errors.New("norns: response without stats")
	}
	return statsOf(resp.Stats), nil
}

func statsOf(st *proto.TaskStats) Stats {
	return Stats{
		Status:        task.Status(st.Status),
		Err:           st.Err,
		TotalBytes:    st.TotalBytes,
		MovedBytes:    st.MovedBytes,
		SizeErr:       st.SizeErr,
		SegmentsTotal: st.SegmentsTotal,
		SegmentsDone:  st.SegmentsDone,
		BandwidthBps:  st.BandwidthBps,
	}
}

// Cancel mirrors norns_cancel: it requests the task's abortion. A
// pending task is cancelled immediately; a running task is interrupted
// at its next chunk boundary (poll with Error or block with Wait to
// observe the terminal state). Cancelling an already-terminal task
// fails with NORNS_EBADREQUEST. The returned stats are the snapshot
// taken right after the request was applied.
func (c *Client) Cancel(t *IOTask) (Stats, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpCancel, PID: c.pid, TaskID: t.ID})
	if err != nil {
		return Stats{}, err
	}
	if resp.Status != proto.Success {
		return Stats{}, apiError(resp)
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("norns: response without stats")
	}
	return statsOf(resp.Stats), nil
}

// GetDataspaceInfo mirrors norns_get_dataspace_info.
func (c *Client) GetDataspaceInfo() ([]DataspaceInfo, error) {
	resp, err := c.conn.Call(context.Background(), &proto.Request{Op: proto.OpGetDataspaceInfo, PID: c.pid})
	if err != nil {
		return nil, err
	}
	if resp.Status != proto.Success {
		return nil, apiError(resp)
	}
	out := make([]DataspaceInfo, 0, len(resp.Dataspaces))
	for _, ds := range resp.Dataspaces {
		out = append(out, DataspaceInfo{
			ID:        ds.ID,
			Backend:   ds.Backend,
			Mount:     ds.Mount,
			Capacity:  ds.Capacity,
			UsedBytes: ds.UsedBytes,
		})
	}
	return out, nil
}

// SubmitAsync issues a submit without waiting for the daemon's reply;
// the returned function resolves it. The figure-4 throughput benchmark
// uses this to keep multiple requests in flight per client.
func (c *Client) SubmitAsync(t *IOTask) (func() error, error) {
	ch, err := c.conn.Send(context.Background(), &proto.Request{Op: proto.OpSubmit, PID: c.pid, Task: specOf(t)})
	if err != nil {
		return nil, err
	}
	return func() error {
		resp, err := c.conn.Receive(context.Background(), ch)
		if err != nil {
			return err
		}
		if resp.Status != proto.Success {
			return apiError(resp)
		}
		t.ID = resp.TaskID
		return nil
	}, nil
}

// ---------------------------------------------------------------------
// v2 event-driven API: batch submission, task handles, subscriptions.

// handleProgressMS is the progress-tick rate requested for handle
// subscriptions and Events streams; the daemon may throttle further.
const handleProgressMS = 100

// TaskHandle tracks one submitted task. It resolves from server-pushed
// events — state transitions and throttled progress ticks arrive on
// the client's connection — so observing a task costs zero status
// polls.
type TaskHandle struct {
	id uint64

	mu    sync.Mutex
	stats Stats
	err   error
	// done is materialized lazily (most handles resolve from the push
	// stream before anyone blocks on them, and then Done hands out the
	// shared closed channel instead of allocating one per task).
	done chan struct{}
	over bool
}

// closedChan is the shared pre-closed channel resolved handles return
// from Done when no waiter ever materialized a private one.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// ID returns the daemon-assigned task ID.
func (h *TaskHandle) ID() uint64 { return h.id }

// Done returns a channel closed when the task reaches a terminal state
// (or the connection fails, in which case Err reports it).
func (h *TaskHandle) Done() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done == nil {
		if h.over {
			h.done = closedChan
		} else {
			h.done = make(chan struct{})
		}
	}
	return h.done
}

// Stats returns the latest snapshot pushed by the daemon: live
// progress while the task runs, the final report once Done is closed.
func (h *TaskHandle) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Err reports the task's terminal outcome: nil for a finished task,
// ErrCancelled for a cancelled one, an ErrTaskError-matching error for
// a failure, the connection error if the daemon became unreachable —
// and nil while the task is still in flight (check Done first).
func (h *TaskHandle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// statusRank orders life-cycle states for staleness detection: a
// client can hold several subscriptions covering one task (an Events
// stream plus a batch subscription), whose pumps are independent — so
// an older event can arrive after a newer one.
func statusRank(s task.Status) int {
	switch s {
	case task.Pending:
		return 0
	case task.Running:
		return 1
	case task.Cancelling:
		return 2
	default: // terminal
		return 3
	}
}

// apply folds one pushed event into the handle, resolving it on
// terminal transitions. Stale events — an earlier life-cycle state, or
// regressed progress within the same state, delivered late by another
// subscription's pump — are ignored so Stats() stays monotonic. It
// reports whether the handle is spent.
func (h *TaskHandle) apply(st Stats) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.over {
		return true
	}
	if nr, cr := statusRank(st.Status), statusRank(h.stats.Status); nr < cr ||
		(nr == cr && st.MovedBytes < h.stats.MovedBytes) {
		return false
	}
	h.stats = st
	switch st.Status {
	case task.Finished:
		// err stays nil
	case task.Failed:
		h.err = &apierr.Error{API: "norns", Code: proto.ETaskError, Msg: st.Err}
	case task.Cancelled:
		h.err = ErrCancelled
	default:
		return false // still in flight
	}
	h.over = true
	if h.done != nil {
		close(h.done)
	}
	return true
}

// fail resolves a handle that can no longer receive events (connection
// loss) with the transport error.
func (h *TaskHandle) fail(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.over {
		return
	}
	h.err = err
	h.over = true
	if h.done != nil {
		close(h.done)
	}
}

// EventKind identifies what a TaskEvent reports.
type EventKind uint32

// Event kinds surfaced by Events.
const (
	// EventState is a task life-cycle transition.
	EventState = EventKind(proto.EvState)
	// EventProgress is a rate-limited progress tick for a running task.
	EventProgress = EventKind(proto.EvProgress)
	// EventGap reports that events were coalesced because the consumer
	// fell behind (daemon- or client-side); Dropped carries the count.
	// Reconcile with Error/TaskStatus if exact history matters.
	EventGap = EventKind(proto.EvGap)
)

// TaskEvent is one entry in an Events stream.
type TaskEvent struct {
	TaskID  uint64
	Kind    EventKind
	Stats   Stats
	Dropped uint64
}

// eventSink fans dispatched events to one Events consumer without ever
// blocking the dispatch loop: overflow is dropped and surfaced as a
// client-side gap event once the consumer catches up.
type eventSink struct {
	ch      chan TaskEvent
	dropped uint64
}

// unclaimed caps for events that arrive before their subscription's
// response has been processed (the daemon's pump and the response
// writer race on the wire): per subscription, and across
// subscriptions, beyond which the oldest parked subscription is
// dropped wholesale. Steady state is empty — every subscribe path
// claims or discards its SubID as soon as its RPC returns.
const (
	unclaimedPerSub = 256
	unclaimedSubs   = 8
)

// startDispatch launches the shared event dispatch goroutine (idempotent).
func (c *Client) startDispatch() {
	c.dispatchOnce.Do(func() {
		c.mu.Lock()
		c.handles = make(map[uint64]*TaskHandle)
		c.sinks = make(map[uint64]*eventSink)
		c.unclaimed = make(map[uint64][]TaskEvent)
		c.discarded = make(map[uint64]struct{})
		c.dispatchDone = make(chan struct{})
		c.mu.Unlock()
		events := c.conn.Events()
		go func() {
			defer close(c.dispatchDone)
			for ev := range events {
				c.dispatch(ev)
			}
			// Connection gone: resolve every open handle with the
			// error and release Events consumers.
			c.mu.Lock()
			c.dispatchDead = true
			handles, sinks := c.handles, c.sinks
			c.handles, c.sinks = make(map[uint64]*TaskHandle), make(map[uint64]*eventSink)
			c.unclaimed, c.unclaimedIDs = make(map[uint64][]TaskEvent), nil
			c.mu.Unlock()
			for _, h := range handles {
				h.fail(transport.ErrConnClosed)
			}
			for _, s := range sinks {
				close(s.ch)
			}
		}()
	})
}

// dispatch routes one pushed event: task handles resolve by task ID,
// Events sinks match by subscription ID. Events for a SubID with no
// sink yet are parked (bounded) until the subscribing RPC claims or
// discards them.
func (c *Client) dispatch(ev proto.Event) {
	var st Stats
	if ev.HasStats {
		st = statsOf(&ev.Stats)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	handled := false
	if proto.EventKind(ev.Kind) != proto.EvGap {
		handled = c.applyHandleLocked(ev.TaskID, st)
	}
	sink, ok := c.sinks[ev.SubID]
	if !ok {
		// Parking exists so an Events stream's first pushes (racing its
		// OpSubscribe response) are not lost. An event that already
		// found its consumer — a registered task handle — has nothing
		// left to deliver: batch subscriptions discard their SubID on
		// return, so parking those events only to throw them away was
		// pure allocation churn on the submit hot path.
		if handled {
			return
		}
		if _, settled := c.discarded[ev.SubID]; !settled {
			c.parkLocked(ev.SubID, TaskEvent{TaskID: ev.TaskID, Kind: EventKind(ev.Kind), Stats: st, Dropped: ev.Dropped})
		}
		return
	}
	c.forwardLocked(sink, TaskEvent{TaskID: ev.TaskID, Kind: EventKind(ev.Kind), Stats: st, Dropped: ev.Dropped})
}

// applyHandleLocked folds one event into the task's handle (if any),
// reporting whether a handle consumed it. Caller holds c.mu.
func (c *Client) applyHandleLocked(taskID uint64, st Stats) bool {
	h, ok := c.handles[taskID]
	if !ok {
		return false
	}
	if h.apply(st) {
		delete(c.handles, taskID)
	}
	return true
}

// adoptSub replays a combined-batch subscription's parked events into
// the just-registered handles, then retires the SubID: later events
// route by task ID through the normal dispatch path. This closes the
// race where the daemon's pump delivers terminal events before the
// client has processed the batch response that names the tasks.
func (c *Client) adoptSub(subID uint64) {
	c.mu.Lock()
	for _, te := range c.takeUnclaimedLocked(subID) {
		if te.Kind != EventGap {
			c.applyHandleLocked(te.TaskID, te.Stats)
		}
	}
	c.discardLocked(subID)
	c.mu.Unlock()
}

// forwardLocked hands one event to a sink without blocking, folding
// overflow into a client-side gap marker delivered once space frees.
func (c *Client) forwardLocked(sink *eventSink, te TaskEvent) {
	if sink.dropped > 0 {
		// Deliver the gap marker first so ordering reads
		// "…events…, gap, …events…" at the consumer.
		select {
		case sink.ch <- TaskEvent{Kind: EventGap, Dropped: sink.dropped}:
			sink.dropped = 0
		default:
			sink.dropped++
			return
		}
	}
	select {
	case sink.ch <- te:
	default:
		sink.dropped++
	}
}

// parkLocked buffers an event for a not-yet-claimed subscription,
// evicting the oldest parked subscription past the global bound.
func (c *Client) parkLocked(subID uint64, te TaskEvent) {
	evs, known := c.unclaimed[subID]
	if !known {
		if len(c.unclaimedIDs) >= unclaimedSubs+c.expectSubs {
			oldest := c.unclaimedIDs[0]
			c.unclaimedIDs = c.unclaimedIDs[1:]
			delete(c.unclaimed, oldest)
		}
		c.unclaimedIDs = append(c.unclaimedIDs, subID)
	}
	// State events are what handles and streams hang on — a combined
	// batch's terminal events must never be crowded out of the park by
	// a burst of progress ticks, or WaitAll would block forever. Ticks
	// respect the base cap; state events are admitted up to a wider
	// ceiling bounded by the outstanding batches' task counts.
	limit := unclaimedPerSub + c.expectParked
	if te.Kind == EventState {
		limit += c.expectParked
	}
	if len(evs) < limit {
		c.unclaimed[subID] = append(evs, te)
	}
}

// claimSink registers a sink for a subscription and replays anything
// that arrived ahead of the subscribe response, in order. A sink
// claimed after the dispatcher exited is closed on the spot so its
// consumer unblocks instead of hanging on a dead connection.
func (c *Client) claimSink(subID uint64, sink *eventSink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dispatchDead {
		close(sink.ch)
		return
	}
	for _, te := range c.takeUnclaimedLocked(subID) {
		c.forwardLocked(sink, te)
	}
	c.sinks[subID] = sink
}

// discardSub drops a subscription's parked events and remembers the
// SubID so its future events are dropped too — its traffic is routed
// another way (batch handles resolve by task ID) or nowhere (an ended
// Events stream).
func (c *Client) discardSub(subID uint64) {
	c.mu.Lock()
	c.takeUnclaimedLocked(subID)
	c.discardLocked(subID)
	c.mu.Unlock()
}

// discardLocked marks a SubID settled. Caller holds c.mu.
func (c *Client) discardLocked(subID uint64) {
	if _, ok := c.discarded[subID]; !ok {
		if len(c.discardedRing) >= discardedCap {
			oldest := c.discardedRing[0]
			c.discardedRing = c.discardedRing[1:]
			delete(c.discarded, oldest)
		}
		c.discarded[subID] = struct{}{}
		c.discardedRing = append(c.discardedRing, subID)
	}
}

func (c *Client) takeUnclaimedLocked(subID uint64) []TaskEvent {
	evs, ok := c.unclaimed[subID]
	if !ok {
		return nil
	}
	delete(c.unclaimed, subID)
	for i, id := range c.unclaimedIDs {
		if id == subID {
			c.unclaimedIDs = append(c.unclaimedIDs[:i], c.unclaimedIDs[i+1:]...)
			break
		}
	}
	return evs
}

// register installs a handle for a task ID (before any event for that
// task can be dispatched, since registration happens under the same
// lock the dispatcher takes).
func (c *Client) register(h *TaskHandle) {
	c.mu.Lock()
	c.handles[h.id] = h
	c.mu.Unlock()
}

// BatchResult is one entry's outcome in a SubmitBatch call: a live
// handle on acceptance, or the per-entry rejection (errors.Is matches
// ErrAgain for backpressure — resubmit just those entries).
type BatchResult struct {
	Handle *TaskHandle
	Err    error
}

// SubmitBatch queues many tasks in a single RPC. Acceptance is per
// entry — one full shard rejects its entry with ErrAgain while the
// rest of the batch is queued — and the returned slice aligns with
// tasks (accepted entries also get their ID stored in the IOTask).
// Accepted handles resolve via a server-push subscription opened by
// the same call; no status polling is involved. An error is returned
// only when the batch as a whole could not be submitted or subscribed.
func (c *Client) SubmitBatch(ctx context.Context, tasks []*IOTask) ([]BatchResult, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	c.startDispatch()
	specs := make([]proto.TaskSpec, len(tasks))
	for i, t := range tasks {
		fillSpec(t, &specs[i])
	}
	// Widen the event-parking bound for the duration of the batch: with
	// the combined submit+subscribe below, every accepted task's
	// terminal event may land before this function has registered the
	// handles, and each one must survive parking.
	c.mu.Lock()
	c.expectParked += len(tasks)
	c.expectSubs++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.expectParked -= len(tasks)
		c.expectSubs--
		c.mu.Unlock()
	}()
	// One RPC carries the specs AND the subscription: the daemon
	// attaches it before any task becomes runnable, so no event can be
	// missed and no snapshots are needed. Terminal-only: the handles
	// resolve on outcomes (plus progress ticks); pending/running
	// transitions would only burn push frames. A daemon that predates
	// the combined path ignores Subscribe here and returns SubID 0; the
	// explicit OpSubscribe fallback below then covers it.
	resp, err := c.conn.Call(ctx, &proto.Request{
		Op: proto.OpSubmitBatch, PID: c.pid, Tasks: specs,
		Subscribe: &proto.SubscribeSpec{ProgressMS: handleProgressMS, TerminalOnly: true},
	})
	if err != nil {
		return nil, err
	}
	if resp.Status != proto.Success {
		return nil, apiError(resp)
	}
	if len(resp.Results) != len(tasks) {
		return nil, fmt.Errorf("norns: batch of %d returned %d results", len(tasks), len(resp.Results))
	}
	out := make([]BatchResult, len(tasks))
	ids := make([]uint64, 0, len(tasks))
	for i := range resp.Results {
		r := &resp.Results[i]
		if proto.StatusCode(r.Status) != proto.Success {
			out[i].Err = apiError(&proto.Response{Status: proto.StatusCode(r.Status), Error: r.Error})
			continue
		}
		tasks[i].ID = r.TaskID
		h := &TaskHandle{id: r.TaskID, stats: Stats{Status: task.Pending}}
		c.register(h)
		out[i].Handle = h
		ids = append(ids, r.TaskID)
	}
	if len(ids) == 0 {
		return out, nil
	}
	if resp.SubID != 0 {
		// Combined path: the subscription already covers the accepted
		// tasks. Replay anything its pump pushed ahead of this response
		// into the handles and route the rest by task ID.
		c.adoptSub(resp.SubID)
		return out, nil
	}
	// Fallback for daemons without the combined path: subscribe to the
	// accepted tasks explicitly. The daemon snapshots each task's
	// current state into the subscription, so anything that raced to a
	// terminal state between the two RPCs still resolves its handle.
	sresp, err := c.conn.Call(ctx, &proto.Request{
		Op: proto.OpSubscribe, PID: c.pid,
		Subscribe: &proto.SubscribeSpec{TaskIDs: ids, ProgressMS: handleProgressMS, TerminalOnly: true},
	})
	if err == nil && sresp.Status != proto.Success {
		err = apiError(sresp)
	}
	if err != nil {
		// Without the subscription the handles would never resolve:
		// unregister them — no event will ever come to evict them — and
		// fail them so Done/Err stay truthful, surfacing the cause.
		c.mu.Lock()
		for _, id := range ids {
			delete(c.handles, id)
		}
		c.mu.Unlock()
		for _, r := range out {
			if r.Handle != nil {
				r.Handle.fail(fmt.Errorf("norns: subscribe after batch: %w", err))
			}
		}
		return out, fmt.Errorf("norns: subscribe after batch: %w", err)
	}
	// The subscription's events route to the handles by task ID; any
	// that raced ahead of this response were parked by SubID and are
	// released (to nobody) here.
	c.discardSub(sresp.SubID)
	return out, nil
}

// SubmitTask queues one task through the v2 path and returns its
// handle (a batch of one).
func (c *Client) SubmitTask(ctx context.Context, t *IOTask) (*TaskHandle, error) {
	res, err := c.SubmitBatch(ctx, []*IOTask{t})
	if err != nil {
		return nil, err
	}
	if res[0].Err != nil {
		return nil, res[0].Err
	}
	return res[0].Handle, nil
}

// WaitAll blocks until every handle resolves or the context is done.
// It returns the context's error on cancellation, otherwise the
// handles' terminal errors joined (nil when every task finished).
func (c *Client) WaitAll(ctx context.Context, handles ...*TaskHandle) error {
	for _, h := range handles {
		if h == nil {
			continue
		}
		select {
		case <-h.Done():
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	var errs []error
	for _, h := range handles {
		if h == nil {
			continue
		}
		if err := h.Err(); err != nil {
			errs = append(errs, fmt.Errorf("task %d: %w", h.ID(), err))
		}
	}
	return errors.Join(errs...)
}

// WaitAny blocks until one of the handles resolves, returning its
// index, or until the context is done (index -1, ctx.Err()). Nil
// handles (rejected batch entries) are skipped, as in WaitAll.
func (c *Client) WaitAny(ctx context.Context, handles ...*TaskHandle) (int, error) {
	live := 0
	for i, h := range handles {
		if h == nil {
			continue
		}
		live++
		// Fast path: something already resolved.
		select {
		case <-h.Done():
			return i, nil
		default:
		}
	}
	if live == 0 {
		return -1, errors.New("norns: WaitAny without (non-nil) handles")
	}
	agg := make(chan int)
	stop := make(chan struct{})
	defer close(stop)
	for i, h := range handles {
		if h == nil {
			continue
		}
		go func(i int, done <-chan struct{}) {
			select {
			case <-done:
				select {
				case agg <- i:
				case <-stop:
				}
			case <-stop:
			}
		}(i, h.Done())
	}
	select {
	case i := <-agg:
		return i, nil
	case <-ctx.Done():
		return -1, ctx.Err()
	}
}

// Events subscribes to every task transition the daemon observes —
// submissions, dispatches, terminal states, and throttled progress
// ticks — and streams them until the context is done or the
// connection fails (the channel is then closed). Delivery never blocks
// the daemon or the client's other traffic: if the consumer falls
// behind, events are coalesced into one EventGap entry carrying the
// drop count.
func (c *Client) Events(ctx context.Context) (<-chan TaskEvent, error) {
	c.startDispatch()
	resp, err := c.conn.Call(ctx, &proto.Request{
		Op: proto.OpSubscribe, PID: c.pid,
		Subscribe: &proto.SubscribeSpec{All: true, ProgressMS: handleProgressMS},
	})
	if err != nil {
		return nil, err
	}
	if resp.Status != proto.Success {
		return nil, apiError(resp)
	}
	sink := &eventSink{ch: make(chan TaskEvent, 128)}
	// claimSink also replays any events the daemon pushed before this
	// response was processed, preserving order.
	c.claimSink(resp.SubID, sink)
	go func() {
		select {
		case <-ctx.Done():
		case <-c.dispatchDone:
			return // dispatcher closed the sink already
		}
		c.mu.Lock()
		_, live := c.sinks[resp.SubID]
		delete(c.sinks, resp.SubID)
		c.mu.Unlock()
		if !live {
			return
		}
		// Events still in flight until the unsubscribe lands must be
		// dropped, not parked for a consumer that is gone.
		c.discardSub(resp.SubID)
		// Best-effort: tell the daemon to stop pushing. The connection
		// may be long-lived, so do not leak the subscription.
		uctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, _ = c.conn.Call(uctx, &proto.Request{Op: proto.OpUnsubscribe, PID: c.pid, SubID: resp.SubID})
		cancel()
		close(sink.ch)
	}()
	return sink.ch, nil
}
