// Package norns is the user-level NORNS API (the norns_* functions of
// Table I): parallel applications running inside a batch job use it to
// query the dataspaces configured for them and to define, submit,
// monitor, and wait on asynchronous I/O tasks, as in the paper's
// Listing 2.
package norns

import (
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
)

// Re-exported task kinds, mirroring NORNS_IOTASK_*.
const (
	Copy   = task.Copy
	Move   = task.Move
	Remove = task.Remove
	NoOp   = task.NoOp
)

// MemoryRegion mirrors NORNS_MEMORY_REGION(buffer, size).
func MemoryRegion(buf []byte) task.Resource { return task.MemoryRegion(buf) }

// PosixPath mirrors NORNS_POSIX_PATH(nsid, path).
func PosixPath(dataspace, path string) task.Resource {
	return task.PosixPath(dataspace, path)
}

// RemotePosixPath mirrors NORNS_REMOTE_PATH(host, nsid, path).
func RemotePosixPath(node, dataspace, path string) task.Resource {
	return task.RemotePosixPath(node, dataspace, path)
}

// IOTask is a client-side task descriptor (norns_iotask_t).
type IOTask struct {
	ID     uint64
	Kind   task.Kind
	Input  task.Resource
	Output task.Resource
	// Priority is a hint to priority-based queue policies.
	Priority int
	// Deadline, when positive, bounds the task's execution to this long
	// after the daemon accepts it; past it the task fails with a
	// deadline-exceeded error instead of running indefinitely.
	Deadline time.Duration
}

// NewIOTask mirrors NORNS_IOTASK(op, input, output).
func NewIOTask(kind task.Kind, input, output task.Resource) IOTask {
	return IOTask{Kind: kind, Input: input, Output: output}
}

// Stats is the norns_stat_t completion report, extended with the
// segmented transfer engine's live progress fields: polling a running
// task reports bytes moved, segments done, and the observed rate.
type Stats struct {
	Status     task.Status
	Err        string
	TotalBytes int64
	MovedBytes int64
	// SizeErr reports a failed up-front size probe; TotalBytes is then an
	// explicit 0 fallback rather than a measured value.
	SizeErr string
	// SegmentsTotal/SegmentsDone report the transfer plan's completion
	// (0 total = unsegmented path).
	SegmentsTotal uint64
	SegmentsDone  uint64
	// BandwidthBps is the task's observed transfer rate at poll time.
	BandwidthBps float64
}

// DataspaceInfo describes one dataspace visible to the caller.
type DataspaceInfo struct {
	ID        string
	Backend   uint32
	Mount     string
	Capacity  int64
	UsedBytes int64
}

// Client speaks the user protocol to a urd daemon.
type Client struct {
	conn *transport.Conn
	pid  uint64
}

// Dial connects to the daemon's user socket.
func Dial(socket string) (*Client, error) {
	return DialNetwork("unix", socket)
}

// DialNetwork connects over an explicit network ("unix" or "tcp").
func DialNetwork(network, addr string) (*Client, error) {
	conn, err := transport.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, pid: uint64(os.Getpid())}, nil
}

// SetPID overrides the credential sent with requests; tests use it to
// simulate multiple client processes from one test binary.
func (c *Client) SetPID(pid uint64) { c.pid = pid }

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// apiError converts a failed response into an error.
func apiError(resp *proto.Response) error {
	return fmt.Errorf("norns: %s: %s", resp.Status, resp.Error)
}

func specOf(t *IOTask) *proto.TaskSpec {
	return &proto.TaskSpec{
		Kind:       uint32(t.Kind),
		Input:      proto.FromResource(t.Input),
		Output:     proto.FromResource(t.Output),
		Priority:   int64(t.Priority),
		DeadlineMS: t.Deadline.Milliseconds(),
	}
}

// Submit mirrors norns_submit: the task is queued asynchronously and its
// ID is stored in t.
func (c *Client) Submit(t *IOTask) error {
	resp, err := c.conn.Call(&proto.Request{Op: proto.OpSubmit, PID: c.pid, Task: specOf(t)})
	if err != nil {
		return err
	}
	if resp.Status != proto.Success {
		return apiError(resp)
	}
	t.ID = resp.TaskID
	return nil
}

// ErrTimeout is returned by Wait when the timeout elapses first.
var ErrTimeout = errors.New("norns: wait timed out")

// Wait mirrors norns_wait(task, timeout): it blocks until the task
// reaches a terminal state. timeout <= 0 waits forever.
func (c *Client) Wait(t *IOTask, timeout time.Duration) error {
	req := &proto.Request{Op: proto.OpWait, PID: c.pid, TaskID: t.ID, TimeoutMS: timeout.Milliseconds()}
	resp, err := c.conn.Call(req)
	if err != nil {
		return err
	}
	switch resp.Status {
	case proto.Success:
		return nil
	case proto.ETimeout:
		return ErrTimeout
	default:
		return apiError(resp)
	}
}

// Error mirrors norns_error(task, stats): it fetches the task's current
// statistics. A Failed task yields stats with Status == task.Failed and
// a nil error — matching the C API, where the stats carry the failure.
func (c *Client) Error(t *IOTask) (Stats, error) {
	resp, err := c.conn.Call(&proto.Request{Op: proto.OpTaskStatus, PID: c.pid, TaskID: t.ID})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		if resp.Status != proto.Success {
			return Stats{}, apiError(resp)
		}
		return Stats{}, errors.New("norns: response without stats")
	}
	return statsOf(resp.Stats), nil
}

func statsOf(st *proto.TaskStats) Stats {
	return Stats{
		Status:        task.Status(st.Status),
		Err:           st.Err,
		TotalBytes:    st.TotalBytes,
		MovedBytes:    st.MovedBytes,
		SizeErr:       st.SizeErr,
		SegmentsTotal: st.SegmentsTotal,
		SegmentsDone:  st.SegmentsDone,
		BandwidthBps:  st.BandwidthBps,
	}
}

// Cancel mirrors norns_cancel: it requests the task's abortion. A
// pending task is cancelled immediately; a running task is interrupted
// at its next chunk boundary (poll with Error or block with Wait to
// observe the terminal state). Cancelling an already-terminal task
// fails with NORNS_EBADREQUEST. The returned stats are the snapshot
// taken right after the request was applied.
func (c *Client) Cancel(t *IOTask) (Stats, error) {
	resp, err := c.conn.Call(&proto.Request{Op: proto.OpCancel, PID: c.pid, TaskID: t.ID})
	if err != nil {
		return Stats{}, err
	}
	if resp.Status != proto.Success {
		return Stats{}, apiError(resp)
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("norns: response without stats")
	}
	return statsOf(resp.Stats), nil
}

// GetDataspaceInfo mirrors norns_get_dataspace_info.
func (c *Client) GetDataspaceInfo() ([]DataspaceInfo, error) {
	resp, err := c.conn.Call(&proto.Request{Op: proto.OpGetDataspaceInfo, PID: c.pid})
	if err != nil {
		return nil, err
	}
	if resp.Status != proto.Success {
		return nil, apiError(resp)
	}
	out := make([]DataspaceInfo, 0, len(resp.Dataspaces))
	for _, ds := range resp.Dataspaces {
		out = append(out, DataspaceInfo{
			ID:        ds.ID,
			Backend:   ds.Backend,
			Mount:     ds.Mount,
			Capacity:  ds.Capacity,
			UsedBytes: ds.UsedBytes,
		})
	}
	return out, nil
}

// SubmitAsync issues a submit without waiting for the daemon's reply;
// the returned function resolves it. The figure-4 throughput benchmark
// uses this to keep multiple requests in flight per client.
func (c *Client) SubmitAsync(t *IOTask) (func() error, error) {
	ch, err := c.conn.Send(&proto.Request{Op: proto.OpSubmit, PID: c.pid, Task: specOf(t)})
	if err != nil {
		return nil, err
	}
	return func() error {
		resp, err := c.conn.Receive(ch)
		if err != nil {
			return err
		}
		if resp.Status != proto.Success {
			return apiError(resp)
		}
		t.ID = resp.TaskID
		return nil
	}, nil
}
