// Package cascache implements the content-addressed staging cache: a
// per-dataspace store of transfer segments keyed by the SHA-256 of
// their content, so repeated stage-ins of the same dataset serve bytes
// from local disk instead of the fabric.
//
// The cache unit is the segment the PR 3 transfer planner already
// defines: one entry holds exactly one segment's bytes, named by the
// hex digest of those bytes, namespaced under a directory derived from
// the source dataspace ID. Entries are committed with an atomic rename,
// so a crash mid-fill leaves only temp files (swept at the next Open)
// and never a torn entry under a valid name.
//
// Trust model (the onedrive-go sync-engine lesson: hash before you
// trust, mtime is not identity): an entry written by this process is
// verified at commit time — the fill's bytes are re-hashed and the
// rename only happens on a match. Entries found on disk at Open (a
// restart) are loaded as unverified; the first serve re-hashes them en
// route to the destination and either promotes them to verified or
// quarantines them. Only verified entries may be served through the
// zero-copy RangeCopier offload path, which cannot hash in flight.
//
// Eviction is size-bounded LRU. Serving opens the entry's file before
// eviction can unlink it, so a reader racing an eviction keeps a valid
// descriptor (POSIX unlink semantics) and finishes its copy; the space
// is reclaimed when the last descriptor closes.
package cascache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DigestLen is the byte length of a segment digest (SHA-256).
const DigestLen = sha256.Size

// configBody identifies the on-disk format. A cache directory whose
// config does not match byte-for-byte is wiped at Open: a format or
// algorithm change must never let stale entries masquerade as valid.
const configBody = "norns-cascache v1 sha256\n"

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Bytes/CapBytes are the current footprint and the configured bound.
	Bytes    int64
	CapBytes int64
	Entries  int
}

// entry is one cached segment.
type entry struct {
	key      string
	path     string
	size     int64
	verified bool
	elem     *list.Element // position in the LRU list (front = hottest)
}

// Cache is a size-bounded content-addressed segment store. All methods
// are safe for concurrent use.
type Cache struct {
	dir string
	cap int64

	mu        sync.Mutex
	entries   map[string]*entry
	lru       *list.List // of *entry
	bytes     int64
	filling   map[string]bool // single-flight: keys with a fill in progress
	hits      uint64
	misses    uint64
	evictions uint64
}

func objectsDir(dir string) string    { return filepath.Join(dir, "objects") }
func tmpDir(dir string) string        { return filepath.Join(dir, "tmp") }
func quarantineDir(dir string) string { return filepath.Join(dir, "quarantine") }
func configPath(dir string) string    { return filepath.Join(dir, "config") }

// key derives the entry key (and relative path) for a dataspace-scoped
// digest. The dataspace ID contains URL punctuation, so its namespace
// directory is a hash of the ID, not the ID itself.
func key(dataspace string, digest []byte) string {
	ns := sha256.Sum256([]byte(dataspace))
	return hex.EncodeToString(ns[:8]) + "/" + hex.EncodeToString(digest)
}

// Open loads (creating if needed) the cache rooted at dir, bounded to
// capBytes (<= 0 selects 256 MiB). Entries already on disk are adopted
// as unverified; temp files from an interrupted fill are swept.
func Open(dir string, capBytes int64) (*Cache, error) {
	if capBytes <= 0 {
		capBytes = 256 << 20
	}
	for _, d := range []string{dir, objectsDir(dir), tmpDir(dir), quarantineDir(dir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("cascache: %w", err)
		}
	}
	if err := ensureConfig(dir); err != nil {
		return nil, err
	}
	c := &Cache{
		dir:     dir,
		cap:     capBytes,
		entries: make(map[string]*entry),
		lru:     list.New(),
		filling: make(map[string]bool),
	}
	if err := c.load(); err != nil {
		return nil, err
	}
	return c, nil
}

// ensureConfig validates the cache's recorded configuration, wiping the
// object store when it disagrees — recovery must never trust entries
// written under a different key scheme or digest algorithm.
func ensureConfig(dir string) error {
	body, err := os.ReadFile(configPath(dir))
	switch {
	case err == nil && string(body) == configBody:
		return nil
	case err != nil && !os.IsNotExist(err):
		return fmt.Errorf("cascache: %w", err)
	case err == nil:
		// Config mismatch: the entries were written by an incompatible
		// layout. Drop them all rather than guess.
		if err := os.RemoveAll(objectsDir(dir)); err != nil {
			return fmt.Errorf("cascache: %w", err)
		}
		if err := os.MkdirAll(objectsDir(dir), 0o755); err != nil {
			return fmt.Errorf("cascache: %w", err)
		}
	}
	tmp := configPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, []byte(configBody), 0o644); err != nil {
		return fmt.Errorf("cascache: %w", err)
	}
	if err := os.Rename(tmp, configPath(dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cascache: %w", err)
	}
	return nil
}

// load adopts existing entries (oldest first, so the LRU order reflects
// age) and sweeps interrupted fills.
func (c *Cache) load() error {
	if tmps, err := os.ReadDir(tmpDir(c.dir)); err == nil {
		for _, t := range tmps {
			os.Remove(filepath.Join(tmpDir(c.dir), t.Name()))
		}
	}
	namespaces, err := os.ReadDir(objectsDir(c.dir))
	if err != nil {
		return fmt.Errorf("cascache: %w", err)
	}
	type found struct {
		key, path string
		size      int64
		mtime     int64
	}
	var all []found
	for _, ns := range namespaces {
		if !ns.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(objectsDir(c.dir), ns.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			info, err := f.Info()
			if err != nil || !info.Mode().IsRegular() {
				continue
			}
			all = append(all, found{
				key:   ns.Name() + "/" + f.Name(),
				path:  filepath.Join(objectsDir(c.dir), ns.Name(), f.Name()),
				size:  info.Size(),
				mtime: info.ModTime().UnixNano(),
			})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].mtime != all[b].mtime {
			return all[a].mtime < all[b].mtime
		}
		return all[a].key < all[b].key
	})
	for _, f := range all {
		e := &entry{key: f.key, path: f.path, size: f.size}
		e.elem = c.lru.PushFront(e)
		c.entries[f.key] = e
		c.bytes += f.size
	}
	c.mu.Lock()
	c.evictLocked()
	c.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		CapBytes:  c.cap,
		Entries:   len(c.entries),
	}
}

// Entry is a pinned handle on one cached segment: the file is open, so
// a concurrent eviction cannot invalidate reads. Close it when done.
type Entry struct {
	f        *os.File
	size     int64
	verified bool
}

// Size returns the entry's byte length.
func (e *Entry) Size() int64 { return e.size }

// Verified reports whether the entry's content has been hash-verified
// by this process (at fill commit or on a previous serve). Unverified
// entries must be re-hashed while being served.
func (e *Entry) Verified() bool { return e.verified }

// ReadAt implements io.ReaderAt over the entry's content.
func (e *Entry) ReadAt(p []byte, off int64) (int, error) { return e.f.ReadAt(p, off) }

// File exposes the underlying *os.File so zero-copy range offload
// (sendfile/copy_file_range) can unwrap it.
func (e *Entry) File() *os.File { return e.f }

// Close releases the handle.
func (e *Entry) Close() error { return e.f.Close() }

// Get looks up a segment by (dataspace, digest). wantSize guards
// against a truncated or foreign file under the right name: a size
// mismatch is treated as a corrupt entry and dropped. Every call counts
// a hit or a miss.
func (c *Cache) Get(dataspace string, digest []byte, wantSize int64) (*Entry, bool) {
	k := key(dataspace, digest)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if ok && e.size != wantSize {
		c.dropLocked(e)
		ok = false
	}
	if !ok {
		c.misses++
		return nil, false
	}
	f, err := os.Open(e.path)
	if err != nil {
		c.dropLocked(e)
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	c.hits++
	return &Entry{f: f, size: e.size, verified: e.verified}, true
}

// MarkVerified promotes an entry after a successful hash-verifying
// serve, enabling the offload path for subsequent hits.
func (c *Cache) MarkVerified(dataspace string, digest []byte) {
	c.mu.Lock()
	if e, ok := c.entries[key(dataspace, digest)]; ok {
		e.verified = true
	}
	c.mu.Unlock()
}

// Quarantine removes an entry whose content failed digest verification,
// moving the file aside (objects are never served from quarantine) so
// the corruption stays inspectable instead of being silently rewritten.
func (c *Cache) Quarantine(dataspace string, digest []byte) {
	k := key(dataspace, digest)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return
	}
	dst := filepath.Join(quarantineDir(c.dir), filepath.Base(e.path))
	if err := os.Rename(e.path, dst); err != nil {
		os.Remove(e.path)
	}
	// Drop without counting an eviction: this is corruption, not size
	// pressure.
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// dropLocked removes a stale entry (unreadable or wrong size) without
// counting an eviction. Caller holds c.mu.
func (c *Cache) dropLocked(e *entry) {
	os.Remove(e.path)
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// evictLocked enforces the size bound, unlinking cold entries until the
// footprint fits. Open handles from earlier Gets keep reading their
// unlinked files. Caller holds c.mu.
func (c *Cache) evictLocked() {
	for c.bytes > c.cap {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		os.Remove(e.path)
		c.lru.Remove(e.elem)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// Fill is an in-progress entry write. Exactly one fill per key exists
// at a time (single-flight); racing fillers receive nil from BeginFill
// and simply skip caching. Commit verifies the content digest before
// publishing; Abort discards.
type Fill struct {
	c      *Cache
	key    string
	digest []byte
	size   int64
	f      *os.File
	tmp    string
	done   bool
}

// BeginFill starts filling the entry for (dataspace, digest). It
// returns nil (no error) when the entry already exists or another fill
// for the same key is in flight — the caller proceeds without caching.
func (c *Cache) BeginFill(dataspace string, digest []byte, size int64) (*Fill, error) {
	k := key(dataspace, digest)
	c.mu.Lock()
	if _, exists := c.entries[k]; exists || c.filling[k] || size > c.cap {
		c.mu.Unlock()
		return nil, nil
	}
	c.filling[k] = true
	c.mu.Unlock()

	f, err := os.CreateTemp(tmpDir(c.dir), "fill-*")
	if err != nil {
		c.mu.Lock()
		delete(c.filling, k)
		c.mu.Unlock()
		return nil, fmt.Errorf("cascache: %w", err)
	}
	return &Fill{c: c, key: k, digest: digest, size: size, f: f, tmp: f.Name()}, nil
}

// WriteAt writes segment bytes at their segment-relative offset.
func (fl *Fill) WriteAt(p []byte, off int64) (int, error) { return fl.f.WriteAt(p, off) }

// errDigest is returned by Commit when the filled bytes do not hash to
// the entry's digest.
var errDigest = errors.New("cascache: fill content does not match digest")

// Commit verifies the filled content against the digest and publishes
// the entry with an atomic rename. On any failure the temp file is
// removed and nothing is published.
func (fl *Fill) Commit() error {
	if fl.done {
		return nil
	}
	fl.done = true
	defer func() {
		fl.c.mu.Lock()
		delete(fl.c.filling, fl.key)
		fl.c.mu.Unlock()
	}()
	err := fl.verify()
	if err == nil {
		err = fl.f.Sync()
	}
	if cerr := fl.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(fl.tmp)
		return err
	}
	dst := filepath.Join(objectsDir(fl.c.dir), filepath.FromSlash(fl.key))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(fl.tmp)
		return fmt.Errorf("cascache: %w", err)
	}
	if err := os.Rename(fl.tmp, dst); err != nil {
		os.Remove(fl.tmp)
		return fmt.Errorf("cascache: %w", err)
	}
	c := fl.c
	c.mu.Lock()
	if old, ok := c.entries[fl.key]; ok {
		// A racing path published first; ours replaced its file on disk,
		// which is byte-identical. Keep the bookkeeping single-entry.
		c.lru.Remove(old.elem)
		delete(c.entries, old.key)
		c.bytes -= old.size
	}
	e := &entry{key: fl.key, path: dst, size: fl.size, verified: true}
	e.elem = c.lru.PushFront(e)
	c.entries[fl.key] = e
	c.bytes += fl.size
	c.evictLocked()
	c.mu.Unlock()
	return nil
}

// verify re-hashes the temp file and checks size and digest.
func (fl *Fill) verify() error {
	info, err := fl.f.Stat()
	if err != nil {
		return fmt.Errorf("cascache: %w", err)
	}
	if info.Size() != fl.size {
		return fmt.Errorf("cascache: fill size %d, want %d", info.Size(), fl.size)
	}
	h := sha256.New()
	if _, err := io.Copy(h, io.NewSectionReader(fl.f, 0, fl.size)); err != nil {
		return fmt.Errorf("cascache: %w", err)
	}
	if !equalDigest(h.Sum(nil), fl.digest) {
		return errDigest
	}
	return nil
}

// Abort discards the fill.
func (fl *Fill) Abort() {
	if fl.done {
		return
	}
	fl.done = true
	fl.f.Close()
	os.Remove(fl.tmp)
	fl.c.mu.Lock()
	delete(fl.c.filling, fl.key)
	fl.c.mu.Unlock()
}

func equalDigest(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HashSegments computes the per-segment SHA-256 digests of size bytes
// read from r, segmented at segSize (the last segment may be short).
// It is the one digest routine both ends of the delta RPC share: the
// exposing node hashes the source, the pulling node hashes its local
// destination, and equality means the segment need not travel.
func HashSegments(r io.ReaderAt, size, segSize int64) ([][]byte, error) {
	if segSize <= 0 {
		return nil, fmt.Errorf("cascache: segment size %d", segSize)
	}
	if size <= 0 {
		return nil, nil
	}
	n := (size + segSize - 1) / segSize
	out := make([][]byte, 0, n)
	buf := make([]byte, minInt64(segSize, 1<<20))
	for off := int64(0); off < size; off += segSize {
		segLen := minInt64(segSize, size-off)
		h := sha256.New()
		for done := int64(0); done < segLen; {
			chunk := minInt64(int64(len(buf)), segLen-done)
			m, err := r.ReadAt(buf[:chunk], off+done)
			if m > 0 {
				h.Write(buf[:m])
				done += int64(m)
			}
			if err != nil {
				if err == io.EOF && done == segLen {
					break
				}
				return nil, fmt.Errorf("cascache: hash segments: %w", err)
			}
		}
		out = append(out, h.Sum(nil))
	}
	return out, nil
}

// HashSegment computes the SHA-256 of one segment's bytes.
func HashSegment(r io.ReaderAt, off, length int64) ([]byte, error) {
	h := sha256.New()
	if _, err := io.Copy(h, io.NewSectionReader(r, off, length)); err != nil {
		return nil, fmt.Errorf("cascache: hash segment: %w", err)
	}
	return h.Sum(nil), nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
