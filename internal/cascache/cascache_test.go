package cascache

import (
	"bytes"
	"crypto/sha256"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// fillEntry commits one segment into the cache, failing the test on any
// error.
func fillEntry(t *testing.T, c *Cache, ds string, content []byte) []byte {
	t.Helper()
	sum := sha256.Sum256(content)
	fl, err := c.BeginFill(ds, sum[:], int64(len(content)))
	if err != nil {
		t.Fatal(err)
	}
	if fl == nil {
		t.Fatal("BeginFill returned nil for a fresh key")
	}
	if _, err := fl.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	if err := fl.Commit(); err != nil {
		t.Fatal(err)
	}
	return sum[:]
}

func TestFillAndGet(t *testing.T) {
	c, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("norns"), 1000)
	digest := fillEntry(t, c, "lustre://", content)

	e, ok := c.Get("lustre://", digest, int64(len(content)))
	if !ok {
		t.Fatal("freshly committed entry missed")
	}
	defer e.Close()
	if !e.Verified() {
		t.Fatal("commit-verified entry reported unverified")
	}
	got := make([]byte, len(content))
	if _, err := e.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("entry content mismatch")
	}
	// The same digest under another dataspace is a separate namespace.
	if _, ok := c.Get("nvme0://", digest, int64(len(content))); ok {
		t.Fatal("entry leaked across dataspace namespaces")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != int64(len(content)) {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSingleFlightFill races many fillers on one key: exactly one gets
// the fill, everyone else is told to skip, and the committed entry is
// intact. Run with -race.
func TestSingleFlightFill(t *testing.T) {
	c, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("x"), 4096)
	sum := sha256.Sum256(content)

	const racers = 16
	fills := make([]*Fill, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fl, err := c.BeginFill("ds://", sum[:], int64(len(content)))
			if err != nil {
				t.Error(err)
				return
			}
			fills[i] = fl
			if fl == nil {
				return
			}
			if _, err := fl.WriteAt(content, 0); err != nil {
				t.Error(err)
				return
			}
			if err := fl.Commit(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	var won int
	for _, fl := range fills {
		if fl != nil {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("%d fills won the single-flight race, want 1", won)
	}
	if _, ok := c.Get("ds://", sum[:], int64(len(content))); !ok {
		t.Fatal("entry missing after racing fills")
	}
	// The key is released: a later fill attempt on an existing entry
	// still reports "skip", not a wedged slot.
	if fl, _ := c.BeginFill("ds://", sum[:], int64(len(content))); fl != nil {
		t.Fatal("BeginFill offered a fill for an existing entry")
	}
}

// TestEvictionMidServe pins an entry by serving it, then forces size
// pressure: the cold entry is evicted from the index but the open
// handle keeps reading (unlink semantics), so a transfer that raced the
// eviction completes.
func TestEvictionMidServe(t *testing.T) {
	c, err := Open(t.TempDir(), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	first := bytes.Repeat([]byte("a"), 6000)
	d1 := fillEntry(t, c, "ds://", first)
	e, ok := c.Get("ds://", d1, int64(len(first)))
	if !ok {
		t.Fatal("first entry missed")
	}
	defer e.Close()

	// Committing the second entry pushes the footprint past the cap and
	// evicts the first (it is the LRU tail).
	second := bytes.Repeat([]byte("b"), 6000)
	fillEntry(t, c, "ds://", second)

	if _, ok := c.Get("ds://", d1, int64(len(first))); ok {
		t.Fatal("evicted entry still indexed")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 10_000 {
		t.Fatalf("footprint %d exceeds cap after eviction", st.Bytes)
	}
	// The pinned handle still serves the full content.
	got := make([]byte, len(first))
	if _, err := e.ReadAt(got, 0); err != nil {
		t.Fatalf("read after eviction: %v", err)
	}
	if !bytes.Equal(got, first) {
		t.Fatal("pinned entry content changed under eviction")
	}
}

// TestCorruptEntryQuarantine flips a byte in a committed entry behind
// the cache's back, reopens (entries load unverified), and walks the
// serve-side contract: the caller detects the digest mismatch and
// quarantines; the entry stops being served and the corrupt file is
// preserved for inspection.
func TestCorruptEntryQuarantine(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("z"), 2048)
	digest := fillEntry(t, c, "ds://", content)

	// Corrupt the object in place.
	objPath := filepath.Join(objectsDir(dir), filepath.FromSlash(key("ds://", digest)))
	raw, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[100] ^= 0xff
	if err := os.WriteFile(objPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c2.Get("ds://", digest, int64(len(content)))
	if !ok {
		t.Fatal("adopted entry missed")
	}
	if e.Verified() {
		t.Fatal("adopted entry must load unverified")
	}
	sum, err := HashSegment(e, 0, e.Size())
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if bytes.Equal(sum, digest) {
		t.Fatal("corruption not visible to the serve-side hash")
	}
	c2.Quarantine("ds://", digest)
	if _, ok := c2.Get("ds://", digest, int64(len(content))); ok {
		t.Fatal("quarantined entry still served")
	}
	q, err := os.ReadDir(quarantineDir(dir))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir entries = %d err = %v, want 1", len(q), err)
	}
}

// TestCrashDuringFillRecovery simulates a daemon dying mid-fill: the
// temp file is left behind, never committed. Reopening sweeps it and
// the half-written bytes are never served.
func TestCrashDuringFillRecovery(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("w"), 8192)
	sum := sha256.Sum256(content)
	fl, err := c.BeginFill("ds://", sum[:], int64(len(content)))
	if err != nil || fl == nil {
		t.Fatalf("BeginFill: %v %v", fl, err)
	}
	if _, err := fl.WriteAt(content[:1000], 0); err != nil {
		t.Fatal(err)
	}
	// Crash: no Commit, no Abort. The process's in-memory state is gone.
	c2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("ds://", sum[:], int64(len(content))); ok {
		t.Fatal("uncommitted fill was served after recovery")
	}
	tmps, err := os.ReadDir(tmpDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("%d stale temp files survived recovery, want 0", len(tmps))
	}
	if st := c2.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("recovered stats = %+v, want empty", st)
	}
}

// TestCommitRejectsWrongBytes: a fill whose content does not hash to
// the declared digest must not publish.
func TestCommitRejectsWrongBytes(t *testing.T) {
	c, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("the real content")
	sum := sha256.Sum256(content)
	fl, err := c.BeginFill("ds://", sum[:], int64(len(content)))
	if err != nil || fl == nil {
		t.Fatalf("BeginFill: %v %v", fl, err)
	}
	if _, err := fl.WriteAt([]byte("not the content!"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fl.Commit(); err == nil {
		t.Fatal("Commit accepted bytes that do not match the digest")
	}
	if _, ok := c.Get("ds://", sum[:], int64(len(content))); ok {
		t.Fatal("mismatched fill was published")
	}
}

// TestConfigMismatchWipes: a cache directory written under a different
// recorded configuration is dropped wholesale at Open.
func TestConfigMismatchWipes(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	digest := fillEntry(t, c, "ds://", []byte("entry under v1"))
	if err := os.WriteFile(configPath(dir), []byte("norns-cascache v0 xxhash\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("ds://", digest, int64(len("entry under v1"))); ok {
		t.Fatal("entry from a mismatched config survived")
	}
	if body, err := os.ReadFile(configPath(dir)); err != nil || string(body) != configBody {
		t.Fatalf("config not rewritten: %q err=%v", body, err)
	}
}

func TestHashSegments(t *testing.T) {
	data := bytes.Repeat([]byte("0123456789"), 1000) // 10000 bytes
	r := bytes.NewReader(data)
	digests, err := HashSegments(r, int64(len(data)), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 3 {
		t.Fatalf("segments = %d, want 3", len(digests))
	}
	for i, want := range [][2]int64{{0, 4096}, {4096, 4096}, {8192, 1808}} {
		sum := sha256.Sum256(data[want[0] : want[0]+want[1]])
		if !bytes.Equal(digests[i], sum[:]) {
			t.Fatalf("segment %d digest mismatch", i)
		}
		one, err := HashSegment(r, want[0], want[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one, sum[:]) {
			t.Fatalf("HashSegment %d mismatch", i)
		}
	}
	if _, err := io.ReadAll(bytes.NewReader(nil)); err != nil {
		t.Fatal(err)
	}
}
