package transport

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/proto"
)

// echoHandler responds with the request's TaskID and marks control
// connections.
func echoHandler(peer PeerInfo, req *proto.Request) *proto.Response {
	resp := &proto.Response{Status: proto.Success, TaskID: req.TaskID}
	if peer.Control {
		resp.DaemonInfo = "control"
	}
	return resp
}

func startServer(t *testing.T, network string, control bool, h Handler) (srv *Server, addr string) {
	t.Helper()
	if h == nil {
		h = echoHandler
	}
	srv = NewServer(h, control)
	var bind string
	if network == "unix" {
		bind = filepath.Join(t.TempDir(), "urd.sock")
	} else {
		bind = "127.0.0.1:0"
	}
	a, err := srv.Listen(network, bind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, a.String()
}

func TestCallOverUnixAndTCP(t *testing.T) {
	for _, network := range []string{"unix", "tcp"} {
		t.Run(network, func(t *testing.T) {
			_, addr := startServer(t, network, false, nil)
			c, err := Dial(network, addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			resp, err := c.Call(context.Background(), &proto.Request{Op: proto.OpPing, TaskID: 99})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != proto.Success || resp.TaskID != 99 {
				t.Fatalf("resp = %+v", resp)
			}
		})
	}
}

func TestControlFlagPropagates(t *testing.T) {
	_, userAddr := startServer(t, "unix", false, nil)
	_, ctlAddr := startServer(t, "unix", true, nil)

	uc, err := Dial("unix", userAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()
	cc, err := Dial("unix", ctlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	ur, err := uc.Call(context.Background(), &proto.Request{Op: proto.OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if ur.DaemonInfo == "control" {
		t.Fatal("user socket reported as control")
	}
	cr, err := cc.Call(context.Background(), &proto.Request{Op: proto.OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if cr.DaemonInfo != "control" {
		t.Fatal("control socket not reported as control")
	}
}

func TestPipelining(t *testing.T) {
	// A slow first request must not block later pipelined responses.
	slow := func(peer PeerInfo, req *proto.Request) *proto.Response {
		if req.TaskID == 1 {
			time.Sleep(100 * time.Millisecond)
		}
		return &proto.Response{Status: proto.Success, TaskID: req.TaskID}
	}
	_, addr := startServer(t, "unix", false, slow)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ch1, err := c.Send(context.Background(), &proto.Request{TaskID: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := c.Send(context.Background(), &proto.Request{TaskID: 2})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r2, err := c.Receive(context.Background(), ch2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TaskID != 2 {
		t.Fatalf("r2 = %+v", r2)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("fast response blocked behind slow one (%v)", d)
	}
	r1, err := c.Receive(context.Background(), ch1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TaskID != 1 {
		t.Fatalf("r1 = %+v", r1)
	}
}

func TestConcurrentCallers(t *testing.T) {
	_, addr := startServer(t, "unix", false, nil)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const goroutines, calls = 16, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				id := uint64(g*calls + i + 1)
				resp, err := c.Call(context.Background(), &proto.Request{TaskID: id})
				if err != nil {
					errs <- err
					return
				}
				if resp.TaskID != id {
					errs <- fmt.Errorf("response mismatch: got %d want %d", resp.TaskID, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseFailsInflight(t *testing.T) {
	block := make(chan struct{})
	h := func(peer PeerInfo, req *proto.Request) *proto.Response {
		<-block
		return &proto.Response{}
	}
	srv, addr := startServer(t, "unix", false, h)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch, err := c.Send(context.Background(), &proto.Request{TaskID: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(block)
		srv.Close()
	}()
	// Either we get the response (handler finished first) or a closed-conn
	// error; both are acceptable, hanging is not.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.Receive(context.Background(), ch)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Receive hung after server close")
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	h := func(peer PeerInfo, req *proto.Request) *proto.Response {
		time.Sleep(time.Hour) // never responds in test lifetime
		return &proto.Response{}
	}
	_, addr := startServer(t, "unix", false, h)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Send(context.Background(), &proto.Request{TaskID: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Receive(context.Background(), ch); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Receive after Close = %v, want ErrConnClosed", err)
	}
	if _, err := c.Call(context.Background(), &proto.Request{}); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Call after Close = %v, want ErrConnClosed", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("unix", filepath.Join(t.TempDir(), "absent.sock")); err == nil {
		t.Fatal("Dial to missing socket succeeded")
	}
}

func TestNilHandlerResponse(t *testing.T) {
	h := func(peer PeerInfo, req *proto.Request) *proto.Response { return nil }
	_, addr := startServer(t, "unix", false, h)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(context.Background(), &proto.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.EInternal {
		t.Fatalf("nil handler response mapped to %v", resp.Status)
	}
}

func BenchmarkUnixCall(b *testing.B) {
	srv := NewServer(func(peer PeerInfo, req *proto.Request) *proto.Response {
		return &proto.Response{Status: proto.Success}
	}, false)
	addr, err := srv.Listen("unix", filepath.Join(b.TempDir(), "bench.sock"))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial("unix", addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := &proto.Request{Op: proto.OpPing}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPushFrameDemux interleaves pipelined Calls with unsolicited push
// frames on one connection: every response must reach its caller and
// every event must surface on the Events channel, in order.
func TestPushFrameDemux(t *testing.T) {
	var pushErr error
	var pushMu sync.Mutex
	h := func(peer PeerInfo, req *proto.Request) *proto.Response {
		// Before answering, push a burst of events tagged by the
		// request that triggered them.
		for i := uint64(0); i < 3; i++ {
			ev := proto.Event{SubID: 1, Kind: uint32(proto.EvState), TaskID: req.TaskID*10 + i}
			if err := peer.Push(&proto.Response{Status: proto.Success, Event: ev, HasEvent: true}); err != nil {
				pushMu.Lock()
				pushErr = err
				pushMu.Unlock()
				return nil
			}
		}
		return &proto.Response{Status: proto.Success, TaskID: req.TaskID}
	}
	_, addr := startServer(t, "unix", false, h)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events := c.Events()

	const goroutines, calls = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				id := uint64(g*calls + i + 1)
				resp, err := c.Call(context.Background(), &proto.Request{TaskID: id})
				if err != nil {
					errs <- err
					return
				}
				if resp.TaskID != id {
					errs <- fmt.Errorf("response mismatch: got %d want %d", resp.TaskID, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	pushMu.Lock()
	if pushErr != nil {
		t.Fatalf("push failed: %v", pushErr)
	}
	pushMu.Unlock()
	want := goroutines * calls * 3
	got := 0
	timeout := time.After(5 * time.Second)
	for got < want {
		select {
		case ev := <-events:
			if ev.SubID != 1 {
				t.Fatalf("event SubID = %d", ev.SubID)
			}
			got++
		case <-timeout:
			t.Fatalf("received %d/%d events (dropped %d)", got, want, c.DroppedEvents())
		}
	}
	if dropped := c.DroppedEvents(); dropped != 0 {
		t.Fatalf("%d events dropped with a drained consumer", dropped)
	}
}

// TestPushOverflowDropsWithoutBlockingCalls floods the client with push
// frames while nobody drains the Events channel: Calls must keep
// completing and the overflow must be counted, not block the reader.
func TestPushOverflowDropsWithoutBlockingCalls(t *testing.T) {
	h := func(peer PeerInfo, req *proto.Request) *proto.Response {
		if req.TaskID == 1 {
			for i := 0; i < 5000; i++ {
				ev := proto.Event{SubID: 1, Kind: uint32(proto.EvProgress), TaskID: uint64(i)}
				if err := peer.Push(&proto.Response{Event: ev, HasEvent: true}); err != nil {
					return &proto.Response{Status: proto.EInternal, Error: err.Error()}
				}
			}
		}
		return &proto.Response{Status: proto.Success, TaskID: req.TaskID}
	}
	_, addr := startServer(t, "unix", false, h)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Events() // register but never drain

	if _, err := c.Call(context.Background(), &proto.Request{TaskID: 1}); err != nil {
		t.Fatal(err)
	}
	// The next Call proves the read loop survived the flood.
	resp, err := c.Call(context.Background(), &proto.Request{TaskID: 2})
	if err != nil || resp.TaskID != 2 {
		t.Fatalf("call after flood: %+v, %v", resp, err)
	}
	if c.DroppedEvents() == 0 {
		t.Fatal("expected dropped events with an undrained consumer")
	}
}

// TestPushWithoutConsumerIsInvisible proves v1-style clients that never
// look at Events are untouched by a pushing server.
func TestPushWithoutConsumerIsInvisible(t *testing.T) {
	h := func(peer PeerInfo, req *proto.Request) *proto.Response {
		ev := proto.Event{SubID: 1, Kind: uint32(proto.EvState), TaskID: 7}
		_ = peer.Push(&proto.Response{Event: ev, HasEvent: true})
		return &proto.Response{Status: proto.Success, TaskID: req.TaskID}
	}
	_, addr := startServer(t, "unix", false, h)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(1); i <= 10; i++ {
		resp, err := c.Call(context.Background(), &proto.Request{TaskID: i})
		if err != nil || resp.TaskID != i {
			t.Fatalf("call %d: %+v, %v", i, resp, err)
		}
	}
}

// TestCallContextCancellation proves a client can abandon a stuck RPC:
// the Call returns with the context's error while the daemon handler
// is still blocked, and the connection remains usable.
func TestCallContextCancellation(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	h := func(peer PeerInfo, req *proto.Request) *proto.Response {
		if req.TaskID == 1 {
			<-block // stuck daemon
		}
		return &proto.Response{Status: proto.Success, TaskID: req.TaskID}
	}
	_, addr := startServer(t, "unix", false, h)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Call(ctx, &proto.Request{TaskID: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Call = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not interrupt the call")
	}
	// The connection is still good for other requests.
	resp, err := c.Call(context.Background(), &proto.Request{TaskID: 2})
	if err != nil || resp.TaskID != 2 {
		t.Fatalf("call after abandon: %+v, %v", resp, err)
	}
	// Send with an already-cancelled context fails fast.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c.Send(done, &proto.Request{TaskID: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Send on cancelled ctx = %v", err)
	}
	// Abandoned calls must not leak pending entries: only the stuck
	// TaskID 1 call may remain in flight.
	for i := 0; i < 32; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, _ = c.Call(ctx, &proto.Request{TaskID: 1})
		cancel()
	}
	if n := c.PendingCalls(); n > 1 {
		t.Fatalf("%d pending entries after abandoning calls, want <= 1", n)
	}
}

// TestEventsChannelClosesOnConnFailure unblocks event consumers when
// the connection dies.
func TestEventsChannelClosesOnConnFailure(t *testing.T) {
	srv, addr := startServer(t, "unix", false, nil)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events := c.Events()
	srv.Close()
	select {
	case _, ok := <-events:
		if ok {
			t.Fatal("unexpected event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("events channel not closed on connection failure")
	}
}
