package transport

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/proto"
)

// echoHandler responds with the request's TaskID and marks control
// connections.
func echoHandler(peer PeerInfo, req *proto.Request) *proto.Response {
	resp := &proto.Response{Status: proto.Success, TaskID: req.TaskID}
	if peer.Control {
		resp.DaemonInfo = "control"
	}
	return resp
}

func startServer(t *testing.T, network string, control bool, h Handler) (srv *Server, addr string) {
	t.Helper()
	if h == nil {
		h = echoHandler
	}
	srv = NewServer(h, control)
	var bind string
	if network == "unix" {
		bind = filepath.Join(t.TempDir(), "urd.sock")
	} else {
		bind = "127.0.0.1:0"
	}
	a, err := srv.Listen(network, bind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, a.String()
}

func TestCallOverUnixAndTCP(t *testing.T) {
	for _, network := range []string{"unix", "tcp"} {
		t.Run(network, func(t *testing.T) {
			_, addr := startServer(t, network, false, nil)
			c, err := Dial(network, addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			resp, err := c.Call(&proto.Request{Op: proto.OpPing, TaskID: 99})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != proto.Success || resp.TaskID != 99 {
				t.Fatalf("resp = %+v", resp)
			}
		})
	}
}

func TestControlFlagPropagates(t *testing.T) {
	_, userAddr := startServer(t, "unix", false, nil)
	_, ctlAddr := startServer(t, "unix", true, nil)

	uc, err := Dial("unix", userAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()
	cc, err := Dial("unix", ctlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	ur, err := uc.Call(&proto.Request{Op: proto.OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if ur.DaemonInfo == "control" {
		t.Fatal("user socket reported as control")
	}
	cr, err := cc.Call(&proto.Request{Op: proto.OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if cr.DaemonInfo != "control" {
		t.Fatal("control socket not reported as control")
	}
}

func TestPipelining(t *testing.T) {
	// A slow first request must not block later pipelined responses.
	slow := func(peer PeerInfo, req *proto.Request) *proto.Response {
		if req.TaskID == 1 {
			time.Sleep(100 * time.Millisecond)
		}
		return &proto.Response{Status: proto.Success, TaskID: req.TaskID}
	}
	_, addr := startServer(t, "unix", false, slow)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ch1, err := c.Send(&proto.Request{TaskID: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := c.Send(&proto.Request{TaskID: 2})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r2, err := c.Receive(ch2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TaskID != 2 {
		t.Fatalf("r2 = %+v", r2)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("fast response blocked behind slow one (%v)", d)
	}
	r1, err := c.Receive(ch1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TaskID != 1 {
		t.Fatalf("r1 = %+v", r1)
	}
}

func TestConcurrentCallers(t *testing.T) {
	_, addr := startServer(t, "unix", false, nil)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const goroutines, calls = 16, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				id := uint64(g*calls + i + 1)
				resp, err := c.Call(&proto.Request{TaskID: id})
				if err != nil {
					errs <- err
					return
				}
				if resp.TaskID != id {
					errs <- fmt.Errorf("response mismatch: got %d want %d", resp.TaskID, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseFailsInflight(t *testing.T) {
	block := make(chan struct{})
	h := func(peer PeerInfo, req *proto.Request) *proto.Response {
		<-block
		return &proto.Response{}
	}
	srv, addr := startServer(t, "unix", false, h)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch, err := c.Send(&proto.Request{TaskID: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(block)
		srv.Close()
	}()
	// Either we get the response (handler finished first) or a closed-conn
	// error; both are acceptable, hanging is not.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.Receive(ch)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Receive hung after server close")
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	h := func(peer PeerInfo, req *proto.Request) *proto.Response {
		time.Sleep(time.Hour) // never responds in test lifetime
		return &proto.Response{}
	}
	_, addr := startServer(t, "unix", false, h)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Send(&proto.Request{TaskID: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Receive(ch); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Receive after Close = %v, want ErrConnClosed", err)
	}
	if _, err := c.Call(&proto.Request{}); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Call after Close = %v, want ErrConnClosed", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("unix", filepath.Join(t.TempDir(), "absent.sock")); err == nil {
		t.Fatal("Dial to missing socket succeeded")
	}
}

func TestNilHandlerResponse(t *testing.T) {
	h := func(peer PeerInfo, req *proto.Request) *proto.Response { return nil }
	_, addr := startServer(t, "unix", false, h)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&proto.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.EInternal {
		t.Fatalf("nil handler response mapped to %v", resp.Status)
	}
}

func BenchmarkUnixCall(b *testing.B) {
	srv := NewServer(func(peer PeerInfo, req *proto.Request) *proto.Response {
		return &proto.Response{Status: proto.Success}
	}, false)
	addr, err := srv.Listen("unix", filepath.Join(b.TempDir(), "bench.sock"))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial("unix", addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := &proto.Request{Op: proto.OpPing}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(req); err != nil {
			b.Fatal(err)
		}
	}
}
