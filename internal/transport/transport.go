// Package transport carries NORNS protocol frames over AF_UNIX and TCP
// connections. It provides the daemon-side Server (the urd "accept
// thread": one reader goroutine per connection dispatching requests to
// handlers) and the client-side Conn with request pipelining, which the
// figure-4/figure-5 request-rate benchmarks drive with up to 16 RPCs in
// flight per client, as in the paper.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/wire"
)

// PeerInfo describes the connection a request arrived on.
type PeerInfo struct {
	// Control is true when the request arrived on the control socket
	// (the nornsctl permission domain).
	Control bool
	// Addr is the remote address (empty for unix sockets).
	Addr string
}

// Handler processes one decoded request and returns the response.
// Handlers run on their own goroutine, so they may block (e.g. OpWait).
type Handler func(peer PeerInfo, req *proto.Request) *proto.Response

// Server accepts framed protocol connections and dispatches requests.
type Server struct {
	handler Handler
	control bool

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer returns a server dispatching to handler. control marks every
// connection accepted by this server as privileged, which is how the
// paper separates the control and user AF_UNIX sockets (distinct socket
// files with different file-system permissions).
func NewServer(handler Handler, control bool) *Server {
	return &Server{handler: handler, control: control, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on the given network ("unix" or "tcp") and
// address, returning the bound listener address.
func (s *Server) Listen(network, addr string) (net.Addr, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s %s: %w", network, addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("transport: server closed")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	peer := PeerInfo{Control: s.control, Addr: conn.RemoteAddr().String()}
	fr := wire.NewFrameReader(conn)
	fw := wire.NewFrameWriter(conn)
	var wmu sync.Mutex // serializes concurrent handler responses
	var hwg sync.WaitGroup
	defer hwg.Wait()
	for {
		var req proto.Request
		if err := fr.ReadMessage(&req); err != nil {
			return // EOF or broken frame: drop the connection
		}
		hwg.Add(1)
		go func(req proto.Request) {
			defer hwg.Done()
			resp := s.handler(peer, &req)
			if resp == nil {
				resp = &proto.Response{Status: proto.EInternal, Error: "nil handler response"}
			}
			resp.Seq = req.Seq
			wmu.Lock()
			err := fw.WriteMessage(resp)
			wmu.Unlock()
			if err != nil {
				conn.Close()
			}
		}(req)
	}
}

// Close stops all listeners and connections and waits for in-flight
// handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, ln := range s.listeners {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ErrConnClosed is returned for requests on a closed client connection.
var ErrConnClosed = errors.New("transport: connection closed")

// Conn is a client connection supporting pipelined requests: many
// goroutines may Call concurrently and responses are matched by
// sequence number.
type Conn struct {
	nc net.Conn
	fw *wire.FrameWriter

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan *proto.Response
	nextSeq uint64
	err     error
	closed  bool
}

// Dial connects to a server ("unix" or "tcp").
func Dial(network, addr string) (*Conn, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s %s: %w", network, addr, err)
	}
	c := &Conn{
		nc:      nc,
		fw:      wire.NewFrameWriter(nc),
		pending: make(map[uint64]chan *proto.Response),
	}
	go c.readLoop()
	return c, nil
}

func (c *Conn) readLoop() {
	fr := wire.NewFrameReader(c.nc)
	for {
		var resp proto.Response
		if err := fr.ReadMessage(&resp); err != nil {
			if err == io.EOF {
				err = ErrConnClosed
			}
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.Seq]
		if ok {
			delete(c.pending, resp.Seq)
		}
		c.mu.Unlock()
		if ok {
			r := resp
			ch <- &r
		}
	}
}

func (c *Conn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		close(ch)
	}
}

// Call sends one request and blocks for its response.
func (c *Conn) Call(req *proto.Request) (*proto.Response, error) {
	ch, err := c.Send(req)
	if err != nil {
		return nil, err
	}
	return c.Receive(ch)
}

// Send issues a request without waiting; the returned channel yields the
// response. Use for pipelining multiple RPCs on one connection.
func (c *Conn) Send(req *proto.Request) (<-chan *proto.Response, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if c.closed {
		c.mu.Unlock()
		return nil, ErrConnClosed
	}
	c.nextSeq++
	req.Seq = c.nextSeq
	ch := make(chan *proto.Response, 1)
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := c.fw.WriteMessage(req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.Seq)
		c.mu.Unlock()
		c.fail(err)
		return nil, err
	}
	return ch, nil
}

// Receive waits on a Send channel, translating closed channels into the
// connection error.
func (c *Conn) Receive(ch <-chan *proto.Response) (*proto.Response, error) {
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		return nil, err
	}
	return resp, nil
}

// Close tears the connection down; in-flight requests fail.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.nc.Close()
	c.fail(ErrConnClosed)
	return err
}
