// Package transport carries NORNS protocol frames over AF_UNIX and TCP
// connections. It provides the daemon-side Server (the urd "accept
// thread": one reader goroutine per connection dispatching requests to
// handlers) and the client-side Conn with request pipelining, which the
// figure-4/figure-5 request-rate benchmarks drive with up to 16 RPCs in
// flight per client, as in the paper.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/wire"
)

// PeerInfo describes the connection a request arrived on.
type PeerInfo struct {
	// Control is true when the request arrived on the control socket
	// (the nornsctl permission domain).
	Control bool
	// Addr is the remote address (empty for unix sockets).
	Addr string
	// Push writes an unsolicited server-push frame to this peer,
	// serialized with in-flight handler responses. Push frames carry
	// Seq 0 — a sequence no Call ever uses — so the client transport
	// demultiplexes them away from pipelined responses. Nil when the
	// request did not arrive over a real connection (in-process
	// dispatch); handlers that need push must reject then.
	Push func(resp *proto.Response) error
	// PushBatch writes several push frames with one gathered write —
	// one syscall for a whole burst of events instead of one each. Same
	// serialization and Seq-0 rules as Push; nil when Push is nil.
	PushBatch func(resps []*proto.Response) error
	// Closed is closed when the connection tears down, so push
	// producers (event subscription pumps) can stop. Nil for
	// in-process dispatch.
	Closed <-chan struct{}
}

// Handler processes one decoded request and returns the response.
// Handlers run on their own goroutine, so they may block (e.g. OpWait).
type Handler func(peer PeerInfo, req *proto.Request) *proto.Response

// Server accepts framed protocol connections and dispatches requests.
type Server struct {
	handler Handler
	control bool
	// fast reports requests safe to handle inline on the connection's
	// read loop (see SetFastPath). Immutable after Listen.
	fast func(*proto.Request) bool

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer returns a server dispatching to handler. control marks every
// connection accepted by this server as privileged, which is how the
// paper separates the control and user AF_UNIX sockets (distinct socket
// files with different file-system permissions).
func NewServer(handler Handler, control bool) *Server {
	return &Server{handler: handler, control: control, conns: make(map[net.Conn]struct{})}
}

// SetFastPath installs a predicate marking requests the server may
// handle inline on the connection's read goroutine instead of spawning
// a handler goroutine per request — the hot-path default for ops that
// never block (submit, status, subscribe). Inline requests on one
// connection serialize with each other, exactly like the pipelined
// responses they produce; ops that can block for unbounded time
// (OpWait) must stay off the fast path or they would stall every
// pipelined request behind them. Call before Listen; nil disables.
func (s *Server) SetFastPath(fn func(*proto.Request) bool) { s.fast = fn }

// Listen starts accepting on the given network ("unix" or "tcp") and
// address, returning the bound listener address.
func (s *Server) Listen(network, addr string) (net.Addr, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s %s: %w", network, addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("transport: server closed")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	fr := wire.NewFrameReader(conn)
	fw := wire.NewFrameWriter(conn)
	var wmu sync.Mutex // serializes concurrent handler responses and pushes
	closed := make(chan struct{})
	defer close(closed)
	peer := PeerInfo{
		Control: s.control,
		Addr:    conn.RemoteAddr().String(),
		Closed:  closed,
		Push: func(resp *proto.Response) error {
			resp.Seq = 0 // push frames are unsolicited by definition
			wmu.Lock()
			err := fw.WriteMessage(resp)
			wmu.Unlock()
			if err != nil {
				conn.Close()
			}
			return err
		},
		PushBatch: func(resps []*proto.Response) error {
			wmu.Lock()
			var err error
			for _, resp := range resps {
				resp.Seq = 0
				if err = fw.AppendMessage(resp); err != nil {
					fw.Discard()
					break
				}
			}
			if err == nil {
				err = fw.Flush()
			}
			wmu.Unlock()
			if err != nil {
				conn.Close()
			}
			return err
		},
	}
	var hwg sync.WaitGroup
	defer hwg.Wait()
	serve := func(req *proto.Request) {
		resp := s.handler(peer, req)
		if resp == nil {
			resp = &proto.Response{Status: proto.EInternal, Error: "nil handler response"}
		}
		resp.Seq = req.Seq
		wmu.Lock()
		err := fw.WriteMessage(resp)
		wmu.Unlock()
		if err != nil {
			conn.Close()
		}
	}
	for {
		var req proto.Request
		if err := fr.ReadMessage(&req); err != nil {
			return // EOF or broken frame: drop the connection
		}
		if s.fast != nil && s.fast(&req) {
			// Non-blocking op: handle on the read loop — no goroutine
			// spawn, no request copy, responses in request order.
			serve(&req)
			continue
		}
		hwg.Add(1)
		go func(req proto.Request) {
			defer hwg.Done()
			serve(&req)
		}(req)
	}
}

// Close stops all listeners and connections and waits for in-flight
// handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, ln := range s.listeners {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ErrConnClosed is returned for requests on a closed client connection.
var ErrConnClosed = errors.New("transport: connection closed")

// eventBuffer is the capacity of the Events channel. The demultiplexer
// never blocks on it — a full buffer drops the event and counts it in
// DroppedEvents — so a consumer that drains promptly (the API clients
// run a dedicated dispatch goroutine) sees no loss while a stalled one
// cannot disturb in-flight Calls.
const eventBuffer = 1024

// Conn is a client connection supporting pipelined requests: many
// goroutines may Call concurrently and responses are matched by
// sequence number. Unsolicited server-push frames (Seq 0, carrying an
// Event) are demultiplexed onto the Events channel without disturbing
// pipelined responses.
type Conn struct {
	nc net.Conn
	fw *wire.FrameWriter

	wmu sync.Mutex // serializes frame writes

	mu        sync.Mutex
	pending   map[uint64]chan *proto.Response
	nextSeq   uint64
	err       error
	closed    bool
	events    chan proto.Event
	evDropped uint64
}

// Dial connects to a server ("unix" or "tcp").
func Dial(network, addr string) (*Conn, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s %s: %w", network, addr, err)
	}
	c := &Conn{
		nc:      nc,
		fw:      wire.NewFrameWriter(nc),
		pending: make(map[uint64]chan *proto.Response),
	}
	go c.readLoop()
	return c, nil
}

func (c *Conn) readLoop() {
	fr := wire.NewFrameReader(c.nc)
	// One decode scratch for the whole connection: push events are
	// delivered by value and responses are copied out below, so nothing
	// retains the struct itself across iterations — reusing it saves one
	// heap allocation per received frame (events dominate under the v2
	// push API).
	var resp proto.Response
	for {
		resp = proto.Response{}
		if err := fr.ReadMessage(&resp); err != nil {
			if err == io.EOF {
				err = ErrConnClosed
			}
			c.fail(err)
			return
		}
		if resp.Seq == 0 {
			// Unsolicited push frame: no Call ever uses Seq 0, so this
			// can only be a server-initiated event. Deliver it out of
			// band; frames without an event payload (an older daemon
			// misbehaving) are dropped silently, mirroring protobuf's
			// unknown-field tolerance.
			if resp.HasEvent {
				c.deliverEvent(resp.Event)
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.Seq]
		if ok {
			delete(c.pending, resp.Seq)
		}
		c.mu.Unlock()
		if ok {
			r := resp
			ch <- &r
		}
	}
}

// Events returns the channel unsolicited server-push events arrive on.
// The channel is closed when the connection fails or closes. Delivery
// is lossy by design: the demultiplexer never blocks, so if the
// consumer falls more than eventBuffer events behind, the overflow is
// dropped and counted (DroppedEvents) rather than stalling responses.
func (c *Conn) Events() <-chan proto.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.events == nil {
		c.events = make(chan proto.Event, eventBuffer)
		// fail() is the single closer of a live connection's channel.
		// Only when it has already run (err set) and thus could not see
		// this channel does Events close it. A Close in flight (closed
		// set, err not yet) is about to call fail, which will close it.
		if c.err != nil {
			close(c.events)
		}
	}
	return c.events
}

// PendingCalls reports the number of in-flight requests awaiting a
// response (diagnostics; abandoned calls are reaped immediately).
func (c *Conn) PendingCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// DroppedEvents reports how many push events were discarded because the
// Events channel was full.
func (c *Conn) DroppedEvents() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evDropped
}

func (c *Conn) deliverEvent(ev proto.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil || c.closed {
		return // events channel is (being) closed
	}
	if c.events == nil {
		// No consumer registered; dropping unobserved events keeps a
		// v1-style client oblivious to a v2 daemon's pushes.
		c.evDropped++
		return
	}
	select {
	case c.events <- ev:
		return
	default:
	}
	// Full buffer: progress ticks are expendable, state transitions are
	// what handles and watchers hang on — shed the oldest queued event
	// (in practice a progress tick) to admit a state event.
	if proto.EventKind(ev.Kind) != proto.EvState {
		c.evDropped++
		return
	}
	select {
	case <-c.events:
		c.evDropped++
	default:
	}
	select {
	case c.events <- ev:
	default:
		c.evDropped++
	}
}

func (c *Conn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
		if c.events != nil {
			close(c.events)
		}
	}
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		close(ch)
	}
}

// Call sends one request and blocks for its response or the context's
// cancellation, whichever comes first. A cancelled Call abandons the
// RPC — the connection stays usable and a late response is discarded —
// so a stuck daemon no longer wedges the caller.
func (c *Conn) Call(ctx context.Context, req *proto.Request) (*proto.Response, error) {
	ch, err := c.Send(ctx, req)
	if err != nil {
		return nil, err
	}
	return c.Receive(ctx, ch)
}

// Send issues a request without waiting; the returned channel yields the
// response. Use for pipelining multiple RPCs on one connection. An
// already-cancelled context fails fast without touching the wire.
func (c *Conn) Send(ctx context.Context, req *proto.Request) (<-chan *proto.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if c.closed {
		c.mu.Unlock()
		return nil, ErrConnClosed
	}
	c.nextSeq++
	req.Seq = c.nextSeq
	ch := make(chan *proto.Response, 1)
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := c.fw.WriteMessage(req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.Seq)
		c.mu.Unlock()
		c.fail(err)
		return nil, err
	}
	return ch, nil
}

// Receive waits on a Send channel, translating closed channels into the
// connection error. Context cancellation abandons the RPC: its pending
// entry is reaped immediately — a daemon that never answers cannot
// leak one map entry per abandoned call — and a response racing the
// cancellation is discarded (the channel is buffered, so the read loop
// never blocks on it).
func (c *Conn) Receive(ctx context.Context, ch <-chan *proto.Response) (*proto.Response, error) {
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrConnClosed
			}
			return nil, err
		}
		return resp, nil
	case <-ctx.Done():
		c.abandon(ch)
		return nil, ctx.Err()
	}
}

// abandon removes an in-flight request's pending entry by its response
// channel. The O(pending) scan only runs on the cancellation path.
func (c *Conn) abandon(ch <-chan *proto.Response) {
	c.mu.Lock()
	for seq, pch := range c.pending {
		if pch == ch {
			delete(c.pending, seq)
			break
		}
	}
	c.mu.Unlock()
}

// Close tears the connection down; in-flight requests fail.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.nc.Close()
	c.fail(ErrConnClosed)
	return err
}
