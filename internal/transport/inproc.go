package transport

import (
	"sync"

	"github.com/ngioproject/norns-go/internal/proto"
)

// InProcPeer is a push-capable PeerInfo for in-process dispatch: test
// harnesses and the scenario lab call a daemon's Handle directly yet
// still need subscriptions, which require a Push sink and a Closed
// signal. Events delivered to the peer are handed to the callback one
// at a time, under a lock, in delivery order.
type InProcPeer struct {
	info    PeerInfo
	mu      sync.Mutex
	closed  chan struct{}
	receive func(*proto.Response)
}

// NewInProcPeer returns a peer whose pushes invoke receive. Control is
// set on the PeerInfo so the peer can drive the nornsctl surface.
func NewInProcPeer(receive func(*proto.Response)) *InProcPeer {
	p := &InProcPeer{closed: make(chan struct{}), receive: receive}
	p.info = PeerInfo{
		Control: true,
		Addr:    "inproc",
		Push:    p.push,
		PushBatch: func(resps []*proto.Response) error {
			for _, r := range resps {
				if err := p.push(r); err != nil {
					return err
				}
			}
			return nil
		},
		Closed: p.closed,
	}
	return p
}

// Info returns the PeerInfo to pass to a transport handler.
func (p *InProcPeer) Info() PeerInfo { return p.info }

// Close tears the peer down; subscription pumps observe Closed and
// stop. Safe to call more than once.
func (p *InProcPeer) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.closed:
	default:
		close(p.closed)
	}
}

func (p *InProcPeer) push(resp *proto.Response) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.closed:
		return ErrConnClosed
	default:
	}
	if p.receive != nil {
		p.receive(resp)
	}
	return nil
}
