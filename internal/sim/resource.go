package sim

import "math"

// Flow is one in-progress transfer on a SharedResource.
type Flow struct {
	res       *SharedResource
	remaining float64 // bytes left to move
	weight    float64
	done      func()
	active    bool
	started   float64
}

// Remaining returns the bytes this flow still has to transfer, as of the
// last resource update.
func (f *Flow) Remaining() float64 { return f.remaining }

// Cancel removes an unfinished flow from the resource without invoking
// its completion callback.
func (f *Flow) Cancel() {
	if f.active {
		f.res.update()
		f.active = false
		delete(f.res.flows, f)
		f.res.reschedule()
	}
}

// SharedResource models a capacity shared fairly among concurrent flows
// (processor sharing): with total capacity C bytes/s and total active
// weight W, a flow of weight w progresses at C*w/W. This is the standard
// model for a parallel file system or network link under contention, and
// is what produces the paper's figure-1/figure-8 behaviour: aggregate
// bandwidth is flat with node count while per-client bandwidth collapses
// as competing flows appear.
type SharedResource struct {
	eng        *Engine
	capacity   float64 // bytes/sec
	flows      map[*Flow]struct{}
	lastUpdate float64
	next       *Event
}

// NewSharedResource returns a resource with the given capacity in
// bytes/second.
func NewSharedResource(eng *Engine, capacity float64) *SharedResource {
	if capacity <= 0 {
		panic("sim: SharedResource capacity must be positive")
	}
	return &SharedResource{eng: eng, capacity: capacity, flows: make(map[*Flow]struct{})}
}

// Capacity returns the configured capacity in bytes/second.
func (r *SharedResource) Capacity() float64 { return r.capacity }

// Active returns the number of in-progress flows.
func (r *SharedResource) Active() int { return len(r.flows) }

func (r *SharedResource) totalWeight() float64 {
	var w float64
	for f := range r.flows {
		w += f.weight
	}
	return w
}

// update advances every active flow to the current virtual time.
func (r *SharedResource) update() {
	now := r.eng.Now()
	elapsed := now - r.lastUpdate
	r.lastUpdate = now
	if elapsed <= 0 || len(r.flows) == 0 {
		return
	}
	perWeight := r.capacity / r.totalWeight()
	for f := range r.flows {
		f.remaining -= elapsed * perWeight * f.weight
		if f.remaining < 1e-9 {
			f.remaining = 0
		}
	}
}

// reschedule plans the next completion event.
func (r *SharedResource) reschedule() {
	if r.next != nil {
		r.next.Cancel()
		r.next = nil
	}
	if len(r.flows) == 0 {
		return
	}
	perWeight := r.capacity / r.totalWeight()
	soonest := math.Inf(1)
	for f := range r.flows {
		t := f.remaining / (perWeight * f.weight)
		if t < soonest {
			soonest = t
		}
	}
	r.next = r.eng.After(soonest, r.complete)
}

// complete fires the callbacks of every flow that has finished.
func (r *SharedResource) complete() {
	r.next = nil
	r.update()
	perWeight := r.capacity / r.totalWeight()
	var finished []*Flow
	for f := range r.flows {
		// Residuals below a nanosecond of work are done: rescheduling
		// them cannot advance float64 time.
		if f.remaining == 0 || f.remaining <= perWeight*f.weight*1e-9 {
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		f.active = false
		delete(r.flows, f)
	}
	r.reschedule()
	for _, f := range finished {
		if f.done != nil {
			f.done()
		}
	}
}

// Start begins transferring the given number of bytes. done runs when the
// flow completes. Weight scales the flow's share of the capacity (1 is a
// normal flow).
func (r *SharedResource) Start(bytes float64, done func()) *Flow {
	return r.StartWeighted(bytes, 1, done)
}

// StartWeighted begins a flow with the given fair-share weight.
func (r *SharedResource) StartWeighted(bytes, weight float64, done func()) *Flow {
	if bytes < 0 || weight <= 0 {
		panic("sim: flow needs bytes >= 0 and weight > 0")
	}
	r.update()
	f := &Flow{res: r, remaining: bytes, weight: weight, done: done, active: true, started: r.eng.Now()}
	if bytes == 0 {
		f.active = false
		r.eng.After(0, func() {
			if done != nil {
				done()
			}
		})
		return f
	}
	r.flows[f] = struct{}{}
	r.reschedule()
	return f
}

// Transfer is a convenience that runs a flow to completion inside
// Engine.Run and reports the elapsed virtual transfer time through done.
func (r *SharedResource) Transfer(bytes float64, done func(elapsed float64)) {
	start := r.eng.Now()
	r.Start(bytes, func() {
		if done != nil {
			done(r.eng.Now() - start)
		}
	})
}
