// Package sim implements the discrete-event simulation kernel used to
// model the parts of the paper's testbed we cannot run directly: shared
// parallel-file-system bandwidth under interference, node-local NVM
// devices, and the cluster fabric. Virtual time is a float64 number of
// seconds; events fire in (time, insertion) order so runs are fully
// deterministic.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Cancel prevents a pending event from
// firing.
type Event struct {
	at    float64
	seq   int64
	fn    func()
	index int     // heap index, -1 when fired or cancelled
	owner *Engine // scheduling engine, needed for Cancel
}

// Cancel removes the event from the schedule if it has not fired yet.
func (ev *Event) Cancel() {
	if ev != nil && ev.index >= 0 && ev.owner != nil {
		heap.Remove(&ev.owner.events, ev.index)
		ev.fn = nil
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use. Engines are not safe for concurrent use; a simulation is
// single-threaded by design.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
}

// NewEngine returns an Engine starting at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it always indicates a modeling bug.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, owner: e}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step fires the next event, reporting false when the schedule is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.fn == nil { // cancelled
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run fires events until the schedule is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to
// t if it has not passed it already.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of scheduled (uncancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if ev.fn != nil {
			n++
		}
	}
	return n
}
