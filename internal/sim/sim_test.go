package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestEngineTieBreakByInsertion(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(1, func() { order = append(order, "a") })
	e.At(1, func() { order = append(order, "b") })
	e.Run()
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("ties must fire in insertion order, got %v", order)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.At(1, func() {
		times = append(times, e.Now())
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	e.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 2.5 {
		t.Fatalf("Now = %v, want 2.5", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %v after Run", fired)
	}
}

func TestSharedResourceSingleFlow(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, 100) // 100 B/s
	var elapsed float64
	r.Transfer(500, func(d float64) { elapsed = d })
	e.Run()
	if math.Abs(elapsed-5) > 1e-9 {
		t.Fatalf("500 B at 100 B/s took %v s, want 5", elapsed)
	}
}

func TestSharedResourceFairShare(t *testing.T) {
	// Two equal flows each get half the capacity; both finish at 2x the
	// solo time.
	e := NewEngine()
	r := NewSharedResource(e, 100)
	var d1, d2 float64
	r.Transfer(100, func(d float64) { d1 = d })
	r.Transfer(100, func(d float64) { d2 = d })
	e.Run()
	if math.Abs(d1-2) > 1e-9 || math.Abs(d2-2) > 1e-9 {
		t.Fatalf("d1=%v d2=%v, want 2 each", d1, d2)
	}
}

func TestSharedResourceStaggered(t *testing.T) {
	// Flow A (200 B) starts alone at t=0; flow B (100 B) joins at t=1.
	// A runs 1 s alone (100 B done), then shares: both at 50 B/s.
	// B finishes at t=3; A has 100-? remaining... A: remaining 100 at t=1,
	// gets 50 B/s until t=3 (100 B) -> finishes exactly at t=3 too.
	e := NewEngine()
	r := NewSharedResource(e, 100)
	var endA, endB float64
	r.Start(200, func() { endA = e.Now() })
	e.At(1, func() {
		r.Start(100, func() { endB = e.Now() })
	})
	e.Run()
	if math.Abs(endA-3) > 1e-9 {
		t.Errorf("endA = %v, want 3", endA)
	}
	if math.Abs(endB-3) > 1e-9 {
		t.Errorf("endB = %v, want 3", endB)
	}
}

func TestSharedResourceWeighted(t *testing.T) {
	// Weight-3 flow gets 75 B/s, weight-1 flow gets 25 B/s.
	e := NewEngine()
	r := NewSharedResource(e, 100)
	var endHeavy, endLight float64
	r.StartWeighted(150, 3, func() { endHeavy = e.Now() })
	r.StartWeighted(150, 1, func() { endLight = e.Now() })
	e.Run()
	if math.Abs(endHeavy-2) > 1e-9 {
		t.Errorf("heavy = %v, want 2", endHeavy)
	}
	// After heavy finishes at t=2, light has 150-50=100 left at full 100 B/s.
	if math.Abs(endLight-3) > 1e-9 {
		t.Errorf("light = %v, want 3", endLight)
	}
}

func TestSharedResourceCancel(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, 100)
	var cancelled, completed bool
	f := r.Start(1000, func() { cancelled = true })
	r.Start(100, func() { completed = true })
	e.At(0.5, func() { f.Cancel() })
	e.Run()
	if cancelled {
		t.Error("cancelled flow ran its callback")
	}
	if !completed {
		t.Error("remaining flow did not complete")
	}
	if r.Active() != 0 {
		t.Errorf("Active = %d", r.Active())
	}
}

func TestSharedResourceZeroBytes(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, 100)
	done := false
	r.Start(0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-byte flow never completed")
	}
}

// TestSharedResourceConservation checks the work-conservation invariant:
// total bytes moved equals capacity * makespan when the resource is never
// idle, regardless of flow sizes and arrival order.
func TestSharedResourceConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		var total float64
		e := NewEngine()
		r := NewSharedResource(e, 50)
		any := false
		for _, s := range sizes {
			b := float64(s%1000) + 1
			total += b
			r.Start(b, nil)
			any = true
		}
		if !any {
			return true
		}
		e.Run()
		makespan := e.Now()
		return math.Abs(makespan-total/50) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same sequence")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical sequences")
	}
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(42)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Normal(10, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	var mn, mx float64 = math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		v := g.Uniform(3, 5)
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mn < 3 || mx >= 5 {
		t.Errorf("Uniform out of range: [%v, %v]", mn, mx)
	}
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto sample %v below minimum", v)
		}
		if v := g.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal sample %v not positive", v)
		}
		if v := g.Exp(2); v < 0 {
			t.Fatalf("Exp sample %v negative", v)
		}
	}
	p := g.Perm(10)
	sorted := append([]int(nil), p...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("Perm not a permutation: %v", p)
		}
	}
}
