package sim

import (
	"math"
	"math/rand"
)

// RNG wraps a deterministic pseudo-random source with the sampling
// helpers the storage-interference models need. Every experiment seeds
// its own RNG so results are reproducible run to run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian sample with the given mean and stddev.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is Normal(mu, sigma).
// Heavy-tailed load bursts on shared file systems are classically
// modeled as log-normal; this drives the figure-1 interference noise.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exp returns an exponential sample with the given rate (1/mean).
func (g *RNG) Exp(rate float64) float64 {
	return g.r.ExpFloat64() / rate
}

// Pareto returns a bounded Pareto-like heavy-tailed sample with minimum
// xm and shape alpha.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	if u == 0 {
		u = 1e-12
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes a slice of length n in place via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
