package simstore

import (
	"math"
	"testing"

	"github.com/ngioproject/norns-go/internal/sim"
)

func TestPFSSharedBandwidth(t *testing.T) {
	// Two nodes writing concurrently share the PFS: each sees half.
	e := sim.NewEngine()
	pfs := NewPFS(e, PFSConfig{Name: "lustre", ReadBW: 100, WriteBW: 100, Stripes: 4})
	var el1, el2 float64
	pfs.Write("n1", 100, func(el float64) { el1 = el })
	pfs.Write("n2", 100, func(el float64) { el2 = el })
	e.Run()
	if math.Abs(el1-2) > 1e-9 || math.Abs(el2-2) > 1e-9 {
		t.Fatalf("el1=%v el2=%v, want 2 each", el1, el2)
	}
}

func TestPFSReadWriteIndependent(t *testing.T) {
	e := sim.NewEngine()
	pfs := NewPFS(e, PFSConfig{Name: "lustre", ReadBW: 100, WriteBW: 50, Stripes: 1})
	var elR, elW float64
	pfs.Read("n1", 100, func(el float64) { elR = el })
	pfs.Write("n1", 100, func(el float64) { elW = el })
	e.Run()
	if math.Abs(elR-1) > 1e-9 {
		t.Fatalf("read elapsed = %v, want 1", elR)
	}
	if math.Abs(elW-2) > 1e-9 {
		t.Fatalf("write elapsed = %v, want 2", elW)
	}
}

func TestPFSStripingWeight(t *testing.T) {
	// A default-striped (1 of 4 OSTs) transfer competing with a fully
	// striped one gets 1/5 of the bandwidth (weights 0.25 vs 1).
	e := sim.NewEngine()
	pfs := NewPFS(e, PFSConfig{Name: "lustre", ReadBW: 100, WriteBW: 100, Stripes: 4})
	var elDefault float64
	pfs.SetStripeCount(1)
	pfs.Write("n1", 100, func(el float64) { elDefault = el })
	pfs.SetStripeCount(4)
	pfs.Write("n2", 400, func(el float64) {})
	e.Run()
	// Default stripe gets 20 B/s while sharing (100 B would take 5 s if
	// the full-stripe transfer ran the whole time; it finishes at t=5 too).
	if elDefault <= 1 {
		t.Fatalf("striped-down transfer too fast: %v", elDefault)
	}
}

func TestPFSNoiseDegradesAndVaries(t *testing.T) {
	// With background interference, foreground transfers slow down and
	// repeated runs vary.
	var clean float64
	{
		e := sim.NewEngine()
		pfs := NewPFS(e, PFSConfig{Name: "gpfs", ReadBW: 1000, WriteBW: 1000, Stripes: 1})
		pfs.Write("n1", 5000, func(el float64) { clean = el })
		e.Run()
	}
	var noisy []float64
	for seed := int64(0); seed < 5; seed++ {
		e := sim.NewEngine()
		pfs := NewPFS(e, PFSConfig{Name: "gpfs", ReadBW: 1000, WriteBW: 1000, Stripes: 1})
		rng := sim.NewRNG(seed)
		// Offered noise load: 200 bytes every 0.5 s = 400 B/s, well under
		// the 1000 B/s capacity, so the system stays stable.
		noise := pfs.StartNoise(rng, NoiseConfig{
			MeanInterarrival: 0.5, MeanBytes: 200, TailShape: 1.5, WriteShare: 1.0,
		})
		var el float64
		pfs.Write("n1", 5000, func(elapsed float64) { el = elapsed; noise.Stop() })
		e.RunUntil(1000)
		if el == 0 {
			t.Fatalf("seed %d: foreground write never completed", seed)
		}
		noisy = append(noisy, el)
	}
	varies := false
	for _, el := range noisy {
		if el <= clean {
			t.Fatalf("noisy run (%v) not slower than clean (%v)", el, clean)
		}
		if math.Abs(el-noisy[0]) > 1e-9 {
			varies = true
		}
	}
	if !varies {
		t.Fatal("interference produced identical runtimes across seeds")
	}
}

func TestNodeLocalPrivateBandwidth(t *testing.T) {
	// Two nodes writing to their own NVM do not contend: both finish in
	// the solo time, so aggregate bandwidth doubles.
	e := sim.NewEngine()
	nvm := NewNodeLocal(e, NodeLocalConfig{Name: "dcpmm", ReadBW: 200, WriteBW: 100})
	var el1, el2 float64
	nvm.Write("n1", 100, func(el float64) { el1 = el })
	nvm.Write("n2", 100, func(el float64) { el2 = el })
	e.Run()
	if math.Abs(el1-1) > 1e-9 || math.Abs(el2-1) > 1e-9 {
		t.Fatalf("el1=%v el2=%v, want 1 each (no contention)", el1, el2)
	}
}

func TestNodeLocalSameNodeContends(t *testing.T) {
	e := sim.NewEngine()
	nvm := NewNodeLocal(e, NodeLocalConfig{Name: "dcpmm", ReadBW: 200, WriteBW: 100})
	var el1, el2 float64
	nvm.Write("n1", 100, func(el float64) { el1 = el })
	nvm.Write("n1", 100, func(el float64) { el2 = el })
	e.Run()
	if math.Abs(el1-2) > 1e-9 || math.Abs(el2-2) > 1e-9 {
		t.Fatalf("el1=%v el2=%v, want 2 each (device shared)", el1, el2)
	}
}

func TestNodeLocalReadWriteAsymmetry(t *testing.T) {
	e := sim.NewEngine()
	nvm := NewNodeLocal(e, NodeLocalConfig{Name: "dcpmm", ReadBW: 200, WriteBW: 100})
	var elR, elW float64
	nvm.Read("n1", 200, func(el float64) { elR = el })
	nvm.Write("n1", 200, func(el float64) { elW = el })
	e.Run()
	if math.Abs(elR-1) > 1e-9 || math.Abs(elW-2) > 1e-9 {
		t.Fatalf("read=%v write=%v, want 1 and 2", elR, elW)
	}
}

func TestTierInterfaces(t *testing.T) {
	e := sim.NewEngine()
	var tiers []Tier = []Tier{
		NewPFS(e, PFSConfig{Name: "lustre", ReadBW: 1, WriteBW: 1, Stripes: 1}),
		NewNodeLocal(e, NodeLocalConfig{Name: "nvm", ReadBW: 1, WriteBW: 1}),
	}
	if !tiers[0].Shared() || tiers[1].Shared() {
		t.Fatal("Shared() misreported")
	}
	if tiers[0].Name() != "lustre" || tiers[1].Name() != "nvm" {
		t.Fatal("names wrong")
	}
}

// TestAggregateScalingShape is the figure-8 mechanism in miniature: PFS
// aggregate bandwidth is flat with node count, NVM aggregate grows
// linearly.
func TestAggregateScalingShape(t *testing.T) {
	aggPFS := func(nodes int) float64 {
		e := sim.NewEngine()
		pfs := NewPFS(e, PFSConfig{Name: "l", ReadBW: 100, WriteBW: 100, Stripes: 1})
		var last float64
		for i := 0; i < nodes; i++ {
			pfs.Write("n", 100, func(float64) { last = e.Now() })
		}
		e.Run()
		return 100 * float64(nodes) / last
	}
	aggNVM := func(nodes int) float64 {
		e := sim.NewEngine()
		nvm := NewNodeLocal(e, NodeLocalConfig{Name: "d", ReadBW: 100, WriteBW: 100})
		var last float64
		for i := 0; i < nodes; i++ {
			node := rune('a' + i)
			nvm.Write(string(node), 100, func(float64) { last = e.Now() })
		}
		e.Run()
		return 100 * float64(nodes) / last
	}
	if p1, p8 := aggPFS(1), aggPFS(8); math.Abs(p8-p1) > 1e-6 {
		t.Fatalf("PFS aggregate changed with nodes: %v vs %v", p1, p8)
	}
	if n1, n8 := aggNVM(1), aggNVM(8); math.Abs(n8-8*n1) > 1e-6 {
		t.Fatalf("NVM aggregate not linear: %v vs %v", n1, n8)
	}
}
