// Package simstore models the storage tiers of the paper's testbeds for
// the discrete-event experiments: a shared parallel file system whose
// bandwidth is fair-shared across all concurrent streams (and disturbed
// by background cross-application interference), and node-local NVM
// devices whose bandwidth is private to each node — so aggregate NVM
// bandwidth grows linearly with node count while PFS bandwidth does not.
// This is the mechanism behind figures 1 and 8 and tables III–V.
package simstore

import (
	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/simnet"
)

// Tier is a storage layer transfers can read from and write to.
// node selects the device for node-local tiers and is ignored by shared
// tiers.
type Tier interface {
	// Name identifies the tier ("lustre", "nvm", ...).
	Name() string
	// Shared reports whether bandwidth is shared across nodes.
	Shared() bool
	// Read starts reading the given bytes on behalf of node; done fires
	// with the elapsed virtual seconds.
	Read(node string, bytes float64, done func(elapsed float64))
	// Write starts writing the given bytes on behalf of node.
	Write(node string, bytes float64, done func(elapsed float64))
}

// PFSConfig parameterizes a shared parallel file system model.
type PFSConfig struct {
	Name string
	// ReadBW and WriteBW are the file system's peak aggregate
	// bandwidths in bytes/sec.
	ReadBW  float64
	WriteBW float64
	// Stripes is the number of object storage targets; transfers declare
	// how many they stripe over, which scales their fair share
	// (figure 1a's default-vs-full striping gap).
	Stripes int
	// ClientCap bounds a single client stream's rate in bytes/sec
	// (0 = uncapped): one serial writer cannot drive the whole file
	// system, which is why the paper's serial OpenFOAM decomposition
	// sees far less than peak Lustre bandwidth.
	ClientCap float64
}

// PFS is the shared parallel file system model.
type PFS struct {
	cfg   PFSConfig
	eng   *sim.Engine
	read  *simnet.CappedResource
	write *simnet.CappedResource
	// stripeCount is the striping applied to subsequent transfers
	// (default: full striping).
	stripeCount int
}

// NewPFS returns a PFS model on the engine.
func NewPFS(eng *sim.Engine, cfg PFSConfig) *PFS {
	if cfg.Stripes <= 0 {
		cfg.Stripes = 1
	}
	return &PFS{
		cfg:         cfg,
		eng:         eng,
		read:        simnet.NewCappedResource(eng, cfg.ReadBW),
		write:       simnet.NewCappedResource(eng, cfg.WriteBW),
		stripeCount: cfg.Stripes,
	}
}

// Name implements Tier.
func (p *PFS) Name() string { return p.cfg.Name }

// Shared implements Tier.
func (p *PFS) Shared() bool { return true }

// SetStripeCount sets the striping for subsequent transfers (clamped to
// [1, Stripes]).
func (p *PFS) SetStripeCount(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.cfg.Stripes {
		n = p.cfg.Stripes
	}
	p.stripeCount = n
}

// weight converts the current stripe count into a fair-share weight: a
// transfer striped over k of S OSTs competes with weight k/S of a fully
// striped one.
func (p *PFS) weight() float64 {
	return float64(p.stripeCount) / float64(p.cfg.Stripes)
}

// Read implements Tier.
func (p *PFS) Read(_ string, bytes float64, done func(float64)) {
	start := p.eng.Now()
	p.read.StartWeighted(bytes, p.cfg.ClientCap, p.weight(), func() {
		if done != nil {
			done(p.eng.Now() - start)
		}
	})
}

// Write implements Tier.
func (p *PFS) Write(_ string, bytes float64, done func(float64)) {
	start := p.eng.Now()
	p.write.StartWeighted(bytes, p.cfg.ClientCap, p.weight(), func() {
		if done != nil {
			done(p.eng.Now() - start)
		}
	})
}

// NoiseConfig parameterizes background cross-application interference:
// bursts of competing PFS traffic from the rest of the production
// workload.
type NoiseConfig struct {
	// MeanInterarrival is the mean seconds between burst arrivals.
	MeanInterarrival float64
	// MeanBytes is the mean burst volume; bursts are heavy-tailed
	// (Pareto with the given shape).
	MeanBytes  float64
	TailShape  float64 // Pareto alpha, > 1
	WriteShare float64 // fraction of bursts that are writes
}

// Noise injects interference bursts into a PFS until stopped.
type Noise struct {
	stop bool
}

// Stop ends the noise process after the current burst.
func (n *Noise) Stop() { n.stop = true }

// StartNoise begins injecting background load driven by rng.
func (p *PFS) StartNoise(rng *sim.RNG, cfg NoiseConfig) *Noise {
	if cfg.TailShape <= 1 {
		cfg.TailShape = 1.5
	}
	n := &Noise{}
	// Pareto mean = xm * alpha/(alpha-1); solve xm for the target mean.
	xm := cfg.MeanBytes * (cfg.TailShape - 1) / cfg.TailShape
	var schedule func()
	schedule = func() {
		if n.stop {
			return
		}
		wait := rng.Exp(1 / cfg.MeanInterarrival)
		p.eng.After(wait, func() {
			if n.stop {
				return
			}
			bytes := rng.Pareto(xm, cfg.TailShape)
			res := p.read
			if rng.Float64() < cfg.WriteShare {
				res = p.write
			}
			res.Start(bytes, 0, nil)
			schedule()
		})
	}
	schedule()
	return n
}

// NodeLocalConfig parameterizes per-node storage devices.
type NodeLocalConfig struct {
	Name string
	// ReadBW and WriteBW are per-device bandwidths in bytes/sec
	// (DCPMM-style asymmetry: reads faster than writes).
	ReadBW  float64
	WriteBW float64
}

// NodeLocal models node-local NVM/SSD devices: each node owns private
// read and write capacity, so aggregate bandwidth scales with node
// count.
type NodeLocal struct {
	cfg NodeLocalConfig
	eng *sim.Engine
	dev map[string]*nodeDev
}

type nodeDev struct {
	read  *sim.SharedResource
	write *sim.SharedResource
}

// NewNodeLocal returns a node-local tier model.
func NewNodeLocal(eng *sim.Engine, cfg NodeLocalConfig) *NodeLocal {
	return &NodeLocal{cfg: cfg, eng: eng, dev: make(map[string]*nodeDev)}
}

// Name implements Tier.
func (n *NodeLocal) Name() string { return n.cfg.Name }

// Shared implements Tier.
func (n *NodeLocal) Shared() bool { return false }

func (n *NodeLocal) device(node string) *nodeDev {
	d, ok := n.dev[node]
	if !ok {
		d = &nodeDev{
			read:  sim.NewSharedResource(n.eng, n.cfg.ReadBW),
			write: sim.NewSharedResource(n.eng, n.cfg.WriteBW),
		}
		n.dev[node] = d
	}
	return d
}

// Read implements Tier.
func (n *NodeLocal) Read(node string, bytes float64, done func(float64)) {
	start := n.eng.Now()
	n.device(node).read.Start(bytes, func() {
		if done != nil {
			done(n.eng.Now() - start)
		}
	})
}

// Write implements Tier.
func (n *NodeLocal) Write(node string, bytes float64, done func(float64)) {
	start := n.eng.Now()
	n.device(node).write.Start(bytes, func() {
		if done != nil {
			done(n.eng.Now() - start)
		}
	})
}
