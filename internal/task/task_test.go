package task

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestResourceConstructors(t *testing.T) {
	m := MemoryRegion(make([]byte, 16))
	if m.Kind != Memory || m.Size != 16 {
		t.Fatalf("MemoryRegion = %+v", m)
	}
	p := PosixPath("nvme0://", "out/file")
	if p.Kind != LocalPath || p.Dataspace != "nvme0://" || p.Path != "out/file" {
		t.Fatalf("PosixPath = %+v", p)
	}
	r := RemotePosixPath("node7", "pmdk0://", "x")
	if r.Kind != RemotePath || r.Node != "node7" {
		t.Fatalf("RemotePosixPath = %+v", r)
	}
}

func TestResourceValidate(t *testing.T) {
	cases := []struct {
		r  Resource
		ok bool
	}{
		{MemoryRegion(make([]byte, 1)), true},
		{Resource{Kind: Memory}, false},
		{Resource{Kind: Memory, Size: 128}, true},
		{PosixPath("nvme0://", "a"), true},
		{Resource{Kind: LocalPath, Path: "a"}, false},
		{Resource{Kind: LocalPath, Dataspace: "d://"}, false},
		{RemotePosixPath("n", "d://", "p"), true},
		{Resource{Kind: RemotePath, Dataspace: "d://", Path: "p"}, false},
		{Resource{Kind: 99}, false},
	}
	for i, c := range cases {
		if err := c.r.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d (%v): err = %v, want ok=%v", i, c.r, err, c.ok)
		}
	}
}

func TestResourceString(t *testing.T) {
	if s := MemoryRegion(make([]byte, 4)).String(); s != "mem[4]" {
		t.Errorf("mem String = %q", s)
	}
	if s := PosixPath("lustre://", "a/b").String(); s != "lustre://a/b" {
		t.Errorf("posix String = %q", s)
	}
	if s := RemotePosixPath("n1", "nvme0://", "c").String(); s != "n1@nvme0://c" {
		t.Errorf("remote String = %q", s)
	}
}

func TestTaskValidate(t *testing.T) {
	ok := New(1, Copy, MemoryRegion(make([]byte, 8)), PosixPath("d://", "p"))
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid copy rejected: %v", err)
	}
	memOut := New(2, Copy, PosixPath("d://", "p"), MemoryRegion(make([]byte, 8)))
	if err := memOut.Validate(); err == nil {
		t.Fatal("memory output accepted")
	}
	rmMem := New(3, Remove, MemoryRegion(make([]byte, 8)), Resource{})
	if err := rmMem.Validate(); err == nil {
		t.Fatal("remove of memory region accepted")
	}
	rm := New(4, Remove, PosixPath("d://", "p"), Resource{})
	if err := rm.Validate(); err != nil {
		t.Fatalf("valid remove rejected: %v", err)
	}
	noop := New(5, NoOp, Resource{}, Resource{})
	if err := noop.Validate(); err != nil {
		t.Fatalf("noop rejected: %v", err)
	}
}

func TestTaskLifecycle(t *testing.T) {
	tk := New(1, Copy, MemoryRegion(make([]byte, 8)), PosixPath("d://", "p"))
	if got := tk.Status(); got != Pending {
		t.Fatalf("initial status = %v", got)
	}
	if err := tk.Start(100); err != nil {
		t.Fatal(err)
	}
	tk.Progress(60)
	tk.Progress(40)
	if err := tk.Finish(); err != nil {
		t.Fatal(err)
	}
	st := tk.Stats()
	if st.Status != Finished || st.MovedBytes != 100 || st.TotalBytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
	select {
	case <-tk.Done():
	default:
		t.Fatal("Done channel not closed after Finish")
	}
}

func TestTaskIllegalTransitions(t *testing.T) {
	tk := New(1, NoOp, Resource{}, Resource{})
	if err := tk.Finish(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("Finish before Start: %v", err)
	}
	if err := tk.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(0); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("double Start: %v", err)
	}
	if err := tk.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Fail("late"); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("Fail after Finish: %v", err)
	}
	if err := tk.Cancel(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("Cancel after Finish: %v", err)
	}
}

func TestTaskCancelWhileRunning(t *testing.T) {
	tk := New(1, NoOp, Resource{}, Resource{})
	if err := tk.Start(0); err != nil {
		t.Fatal(err)
	}
	// Running -> Cancelling: the cancel request is asynchronous...
	if err := tk.Cancel(); err != nil {
		t.Fatal(err)
	}
	if got := tk.Status(); got != Cancelling {
		t.Fatalf("status after cancel = %v", got)
	}
	select {
	case <-tk.CancelRequested():
	default:
		t.Fatal("CancelRequested not signalled")
	}
	select {
	case <-tk.Done():
		t.Fatal("Done closed before the worker confirmed")
	default:
	}
	// ...double-cancel while Cancelling is an idempotent no-op...
	if err := tk.Cancel(); err != nil {
		t.Fatalf("double cancel: %v", err)
	}
	// ...and the worker confirms at its next chunk boundary.
	if err := tk.FinishCancel(); err != nil {
		t.Fatal(err)
	}
	if got := tk.Status(); got != Cancelled {
		t.Fatalf("status after confirm = %v", got)
	}
	if err := tk.Cancel(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("cancel after terminal: %v", err)
	}
}

func TestTaskCancellingMayStillFinish(t *testing.T) {
	// The transfer completed before the worker observed the cancel: the
	// data is whole, so Finished wins.
	tk := New(1, NoOp, Resource{}, Resource{})
	if err := tk.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := tk.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := tk.Status(); got != Finished {
		t.Fatalf("status = %v", got)
	}
}

func TestTaskCancelPending(t *testing.T) {
	tk := New(1, NoOp, Resource{}, Resource{})
	if err := tk.Cancel(); err != nil {
		t.Fatal(err)
	}
	if got := tk.Status(); got != Cancelled {
		t.Fatalf("status = %v", got)
	}
}

func TestTaskFailFromPending(t *testing.T) {
	tk := New(1, NoOp, Resource{}, Resource{})
	if err := tk.Fail("validation"); err != nil {
		t.Fatal(err)
	}
	st := tk.Stats()
	if st.Status != Failed || st.Err != "validation" {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTaskWait(t *testing.T) {
	tk := New(1, NoOp, Resource{}, Resource{})
	if tk.Wait(5 * time.Millisecond) {
		t.Fatal("Wait returned before terminal state")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := tk.Start(0); err != nil {
			t.Error(err)
			return
		}
		if err := tk.Finish(); err != nil {
			t.Error(err)
		}
	}()
	if !tk.Wait(time.Second) {
		t.Fatal("Wait timed out")
	}
	wg.Wait()
}

func TestStatusTerminal(t *testing.T) {
	for s, want := range map[Status]bool{
		Pending: false, Running: false, Cancelling: false,
		Finished: true, Failed: true, Cancelled: true,
	} {
		if s.Terminal() != want {
			t.Errorf("%v.Terminal() = %v", s, !want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if Copy.String() != "copy" || Move.String() != "move" || Remove.String() != "remove" || NoOp.String() != "noop" {
		t.Fatal("kind strings wrong")
	}
	if Memory.String() != "memory" || LocalPath.String() != "local-path" || RemotePath.String() != "remote-path" {
		t.Fatal("resource kind strings wrong")
	}
}

func TestETAEstimatorFallback(t *testing.T) {
	e := NewETAEstimator(0, 0)
	if got := e.Bandwidth(); got != DefaultFallbackBandwidth {
		t.Fatalf("fallback bandwidth = %v", got)
	}
	d := e.Estimate(DefaultFallbackBandwidth) // exactly 1 second of data
	if math.Abs(d.Seconds()-1) > 1e-9 {
		t.Fatalf("Estimate = %v, want 1s", d)
	}
	if e.Estimate(0) != 0 {
		t.Fatal("Estimate(0) != 0")
	}
}

func TestETAEstimatorConverges(t *testing.T) {
	e := NewETAEstimator(0.5, 0)
	for i := 0; i < 20; i++ {
		e.Record(200<<20, time.Second) // 200 MiB/s
	}
	bw := e.Bandwidth()
	if math.Abs(bw-200<<20) > 1<<20 {
		t.Fatalf("bandwidth = %v, want ~200 MiB/s", bw)
	}
	if e.Samples() != 20 {
		t.Fatalf("Samples = %d", e.Samples())
	}
}

func TestETAEstimatorAdapts(t *testing.T) {
	e := NewETAEstimator(0.5, 0)
	e.Record(100, time.Second) // 100 B/s
	e.Record(300, time.Second) // ewma: 0.5*300 + 0.5*100 = 200
	if bw := e.Bandwidth(); math.Abs(bw-200) > 1e-9 {
		t.Fatalf("bandwidth = %v, want 200", bw)
	}
}

func TestETAEstimatorIgnoresBadSamples(t *testing.T) {
	e := NewETAEstimator(0.5, 1000)
	e.Record(0, time.Second)
	e.Record(100, 0)
	e.Record(-5, time.Second)
	if e.Samples() != 0 {
		t.Fatalf("bad samples recorded: %d", e.Samples())
	}
}

func TestETAEstimatorProperty(t *testing.T) {
	// Estimates scale linearly with size for a fixed bandwidth.
	f := func(sz uint32) bool {
		e := NewETAEstimator(0.3, 0)
		e.Record(1<<20, time.Second) // 1 MiB/s
		bytes := int64(sz%1000000) + 1
		d := e.Estimate(bytes)
		want := float64(bytes) / (1 << 20)
		return math.Abs(d.Seconds()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentCheckpointPlanIdentity: a restored checkpoint only
// pre-marks segments when the new plan matches it exactly — same
// segment size AND same planned byte total. A source that changed size
// while the daemon was down must restart from scratch, not resume into
// a corrupt destination.
func TestSegmentCheckpointPlanIdentity(t *testing.T) {
	mk := func() *Task {
		tk := New(1, Copy, PosixPath("a://", "f"), PosixPath("b://", "f"))
		tk.RestoreSegments(256, 2048, []byte{0x07}) // segments 0-2 done
		return tk
	}
	// Exact match: the three checkpointed segments are skipped.
	already := mk().InitSegments(256, 2048, 8)
	done := 0
	for _, d := range already {
		if d {
			done++
		}
	}
	if done != 3 || !already[0] || !already[1] || !already[2] {
		t.Fatalf("matching plan restored %v", already)
	}
	// Plan size changed (source resized): checkpoint discarded.
	for _, d := range mk().InitSegments(256, 1024, 4) {
		if d {
			t.Fatal("resized plan resumed a stale checkpoint")
		}
	}
	// Segment size changed: checkpoint discarded.
	for _, d := range mk().InitSegments(512, 2048, 4) {
		if d {
			t.Fatal("retuned segment size resumed a stale checkpoint")
		}
	}
	// Non-resumable plan (planBytes 0) never matches.
	for _, d := range mk().InitSegments(256, 0, 1) {
		if d {
			t.Fatal("non-resumable plan resumed a checkpoint")
		}
	}
	// A completed bitmap round-trips through SegmentBitmap with its
	// plan identity.
	tk := mk()
	tk.InitSegments(256, 2048, 8)
	tk.CompleteSegment(5)
	segSize, plan, bits := tk.SegmentBitmap()
	if segSize != 256 || plan != 2048 || len(bits) != 1 || bits[0] != 0x27 {
		t.Fatalf("bitmap = (%d, %d, %x)", segSize, plan, bits)
	}
}
