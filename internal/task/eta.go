package task

import (
	"sync"
	"time"
)

// ETAEstimator tracks observed transfer bandwidth and predicts how long a
// pending transfer of a given size will take. The urd daemon keeps one
// estimator per transfer-plugin pair; slurmctld uses the estimates to
// decide when to trigger stage-in ahead of a job launch and when a node
// draining stage-out traffic will re-enter the free pool.
//
// The estimate is an exponentially weighted moving average of bytes/sec,
// which adapts to changing interconnect or file-system load without
// remembering unbounded history.
type ETAEstimator struct {
	mu sync.Mutex
	// ewma of observed bandwidth in bytes/sec; 0 until first sample.
	bw float64
	// alpha is the smoothing factor for new samples.
	alpha float64
	// fallback is used before any samples arrive.
	fallback float64
	samples  int
}

// DefaultFallbackBandwidth is assumed before any transfer completes
// (100 MiB/s, a conservative shared-PFS figure).
const DefaultFallbackBandwidth = 100 << 20

// NewETAEstimator returns an estimator with the given smoothing factor
// (0 < alpha <= 1; 0 selects 0.3) and fallback bandwidth in bytes/sec
// (<= 0 selects DefaultFallbackBandwidth).
func NewETAEstimator(alpha, fallback float64) *ETAEstimator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if fallback <= 0 {
		fallback = DefaultFallbackBandwidth
	}
	return &ETAEstimator{alpha: alpha, fallback: fallback}
}

// Record feeds one completed transfer into the moving average.
// Zero-byte or zero-duration transfers are ignored.
func (e *ETAEstimator) Record(bytes int64, elapsed time.Duration) {
	if bytes <= 0 || elapsed <= 0 {
		return
	}
	sample := float64(bytes) / elapsed.Seconds()
	e.mu.Lock()
	if e.samples == 0 {
		e.bw = sample
	} else {
		e.bw = e.alpha*sample + (1-e.alpha)*e.bw
	}
	e.samples++
	e.mu.Unlock()
}

// Bandwidth returns the current bandwidth estimate in bytes/sec.
func (e *ETAEstimator) Bandwidth() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples == 0 {
		return e.fallback
	}
	return e.bw
}

// Samples returns how many transfers have been recorded.
func (e *ETAEstimator) Samples() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.samples
}

// Estimate predicts the duration of a transfer of the given size.
func (e *ETAEstimator) Estimate(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	bw := e.Bandwidth()
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}
