package task

import (
	"time"

	"github.com/ngioproject/norns-go/internal/wire"
)

// Spec is the durable, wire-stable form of a task: everything needed to
// reconstruct and re-execute it after a daemon restart. The urd journal
// records a Spec per submission; replaying it through Task (plus the
// recorded state transitions) rebuilds the daemon's task table.
//
// Stability contract: the field tags below and the numeric values of
// Kind, ResourceKind, and Status are part of the on-disk format and
// must never be renumbered — journals written by one build must replay
// under the next. New fields get new tags; unknown tags are skipped.
type Spec struct {
	Kind     Kind
	Input    Resource
	Output   Resource
	Priority int
	JobID    uint64
	// Deadline is the absolute execution bound (zero = none). It is
	// preserved across restarts: a recovered task whose deadline passed
	// while the daemon was down expires instead of re-running.
	Deadline time.Time
	// MaxBps is the task's bandwidth cap in bytes per second (0 = none),
	// preserved so a recovered task resumes under the same throttle.
	MaxBps int64
	// RetryMax is the task's own retry budget (0 = daemon default),
	// preserved so a recovered task keeps its policy.
	RetryMax uint32
}

// SpecOf captures a task's durable form. The JobID is the effective
// (post-authorization) job, so recovery does not re-authorize.
func SpecOf(t *Task) Spec {
	return Spec{
		Kind:     t.Kind,
		Input:    t.Input,
		Output:   t.Output,
		Priority: t.Priority,
		JobID:    t.JobID,
		Deadline: t.Deadline,
		MaxBps:   t.MaxBps,
		RetryMax: t.RetryMax,
	}
}

// Task reconstructs a Pending task with the given ID from the spec.
func (s Spec) Task(id uint64) *Task {
	t := New(id, s.Kind, s.Input, s.Output)
	t.Priority = s.Priority
	t.JobID = s.JobID
	t.Deadline = s.Deadline
	t.MaxBps = s.MaxBps
	t.RetryMax = s.RetryMax
	return t
}

// MarshalWire implements wire.Marshaler.
func (s *Spec) MarshalWire(e *wire.Encoder) {
	e.Uint32(1, uint32(s.Kind))
	e.Message(2, &s.Input)
	e.Message(3, &s.Output)
	if s.Priority != 0 {
		e.Int(4, s.Priority)
	}
	if s.JobID != 0 {
		e.Uint64(5, s.JobID)
	}
	if !s.Deadline.IsZero() {
		e.Int64(6, s.Deadline.UnixNano())
	}
	if s.MaxBps != 0 {
		e.Int64(7, s.MaxBps)
	}
	if s.RetryMax != 0 {
		e.Uint32(8, s.RetryMax)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (s *Spec) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			s.Kind = Kind(d.Uint32())
		case 2:
			d.Message(&s.Input)
		case 3:
			d.Message(&s.Output)
		case 4:
			s.Priority = d.Int()
		case 5:
			s.JobID = d.Uint64()
		case 6:
			s.Deadline = time.Unix(0, d.Int64())
		case 7:
			s.MaxBps = d.Int64()
		case 8:
			s.RetryMax = d.Uint32()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// MarshalWire implements wire.Marshaler. Memory-region payloads travel
// inline so a recovered task can re-run its copy from the journal alone.
func (r *Resource) MarshalWire(e *wire.Encoder) {
	e.Uint32(1, uint32(r.Kind))
	if r.Dataspace != "" {
		e.String(2, r.Dataspace)
	}
	if r.Path != "" {
		e.String(3, r.Path)
	}
	if r.Node != "" {
		e.String(4, r.Node)
	}
	if r.Size != 0 {
		e.Int64(5, r.Size)
	}
	if len(r.Data) > 0 {
		e.Bytes(6, r.Data)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *Resource) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Kind = ResourceKind(d.Uint32())
		case 2:
			r.Dataspace = d.String()
		case 3:
			r.Path = d.String()
		case 4:
			r.Node = d.String()
		case 5:
			r.Size = d.Int64()
		case 6:
			r.Data = append([]byte(nil), d.Bytes()...)
		default:
			d.Skip()
		}
	}
	return d.Err()
}
