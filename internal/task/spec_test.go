package task

import (
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/wire"
)

func TestSpecRoundTrip(t *testing.T) {
	deadline := time.Unix(0, 1_700_000_000_000_000_042)
	in := Spec{
		Kind:     Move,
		Input:    MemoryRegion([]byte("payload")),
		Output:   RemotePosixPath("node002", "lustre://", "/out/x"),
		Priority: -5,
		JobID:    42,
		Deadline: deadline,
	}
	var out Spec
	if err := wire.Unmarshal(wire.Marshal(&in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != Move || out.Priority != -5 || out.JobID != 42 {
		t.Fatalf("spec mismatch: %+v", out)
	}
	if string(out.Input.Data) != "payload" || out.Input.Kind != Memory {
		t.Fatalf("input mismatch: %+v", out.Input)
	}
	if out.Output.Node != "node002" || out.Output.Dataspace != "lustre://" || out.Output.Path != "/out/x" {
		t.Fatalf("output mismatch: %+v", out.Output)
	}
	if !out.Deadline.Equal(deadline) {
		t.Fatalf("deadline = %v, want %v", out.Deadline, deadline)
	}
}

func TestSpecOfTaskRoundTrip(t *testing.T) {
	orig := New(9, Copy, MemoryRegion([]byte("abc")), PosixPath("nvme0://", "f"))
	orig.Priority = 3
	orig.JobID = 11
	orig.Deadline = time.Now().Add(time.Hour).Truncate(time.Nanosecond)

	var spec Spec
	if err := wire.Unmarshal(wire.Marshal(specPtr(SpecOf(orig))), &spec); err != nil {
		t.Fatal(err)
	}
	re := spec.Task(9)
	if re.ID != 9 || re.Kind != Copy || re.Priority != 3 || re.JobID != 11 {
		t.Fatalf("rebuilt task mismatch: %+v", re)
	}
	if !re.Deadline.Equal(orig.Deadline) {
		t.Fatalf("deadline = %v, want %v", re.Deadline, orig.Deadline)
	}
	if re.Status() != Pending {
		t.Fatalf("rebuilt task status = %v, want pending", re.Status())
	}
	if err := re.Validate(); err != nil {
		t.Fatalf("rebuilt task invalid: %v", err)
	}
}

func specPtr(s Spec) *Spec { return &s }

// TestStatusCodesAreJournalStable locks the numeric status values: they
// are persisted in the urd write-ahead log, so renumbering them would
// silently corrupt recovery of existing journals.
func TestStatusCodesAreJournalStable(t *testing.T) {
	want := map[Status]uint8{
		Pending:    1,
		Running:    2,
		Finished:   3,
		Failed:     4,
		Cancelled:  5,
		Cancelling: 6,
	}
	for s, code := range want {
		if uint8(s) != code {
			t.Errorf("Status %s = %d, journal format requires %d", s, uint8(s), code)
		}
	}
	kinds := map[Kind]uint8{Copy: 1, Move: 2, Remove: 3, NoOp: 4}
	for k, code := range kinds {
		if uint8(k) != code {
			t.Errorf("Kind %s = %d, journal format requires %d", k, uint8(k), code)
		}
	}
	resources := map[ResourceKind]uint8{Memory: 1, LocalPath: 2, RemotePath: 3}
	for rk, code := range resources {
		if uint8(rk) != code {
			t.Errorf("ResourceKind %s = %d, journal format requires %d", rk, uint8(rk), code)
		}
	}
}

func TestRestore(t *testing.T) {
	// Restore places a fresh task directly in a terminal state, byte
	// counters included.
	tk := New(1, Copy, MemoryRegion([]byte("x")), PosixPath("d://", "p"))
	if err := tk.Restore(Stats{Status: Failed, Err: "boom", TotalBytes: 10, MovedBytes: 4}); err != nil {
		t.Fatal(err)
	}
	st := tk.Stats()
	if st.Status != Failed || st.Err != "boom" || st.TotalBytes != 10 || st.MovedBytes != 4 {
		t.Fatalf("restored stats = %+v", st)
	}
	if st.Ended.IsZero() {
		t.Fatal("restored task has no end time")
	}
	if !tk.Wait(0) {
		t.Fatal("restored task not done")
	}
	// Terminal tasks reject further transitions, including re-restore.
	if err := tk.Restore(Stats{Status: Finished}); err == nil {
		t.Fatal("double restore accepted")
	}
	if err := tk.Start(0); err == nil {
		t.Fatal("start after restore accepted")
	}
	if err := tk.Cancel(); err == nil {
		t.Fatal("cancel after restore accepted")
	}

	// Restore to a non-terminal state is illegal.
	tk2 := New(2, Copy, MemoryRegion([]byte("x")), PosixPath("d://", "p"))
	if err := tk2.Restore(Stats{Status: Running}); err == nil {
		t.Fatal("restore to running accepted")
	}
	// Restore of a started task is illegal.
	if err := tk2.Start(1); err != nil {
		t.Fatal(err)
	}
	if err := tk2.Restore(Stats{Status: Finished}); err == nil {
		t.Fatal("restore of a running task accepted")
	}
	// Restore to Cancelled closes the cancel channel too, mirroring the
	// normal cancellation path.
	tk3 := New(3, Copy, MemoryRegion([]byte("x")), PosixPath("d://", "p"))
	if err := tk3.Restore(Stats{Status: Cancelled}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk3.CancelRequested():
	default:
		t.Fatal("cancel channel open after Restore(Cancelled)")
	}
}
