// Package task defines the NORNS I/O task model: the resources a task
// reads and writes (memory regions, local dataspace paths, remote
// dataspace paths), task kinds (copy, move, remove), life-cycle states,
// completion statistics, and the E.T.A. estimation the urd daemon feeds
// back to the job scheduler so it can plan around in-flight staging.
package task

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Kind identifies what a task does with its resources.
type Kind uint8

// Task kinds, mirroring the norns_iotask_init types.
const (
	Copy   Kind = iota + 1 // duplicate input at output
	Move                   // copy then delete input
	Remove                 // delete input
	NoOp                   // accepted and completed without I/O (benchmarking)
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Copy:
		return "copy"
	case Move:
		return "move"
	case Remove:
		return "remove"
	case NoOp:
		return "noop"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ResourceKind identifies where a resource lives.
type ResourceKind uint8

// Resource kinds, mirroring NORNS_MEMORY_REGION / NORNS_POSIX_PATH and
// their remote variants.
const (
	Memory     ResourceKind = iota + 1 // a caller buffer
	LocalPath                          // path inside a dataspace on this node
	RemotePath                         // path inside a dataspace on another node
)

// String returns the lowercase name of the resource kind.
func (rk ResourceKind) String() string {
	switch rk {
	case Memory:
		return "memory"
	case LocalPath:
		return "local-path"
	case RemotePath:
		return "remote-path"
	default:
		return fmt.Sprintf("resource(%d)", uint8(rk))
	}
}

// Resource names one endpoint of an I/O task.
type Resource struct {
	Kind ResourceKind
	// Dataspace is the registered dataspace ID, e.g. "lustre://" or
	// "nvme0://". Unused for Memory resources.
	Dataspace string
	// Path is the dataspace-relative path. Unused for Memory resources.
	Path string
	// Node is the target host for RemotePath resources.
	Node string
	// Data is the buffer for Memory resources. Size alone may be set by
	// clients that stream the buffer separately.
	Data []byte
	// Size is the buffer length for Memory resources when Data is nil.
	Size int64
}

// MemoryRegion returns a Resource for a caller buffer.
func MemoryRegion(data []byte) Resource {
	return Resource{Kind: Memory, Data: data, Size: int64(len(data))}
}

// PosixPath returns a Resource for a path inside a local dataspace.
func PosixPath(dataspace, path string) Resource {
	return Resource{Kind: LocalPath, Dataspace: dataspace, Path: path}
}

// RemotePosixPath returns a Resource for a path inside a dataspace on
// another node.
func RemotePosixPath(node, dataspace, path string) Resource {
	return Resource{Kind: RemotePath, Node: node, Dataspace: dataspace, Path: path}
}

// String renders the resource like "nvme0://checkpoints/c1" or
// "mem[4096]".
func (r Resource) String() string {
	switch r.Kind {
	case Memory:
		n := r.Size
		if r.Data != nil {
			n = int64(len(r.Data))
		}
		return fmt.Sprintf("mem[%d]", n)
	case RemotePath:
		return fmt.Sprintf("%s@%s%s", r.Node, r.Dataspace, r.Path)
	default:
		return r.Dataspace + r.Path
	}
}

// Validate checks structural consistency of the resource.
func (r Resource) Validate() error {
	switch r.Kind {
	case Memory:
		if r.Data == nil && r.Size <= 0 {
			return errors.New("task: memory resource needs data or a size")
		}
		return nil
	case LocalPath:
		if r.Dataspace == "" || r.Path == "" {
			return errors.New("task: local path resource needs dataspace and path")
		}
		return nil
	case RemotePath:
		if r.Node == "" || r.Dataspace == "" || r.Path == "" {
			return errors.New("task: remote path resource needs node, dataspace and path")
		}
		return nil
	default:
		return fmt.Errorf("task: unknown resource kind %d", r.Kind)
	}
}

// Status is a task's life-cycle state.
type Status uint8

// Task states. The legal transitions are
//
//	Pending -> Running -> (Finished | Failed | DeadLetter)
//	Pending -> (Cancelled | Failed)
//	Running -> Cancelling -> (Cancelled | Finished | Failed)
//	Running -> Pending (Retry: transient failure with budget left)
//
// Cancelling is the cooperative-interrupt window: the transfer worker
// observes the cancellation at its next chunk boundary and confirms it,
// or — if the transfer happened to complete first — finishes normally.
//
// DeadLetter is the quarantine state: the task failed transiently, its
// retry budget is exhausted, and it waits for an operator to inspect
// and requeue it (as a fresh task) instead of burning more attempts.
// It is terminal for waiters and journaling purposes.
//
// The numeric values are wire- and journal-stable (see Spec): they are
// persisted in the urd write-ahead log and must never be renumbered.
const (
	Pending Status = iota + 1
	Running
	Finished
	Failed
	Cancelled
	Cancelling
	DeadLetter
)

// String returns the lowercase name of the status.
func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Finished:
		return "finished"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	case Cancelling:
		return "cancelling"
	case DeadLetter:
		return "dead-letter"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Terminal reports whether no further transitions are possible.
// DeadLetter counts: the quarantined task itself never runs again —
// requeueing resubmits its spec as a fresh task.
func (s Status) Terminal() bool {
	return s == Finished || s == Failed || s == Cancelled || s == DeadLetter
}

// Stats is the completion report exposed through norns_error(), plus the
// live progress the E.T.A. tracker uses.
type Stats struct {
	Status     Status
	Err        string // non-empty when Status == Failed
	TotalBytes int64
	MovedBytes int64
	// SizeErr records a failed up-front size probe (Stat on the input).
	// TotalBytes is then an explicit 0 fallback rather than a silent one,
	// so SJF ordering and E.T.A. consumers can tell "empty" from
	// "unknown".
	SizeErr   string
	Submitted time.Time
	Started   time.Time
	Ended     time.Time
	// SegmentsTotal/SegmentsDone track the segmented transfer engine's
	// progress: the planner splits a transfer into fixed-size segments
	// and completes them on parallel streams. Zero totals mean the task
	// ran on a path that does not segment (removals, no-ops, fallbacks
	// report one logical segment).
	SegmentsTotal int
	SegmentsDone  int
	// BandwidthBps is the task's observed transfer rate, computed at
	// snapshot time from MovedBytes over the elapsed running time.
	BandwidthBps float64
	// CacheBytes is the subset of MovedBytes served from the local
	// content-addressed staging cache instead of the fabric; DeltaBytes
	// counts bytes never copied at all because the destination already
	// matched the remote's per-segment digests. Fabric traffic for a
	// task is MovedBytes - CacheBytes.
	CacheBytes int64
	DeltaBytes int64
	// Attempts counts completed execution attempts that failed
	// transiently and were retried. It is journaled so a restarted
	// daemon resumes the retry schedule instead of resetting the budget.
	Attempts uint64
}

// Task is one asynchronous I/O request tracked by a urd daemon.
// All mutators are safe for concurrent use.
type Task struct {
	ID     uint64
	Kind   Kind
	Input  Resource
	Output Resource
	// JobID ties the task to a registered batch job (0 = administrative).
	JobID uint64
	// Priority orders tasks under priority-based queue policies.
	Priority int
	// Deadline, when non-zero, bounds the task's execution: the worker
	// derives a context.WithDeadline from it, and an expired deadline
	// fails the task. Set it before submitting; it is not re-read after.
	Deadline time.Time
	// MaxBps, when positive, caps this task's transfer rate in bytes per
	// second, layered under the daemon-wide bandwidth governor. Set it
	// before submitting.
	MaxBps int64
	// RetryMax, when positive, overrides the daemon's default retry
	// budget for this task (how many transient failures are retried
	// before dead-letter quarantine). Set it before submitting.
	RetryMax uint32

	mu    sync.Mutex
	stats Stats
	// done and cancel are created lazily: most tasks on a busy daemon
	// are never waited on through channels (the event-driven API watches
	// pushes), so allocating two channels per task in New was pure hot-
	// path overhead. A nil channel here means "no waiter yet"; the
	// accessors materialize it — as the shared closedChan when the event
	// it signals has already happened.
	done   chan struct{}
	cancel chan struct{}

	// Segment state for the parallel transfer engine. segDone marks
	// completed segments; restored* carry a journal checkpoint into the
	// next execution so recovery re-copies only the missing segments.
	// segPlan is the planned transfer size — part of the checkpoint's
	// identity, so a source that changed size while the daemon was down
	// discards the checkpoint instead of resuming into corruption.
	segSize         int64
	segPlan         int64
	segDone         []bool
	restoredSegSize int64
	restoredPlan    int64
	restoredBits    []byte
}

// ErrBadTransition is returned on illegal task state changes.
var ErrBadTransition = errors.New("task: illegal state transition")

// closedChan is the shared already-closed channel the lazy accessors
// hand out when the signalled event has already happened. It is never
// written, only received from.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// New returns a Pending task. Validate the resources before queuing it.
func New(id uint64, kind Kind, input, output Resource) *Task {
	return &Task{
		ID:     id,
		Kind:   kind,
		Input:  input,
		Output: output,
		stats:  Stats{Status: Pending, Submitted: time.Now()},
	}
}

// doneLocked returns (materializing if needed) the completion channel.
// Caller holds t.mu.
func (t *Task) doneLocked() chan struct{} {
	if t.done == nil {
		if t.stats.Status.Terminal() {
			t.done = closedChan
		} else {
			t.done = make(chan struct{})
		}
	}
	return t.done
}

// closeDoneLocked marks the task complete for channel waiters. Caller
// holds t.mu; called exactly once, on the terminal transition.
func (t *Task) closeDoneLocked() {
	if t.done == nil {
		t.done = closedChan
	} else {
		close(t.done)
	}
}

// cancelRequestedLocked reports whether cancellation has been asked for
// — the condition under which the cancel channel reads as closed.
func (t *Task) cancelRequestedLocked() bool {
	return t.stats.Status == Cancelling || t.stats.Status == Cancelled
}

// cancelLocked returns (materializing if needed) the cancel-request
// channel. Caller holds t.mu.
func (t *Task) cancelLocked() chan struct{} {
	if t.cancel == nil {
		if t.cancelRequestedLocked() {
			t.cancel = closedChan
		} else {
			t.cancel = make(chan struct{})
		}
	}
	return t.cancel
}

// closeCancelLocked signals the cancel request to channel holders.
// Caller holds t.mu and has just made cancelRequestedLocked true.
func (t *Task) closeCancelLocked() {
	if t.cancel == nil {
		t.cancel = closedChan
	} else {
		close(t.cancel)
	}
}

// Validate checks the task's resources against its kind.
func (t *Task) Validate() error {
	switch t.Kind {
	case Copy, Move:
		if err := t.Input.Validate(); err != nil {
			return err
		}
		if t.Output.Kind == Memory {
			return errors.New("task: memory output regions are not supported")
		}
		return t.Output.Validate()
	case Remove:
		if t.Input.Kind == Memory {
			return errors.New("task: cannot remove a memory region")
		}
		return t.Input.Validate()
	case NoOp:
		return nil
	default:
		return fmt.Errorf("task: unknown kind %d", t.Kind)
	}
}

// Stats returns a snapshot of the task's statistics. BandwidthBps is
// computed at snapshot time: bytes moved over the running interval so
// far (or the whole run for terminal tasks).
func (t *Task) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	if !st.Started.IsZero() && st.MovedBytes > 0 {
		end := st.Ended
		if end.IsZero() {
			end = time.Now()
		}
		if d := end.Sub(st.Started); d > 0 {
			st.BandwidthBps = float64(st.MovedBytes) / d.Seconds()
		}
	}
	return st
}

// Status returns the current life-cycle state.
func (t *Task) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.Status
}

// Start transitions Pending -> Running.
func (t *Task) Start(total int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats.Status != Pending {
		return fmt.Errorf("%w: %s -> running", ErrBadTransition, t.stats.Status)
	}
	t.stats.Status = Running
	t.stats.Started = time.Now()
	t.stats.TotalBytes = total
	return nil
}

// Progress adds moved bytes while Running or Cancelling. A negative
// delta is the segment engine retracting a failed segment attempt's
// partial bytes before retrying it, so MovedBytes never double-counts a
// re-pulled segment.
func (t *Task) Progress(moved int64) {
	t.mu.Lock()
	if t.stats.Status == Running || t.stats.Status == Cancelling {
		t.stats.MovedBytes += moved
	}
	t.mu.Unlock()
}

// ProgressCache adds cache-served bytes while Running or Cancelling.
// The bytes are already counted in MovedBytes via Progress; this tracks
// the locally-served subset so fabric traffic stays distinguishable. A
// negative delta retracts a cache serve that failed digest verification
// before the segment is re-pulled over the fabric.
func (t *Task) ProgressCache(moved int64) {
	t.mu.Lock()
	if t.stats.Status == Running || t.stats.Status == Cancelling {
		t.stats.CacheBytes += moved
	}
	t.mu.Unlock()
}

// ProgressDelta adds delta-skipped bytes while Running or Cancelling:
// segments never copied because the destination content already matched
// the remote digests. Not part of MovedBytes.
func (t *Task) ProgressDelta(skipped int64) {
	t.mu.Lock()
	if t.stats.Status == Running || t.stats.Status == Cancelling {
		t.stats.DeltaBytes += skipped
	}
	t.mu.Unlock()
}

// InitSegments installs the transfer plan: count segments of segSize
// bytes covering planBytes in total (the last segment may be short).
// If a restored checkpoint matches the plan exactly — same segment
// size, same total size, bitmap covering count — the completed
// segments are pre-marked and returned so the engine skips them;
// any mismatch (resized source, retuned segment size) discards the
// checkpoint and every segment is pending. planBytes <= 0 marks the
// plan non-resumable (sequential fallbacks, sends) and never matches.
// The returned slice is a copy.
func (t *Task) InitSegments(segSize, planBytes int64, count int) []bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.segSize = segSize
	t.segPlan = planBytes
	t.segDone = make([]bool, count)
	t.stats.SegmentsTotal = count
	t.stats.SegmentsDone = 0
	if planBytes > 0 && t.restoredSegSize == segSize && t.restoredPlan == planBytes &&
		len(t.restoredBits)*8 >= count {
		for i := 0; i < count; i++ {
			if t.restoredBits[i/8]&(1<<(i%8)) != 0 {
				t.segDone[i] = true
				t.stats.SegmentsDone++
			}
		}
	}
	t.restoredSegSize, t.restoredPlan, t.restoredBits = 0, 0, nil
	out := make([]bool, count)
	copy(out, t.segDone)
	return out
}

// CompleteSegment marks one segment done.
func (t *Task) CompleteSegment(i int) {
	t.mu.Lock()
	if i >= 0 && i < len(t.segDone) && !t.segDone[i] {
		t.segDone[i] = true
		t.stats.SegmentsDone++
	}
	t.mu.Unlock()
}

// SegmentBitmap packs the completed-segment set for journaling: the
// segment size, the planned total bytes (the checkpoint's identity),
// and a little-endian bitmap (bit i = segment i done). A task without
// a resumable segment plan returns (0, 0, nil).
func (t *Task) SegmentBitmap() (segSize, planBytes int64, bits []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.segDone) == 0 || t.segPlan <= 0 {
		return 0, 0, nil
	}
	bits = make([]byte, (len(t.segDone)+7)/8)
	for i, done := range t.segDone {
		if done {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	return t.segSize, t.segPlan, bits
}

// RestoreSegments seeds a recovered (still Pending) task with a
// journaled progress checkpoint. The next InitSegments with a matching
// plan pre-marks those segments so only the missing ones re-copy.
func (t *Task) RestoreSegments(segSize, planBytes int64, bits []byte) {
	t.mu.Lock()
	if t.stats.Status == Pending && segSize > 0 && planBytes > 0 && len(bits) > 0 {
		t.restoredSegSize = segSize
		t.restoredPlan = planBytes
		t.restoredBits = append([]byte(nil), bits...)
	}
	t.mu.Unlock()
}

// RestoredSegSize reports the segment size of a waiting restored
// checkpoint (0: none). The transfer engine pins a resumed task's plan
// to it so an autotuner that moved the route's segment size between
// crash and restart does not silently discard the checkpoint.
func (t *Task) RestoredSegSize() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.restoredBits) == 0 {
		return 0
	}
	return t.restoredSegSize
}

// HasRestoredSegments reports whether a journaled checkpoint is waiting
// to be validated against the next transfer plan.
func (t *Task) HasRestoredSegments() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.restoredBits) > 0
}

// DiscardRestoredSegments drops a restored checkpoint — the transfer
// engine calls it when the destination no longer holds the landed
// segments (volatile tier re-created, file deleted), so the re-run
// copies everything instead of resuming into a corrupt file.
func (t *Task) DiscardRestoredSegments() {
	t.mu.Lock()
	t.restoredSegSize, t.restoredPlan, t.restoredBits = 0, 0, nil
	t.mu.Unlock()
}

// RecordSizeError notes that the up-front transfer-size probe failed, so
// TotalBytes is an explicit fallback rather than a measured value.
func (t *Task) RecordSizeError(msg string) {
	t.mu.Lock()
	t.stats.SizeErr = msg
	t.mu.Unlock()
}

// Finish transitions Running|Cancelling -> Finished. A Cancelling task
// may still Finish: the transfer completed before the worker observed
// the cancellation, and the moved data is whole.
func (t *Task) Finish() error {
	return t.terminate(Finished, "")
}

// Fail transitions Pending|Running|Cancelling -> Failed with the given
// reason.
func (t *Task) Fail(reason string) error {
	return t.terminate(Failed, reason)
}

// Quarantine transitions a non-terminal task to DeadLetter: the task
// failed transiently, its retry budget is exhausted, and it waits for
// operator inspection. Terminal for waiters, like Fail.
func (t *Task) Quarantine(reason string) error {
	return t.terminate(DeadLetter, reason)
}

// Retry transitions Running -> Pending after a transient failure,
// consuming one attempt. The completed-segment set is carried across as
// a restored checkpoint (exactly like a journal recovery), so the next
// attempt re-copies only the segments that never landed. Byte counters
// reset — the next attempt re-accounts what it actually moves — while
// reason is preserved in Err so a status poll during the backoff window
// explains why the task went back to pending.
func (t *Task) Retry(reason string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats.Status != Running {
		return fmt.Errorf("%w: %s -> pending (retry)", ErrBadTransition, t.stats.Status)
	}
	if len(t.segDone) > 0 && t.segPlan > 0 {
		bits := make([]byte, (len(t.segDone)+7)/8)
		for i, done := range t.segDone {
			if done {
				bits[i/8] |= 1 << (i % 8)
			}
		}
		t.restoredSegSize, t.restoredPlan, t.restoredBits = t.segSize, t.segPlan, bits
	}
	t.segSize, t.segPlan, t.segDone = 0, 0, nil
	t.stats.Status = Pending
	t.stats.Err = reason
	t.stats.Attempts++
	t.stats.MovedBytes = 0
	t.stats.CacheBytes = 0
	t.stats.DeltaBytes = 0
	t.stats.SegmentsTotal = 0
	t.stats.SegmentsDone = 0
	t.stats.Started = time.Time{}
	return nil
}

// Attempts returns the consumed retry-attempt count.
func (t *Task) Attempts() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.Attempts
}

// RestoreAttempts seeds a recovered (still Pending) task with its
// journaled attempt counter, so a restart resumes the retry schedule
// where the dead daemon left it.
func (t *Task) RestoreAttempts(n uint64) {
	t.mu.Lock()
	if t.stats.Status == Pending {
		t.stats.Attempts = n
	}
	t.mu.Unlock()
}

// Cancel requests the task's abortion, mirroring norns_cancel:
//
//   - Pending tasks transition directly to Cancelled (the caller is
//     responsible for freeing the task's queue slot).
//   - Running tasks transition to Cancelling and the cancel channel is
//     closed; the executing worker observes it at the next chunk
//     boundary and confirms via FinishCancel.
//   - A second Cancel while Cancelling is an idempotent no-op.
//   - Terminal tasks reject with ErrBadTransition.
func (t *Task) Cancel() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.stats.Status {
	case Pending:
		t.stats.Status = Cancelled
		t.stats.Ended = time.Now()
		t.closeCancelLocked()
		t.closeDoneLocked()
		return nil
	case Running:
		t.stats.Status = Cancelling
		t.closeCancelLocked()
		return nil
	case Cancelling:
		return nil
	default:
		return fmt.Errorf("%w: %s -> cancelled", ErrBadTransition, t.stats.Status)
	}
}

// FinishCancel confirms a cooperative interrupt: Cancelling -> Cancelled.
// Partial progress (MovedBytes) is preserved in the final stats.
func (t *Task) FinishCancel() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats.Status != Cancelling {
		return fmt.Errorf("%w: %s -> cancelled", ErrBadTransition, t.stats.Status)
	}
	t.stats.Status = Cancelled
	t.stats.Ended = time.Now()
	t.closeDoneLocked()
	return nil
}

// CancelRequested returns a channel closed once cancellation has been
// requested (in any state). Workers bridge it into their context.
func (t *Task) CancelRequested() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cancelLocked()
}

func (t *Task) terminate(s Status, reason string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.stats.Status
	if cur.Terminal() {
		return fmt.Errorf("%w: %s -> %s", ErrBadTransition, cur, s)
	}
	if s == Finished && cur != Running && cur != Cancelling {
		return fmt.Errorf("%w: %s -> finished", ErrBadTransition, cur)
	}
	t.stats.Status = s
	t.stats.Err = reason
	t.stats.Ended = time.Now()
	t.closeDoneLocked()
	return nil
}

// Restore places a freshly reconstructed (Pending) task directly into
// the terminal state carried by st, bypassing the normal transition
// rules. It exists for journal recovery: a restarted daemon resurrects
// tasks that completed before the crash — final status, error, and byte
// counters included — so their IDs keep answering status queries
// without being re-run. Restoring a non-Pending task or to a
// non-terminal state is an ErrBadTransition.
func (t *Task) Restore(st Stats) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats.Status != Pending {
		return fmt.Errorf("%w: restore from %s", ErrBadTransition, t.stats.Status)
	}
	if !st.Status.Terminal() {
		return fmt.Errorf("%w: restore to %s", ErrBadTransition, st.Status)
	}
	t.stats.Status = st.Status
	t.stats.Err = st.Err
	t.stats.TotalBytes = st.TotalBytes
	t.stats.MovedBytes = st.MovedBytes
	t.stats.SizeErr = st.SizeErr
	t.stats.SegmentsTotal = st.SegmentsTotal
	t.stats.SegmentsDone = st.SegmentsDone
	t.stats.CacheBytes = st.CacheBytes
	t.stats.DeltaBytes = st.DeltaBytes
	t.stats.Attempts = st.Attempts
	t.stats.Ended = st.Ended
	if t.stats.Ended.IsZero() {
		t.stats.Ended = time.Now()
	}
	if st.Status == Cancelled {
		t.closeCancelLocked()
	}
	t.closeDoneLocked()
	return nil
}

// Done returns a channel closed when the task reaches a terminal state.
func (t *Task) Done() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.doneLocked()
}

// Wait blocks until the task terminates or the timeout elapses
// (timeout <= 0 waits forever). It reports whether the task terminated.
func (t *Task) Wait(timeout time.Duration) bool {
	done := t.Done()
	if timeout <= 0 {
		<-done
		return true
	}
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}
