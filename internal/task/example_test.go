package task_test

import (
	"fmt"
	"time"

	"github.com/ngioproject/norns-go/internal/task"
)

// ExampleTask shows the full life cycle of an asynchronous I/O task as
// the urd daemon drives it.
func ExampleTask() {
	t := task.New(1, task.Copy,
		task.MemoryRegion([]byte("checkpoint")),
		task.PosixPath("nvme0://", "ckpt/0001"))
	if err := t.Validate(); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	fmt.Println("submitted:", t.Status())

	_ = t.Start(10)
	t.Progress(10)
	_ = t.Finish()

	st := t.Stats()
	fmt.Printf("done: %s, %d/%d bytes\n", st.Status, st.MovedBytes, st.TotalBytes)
	// Output:
	// submitted: pending
	// done: finished, 10/10 bytes
}

// ExampleETAEstimator shows how observed transfers refine staging-time
// predictions.
func ExampleETAEstimator() {
	eta := task.NewETAEstimator(0.3, 0)
	// Two observed transfers at 100 MiB/s.
	eta.Record(100<<20, time.Second)
	eta.Record(200<<20, 2*time.Second)
	// How long will a 1 GiB stage-in take?
	fmt.Printf("estimate: %.0fs\n", eta.Estimate(1<<30).Seconds())
	// Output:
	// estimate: 10s
}

// ExampleResource shows the three resource kinds of the NORNS API.
func ExampleResource() {
	fmt.Println(task.MemoryRegion(make([]byte, 4096)))
	fmt.Println(task.PosixPath("lustre://", "input/mesh.dat"))
	fmt.Println(task.RemotePosixPath("node007", "nvme0://", "shard.dat"))
	// Output:
	// mem[4096]
	// lustre://input/mesh.dat
	// node007@nvme0://shard.dat
}
