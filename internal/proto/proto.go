// Package proto defines the NORNS request/response protocol spoken
// between the norns/nornsctl API libraries and the urd daemon, encoded
// with the wire package (our Protocol Buffers substitute) and carried
// over AF_UNIX or TCP framed connections.
//
// A single Request/Response envelope with optional sub-messages keeps
// the protocol forward-compatible: unknown fields are skipped, exactly
// as in protobuf.
package proto

import (
	"fmt"

	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/wire"
)

// Op identifies a request type.
type Op uint32

// Request opcodes. Control-plane ops (those the paper restricts to the
// nornsctl socket) start at 64.
const (
	OpInvalid Op = iota
	// User API (norns_*).
	OpSubmit           // submit an I/O task
	OpWait             // wait for task completion
	OpTaskStatus       // norns_error: fetch task stats
	OpGetDataspaceInfo // list dataspaces visible to the calling job
	OpCancel           // norns_cancel: abort a pending or running task
	// v2 event-driven API: batch submission and server-push
	// subscriptions. A single OpSubmitBatch carries N TaskSpecs and
	// returns per-entry results (partial acceptance: one full shard
	// fails its entry with EAgain, not the batch). OpSubscribe
	// registers for unsolicited Event frames — task state transitions
	// and rate-limited progress ticks — pushed on the same connection
	// with Seq 0, so a subscribed client never polls OpTaskStatus.
	OpSubmitBatch
	OpSubscribe
	OpUnsubscribe
	// OpHealth is the readiness probe: Success when the daemon accepts
	// new work, EUnavailable while it is degraded (journal write failure)
	// or draining for shutdown. Liveness is the connection itself.
	OpHealth
)

// Control API (nornsctl_*). Anchored at 64 in their own block so adding
// user ops above never renumbers them on the wire.
const (
	OpPing Op = iota + 64
	OpStatus
	OpRegisterDataspace
	OpUpdateDataspace
	OpUnregisterDataspace
	OpTrackDataspace
	OpTrackedNonEmpty
	OpRegisterJob
	OpUpdateJob
	OpUnregisterJob
	OpAddProcess
	OpRemoveProcess
	OpShutdown
	// OpTransferStats reports the daemon's observed transfer performance
	// (the paper's future-work item: feeding I/O observations back to
	// the scheduler for better-informed decisions).
	OpTransferStats
	// OpDeadletterList reports quarantined tasks (retry budget exhausted);
	// OpDeadletterRequeue resubmits one (Request.TaskID) or all
	// (Request.TaskID == 0) of them as fresh tasks.
	OpDeadletterList
	OpDeadletterRequeue
)

// Control reports whether the op requires the control socket.
func (o Op) Control() bool { return o >= OpPing }

// String returns the op name.
func (o Op) String() string {
	switch o {
	case OpSubmit:
		return "submit"
	case OpWait:
		return "wait"
	case OpTaskStatus:
		return "task-status"
	case OpGetDataspaceInfo:
		return "get-dataspace-info"
	case OpCancel:
		return "cancel"
	case OpSubmitBatch:
		return "submit-batch"
	case OpSubscribe:
		return "subscribe"
	case OpUnsubscribe:
		return "unsubscribe"
	case OpHealth:
		return "health"
	case OpPing:
		return "ping"
	case OpStatus:
		return "status"
	case OpRegisterDataspace:
		return "register-dataspace"
	case OpUpdateDataspace:
		return "update-dataspace"
	case OpUnregisterDataspace:
		return "unregister-dataspace"
	case OpTrackDataspace:
		return "track-dataspace"
	case OpTrackedNonEmpty:
		return "tracked-non-empty"
	case OpRegisterJob:
		return "register-job"
	case OpUpdateJob:
		return "update-job"
	case OpUnregisterJob:
		return "unregister-job"
	case OpAddProcess:
		return "add-process"
	case OpRemoveProcess:
		return "remove-process"
	case OpShutdown:
		return "shutdown"
	case OpTransferStats:
		return "transfer-stats"
	case OpDeadletterList:
		return "deadletter-list"
	case OpDeadletterRequeue:
		return "deadletter-requeue"
	default:
		return fmt.Sprintf("op(%d)", uint32(o))
	}
}

// StatusCode is the result of a request.
type StatusCode uint32

// Response status codes, mirroring the NORNS_* error space.
const (
	Success StatusCode = iota
	EBadRequest
	ENotFound
	EExists
	EPermission
	ETaskError
	ETimeout
	EInternal
	// EAgain is the backpressure signal: the daemon's task pipeline is at
	// its global in-flight limit (or a shard queue is full) and the client
	// should retry after backing off.
	EAgain
	// EUnavailable reports a daemon that is temporarily unable to accept
	// the request — degraded mode after a journal write failure, or
	// draining for shutdown. Like EAgain it is retryable, but signals a
	// daemon-wide condition rather than per-pipeline backpressure.
	EUnavailable
)

// String returns the code name.
func (s StatusCode) String() string {
	switch s {
	case Success:
		return "NORNS_SUCCESS"
	case EBadRequest:
		return "NORNS_EBADREQUEST"
	case ENotFound:
		return "NORNS_ENOTFOUND"
	case EExists:
		return "NORNS_EEXISTS"
	case EPermission:
		return "NORNS_EPERMISSION"
	case ETaskError:
		return "NORNS_ETASKERROR"
	case ETimeout:
		return "NORNS_ETIMEOUT"
	case EInternal:
		return "NORNS_EINTERNAL"
	case EAgain:
		return "NORNS_EAGAIN"
	case EUnavailable:
		return "NORNS_EUNAVAILABLE"
	default:
		return fmt.Sprintf("NORNS_E(%d)", uint32(s))
	}
}

// ResourceSpec is the wire form of a task resource. For Memory
// resources the buffer travels inline, standing in for the
// process_vm_readv path of the C++ implementation.
type ResourceSpec struct {
	Kind      uint32
	Dataspace string
	Path      string
	Node      string
	Size      int64
	Data      []byte
}

// FromResource converts a task.Resource.
func FromResource(r task.Resource) ResourceSpec {
	return ResourceSpec{
		Kind:      uint32(r.Kind),
		Dataspace: r.Dataspace,
		Path:      r.Path,
		Node:      r.Node,
		Size:      r.Size,
		Data:      r.Data,
	}
}

// ToResource converts back to a task.Resource.
func (rs ResourceSpec) ToResource() task.Resource {
	return task.Resource{
		Kind:      task.ResourceKind(rs.Kind),
		Dataspace: rs.Dataspace,
		Path:      rs.Path,
		Node:      rs.Node,
		Size:      rs.Size,
		Data:      rs.Data,
	}
}

// MarshalWire implements wire.Marshaler.
func (rs *ResourceSpec) MarshalWire(e *wire.Encoder) {
	e.Uint32(1, rs.Kind)
	if rs.Dataspace != "" {
		e.String(2, rs.Dataspace)
	}
	if rs.Path != "" {
		e.String(3, rs.Path)
	}
	if rs.Node != "" {
		e.String(4, rs.Node)
	}
	if rs.Size != 0 {
		e.Int64(5, rs.Size)
	}
	if len(rs.Data) > 0 {
		e.Bytes(6, rs.Data)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (rs *ResourceSpec) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			rs.Kind = d.Uint32()
		case 2:
			rs.Dataspace = d.String()
		case 3:
			rs.Path = d.String()
		case 4:
			rs.Node = d.String()
		case 5:
			rs.Size = d.Int64()
		case 6:
			rs.Data = append([]byte(nil), d.Bytes()...)
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// TaskSpec is the wire form of an I/O task submission.
type TaskSpec struct {
	Kind     uint32
	Input    ResourceSpec
	Output   ResourceSpec
	Priority int64
	JobID    uint64
	// DeadlineMS, when positive, bounds the task's execution to this many
	// milliseconds after the daemon accepts it; an expired deadline fails
	// the task as if cancelled by the system.
	DeadlineMS int64
	// MaxBps, when positive, caps this task's transfer bandwidth in
	// bytes per second, layered under the daemon-wide governor — the
	// per-task throttle of the paper's interference experiments.
	MaxBps int64
	// RetryMax, when positive, overrides the daemon's default retry
	// budget for this task: how many times a transient failure is retried
	// (with exponential backoff) before the task is quarantined in the
	// dead-letter state. Zero inherits the daemon default.
	RetryMax uint32
}

// MarshalWire implements wire.Marshaler.
func (ts *TaskSpec) MarshalWire(e *wire.Encoder) {
	e.Uint32(1, ts.Kind)
	e.Message(2, &ts.Input)
	e.Message(3, &ts.Output)
	if ts.Priority != 0 {
		e.Int64(4, ts.Priority)
	}
	if ts.JobID != 0 {
		e.Uint64(5, ts.JobID)
	}
	if ts.DeadlineMS != 0 {
		e.Int64(6, ts.DeadlineMS)
	}
	if ts.MaxBps != 0 {
		e.Int64(7, ts.MaxBps)
	}
	if ts.RetryMax != 0 {
		e.Uint32(8, ts.RetryMax)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (ts *TaskSpec) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			ts.Kind = d.Uint32()
		case 2:
			d.Message(&ts.Input)
		case 3:
			d.Message(&ts.Output)
		case 4:
			ts.Priority = d.Int64()
		case 5:
			ts.JobID = d.Uint64()
		case 6:
			ts.DeadlineMS = d.Int64()
		case 7:
			ts.MaxBps = d.Int64()
		case 8:
			ts.RetryMax = d.Uint32()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// DataspaceSpec describes a dataspace to register or report.
type DataspaceSpec struct {
	ID       string
	Backend  uint32 // dataspace.BackendKind
	Mount    string // OSFS root; empty selects an in-memory FS
	Capacity int64
	Track    bool
	// UsedBytes is filled in info responses.
	UsedBytes int64
}

// MarshalWire implements wire.Marshaler.
func (ds *DataspaceSpec) MarshalWire(e *wire.Encoder) {
	e.String(1, ds.ID)
	e.Uint32(2, ds.Backend)
	if ds.Mount != "" {
		e.String(3, ds.Mount)
	}
	if ds.Capacity != 0 {
		e.Int64(4, ds.Capacity)
	}
	if ds.Track {
		e.Bool(5, ds.Track)
	}
	if ds.UsedBytes != 0 {
		e.Int64(6, ds.UsedBytes)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (ds *DataspaceSpec) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			ds.ID = d.String()
		case 2:
			ds.Backend = d.Uint32()
		case 3:
			ds.Mount = d.String()
		case 4:
			ds.Capacity = d.Int64()
		case 5:
			ds.Track = d.Bool()
		case 6:
			ds.UsedBytes = d.Int64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// JobLimitSpec is one dataspace allowance in a job registration.
type JobLimitSpec struct {
	Dataspace string
	Quota     int64
}

// MarshalWire implements wire.Marshaler.
func (jl *JobLimitSpec) MarshalWire(e *wire.Encoder) {
	e.String(1, jl.Dataspace)
	if jl.Quota != 0 {
		e.Int64(2, jl.Quota)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (jl *JobLimitSpec) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			jl.Dataspace = d.String()
		case 2:
			jl.Quota = d.Int64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// JobSpec is the wire form of a job registration.
type JobSpec struct {
	ID     uint64
	Hosts  []string
	Limits []JobLimitSpec
}

// MarshalWire implements wire.Marshaler.
func (js *JobSpec) MarshalWire(e *wire.Encoder) {
	e.Uint64(1, js.ID)
	e.StringSlice(2, js.Hosts)
	for i := range js.Limits {
		e.Message(3, &js.Limits[i])
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (js *JobSpec) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			js.ID = d.Uint64()
		case 2:
			js.Hosts = append(js.Hosts, d.String())
		case 3:
			var jl JobLimitSpec
			d.Message(&jl)
			js.Limits = append(js.Limits, jl)
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// ProcSpec is the wire form of a process registration.
type ProcSpec struct {
	PID uint64
	UID uint64
	GID uint64
}

// MarshalWire implements wire.Marshaler.
func (ps *ProcSpec) MarshalWire(e *wire.Encoder) {
	e.Uint64(1, ps.PID)
	e.Uint64(2, ps.UID)
	e.Uint64(3, ps.GID)
}

// UnmarshalWire implements wire.Unmarshaler.
func (ps *ProcSpec) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			ps.PID = d.Uint64()
		case 2:
			ps.UID = d.Uint64()
		case 3:
			ps.GID = d.Uint64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// TaskStats is the wire form of task statistics. Since the segmented
// transfer engine it doubles as the live progress report: a status poll
// on a running task carries the bytes moved so far, the segment
// completion counts, and the observed transfer rate — what
// `nornsctl watch` renders.
type TaskStats struct {
	Status     uint32 // task.Status
	Err        string
	TotalBytes int64
	MovedBytes int64
	// SizeErr reports a failed up-front size probe (TotalBytes is then an
	// explicit 0 fallback, not a measurement).
	SizeErr string
	// SegmentsTotal/SegmentsDone report the transfer plan's segment
	// completion (0 total = unsegmented path).
	SegmentsTotal uint64
	SegmentsDone  uint64
	// BandwidthBps is the task's observed transfer rate at poll time.
	BandwidthBps float64
	// CacheBytes is the subset of MovedBytes served from the local
	// content-addressed staging cache; DeltaBytes counts bytes skipped
	// entirely because the destination already matched the remote's
	// per-segment digests.
	CacheBytes int64
	DeltaBytes int64
	// Attempts counts completed execution attempts that failed
	// transiently and were retried; 0 means the task ran (or will run)
	// on its first attempt.
	Attempts uint64
}

// FromStats converts task.Stats.
func FromStats(s task.Stats) TaskStats {
	return TaskStats{
		Status:        uint32(s.Status),
		Err:           s.Err,
		TotalBytes:    s.TotalBytes,
		MovedBytes:    s.MovedBytes,
		SizeErr:       s.SizeErr,
		SegmentsTotal: uint64(s.SegmentsTotal),
		SegmentsDone:  uint64(s.SegmentsDone),
		BandwidthBps:  s.BandwidthBps,
		CacheBytes:    s.CacheBytes,
		DeltaBytes:    s.DeltaBytes,
		Attempts:      s.Attempts,
	}
}

// MarshalWire implements wire.Marshaler.
func (st *TaskStats) MarshalWire(e *wire.Encoder) {
	e.Uint32(1, st.Status)
	if st.Err != "" {
		e.String(2, st.Err)
	}
	if st.TotalBytes != 0 {
		e.Int64(3, st.TotalBytes)
	}
	if st.MovedBytes != 0 {
		e.Int64(4, st.MovedBytes)
	}
	if st.SizeErr != "" {
		e.String(5, st.SizeErr)
	}
	if st.SegmentsTotal != 0 {
		e.Uint64(6, st.SegmentsTotal)
	}
	if st.SegmentsDone != 0 {
		e.Uint64(7, st.SegmentsDone)
	}
	if st.BandwidthBps != 0 {
		e.Float64(8, st.BandwidthBps)
	}
	if st.CacheBytes != 0 {
		e.Int64(9, st.CacheBytes)
	}
	if st.DeltaBytes != 0 {
		e.Int64(10, st.DeltaBytes)
	}
	if st.Attempts != 0 {
		e.Uint64(11, st.Attempts)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (st *TaskStats) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			st.Status = d.Uint32()
		case 2:
			st.Err = d.String()
		case 3:
			st.TotalBytes = d.Int64()
		case 4:
			st.MovedBytes = d.Int64()
		case 5:
			st.SizeErr = d.String()
		case 6:
			st.SegmentsTotal = d.Uint64()
		case 7:
			st.SegmentsDone = d.Uint64()
		case 8:
			st.BandwidthBps = d.Float64()
		case 9:
			st.CacheBytes = d.Int64()
		case 10:
			st.DeltaBytes = d.Int64()
		case 11:
			st.Attempts = d.Uint64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// SubmitResult is one entry's outcome in an OpSubmitBatch response.
// Acceptance is per entry: a full shard or an exhausted in-flight
// budget fails that entry with EAgain while the rest of the batch is
// queued normally.
type SubmitResult struct {
	TaskID uint64
	Status uint32 // StatusCode
	Error  string
}

// MarshalWire implements wire.Marshaler.
func (sr *SubmitResult) MarshalWire(e *wire.Encoder) {
	if sr.TaskID != 0 {
		e.Uint64(1, sr.TaskID)
	}
	e.Uint32(2, sr.Status)
	if sr.Error != "" {
		e.String(3, sr.Error)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (sr *SubmitResult) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			sr.TaskID = d.Uint64()
		case 2:
			sr.Status = d.Uint32()
		case 3:
			sr.Error = d.String()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// SubscribeSpec describes an event subscription: either an explicit
// task set or all tasks, with an optional per-task progress-tick rate.
type SubscribeSpec struct {
	// TaskIDs is the explicit task set. Subscribing to an explicit set
	// immediately enqueues a current-state snapshot event per task, so
	// a subscription opened after submission still observes tasks that
	// raced to a terminal state.
	TaskIDs []uint64
	// All subscribes to every task the daemon tracks, present and
	// future (TaskIDs is then ignored).
	All bool
	// ProgressMS, when positive, requests progress-tick events for
	// running tasks at most every this many milliseconds per task.
	// Zero delivers state transitions only.
	ProgressMS int64
	// TerminalOnly suppresses non-terminal state events (and their
	// subscribe-time snapshots): the subscriber receives progress ticks
	// (if requested) and exactly one terminal event per task. This is
	// what batch task handles ride on — under a deep backlog a task
	// otherwise pushes pending, running, AND terminal events, tripling
	// the push traffic for consumers that only resolve on the outcome.
	// Daemons older than this field ignore it and send everything,
	// which such consumers already tolerate.
	TerminalOnly bool
}

// MarshalWire implements wire.Marshaler.
func (ss *SubscribeSpec) MarshalWire(e *wire.Encoder) {
	e.Uint64Slice(1, ss.TaskIDs)
	if ss.All {
		e.Bool(2, ss.All)
	}
	if ss.ProgressMS != 0 {
		e.Int64(3, ss.ProgressMS)
	}
	if ss.TerminalOnly {
		e.Bool(4, ss.TerminalOnly)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (ss *SubscribeSpec) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			ss.TaskIDs = append(ss.TaskIDs, d.Uint64())
		case 2:
			ss.All = d.Bool()
		case 3:
			ss.ProgressMS = d.Int64()
		case 4:
			ss.TerminalOnly = d.Bool()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// EventKind identifies what a push Event reports.
type EventKind uint32

// Event kinds. The numeric values are wire-stable.
const (
	// EvState is a task life-cycle transition (or the current-state
	// snapshot delivered at subscription time for explicit task sets).
	EvState EventKind = iota + 1
	// EvProgress is a rate-limited progress tick for a running task.
	EvProgress
	// EvGap reports that the subscriber's bounded queue overflowed and
	// Dropped events were coalesced away. Terminal transitions of
	// explicitly subscribed tasks are never dropped; an all-tasks
	// subscriber that sees a gap should reconcile by querying status.
	EvGap
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EvState:
		return "state"
	case EvProgress:
		return "progress"
	case EvGap:
		return "gap"
	default:
		return fmt.Sprintf("event(%d)", uint32(k))
	}
}

// Event is the server-push frame body: a task state transition, a
// throttled progress tick, or a queue-overflow gap marker, tagged with
// the subscription that produced it. Events travel inside a Response
// envelope with Seq 0 — a sequence number no Call ever uses — so a v1
// client's demultiplexer drops them cleanly instead of misdelivering.
type Event struct {
	SubID  uint64
	Kind   uint32 // EventKind
	TaskID uint64
	// Stats is the task snapshot for state and progress events, present
	// when HasStats is set. Inline (not a pointer) deliberately: events
	// are the highest-volume message on a busy connection, and a
	// pointer here cost one allocation at the hub and another at every
	// receiving client, per event. The wire encoding is unchanged.
	Stats    TaskStats
	HasStats bool
	// Dropped is the number of coalesced events for gap events.
	Dropped uint64
}

// MarshalWire implements wire.Marshaler.
func (ev *Event) MarshalWire(e *wire.Encoder) {
	e.Uint64(1, ev.SubID)
	e.Uint32(2, ev.Kind)
	if ev.TaskID != 0 {
		e.Uint64(3, ev.TaskID)
	}
	if ev.HasStats {
		e.Message(4, &ev.Stats)
	}
	if ev.Dropped != 0 {
		e.Uint64(5, ev.Dropped)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (ev *Event) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			ev.SubID = d.Uint64()
		case 2:
			ev.Kind = d.Uint32()
		case 3:
			ev.TaskID = d.Uint64()
		case 4:
			d.Message(&ev.Stats)
			ev.HasStats = true
		case 5:
			ev.Dropped = d.Uint64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// Request is the envelope for all client->daemon messages. Seq pairs
// pipelined requests with their responses on one connection.
type Request struct {
	Seq uint64
	Op  Op
	// PID identifies the calling process for authorization. The API
	// libraries fill it with os.Getpid(); a production deployment would
	// use SO_PEERCRED, which Go exposes only through x/sys, so the
	// credential travels in-band here.
	PID uint64

	Task      *TaskSpec
	TaskID    uint64
	TimeoutMS int64
	Dataspace *DataspaceSpec
	Job       *JobSpec
	Proc      *ProcSpec
	Track     bool
	// Tasks carries an OpSubmitBatch payload: N specs in one RPC.
	Tasks []TaskSpec
	// Subscribe carries an OpSubscribe registration.
	Subscribe *SubscribeSpec
	// SubID names the subscription for OpUnsubscribe.
	SubID uint64
}

// MarshalWire implements wire.Marshaler.
func (r *Request) MarshalWire(e *wire.Encoder) {
	e.Uint64(1, r.Seq)
	e.Uint32(2, uint32(r.Op))
	if r.PID != 0 {
		e.Uint64(3, r.PID)
	}
	if r.Task != nil {
		e.Message(4, r.Task)
	}
	if r.TaskID != 0 {
		e.Uint64(5, r.TaskID)
	}
	if r.TimeoutMS != 0 {
		e.Int64(6, r.TimeoutMS)
	}
	if r.Dataspace != nil {
		e.Message(7, r.Dataspace)
	}
	if r.Job != nil {
		e.Message(8, r.Job)
	}
	if r.Proc != nil {
		e.Message(9, r.Proc)
	}
	if r.Track {
		e.Bool(10, r.Track)
	}
	if len(r.Tasks) > 0 {
		// The count travels ahead of the specs so the decoder can size
		// the slice once instead of growing it per entry; old decoders
		// skip the unknown tag.
		e.Uint64(14, uint64(len(r.Tasks)))
	}
	for i := range r.Tasks {
		e.Message(11, &r.Tasks[i])
	}
	if r.Subscribe != nil {
		e.Message(12, r.Subscribe)
	}
	if r.SubID != 0 {
		e.Uint64(13, r.SubID)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *Request) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Seq = d.Uint64()
		case 2:
			r.Op = Op(d.Uint32())
		case 3:
			r.PID = d.Uint64()
		case 4:
			r.Task = new(TaskSpec)
			d.Message(r.Task)
		case 5:
			r.TaskID = d.Uint64()
		case 6:
			r.TimeoutMS = d.Int64()
		case 7:
			r.Dataspace = new(DataspaceSpec)
			d.Message(r.Dataspace)
		case 8:
			r.Job = new(JobSpec)
			d.Message(r.Job)
		case 9:
			r.Proc = new(ProcSpec)
			d.Message(r.Proc)
		case 10:
			r.Track = d.Bool()
		case 11:
			// Decode straight into the slice slot — no per-entry escape
			// to the heap, and the tag-14 count hint (when present) has
			// already sized the backing array.
			r.Tasks = append(r.Tasks, TaskSpec{})
			d.Message(&r.Tasks[len(r.Tasks)-1])
		case 12:
			r.Subscribe = new(SubscribeSpec)
			d.Message(r.Subscribe)
		case 13:
			r.SubID = d.Uint64()
		case 14:
			// Capacity hint only — the entries themselves arrive as
			// repeated tag-11 fields. Clamped against the bytes actually
			// remaining in the frame (an encoded TaskSpec costs at least
			// a couple of bytes), so a tiny hostile frame cannot command
			// a multi-megabyte pre-allocation.
			if n := d.Uint64(); r.Tasks == nil && n > 0 && n <= uint64(d.Remaining()/2) {
				r.Tasks = make([]TaskSpec, 0, n)
			}
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// TransferMetrics is the daemon's observed transfer performance report.
type TransferMetrics struct {
	// BandwidthBps is the EWMA of observed transfer bandwidth.
	BandwidthBps float64
	// Samples is the number of completed transfers observed.
	Samples uint64
	// Pending is the task-queue depth.
	Pending uint64
	// Running/Finished/Failed/Cancelled count tasks by state.
	Running   uint64
	Finished  uint64
	Failed    uint64
	Cancelled uint64
	// MovedBytes is the total payload volume transferred, including the
	// partial progress of failed and cancelled tasks.
	MovedBytes int64
}

// MarshalWire implements wire.Marshaler.
func (tm *TransferMetrics) MarshalWire(e *wire.Encoder) {
	e.Float64(1, tm.BandwidthBps)
	e.Uint64(2, tm.Samples)
	e.Uint64(3, tm.Pending)
	e.Uint64(4, tm.Running)
	e.Uint64(5, tm.Finished)
	e.Uint64(6, tm.Failed)
	if tm.MovedBytes != 0 {
		e.Int64(7, tm.MovedBytes)
	}
	if tm.Cancelled != 0 {
		e.Uint64(8, tm.Cancelled)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (tm *TransferMetrics) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			tm.BandwidthBps = d.Float64()
		case 2:
			tm.Samples = d.Uint64()
		case 3:
			tm.Pending = d.Uint64()
		case 4:
			tm.Running = d.Uint64()
		case 5:
			tm.Finished = d.Uint64()
		case 6:
			tm.Failed = d.Uint64()
		case 7:
			tm.MovedBytes = d.Int64()
		case 8:
			tm.Cancelled = d.Uint64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// AutotuneRoute is one row of the daemon's transfer-tuning table: the
// route, its current operating point, and how the controller got there.
type AutotuneRoute struct {
	// In/Out name the route's endpoints (dataspace IDs, node-prefixed
	// for remote ends); Kind is the resource-pair, e.g.
	// "local-path>local-path".
	In, Out, Kind string
	// Streams/SegSize are the route's current operating point.
	Streams uint32
	SegSize int64
	// GoodputBps is the EWMA goodput observed at the operating point.
	GoodputBps float64
	// Samples counts all observations on the route.
	Samples uint64
	// State is the controller state: seeding, probing, settled, capped.
	State string
}

// MarshalWire implements wire.Marshaler.
func (ar *AutotuneRoute) MarshalWire(e *wire.Encoder) {
	e.String(1, ar.In)
	e.String(2, ar.Out)
	e.String(3, ar.Kind)
	e.Uint32(4, ar.Streams)
	e.Int64(5, ar.SegSize)
	e.Float64(6, ar.GoodputBps)
	e.Uint64(7, ar.Samples)
	e.String(8, ar.State)
}

// UnmarshalWire implements wire.Unmarshaler.
func (ar *AutotuneRoute) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			ar.In = d.String()
		case 2:
			ar.Out = d.String()
		case 3:
			ar.Kind = d.String()
		case 4:
			ar.Streams = d.Uint32()
		case 5:
			ar.SegSize = d.Int64()
		case 6:
			ar.GoodputBps = d.Float64()
		case 7:
			ar.Samples = d.Uint64()
		case 8:
			ar.State = d.String()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// BreakerState is one row of the fabric circuit-breaker table: the
// health of one remote endpoint address as the mercury layer sees it.
type BreakerState struct {
	// Addr is the remote endpoint address the breaker guards.
	Addr string
	// State is the breaker state: closed (healthy), open (tripped,
	// fast-failing), or half-open (cooldown elapsed, probing).
	State string
	// Fails is the current consecutive-failure count; Trips counts how
	// many times the breaker has opened over its lifetime.
	Fails uint64
	Trips uint64
}

// MarshalWire implements wire.Marshaler.
func (bs *BreakerState) MarshalWire(e *wire.Encoder) {
	e.String(1, bs.Addr)
	e.String(2, bs.State)
	if bs.Fails != 0 {
		e.Uint64(3, bs.Fails)
	}
	if bs.Trips != 0 {
		e.Uint64(4, bs.Trips)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (bs *BreakerState) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			bs.Addr = d.String()
		case 2:
			bs.State = d.String()
		case 3:
			bs.Fails = d.Uint64()
		case 4:
			bs.Trips = d.Uint64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// DeadLetterEntry is one quarantined task in an OpDeadletterList
// response: enough to decide whether to requeue it.
type DeadLetterEntry struct {
	TaskID uint64
	// Attempts is how many execution attempts were consumed before
	// quarantine; Err is the last failure.
	Attempts uint64
	Err      string
}

// MarshalWire implements wire.Marshaler.
func (dl *DeadLetterEntry) MarshalWire(e *wire.Encoder) {
	e.Uint64(1, dl.TaskID)
	if dl.Attempts != 0 {
		e.Uint64(2, dl.Attempts)
	}
	if dl.Err != "" {
		e.String(3, dl.Err)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (dl *DeadLetterEntry) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			dl.TaskID = d.Uint64()
		case 2:
			dl.Attempts = d.Uint64()
		case 3:
			dl.Err = d.String()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// DaemonStatus is the structured OpStatus report: daemon identity, the
// pipeline's live gauges, and — when the daemon runs with a durable
// state directory — what the last journal replay recovered.
type DaemonStatus struct {
	Version string
	Node    string
	Policy  string
	Shards  uint64
	Pending uint64
	Tasks   uint64
	// Journal reports whether the daemon persists a task journal.
	Journal bool
	// RecoveredPending/RecoveredRunning count tasks the last restart
	// re-queued from the journal (pending, respectively running, at the
	// crash). RecoveredCancelled were mid-cancellation and recovered
	// straight to cancelled; RecoveredTerminal were already terminal and
	// were resurrected for status queries without re-running.
	RecoveredPending   uint64
	RecoveredRunning   uint64
	RecoveredCancelled uint64
	RecoveredTerminal  uint64
	// Autotune reports whether the per-route transfer tuner is enabled;
	// AutotuneRoutes is its table (routes the daemon has moved data on).
	Autotune       bool
	AutotuneRoutes []AutotuneRoute
	// CacheEnabled reports whether the content-addressed staging cache
	// is configured; the gauges below are its lifetime counters.
	CacheEnabled   bool
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	// CacheBytes/CacheCapBytes are the cache's current footprint and its
	// configured size bound.
	CacheBytes    int64
	CacheCapBytes int64
	// Degraded reports journal degrade mode: the WAL hit a write error
	// and the daemon is shedding new submissions with EUnavailable until
	// the journal becomes writable again.
	Degraded bool
	// DeadLetterTasks counts tasks currently quarantined after
	// exhausting their retry budget.
	DeadLetterTasks uint64
	// RetryMax/RetryBackoffMS are the daemon's default retry policy
	// (0 retries = disabled).
	RetryMax       uint64
	RetryBackoffMS int64
	// Breakers is the fabric circuit-breaker table, one row per remote
	// endpoint address the daemon has dialed.
	Breakers []BreakerState
	// RecoveredClean reports that the last journal replay found the
	// clean-shutdown marker: the previous daemon drained and flushed
	// everything, so replay re-copied nothing.
	RecoveredClean bool
}

// MarshalWire implements wire.Marshaler.
func (ds *DaemonStatus) MarshalWire(e *wire.Encoder) {
	e.String(1, ds.Version)
	e.String(2, ds.Node)
	e.String(3, ds.Policy)
	e.Uint64(4, ds.Shards)
	e.Uint64(5, ds.Pending)
	e.Uint64(6, ds.Tasks)
	if ds.Journal {
		e.Bool(7, ds.Journal)
	}
	if ds.RecoveredPending != 0 {
		e.Uint64(8, ds.RecoveredPending)
	}
	if ds.RecoveredRunning != 0 {
		e.Uint64(9, ds.RecoveredRunning)
	}
	if ds.RecoveredCancelled != 0 {
		e.Uint64(10, ds.RecoveredCancelled)
	}
	if ds.RecoveredTerminal != 0 {
		e.Uint64(11, ds.RecoveredTerminal)
	}
	if ds.Autotune {
		e.Bool(12, ds.Autotune)
	}
	if len(ds.AutotuneRoutes) > 0 {
		// Count hint ahead of the rows, same contract as Request.Tasks:
		// the decoder sizes the slice once, old decoders skip the tag.
		e.Uint64(14, uint64(len(ds.AutotuneRoutes)))
	}
	for i := range ds.AutotuneRoutes {
		e.Message(13, &ds.AutotuneRoutes[i])
	}
	if ds.CacheEnabled {
		e.Bool(15, ds.CacheEnabled)
	}
	if ds.CacheHits != 0 {
		e.Uint64(16, ds.CacheHits)
	}
	if ds.CacheMisses != 0 {
		e.Uint64(17, ds.CacheMisses)
	}
	if ds.CacheEvictions != 0 {
		e.Uint64(18, ds.CacheEvictions)
	}
	if ds.CacheBytes != 0 {
		e.Int64(19, ds.CacheBytes)
	}
	if ds.CacheCapBytes != 0 {
		e.Int64(20, ds.CacheCapBytes)
	}
	if ds.Degraded {
		e.Bool(21, ds.Degraded)
	}
	if ds.DeadLetterTasks != 0 {
		e.Uint64(22, ds.DeadLetterTasks)
	}
	if ds.RetryMax != 0 {
		e.Uint64(23, ds.RetryMax)
	}
	if ds.RetryBackoffMS != 0 {
		e.Int64(24, ds.RetryBackoffMS)
	}
	if len(ds.Breakers) > 0 {
		// Count hint ahead of the rows, same contract as the autotune
		// table above.
		e.Uint64(26, uint64(len(ds.Breakers)))
	}
	for i := range ds.Breakers {
		e.Message(25, &ds.Breakers[i])
	}
	if ds.RecoveredClean {
		e.Bool(27, ds.RecoveredClean)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (ds *DaemonStatus) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			ds.Version = d.String()
		case 2:
			ds.Node = d.String()
		case 3:
			ds.Policy = d.String()
		case 4:
			ds.Shards = d.Uint64()
		case 5:
			ds.Pending = d.Uint64()
		case 6:
			ds.Tasks = d.Uint64()
		case 7:
			ds.Journal = d.Bool()
		case 8:
			ds.RecoveredPending = d.Uint64()
		case 9:
			ds.RecoveredRunning = d.Uint64()
		case 10:
			ds.RecoveredCancelled = d.Uint64()
		case 11:
			ds.RecoveredTerminal = d.Uint64()
		case 12:
			ds.Autotune = d.Bool()
		case 13:
			ds.AutotuneRoutes = append(ds.AutotuneRoutes, AutotuneRoute{})
			d.Message(&ds.AutotuneRoutes[len(ds.AutotuneRoutes)-1])
		case 14:
			// Capacity hint only; clamped against the frame's remaining
			// bytes so a hostile count cannot command the allocation.
			if n := d.Uint64(); ds.AutotuneRoutes == nil && n > 0 && n <= uint64(d.Remaining()/2) {
				ds.AutotuneRoutes = make([]AutotuneRoute, 0, n)
			}
		case 15:
			ds.CacheEnabled = d.Bool()
		case 16:
			ds.CacheHits = d.Uint64()
		case 17:
			ds.CacheMisses = d.Uint64()
		case 18:
			ds.CacheEvictions = d.Uint64()
		case 19:
			ds.CacheBytes = d.Int64()
		case 20:
			ds.CacheCapBytes = d.Int64()
		case 21:
			ds.Degraded = d.Bool()
		case 22:
			ds.DeadLetterTasks = d.Uint64()
		case 23:
			ds.RetryMax = d.Uint64()
		case 24:
			ds.RetryBackoffMS = d.Int64()
		case 25:
			ds.Breakers = append(ds.Breakers, BreakerState{})
			d.Message(&ds.Breakers[len(ds.Breakers)-1])
		case 26:
			// Capacity hint only, clamped like the autotune one.
			if n := d.Uint64(); ds.Breakers == nil && n > 0 && n <= uint64(d.Remaining()/2) {
				ds.Breakers = make([]BreakerState, 0, n)
			}
		case 27:
			ds.RecoveredClean = d.Bool()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// Response is the envelope for all daemon->client messages.
type Response struct {
	Seq    uint64
	Status StatusCode
	Error  string

	TaskID     uint64
	Stats      *TaskStats
	Dataspaces []DataspaceSpec
	// NonEmpty lists tracked dataspaces still holding data.
	NonEmpty []string
	// DaemonInfo carries status text for OpStatus.
	DaemonInfo string
	// Metrics carries the OpTransferStats report.
	Metrics *TransferMetrics
	// StatusInfo carries the structured OpStatus report (the DaemonInfo
	// text remains for older clients).
	StatusInfo *DaemonStatus
	// Results carries the per-entry outcomes of an OpSubmitBatch,
	// aligned with the request's Tasks slice.
	Results []SubmitResult
	// SubID identifies the subscription created by OpSubscribe.
	SubID uint64
	// Event is the server-push payload. It only appears in unsolicited
	// frames (Seq 0), never in a direct response.
	// Event is the push payload (HasEvent set), inline for the same
	// per-event allocation reason as Event.Stats.
	Event    Event
	HasEvent bool
	// DeadLetters carries the OpDeadletterList report; for
	// OpDeadletterRequeue, TaskIDs lists the fresh task IDs created.
	DeadLetters []DeadLetterEntry
	TaskIDs     []uint64
}

// MarshalWire implements wire.Marshaler.
func (r *Response) MarshalWire(e *wire.Encoder) {
	e.Uint64(1, r.Seq)
	e.Uint32(2, uint32(r.Status))
	if r.Error != "" {
		e.String(3, r.Error)
	}
	if r.TaskID != 0 {
		e.Uint64(4, r.TaskID)
	}
	if r.Stats != nil {
		e.Message(5, r.Stats)
	}
	for i := range r.Dataspaces {
		e.Message(6, &r.Dataspaces[i])
	}
	e.StringSlice(7, r.NonEmpty)
	if r.DaemonInfo != "" {
		e.String(8, r.DaemonInfo)
	}
	if r.Metrics != nil {
		e.Message(9, r.Metrics)
	}
	if r.StatusInfo != nil {
		e.Message(10, r.StatusInfo)
	}
	if len(r.Results) > 0 {
		// Count hint ahead of the entries so the decoder sizes the slice
		// once (same convention as Request tag 14); old decoders skip it.
		e.Uint64(14, uint64(len(r.Results)))
	}
	for i := range r.Results {
		e.Message(11, &r.Results[i])
	}
	if r.SubID != 0 {
		e.Uint64(12, r.SubID)
	}
	if r.HasEvent {
		e.Message(13, &r.Event)
	}
	if len(r.DeadLetters) > 0 {
		// Count hint ahead of the rows (same convention as tag 14).
		e.Uint64(16, uint64(len(r.DeadLetters)))
	}
	for i := range r.DeadLetters {
		e.Message(15, &r.DeadLetters[i])
	}
	e.Uint64Slice(17, r.TaskIDs)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *Response) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Seq = d.Uint64()
		case 2:
			r.Status = StatusCode(d.Uint32())
		case 3:
			r.Error = d.String()
		case 4:
			r.TaskID = d.Uint64()
		case 5:
			r.Stats = new(TaskStats)
			d.Message(r.Stats)
		case 6:
			var ds DataspaceSpec
			d.Message(&ds)
			r.Dataspaces = append(r.Dataspaces, ds)
		case 7:
			r.NonEmpty = append(r.NonEmpty, d.String())
		case 8:
			r.DaemonInfo = d.String()
		case 9:
			r.Metrics = new(TransferMetrics)
			d.Message(r.Metrics)
		case 10:
			r.StatusInfo = new(DaemonStatus)
			d.Message(r.StatusInfo)
		case 11:
			// In-place decode, presized by the tag-14 count hint.
			r.Results = append(r.Results, SubmitResult{})
			d.Message(&r.Results[len(r.Results)-1])
		case 12:
			r.SubID = d.Uint64()
		case 13:
			d.Message(&r.Event)
			r.HasEvent = true
		case 14:
			// Clamped like Request's hint: no allocation beyond what the
			// remaining frame bytes could actually encode.
			if n := d.Uint64(); r.Results == nil && n > 0 && n <= uint64(d.Remaining()/2) {
				r.Results = make([]SubmitResult, 0, n)
			}
		case 15:
			r.DeadLetters = append(r.DeadLetters, DeadLetterEntry{})
			d.Message(&r.DeadLetters[len(r.DeadLetters)-1])
		case 16:
			if n := d.Uint64(); r.DeadLetters == nil && n > 0 && n <= uint64(d.Remaining()/2) {
				r.DeadLetters = make([]DeadLetterEntry, 0, n)
			}
		case 17:
			r.TaskIDs = append(r.TaskIDs, d.Uint64())
		default:
			d.Skip()
		}
	}
	return d.Err()
}
