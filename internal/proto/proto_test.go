package proto

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/wire"
)

func roundTripRequest(t *testing.T, in *Request) *Request {
	t.Helper()
	var out Request
	if err := wire.Unmarshal(wire.Marshal(in), &out); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	return &out
}

func roundTripResponse(t *testing.T, in *Response) *Response {
	t.Helper()
	var out Response
	if err := wire.Unmarshal(wire.Marshal(in), &out); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	return &out
}

func TestSubmitRequestRoundTrip(t *testing.T) {
	in := &Request{
		Seq: 7,
		Op:  OpSubmit,
		PID: 1234,
		Task: &TaskSpec{
			Kind:     uint32(task.Copy),
			Input:    FromResource(task.MemoryRegion([]byte("payload"))),
			Output:   FromResource(task.PosixPath("nvme0://", "out/x")),
			Priority: -3,
			JobID:    42,
		},
	}
	out := roundTripRequest(t, in)
	if out.Seq != 7 || out.Op != OpSubmit || out.PID != 1234 {
		t.Fatalf("envelope mismatch: %+v", out)
	}
	if out.Task == nil {
		t.Fatal("Task dropped")
	}
	if out.Task.Kind != uint32(task.Copy) || out.Task.Priority != -3 || out.Task.JobID != 42 {
		t.Fatalf("task mismatch: %+v", out.Task)
	}
	if !bytes.Equal(out.Task.Input.Data, []byte("payload")) {
		t.Fatalf("input data mismatch: %q", out.Task.Input.Data)
	}
	if out.Task.Output.Dataspace != "nvme0://" || out.Task.Output.Path != "out/x" {
		t.Fatalf("output mismatch: %+v", out.Task.Output)
	}
}

func TestResourceSpecConversion(t *testing.T) {
	orig := task.RemotePosixPath("node3", "pmdk0://", "a/b")
	rs := FromResource(orig)
	back := rs.ToResource()
	if back.Kind != orig.Kind || back.Node != orig.Node ||
		back.Dataspace != orig.Dataspace || back.Path != orig.Path || back.Size != orig.Size {
		t.Fatalf("ToResource(FromResource(r)) = %+v, want %+v", back, orig)
	}
}

func TestJobRequestRoundTrip(t *testing.T) {
	in := &Request{
		Seq: 1,
		Op:  OpRegisterJob,
		Job: &JobSpec{
			ID:    9,
			Hosts: []string{"n1", "n2", "n3"},
			Limits: []JobLimitSpec{
				{Dataspace: "nvme0://", Quota: 1 << 30},
				{Dataspace: "lustre://"},
			},
		},
	}
	out := roundTripRequest(t, in)
	if out.Job == nil || out.Job.ID != 9 || len(out.Job.Hosts) != 3 || len(out.Job.Limits) != 2 {
		t.Fatalf("job mismatch: %+v", out.Job)
	}
	if out.Job.Limits[0].Quota != 1<<30 || out.Job.Limits[1].Dataspace != "lustre://" {
		t.Fatalf("limits mismatch: %+v", out.Job.Limits)
	}
}

func TestDataspaceRequestRoundTrip(t *testing.T) {
	in := &Request{
		Op: OpRegisterDataspace,
		Dataspace: &DataspaceSpec{
			ID: "nvme0://", Backend: 2, Mount: "/mnt/pmem0", Capacity: 3 << 40, Track: true,
		},
	}
	out := roundTripRequest(t, in)
	ds := out.Dataspace
	if ds == nil || ds.ID != "nvme0://" || ds.Backend != 2 || ds.Mount != "/mnt/pmem0" ||
		ds.Capacity != 3<<40 || !ds.Track {
		t.Fatalf("dataspace mismatch: %+v", ds)
	}
}

func TestProcRequestRoundTrip(t *testing.T) {
	in := &Request{Op: OpAddProcess, Proc: &ProcSpec{PID: 100, UID: 1000, GID: 2000}, Job: &JobSpec{ID: 5}}
	out := roundTripRequest(t, in)
	if out.Proc == nil || out.Proc.PID != 100 || out.Proc.UID != 1000 || out.Proc.GID != 2000 {
		t.Fatalf("proc mismatch: %+v", out.Proc)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := &Response{
		Seq:    11,
		Status: ETaskError,
		Error:  "transfer failed",
		TaskID: 77,
		Stats: &TaskStats{
			Status: uint32(task.Failed), Err: "io error", TotalBytes: 100, MovedBytes: 40,
		},
		Dataspaces: []DataspaceSpec{{ID: "a://", UsedBytes: 5}, {ID: "b://"}},
		NonEmpty:   []string{"a://"},
		DaemonInfo: "urd 1.0",
	}
	out := roundTripResponse(t, in)
	if out.Seq != 11 || out.Status != ETaskError || out.Error != "transfer failed" || out.TaskID != 77 {
		t.Fatalf("envelope mismatch: %+v", out)
	}
	if out.Stats == nil || out.Stats.MovedBytes != 40 || out.Stats.Err != "io error" {
		t.Fatalf("stats mismatch: %+v", out.Stats)
	}
	if len(out.Dataspaces) != 2 || out.Dataspaces[0].UsedBytes != 5 {
		t.Fatalf("dataspaces mismatch: %+v", out.Dataspaces)
	}
	if len(out.NonEmpty) != 1 || out.NonEmpty[0] != "a://" {
		t.Fatalf("nonEmpty mismatch: %v", out.NonEmpty)
	}
	if out.DaemonInfo != "urd 1.0" {
		t.Fatalf("daemonInfo mismatch: %q", out.DaemonInfo)
	}
}

func TestFromStats(t *testing.T) {
	s := task.Stats{Status: task.Finished, TotalBytes: 10, MovedBytes: 10}
	ts := FromStats(s)
	if ts.Status != uint32(task.Finished) || ts.TotalBytes != 10 || ts.MovedBytes != 10 {
		t.Fatalf("FromStats = %+v", ts)
	}
}

func TestOpControl(t *testing.T) {
	for _, o := range []Op{OpSubmit, OpWait, OpTaskStatus, OpGetDataspaceInfo} {
		if o.Control() {
			t.Errorf("%v misclassified as control", o)
		}
	}
	for _, o := range []Op{OpPing, OpRegisterDataspace, OpRegisterJob, OpShutdown} {
		if !o.Control() {
			t.Errorf("%v misclassified as user", o)
		}
	}
}

func TestOpStrings(t *testing.T) {
	if OpSubmit.String() != "submit" || OpPing.String() != "ping" || Op(9999).String() == "" {
		t.Fatal("op strings wrong")
	}
	if Success.String() != "NORNS_SUCCESS" || ETimeout.String() != "NORNS_ETIMEOUT" {
		t.Fatal("status strings wrong")
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(seq, pid, taskID uint64, op uint32, timeout int64, track bool) bool {
		in := &Request{Seq: seq, Op: Op(op), PID: pid, TaskID: taskID, TimeoutMS: timeout, Track: track}
		var out Request
		if err := wire.Unmarshal(wire.Marshal(in), &out); err != nil {
			return false
		}
		return out.Seq == seq && out.Op == Op(op) && out.PID == pid &&
			out.TaskID == taskID && out.TimeoutMS == timeout && out.Track == track
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMessages(t *testing.T) {
	out := roundTripRequest(t, &Request{})
	if out.Op != OpInvalid || out.Task != nil || out.Job != nil {
		t.Fatalf("empty request round trip: %+v", out)
	}
	resp := roundTripResponse(t, &Response{})
	if resp.Status != Success || resp.Stats != nil {
		t.Fatalf("empty response round trip: %+v", resp)
	}
}

func TestCancelRequestRoundTrip(t *testing.T) {
	in := &Request{Seq: 3, Op: OpCancel, PID: 77, TaskID: 12}
	out := roundTripRequest(t, in)
	if out.Op != OpCancel || out.TaskID != 12 {
		t.Fatalf("cancel request mismatch: %+v", out)
	}
	if OpCancel.Control() {
		t.Fatal("OpCancel misclassified as control-only")
	}
	if OpCancel.String() != "cancel" {
		t.Fatalf("OpCancel.String() = %q", OpCancel.String())
	}
}

func TestDeadlineAndSizeErrRoundTrip(t *testing.T) {
	in := &Request{
		Op: OpSubmit,
		Task: &TaskSpec{
			Kind:       uint32(task.Copy),
			Input:      FromResource(task.PosixPath("a://", "p")),
			Output:     FromResource(task.PosixPath("b://", "q")),
			DeadlineMS: 1500,
		},
	}
	out := roundTripRequest(t, in)
	if out.Task == nil || out.Task.DeadlineMS != 1500 {
		t.Fatalf("deadline mismatch: %+v", out.Task)
	}
	resp := roundTripResponse(t, &Response{
		Status: Success,
		Stats: &TaskStats{
			Status: uint32(task.Cancelled), MovedBytes: 7, SizeErr: "stat: missing",
		},
		Metrics: &TransferMetrics{Cancelled: 4, MovedBytes: 99},
	})
	if resp.Stats == nil || resp.Stats.SizeErr != "stat: missing" {
		t.Fatalf("SizeErr mismatch: %+v", resp.Stats)
	}
	if resp.Metrics == nil || resp.Metrics.Cancelled != 4 {
		t.Fatalf("metrics mismatch: %+v", resp.Metrics)
	}
	if EAgain.String() != "NORNS_EAGAIN" {
		t.Fatalf("EAgain.String() = %q", EAgain.String())
	}
}

func TestDaemonStatusRoundTrip(t *testing.T) {
	in := &Response{
		Status:     Success,
		DaemonInfo: "urd/2.0 node=n1",
		StatusInfo: &DaemonStatus{
			Version:            "urd/2.0",
			Node:               "n1",
			Policy:             "sjf",
			Shards:             3,
			Pending:            12,
			Tasks:              40,
			Journal:            true,
			RecoveredPending:   2,
			RecoveredRunning:   1,
			RecoveredCancelled: 4,
			RecoveredTerminal:  9,
			Autotune:           true,
			AutotuneRoutes: []AutotuneRoute{
				{In: "lustre://", Out: "nvme0://", Kind: "local-path>local-path",
					Streams: 8, SegSize: 16 << 20, GoodputBps: 1.5e9, Samples: 12, State: "settled"},
				{In: "node2/lustre://", Out: "nvme0://", Kind: "remote-path>local-path",
					Streams: 4, SegSize: 8 << 20, GoodputBps: 2.5e8, Samples: 3, State: "probing"},
			},
		},
	}
	out := roundTripResponse(t, in)
	if out.StatusInfo == nil {
		t.Fatal("StatusInfo dropped")
	}
	if !reflect.DeepEqual(*out.StatusInfo, *in.StatusInfo) {
		t.Fatalf("status info mismatch:\n got %+v\nwant %+v", *out.StatusInfo, *in.StatusInfo)
	}
	// Without a journal the recovery fields stay zero and the message
	// still round-trips.
	lean := roundTripResponse(t, &Response{StatusInfo: &DaemonStatus{Version: "urd/2.0", Node: "n2", Policy: "fcfs"}})
	if lean.StatusInfo == nil || lean.StatusInfo.Journal || lean.StatusInfo.RecoveredPending != 0 {
		t.Fatalf("lean status info mismatch: %+v", lean.StatusInfo)
	}
}

func TestSubmitBatchRequestRoundTrip(t *testing.T) {
	in := &Request{
		Op:  OpSubmitBatch,
		PID: 42,
		Tasks: []TaskSpec{
			{Kind: uint32(task.Copy),
				Input:  ResourceSpec{Kind: uint32(task.LocalPath), Dataspace: "lustre://", Path: "in0"},
				Output: ResourceSpec{Kind: uint32(task.LocalPath), Dataspace: "nvme0://", Path: "out0"}},
			{Kind: uint32(task.Move), Priority: 3, JobID: 7, DeadlineMS: 1500, MaxBps: 1 << 20,
				Input:  ResourceSpec{Kind: uint32(task.RemotePath), Node: "n2", Dataspace: "l://", Path: "in1"},
				Output: ResourceSpec{Kind: uint32(task.LocalPath), Dataspace: "nvme0://", Path: "out1"}},
		},
	}
	out := roundTripRequest(t, in)
	if len(out.Tasks) != 2 {
		t.Fatalf("Tasks = %d entries", len(out.Tasks))
	}
	if out.Tasks[0].Input.Path != "in0" || out.Tasks[1].MaxBps != 1<<20 || out.Tasks[1].Input.Node != "n2" {
		t.Fatalf("tasks mismatch: %+v", out.Tasks)
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	in := &Response{
		Status: Success,
		Results: []SubmitResult{
			{TaskID: 11, Status: uint32(Success)},
			{Status: uint32(EAgain), Error: "shard at capacity"},
			{TaskID: 13, Status: uint32(Success)},
		},
	}
	out := roundTripResponse(t, in)
	if len(out.Results) != 3 {
		t.Fatalf("Results = %d entries", len(out.Results))
	}
	if out.Results[0].TaskID != 11 || StatusCode(out.Results[1].Status) != EAgain ||
		out.Results[1].Error != "shard at capacity" || out.Results[2].TaskID != 13 {
		t.Fatalf("results mismatch: %+v", out.Results)
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	in := &Request{
		Op:        OpSubscribe,
		Subscribe: &SubscribeSpec{TaskIDs: []uint64{4, 5, 6}, ProgressMS: 250},
	}
	out := roundTripRequest(t, in)
	if out.Subscribe == nil || len(out.Subscribe.TaskIDs) != 3 ||
		out.Subscribe.TaskIDs[2] != 6 || out.Subscribe.ProgressMS != 250 || out.Subscribe.All {
		t.Fatalf("subscribe mismatch: %+v", out.Subscribe)
	}
	all := roundTripRequest(t, &Request{Op: OpSubscribe, Subscribe: &SubscribeSpec{All: true}})
	if all.Subscribe == nil || !all.Subscribe.All || len(all.Subscribe.TaskIDs) != 0 {
		t.Fatalf("all-subscribe mismatch: %+v", all.Subscribe)
	}
	unsub := roundTripRequest(t, &Request{Op: OpUnsubscribe, SubID: 9})
	if unsub.SubID != 9 {
		t.Fatalf("SubID = %d", unsub.SubID)
	}
}

func TestEventPushFrameRoundTrip(t *testing.T) {
	in := &Response{
		Status: Success,
		Event: Event{
			SubID: 3, Kind: uint32(EvState), TaskID: 17,
			Stats: TaskStats{Status: uint32(task.Finished), TotalBytes: 4096, MovedBytes: 4096,
				SegmentsTotal: 2, SegmentsDone: 2, BandwidthBps: 1e6},
			HasStats: true,
		},
		HasEvent: true,
	}
	out := roundTripResponse(t, in)
	if out.Seq != 0 {
		t.Fatalf("push frame Seq = %d, want 0", out.Seq)
	}
	if !out.HasEvent || out.Event.SubID != 3 || out.Event.TaskID != 17 ||
		EventKind(out.Event.Kind) != EvState || !out.Event.HasStats ||
		out.Event.Stats.MovedBytes != 4096 {
		t.Fatalf("event mismatch: %+v", out.Event)
	}
	gap := roundTripResponse(t, &Response{Event: Event{SubID: 3, Kind: uint32(EvGap), Dropped: 12}, HasEvent: true})
	if !gap.HasEvent || EventKind(gap.Event.Kind) != EvGap || gap.Event.Dropped != 12 {
		t.Fatalf("gap event mismatch: %+v", gap.Event)
	}
}

// legacyResponse decodes exactly the fields a v1 (pre-batch,
// pre-subscription) client knew about, skipping everything else — the
// forward-compatibility contract that lets an old client talk to a v2
// daemon.
type legacyResponse struct {
	Seq    uint64
	Status uint32
	Error  string
	TaskID uint64
	Stats  *TaskStats
}

func (r *legacyResponse) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Seq = d.Uint64()
		case 2:
			r.Status = d.Uint32()
		case 3:
			r.Error = d.String()
		case 4:
			r.TaskID = d.Uint64()
		case 5:
			r.Stats = new(TaskStats)
			d.Message(r.Stats)
		default:
			d.Skip()
		}
	}
	return d.Err()
}

func TestV1ClientSkipsV2Fields(t *testing.T) {
	// A v2 daemon response carrying batch results, a subscription ID,
	// and an event payload must decode cleanly on a v1-shaped client:
	// the unknown tags are skipped, the known ones survive.
	st := TaskStats{Status: uint32(task.Finished), MovedBytes: 99}
	v2 := &Response{
		Seq:    7,
		Status: Success,
		TaskID: 21,
		Stats:  &st,
		Results: []SubmitResult{
			{TaskID: 22, Status: uint32(Success)},
			{Status: uint32(EAgain), Error: "busy"},
		},
		SubID:    5,
		Event:    Event{SubID: 5, Kind: uint32(EvProgress), TaskID: 22, Stats: st, HasStats: true},
		HasEvent: true,
	}
	var old legacyResponse
	if err := wire.Unmarshal(wire.Marshal(v2), &old); err != nil {
		t.Fatalf("v1 decode of v2 response: %v", err)
	}
	if old.Seq != 7 || StatusCode(old.Status) != Success || old.TaskID != 21 ||
		old.Stats == nil || old.Stats.MovedBytes != 99 {
		t.Fatalf("v1 view mismatch: %+v", old)
	}
	// And the reverse: a v2 daemon must skip fields a future client
	// might send. Simulate with a request carrying an unknown tag.
	var e wire.Encoder
	(&Request{Op: OpSubmit, PID: 1}).MarshalWire(&e)
	e.String(99, "from the future")
	var req Request
	if err := wire.Unmarshal(e.Buffer(), &req); err != nil {
		t.Fatalf("decode with unknown field: %v", err)
	}
	if req.Op != OpSubmit || req.PID != 1 {
		t.Fatalf("request mismatch: %+v", req)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{EvState: "state", EvProgress: "progress", EvGap: "gap", EventKind(9): "event(9)"} {
		if got := k.String(); got != want {
			t.Fatalf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	for op, want := range map[Op]string{OpSubmitBatch: "submit-batch", OpSubscribe: "subscribe", OpUnsubscribe: "unsubscribe"} {
		if got := op.String(); got != want {
			t.Fatalf("Op(%d).String() = %q, want %q", op, got, want)
		}
		if op.Control() {
			t.Fatalf("%s must be a user op", op)
		}
	}
}
