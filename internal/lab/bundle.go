package lab

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteBundle persists a failing scenario as a self-contained repro
// directory: the exact spec and seed (replay is `norns-lab -run <name>
// -seed <seed>`), the normalized log, the rendered tables, and — for
// crash-class scenarios — the journal state directory as the daemon
// left it. CI uploads this directory as the failure artifact.
func WriteBundle(dir string, res *Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	doc := struct {
		Replay string  `json:"replay"`
		Result *Result `json:"result"`
	}{
		Replay: fmt.Sprintf("norns-lab -run %s -seed %d", res.Spec.Name, res.Seed),
		Result: res,
	}
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "scenario.json"), append(buf, '\n'), 0o644); err != nil {
		return err
	}

	var log strings.Builder
	for _, line := range res.Log {
		log.WriteString(line)
		log.WriteByte('\n')
	}
	for _, t := range res.Tables {
		log.WriteByte('\n')
		log.WriteString(t.String())
		log.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "log.txt"), []byte(log.String()), 0o644); err != nil {
		return err
	}

	if res.StateDir != "" {
		if err := copyTree(res.StateDir, filepath.Join(dir, "state")); err != nil {
			// The state dir may be gone if the scenario failed before
			// creating it; record that instead of failing the bundle.
			note := fmt.Sprintf("journal state not captured: %v\n", err)
			_ = os.WriteFile(filepath.Join(dir, "state.missing"), []byte(note), 0o644)
		}
	}
	return nil
}

// copyTree copies a directory recursively (regular files only — the
// journal holds no symlinks or devices).
func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
}
