package lab

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/storage"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/urd"
)

// Scenarios returns the built-in suite. Each entry is a declarative
// Spec; the class selects the harness logic, everything else is data.
func Scenarios() []*Spec {
	return []*Spec{
		{
			Name: "crash-mid-transfer", Class: "crash",
			Desc:  "freeze the journal at the Kth segment checkpoint, restart, prove the resume is byte-exact",
			Nodes: 4, Tasks: 6,
			PayloadBytes: 8 * 16 << 10, SegmentSize: 16 << 10,
			Workers: 1, Streams: 1,
			Arrival: ArrivalSpec{Pattern: "constant"},
			Faults:  []FaultSpec{{Kind: "crash", AfterSegments: 3}},
			Assert:  []string{"no-acked-loss", "resume-exact", "content-intact"},
		},
		{
			Name: "peer-partition", Class: "partition",
			Desc:  "cut the fabric between task waves; failures are terminal and the heal restores service",
			Nodes: 4, Tasks: 12,
			PayloadBytes: 32 << 10,
			Arrival:      ArrivalSpec{Pattern: "bursty", Rate: 2, Burst: 4, Width: 0.25},
			Faults:       []FaultSpec{{Kind: "partition", CutAfterTasks: 4, HealAfterTasks: 8}},
			Assert:       []string{"pre-cut-clean", "cut-terminal", "post-heal-clean"},
		},
		{
			Name: "slow-disk", Class: "slow-disk",
			Desc:  "every write delayed; transfers still land every byte through the throttled path",
			Nodes: 4, Tasks: 10,
			PayloadBytes: 96 << 10, SegmentSize: 32 << 10,
			Arrival: ArrivalSpec{Pattern: "poisson", Rate: 50},
			Faults:  []FaultSpec{{Kind: "slow-disk", WriteDelayMS: 2}},
			Assert:  []string{"all-finish", "all-bytes-land"},
		},
		{
			Name: "skewed-deadlines", Class: "skew",
			Desc:  "a stalled disk holds the lane while short-deadline tasks queue behind it and lapse",
			Nodes: 2, Tasks: 5,
			PayloadBytes: 32 << 10,
			Workers:      1, Streams: 1,
			Arrival: ArrivalSpec{Pattern: "constant"},
			Faults: []FaultSpec{
				{Kind: "stall", StallMS: 700},
				{Kind: "skew", DeadlineMS: 120},
			},
			Assert: []string{"blocker-finishes", "victims-expire"},
		},
		{
			Name: "governor-cap", Class: "governor",
			Desc:  "the daemon-wide governor keeps aggregate goodput at or under its cap",
			Nodes: 4, Tasks: 4,
			PayloadBytes: 1 << 20, SegmentSize: 128 << 10,
			CapBps:  8 << 20,
			Arrival: ArrivalSpec{Pattern: "constant"},
			Assert:  []string{"all-finish", "governor-cap"},
		},
		{
			Name: "autotune-converges", Class: "autotune",
			Desc:  "under a bandwidth cap the tuner parks the route as capped instead of probing forever",
			Nodes: 2, Tasks: 24,
			PayloadBytes: 256 << 10, SegmentSize: 64 << 10,
			CapBps:   64 << 20,
			Autotune: true,
			Arrival:  ArrivalSpec{Pattern: "constant"},
			Assert:   []string{"all-finish", "autotune-converges"},
		},
		{
			Name: "warm-cache", Class: "warm-cache",
			Desc:  "repeat stage-ins of one payload; after the first task the staging cache serves ≥90% of the bytes and the hit/miss ledger is exact",
			Nodes: 2, Tasks: 6,
			PayloadBytes: 8 * 32 << 10, SegmentSize: 32 << 10,
			Workers: 1, Streams: 1,
			Arrival: ArrivalSpec{Pattern: "constant"},
			Assert:  []string{"all-finish", "warm-cache-hits", "cold-only-fabric", "hit-miss-deterministic"},
		},
		{
			Name: "flaky-endpoint", Class: "flaky-endpoint",
			Desc:  "an endpoint fails its first K fabric calls; retry/backoff lands every task while the breaker trips and re-closes",
			Nodes: 2, Tasks: 4,
			PayloadBytes: 32 << 10, SegmentSize: 32 << 10,
			Workers: 1, Streams: 1,
			Arrival: ArrivalSpec{Pattern: "constant"},
			Faults:  []FaultSpec{{Kind: "flaky", FailCalls: 4}},
			Assert:  []string{"retry-completes", "retry-attempted", "breaker-trips", "breaker-recloses"},
		},
		{
			Name: "journal-disk-full", Class: "journal-disk-full",
			Desc:  "the WAL disk fills mid-flight; acked tasks still finish, new submits shed EUnavailable, and the daemon recovers when the disk heals",
			Nodes: 2, Tasks: 6,
			PayloadBytes: 64 << 10, SegmentSize: 16 << 10,
			Workers: 1, Streams: 1,
			Arrival: ArrivalSpec{Pattern: "constant"},
			Faults:  []FaultSpec{{Kind: "disk-full", WriteDelayMS: 2}},
			Assert:  []string{"pre-fault-terminal", "sheds-unavailable", "degraded-health", "recovers"},
		},
		{
			Name: "sigterm-drain", Class: "sigterm-drain",
			Desc:  "graceful drain: the running transfer finishes, queued tasks stay journaled Pending, and the clean-shutdown marker makes the restart re-copy zero finished bytes",
			Nodes: 2, Tasks: 5,
			PayloadBytes: 64 << 10, SegmentSize: 16 << 10,
			Workers: 1, Streams: 1,
			Arrival: ArrivalSpec{Pattern: "constant"},
			Faults:  []FaultSpec{{Kind: "stall", StallMS: 300}},
			Assert:  []string{"drain-finishes-inflight", "clean-marker", "pending-preserved", "zero-recopy"},
		},
		{
			Name: "terminal-events", Class: "events",
			Desc:  "the event hub delivers a terminal event for every explicitly subscribed task",
			Nodes: 4, Tasks: 64,
			PayloadBytes: 4 << 10,
			Arrival:      ArrivalSpec{Pattern: "bursty", Rate: 4, Burst: 16, Width: 0.1},
			Assert:       []string{"terminal-events"},
		},
		{
			Name: "soak", Class: "soak",
			Desc:  "sustained batch submission through the full daemon; nothing lost, nothing leaked",
			Nodes: 8, Tasks: 2000,
			PayloadBytes: 256,
			Arrival:      ArrivalSpec{Pattern: "poisson", Rate: 1000},
			Assert:       []string{"soak-clean"},
		},
	}
}

// ByName returns the built-in scenario with the given name, or nil.
func ByName(name string) *Spec {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// ByClass returns the built-in scenarios of one class.
func ByClass(class string) []*Spec {
	var out []*Spec
	for _, s := range Scenarios() {
		if s.Class == class {
			out = append(out, s)
		}
	}
	return out
}

// copySpec builds a mem→dataspace copy task.
func copySpec(data []byte, ds, path string) *proto.TaskSpec {
	return &proto.TaskSpec{
		Kind:   uint32(task.Copy),
		Input:  proto.FromResource(task.MemoryRegion(data)),
		Output: proto.FromResource(task.PosixPath(ds, path)),
	}
}

// runCrash is the flagship recovery scenario. One daemon on a durable
// journal copies a segmented payload onto a real on-disk dataspace;
// at the Kth segment checkpoint the journal freezes — the moment the
// process "died", every later record lost. A second daemon reopens the
// same state dir behind a byte-counting FS wrapper and must (a) resolve
// every previously acked submit, (b) re-copy exactly the segments the
// frozen journal never saw — no more, no fewer — and (c) leave the
// destination bytes identical to the payload.
func runCrash(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	fault := spec.fault("crash")
	if fault == nil || fault.AfterSegments <= 0 {
		return fmt.Errorf("lab: crash scenario needs a crash fault with after_segments")
	}
	dir, err := r.scratchDir(spec)
	if err != nil {
		return err
	}
	stateDir := filepath.Join(dir, "state")
	mount := filepath.Join(dir, "data")
	if err := os.MkdirAll(mount, 0o755); err != nil {
		return err
	}
	res.StateDir = stateDir

	segSize := spec.segmentSize()
	totalSegs := int(spec.PayloadBytes / segSize)
	if int64(totalSegs)*segSize != spec.PayloadBytes {
		return fmt.Errorf("lab: crash payload must be a whole number of segments")
	}
	freezeAt := fault.AfterSegments

	// Workers=1 + Streams=1 makes segment completion strictly ordered,
	// so "freeze at checkpoint K" is the same instant every run.
	var d1 *urd.Daemon
	cfg := urd.Config{
		NodeName: "lab-crash", Workers: 1, TransferStreams: 1,
		SegmentSize: segSize, StateDir: stateDir, DisableOffload: true,
		Hooks: urd.Hooks{
			AfterSegment: func(t *task.Task) {
				st := t.Stats()
				// Only the watched multi-segment transfer triggers the
				// crash; the small acked tasks are single-segment.
				if st.SegmentsTotal == totalSegs && st.SegmentsDone == freezeAt {
					d1.Journal().Freeze()
				}
			},
		},
	}
	d1, err = urd.New(cfg)
	if err != nil {
		return err
	}
	if err := register(d1, &proto.DataspaceSpec{ID: "mem://", Backend: uint32(1)}); err != nil {
		d1.Close()
		return err
	}
	if err := register(d1, &proto.DataspaceSpec{ID: "disk://", Backend: uint32(1), Mount: mount}); err != nil {
		d1.Close()
		return err
	}

	// Acked small submits first; their terminal records reach the WAL
	// before the freeze.
	var ackedIDs []uint64
	for i := 0; i < spec.Tasks-1; i++ {
		id, err := d1.Submit(copySpec(payload(rng, 1<<10), "mem://", fmt.Sprintf("small/%d", i)), 0, true)
		if err != nil {
			d1.Close()
			return err
		}
		ackedIDs = append(ackedIDs, id)
	}
	for _, id := range ackedIDs {
		if st, err := waitTask(d1, id, waitBudget); err != nil || task.Status(st.Status) != task.Finished {
			d1.Close()
			return fmt.Errorf("pre-crash task %d: %v %v", id, st.Status, err)
		}
	}

	// The watched transfer: the journal freezes at its Kth checkpoint.
	big := payload(rng, spec.PayloadBytes)
	bigID, err := d1.Submit(copySpec(big, "disk://", "out.bin"), 0, true)
	if err != nil {
		d1.Close()
		return err
	}
	ackedIDs = append(ackedIDs, bigID)
	if st, err := waitTask(d1, bigID, waitBudget); err != nil || task.Status(st.Status) != task.Finished {
		d1.Close()
		return fmt.Errorf("watched task: %v %v", st.Status, err)
	}
	d1.Close()
	res.logf("crash: journal frozen after %d/%d segment checkpoints", freezeAt, totalSegs)

	// Restart on the same state dir, counting every byte the recovered
	// daemon writes to the on-disk dataspace.
	var counter *faultFS
	d2, err := urd.New(urd.Config{
		NodeName: "lab-crash", Workers: 1, TransferStreams: 1,
		SegmentSize: segSize, StateDir: stateDir, DisableOffload: true,
		Hooks: urd.Hooks{
			WrapFS: func(id string, fs storage.FS) storage.FS {
				if id != "disk://" {
					return fs
				}
				counter = newFaultFS(fs, 0, 0)
				return counter
			},
		},
	})
	if err != nil {
		return err
	}
	defer d2.Close()

	rec := d2.Recovered()
	res.logf("recovered: pending=%d running=%d terminal=%d cancelled=%d",
		rec.Pending, rec.Running, rec.Terminal, rec.Cancelled)
	res.check("no-acked-loss", rec.Requeued() == 1 && rec.Terminal == len(ackedIDs)-1,
		"requeued=%d terminal=%d of %d acked submits", rec.Requeued(), rec.Terminal, len(ackedIDs))

	// Every acked submit must resolve terminal on the recovered daemon.
	var stats []proto.TaskStats
	lost := 0
	for _, id := range ackedIDs {
		st, err := waitTask(d2, id, waitBudget)
		if err != nil {
			lost++
			continue
		}
		stats = append(stats, st)
	}
	summarize(res, "post-restart", stats)
	if lost > 0 {
		res.failf("no-acked-loss", "%d acked submits unresolvable after restart", lost)
	}

	if counter == nil {
		res.failf("resume-exact", "recovered daemon never rebuilt the disk:// backend")
	} else {
		wantBytes := int64(totalSegs-freezeAt) * segSize
		res.check("resume-exact", counter.written.Load() == wantBytes,
			"re-copied %d bytes, want %d (%d of %d segments)",
			counter.written.Load(), wantBytes, totalSegs-freezeAt, totalSegs)
	}

	got, err := os.ReadFile(filepath.Join(mount, "out.bin"))
	res.check("content-intact", err == nil && bytes.Equal(got, big),
		"destination is %d bytes, payload %d", len(got), len(big))
	return nil
}

// runPartition drives three task waves across a fault-injecting
// transport shim: healthy, partitioned (every transfer must fail
// terminally, not hang), healed.
func runPartition(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	fault := spec.fault("partition")
	if fault == nil {
		return fmt.Errorf("lab: partition scenario needs a partition fault")
	}
	remote := newLabRemote("peer-b")
	d, err := urd.New(urd.Config{
		NodeName: "lab-part", Workers: spec.workers(), TransferStreams: spec.streams(),
		SegmentSize: spec.segmentSize(),
		Hooks:       urd.Hooks{Remote: remote},
	})
	if err != nil {
		return err
	}
	defer d.Close()

	wave := func(label string, n int) ([]proto.TaskStats, error) {
		var stats []proto.TaskStats
		for i := 0; i < n; i++ {
			spec := &proto.TaskSpec{
				Kind:   uint32(task.Copy),
				Input:  proto.FromResource(task.MemoryRegion(payload(rng, spec.PayloadBytes))),
				Output: proto.FromResource(task.RemotePosixPath("peer-b", "rmt://", fmt.Sprintf("%s/%d", label, i))),
			}
			id, err := d.Submit(spec, 0, true)
			if err != nil {
				return nil, fmt.Errorf("%s submit: %w", label, err)
			}
			st, err := waitTask(d, id, waitBudget)
			if err != nil {
				return nil, err
			}
			stats = append(stats, st)
		}
		return stats, nil
	}
	allStatus := func(stats []proto.TaskStats, want task.Status) bool {
		for _, st := range stats {
			if task.Status(st.Status) != want {
				return false
			}
		}
		return true
	}

	pre, err := wave("pre", fault.CutAfterTasks)
	if err != nil {
		return err
	}
	summarize(res, "pre-cut", pre)
	res.check("pre-cut-clean", allStatus(pre, task.Finished), "%d tasks before the cut", len(pre))

	remote.cut()
	cut, err := wave("cut", fault.HealAfterTasks-fault.CutAfterTasks)
	if err != nil {
		return err
	}
	summarize(res, "partitioned", cut)
	failedPartition := true
	for _, st := range cut {
		if task.Status(st.Status) != task.Failed || classify(st.Err) != "partition" {
			failedPartition = false
		}
	}
	res.check("cut-terminal", failedPartition,
		"%d transfers during the partition all fail terminally with the partition error", len(cut))

	remote.heal()
	post, err := wave("post", spec.Tasks-fault.HealAfterTasks)
	if err != nil {
		return err
	}
	summarize(res, "post-heal", post)
	res.check("post-heal-clean", allStatus(post, task.Finished), "%d tasks after the heal", len(post))
	return nil
}

// runSlowDisk throttles every write on the destination backend and
// proves transfers still finish with every byte accounted through the
// wrapped (non-offload) path.
func runSlowDisk(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	fault := spec.fault("slow-disk")
	if fault == nil {
		return fmt.Errorf("lab: slow-disk scenario needs a slow-disk fault")
	}
	var slow *faultFS
	d, err := urd.New(urd.Config{
		NodeName: "lab-slow", Workers: spec.workers(), TransferStreams: spec.streams(),
		SegmentSize: spec.segmentSize(), DisableOffload: true,
		Hooks: urd.Hooks{
			WrapFS: func(id string, fs storage.FS) storage.FS {
				if id != "disk://" {
					return fs
				}
				slow = newFaultFS(fs, time.Duration(fault.WriteDelayMS)*time.Millisecond, 0)
				return slow
			},
		},
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := register(d, &proto.DataspaceSpec{ID: "disk://", Backend: uint32(1)}); err != nil {
		return err
	}

	var ids []uint64
	for i := 0; i < spec.Tasks; i++ {
		id, err := d.Submit(copySpec(payload(rng, spec.PayloadBytes), "disk://", fmt.Sprintf("f/%d", i)), 0, true)
		if err != nil {
			return err
		}
		ids = append(ids, id)
	}
	var stats []proto.TaskStats
	for _, id := range ids {
		st, err := waitTask(d, id, waitBudget)
		if err != nil {
			return err
		}
		stats = append(stats, st)
	}
	summarize(res, "slow-disk", stats)
	allFin := true
	for _, st := range stats {
		if task.Status(st.Status) != task.Finished {
			allFin = false
		}
	}
	res.check("all-finish", allFin, "%d tasks through the throttled disk", len(stats))
	want := int64(spec.Tasks) * spec.PayloadBytes
	res.check("all-bytes-land", slow != nil && slow.written.Load() == want,
		"counted %d bytes through the wrapper, want %d", slow.written.Load(), want)
	return nil
}

// runSkew queues short-deadline tasks behind a stalled write; their
// deadlines lapse while they wait and the daemon's lazy enforcement
// must expire them, while the stalled task itself still finishes.
func runSkew(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	stall := spec.fault("stall")
	skew := spec.fault("skew")
	if stall == nil || skew == nil {
		return fmt.Errorf("lab: skew scenario needs stall and skew faults")
	}
	var disk *faultFS
	d, err := urd.New(urd.Config{
		NodeName: "lab-skew", Workers: 1, TransferStreams: 1,
		SegmentSize: spec.segmentSize(), DisableOffload: true,
		Hooks: urd.Hooks{
			WrapFS: func(id string, fs storage.FS) storage.FS {
				disk = newFaultFS(fs, 0, time.Duration(stall.StallMS)*time.Millisecond)
				return disk
			},
		},
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := register(d, &proto.DataspaceSpec{ID: "disk://", Backend: uint32(1)}); err != nil {
		return err
	}

	// The blocker has no deadline and stalls in its first write; the
	// victims carry deadlines shorter than the stall and queue behind
	// it on the same single-worker shard.
	blockerID, err := d.Submit(copySpec(payload(rng, spec.PayloadBytes), "disk://", "blocker"), 0, true)
	if err != nil {
		return err
	}
	var victims []uint64
	for i := 0; i < spec.Tasks-1; i++ {
		ts := copySpec(payload(rng, spec.PayloadBytes), "disk://", fmt.Sprintf("victim/%d", i))
		ts.DeadlineMS = skew.DeadlineMS
		id, err := d.Submit(ts, 0, true)
		if err != nil {
			return err
		}
		victims = append(victims, id)
	}

	// Waiting on the victims drives the lazy deadline check exactly the
	// way a skew-clocked client polling its tasks would.
	var stats []proto.TaskStats
	expired := 0
	for _, id := range victims {
		st, err := waitTask(d, id, waitBudget)
		if err != nil {
			return err
		}
		stats = append(stats, st)
		if task.Status(st.Status) == task.Failed && classify(st.Err) == "deadline" {
			expired++
		}
	}
	summarize(res, "victims", stats)
	res.check("victims-expire", expired == len(victims),
		"%d of %d short-deadline tasks expired behind the stall", expired, len(victims))

	st, err := waitTask(d, blockerID, waitBudget)
	if err != nil {
		return err
	}
	res.check("blocker-finishes", task.Status(st.Status) == task.Finished,
		"stalled task status=%s", task.Status(st.Status))
	return nil
}

// runGovernor checks the daemon-wide bandwidth governor: aggregate
// goodput may ride the cap but never materially exceed it. Wall-clock
// feeds the verdict only as a boolean.
func runGovernor(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	d, err := urd.New(urd.Config{
		NodeName: "lab-gov", Workers: spec.workers(), TransferStreams: spec.streams(),
		SegmentSize: spec.segmentSize(), MaxBandwidthBps: spec.CapBps, DisableOffload: true,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := register(d, &proto.DataspaceSpec{ID: "disk://", Backend: uint32(1)}); err != nil {
		return err
	}

	start := time.Now()
	var ids []uint64
	for i := 0; i < spec.Tasks; i++ {
		id, err := d.Submit(copySpec(payload(rng, spec.PayloadBytes), "disk://", fmt.Sprintf("g/%d", i)), 0, true)
		if err != nil {
			return err
		}
		ids = append(ids, id)
	}
	var stats []proto.TaskStats
	allFin := true
	for _, id := range ids {
		st, err := waitTask(d, id, waitBudget)
		if err != nil {
			return err
		}
		stats = append(stats, st)
		if task.Status(st.Status) != task.Finished {
			allFin = false
		}
	}
	elapsed := time.Since(start).Seconds()
	summarize(res, "governed", stats)
	res.check("all-finish", allFin, "%d capped tasks", len(stats))

	total := float64(spec.Tasks) * float64(spec.PayloadBytes)
	// The token bucket seeds a rate/4 burst allowance, so the budget is
	// elapsed*cap + burst; 25% slack absorbs scheduling jitter. The
	// measured numbers never reach the deterministic log — only the
	// boolean does.
	budget := (elapsed*float64(spec.CapBps) + float64(spec.CapBps)/4) * 1.25
	res.check("governor-cap", total <= budget,
		"moved bytes within the cap's token budget: %v", total <= budget)
	if r.Measure {
		t := metrics.NewTable("Scenario "+spec.Name+" — measured (nondeterministic)",
			"Metric", "Value")
		t.AddRow("aggregate MiB/s", fmt.Sprintf("%.1f", total/elapsed/mib))
		t.AddRow("cap MiB/s", fmt.Sprintf("%.1f", float64(spec.CapBps)/mib))
		res.Tables = append(res.Tables, t)
	}
	return nil
}

// runAutotune submits a same-route stream under a bandwidth cap and
// requires the tuner to stop probing: settled at a shape or parked as
// capped — never still searching after the workload drains.
func runAutotune(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	d, err := urd.New(urd.Config{
		NodeName: "lab-tune", Workers: 1, TransferStreams: spec.streams(),
		SegmentSize: spec.segmentSize(), MaxBandwidthBps: spec.CapBps,
		Autotune: true, AutotuneMinSamples: 1, DisableOffload: true,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := register(d, &proto.DataspaceSpec{ID: "disk://", Backend: uint32(1)}); err != nil {
		return err
	}

	var stats []proto.TaskStats
	allFin := true
	for i := 0; i < spec.Tasks; i++ {
		id, err := d.Submit(copySpec(payload(rng, spec.PayloadBytes), "disk://", fmt.Sprintf("t/%d", i)), 0, true)
		if err != nil {
			return err
		}
		st, err := waitTask(d, id, waitBudget)
		if err != nil {
			return err
		}
		stats = append(stats, st)
		if task.Status(st.Status) != task.Finished {
			allFin = false
		}
	}
	summarize(res, "autotuned", stats)
	res.check("all-finish", allFin, "%d tasks on the tuned route", len(stats))

	tuner := d.Executor().Env.Tuner
	routes := tuner.Snapshot()
	res.check("autotune-converges", len(routes) > 0 && tuner.Converged(),
		"routes=%d converged=%v", len(routes), tuner.Converged())
	return nil
}

// runWarmCache stages the same remote payload N times through a daemon
// with the content-addressed staging cache enabled. The first task is
// the only one allowed to touch the fabric; every later task must serve
// at least 90% of its bytes from the cache, and — with one worker and
// one stream — the per-task hit/miss ledger is an exact function of the
// segment count: all misses on task 0, all hits after.
func runWarmCache(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	dir, err := r.scratchDir(spec)
	if err != nil {
		return err
	}
	mount := filepath.Join(dir, "data")
	if err := os.MkdirAll(mount, 0o755); err != nil {
		return err
	}
	segSize := spec.segmentSize()
	segments := int(spec.PayloadBytes / segSize)
	if int64(segments)*segSize != spec.PayloadBytes {
		return fmt.Errorf("lab: warm-cache payload must be a whole number of segments")
	}

	remote := newLabRemote("peer-b")
	data := payload(rng, spec.PayloadBytes)
	if err := remote.peers["peer-b"].WriteFile("src", data); err != nil {
		return err
	}
	d, err := urd.New(urd.Config{
		NodeName: "lab-cache", Workers: spec.workers(), TransferStreams: spec.streams(),
		SegmentSize: segSize, CacheDir: filepath.Join(dir, "cas"),
		Hooks: urd.Hooks{Remote: remote},
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := register(d, &proto.DataspaceSpec{ID: "disk://", Backend: uint32(1), Mount: mount}); err != nil {
		return err
	}

	cacheGauges := func() (hits, misses uint64, err error) {
		resp := d.Handle(peerCtl(), &proto.Request{Op: proto.OpStatus})
		if resp.Status != proto.Success || resp.StatusInfo == nil {
			return 0, 0, fmt.Errorf("lab: status: %s", resp.Error)
		}
		return resp.StatusInfo.CacheHits, resp.StatusInfo.CacheMisses, nil
	}

	var stats []proto.TaskStats
	var prevHits, prevMisses uint64
	allFin, ledgerExact := true, true
	var warmMoved, warmCached int64
	for i := 0; i < spec.Tasks; i++ {
		ts := &proto.TaskSpec{
			Kind:   uint32(task.Copy),
			Input:  proto.FromResource(task.RemotePosixPath("peer-b", "rmt://", "src")),
			Output: proto.FromResource(task.PosixPath("disk://", fmt.Sprintf("w/%d", i))),
		}
		id, err := d.Submit(ts, 0, true)
		if err != nil {
			return err
		}
		st, err := waitTask(d, id, waitBudget)
		if err != nil {
			return err
		}
		stats = append(stats, st)
		if task.Status(st.Status) != task.Finished {
			allFin = false
		}
		hits, misses, err := cacheGauges()
		if err != nil {
			return err
		}
		dh, dm := hits-prevHits, misses-prevMisses
		prevHits, prevMisses = hits, misses
		// This line is the determinism contract: with one worker and one
		// stream the ledger depends only on the spec, never on timing.
		res.logf("cache: task %d hits=%d misses=%d cached=%d moved=%d", i, dh, dm, st.CacheBytes, st.MovedBytes)
		wantHits, wantMisses := uint64(segments), uint64(0)
		if i == 0 {
			wantHits, wantMisses = 0, uint64(segments)
		}
		if dh != wantHits || dm != wantMisses {
			ledgerExact = false
		}
		if i > 0 {
			warmMoved += st.MovedBytes
			warmCached += st.CacheBytes
		}
	}
	summarize(res, "warm-cache", stats)
	res.check("all-finish", allFin, "%d repeat stage-ins", len(stats))
	res.check("warm-cache-hits", warmMoved > 0 && warmCached*10 >= warmMoved*9,
		"tasks after the first served %d of %d bytes from the cache", warmCached, warmMoved)
	res.check("cold-only-fabric", remote.pulled.Load() == spec.PayloadBytes,
		"fabric moved %d bytes, want exactly one cold payload of %d", remote.pulled.Load(), spec.PayloadBytes)
	res.check("hit-miss-deterministic", ledgerExact,
		"per-task hit/miss ledger matches the %d-segment plan on every task", segments)
	return nil
}

// runEvents batch-submits tasks, subscribes explicitly, and demands a
// terminal event for every single one — the hub's bound-bypass
// guarantee for explicit subscriptions.
func runEvents(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	d, err := urd.New(urd.Config{
		NodeName: "lab-events", Workers: spec.workers(), TransferStreams: spec.streams(),
		SegmentSize: spec.segmentSize(),
		// A tiny queue bound makes the guarantee do real work: without
		// the terminal bypass this scenario drops events and fails.
		EventQueue: 4,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := register(d, &proto.DataspaceSpec{ID: "mem://", Backend: uint32(1)}); err != nil {
		return err
	}

	specs := make([]proto.TaskSpec, spec.Tasks)
	for i := range specs {
		specs[i] = *copySpec(payload(rng, spec.PayloadBytes), "mem://", fmt.Sprintf("e/%d", i))
	}
	resp := d.Handle(peerCtl(), &proto.Request{Op: proto.OpSubmitBatch, Tasks: specs})
	if resp.Status != proto.Success {
		return fmt.Errorf("batch submit: %s", resp.Error)
	}
	var ids []uint64
	for _, sr := range resp.Results {
		if sr.Status != uint32(proto.Success) {
			return fmt.Errorf("batch entry rejected: %s", sr.Error)
		}
		ids = append(ids, sr.TaskID)
	}

	col, err := collectTerminals(d, ids)
	if err != nil {
		return err
	}
	defer col.close()
	got := col.waitTerminals(len(ids), waitBudget)
	terms, _ := col.snapshot()
	missing := 0
	for _, id := range ids {
		if _, ok := terms[id]; !ok {
			missing++
		}
	}
	res.logf("events: subscribed=%d terminal-events=%d", len(ids), got)
	res.check("terminal-events", missing == 0,
		"terminal event for %d/%d tasks (queue bound %d)", len(ids)-missing, len(ids), 4)
	return nil
}

// runSoak pushes a parameterizable task count through the full daemon
// in batches — the nightly job runs millions, CI a short burst — and
// requires a clean ledger: acked == finished, zero failures.
func runSoak(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	total := r.tasks(spec)
	d, err := urd.New(urd.Config{
		NodeName: "lab-soak", Workers: spec.workers(), TransferStreams: 1,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := register(d, &proto.DataspaceSpec{ID: "mem://", Backend: uint32(1)}); err != nil {
		return err
	}

	// One shared payload: soak stresses the control plane (submit,
	// journalless ledger, retire ring), not the copy loop.
	data := payload(rng, spec.PayloadBytes)
	const batch = 512
	start := time.Now()
	acked := 0
	for acked < total {
		n := batch
		if total-acked < n {
			n = total - acked
		}
		specs := make([]proto.TaskSpec, n)
		for i := range specs {
			// Destinations cycle a small window so the MemFS footprint
			// stays flat no matter how many tasks the soak runs.
			specs[i] = *copySpec(data, "mem://", fmt.Sprintf("s/%d", i%64))
		}
		resp := d.Handle(peerCtl(), &proto.Request{Op: proto.OpSubmitBatch, Tasks: specs})
		if resp.Status != proto.Success {
			return fmt.Errorf("soak batch: %s", resp.Error)
		}
		for _, sr := range resp.Results {
			if sr.Status == uint32(proto.Success) {
				acked++
			}
		}
		// Keep the backlog bounded: drain before the next burst once
		// the pipeline holds a few batches.
		for {
			m, err := transferStats(d)
			if err != nil {
				return err
			}
			if int(m.Finished+m.Failed+m.Cancelled) >= acked-4*batch {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(waitBudget)
	var m *proto.TransferMetrics
	for {
		m, err = transferStats(d)
		if err != nil {
			return err
		}
		if int(m.Finished+m.Failed+m.Cancelled) >= acked || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()

	res.logf("soak: acked=%d finished=%d failed=%d cancelled=%d",
		acked, m.Finished, m.Failed, m.Cancelled)
	res.check("soak-clean", acked == total && int(m.Finished) == acked && m.Failed == 0 && m.Cancelled == 0,
		"acked=%d finished=%d failed=%d", acked, m.Finished, m.Failed)
	if r.Measure {
		t := metrics.NewTable("Scenario soak — measured (nondeterministic)",
			"Metric", "Value")
		t.AddRow("tasks", acked)
		t.AddRow("tasks/s", fmt.Sprintf("%.0f", float64(acked)/elapsed))
		t.AddRow("moved MiB", fmt.Sprintf("%.1f", float64(m.MovedBytes)/mib))
		res.Tables = append(res.Tables, t)
	}
	return nil
}
