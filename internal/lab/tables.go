package lab

import (
	"fmt"

	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/simnet"
	"github.com/ngioproject/norns-go/internal/workload"
)

const (
	mib = float64(1 << 20)
	gib = float64(1 << 30)
)

// modelRPCCounts mirrors the paper's figure 6/7 sweep of RPCs kept in
// flight per client.
var modelRPCCounts = []int{1, 2, 4, 8, 16}

// modelTable runs the scenario's transfer shape through the
// discrete-event fabric — virtual clock, capped-resource water-filling
// — and renders the fig-6/7-shaped aggregate-goodput sweep. It is a
// pure function of (spec, seed): no wall-clock anywhere, so two runs
// from one seed emit byte-identical tables.
func modelTable(spec *Spec, seed int64) (*metrics.Table, error) {
	arrival, err := spec.Arrival.Build()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Scenario %s — modeled aggregate goodput (link %.0f GiB/s, per-client cap %.1f GiB/s)",
			spec.Name, modelLinkBW/gib, modelClientCap/gib),
		"Clients", "RPCs", "Aggregate MiB/s")
	for clients := 1; clients <= spec.Nodes; clients *= 2 {
		for _, rpcs := range modelRPCCounts {
			agg := modelRun(spec, arrival, seed, clients, rpcs)
			t.AddRow(clients, rpcs, fmt.Sprintf("%.1f", agg/mib))
		}
	}
	return t, nil
}

const (
	// modelLinkBW / modelClientCap shape the fabric like the paper's
	// testbed: a fat target link shared by capped clients, so aggregate
	// goodput climbs linearly with clients until the link saturates.
	modelLinkBW    = 16 * gib
	modelClientCap = 1.7 * gib
	modelLatency   = 0.0009 // seconds per RPC round trip
)

// modelRun simulates clients nodes pushing the scenario's task
// payloads into one target: each client is a sequential chain of
// transfers (one flow at a time, per-flow capped, rpcs RPCs in flight
// amortizing latency), clients run concurrently from arrival-staggered
// start offsets, and all flows share the target's water-filled link.
// Returns aggregate goodput in bytes/sec. Pure virtual time; the
// seeded RNG reproduces the same schedule every run.
func modelRun(spec *Spec, arrival workload.Arrival, seed int64, clients, rpcs int) float64 {
	eng := sim.NewEngine()
	fab := simnet.NewFabric(eng, modelLinkBW, modelClientCap, modelLatency)
	rng := sim.NewRNG(seed)

	tasks := spec.Tasks
	if tasks < clients {
		tasks = clients
	}
	perClient := (tasks + clients - 1) / clients
	bytes := float64(spec.PayloadBytes)
	if bytes <= 0 {
		bytes = 64 * mib
	}
	starts := arrival.Times(rng, clients)

	var last float64
	var moved float64
	for c := 0; c < clients; c++ {
		var step func(i int)
		step = func(i int) {
			if i >= perClient {
				return
			}
			fab.Transfer("target", bytes, rpcs, func(elapsed float64) {
				moved += bytes
				if end := eng.Now(); end > last {
					last = end
				}
				step(i + 1)
			})
		}
		eng.At(starts[c], func() { step(0) })
	}
	eng.Run()
	if last <= 0 {
		return 0
	}
	return moved / last
}

// faultTimeline renders the scenario's declared fault schedule as a
// deterministic table, so the bundle's artifacts state what was
// injected without parsing the spec.
func faultTimeline(spec *Spec) *metrics.Table {
	t := metrics.NewTable("Scenario "+spec.Name+" — fault schedule",
		"Fault", "Parameters")
	for _, f := range spec.Faults {
		var p string
		switch f.Kind {
		case "crash":
			p = fmt.Sprintf("freeze journal after %d segment checkpoints", f.AfterSegments)
		case "partition":
			p = fmt.Sprintf("cut after %d tasks, heal after %d", f.CutAfterTasks, f.HealAfterTasks)
		case "slow-disk":
			p = fmt.Sprintf("delay every write %d ms", f.WriteDelayMS)
		case "stall":
			p = fmt.Sprintf("first write hangs %d ms", f.StallMS)
		case "skew":
			p = fmt.Sprintf("victim deadline %d ms", f.DeadlineMS)
		case "flaky":
			p = fmt.Sprintf("endpoint fails its first %d fabric calls", f.FailCalls)
		case "disk-full":
			p = "journal WAL rejects every write until healed"
		default:
			p = "?"
		}
		t.AddRow(f.Kind, p)
	}
	if len(spec.Faults) == 0 {
		t.AddRow("none", "fault-free baseline")
	}
	return t
}
