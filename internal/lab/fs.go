package lab

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ngioproject/norns-go/internal/storage"
)

// faultFS wraps a dataspace backend with disk-fault injection and byte
// accounting. It implements the random-access capabilities by
// delegation but deliberately NOT RangeCopier: the kernel copy offload
// would bypass the wrapper (and the delays), so all bytes flow through
// the counted WriteAt path — which is also what makes the
// crash-recovery "re-copies only the missing segments" assertion
// byte-exact.
type faultFS struct {
	inner storage.FS

	// writeDelay throttles every positional write; stallOnce hangs the
	// first write only (the blocked-disk head-of-line scenario).
	writeDelay time.Duration
	stallOnce  time.Duration
	stalled    atomic.Bool

	// written counts bytes through WriteAt handles and Create streams.
	written atomic.Int64
}

var (
	_ storage.FS            = (*faultFS)(nil)
	_ storage.RandomReadFS  = (*faultFS)(nil)
	_ storage.RandomWriteFS = (*faultFS)(nil)
)

func newFaultFS(inner storage.FS, writeDelay, stallOnce time.Duration) *faultFS {
	return &faultFS{inner: inner, writeDelay: writeDelay, stallOnce: stallOnce}
}

func (f *faultFS) delay() {
	if f.stallOnce > 0 && f.stalled.CompareAndSwap(false, true) {
		time.Sleep(f.stallOnce)
	}
	if f.writeDelay > 0 {
		time.Sleep(f.writeDelay)
	}
}

func (f *faultFS) Create(path string) (io.WriteCloser, error) {
	w, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultWriter{f: f, w: w}, nil
}

func (f *faultFS) Open(path string) (io.ReadCloser, error)        { return f.inner.Open(path) }
func (f *faultFS) Stat(path string) (storage.FileInfo, error)     { return f.inner.Stat(path) }
func (f *faultFS) Remove(path string) error                       { return f.inner.Remove(path) }
func (f *faultFS) RemoveAll(path string) error                    { return f.inner.RemoveAll(path) }
func (f *faultFS) List(prefix string) ([]storage.FileInfo, error) { return f.inner.List(prefix) }
func (f *faultFS) Usage() (int64, error)                          { return f.inner.Usage() }

func (f *faultFS) OpenReaderAt(path string) (storage.ReaderAtCloser, error) {
	rr, ok := f.inner.(storage.RandomReadFS)
	if !ok {
		return nil, storage.ErrNotExist
	}
	return rr.OpenReaderAt(path)
}

func (f *faultFS) OpenWriterAt(path string, size int64) (storage.WriterAtCloser, error) {
	rw, ok := f.inner.(storage.RandomWriteFS)
	if !ok {
		return nil, storage.ErrReadOnly
	}
	w, err := rw.OpenWriterAt(path, size)
	if err != nil {
		return nil, err
	}
	return &faultWriterAt{f: f, w: w}, nil
}

// faultWriter throttles a sequential Create stream.
type faultWriter struct {
	f *faultFS
	w io.WriteCloser
	// mu keeps the delay and the write atomic per chunk.
	mu sync.Mutex
}

func (w *faultWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.f.delay()
	n, err := w.w.Write(p)
	w.f.written.Add(int64(n))
	return n, err
}

func (w *faultWriter) Close() error { return w.w.Close() }

// faultWriterAt throttles a random-access handle. WriteAt stays safe
// for concurrent disjoint ranges — the delay needs no lock.
type faultWriterAt struct {
	f *faultFS
	w storage.WriterAtCloser
}

func (w *faultWriterAt) WriteAt(p []byte, off int64) (int, error) {
	w.f.delay()
	n, err := w.w.WriteAt(p, off)
	w.f.written.Add(int64(n))
	return n, err
}

func (w *faultWriterAt) Close() error { return w.w.Close() }
