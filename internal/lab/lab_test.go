package lab

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// runScenario executes one built-in scenario and fails the test on any
// assertion failure, printing the normalized log for diagnosis.
func runScenario(t *testing.T, name string, seed int64) *Result {
	t.Helper()
	spec := ByName(name)
	if spec == nil {
		t.Fatalf("unknown scenario %q", name)
	}
	r := &Runner{Seed: seed, WorkDir: t.TempDir()}
	res, err := r.Run(spec)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !res.Passed {
		t.Fatalf("%s failed:\n%s", name, strings.Join(res.Log, "\n"))
	}
	return res
}

func TestCrashScenario(t *testing.T) {
	res := runScenario(t, "crash-mid-transfer", 7)
	// The headline acceptance property, pinned explicitly: the restart
	// re-copied exactly the segments the frozen journal missed.
	var sawResume bool
	for _, line := range res.Log {
		if strings.Contains(line, "assert resume-exact: ok") {
			sawResume = true
		}
	}
	if !sawResume {
		t.Fatalf("resume-exact not asserted:\n%s", strings.Join(res.Log, "\n"))
	}
}

func TestPartitionScenario(t *testing.T) { runScenario(t, "peer-partition", 7) }
func TestSlowDiskScenario(t *testing.T)  { runScenario(t, "slow-disk", 7) }
func TestSkewScenario(t *testing.T)      { runScenario(t, "skewed-deadlines", 7) }
func TestGovernorScenario(t *testing.T)  { runScenario(t, "governor-cap", 7) }
func TestAutotuneScenario(t *testing.T)  { runScenario(t, "autotune-converges", 7) }
func TestEventsScenario(t *testing.T)    { runScenario(t, "terminal-events", 7) }

func TestSoakScenarioShort(t *testing.T) {
	spec := ByName("soak")
	r := &Runner{Seed: 7, TaskOverride: 500, WorkDir: t.TempDir()}
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("soak failed:\n%s", strings.Join(res.Log, "\n"))
	}
}

// TestDeterministicReplay is the replay contract: two runs from one
// seed produce identical normalized logs and identical model tables.
func TestDeterministicReplay(t *testing.T) {
	for _, name := range []string{"crash-mid-transfer", "peer-partition", "skewed-deadlines"} {
		a := runScenario(t, name, 99)
		b := runScenario(t, name, 99)
		if !reflect.DeepEqual(a.Log, b.Log) {
			t.Fatalf("%s: logs diverged:\n--- run1\n%s\n--- run2\n%s",
				name, strings.Join(a.Log, "\n"), strings.Join(b.Log, "\n"))
		}
		ja, _ := json.Marshal(a.Tables)
		jb, _ := json.Marshal(b.Tables)
		if string(ja) != string(jb) {
			t.Fatalf("%s: tables diverged", name)
		}
	}
}

// TestSpecRoundTrip: a Spec is pure data and survives JSON unchanged —
// what the repro bundle depends on.
func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range Scenarios() {
		buf, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*spec, back) {
			t.Fatalf("%s: round trip changed the spec", spec.Name)
		}
	}
}

// TestBundleOnFailure: an undeliverable assertion fails the run and the
// bundle carries the spec, seed, log and replay command.
func TestBundleOnFailure(t *testing.T) {
	spec := &Spec{
		Name: "always-fails", Class: "events",
		Nodes: 1, Tasks: 2, PayloadBytes: 128,
		Assert: []string{"terminal-events", "not-a-real-assertion"},
	}
	r := &Runner{Seed: 3, WorkDir: t.TempDir()}
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("run with an unevaluated assertion passed")
	}
	dir := filepath.Join(t.TempDir(), "bundle")
	if err := WriteBundle(dir, res); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, "scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Replay string `json:"replay"`
		Result struct {
			Seed int64 `json:"seed"`
			Spec *Spec `json:"spec"`
		} `json:"result"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Replay != "norns-lab -run always-fails -seed 3" || doc.Result.Seed != 3 {
		t.Fatalf("bundle replay = %q seed = %d", doc.Replay, doc.Result.Seed)
	}
	if _, err := os.Stat(filepath.Join(dir, "log.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownClassRejected(t *testing.T) {
	r := &Runner{Seed: 1}
	if _, err := r.Run(&Spec{Name: "x", Class: "nope"}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestByNameAndClass(t *testing.T) {
	if ByName("no-such") != nil {
		t.Fatal("ByName invented a scenario")
	}
	if got := ByClass("crash"); len(got) != 1 || got[0].Name != "crash-mid-transfer" {
		t.Fatalf("ByClass(crash) = %v", got)
	}
}
