package lab

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
	"github.com/ngioproject/norns-go/internal/urd"
)

// waitBudget bounds every terminal wait. A lapse is a genuine scenario
// failure (it produces a repro bundle), never silently absorbed.
const waitBudget = 60 * time.Second

// Result is one scenario run. Log and the model tables are the
// deterministic surface: pure functions of (Spec, Seed). Measured
// tables (opt-in) carry wall-clock numbers and are excluded from it.
type Result struct {
	Spec   *Spec `json:"spec"`
	Seed   int64 `json:"seed"`
	Passed bool  `json:"passed"`
	// Log is the normalized scenario transcript: counts, classified
	// error categories, assertion verdicts. Never timings.
	Log      []string `json:"log"`
	Failures []string `json:"failures,omitempty"`
	// Tables holds the deterministic model tables plus, when
	// Runner.Measure is set, wall-clock measured tables.
	Tables []*metrics.Table `json:"-"`
	// StateDir is the journal directory of crash-class scenarios,
	// preserved for the repro bundle ("" otherwise).
	StateDir string `json:"state_dir,omitempty"`

	asserted map[string]bool
}

func (r *Result) logf(format string, args ...any) {
	r.Log = append(r.Log, fmt.Sprintf(format, args...))
}

// okf records a passed assertion.
func (r *Result) okf(name, format string, args ...any) {
	r.asserted[name] = true
	detail := fmt.Sprintf(format, args...)
	if detail != "" {
		detail = " (" + detail + ")"
	}
	r.logf("assert %s: ok%s", name, detail)
}

// failf records a failed assertion.
func (r *Result) failf(name, format string, args ...any) {
	r.asserted[name] = true
	msg := fmt.Sprintf(format, args...)
	r.Failures = append(r.Failures, name+": "+msg)
	r.logf("assert %s: FAIL %s", name, msg)
}

// check folds a boolean into ok/fail.
func (r *Result) check(name string, ok bool, format string, args ...any) {
	if ok {
		r.okf(name, format, args...)
	} else {
		r.failf(name, format, args...)
	}
}

// Runner executes scenarios.
type Runner struct {
	// Seed drives every random choice; same seed, same Result.Log.
	Seed int64
	// Measure adds wall-clock measured tables (excluded from the
	// deterministic surface).
	Measure bool
	// TaskOverride overrides Spec.Tasks for soak-class scenarios
	// (<=0: use the spec), so CI can run a short soak and the nightly
	// job a millions-of-tasks one from the same spec.
	TaskOverride int
	// WorkDir hosts scratch state (journal dirs); "" uses a temp dir
	// removed on success and kept inside the repro bundle on failure.
	WorkDir string
}

// scenarioFunc is one class implementation.
type scenarioFunc func(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error

var classFuncs = map[string]scenarioFunc{
	"crash":             runCrash,
	"partition":         runPartition,
	"slow-disk":         runSlowDisk,
	"skew":              runSkew,
	"governor":          runGovernor,
	"autotune":          runAutotune,
	"events":            runEvents,
	"soak":              runSoak,
	"warm-cache":        runWarmCache,
	"flaky-endpoint":    runFlakyEndpoint,
	"journal-disk-full": runJournalDiskFull,
	"sigterm-drain":     runSigtermDrain,
}

// Run executes one scenario and returns its result. The error return
// covers harness breakage (bad spec, temp dir failure); scenario
// assertion failures land in Result.Failures with Passed=false.
func (r *Runner) Run(spec *Spec) (*Result, error) {
	fn, ok := classFuncs[spec.Class]
	if !ok {
		return nil, fmt.Errorf("lab: unknown scenario class %q", spec.Class)
	}
	res := &Result{Spec: spec, Seed: r.Seed, asserted: make(map[string]bool)}
	res.logf("scenario %s class=%s seed=%d tasks=%d", spec.Name, spec.Class, r.Seed, r.tasks(spec))

	model, err := modelTable(spec, r.Seed)
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, model, faultTimeline(spec))

	rng := sim.NewRNG(r.Seed)
	if err := fn(r, spec, rng, res); err != nil {
		return nil, err
	}

	// Every assertion the spec declares must have been evaluated — a
	// scenario that silently skips a check would read as green.
	for _, name := range spec.Assert {
		if !res.asserted[name] {
			res.failf(name, "assertion declared by the spec but never evaluated")
		}
	}
	res.Passed = len(res.Failures) == 0
	res.logf("result: %s", map[bool]string{true: "PASS", false: "FAIL"}[res.Passed])
	return res, nil
}

// tasks resolves the effective task count.
func (r *Runner) tasks(spec *Spec) int {
	if spec.Class == "soak" && r.TaskOverride > 0 {
		return r.TaskOverride
	}
	if spec.Tasks > 0 {
		return spec.Tasks
	}
	return 8
}

// scratchDir returns a scenario-private scratch directory.
func (r *Runner) scratchDir(spec *Spec) (string, error) {
	if r.WorkDir != "" {
		dir := r.WorkDir + "/" + spec.Name
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
		return dir, nil
	}
	return os.MkdirTemp("", "norns-lab-"+spec.Name+"-")
}

// ---- daemon plumbing ----------------------------------------------------

func peerCtl() transport.PeerInfo { return transport.PeerInfo{Control: true} }

// register adds a dataspace via the daemon's real handler path (so it
// is journaled like production registrations).
func register(d *urd.Daemon, spec *proto.DataspaceSpec) error {
	resp := d.Handle(peerCtl(), &proto.Request{Op: proto.OpRegisterDataspace, Dataspace: spec})
	if resp.Status != proto.Success {
		return fmt.Errorf("lab: register %s: %s", spec.ID, resp.Error)
	}
	return nil
}

// waitTask blocks until the task is terminal (driving the daemon's
// lazy deadline enforcement, exactly like a remote client would).
func waitTask(d *urd.Daemon, id uint64, timeout time.Duration) (proto.TaskStats, error) {
	resp := d.Handle(peerCtl(), &proto.Request{
		Op: proto.OpWait, TaskID: id, TimeoutMS: timeout.Milliseconds(),
	})
	if resp.Status != proto.Success || resp.Stats == nil {
		return proto.TaskStats{}, fmt.Errorf("wait task %d: status=%v %s", id, resp.Status, resp.Error)
	}
	return *resp.Stats, nil
}

// transferStats fetches the daemon's aggregate terminal counters.
func transferStats(d *urd.Daemon) (*proto.TransferMetrics, error) {
	resp := d.Handle(peerCtl(), &proto.Request{Op: proto.OpTransferStats})
	if resp.Status != proto.Success || resp.Metrics == nil {
		return nil, fmt.Errorf("transfer stats: status=%v %s", resp.Status, resp.Error)
	}
	return resp.Metrics, nil
}

// payload derives deterministic task content from the scenario RNG.
func payload(rng *sim.RNG, n int64) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(rng.Intn(256))
	}
	return buf
}

// classify maps a task error to a stable category for the normalized
// log, so transient message details never break determinism.
func classify(errMsg string) string {
	switch {
	case errMsg == "":
		return ""
	case strings.Contains(errMsg, "deadline"):
		return "deadline"
	case strings.Contains(errMsg, "partition"):
		return "partition"
	case strings.Contains(errMsg, "cancel"):
		return "cancelled"
	default:
		return "other"
	}
}

// summarize renders terminal outcomes as deterministic log lines:
// status counts plus sorted error-category counts.
func summarize(res *Result, label string, stats []proto.TaskStats) {
	var fin, fail, canc int
	cats := map[string]int{}
	for _, st := range stats {
		switch task.Status(st.Status) {
		case task.Finished:
			fin++
		case task.Failed:
			fail++
			cats[classify(st.Err)]++
		case task.Cancelled:
			canc++
		}
	}
	res.logf("%s: terminal=%d finished=%d failed=%d cancelled=%d",
		label, len(stats), fin, fail, canc)
	if len(cats) > 0 {
		keys := make([]string, 0, len(cats))
		for k := range cats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, cats[k])
		}
		res.logf("%s errors: %s", label, strings.Join(parts, " "))
	}
}
