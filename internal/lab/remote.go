package lab

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/ngioproject/norns-go/internal/cascache"
	"github.com/ngioproject/norns-go/internal/mercury"
	"github.com/ngioproject/norns-go/internal/storage"
	"github.com/ngioproject/norns-go/internal/transfer"
)

// errPartitioned is the stable failure every remote op reports while
// the fabric is cut; the partition scenario's log classifier matches on
// "partition".
var errPartitioned = errors.New("lab: partition: peer unreachable")

// labRemote implements transfer.Remote over in-memory peer nodes with a
// switchable partition — the fault-injecting transport shim. It stands
// in for the mercury network manager via urd.Hooks.Remote, so the real
// executor, plugins and journal run unmodified while the "network" is
// a map of MemFSes the scenario owns.
type labRemote struct {
	partitioned atomic.Bool
	sent        atomic.Int64 // bytes acknowledged to senders
	pulled      atomic.Int64 // bytes served to pullers over the "fabric"

	mu    sync.Mutex
	peers map[string]*storage.MemFS
}

var (
	_ transfer.Remote       = (*labRemote)(nil)
	_ transfer.DigestRemote = (*labRemote)(nil)
)

func newLabRemote(peers ...string) *labRemote {
	r := &labRemote{peers: make(map[string]*storage.MemFS)}
	for _, p := range peers {
		r.peers[p] = storage.NewMemFS()
	}
	return r
}

// cut and heal flip the partition.
func (r *labRemote) cut()  { r.partitioned.Store(true) }
func (r *labRemote) heal() { r.partitioned.Store(false) }

func (r *labRemote) peer(node string) (*storage.MemFS, error) {
	if r.partitioned.Load() {
		return nil, errPartitioned
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fs, ok := r.peers[node]
	if !ok {
		return nil, fmt.Errorf("lab: unknown peer %q", node)
	}
	return fs, nil
}

func (r *labRemote) SendFile(node, dstDataspace, dstPath string, src mercury.BulkProvider) (int64, error) {
	fs, err := r.peer(node)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, src.Size())
	if _, err := src.ReadAt(buf, 0); err != nil && err != io.EOF {
		return 0, err
	}
	// Re-check mid-transfer: a partition that lands while bytes are in
	// flight must fail the send, not be absorbed by buffering.
	if r.partitioned.Load() {
		return 0, errPartitioned
	}
	if err := fs.WriteFile(dstPath, buf); err != nil {
		return 0, err
	}
	r.sent.Add(int64(len(buf)))
	return int64(len(buf)), nil
}

func (r *labRemote) OpenFile(node, srcDataspace, srcPath string) (transfer.RemoteFile, error) {
	fs, err := r.peer(node)
	if err != nil {
		return nil, err
	}
	data, err := fs.ReadFile(srcPath)
	if err != nil {
		return nil, err
	}
	return &labRemoteFile{r: r, data: data}, nil
}

// OpenFileDigested implements transfer.DigestRemote: the same snapshot
// open as OpenFile, plus per-segment SHA-256 digests — what the warm-
// cache scenario's staging cache keys on.
func (r *labRemote) OpenFileDigested(node, srcDataspace, srcPath string, segSize int64) (transfer.RemoteFile, [][]byte, error) {
	rf, err := r.OpenFile(node, srcDataspace, srcPath)
	if err != nil {
		return nil, nil, err
	}
	f := rf.(*labRemoteFile)
	digests, err := cascache.HashSegments(bytes.NewReader(f.data), int64(len(f.data)), segSize)
	if err != nil {
		return nil, nil, err
	}
	return rf, digests, nil
}

func (r *labRemote) StatFile(node, srcDataspace, srcPath string) (int64, error) {
	fs, err := r.peer(node)
	if err != nil {
		return 0, err
	}
	info, err := fs.Stat(srcPath)
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}

// labRemoteFile serves segment pulls from a snapshot of the peer file.
type labRemoteFile struct {
	r    *labRemote
	data []byte
}

func (f *labRemoteFile) Size() int64      { return int64(len(f.data)) }
func (f *labRemoteFile) Concurrent() bool { return true }

func (f *labRemoteFile) PullRange(stream int, off, count int64, dst mercury.BulkProvider) (int64, error) {
	if f.r.partitioned.Load() {
		return 0, errPartitioned
	}
	if off < 0 || off > int64(len(f.data)) {
		return 0, fmt.Errorf("lab: pull range [%d,+%d) out of bounds", off, count)
	}
	end := off + count
	if end > int64(len(f.data)) {
		end = int64(len(f.data))
	}
	n, err := dst.WriteAt(f.data[off:end], 0)
	f.r.pulled.Add(int64(n))
	return int64(n), err
}

func (f *labRemoteFile) Close() error { return nil }
