package lab

import (
	"fmt"
	"sync"
	"time"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
	"github.com/ngioproject/norns-go/internal/urd"
)

// eventCollector subscribes to an explicit task set through the real
// event hub (via the daemon's in-process handler) and records each
// task's terminal event. Explicit subscriptions matter: the hub
// guarantees terminal events of explicitly subscribed tasks are
// admitted past the queue bound, so "a terminal event for every task"
// is an invariant the lab can assert, not a best-effort hope.
type eventCollector struct {
	peer *transport.InProcPeer

	mu        sync.Mutex
	terminals map[uint64]task.Status
	extra     int // terminal events beyond the first per task
	cond      *sync.Cond
}

// collectTerminals opens the subscription. Call after submission —
// subscribe-time terminal snapshots cover tasks that already finished.
func collectTerminals(d *urd.Daemon, ids []uint64) (*eventCollector, error) {
	c := &eventCollector{terminals: make(map[uint64]task.Status, len(ids))}
	c.cond = sync.NewCond(&c.mu)
	c.peer = transport.NewInProcPeer(func(resp *proto.Response) {
		if !resp.HasEvent || resp.Event.Kind != uint32(proto.EvState) || !resp.Event.HasStats {
			return
		}
		st := task.Status(resp.Event.Stats.Status)
		if !st.Terminal() {
			return
		}
		c.mu.Lock()
		if _, dup := c.terminals[resp.Event.TaskID]; dup {
			c.extra++
		} else {
			c.terminals[resp.Event.TaskID] = st
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	resp := d.Handle(c.peer.Info(), &proto.Request{
		Op:        proto.OpSubscribe,
		Subscribe: &proto.SubscribeSpec{TaskIDs: ids, TerminalOnly: true},
	})
	if resp.Status != proto.Success {
		c.peer.Close()
		return nil, fmt.Errorf("lab: subscribe failed: %s", resp.Error)
	}
	return c, nil
}

// waitTerminals blocks until want tasks have reported terminal events
// or the timeout lapses, returning the count observed.
func (c *eventCollector) waitTerminals(want int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.terminals) < want && time.Now().Before(deadline) {
		c.cond.Wait()
	}
	return len(c.terminals)
}

// snapshot returns the terminal map and the duplicate count.
func (c *eventCollector) snapshot() (map[uint64]task.Status, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]task.Status, len(c.terminals))
	for id, st := range c.terminals {
		out[id] = st
	}
	return out, c.extra
}

func (c *eventCollector) close() { c.peer.Close() }
