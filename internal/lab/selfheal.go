package lab

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/storage"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/urd"
)

// This file holds the self-healing scenario classes: flaky-endpoint
// (task retry + fabric circuit breakers), journal-disk-full (degrade
// mode sheds submissions, heals on probe), and sigterm-drain (graceful
// drain seals a clean-shutdown marker the restart replays from).
//
// Determinism note: retry timing, breaker failure counters and attempt
// totals are wall-clock dependent, so — like the governor's measured
// numbers — they feed the log only as booleans ("a retry happened:
// yes/no"), never as rendered counts.

// statusInfo fetches the daemon's OpStatus block.
func statusInfo(d *urd.Daemon) (*proto.DaemonStatus, error) {
	resp := d.Handle(peerCtl(), &proto.Request{Op: proto.OpStatus})
	if resp.Status != proto.Success || resp.StatusInfo == nil {
		return nil, fmt.Errorf("lab: status: %s", resp.Error)
	}
	return resp.StatusInfo, nil
}

// runFlakyEndpoint stands up two daemons on a real loopback fabric and
// makes the submitter's first K outbound fabric calls fail with a
// transient transport error. The retry machinery must land every task
// anyway, and the endpoint's circuit breaker must be observed tripping
// while the endpoint is sick and re-closing once it heals.
func runFlakyEndpoint(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	fault := spec.fault("flaky")
	if fault == nil || fault.FailCalls <= 0 {
		return fmt.Errorf("lab: flaky-endpoint scenario needs a flaky fault with fail_calls")
	}

	resolver := urd.NewStaticResolver()
	peer, err := urd.New(urd.Config{
		NodeName: "peer-b", Workers: 1, TransferStreams: 1,
		SegmentSize: spec.segmentSize(),
		Fabric:      "ofi+tcp", Resolver: resolver,
	})
	if err != nil {
		return err
	}
	defer peer.Close()
	resolver.Set("peer-b", peer.FabricAddr())
	if err := register(peer, &proto.DataspaceSpec{ID: "rmt://", Backend: uint32(1)}); err != nil {
		return err
	}

	// The fault hook fires on every outbound call the submitter makes
	// (after the breaker gate, so open-breaker fast-fails never consume
	// a count): the first FailCalls calls die with a transient error,
	// then the endpoint is healthy forever.
	var calls atomic.Int64
	d, err := urd.New(urd.Config{
		NodeName: "lab-flaky", Workers: 1, TransferStreams: 1,
		SegmentSize: spec.segmentSize(),
		Fabric:      "ofi+tcp", Resolver: resolver,
		// A generous per-task budget with a short base backoff: the
		// schedule must outlast the breaker's open windows.
		RetryMax: 12, RetryBackoff: 5 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 20 * time.Millisecond,
		Hooks: urd.Hooks{
			FabricFault: func(addr, name string) error {
				if calls.Add(1) <= int64(fault.FailCalls) {
					return fmt.Errorf("lab: flaky endpoint: %w", syscall.ECONNRESET)
				}
				return nil
			},
		},
	})
	if err != nil {
		return err
	}
	defer d.Close()

	var stats []proto.TaskStats
	var retries uint64
	allFin := true
	for i := 0; i < spec.Tasks; i++ {
		ts := &proto.TaskSpec{
			Kind:   uint32(task.Copy),
			Input:  proto.FromResource(task.MemoryRegion(payload(rng, spec.PayloadBytes))),
			Output: proto.FromResource(task.RemotePosixPath("peer-b", "rmt://", fmt.Sprintf("f/%d", i))),
		}
		id, err := d.Submit(ts, 0, true)
		if err != nil {
			return err
		}
		st, err := waitTask(d, id, waitBudget)
		if err != nil {
			return err
		}
		stats = append(stats, st)
		if task.Status(st.Status) != task.Finished {
			allFin = false
		}
		retries += st.Attempts
	}
	summarize(res, "flaky", stats)
	res.check("retry-completes", allFin,
		"all %d tasks finished despite %d injected call failures", len(stats), fault.FailCalls)
	res.check("retry-attempted", retries > 0,
		"at least one retry attempt was consumed: %v", retries > 0)

	st, err := statusInfo(d)
	if err != nil {
		return err
	}
	var trips uint64
	reclosed := len(st.Breakers) > 0
	for _, b := range st.Breakers {
		trips += b.Trips
		if b.State != "closed" {
			reclosed = false
		}
	}
	res.logf("breakers: endpoints=%d tripped=%v all-closed=%v",
		len(st.Breakers), trips > 0, reclosed)
	res.check("breaker-trips", trips > 0,
		"the endpoint's breaker opened while it was sick: %v", trips > 0)
	res.check("breaker-recloses", reclosed,
		"every breaker closed again after the heal: %v", reclosed)
	return nil
}

// runJournalDiskFull fills the journal's WAL disk mid-flight: already
// admitted tasks must still reach terminal states, new submissions must
// shed with the retryable EUnavailable, the health probe must report
// not-ready, and clearing the fault must bring the daemon back through
// its journal probe loop.
func runJournalDiskFull(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	fault := spec.fault("disk-full")
	if fault == nil {
		return fmt.Errorf("lab: journal-disk-full scenario needs a disk-full fault")
	}
	dir, err := r.scratchDir(spec)
	if err != nil {
		return err
	}
	stateDir := filepath.Join(dir, "state")
	res.StateDir = stateDir

	// The destination writes are throttled so the admitted tasks are
	// still in flight when the WAL fault lands.
	d, err := urd.New(urd.Config{
		NodeName: "lab-full", Workers: 1, TransferStreams: 1,
		SegmentSize: spec.segmentSize(), StateDir: stateDir, DisableOffload: true,
		JournalProbeInterval: 10 * time.Millisecond,
		Hooks: urd.Hooks{
			WrapFS: func(id string, fs storage.FS) storage.FS {
				if id != "disk://" {
					return fs
				}
				return newFaultFS(fs, time.Duration(fault.WriteDelayMS)*time.Millisecond, 0)
			},
		},
	})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := register(d, &proto.DataspaceSpec{ID: "disk://", Backend: uint32(1)}); err != nil {
		return err
	}

	var ids []uint64
	for i := 0; i < spec.Tasks; i++ {
		id, err := d.Submit(copySpec(payload(rng, spec.PayloadBytes), "disk://", fmt.Sprintf("p/%d", i)), 0, true)
		if err != nil {
			return err
		}
		ids = append(ids, id)
	}

	// The disk "fills": every WAL write now fails sticky.
	d.Journal().SetFailWrites(errors.New("lab: disk full"))

	// New submissions must shed immediately with the retryable status —
	// the very first one rides the failed journal append, later ones the
	// sticky degraded flag.
	shed := 0
	for i := 0; i < 2; i++ {
		resp := d.Handle(peerCtl(), &proto.Request{
			Op: proto.OpSubmit, Task: copySpec(payload(rng, 1<<10), "disk://", fmt.Sprintf("shed/%d", i)),
		})
		if resp.Status == proto.EUnavailable {
			shed++
		}
	}
	res.check("sheds-unavailable", shed == 2,
		"%d of 2 submissions during the fault shed with EUnavailable", shed)

	// Everything admitted before the fault still runs to terminal: the
	// degrade mode is read-only, not dead.
	var stats []proto.TaskStats
	allFin := true
	for _, id := range ids {
		st, err := waitTask(d, id, waitBudget)
		if err != nil {
			return err
		}
		stats = append(stats, st)
		if task.Status(st.Status) != task.Finished {
			allFin = false
		}
	}
	summarize(res, "pre-fault", stats)
	res.check("pre-fault-terminal", allFin,
		"all %d pre-fault tasks reached terminal states during degrade mode", len(stats))

	health := d.Handle(peerCtl(), &proto.Request{Op: proto.OpHealth})
	res.check("degraded-health", health.Status == proto.EUnavailable,
		"OpHealth reports not-ready while degraded: %v", health.Status == proto.EUnavailable)

	// The disk heals; the probe loop must lift degrade mode and the
	// daemon must accept (and finish) new work again.
	d.Journal().SetFailWrites(nil)
	recovered := false
	deadline := time.Now().Add(waitBudget)
	for time.Now().Before(deadline) {
		if d.Handle(peerCtl(), &proto.Request{Op: proto.OpHealth}).Status == proto.Success {
			recovered = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	postOK := false
	if recovered {
		id, err := d.Submit(copySpec(payload(rng, spec.PayloadBytes), "disk://", "post-heal"), 0, true)
		if err != nil {
			return err
		}
		st, err := waitTask(d, id, waitBudget)
		if err != nil {
			return err
		}
		postOK = task.Status(st.Status) == task.Finished
	}
	res.check("recovers", recovered && postOK,
		"probe lifted degrade mode (%v) and a post-heal task finished (%v)", recovered, postOK)
	return nil
}

// runSigtermDrain exercises the graceful-drain path the SIGTERM handler
// drives: the running transfer finishes inside the drain window, queued
// tasks stay journaled Pending, and the clean-shutdown marker lets the
// restarted daemon trust terminal records — re-copying zero bytes of
// the finished transfer.
func runSigtermDrain(r *Runner, spec *Spec, rng *sim.RNG, res *Result) error {
	fault := spec.fault("stall")
	if fault == nil || fault.StallMS <= 0 {
		return fmt.Errorf("lab: sigterm-drain scenario needs a stall fault")
	}
	dir, err := r.scratchDir(spec)
	if err != nil {
		return err
	}
	stateDir := filepath.Join(dir, "state")
	mount := filepath.Join(dir, "data")
	if err := os.MkdirAll(mount, 0o755); err != nil {
		return err
	}
	res.StateDir = stateDir

	// The runner's first write stalls, holding the single worker long
	// enough for the queued tasks to pile up behind it and for the
	// drain to start while it is demonstrably Running.
	d1, err := urd.New(urd.Config{
		NodeName: "lab-drain", Workers: 1, TransferStreams: 1,
		SegmentSize: spec.segmentSize(), StateDir: stateDir, DisableOffload: true,
		Hooks: urd.Hooks{
			WrapFS: func(id string, fs storage.FS) storage.FS {
				if id != "disk://" {
					return fs
				}
				return newFaultFS(fs, 0, time.Duration(fault.StallMS)*time.Millisecond)
			},
		},
	})
	if err != nil {
		return err
	}
	if err := register(d1, &proto.DataspaceSpec{ID: "disk://", Backend: uint32(1), Mount: mount}); err != nil {
		d1.Close()
		return err
	}

	runnerData := payload(rng, spec.PayloadBytes)
	runnerID, err := d1.Submit(copySpec(runnerData, "disk://", "runner.bin"), 0, true)
	if err != nil {
		d1.Close()
		return err
	}
	// The drain must catch the runner mid-transfer, not still queued:
	// wait for the worker to pick it up before pulling the plug.
	deadline := time.Now().Add(waitBudget)
	for {
		resp := d1.Handle(peerCtl(), &proto.Request{Op: proto.OpTaskStatus, TaskID: runnerID})
		if resp.Status == proto.Success && resp.Stats != nil &&
			task.Status(resp.Stats.Status) != task.Pending {
			break
		}
		if time.Now().After(deadline) {
			d1.Close()
			return fmt.Errorf("lab: runner task never started")
		}
		time.Sleep(time.Millisecond)
	}

	var queued []uint64
	for i := 0; i < spec.Tasks-1; i++ {
		id, err := d1.Submit(copySpec(payload(rng, spec.PayloadBytes), "disk://", fmt.Sprintf("q/%d", i)), 0, true)
		if err != nil {
			d1.Close()
			return err
		}
		queued = append(queued, id)
	}

	// SIGTERM: bounded drain. The stalled runner must finish inside the
	// window; the queued tasks must not start.
	d1.Shutdown(waitBudget)
	res.logf("drain: shutdown returned with %d tasks queued behind the runner", len(queued))

	// Restart on the same state dir, counting every byte written to the
	// dataspace: the finished runner must cost zero of them.
	var counter *faultFS
	d2, err := urd.New(urd.Config{
		NodeName: "lab-drain", Workers: 1, TransferStreams: 1,
		SegmentSize: spec.segmentSize(), StateDir: stateDir, DisableOffload: true,
		Hooks: urd.Hooks{
			WrapFS: func(id string, fs storage.FS) storage.FS {
				if id != "disk://" {
					return fs
				}
				counter = newFaultFS(fs, 0, 0)
				return counter
			},
		},
	})
	if err != nil {
		return err
	}
	defer d2.Close()

	rec := d2.Recovered()
	res.logf("recovered: pending=%d running=%d terminal=%d cancelled=%d",
		rec.Pending, rec.Running, rec.Terminal, rec.Cancelled)
	st, err := statusInfo(d2)
	if err != nil {
		return err
	}
	res.check("clean-marker", st.RecoveredClean && rec.Terminal == 1,
		"replay found the clean-shutdown marker (%v) with the drained transfer terminal", st.RecoveredClean)

	// The drained transfer finished before the old daemon exited and its
	// bytes are on disk, byte-exact.
	rst, err := waitTask(d2, runnerID, waitBudget)
	if err != nil {
		return err
	}
	got, rerr := os.ReadFile(filepath.Join(mount, "runner.bin"))
	res.check("drain-finishes-inflight",
		task.Status(rst.Status) == task.Finished && rerr == nil && bytes.Equal(got, runnerData),
		"runner status=%s, destination holds %d of %d payload bytes",
		task.Status(rst.Status), len(got), len(runnerData))

	// Every queued task survived as journaled Pending and completes on
	// the restarted daemon.
	preserved := rec.Requeued() == len(queued)
	var qstats []proto.TaskStats
	for _, id := range queued {
		qst, err := waitTask(d2, id, waitBudget)
		if err != nil {
			return err
		}
		qstats = append(qstats, qst)
		if task.Status(qst.Status) != task.Finished {
			preserved = false
		}
	}
	summarize(res, "requeued", qstats)
	res.check("pending-preserved", preserved,
		"%d queued tasks replayed Pending and finished after the restart", len(queued))

	// The restart re-copies exactly the queued payloads: zero bytes of
	// the drained transfer move again.
	if counter == nil {
		res.failf("zero-recopy", "restarted daemon never rebuilt the disk:// backend")
	} else {
		want := int64(len(queued)) * spec.PayloadBytes
		res.check("zero-recopy", counter.written.Load() == want,
			"restart wrote %d bytes, want exactly the %d queued-task bytes",
			counter.written.Load(), want)
	}
	return nil
}
