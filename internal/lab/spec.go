// Package lab is the deterministic scenario harness: it composes the
// discrete-event kernel (internal/sim) and the capped-resource network
// model (internal/simnet) with the *real* modern daemon (internal/urd —
// registry, shards, journal, governor, tuner, event hub) running on
// in-memory or throwaway on-disk storage behind fault-injecting shims
// (urd.Hooks). A scenario is a declarative Spec — node count, arrival
// pattern, fault schedule, named assertions — and every random choice
// flows from one seeded RNG, so a failing run replays byte-for-byte
// from its seed.
//
// Determinism contract: Result.Log and the model-derived tables are
// pure functions of (Spec, seed). Wall-clock time feeds assertions
// only as booleans ("aggregate under the cap: yes/no"), never as
// rendered numbers; measured tables exist but are opt-in (Measure)
// and excluded from the deterministic surface.
package lab

import (
	"fmt"

	"github.com/ngioproject/norns-go/internal/workload"
)

// ArrivalSpec declares a submit-time pattern in JSON-able form; Build
// resolves it to the workload generator.
type ArrivalSpec struct {
	// Pattern is "constant", "poisson" or "bursty".
	Pattern string `json:"pattern"`
	// Interval is the constant gap in seconds (constant).
	Interval float64 `json:"interval,omitempty"`
	// Rate is tasks/sec (poisson) or bursts/sec (bursty).
	Rate float64 `json:"rate,omitempty"`
	// Burst is tasks per burst, Width the burst smear in seconds.
	Burst int     `json:"burst,omitempty"`
	Width float64 `json:"width,omitempty"`
}

// Build resolves the declaration. An empty pattern means back-to-back
// submission (constant with zero interval).
func (a ArrivalSpec) Build() (workload.Arrival, error) {
	switch a.Pattern {
	case "", "constant":
		return workload.ConstantArrival{Interval: a.Interval}, nil
	case "poisson":
		if a.Rate <= 0 {
			return nil, fmt.Errorf("lab: poisson arrival needs rate > 0")
		}
		return workload.PoissonArrival{Rate: a.Rate}, nil
	case "bursty":
		if a.Rate <= 0 || a.Burst <= 0 {
			return nil, fmt.Errorf("lab: bursty arrival needs rate and burst > 0")
		}
		return workload.BurstyArrival{BurstRate: a.Rate, Size: a.Burst, Width: a.Width}, nil
	default:
		return nil, fmt.Errorf("lab: unknown arrival pattern %q", a.Pattern)
	}
}

// FaultSpec is one entry of a scenario's fault schedule. Kind selects
// the injection point; the other fields parameterize it and are zero
// when irrelevant.
type FaultSpec struct {
	// Kind: "crash" (freeze the journal mid-transfer, as if the process
	// died), "partition" (peer unreachable between two task waves),
	// "slow-disk" (every write delayed), "stall" (the first write hangs
	// once), "skew" (queued tasks carry deadlines that lapse behind the
	// stall — a clock-skewed client's view), "flaky" (the fabric
	// endpoint fails its first N calls then heals), "disk-full" (the
	// journal's WAL disk rejects every write until healed).
	Kind string `json:"kind"`
	// AfterSegments: crash after this many journaled segment
	// checkpoints of the watched transfer.
	AfterSegments int `json:"after_segments,omitempty"`
	// CutAfterTasks / HealAfterTasks bound the partition window in
	// completed-task counts.
	CutAfterTasks  int `json:"cut_after_tasks,omitempty"`
	HealAfterTasks int `json:"heal_after_tasks,omitempty"`
	// WriteDelayMS delays every WriteAt on the wrapped backend.
	WriteDelayMS int64 `json:"write_delay_ms,omitempty"`
	// StallMS hangs the first write once.
	StallMS int64 `json:"stall_ms,omitempty"`
	// DeadlineMS is the victims' task deadline for skew scenarios.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// FailCalls: a flaky endpoint fails its first N outbound fabric
	// calls (RPCs and bulk pulls) before healing permanently.
	FailCalls int `json:"fail_calls,omitempty"`
}

// Spec declares one scenario. All fields are data — a Spec round-trips
// through JSON unchanged, which is what the repro bundle relies on.
type Spec struct {
	Name  string `json:"name"`
	Class string `json:"class"` // crash | partition | slow-disk | skew | governor | autotune | events | soak | warm-cache | flaky-endpoint | journal-disk-full | sigterm-drain
	Desc  string `json:"desc,omitempty"`

	// Nodes is the modeled client-node count for the fig-6/7-shaped
	// tables (the simnet half of the scenario).
	Nodes int `json:"nodes"`
	// Tasks is how many tasks the real daemon receives.
	Tasks int `json:"tasks"`
	// PayloadBytes sizes each task's payload; SegmentSize sets the
	// transfer planner's unit so segment counts are spec-determined.
	PayloadBytes int64 `json:"payload_bytes"`
	SegmentSize  int64 `json:"segment_size,omitempty"`
	// Workers/Streams pin the daemon's concurrency; crash scenarios use
	// 1/1 so segment completion order is deterministic.
	Workers int `json:"workers,omitempty"`
	Streams int `json:"streams,omitempty"`
	// CapBps enables the daemon-wide governor.
	CapBps int64 `json:"cap_bps,omitempty"`
	// Autotune enables the per-route tuner.
	Autotune bool `json:"autotune,omitempty"`

	Arrival ArrivalSpec `json:"arrival"`
	Faults  []FaultSpec `json:"faults,omitempty"`

	// Assert names the invariants this scenario must uphold; see
	// runner.go for the vocabulary.
	Assert []string `json:"assert"`
}

// fault returns the first fault of the given kind, or nil.
func (s *Spec) fault(kind string) *FaultSpec {
	for i := range s.Faults {
		if s.Faults[i].Kind == kind {
			return &s.Faults[i]
		}
	}
	return nil
}

// workers/streams with class-appropriate defaults.
func (s *Spec) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return 2
}

func (s *Spec) streams() int {
	if s.Streams > 0 {
		return s.Streams
	}
	return 2
}

func (s *Spec) segmentSize() int64 {
	if s.SegmentSize > 0 {
		return s.SegmentSize
	}
	return 64 << 10
}
