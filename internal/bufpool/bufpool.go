// Package bufpool is the shared recycling pool for transfer-sized copy
// buffers: the segment engine's copy chunks, the sequential-fallback
// streams, and mercury's bulk-transfer chunks all draw from it instead
// of allocating a fresh buffer (hundreds of KiB each) per stream.
// Buffers are pooled as *[]byte so the pool interface itself does not
// allocate.
//
// A process runs with a small set of chunk sizes, so pooled capacities
// converge; a pooled buffer too small for the requested size is
// dropped and replaced, and buffers beyond MaxRetained never enter the
// pool so one oversized tuning experiment cannot pin its footprint.
package bufpool

import "sync"

// MaxRetained bounds the buffer capacity the pool keeps. 16 MiB covers
// the largest bulk-chunk tuning the ablations sweep.
const MaxRetained = 16 << 20

var pool sync.Pool

// Get returns a pooled buffer of exactly size bytes.
func Get(size int) *[]byte {
	if p, _ := pool.Get().(*[]byte); p != nil && cap(*p) >= size {
		*p = (*p)[:size]
		return p
	}
	b := make([]byte, size)
	return &b
}

// Put returns a buffer obtained from Get to the pool. The caller must
// not retain the slice afterwards — in particular, a buffer an
// abandoned goroutine may still write into must be leaked to the GC
// instead.
func Put(p *[]byte) {
	if cap(*p) > MaxRetained {
		return
	}
	pool.Put(p)
}
