package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
)

// This file is the NDJSON bulk format: one task per line, the wire-
// stable JSON twin of task.Spec (see SNIPPETS.md Snippet 1 for the
// exemplar semantics). Export writes Records; import decodes them back
// into submissions. Runtime fields (status, byte counters) are
// export-only annotations — import ignores them, so an exported file
// replays into any daemon.

// Resource is the JSON form of one task endpoint.
type Resource struct {
	// Kind is "memory", "local-path", or "remote-path".
	Kind      string `json:"kind"`
	Dataspace string `json:"dataspace,omitempty"`
	Path      string `json:"path,omitempty"`
	Node      string `json:"node,omitempty"`
	Size      int64  `json:"size,omitempty"`
	// Data is the inline payload of a memory resource (base64 in JSON).
	Data []byte `json:"data,omitempty"`
}

// Record is one NDJSON line: the durable form of a task plus, on
// export, its runtime state.
type Record struct {
	// ID is the task's ID on the exporting daemon. Import does not
	// preserve it (the destination assigns its own); it keys the dedupe
	// modes, so re-importing a file into the daemon that produced it
	// skips (or rejects, or overwrites) instead of doubling the queue.
	ID uint64 `json:"id,omitempty"`
	// Kind is "copy", "move", "remove", or "noop".
	Kind       string   `json:"kind"`
	Input      Resource `json:"input"`
	Output     Resource `json:"output"`
	Priority   int      `json:"priority,omitempty"`
	JobID      uint64   `json:"job_id,omitempty"`
	DeadlineMS int64    `json:"deadline_ms,omitempty"`
	MaxBps     int64    `json:"max_bps,omitempty"`
	// Node names the exporting daemon (export-only annotation).
	Node string `json:"node,omitempty"`

	// Export-only runtime state; ignored on import.
	Status     string `json:"status,omitempty"`
	Error      string `json:"error,omitempty"`
	TotalBytes int64  `json:"total_bytes,omitempty"`
	MovedBytes int64  `json:"moved_bytes,omitempty"`
	CacheBytes int64  `json:"cache_bytes,omitempty"`
	DeltaBytes int64  `json:"delta_bytes,omitempty"`
}

func parseTaskKind(s string) (task.Kind, bool) {
	switch s {
	case "copy":
		return task.Copy, true
	case "move":
		return task.Move, true
	case "remove":
		return task.Remove, true
	case "noop":
		return task.NoOp, true
	}
	return 0, false
}

func parseResourceKind(s string) (task.ResourceKind, bool) {
	switch s {
	case "memory":
		return task.Memory, true
	case "local-path":
		return task.LocalPath, true
	case "remote-path":
		return task.RemotePath, true
	}
	return 0, false
}

// DecodeRecord parses and validates one NDJSON line. Unknown fields are
// rejected — a line from some other tool's export (the "wrong project"
// case) fails here instead of half-importing. The returned error is
// safe to echo to clients; it never includes the raw line.
func DecodeRecord(line []byte) (*Record, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var rec Record
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("malformed record: %v", err)
	}
	// One JSON value per line: trailing data is a framing bug (two
	// records glued together), not a second record.
	if dec.More() {
		return nil, fmt.Errorf("malformed record: trailing data after JSON value")
	}
	if _, ok := parseTaskKind(rec.Kind); !ok {
		return nil, fmt.Errorf("unknown task kind %q", rec.Kind)
	}
	for _, r := range []struct {
		name string
		res  Resource
	}{{"input", rec.Input}, {"output", rec.Output}} {
		if _, ok := parseResourceKind(r.res.Kind); !ok {
			return nil, fmt.Errorf("%s: unknown resource kind %q", r.name, r.res.Kind)
		}
		if r.res.Size < 0 {
			return nil, fmt.Errorf("%s: negative size", r.name)
		}
		if len(r.res.Data) > 0 && r.res.Size > 0 && r.res.Size != int64(len(r.res.Data)) {
			return nil, fmt.Errorf("%s: size %d disagrees with %d bytes of inline data", r.name, r.res.Size, len(r.res.Data))
		}
	}
	// An inline payload implies its own size; normalizing here keeps
	// byte accounting (drain summaries, progress totals) honest for
	// records that omit the redundant field.
	for _, res := range []*Resource{&rec.Input, &rec.Output} {
		if len(res.Data) > 0 && res.Size == 0 {
			res.Size = int64(len(res.Data))
		}
	}
	if rec.DeadlineMS < 0 {
		return nil, fmt.Errorf("negative deadline_ms")
	}
	if rec.MaxBps < 0 {
		return nil, fmt.Errorf("negative max_bps")
	}
	return &rec, nil
}

// toResource converts the JSON form to the task resource.
func (r Resource) toResource() task.Resource {
	kind, _ := parseResourceKind(r.Kind)
	return task.Resource{
		Kind:      kind,
		Dataspace: r.Dataspace,
		Path:      r.Path,
		Node:      r.Node,
		Size:      r.Size,
		Data:      r.Data,
	}
}

func resourceJSON(r task.Resource) Resource {
	return Resource{
		Kind:      r.Kind.String(),
		Dataspace: r.Dataspace,
		Path:      r.Path,
		Node:      r.Node,
		Size:      r.Size,
		Data:      r.Data,
	}
}

// TaskSpec converts a decoded record into the protocol submission form.
func (rec *Record) TaskSpec() proto.TaskSpec {
	kind, _ := parseTaskKind(rec.Kind)
	return proto.TaskSpec{
		Kind:       uint32(kind),
		Input:      proto.FromResource(rec.Input.toResource()),
		Output:     proto.FromResource(rec.Output.toResource()),
		Priority:   int64(rec.Priority),
		JobID:      rec.JobID,
		DeadlineMS: rec.DeadlineMS,
		MaxBps:     rec.MaxBps,
	}
}

// recordOf renders one task as an export line. A live deadline exports
// as its remaining milliseconds (floored at 1ms — "already due", not
// "none") so a replayed task keeps an equivalent execution bound.
func recordOf(t *task.Task, node string) Record {
	st := t.Stats()
	rec := Record{
		ID:         t.ID,
		Kind:       t.Kind.String(),
		Input:      resourceJSON(t.Input),
		Output:     resourceJSON(t.Output),
		Priority:   t.Priority,
		JobID:      t.JobID,
		MaxBps:     t.MaxBps,
		Node:       node,
		Status:     st.Status.String(),
		Error:      st.Err,
		TotalBytes: st.TotalBytes,
		MovedBytes: st.MovedBytes,
		CacheBytes: st.CacheBytes,
		DeltaBytes: st.DeltaBytes,
	}
	if !t.Deadline.IsZero() {
		rec.DeadlineMS = int64(time.Until(t.Deadline) / time.Millisecond)
		if rec.DeadlineMS < 1 {
			rec.DeadlineMS = 1
		}
	}
	return rec
}

// errLineTooLong reports an NDJSON line past the configured clamp.
var errLineTooLong = fmt.Errorf("line exceeds the configured length clamp")

// lineReader yields NDJSON lines under a length clamp. An oversize line
// is consumed to its newline and reported as errLineTooLong, so the
// caller decides whether that fails one record or the whole import —
// the reader itself never buffers more than max bytes of it.
type lineReader struct {
	r   *bufio.Reader
	max int
	buf []byte
}

func newLineReader(r io.Reader, max int) *lineReader {
	if max <= 0 {
		max = defaultMaxLine
	}
	bufSize := 64 << 10
	if max < bufSize {
		bufSize = max
	}
	return &lineReader{r: bufio.NewReaderSize(r, bufSize), max: max}
}

// next returns the next non-empty line without its newline. io.EOF
// signals a clean end of stream; errLineTooLong an oversize line (the
// stream stays consumable).
func (lr *lineReader) next() ([]byte, error) {
	for {
		lr.buf = lr.buf[:0]
		tooLong := false
		for {
			chunk, err := lr.r.ReadSlice('\n')
			if !tooLong {
				if len(lr.buf)+len(chunk) > lr.max {
					tooLong = true
					lr.buf = lr.buf[:0]
				} else {
					lr.buf = append(lr.buf, chunk...)
				}
			}
			if err == nil {
				break // chunk ended at the newline
			}
			if err == bufio.ErrBufferFull {
				continue // long line: keep draining it
			}
			if err == io.EOF {
				if tooLong {
					return nil, errLineTooLong
				}
				line := bytes.TrimSpace(lr.buf)
				if len(line) == 0 {
					return nil, io.EOF
				}
				return line, nil
			}
			return nil, err
		}
		if tooLong {
			return nil, errLineTooLong
		}
		line := bytes.TrimSpace(lr.buf)
		if len(line) == 0 {
			continue // blank separator lines are tolerated
		}
		return line, nil
	}
}
