// Package gateway is urd's HTTP/JSON surface: the v2 API over plain
// HTTP for every class of non-wire client, plus the NDJSON bulk
// endpoints that drain one daemon's queue and replay it into another.
//
// The gateway is a thin adapter: requests map onto the same protocol
// ops the wire transport dispatches (OpSubmitBatch, OpSubscribe, ...),
// so both surfaces share one authorization, admission, and journaling
// path. What HTTP adds — bearer auth, request clamps, SSE framing,
// NDJSON streaming — lives here and only here.
//
// Endpoints (all require "Authorization: Bearer <token>"):
//
//	POST   /v2/tasks        submit one task (JSON object) or a batch
//	                        ({"tasks": [...]}, per-entry acceptance)
//	GET    /v2/tasks/{id}   task status (200 even for failed tasks —
//	                        the failure is in the body)
//	DELETE /v2/tasks/{id}   cancel
//	GET    /v2/status       structured daemon status
//	GET    /v2/events       SSE event stream (?ids=1,2 | all;
//	                        ?progress_ms=, ?terminal_only=1)
//	GET    /v2/export       NDJSON task dump (?state=pending|...)
//	POST   /v2/import       NDJSON bulk submit (?dry_run=1, ?atomic=1,
//	                        ?dedupe=skip|overwrite|error, ?ids=1)
//
// Two probe endpoints are deliberately unauthenticated (they carry no
// task data, and orchestrators probe without credentials):
//
//	GET /v2/healthz         liveness — 200 while the process serves
//	GET /v2/readyz          readiness — 503 while draining or degraded
//
// Errors are a JSON envelope {"error":{"code","message"}} whose HTTP
// status follows apierr.HTTPStatus — EAgain surfaces as 429 so HTTP
// clients see backpressure as the standard retry signal.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ngioproject/norns-go/internal/api/apierr"
	"github.com/ngioproject/norns-go/internal/gateway/auth"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
)

const (
	// defaultMaxBody clamps JSON request bodies (submit). Import bodies
	// are exempt — they stream line-by-line under defaultMaxLine.
	defaultMaxBody = 8 << 20
	// defaultMaxLine clamps one NDJSON line; a memory-resource payload
	// travels inline, so the clamp bounds per-record memory, not file
	// size.
	defaultMaxLine = 1 << 20
	// defaultSSEKeepalive is the idle heartbeat period on event streams.
	defaultSSEKeepalive = 15 * time.Second
)

// Daemon is the surface the gateway drives. *urd.Daemon implements it;
// tests substitute stubs to exercise the HTTP layer (the full error
// table, clamp behavior) without a daemon.
type Daemon interface {
	// Handle dispatches one protocol request (the same entry point the
	// wire transport uses).
	Handle(peer transport.PeerInfo, req *proto.Request) *proto.Response
	// RangeTasks iterates the task table for export.
	RangeTasks(fn func(*task.Task))
	// SubmitBatchAtomic stages a batch all-or-nothing (atomic import).
	SubmitBatchAtomic(specs []proto.TaskSpec, pid uint64, admin bool) ([]uint64, error)
	// ValidateSpec runs validation+authorization with no side effects
	// (dry-run import).
	ValidateSpec(spec *proto.TaskSpec, pid uint64, admin bool) error
	// HasTask reports whether a task ID resolves (import dedupe).
	HasTask(id uint64) bool
	// NodeName annotates exported records with their origin.
	NodeName() string
}

// Config parameterizes a gateway.
type Config struct {
	// Addr is the TCP listen address (host:port; port 0 picks one).
	Addr string
	// Daemon is the backend; required.
	Daemon Daemon
	// Token is the bearer secret; required non-empty — the gateway
	// refuses to start open.
	Token auth.Token
	// MaxBody clamps JSON request bodies in bytes (<=0: 8 MiB).
	MaxBody int64
	// MaxLine clamps one NDJSON line in bytes (<=0: 1 MiB).
	MaxLine int
	// Logf, when set, receives one line per rejected request. Secrets
	// are redacted before formatting; nil disables logging.
	Logf func(format string, args ...any)
	// SSEKeepalive is the idle heartbeat interval on /v2/events: a
	// ": keepalive" comment is written whenever no event has flowed for
	// this long, so proxies and LB idle timeouts don't sever quiet
	// streams (<=0: 15s).
	SSEKeepalive time.Duration
}

// Server is a running gateway.
type Server struct {
	cfg Config
	lis net.Listener
	srv *http.Server
}

// New starts a gateway: the listener is bound and serving when it
// returns.
func New(cfg Config) (*Server, error) {
	if cfg.Daemon == nil {
		return nil, errors.New("gateway: Config.Daemon is required")
	}
	if cfg.Token.Empty() {
		return nil, errors.New("gateway: refusing to serve without a bearer token (set Config.Token)")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = defaultMaxBody
	}
	if cfg.MaxLine <= 0 {
		cfg.MaxLine = defaultMaxLine
	}
	if cfg.SSEKeepalive <= 0 {
		cfg.SSEKeepalive = defaultSSEKeepalive
	}
	s := &Server{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/tasks", s.handleSubmit)
	mux.HandleFunc("GET /v2/tasks/{id}", s.handleTask)
	mux.HandleFunc("DELETE /v2/tasks/{id}", s.handleCancel)
	mux.HandleFunc("GET /v2/status", s.handleStatus)
	mux.HandleFunc("GET /v2/events", s.handleEvents)
	mux.HandleFunc("GET /v2/export", s.handleExport)
	mux.HandleFunc("POST /v2/import", s.handleImport)
	// Probe endpoints sit OUTSIDE the bearer wall: orchestrators and load
	// balancers probe without credentials, and neither endpoint exposes
	// task data — healthz answers "is the process serving" and readyz
	// answers "is the daemon admitting work".
	outer := http.NewServeMux()
	outer.HandleFunc("GET /v2/healthz", s.handleHealthz)
	outer.HandleFunc("GET /v2/readyz", s.handleReadyz)
	outer.Handle("/", s.authenticate(mux))
	lis, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	s.lis = lis
	s.srv = &http.Server{Handler: outer}
	go func() {
		// Close tears the listener down; ErrServerClosed is the clean
		// shutdown signal, anything else is lost with the goroutine, so
		// surface it through Logf when one is wired.
		if err := s.srv.Serve(lis); err != nil && err != http.ErrServerClosed && cfg.Logf != nil {
			cfg.Logf("gateway: serve: %v", err)
		}
	}()
	return s, nil
}

// Addr is the bound listen address (resolves port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the listener and drops open connections (SSE streams
// included).
func (s *Server) Close() error { return s.srv.Close() }

// authenticate enforces the bearer token on every route. Constant-time
// comparison (auth.Token); the presented credential is never echoed —
// not in the 401 body, not in logs (Logf sees only sanitized metadata).
func (s *Server) authenticate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.cfg.Token.Authorize(r.Header.Get("Authorization")) {
			if s.cfg.Logf != nil {
				s.cfg.Logf("gateway: unauthorized %s %s from %s", r.Method, r.URL.Path, r.RemoteAddr)
			}
			w.Header().Set("WWW-Authenticate", `Bearer realm="norns"`)
			writeError(w, http.StatusUnauthorized, proto.EPermission, "missing or invalid bearer token")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// httpPeer is the identity gateway requests dispatch under: the bearer
// token is an operator credential, so requests get the control surface
// (like the nornsctl socket), with no push sink — subscriptions build
// their own peer.
var httpPeer = transport.PeerInfo{Control: true, Addr: "http"}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	// Code is the protocol status name, e.g. "NORNS_EAGAIN".
	Code string `json:"code"`
	// Message is the daemon's error text (secrets never reach it: the
	// daemon does not see the Authorization header).
	Message string `json:"message"`
}

// writeError renders the envelope. httpStatus overrides the table
// mapping (401 vs 403, 413 for clamp violations); pass 0 to use
// apierr.HTTPStatus(code).
func writeError(w http.ResponseWriter, httpStatus int, code proto.StatusCode, msg string) {
	if httpStatus == 0 {
		httpStatus = apierr.HTTPStatus(code)
	}
	writeJSON(w, httpStatus, errorBody{Error: errorInfo{Code: code.String(), Message: msg}})
}

// writeRespError maps a failed protocol response to the documented
// HTTP status table.
func writeRespError(w http.ResponseWriter, resp *proto.Response) {
	writeError(w, 0, resp.Status, resp.Error)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// bodyError maps a request-body read failure: the MaxBody clamp
// surfaces as 413, everything else as 400.
func bodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, proto.EBadRequest,
			fmt.Sprintf("request body exceeds the %d-byte clamp", tooLarge.Limit))
		return
	}
	writeError(w, 0, proto.EBadRequest, "reading request body: "+err.Error())
}

// TaskJSON is the JSON form of one task's status.
type TaskJSON struct {
	TaskID        uint64  `json:"task_id"`
	Status        string  `json:"status"`
	Error         string  `json:"error,omitempty"`
	TotalBytes    int64   `json:"total_bytes"`
	MovedBytes    int64   `json:"moved_bytes"`
	SegmentsTotal uint64  `json:"segments_total,omitempty"`
	SegmentsDone  uint64  `json:"segments_done,omitempty"`
	BandwidthBps  float64 `json:"bandwidth_bps,omitempty"`
	CacheBytes    int64   `json:"cache_bytes,omitempty"`
	DeltaBytes    int64   `json:"delta_bytes,omitempty"`
}

func taskJSON(id uint64, st proto.TaskStats) TaskJSON {
	return TaskJSON{
		TaskID:        id,
		Status:        task.Status(st.Status).String(),
		Error:         st.Err,
		TotalBytes:    st.TotalBytes,
		MovedBytes:    st.MovedBytes,
		SegmentsTotal: st.SegmentsTotal,
		SegmentsDone:  st.SegmentsDone,
		BandwidthBps:  st.BandwidthBps,
		CacheBytes:    st.CacheBytes,
		DeltaBytes:    st.DeltaBytes,
	}
}

// SubmitResultJSON is one entry of a batch submission response.
type SubmitResultJSON struct {
	TaskID uint64 `json:"task_id,omitempty"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// StatusJSON mirrors proto.DaemonStatus for GET /v2/status.
type StatusJSON struct {
	Version            string              `json:"version"`
	Node               string              `json:"node"`
	Policy             string              `json:"policy"`
	Shards             uint64              `json:"shards"`
	Pending            uint64              `json:"pending"`
	Tasks              uint64              `json:"tasks"`
	Journal            bool                `json:"journal"`
	RecoveredPending   uint64              `json:"recovered_pending,omitempty"`
	RecoveredRunning   uint64              `json:"recovered_running,omitempty"`
	RecoveredCancelled uint64              `json:"recovered_cancelled,omitempty"`
	RecoveredTerminal  uint64              `json:"recovered_terminal,omitempty"`
	Autotune           bool                `json:"autotune"`
	AutotuneRoutes     []AutotuneRouteJSON `json:"autotune_routes,omitempty"`
	CacheEnabled       bool                `json:"cache_enabled"`
	CacheHits          uint64              `json:"cache_hits,omitempty"`
	CacheMisses        uint64              `json:"cache_misses,omitempty"`
	CacheEvictions     uint64              `json:"cache_evictions,omitempty"`
	CacheBytes         int64               `json:"cache_bytes,omitempty"`
	CacheCapBytes      int64               `json:"cache_cap_bytes,omitempty"`
	Degraded           bool                `json:"degraded,omitempty"`
	DeadLetterTasks    uint64              `json:"dead_letter_tasks,omitempty"`
	RetryMax           uint64              `json:"retry_max,omitempty"`
	RetryBackoffMS     int64               `json:"retry_backoff_ms,omitempty"`
	Breakers           []BreakerJSON       `json:"breakers,omitempty"`
	RecoveredClean     bool                `json:"recovered_clean,omitempty"`
}

// BreakerJSON is one fabric circuit-breaker row.
type BreakerJSON struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	Fails uint64 `json:"fails,omitempty"`
	Trips uint64 `json:"trips,omitempty"`
}

// AutotuneRouteJSON is one autotuner route row.
type AutotuneRouteJSON struct {
	In         string  `json:"in"`
	Out        string  `json:"out"`
	Kind       string  `json:"kind"`
	Streams    uint32  `json:"streams"`
	SegSize    int64   `json:"seg_size"`
	GoodputBps float64 `json:"goodput_bps"`
	Samples    uint64  `json:"samples"`
	State      string  `json:"state"`
}

// StatusFromProto converts the wire status to its JSON form (shared
// with the HTTP client and nornsctl's -json renderer).
func StatusFromProto(st *proto.DaemonStatus) StatusJSON {
	out := StatusJSON{
		Version:            st.Version,
		Node:               st.Node,
		Policy:             st.Policy,
		Shards:             st.Shards,
		Pending:            st.Pending,
		Tasks:              st.Tasks,
		Journal:            st.Journal,
		RecoveredPending:   st.RecoveredPending,
		RecoveredRunning:   st.RecoveredRunning,
		RecoveredCancelled: st.RecoveredCancelled,
		RecoveredTerminal:  st.RecoveredTerminal,
		Autotune:           st.Autotune,
		CacheEnabled:       st.CacheEnabled,
		CacheHits:          st.CacheHits,
		CacheMisses:        st.CacheMisses,
		CacheEvictions:     st.CacheEvictions,
		CacheBytes:         st.CacheBytes,
		CacheCapBytes:      st.CacheCapBytes,
		Degraded:           st.Degraded,
		DeadLetterTasks:    st.DeadLetterTasks,
		RetryMax:           st.RetryMax,
		RetryBackoffMS:     st.RetryBackoffMS,
		RecoveredClean:     st.RecoveredClean,
	}
	for _, b := range st.Breakers {
		out.Breakers = append(out.Breakers, BreakerJSON{
			Addr: b.Addr, State: b.State, Fails: b.Fails, Trips: b.Trips,
		})
	}
	for _, r := range st.AutotuneRoutes {
		out.AutotuneRoutes = append(out.AutotuneRoutes, AutotuneRouteJSON{
			In: r.In, Out: r.Out, Kind: r.Kind,
			Streams: r.Streams, SegSize: r.SegSize,
			GoodputBps: r.GoodputBps, Samples: r.Samples, State: r.State,
		})
	}
	return out
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	resp := s.cfg.Daemon.Handle(httpPeer, &proto.Request{Op: proto.OpStatus})
	if resp.Status != proto.Success || resp.StatusInfo == nil {
		writeRespError(w, resp)
		return
	}
	writeJSON(w, http.StatusOK, StatusFromProto(resp.StatusInfo))
}

// handleHealthz is liveness: 200 whenever the gateway process is
// serving at all. It never consults the daemon — a degraded daemon is
// alive, just not ready.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

// handleReadyz is readiness: it drives OpHealth through the daemon, so
// a draining or journal-degraded daemon answers 503 (EUnavailable) and
// load balancers rotate new submissions away while in-flight work
// finishes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := s.cfg.Daemon.Handle(httpPeer, &proto.Request{Op: proto.OpHealth})
	if resp.Status != proto.Success {
		writeRespError(w, resp)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ready"})
}

// handleSubmit serves POST /v2/tasks: a single task record, or
// {"tasks": [...]} for a batch with per-entry acceptance. A single
// submit that hits backpressure maps EAgain to 429; a batch reports
// per-entry statuses in a 200 body, exactly like OpSubmitBatch on the
// wire.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readAll(w, r, s.cfg.MaxBody)
	if err != nil {
		bodyError(w, err)
		return
	}
	var probe struct {
		Tasks []json.RawMessage `json:"tasks"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		writeError(w, 0, proto.EBadRequest, "malformed JSON body: "+err.Error())
		return
	}
	if probe.Tasks == nil {
		// Single-task form.
		rec, err := DecodeRecord(body)
		if err != nil {
			writeError(w, 0, proto.EBadRequest, err.Error())
			return
		}
		spec := rec.TaskSpec()
		resp := s.cfg.Daemon.Handle(httpPeer, &proto.Request{Op: proto.OpSubmit, Task: &spec})
		if resp.Status != proto.Success {
			writeRespError(w, resp)
			return
		}
		writeJSON(w, http.StatusOK, SubmitResultJSON{TaskID: resp.TaskID, Status: proto.Success.String()})
		return
	}
	if len(probe.Tasks) == 0 {
		writeError(w, 0, proto.EBadRequest, "empty task batch")
		return
	}
	specs := make([]proto.TaskSpec, len(probe.Tasks))
	for i, raw := range probe.Tasks {
		rec, err := DecodeRecord(raw)
		if err != nil {
			writeError(w, 0, proto.EBadRequest, fmt.Sprintf("tasks[%d]: %v", i, err))
			return
		}
		specs[i] = rec.TaskSpec()
	}
	resp := s.cfg.Daemon.Handle(httpPeer, &proto.Request{Op: proto.OpSubmitBatch, Tasks: specs})
	if resp.Status != proto.Success {
		writeRespError(w, resp)
		return
	}
	results := make([]SubmitResultJSON, len(resp.Results))
	for i, res := range resp.Results {
		results[i] = SubmitResultJSON{
			TaskID: res.TaskID,
			Status: proto.StatusCode(res.Status).String(),
			Error:  res.Error,
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Results []SubmitResultJSON `json:"results"`
	}{results})
}

func pathID(r *http.Request) (uint64, error) {
	return strconv.ParseUint(r.PathValue("id"), 10, 64)
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, 0, proto.EBadRequest, "bad task ID: "+err.Error())
		return
	}
	resp := s.cfg.Daemon.Handle(httpPeer, &proto.Request{Op: proto.OpTaskStatus, TaskID: id})
	// A failed task answers 200 with the failure in the body — the
	// lookup succeeded; ETaskError (422) is for responses where the
	// failure IS the result.
	if resp.Stats == nil {
		writeRespError(w, resp)
		return
	}
	writeJSON(w, http.StatusOK, taskJSON(resp.TaskID, *resp.Stats))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, 0, proto.EBadRequest, "bad task ID: "+err.Error())
		return
	}
	resp := s.cfg.Daemon.Handle(httpPeer, &proto.Request{Op: proto.OpCancel, TaskID: id})
	if resp.Status != proto.Success {
		writeRespError(w, resp)
		return
	}
	st := proto.TaskStats{}
	if resp.Stats != nil {
		st = *resp.Stats
	}
	writeJSON(w, http.StatusOK, taskJSON(id, st))
}

// readAll reads a clamped request body.
func readAll(w http.ResponseWriter, r *http.Request, max int64) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, max)
	defer r.Body.Close()
	return io.ReadAll(r.Body)
}

// handleExport streams the task table as NDJSON, one record per line,
// sorted by task ID (deterministic output, and the ordering the dedupe
// modes' collision analysis relies on). ?state= filters on the current
// status ("pending", "terminal", any task.Status name; default all).
// The response never materializes: each line is encoded and written
// from one live task at a time.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	state := r.URL.Query().Get("state")
	match, err := stateFilter(state)
	if err != nil {
		writeError(w, 0, proto.EBadRequest, err.Error())
		return
	}
	// Collect matching tasks (pointers only — the encoded form streams).
	var tasks []*task.Task
	s.cfg.Daemon.RangeTasks(func(t *task.Task) {
		if match(t.Stats().Status) {
			tasks = append(tasks, t)
		}
	})
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].ID < tasks[j].ID })
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Norns-Tasks", strconv.Itoa(len(tasks)))
	node := s.cfg.Daemon.NodeName()
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for _, t := range tasks {
		// Encode appends the newline — exactly one record per line.
		if err := enc.Encode(recordOf(t, node)); err != nil {
			return // client went away; nothing left to report to it
		}
	}
}

// stateFilter parses the export ?state= selector.
func stateFilter(state string) (func(task.Status) bool, error) {
	switch state {
	case "", "all":
		return func(task.Status) bool { return true }, nil
	case "terminal":
		return func(s task.Status) bool { return s.Terminal() }, nil
	case "pending", "running", "finished", "failed", "cancelled", "cancelling":
		return func(s task.Status) bool { return s.String() == state }, nil
	default:
		return nil, fmt.Errorf("unknown state filter %q", state)
	}
}

// sseSink buffers pushed events between the hub's pump goroutine and
// the SSE handler goroutine, so subscription setup can still fail with
// a clean JSON error (no SSE headers written) even if events arrive
// during the race, and so only the handler goroutine ever touches the
// ResponseWriter.
type sseSink struct {
	mu     sync.Mutex
	evs    []proto.Event
	notify chan struct{}
}

func newSSESink() *sseSink {
	return &sseSink{notify: make(chan struct{}, 1)}
}

func (k *sseSink) push(resp *proto.Response) {
	if !resp.HasEvent {
		return
	}
	k.mu.Lock()
	k.evs = append(k.evs, resp.Event)
	k.mu.Unlock()
	select {
	case k.notify <- struct{}{}:
	default:
	}
}

func (k *sseSink) drain() []proto.Event {
	k.mu.Lock()
	evs := k.evs
	k.evs = nil
	k.mu.Unlock()
	return evs
}

// sseEvent is the data payload of one SSE frame.
type sseEvent struct {
	TaskID uint64    `json:"task_id"`
	Stats  *TaskJSON `json:"stats,omitempty"`
}

// handleEvents serves GET /v2/events as an SSE stream riding the event
// hub: ?ids=1,2,3 subscribes to an explicit set (the stream ends with
// an "end" event once every task is terminal), no ids subscribes to all
// tasks (the stream runs until the client disconnects). ?progress_ms=
// requests throttled progress ticks; ?terminal_only=1 suppresses
// non-terminal states. Queue-overflow gap events surface as SSE
// comments (": gap dropped=N") — metadata about the stream, not data.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, 0, proto.EInternal, "response writer cannot stream")
		return
	}
	q := r.URL.Query()
	spec := &proto.SubscribeSpec{}
	remaining := map[uint64]struct{}{}
	if idsParam := q.Get("ids"); idsParam != "" {
		for _, f := range strings.Split(idsParam, ",") {
			id, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				writeError(w, 0, proto.EBadRequest, fmt.Sprintf("bad task ID %q", f))
				return
			}
			spec.TaskIDs = append(spec.TaskIDs, id)
			remaining[id] = struct{}{}
		}
	} else {
		spec.All = true
	}
	if pm := q.Get("progress_ms"); pm != "" {
		v, err := strconv.ParseInt(pm, 10, 64)
		if err != nil || v < 0 {
			writeError(w, 0, proto.EBadRequest, fmt.Sprintf("bad progress_ms %q", pm))
			return
		}
		spec.ProgressMS = v
	}
	if to := q.Get("terminal_only"); to == "1" || to == "true" {
		spec.TerminalOnly = true
	}

	sink := newSSESink()
	peer := transport.NewInProcPeer(sink.push)
	// Close before returning: InProcPeer.Close waits out any in-flight
	// push, so after this no pump goroutine can touch the sink while the
	// handler unwinds.
	defer peer.Close()
	resp := s.cfg.Daemon.Handle(peer.Info(), &proto.Request{Op: proto.OpSubscribe, Subscribe: spec})
	if resp.Status != proto.Success {
		writeRespError(w, resp)
		return
	}
	subID := resp.SubID
	defer func() {
		// Best-effort: an explicit subscription that ran to exhaustion is
		// already gone, which is fine.
		s.cfg.Daemon.Handle(peer.Info(), &proto.Request{Op: proto.OpUnsubscribe, SubID: subID})
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// The retry hint and a comment preamble flush the headers so clients
	// observe the stream immediately, before any event exists.
	fmt.Fprintf(w, "retry: 1000\n: subscribed sub=%d\n\n", subID)
	fl.Flush()

	ctx := r.Context()
	seq := 0
	explicit := len(remaining) > 0
	// The keepalive ticker guarantees the stream is never silent longer
	// than one interval: idle periods emit an SSE comment, which clients
	// ignore but intermediaries count as traffic. Event writes don't
	// reset the ticker — a spurious keepalive between events is harmless.
	keepalive := time.NewTicker(s.cfg.SSEKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
			continue
		case <-sink.notify:
		}
		evs := sink.drain()
		for i := range evs {
			ev := &evs[i]
			switch proto.EventKind(ev.Kind) {
			case proto.EvGap:
				// Comments, not events: a gap is stream metadata. An
				// all-tasks consumer that sees one should reconcile via
				// GET /v2/status; explicit sets never drop terminals.
				fmt.Fprintf(w, ": gap dropped=%d sub=%d\n\n", ev.Dropped, ev.SubID)
				continue
			case proto.EvState, proto.EvProgress:
				seq++
				payload := sseEvent{TaskID: ev.TaskID}
				if ev.HasStats {
					tj := taskJSON(ev.TaskID, ev.Stats)
					payload.Stats = &tj
				}
				data, err := json.Marshal(payload)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", proto.EventKind(ev.Kind), seq, data)
				if explicit && proto.EventKind(ev.Kind) == proto.EvState && ev.HasStats &&
					task.Status(ev.Stats.Status).Terminal() {
					delete(remaining, ev.TaskID)
				}
			}
		}
		fl.Flush()
		if explicit && len(remaining) == 0 {
			// Every subscribed task is terminal; the hub's pump is about
			// to exit too. Tell the client this is completion, not a drop.
			fmt.Fprint(w, "event: end\ndata: {\"reason\":\"complete\"}\n\n")
			fl.Flush()
			return
		}
	}
}
