package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"github.com/ngioproject/norns-go/internal/api/apierr"
	"github.com/ngioproject/norns-go/internal/proto"
)

// Client drives a remote gateway over HTTP: nornsctl's export/import/
// drain subcommands and the gateway benchmark are built on it. Errors
// from the server's JSON envelope come back as *apierr.Error so callers
// can branch on the protocol status the same way wire clients do.
type Client struct {
	// Base is the gateway root, e.g. "http://127.0.0.1:9300".
	Base string
	// Token is the bearer secret sent with every request.
	Token string
	// HTTPClient, when nil, falls back to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.Base, "/")+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.Token)
	return req, nil
}

// decodeError turns a non-2xx response into an *apierr.Error: the
// envelope's code string when it parses, the HTTP status table
// otherwise.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env errorBody
	code := apierr.FromHTTPStatus(resp.StatusCode)
	msg := strings.TrimSpace(string(body))
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		msg = env.Error.Message
		if parsed, ok := statusCodeOf(env.Error.Code); ok {
			code = parsed
		}
	}
	if msg == "" {
		msg = resp.Status
	}
	return &apierr.Error{API: "gateway", Code: code, Msg: msg}
}

// statusCodeOf parses a protocol status name ("NORNS_EAGAIN") back to
// its code.
func statusCodeOf(name string) (proto.StatusCode, bool) {
	for _, c := range []proto.StatusCode{
		proto.Success, proto.EBadRequest, proto.ENotFound, proto.EExists,
		proto.EPermission, proto.ETaskError, proto.ETimeout, proto.EAgain,
		proto.EInternal,
	} {
		if c.String() == name {
			return c, true
		}
	}
	return proto.EInternal, false
}

// doJSON runs one request and decodes a 2xx JSON body into out.
func (c *Client) doJSON(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Status fetches GET /v2/status.
func (c *Client) Status(ctx context.Context) (*StatusJSON, error) {
	var st StatusJSON
	if err := c.doJSON(ctx, http.MethodGet, "/v2/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Submit posts one task record.
func (c *Client) Submit(ctx context.Context, rec *Record) (*SubmitResultJSON, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	var res SubmitResultJSON
	if err := c.doJSON(ctx, http.MethodPost, "/v2/tasks", bytes.NewReader(body), &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SubmitBatch posts a task batch with per-entry acceptance.
func (c *Client) SubmitBatch(ctx context.Context, recs []Record) ([]SubmitResultJSON, error) {
	body, err := json.Marshal(struct {
		Tasks []Record `json:"tasks"`
	}{recs})
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []SubmitResultJSON `json:"results"`
	}
	if err := c.doJSON(ctx, http.MethodPost, "/v2/tasks", bytes.NewReader(body), &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// TaskStatus fetches GET /v2/tasks/{id}.
func (c *Client) TaskStatus(ctx context.Context, id uint64) (*TaskJSON, error) {
	var tj TaskJSON
	if err := c.doJSON(ctx, http.MethodGet, "/v2/tasks/"+strconv.FormatUint(id, 10), nil, &tj); err != nil {
		return nil, err
	}
	return &tj, nil
}

// Cancel issues DELETE /v2/tasks/{id}.
func (c *Client) Cancel(ctx context.Context, id uint64) (*TaskJSON, error) {
	var tj TaskJSON
	if err := c.doJSON(ctx, http.MethodDelete, "/v2/tasks/"+strconv.FormatUint(id, 10), nil, &tj); err != nil {
		return nil, err
	}
	return &tj, nil
}

// Export streams GET /v2/export into w and returns the task count from
// the X-Norns-Tasks header. state is the ?state= filter ("" for all).
func (c *Client) Export(ctx context.Context, w io.Writer, state string) (int, error) {
	path := "/v2/export"
	if state != "" {
		path += "?state=" + url.QueryEscape(state)
	}
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return 0, decodeError(resp)
	}
	count, _ := strconv.Atoi(resp.Header.Get("X-Norns-Tasks"))
	if _, err := io.Copy(w, resp.Body); err != nil {
		return count, err
	}
	return count, nil
}

// ImportOptions select POST /v2/import's modes.
type ImportOptions struct {
	DryRun bool
	Atomic bool
	// Dedupe is "skip", "overwrite", or "error" ("" = server default).
	Dedupe string
	// IncludeIDs asks the server to echo assigned task IDs.
	IncludeIDs bool
}

// Import streams an NDJSON body to POST /v2/import. A failed import
// returns the error envelope as *apierr.Error; when the server attached
// a partial summary it is still returned alongside the error.
func (c *Client) Import(ctx context.Context, r io.Reader, opts ImportOptions) (*ImportResult, error) {
	q := url.Values{}
	if opts.DryRun {
		q.Set("dry_run", "1")
	}
	if opts.Atomic {
		q.Set("atomic", "1")
	}
	if opts.Dedupe != "" {
		q.Set("dedupe", opts.Dedupe)
	}
	if opts.IncludeIDs {
		q.Set("ids", "1")
	}
	path := "/v2/import"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := c.newRequest(ctx, http.MethodPost, path, r)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		var env struct {
			Error  errorInfo     `json:"error"`
			Import *ImportResult `json:"import"`
		}
		code := apierr.FromHTTPStatus(resp.StatusCode)
		msg := strings.TrimSpace(string(body))
		if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
			msg = env.Error.Message
			if parsed, ok := statusCodeOf(env.Error.Code); ok {
				code = parsed
			}
		}
		return env.Import, &apierr.Error{API: "gateway", Code: code, Msg: msg}
	}
	var res ImportResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SSEEvent is one parsed frame of the /v2/events stream.
type SSEEvent struct {
	// Kind is the SSE event name: "state", "progress", or "end".
	Kind string
	// TaskID and Stats are filled for state/progress events.
	TaskID uint64
	Stats  *TaskJSON
	// Gap marks a dropped-events comment; Dropped is the count.
	Gap     bool
	Dropped uint64
}

// Events consumes GET /v2/events as a server-sent-event stream, calling
// fn for every frame (including gap comments). fn returning false ends
// the stream; an "end" event ends it from the server side. Pass ids for
// an explicit task set (the stream then terminates once all are
// terminal), nil for all tasks.
func (c *Client) Events(ctx context.Context, ids []uint64, progressMS int64, fn func(SSEEvent) bool) error {
	q := url.Values{}
	if len(ids) > 0 {
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = strconv.FormatUint(id, 10)
		}
		q.Set("ids", strings.Join(parts, ","))
	}
	if progressMS > 0 {
		q.Set("progress_ms", strconv.FormatInt(progressMS, 10))
	}
	path := "/v2/events"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event, data string
	flush := func() (bool, error) {
		defer func() { event, data = "", "" }()
		if event == "" && data == "" {
			return true, nil
		}
		ev := SSEEvent{Kind: event}
		if event == "end" {
			fn(ev)
			return false, nil
		}
		if data != "" {
			var payload sseEvent
			if err := json.Unmarshal([]byte(data), &payload); err != nil {
				return false, fmt.Errorf("events: malformed frame: %v", err)
			}
			ev.TaskID = payload.TaskID
			ev.Stats = payload.Stats
		}
		return fn(ev), nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line terminates a frame.
			cont, err := flush()
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		case strings.HasPrefix(line, ": gap dropped="):
			fields := strings.Fields(strings.TrimPrefix(line, ": gap "))
			ev := SSEEvent{Gap: true}
			for _, f := range fields {
				if v, ok := strings.CutPrefix(f, "dropped="); ok {
					ev.Dropped, _ = strconv.ParseUint(v, 10, 64)
				}
			}
			if !fn(ev) {
				return nil
			}
		case strings.HasPrefix(line, ":"):
			// Other comments (the subscribe preamble) are ignored.
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// DrainResult summarizes a queue drain between daemons.
type DrainResult struct {
	// Tasks is how many pending tasks moved; Bytes their summed sizes.
	Tasks int   `json:"tasks"`
	Bytes int64 `json:"bytes"`
	// Imported confirms the destination's acceptance count; Cancelled is
	// how many source tasks were cancelled after the handoff.
	Imported  int `json:"imported"`
	Cancelled int `json:"cancelled"`
}

// Drain moves the source daemon's pending queue to dst: export pending
// tasks from src, import them atomically into dst (all-or-nothing — a
// failed import leaves the source untouched), then cancel the moved
// tasks on src. Byte and task counters are preserved across the move by
// construction: the same NDJSON records land on the other side.
func (c *Client) Drain(ctx context.Context, dst *Client) (*DrainResult, error) {
	var buf bytes.Buffer
	if _, err := c.Export(ctx, &buf, "pending"); err != nil {
		return nil, fmt.Errorf("drain: export from source: %w", err)
	}
	// Parse the stream once to collect IDs and byte totals for the
	// summary (and the cancel pass). Task IDs are daemon-local: the
	// replay stream is re-encoded without them so the destination
	// assigns fresh ones instead of colliding (dedupe=skip would
	// silently drop every record whose source ID is already taken).
	var ids []uint64
	var replay bytes.Buffer
	res := &DrainResult{}
	lr := newLineReader(bytes.NewReader(buf.Bytes()), 0)
	for {
		line, err := lr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("drain: reading export: %w", err)
		}
		rec, err := DecodeRecord(line)
		if err != nil {
			return nil, fmt.Errorf("drain: reading export: %w", err)
		}
		res.Tasks++
		sz := rec.TotalBytes
		if sz == 0 {
			sz = rec.Input.Size
		}
		res.Bytes += sz
		if rec.ID != 0 {
			ids = append(ids, rec.ID)
		}
		rec.ID = 0
		out, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("drain: re-encoding record: %w", err)
		}
		replay.Write(out)
		replay.WriteByte('\n')
	}
	if res.Tasks == 0 {
		return res, nil
	}
	imp, err := dst.Import(ctx, bytes.NewReader(replay.Bytes()), ImportOptions{Atomic: true})
	if err != nil {
		return nil, fmt.Errorf("drain: import into destination: %w", err)
	}
	res.Imported = imp.Submitted
	// The batch is durable on dst; now retire the moved tasks at the
	// source. Cancel failures (task already ran to completion in the
	// window) are tolerated — the drain still moved the queue.
	for _, id := range ids {
		if _, err := c.Cancel(ctx, id); err == nil {
			res.Cancelled++
		}
	}
	return res, nil
}
