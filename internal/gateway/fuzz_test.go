package gateway_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/ngioproject/norns-go/internal/gateway"
)

// FuzzNDJSONRecord drives arbitrary bytes through the NDJSON record
// decoder — the parser every import line crosses before touching the
// daemon. Accepted records must survive an encode/decode round trip
// unchanged and convert to a task spec without panicking; everything
// else must be rejected with an error, never a crash. The committed
// seed corpus (testdata/fuzz/FuzzNDJSONRecord) covers the interesting
// shapes: a valid record, a truncated line, an oversize payload, a
// duplicate-ID record, and a wrong-project line with unknown fields.
func FuzzNDJSONRecord(f *testing.F) {
	f.Add([]byte(`{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"}}`))
	f.Add([]byte(`{"id":17,"kind":"copy","input":{"kind":"memory","data":"cGF5bG9hZA==","size":7},"output":{"kind":"local-path","dataspace":"nvme0://","path":"x"},"priority":3,"job_id":42,"deadline_ms":5000,"max_bps":1048576}`))
	f.Add([]byte(`{"kind":"noop","input":{"kind":"memory"},"output":`))                                                                                                                // truncated
	f.Add([]byte(`{"kind":"move","input":{"kind":"remote-path","node":"n2","dataspace":"d://","path":"` + string(bytes.Repeat([]byte("a"), 4096)) + `"},"output":{"kind":"memory"}}`)) // oversize-ish
	f.Add([]byte(`{"id":1,"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"}}`))                                                                                       // duplicate-ID shape
	f.Add([]byte(`{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"},"replica_set":"rs0"}`))                                                                          // wrong project
	f.Add([]byte(`{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"}}{"kind":"noop"}`))                                                                               // glued records
	f.Add([]byte(`{"kind":"noop","input":{"kind":"memory","size":-1},"output":{"kind":"memory"}}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := gateway.DecodeRecord(line)
		if err != nil {
			if rec != nil {
				t.Fatalf("rejected line returned a record: %+v", rec)
			}
			return
		}
		// Accepted: the spec conversion must be total and faithful on the
		// scalar fields.
		spec := rec.TaskSpec()
		if spec.Priority != int64(rec.Priority) || spec.JobID != rec.JobID ||
			spec.DeadlineMS != rec.DeadlineMS || spec.MaxBps != rec.MaxBps {
			t.Fatalf("spec scalars diverge from record: %+v vs %+v", spec, rec)
		}
		// Round trip: encode and decode back to an identical record.
		enc, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		rec2, err := gateway.DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v\n%s", err, enc)
		}
		if !bytes.Equal(mustJSON(t, rec), mustJSON(t, rec2)) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", rec, rec2)
		}
	})
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
