package gateway_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/gateway"
	"github.com/ngioproject/norns-go/internal/gateway/auth"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
	"github.com/ngioproject/norns-go/internal/urd"
)

const testToken = "gw-test-secret"

// newDaemon boots a urd daemon with the HTTP gateway on an ephemeral
// port. No sockets: every interaction rides HTTP.
func newDaemon(t *testing.T, mutate func(*urd.Config)) *urd.Daemon {
	t.Helper()
	cfg := urd.Config{
		NodeName:  "gwtest",
		Workers:   2,
		HTTPAddr:  "127.0.0.1:0",
		HTTPToken: testToken,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := urd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func testClient(d *urd.Daemon) *gateway.Client {
	return &gateway.Client{Base: "http://" + d.HTTPAddr(), Token: testToken}
}

// doRaw issues one request with explicit header control.
func doRaw(t *testing.T, method, url, authz string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if authz != "" {
		req.Header.Set("Authorization", authz)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func noopRecord() gateway.Record {
	return gateway.Record{
		Kind:   "noop",
		Input:  gateway.Resource{Kind: "memory"},
		Output: gateway.Resource{Kind: "memory"},
	}
}

func TestUnauthorizedRequests(t *testing.T) {
	d := newDaemon(t, nil)
	base := "http://" + d.HTTPAddr()
	for _, authz := range []string{"", "Bearer wrong", "Basic " + testToken, "Bearer " + testToken + "x"} {
		resp := doRaw(t, http.MethodGet, base+"/v2/status", authz, nil)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("authz %q: status %d, want 401", authz, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Errorf("authz %q: missing WWW-Authenticate challenge", authz)
		}
		// The rejection must never echo any credential material.
		if strings.Contains(string(body), testToken) || strings.Contains(string(body), "wrong") {
			t.Errorf("authz %q: credential echoed in 401 body: %s", authz, body)
		}
		var env struct {
			Error struct{ Code, Message string }
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != proto.EPermission.String() {
			t.Errorf("authz %q: body %s, want %s envelope", authz, body, proto.EPermission)
		}
	}
	// The happy path still works.
	resp := doRaw(t, http.MethodGet, base+"/v2/status", "Bearer "+testToken, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized status request: %d, want 200", resp.StatusCode)
	}
}

func TestTokenNotLoggedOnReject(t *testing.T) {
	var logged bytes.Buffer
	gw, err := gateway.New(gateway.Config{
		Addr:   "127.0.0.1:0",
		Daemon: &stubDaemon{},
		Token:  auth.NewToken(testToken),
		Logf:   func(format string, args ...any) { fmt.Fprintf(&logged, format+"\n", args...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	resp := doRaw(t, http.MethodGet, "http://"+gw.Addr()+"/v2/status", "Bearer leak-me-"+testToken, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status %d, want 401", resp.StatusCode)
	}
	if s := logged.String(); strings.Contains(s, testToken) || strings.Contains(s, "leak-me") {
		t.Fatalf("presented credential reached the log: %q", s)
	}
	if logged.Len() == 0 {
		t.Fatal("rejected request was not logged at all")
	}
}

func TestGatewayRefusesEmptyToken(t *testing.T) {
	_, err := gateway.New(gateway.Config{Addr: "127.0.0.1:0", Daemon: &stubDaemon{}})
	if err == nil {
		t.Fatal("gateway started without a bearer token")
	}
}

// stubDaemon answers every Handle with a canned status so the full
// error table can be exercised through a real listener.
type stubDaemon struct {
	status proto.StatusCode
	errMsg string
}

func (s *stubDaemon) Handle(peer transport.PeerInfo, req *proto.Request) *proto.Response {
	if s.status == proto.Success {
		return &proto.Response{Status: proto.Success, TaskID: req.TaskID, Stats: &proto.TaskStats{}}
	}
	return &proto.Response{Status: s.status, Error: s.errMsg}
}
func (s *stubDaemon) RangeTasks(fn func(*task.Task)) {}
func (s *stubDaemon) SubmitBatchAtomic(specs []proto.TaskSpec, pid uint64, admin bool) ([]uint64, error) {
	return nil, nil
}
func (s *stubDaemon) ValidateSpec(spec *proto.TaskSpec, pid uint64, admin bool) error { return nil }
func (s *stubDaemon) HasTask(id uint64) bool                                          { return false }
func (s *stubDaemon) NodeName() string                                                { return "stub" }

// TestErrorStatusTable round-trips every protocol status code through a
// real listener and asserts the documented HTTP mapping.
func TestErrorStatusTable(t *testing.T) {
	stub := &stubDaemon{}
	gw, err := gateway.New(gateway.Config{
		Addr:   "127.0.0.1:0",
		Daemon: stub,
		Token:  auth.NewToken(testToken),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	table := []struct {
		code proto.StatusCode
		want int
	}{
		{proto.Success, 200},
		{proto.EBadRequest, 400},
		{proto.ENotFound, 404},
		{proto.EExists, 409},
		{proto.EPermission, 403},
		{proto.ETaskError, 422},
		{proto.ETimeout, 504},
		{proto.EAgain, 429},
		{proto.EInternal, 500},
	}
	for _, c := range table {
		stub.status = c.code
		stub.errMsg = "stubbed " + c.code.String()
		resp := doRaw(t, http.MethodDelete, "http://"+gw.Addr()+"/v2/tasks/7", "Bearer "+testToken, nil)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: HTTP %d, want %d", c.code, resp.StatusCode, c.want)
		}
		if c.code == proto.Success {
			continue
		}
		var env struct {
			Error struct{ Code, Message string }
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: malformed envelope %s", c.code, body)
			continue
		}
		if env.Error.Code != c.code.String() {
			t.Errorf("%s: envelope code %q", c.code, env.Error.Code)
		}
	}
}

func TestSubmitLifecycle(t *testing.T) {
	d := newDaemon(t, nil)
	c := testClient(d)
	ctx := context.Background()

	rec := noopRecord()
	res, err := c.Submit(ctx, &rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskID == 0 {
		t.Fatal("submit assigned no task ID")
	}

	// NoOp tasks finish promptly; poll the status endpoint to terminal.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.TaskStatus(ctx, res.TaskID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == task.Finished.String() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("task %d stuck in %s", res.TaskID, st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Unknown task IDs are 404s mapped to ENotFound.
	if _, err := c.TaskStatus(ctx, 99999); err == nil {
		t.Fatal("status of unknown task succeeded")
	} else if !strings.Contains(err.Error(), proto.ENotFound.String()) {
		t.Fatalf("unknown task error = %v, want %s", err, proto.ENotFound)
	}
	if _, err := c.Cancel(ctx, 99999); err == nil {
		t.Fatal("cancel of unknown task succeeded")
	}
}

func TestSubmitBatchPerEntry(t *testing.T) {
	d := newDaemon(t, nil)
	c := testClient(d)

	recs := make([]gateway.Record, 8)
	for i := range recs {
		recs[i] = noopRecord()
	}
	results, err := c.SubmitBatch(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(recs) {
		t.Fatalf("%d results for %d records", len(results), len(recs))
	}
	seen := map[uint64]bool{}
	for i, r := range results {
		if r.Status != proto.Success.String() {
			t.Errorf("entry %d: %s %s", i, r.Status, r.Error)
		}
		if seen[r.TaskID] {
			t.Errorf("entry %d: duplicate task ID %d", i, r.TaskID)
		}
		seen[r.TaskID] = true
	}
}

func TestSubmitMalformed(t *testing.T) {
	d := newDaemon(t, nil)
	base := "http://" + d.HTTPAddr()
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad JSON", `{"kind":`, 400},
		{"unknown kind", `{"kind":"teleport","input":{"kind":"memory"},"output":{"kind":"memory"}}`, 400},
		{"unknown field", `{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"},"frobnicate":1}`, 400},
		{"empty batch", `{"tasks":[]}`, 400},
		{"bad batch entry", `{"tasks":[{"kind":"noop","input":{"kind":"lustre"},"output":{"kind":"memory"}}]}`, 400},
	}
	for _, c := range cases {
		resp := doRaw(t, http.MethodPost, base+"/v2/tasks", "Bearer "+testToken, strings.NewReader(c.body))
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: HTTP %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

func TestOversizeBodyRejected(t *testing.T) {
	d := newDaemon(t, func(cfg *urd.Config) { cfg.HTTPMaxBody = 1024 })
	base := "http://" + d.HTTPAddr()
	big := `{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"},"node":"` +
		strings.Repeat("x", 4096) + `"}`
	resp := doRaw(t, http.MethodPost, base+"/v2/tasks", "Bearer "+testToken, strings.NewReader(big))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("HTTP %d (%s), want 413", resp.StatusCode, body)
	}
}

func TestStatusEndpoint(t *testing.T) {
	d := newDaemon(t, nil)
	st, err := testClient(d).Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "gwtest" {
		t.Errorf("node %q, want gwtest", st.Node)
	}
	if st.Version == "" || st.Policy == "" {
		t.Errorf("incomplete status: %+v", st)
	}
}

// TestSSEDrivesBatchToTerminal submits a 100-task batch and watches it
// to terminal purely over the SSE stream: every task's terminal event
// arrives, the stream ends with the completion frame, and the daemon
// served zero status polls — the acceptance gauge of the event-driven
// API.
func TestSSEDrivesBatchToTerminal(t *testing.T) {
	d := newDaemon(t, nil)
	c := testClient(d)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	recs := make([]gateway.Record, 100)
	for i := range recs {
		recs[i] = noopRecord()
	}
	results, err := c.SubmitBatch(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 0, len(results))
	for _, r := range results {
		if r.Status != proto.Success.String() {
			t.Fatalf("batch entry rejected: %s %s", r.Status, r.Error)
		}
		ids = append(ids, r.TaskID)
	}

	terminal := map[uint64]bool{}
	sawEnd := false
	err = c.Events(ctx, ids, 0, func(ev gateway.SSEEvent) bool {
		if ev.Gap {
			t.Errorf("explicit subscription dropped %d events", ev.Dropped)
			return true
		}
		if ev.Kind == "end" {
			sawEnd = true
			return false
		}
		if ev.Stats != nil {
			switch ev.Stats.Status {
			case task.Finished.String(), task.Failed.String(), task.Cancelled.String():
				terminal[ev.TaskID] = true
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawEnd {
		t.Fatal("stream ended without the completion frame")
	}
	if len(terminal) != len(ids) {
		t.Fatalf("saw %d terminal tasks, want %d", len(terminal), len(ids))
	}
	if polls := d.StatusPolls(); polls != 0 {
		t.Fatalf("daemon served %d status polls; the SSE path must drive the batch with zero", polls)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	d := newDaemon(t, nil)
	resp := doRaw(t, http.MethodPut, "http://"+d.HTTPAddr()+"/v2/tasks", "Bearer "+testToken, strings.NewReader("{}"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v2/tasks: HTTP %d, want 405", resp.StatusCode)
	}
}
