package gateway_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/gateway"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
	"github.com/ngioproject/norns-go/internal/urd"
)

// waitAllTerminal watches the given tasks to terminal over SSE.
func waitAllTerminal(t *testing.T, c *gateway.Client, ids []uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := c.Events(ctx, ids, 0, func(ev gateway.SSEEvent) bool { return ev.Kind != "end" })
	if err != nil {
		t.Fatal(err)
	}
}

// specKey reduces a record to its submission-relevant identity — the
// fields import actually replays. Runtime annotations (status, byte
// counters, the exporter's ID and node) are excluded by design.
func specKey(rec *gateway.Record) string {
	res := func(r gateway.Resource) string {
		return fmt.Sprintf("%s|%s|%s|%s|%d|%x", r.Kind, r.Dataspace, r.Path, r.Node, r.Size, r.Data)
	}
	return fmt.Sprintf("%s/%s/%s/p%d/j%d/b%d", rec.Kind, res(rec.Input), res(rec.Output),
		rec.Priority, rec.JobID, rec.MaxBps)
}

// exportKeys exports from c and returns the multiset of spec keys.
func exportKeys(t *testing.T, c *gateway.Client, state string) map[string]int {
	t.Helper()
	var buf bytes.Buffer
	n, err := c.Export(context.Background(), &buf, state)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]int{}
	lines := 0
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec, err := gateway.DecodeRecord(line)
		if err != nil {
			t.Fatalf("export produced an undecodable line: %v\n%s", err, line)
		}
		keys[specKey(rec)]++
		lines++
	}
	if lines != n {
		t.Fatalf("X-Norns-Tasks says %d, body has %d lines", n, lines)
	}
	return keys
}

// TestExportImportRoundTrip is the lossless round-trip acceptance: a
// varied task set exported from daemon A and imported into a fresh
// daemon B exports from B with an identical spec multiset.
func TestExportImportRoundTrip(t *testing.T) {
	a := newDaemon(t, nil)
	ca := testClient(a)
	ctx := context.Background()

	recs := []gateway.Record{
		{Kind: "noop", Input: gateway.Resource{Kind: "memory"}, Output: gateway.Resource{Kind: "memory"}},
		{Kind: "noop", Input: gateway.Resource{Kind: "memory", Data: []byte("payload-a")}, Output: gateway.Resource{Kind: "memory"}, Priority: 7},
		{Kind: "noop", Input: gateway.Resource{Kind: "memory", Size: 4096}, Output: gateway.Resource{Kind: "memory"}, JobID: 42},
		{Kind: "noop", Input: gateway.Resource{Kind: "memory"}, Output: gateway.Resource{Kind: "memory"}, MaxBps: 1 << 20},
	}
	var ndjson bytes.Buffer
	enc := json.NewEncoder(&ndjson)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ca.Import(ctx, bytes.NewReader(ndjson.Bytes()), gateway.ImportOptions{IncludeIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != len(recs) || res.Failed != 0 {
		t.Fatalf("import: %+v", res)
	}
	waitAllTerminal(t, ca, res.TaskIDs)

	wantKeys := exportKeys(t, ca, "")
	var exported bytes.Buffer
	if _, err := ca.Export(ctx, &exported, ""); err != nil {
		t.Fatal(err)
	}

	b := newDaemon(t, nil)
	cb := testClient(b)
	resB, err := cb.Import(ctx, bytes.NewReader(exported.Bytes()), gateway.ImportOptions{Atomic: true, IncludeIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Submitted != len(recs) {
		t.Fatalf("B accepted %d of %d", resB.Submitted, len(recs))
	}
	waitAllTerminal(t, cb, resB.TaskIDs)

	gotKeys := exportKeys(t, cb, "")
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("key sets differ: %d vs %d distinct specs", len(gotKeys), len(wantKeys))
	}
	for k, n := range wantKeys {
		if gotKeys[k] != n {
			t.Errorf("spec %q: %d on A, %d on B", k, n, gotKeys[k])
		}
	}
}

// TestDryRunMutatesNothing proves ?dry_run=1 validates without side
// effects: no tasks registered, no journal entries, and — via the next
// real submission's assigned ID — no task IDs consumed.
func TestDryRunMutatesNothing(t *testing.T) {
	state := t.TempDir()
	d := newDaemon(t, func(cfg *urd.Config) { cfg.StateDir = state })
	c := testClient(d)
	ctx := context.Background()

	ndjson := strings.Join([]string{
		`{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"}}`,
		`{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"},"priority":3}`,
		`{"kind":"warp","input":{"kind":"memory"},"output":{"kind":"memory"}}`, // invalid
	}, "\n")
	res, err := c.Import(ctx, strings.NewReader(ndjson), gateway.ImportOptions{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DryRun || res.Submitted != 2 || res.Failed != 1 {
		t.Fatalf("dry run summary: %+v", res)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 0 || st.Pending != 0 {
		t.Fatalf("dry run registered tasks: %+v", st)
	}
	// The ID counter must be untouched: the first real submission gets 1.
	rec := noopRecord()
	sub, err := c.Submit(ctx, &rec)
	if err != nil {
		t.Fatal(err)
	}
	if sub.TaskID != 1 {
		t.Fatalf("first real task got ID %d; the dry run consumed IDs", sub.TaskID)
	}
	waitAllTerminal(t, c, []uint64{sub.TaskID})

	// Restart from the journal: only the one real task may surface.
	d.Close()
	d2, err := urd.New(urd.Config{NodeName: "gwtest", Workers: 2, StateDir: state})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec2 := d2.Recovered()
	if rec2.Pending != 0 || rec2.Running != 0 || rec2.Terminal != 1 {
		t.Fatalf("journal after dry run replayed %+v, want exactly the one real task", rec2)
	}
}

// TestAtomicImportMidStreamFailure injects a malformed record mid-
// stream and asserts the all-or-nothing contract: nothing lands in the
// registry or the journal, restart included.
func TestAtomicImportMidStreamFailure(t *testing.T) {
	state := t.TempDir()
	d := newDaemon(t, func(cfg *urd.Config) { cfg.StateDir = state })
	c := testClient(d)
	ctx := context.Background()

	var ndjson strings.Builder
	for i := 0; i < 5; i++ {
		ndjson.WriteString(`{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"}}` + "\n")
	}
	ndjson.WriteString(`{"kind":"noop","input":{"kind":"memory"},"output":` + "\n") // truncated
	for i := 0; i < 5; i++ {
		ndjson.WriteString(`{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"}}` + "\n")
	}
	_, err := c.Import(ctx, strings.NewReader(ndjson.String()), gateway.ImportOptions{Atomic: true})
	if err == nil {
		t.Fatal("atomic import with a malformed line succeeded")
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 0 || st.Pending != 0 {
		t.Fatalf("partial batch visible after failed atomic import: %+v", st)
	}

	d.Close()
	d2, err := urd.New(urd.Config{NodeName: "gwtest", Workers: 2, StateDir: state})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec := d2.Recovered(); rec.Requeued() != 0 || rec.Terminal != 0 || rec.Cancelled != 0 {
		t.Fatalf("failed atomic import left journal entries: %+v", rec)
	}
}

// TestAtomicImportBackpressure: a batch that does not fit MaxInFlight
// is refused whole with the backpressure status, zero entries admitted.
func TestAtomicImportBackpressure(t *testing.T) {
	d := newDaemon(t, func(cfg *urd.Config) { cfg.MaxInFlight = 4 })
	c := testClient(d)

	var ndjson strings.Builder
	for i := 0; i < 8; i++ {
		ndjson.WriteString(`{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"}}` + "\n")
	}
	_, err := c.Import(context.Background(), strings.NewReader(ndjson.String()), gateway.ImportOptions{Atomic: true})
	if err == nil {
		t.Fatal("oversized atomic batch succeeded")
	}
	if !strings.Contains(err.Error(), proto.EAgain.String()) {
		t.Fatalf("error %v, want %s", err, proto.EAgain)
	}
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 0 {
		t.Fatalf("refused batch left %d tasks", st.Tasks)
	}
}

// TestAtomicImportSuccess: the happy path lands every entry.
func TestAtomicImportSuccess(t *testing.T) {
	d := newDaemon(t, nil)
	c := testClient(d)
	var ndjson strings.Builder
	for i := 0; i < 10; i++ {
		ndjson.WriteString(fmt.Sprintf(`{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"},"priority":%d}`+"\n", i))
	}
	res, err := c.Import(context.Background(), strings.NewReader(ndjson.String()), gateway.ImportOptions{Atomic: true, IncludeIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 10 || len(res.TaskIDs) != 10 {
		t.Fatalf("atomic import: %+v", res)
	}
	waitAllTerminal(t, c, res.TaskIDs)
}

func seedTasks(t *testing.T, c *gateway.Client, n int) []uint64 {
	t.Helper()
	recs := make([]gateway.Record, n)
	for i := range recs {
		recs[i] = noopRecord()
	}
	results, err := c.SubmitBatch(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, len(results))
	for i, r := range results {
		ids[i] = r.TaskID
	}
	waitAllTerminal(t, c, ids)
	return ids
}

func TestImportDedupeModes(t *testing.T) {
	ctx := context.Background()
	line := func(id uint64) string {
		return fmt.Sprintf(`{"id":%d,"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"}}`, id)
	}

	t.Run("skip", func(t *testing.T) {
		d := newDaemon(t, nil)
		c := testClient(d)
		ids := seedTasks(t, c, 2)
		body := line(ids[0]) + "\n" + line(9999) + "\n"
		res, err := c.Import(ctx, strings.NewReader(body), gateway.ImportOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Skipped != 1 || res.Submitted != 1 || res.Failed != 0 {
			t.Fatalf("skip mode: %+v", res)
		}
	})

	t.Run("error", func(t *testing.T) {
		d := newDaemon(t, nil)
		c := testClient(d)
		ids := seedTasks(t, c, 1)
		res, err := c.Import(ctx, strings.NewReader(line(ids[0])+"\n"), gateway.ImportOptions{Dedupe: "error"})
		if err == nil {
			t.Fatalf("duplicate accepted in error mode: %+v", res)
		}
		if !strings.Contains(err.Error(), proto.EExists.String()) {
			t.Fatalf("error %v, want %s", err, proto.EExists)
		}
	})

	t.Run("overwrite", func(t *testing.T) {
		d := newDaemon(t, nil)
		c := testClient(d)
		ids := seedTasks(t, c, 1)
		res, err := c.Import(ctx, strings.NewReader(line(ids[0])+"\n"), gateway.ImportOptions{Dedupe: "overwrite", IncludeIDs: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Overwritten != 1 || res.Submitted != 1 {
			t.Fatalf("overwrite mode: %+v", res)
		}
		waitAllTerminal(t, c, res.TaskIDs)
	})

	t.Run("in-stream duplicate", func(t *testing.T) {
		d := newDaemon(t, nil)
		c := testClient(d)
		body := line(7) + "\n" + line(7) + "\n"
		res, err := c.Import(ctx, strings.NewReader(body), gateway.ImportOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Skipped != 1 || res.Submitted != 1 {
			t.Fatalf("in-stream dup: %+v", res)
		}
	})

	t.Run("bad mode", func(t *testing.T) {
		d := newDaemon(t, nil)
		c := testClient(d)
		_, err := c.Import(ctx, strings.NewReader(""), gateway.ImportOptions{Dedupe: "merge"})
		if err == nil {
			t.Fatal("unknown dedupe mode accepted")
		}
	})
}

func TestImportOversizeLine(t *testing.T) {
	ctx := context.Background()
	long := `{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"},"node":"` +
		strings.Repeat("x", 2048) + `"}`
	ok := `{"kind":"noop","input":{"kind":"memory"},"output":{"kind":"memory"}}`

	t.Run("streaming fails the one record", func(t *testing.T) {
		d := newDaemon(t, func(cfg *urd.Config) { cfg.HTTPMaxLine = 512 })
		c := testClient(d)
		res, err := c.Import(ctx, strings.NewReader(ok+"\n"+long+"\n"+ok+"\n"), gateway.ImportOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Submitted != 2 || res.Failed != 1 {
			t.Fatalf("streaming oversize: %+v", res)
		}
	})

	t.Run("atomic aborts with 413", func(t *testing.T) {
		d := newDaemon(t, func(cfg *urd.Config) { cfg.HTTPMaxLine = 512 })
		c := testClient(d)
		_, err := c.Import(ctx, strings.NewReader(ok+"\n"+long+"\n"), gateway.ImportOptions{Atomic: true})
		if err == nil {
			t.Fatal("atomic import with oversize line succeeded")
		}
		st, serr := c.Status(ctx)
		if serr != nil {
			t.Fatal(serr)
		}
		if st.Tasks != 0 {
			t.Fatalf("aborted atomic import left %d tasks", st.Tasks)
		}
	})
}

func TestExportStateFilter(t *testing.T) {
	d := newDaemon(t, nil)
	c := testClient(d)
	seedTasks(t, c, 3)

	var buf bytes.Buffer
	n, err := c.Export(context.Background(), &buf, "terminal")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("terminal export: %d tasks, want 3", n)
	}
	if n, err = c.Export(context.Background(), &buf, "pending"); err != nil || n != 0 {
		t.Fatalf("pending export: n=%d err=%v, want 0 tasks", n, err)
	}
	if _, err := c.Export(context.Background(), &buf, "bogus"); err == nil {
		t.Fatal("unknown state filter accepted")
	}
}

// registerMemDS registers an in-memory dataspace directly through the
// daemon's dispatch (the same OpRegisterDataspace the control socket
// carries).
func registerMemDS(t *testing.T, d *urd.Daemon, id string) {
	t.Helper()
	resp := d.Handle(transport.PeerInfo{Control: true, Addr: "test"}, &proto.Request{
		Op:        proto.OpRegisterDataspace,
		Dataspace: &proto.DataspaceSpec{ID: id, Backend: 5 /* memory */},
	})
	if resp.Status != proto.Success {
		t.Fatalf("register dataspace %s: %s %s", id, resp.Status, resp.Error)
	}
}

// TestDrain moves a populated pending queue between two daemons and
// checks the task and byte counters line up.
func TestDrain(t *testing.T) {
	// One worker on the route, and a blocker task throttled to a crawl
	// by its per-task bandwidth cap: everything submitted behind it on
	// the same route stays pending — the queue the drain moves. The
	// small BufSize keeps chunks short so the blocker's cancellation
	// (and the daemon's graceful drain) stays prompt.
	src := newDaemon(t, func(cfg *urd.Config) {
		cfg.Workers = 1
		cfg.BufSize = 4 << 10
	})
	cs := testClient(src)
	registerMemDS(t, src, "mem0://")
	ctx := context.Background()

	blocker := gateway.Record{
		Kind:   "copy",
		Input:  gateway.Resource{Kind: "memory", Data: bytes.Repeat([]byte("b"), 64<<10), Size: 64 << 10},
		Output: gateway.Resource{Kind: "local-path", Dataspace: "mem0://", Path: "blocker"},
		MaxBps: 2048, // ~32s at 64KiB: the queue behind it cannot move
	}
	blockRes, err := cs.Submit(ctx, &blocker)
	if err != nil {
		t.Fatal(err)
	}
	// Without this, the daemon's graceful Close would wait the throttled
	// transfer out.
	defer cs.Cancel(ctx, blockRes.TaskID)
	const pending, payload = 5, 1 << 10
	for i := 0; i < pending; i++ {
		rec := gateway.Record{
			Kind:   "copy",
			Input:  gateway.Resource{Kind: "memory", Data: bytes.Repeat([]byte{byte('a' + i)}, payload), Size: payload},
			Output: gateway.Resource{Kind: "local-path", Dataspace: "mem0://", Path: fmt.Sprintf("f%d", i)},
		}
		if _, err := cs.Submit(ctx, &rec); err != nil {
			t.Fatal(err)
		}
	}

	dst := newDaemon(t, nil)
	registerMemDS(t, dst, "mem0://")
	cd := testClient(dst)

	res, err := cs.Drain(ctx, cd)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != pending || res.Imported != pending {
		t.Fatalf("drain moved %d/%d tasks, want %d", res.Tasks, res.Imported, pending)
	}
	if res.Bytes != pending*payload {
		t.Fatalf("drain counted %d bytes, want %d", res.Bytes, pending*payload)
	}
	if res.Cancelled != pending {
		t.Fatalf("drain cancelled %d at source, want %d", res.Cancelled, pending)
	}

	// The moved tasks run to completion on the destination.
	stD, err := cd.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stD.Tasks != pending {
		t.Fatalf("destination holds %d tasks, want %d", stD.Tasks, pending)
	}
	var ids []uint64
	dst.RangeTasks(func(tk *task.Task) { ids = append(ids, tk.ID) })
	waitAllTerminal(t, cd, ids)
	for _, id := range ids {
		st, err := cd.TaskStatus(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != task.Finished.String() {
			t.Errorf("moved task %d: %s %s", id, st.Status, st.Error)
		}
		if st.MovedBytes != payload {
			t.Errorf("moved task %d transferred %d bytes, want %d", id, st.MovedBytes, payload)
		}
	}

	// At the source, the drained tasks are cancelled and the pending
	// queue is empty (only the blocker remains active).
	stS, err := cs.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stS.Pending != 0 {
		t.Fatalf("source still has %d pending tasks after drain", stS.Pending)
	}
}
