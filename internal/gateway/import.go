package gateway

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/ngioproject/norns-go/internal/api/apierr"
	"github.com/ngioproject/norns-go/internal/proto"
)

// importChunk is the streaming import's submit granularity: decoded
// records are batched onto OpSubmitBatch in chunks of this many, so a
// million-line file costs thousands of journal group-commits instead
// of a million — and never more than one chunk of specs in memory.
const importChunk = 256

// ImportResult summarizes a bulk import.
type ImportResult struct {
	// Lines is how many NDJSON records the request carried (blank lines
	// excluded).
	Lines int `json:"lines"`
	// Submitted tasks were accepted; Skipped were dropped by
	// dedupe=skip; Overwritten counts dedupe=overwrite replacements
	// (each also counts in Submitted); Failed covers per-entry rejects
	// (bad spec, backpressure) in streaming mode.
	Submitted   int  `json:"submitted"`
	Skipped     int  `json:"skipped"`
	Overwritten int  `json:"overwritten"`
	Failed      int  `json:"failed"`
	DryRun      bool `json:"dry_run,omitempty"`
	Atomic      bool `json:"atomic,omitempty"`
	// TaskIDs are the assigned IDs, present only with ?ids=1 (a
	// million-task import should not echo a million IDs by default).
	TaskIDs []uint64 `json:"task_ids,omitempty"`
	// Errors carries the first importMaxErrors per-line failures.
	Errors []ImportError `json:"errors,omitempty"`
}

// ImportError locates one rejected record.
type ImportError struct {
	Line    int    `json:"line"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// importMaxErrors caps the error list echoed back.
const importMaxErrors = 16

// dedupe modes.
const (
	dedupeSkip      = "skip"
	dedupeOverwrite = "overwrite"
	dedupeError     = "error"
)

// importOpts are the parsed ?dry_run / ?atomic / ?dedupe / ?ids query
// modes.
type importOpts struct {
	dryRun     bool
	atomic     bool
	dedupe     string
	includeIDs bool
}

func parseImportOpts(r *http.Request) (importOpts, error) {
	q := r.URL.Query()
	opts := importOpts{dedupe: dedupeSkip}
	boolParam := func(name string) bool {
		v := q.Get(name)
		return v == "1" || v == "true"
	}
	opts.dryRun = boolParam("dry_run")
	opts.atomic = boolParam("atomic")
	opts.includeIDs = boolParam("ids")
	if d := q.Get("dedupe"); d != "" {
		switch d {
		case dedupeSkip, dedupeOverwrite, dedupeError:
			opts.dedupe = d
		default:
			return opts, fmt.Errorf("unknown dedupe mode %q (want skip|overwrite|error)", d)
		}
	}
	return opts, nil
}

// deduper tracks record IDs across one import stream: a record is a
// duplicate when its ID already resolves on the destination daemon
// (re-importing a file into the daemon that exported it) or appeared
// earlier in the same stream.
type deduper struct {
	d    Daemon
	seen map[uint64]struct{}
}

func newDeduper(d Daemon) *deduper {
	return &deduper{d: d, seen: make(map[uint64]struct{})}
}

// dup reports whether rec's ID is a duplicate, recording it either way.
// Records without an ID never collide.
func (dd *deduper) dup(rec *Record) bool {
	if rec.ID == 0 {
		return false
	}
	if _, ok := dd.seen[rec.ID]; ok {
		return true
	}
	dd.seen[rec.ID] = struct{}{}
	return dd.d.HasTask(rec.ID)
}

// statusOfErr extracts the protocol status from a daemon bulk error
// (*apierr.Error); anything untyped is EInternal.
func statusOfErr(err error) proto.StatusCode {
	var ae *apierr.Error
	if errors.As(err, &ae) {
		return ae.Code
	}
	return proto.EInternal
}

// handleImport serves POST /v2/import: an NDJSON stream of Records,
// decoded line-by-line under the MaxLine clamp (the body itself has no
// total-size clamp — that is the point of streaming).
//
//	?dry_run=1   validate every record, submit nothing, mutate nothing
//	?atomic=1    stage the whole stream and submit all-or-nothing via
//	             one journal-backed batch; any bad line or a failed
//	             admission aborts with zero tasks visible
//	?dedupe=     skip (default) | overwrite | error — what to do when a
//	             record's ID already exists (see deduper)
//	?ids=1       echo assigned task IDs in the summary
//
// Streaming mode (neither flag) submits as it reads with per-entry
// acceptance: a bad line or a backpressured entry fails that record
// and the rest proceed.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	opts, err := parseImportOpts(r)
	if err != nil {
		writeError(w, 0, proto.EBadRequest, err.Error())
		return
	}
	defer r.Body.Close()
	lr := newLineReader(r.Body, s.cfg.MaxLine)
	switch {
	case opts.dryRun:
		s.importDryRun(w, lr, opts)
	case opts.atomic:
		s.importAtomic(w, lr, opts)
	default:
		s.importStream(w, lr, opts)
	}
}

// importError renders a failed import. The summary so far rides in the
// envelope's sibling field so an operator sees how far the stream got.
func importError(w http.ResponseWriter, httpStatus int, code proto.StatusCode, msg string, res *ImportResult) {
	if httpStatus == 0 {
		httpStatus = apierr.HTTPStatus(code)
	}
	writeJSON(w, httpStatus, struct {
		Error  errorInfo    `json:"error"`
		Import ImportResult `json:"import"`
	}{errorInfo{Code: code.String(), Message: msg}, *res})
}

// lineError classifies a reader failure: oversize lines are 413 with
// the clamp named, transport errors are 400.
func lineErrParams(err error, line int) (int, proto.StatusCode, string) {
	if errors.Is(err, errLineTooLong) {
		return http.StatusRequestEntityTooLarge, proto.EBadRequest,
			fmt.Sprintf("line %d: %v", line, err)
	}
	return 0, proto.EBadRequest, fmt.Sprintf("line %d: read: %v", line, err)
}

// importDryRun validates every record through the daemon's real
// validation+authorization pipeline (and the dedupe bookkeeping) but
// submits nothing. Guaranteed side-effect free: ValidateSpec allocates
// no ID, registers nothing, journals nothing.
func (s *Server) importDryRun(w http.ResponseWriter, lr *lineReader, opts importOpts) {
	res := ImportResult{DryRun: true}
	dd := newDeduper(s.cfg.Daemon)
	addErr := func(line int, code proto.StatusCode, msg string) {
		res.Failed++
		if len(res.Errors) < importMaxErrors {
			res.Errors = append(res.Errors, ImportError{Line: line, Code: code.String(), Message: msg})
		}
	}
	line := 0
	for {
		raw, err := lr.next()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			if errors.Is(err, errLineTooLong) {
				res.Lines = line
				addErr(line, proto.EBadRequest, err.Error())
				continue
			}
			httpSt, code, msg := lineErrParams(err, line)
			importError(w, httpSt, code, msg, &res)
			return
		}
		res.Lines = line
		rec, err := DecodeRecord(raw)
		if err != nil {
			addErr(line, proto.EBadRequest, err.Error())
			continue
		}
		if dd.dup(rec) {
			switch opts.dedupe {
			case dedupeSkip:
				res.Skipped++
				continue
			case dedupeError:
				addErr(line, proto.EExists, fmt.Sprintf("duplicate task ID %d", rec.ID))
				continue
			case dedupeOverwrite:
				res.Overwritten++
			}
		}
		spec := rec.TaskSpec()
		if err := s.cfg.Daemon.ValidateSpec(&spec, 0, true); err != nil {
			addErr(line, statusOfErr(err), err.Error())
			continue
		}
		res.Submitted++ // "would submit"
	}
	writeJSON(w, http.StatusOK, res)
}

// importAtomic stages the whole stream, then submits it as one
// journal-backed batch: any malformed line, oversize line, dedupe=error
// hit, or failed admission aborts the import with nothing submitted —
// no partial batch in the registry or the journal, restart included
// (SubmitBatchAtomic registers and journals only after every entry is
// validated and admitted).
func (s *Server) importAtomic(w http.ResponseWriter, lr *lineReader, opts importOpts) {
	res := ImportResult{Atomic: true}
	dd := newDeduper(s.cfg.Daemon)
	var specs []proto.TaskSpec
	var overwriteIDs []uint64
	line := 0
	for {
		raw, err := lr.next()
		if err == io.EOF {
			break
		}
		line++
		res.Lines = line
		if err != nil {
			httpSt, code, msg := lineErrParams(err, line)
			importError(w, httpSt, code, msg, &res)
			return
		}
		rec, err := DecodeRecord(raw)
		if err != nil {
			importError(w, 0, proto.EBadRequest, fmt.Sprintf("line %d: %v", line, err), &res)
			return
		}
		if dd.dup(rec) {
			switch opts.dedupe {
			case dedupeSkip:
				res.Skipped++
				continue
			case dedupeError:
				importError(w, 0, proto.EExists,
					fmt.Sprintf("line %d: duplicate task ID %d", line, rec.ID), &res)
				return
			case dedupeOverwrite:
				res.Overwritten++
				overwriteIDs = append(overwriteIDs, rec.ID)
			}
		}
		specs = append(specs, rec.TaskSpec())
	}
	// Overwrite cancels the existing tasks only once the whole stream
	// staged cleanly — before the batch lands, so the replacements do
	// not race their predecessors for queue slots. Cancel of an already-
	// terminal task is a no-op error by design.
	for _, id := range overwriteIDs {
		s.cfg.Daemon.Handle(httpPeer, &proto.Request{Op: proto.OpCancel, TaskID: id})
	}
	ids, err := s.cfg.Daemon.SubmitBatchAtomic(specs, 0, true)
	if err != nil {
		importError(w, 0, statusOfErr(err), err.Error(), &res)
		return
	}
	res.Submitted = len(ids)
	if opts.includeIDs {
		res.TaskIDs = ids
	}
	writeJSON(w, http.StatusOK, res)
}

// importStream is the default mode: submit while reading, one
// importChunk-sized OpSubmitBatch at a time, per-entry acceptance. A
// bad line fails that record; a dedupe=error hit aborts the rest of
// the stream (what was already submitted stays — use ?atomic=1 for
// all-or-nothing).
func (s *Server) importStream(w http.ResponseWriter, lr *lineReader, opts importOpts) {
	res := ImportResult{}
	dd := newDeduper(s.cfg.Daemon)
	addErr := func(line int, code proto.StatusCode, msg string) {
		res.Failed++
		if len(res.Errors) < importMaxErrors {
			res.Errors = append(res.Errors, ImportError{Line: line, Code: code.String(), Message: msg})
		}
	}
	chunk := make([]proto.TaskSpec, 0, importChunk)
	chunkLines := make([]int, 0, importChunk)
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		resp := s.cfg.Daemon.Handle(httpPeer, &proto.Request{Op: proto.OpSubmitBatch, Tasks: chunk})
		if resp.Status != proto.Success {
			importError(w, 0, resp.Status, resp.Error, &res)
			return false
		}
		for i, sr := range resp.Results {
			if proto.StatusCode(sr.Status) != proto.Success {
				addErr(chunkLines[i], proto.StatusCode(sr.Status), sr.Error)
				continue
			}
			res.Submitted++
			if opts.includeIDs {
				res.TaskIDs = append(res.TaskIDs, sr.TaskID)
			}
		}
		chunk = chunk[:0]
		chunkLines = chunkLines[:0]
		return true
	}
	line := 0
	for {
		raw, err := lr.next()
		if err == io.EOF {
			break
		}
		line++
		res.Lines = line
		if err != nil {
			if errors.Is(err, errLineTooLong) {
				addErr(line, proto.EBadRequest, err.Error())
				continue
			}
			httpSt, code, msg := lineErrParams(err, line)
			importError(w, httpSt, code, msg, &res)
			return
		}
		rec, err := DecodeRecord(raw)
		if err != nil {
			addErr(line, proto.EBadRequest, err.Error())
			continue
		}
		if dd.dup(rec) {
			switch opts.dedupe {
			case dedupeSkip:
				res.Skipped++
				continue
			case dedupeError:
				if !flush() {
					return
				}
				importError(w, 0, proto.EExists,
					fmt.Sprintf("line %d: duplicate task ID %d", line, rec.ID), &res)
				return
			case dedupeOverwrite:
				res.Overwritten++
				s.cfg.Daemon.Handle(httpPeer, &proto.Request{Op: proto.OpCancel, TaskID: rec.ID})
			}
		}
		chunk = append(chunk, rec.TaskSpec())
		chunkLines = append(chunkLines, line)
		if len(chunk) == importChunk {
			if !flush() {
				return
			}
		}
	}
	if !flush() {
		return
	}
	writeJSON(w, http.StatusOK, res)
}
