// Package auth implements the gateway's bearer-token authentication:
// one static shared secret loaded from a file, compared in constant
// time, and never echoed back into logs, errors, or repro bundles.
package auth

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// Redacted replaces secret material wherever request metadata is
// rendered (logs, error strings, repro bundles).
const Redacted = "[REDACTED]"

// Token is the gateway's shared bearer secret. The zero value (empty
// token) authorizes nothing — an unconfigured gateway must reject, not
// wave through.
type Token struct {
	secret []byte
}

// NewToken wraps a raw secret. Whitespace is trimmed so a token file
// with a trailing newline (the way every shell heredoc writes one)
// round-trips.
func NewToken(secret string) Token {
	return Token{secret: []byte(strings.TrimSpace(secret))}
}

// LoadFile reads the shared secret from path. An empty (or
// whitespace-only) file is an error: it would otherwise configure a
// gateway that accepts "Bearer " from anyone.
func LoadFile(path string) (Token, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Token{}, err
	}
	t := NewToken(string(raw))
	if t.Empty() {
		return Token{}, fmt.Errorf("auth: token file %s is empty", path)
	}
	return t, nil
}

// Empty reports whether no secret is configured.
func (t Token) Empty() bool { return len(t.secret) == 0 }

// Secret returns the raw secret — only for shuttling a loaded token
// into configuration (urd.Config.HTTPToken). Never format it into
// anything user-visible; that is what Redact exists for.
func (t Token) Secret() string { return string(t.secret) }

// Authorize checks an Authorization header value ("Bearer <secret>").
// The comparison is constant-time in the secret so the check leaks no
// prefix-length timing signal; scheme parsing is case-insensitive per
// RFC 7235. An empty configured token authorizes nothing.
func (t Token) Authorize(header string) bool {
	if t.Empty() {
		return false
	}
	const scheme = "Bearer "
	if len(header) < len(scheme) || !strings.EqualFold(header[:len(scheme)], scheme) {
		return false
	}
	presented := strings.TrimSpace(header[len(scheme):])
	return subtle.ConstantTimeCompare([]byte(presented), t.secret) == 1
}

// SanitizeHeaders returns a copy of h safe to render: every credential-
// bearing header is replaced with Redacted. Log and error paths must
// format request headers only through this.
func SanitizeHeaders(h http.Header) http.Header {
	out := make(http.Header, len(h))
	for k, vs := range h {
		if isSensitiveHeader(k) {
			out[k] = []string{Redacted}
			continue
		}
		out[k] = append([]string(nil), vs...)
	}
	return out
}

// Redact strips the credential out of one rendered string (an error
// message, a request line captured into a repro bundle): any occurrence
// of the secret is replaced with Redacted. A no-op for the empty token.
func (t Token) Redact(s string) string {
	if t.Empty() {
		return s
	}
	return strings.ReplaceAll(s, string(t.secret), Redacted)
}

func isSensitiveHeader(name string) bool {
	switch http.CanonicalHeaderKey(name) {
	case "Authorization", "Proxy-Authorization", "Cookie", "Set-Cookie":
		return true
	}
	return false
}
