package auth

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAuthorize(t *testing.T) {
	tok := NewToken("s3cret")
	cases := []struct {
		header string
		want   bool
	}{
		{"Bearer s3cret", true},
		{"bearer s3cret", true}, // scheme is case-insensitive (RFC 7235)
		{"BEARER s3cret", true},
		{"Bearer  s3cret ", true}, // surrounding whitespace tolerated
		{"Bearer s3cre", false},
		{"Bearer s3cretX", false},
		{"Bearer ", false},
		{"Bearer", false},
		{"s3cret", false}, // no scheme
		{"Basic s3cret", false},
		{"", false},
	}
	for _, c := range cases {
		if got := tok.Authorize(c.header); got != c.want {
			t.Errorf("Authorize(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

func TestEmptyTokenAuthorizesNothing(t *testing.T) {
	var zero Token
	for _, h := range []string{"", "Bearer ", "Bearer x", "Bearer  "} {
		if zero.Authorize(h) {
			t.Errorf("empty token authorized %q", h)
		}
	}
	if NewToken("  \n ").Authorize("Bearer ") {
		t.Error("whitespace-only token authorized an empty credential")
	}
}

func TestNewTokenTrims(t *testing.T) {
	if !NewToken("abc\n").Authorize("Bearer abc") {
		t.Error("trailing newline in the configured secret broke authorization")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "token")
	if err := os.WriteFile(path, []byte("hunter2\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	tok, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tok.Authorize("Bearer hunter2") {
		t.Error("loaded token rejected its own secret")
	}
	if tok.Secret() != "hunter2" {
		t.Errorf("Secret() = %q, want %q", tok.Secret(), "hunter2")
	}
}

func TestLoadFileRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "token")
	if err := os.WriteFile(path, []byte(" \n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("empty token file accepted; the gateway would wave through \"Bearer \"")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing token file accepted")
	}
}

func TestSanitizeHeaders(t *testing.T) {
	h := http.Header{}
	h.Set("Authorization", "Bearer s3cret")
	h.Set("Proxy-Authorization", "Basic abc")
	h.Set("Cookie", "session=xyz")
	h.Set("Content-Type", "application/json")
	out := SanitizeHeaders(h)
	for _, k := range []string{"Authorization", "Proxy-Authorization", "Cookie"} {
		if got := out.Get(k); got != Redacted {
			t.Errorf("%s = %q, want %q", k, got, Redacted)
		}
	}
	if got := out.Get("Content-Type"); got != "application/json" {
		t.Errorf("Content-Type = %q, clobbered", got)
	}
	// The copy must not alias the original's slices.
	out.Set("Content-Type", "mutated")
	if h.Get("Content-Type") != "application/json" {
		t.Error("SanitizeHeaders aliased the input header map")
	}
}

func TestRedact(t *testing.T) {
	tok := NewToken("s3cret")
	in := `request failed: Authorization: Bearer s3cret (retrying)`
	out := tok.Redact(in)
	if strings.Contains(out, "s3cret") {
		t.Fatalf("secret survived redaction: %q", out)
	}
	if !strings.Contains(out, Redacted) {
		t.Fatalf("redaction marker missing: %q", out)
	}
	var zero Token
	if zero.Redact(in) != in {
		t.Error("empty token mutated the input")
	}
}
