package experiments

import (
	"fmt"

	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/simnet"
	"github.com/ngioproject/norns-go/internal/simstore"
	"github.com/ngioproject/norns-go/internal/slurm"
	"github.com/ngioproject/norns-go/internal/workload"
)

// slurmEngine couples the calibrated testbed for the workflow tables
// with its engine: Lustre over a 56 Gbps IB link (aggregate ≈3.1 GB/s
// writes, ≈2.3 GB/s reads, per-client streams much slower), node-local
// DCPMM (tens of GB/s per node), and an Omni-Path-class fabric whose
// single-source redistribution path sustains ≈0.94 GB/s.
type slurmEngine struct {
	Eng *sim.Engine
	Env *slurm.SimEnv
}

func newWorkflowTestbed(stageDrag float64) *slurmEngine {
	eng := sim.NewEngine()
	env := slurm.NewSimEnv(eng)
	env.StageDrag = stageDrag
	env.AddTier("lustre://", simstore.NewPFS(eng, simstore.PFSConfig{
		Name:      "lustre",
		ReadBW:    2.27 * gb,
		WriteBW:   3.125 * gb,
		Stripes:   6,
		ClientCap: 0.35 * gb,
	}))
	env.AddTier("nvme0://", simstore.NewNodeLocal(eng, simstore.NodeLocalConfig{
		Name:   "dcpmm",
		ReadBW: 62 * gb, WriteBW: 50 * gb,
	}))
	env.Fabric = simnet.NewFabric(eng, 0.94*gb, 0, 0.0009)
	return &slurmEngine{Eng: eng, Env: env}
}

const (
	table3Bytes   = 100 * gb // 100 GB produced/consumed
	producerCPU   = 64.0     // producer compute seconds
	consumerCPU   = 30.0     // consumer compute seconds
	workflowProcs = 24       // parallel writer streams per node
)

// runWorkflowPair submits a producer->consumer workflow on the given
// data tier and returns the two component runtimes (compute+I/O phase
// durations, start to end).
func runWorkflowPair(tb *slurmEngine, tier string, sameNode bool) (prodSec, consSec float64, err error) {
	cfg := slurm.Config{Nodes: []string{"n1", "n2"}, DataAware: sameNode}
	ctl, err := slurm.NewController(tb.Env, cfg)
	if err != nil {
		return 0, 0, err
	}
	prodSpec := &slurm.JobSpec{
		Name: "producer", Nodes: 1, WorkflowStart: true,
		Payload: workload.Seq{
			workload.Compute{Seconds: producerCPU},
			workload.IO{Dataspace: tier, Ref: "inter", Bytes: table3Bytes, Write: true, Procs: workflowProcs},
		},
	}
	if sameNode {
		prodSpec.Persists = []slurm.PersistDirective{{Op: slurm.PersistStore, Location: tier + "inter"}}
	}
	prod, err := ctl.Submit(prodSpec)
	if err != nil {
		return 0, 0, err
	}
	cons, err := ctl.Submit(&slurm.JobSpec{
		Name: "consumer", Nodes: 1, WorkflowEnd: true, Dependencies: []slurm.JobID{prod},
		Payload: workload.Seq{
			workload.IO{Dataspace: tier, Ref: "inter", Procs: workflowProcs},
			workload.Compute{Seconds: consumerCPU},
		},
	})
	if err != nil {
		return 0, 0, err
	}
	tb.Eng.Run()
	pj, err := ctl.Job(prod)
	if err != nil {
		return 0, 0, err
	}
	cj, err := ctl.Job(cons)
	if err != nil {
		return 0, 0, err
	}
	if pj.State != slurm.JobCompleted || cj.State != slurm.JobCompleted {
		return 0, 0, fmt.Errorf("workflow did not complete: producer=%v (%s) consumer=%v (%s)",
			pj.State, pj.FailReason, cj.State, cj.FailReason)
	}
	return pj.EndTime - pj.StartTime, cj.EndTime - cj.StartTime, nil
}

// Table3 reproduces the synthetic producer/consumer workflow: 100 GB
// through Lustre (separate nodes, defeating the page cache) vs through
// node-local NVM (same node, data left in place). Paper: 96/74 s on
// Lustre vs 64/30 s on NVM — the NVM workflow is ≈46% faster.
func Table3() (*metrics.Table, error) {
	t := metrics.NewTable(
		"Table III — synthetic workflow benchmark using Lustre and/or NVMs",
		"Component", "Target", "Runtime (seconds)")
	lp, lc, err := runWorkflowPair(newWorkflowTestbed(0.15), "lustre://", false)
	if err != nil {
		return nil, err
	}
	np, nc, err := runWorkflowPair(newWorkflowTestbed(0.15), "nvme0://", true)
	if err != nil {
		return nil, err
	}
	t.AddRow("Producer", "Lustre", lp)
	t.AddRow("Consumer", "Lustre", lc)
	t.AddRow("Producer", "NVM", np)
	t.AddRow("Consumer", "NVM", nc)
	return t, nil
}

// hpcgUnderStaging runs the HPCG surrogate on a node while (optionally)
// a 100 GB staging transfer touches the same node, returning HPCG's
// runtime. stage selects none, stage-out (NVM -> Lustre) or stage-in
// (Lustre -> NVM).
func hpcgUnderStaging(stage string) (float64, error) {
	// The staging processes move 100 GB through the node's memory
	// hierarchy, competing with the memory-bound solver at roughly equal
	// weight while active.
	tb := newWorkflowTestbed(1.0)
	const hpcgBase = 122.0
	node := "n1"
	switch stage {
	case "out":
		tb.Env.PutData(node, "nvme0://outdata", table3Bytes)
	case "in":
		tb.Env.PutData("", "lustre://indata", table3Bytes)
	}
	ctx := &workload.Context{
		Eng:     tb.Eng,
		Nodes:   []string{node},
		Tier:    tb.Env.Tier,
		Mem:     tb.Env.Mem,
		PutData: func(n, r string, b float64) { tb.Env.PutData(n, r, b) },
		GetData: tb.Env.GetData,
	}
	var hpcgEnd float64
	var runErr error
	workload.HPCG(hpcgBase).Run(ctx, func(err error) {
		runErr = err
		hpcgEnd = tb.Eng.Now()
	})
	var stageErr error
	switch stage {
	case "out":
		d := slurm.StageDirective{Kind: slurm.StageOut, Origin: "nvme0://outdata", Destination: "lustre://outdata"}
		tb.Env.Stage(&slurm.Job{Spec: &slurm.JobSpec{}}, d, []string{node}, func(err error) { stageErr = err })
	case "in":
		d := slurm.StageDirective{Kind: slurm.StageIn, Origin: "lustre://indata", Destination: "nvme0://indata"}
		tb.Env.Stage(&slurm.Job{Spec: &slurm.JobSpec{}}, d, []string{node}, func(err error) { stageErr = err })
	}
	tb.Eng.Run()
	if runErr != nil {
		return 0, runErr
	}
	if stageErr != nil {
		return 0, stageErr
	}
	return hpcgEnd, nil
}

// Table4 reproduces the staging-impact benchmark: producer/consumer
// runtimes are unaffected by moving data between their nodes, but an
// HPCG instance on the node where staging runs slows by ≈15% (paper:
// 122 s -> 137 s under stage-out, 142 s under stage-in).
func Table4() (*metrics.Table, error) {
	t := metrics.NewTable(
		"Table IV — synthetic workflow benchmark with data staging",
		"Component", "Runtime (seconds)")
	np, nc, err := runWorkflowPair(newWorkflowTestbed(0.15), "nvme0://", true)
	if err != nil {
		return nil, err
	}
	out, err := hpcgUnderStaging("out")
	if err != nil {
		return nil, err
	}
	in, err := hpcgUnderStaging("in")
	if err != nil {
		return nil, err
	}
	base, err := hpcgUnderStaging("none")
	if err != nil {
		return nil, err
	}
	t.AddRow("Producer", np)
	t.AddRow("Consumer", nc)
	t.AddRow("HPCG stage out", out)
	t.AddRow("HPCG stage in", in)
	t.AddRow("HPCG no activity", base)
	return t, nil
}

// Table-V calibration: a ~43M-point mesh decomposed serially (30 GB of
// mesh data, 1105 s of compute), then a 768-rank solver over 16 nodes
// writing 160 GB of per-process output across 20 timesteps.
const (
	tab5MeshBytes   = 30 * gb
	tab5OutputBytes = 160 * gb
	tab5DecompCPU   = 1105.0
	tab5SolverCPU   = 59.0
	tab5SolverNodes = 16
)

// Table5 reproduces the OpenFOAM aircraft-simulation workflow: full run
// on Lustre vs decompose-on-NVM + redistribution staging + solver-on-NVM
// (paper: decomposition 1191 vs 1105 s, staging 32 s, solver 123 vs
// 66 s — about 2x on the solver).
func Table5() (*metrics.Table, error) {
	t := metrics.NewTable(
		"Table V — OpenFOAM workflow using Lustre vs NVMs + data staging",
		"Workflow phase", "Lustre (s)", "NVMs (s)")

	runPhases := func(tier string, staged bool) (decomp, staging, solver float64, err error) {
		tb := newWorkflowTestbed(0.15)
		nodes := make([]string, tab5SolverNodes)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%d", i+1)
		}
		ctl, cerr := slurm.NewController(tb.Env, slurm.Config{Nodes: nodes, DataAware: true})
		if cerr != nil {
			return 0, 0, 0, cerr
		}
		decompSpec := &slurm.JobSpec{
			Name: "decompose", Nodes: 1, WorkflowStart: true,
			// The decomposition is serial: a single writer stream.
			Payload: workload.Seq{
				workload.Compute{Seconds: tab5DecompCPU},
				workload.IO{Dataspace: tier, Ref: "mesh", Bytes: tab5MeshBytes, Write: true, Procs: 1},
			},
		}
		if staged {
			decompSpec.Persists = []slurm.PersistDirective{{Op: slurm.PersistStore, Location: tier + "mesh"}}
		}
		dID, serr := ctl.Submit(decompSpec)
		if serr != nil {
			return 0, 0, 0, serr
		}
		solverSpec := &slurm.JobSpec{
			Name: "solver", Nodes: tab5SolverNodes, WorkflowEnd: true,
			Dependencies: []slurm.JobID{dID},
			Payload: workload.Seq{
				workload.IO{Dataspace: tier, Ref: "mesh", Procs: 48},
				workload.Compute{Seconds: tab5SolverCPU},
				workload.IO{Dataspace: tier, Ref: "solution", Bytes: tab5OutputBytes, Write: true, Procs: 48},
			},
		}
		if staged {
			// Redistribute the decomposed mesh from the decomposition
			// node to the 16 solver nodes before launch.
			solverSpec.StageIns = []slurm.StageDirective{{
				Kind: slurm.StageIn, Origin: tier + "mesh", Destination: tier + "mesh",
			}}
		}
		sID, serr := ctl.Submit(solverSpec)
		if serr != nil {
			return 0, 0, 0, serr
		}
		tb.Eng.Run()
		dj, _ := ctl.Job(dID)
		sj, _ := ctl.Job(sID)
		if dj.State != slurm.JobCompleted || sj.State != slurm.JobCompleted {
			return 0, 0, 0, fmt.Errorf("openfoam workflow failed: decompose=%v (%s) solver=%v (%s)",
				dj.State, dj.FailReason, sj.State, sj.FailReason)
		}
		decomp = dj.EndTime - dj.StartTime
		staging = sj.StartTime - sj.StageInStart
		solver = sj.EndTime - sj.StartTime
		return decomp, staging, solver, nil
	}

	ld, _, ls, err := runPhases("lustre://", false)
	if err != nil {
		return nil, err
	}
	nd, nstage, ns, err := runPhases("nvme0://", true)
	if err != nil {
		return nil, err
	}
	t.AddRow("decomposition", ld, nd)
	t.AddRow("data-staging", "-", nstage)
	t.AddRow("solver", ls, ns)
	return t, nil
}
