package experiments

import (
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/mercury"
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/urd"
)

// ClientCounts is the concurrency sweep of figures 4-7.
var ClientCounts = []int{1, 2, 4, 8, 16, 32}

// Fig4 measures the real urd daemon serving local requests over a real
// AF_UNIX socket: up to 32 concurrent client processes each submit
// reqsPerClient consecutive NoOp task submissions; reported are
// aggregate throughput (requests/sec) and mean request latency — the
// paper's figure-4 axes (≈700k req/s and ≈50 µs worst case there).
func Fig4(socketDir string, reqsPerClient int) (*metrics.Table, error) {
	if reqsPerClient <= 0 {
		reqsPerClient = 5000
	}
	t := metrics.NewTable(
		"Figure 4 — NORNS throughput and latency serving local requests",
		"Procs", "Throughput req/s", "Mean latency µs")
	for _, clients := range ClientCounts {
		d, err := urd.New(urd.Config{
			NodeName:      "bench",
			UserSocket:    fmt.Sprintf("%s/fig4-%d.sock", socketDir, clients),
			ControlSocket: fmt.Sprintf("%s/fig4-%d-ctl.sock", socketDir, clients),
			Workers:       4,
		})
		if err != nil {
			return nil, err
		}
		// Register a job and this process so the submissions authorize,
		// exactly as slurmd would have before the job's tasks started.
		ctl, err := nornsctl.Dial(fmt.Sprintf("%s/fig4-%d-ctl.sock", socketDir, clients))
		if err != nil {
			d.Close()
			return nil, err
		}
		if err := ctl.RegisterJob(nornsctl.JobDef{ID: 1, Hosts: []string{"bench"}}); err != nil {
			ctl.Close()
			d.Close()
			return nil, err
		}
		if err := ctl.AddProcess(1, nornsctl.ProcDef{PID: uint64(os.Getpid())}); err != nil {
			ctl.Close()
			d.Close()
			return nil, err
		}
		ctl.Close()
		conns := make([]*norns.Client, clients)
		for i := range conns {
			c, err := norns.Dial(fmt.Sprintf("%s/fig4-%d.sock", socketDir, clients))
			if err != nil {
				d.Close()
				return nil, err
			}
			conns[i] = c
		}
		lat := metrics.NewSample(clients * reqsPerClient)
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for _, c := range conns {
			wg.Add(1)
			go func(c *norns.Client) {
				defer wg.Done()
				for i := 0; i < reqsPerClient; i++ {
					tk := norns.NewIOTask(norns.NoOp, norns.MemoryRegion(nil), norns.MemoryRegion(nil))
					t0 := time.Now()
					if err := c.Submit(&tk); err != nil {
						errs <- err
						return
					}
					lat.Add(float64(time.Since(t0).Microseconds()))
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		for _, c := range conns {
			c.Close()
		}
		d.Close()
		for err := range errs {
			return nil, err
		}
		rps := float64(clients*reqsPerClient) / elapsed.Seconds()
		t.AddRow(clients, rps, lat.Mean())
	}
	return t, nil
}

// Fig5 measures remote request service over the real ofi+tcp fabric:
// up to 32 remote clients forward RPCs to one mercury class (the urd
// network manager's transport), sequentially and with 16 RPCs in
// flight. Reported: throughput and mean latency per configuration
// (paper: ≈45k req/s, ≤900 µs worst case).
func Fig5(reqsPerClient int) (*metrics.Table, error) {
	if reqsPerClient <= 0 {
		reqsPerClient = 2000
	}
	t := metrics.NewTable(
		"Figure 5 — NORNS throughput and latency serving remote requests (ofi+tcp)",
		"Clients", "InFlight", "Throughput req/s", "Mean latency µs")
	for _, clients := range ClientCounts {
		for _, inflight := range []int{1, 16} {
			srv, err := mercury.NewClass("ofi+tcp")
			if err != nil {
				return nil, err
			}
			srv.Register("norns.remote-request", func(p []byte) ([]byte, error) { return nil, nil })
			addr, err := srv.Listen("")
			if err != nil {
				srv.Close()
				return nil, err
			}
			lat := metrics.NewSample(clients * reqsPerClient)
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			start := time.Now()
			classes := make([]*mercury.Class, clients)
			for i := 0; i < clients; i++ {
				cls, err := mercury.NewClass("ofi+tcp")
				if err != nil {
					srv.Close()
					return nil, err
				}
				classes[i] = cls
				wg.Add(1)
				go func(cls *mercury.Class) {
					defer wg.Done()
					ep, err := cls.Lookup(addr)
					if err != nil {
						errs <- err
						return
					}
					sem := make(chan struct{}, inflight)
					var iwg sync.WaitGroup
					for r := 0; r < reqsPerClient; r++ {
						sem <- struct{}{}
						iwg.Add(1)
						go func() {
							defer iwg.Done()
							t0 := time.Now()
							if _, err := ep.Forward("norns.remote-request", nil); err != nil {
								select {
								case errs <- err:
								default:
								}
							}
							lat.Add(float64(time.Since(t0).Microseconds()))
							<-sem
						}()
					}
					iwg.Wait()
				}(cls)
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(errs)
			for err := range errs {
				srv.Close()
				return nil, err
			}
			for _, cls := range classes {
				cls.Close()
			}
			srv.Close()
			rps := float64(clients*reqsPerClient) / elapsed.Seconds()
			t.AddRow(clients, inflight, rps, lat.Mean())
		}
	}
	return t, nil
}
