package experiments

import (
	"strconv"
	"testing"
)

// cell parses a table cell as float; non-numeric cells fail the test.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

// TestFig1aShape checks the ARCHER reproduction's structure: full
// striping reaches several times the default-striping ceiling at scale,
// and interference spreads min and max widely.
func TestFig1aShape(t *testing.T) {
	tab := Fig1a(8)
	if len(tab.Rows) != 2*len(NodeCounts) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byKey := map[string][2]float64{}
	for _, r := range tab.Rows {
		byKey[r[0]+"/"+r[1]] = [2]float64{cell(t, r[2]), cell(t, r[3])}
	}
	full32 := byKey["32/full(48)"]
	def32 := byKey["32/default(4)"]
	if full32[1] < 3*def32[1] {
		t.Errorf("full striping max (%v) not well above default (%v)", full32[1], def32[1])
	}
	// Interference: spread between min and max at 32 nodes full stripe
	// should be at least 2x (the paper saw ~4x).
	if full32[1] < 2*full32[0] {
		t.Errorf("interference spread too small: min=%v max=%v", full32[0], full32[1])
	}
	// Scaling: full-striping max grows with node count.
	full1 := byKey["1/full(48)"]
	if full32[1] < 3*full1[1] {
		t.Errorf("no scaling with nodes: 1-node max %v vs 32-node max %v", full1[1], full32[1])
	}
}

// TestFig1bShape checks the MareNostrum reproduction: high variability
// (orders of magnitude between min and max somewhere in the sweep).
func TestFig1bShape(t *testing.T) {
	tab := Fig1b(10)
	if len(tab.Rows) != 2*len(NodeCounts) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	sawWideSpread := false
	for _, r := range tab.Rows {
		mn, mx := cell(t, r[2]), cell(t, r[4])
		if mn <= 0 {
			t.Fatalf("row %v has non-positive min", r)
		}
		if mx/mn >= 3 {
			sawWideSpread = true
		}
	}
	if !sawWideSpread {
		t.Error("no configuration showed the paper's wide I/O variability")
	}
}

// TestFig67Shape checks the remote-transfer sweeps: aggregate bandwidth
// scales nearly linearly with clients (per-client cap binding, not the
// target link), per-client bandwidth is flat vs RPC count at 16 MiB
// buffers, and writes peak slightly above reads.
func TestFig67Shape(t *testing.T) {
	read := Fig6()
	write := Fig7()
	agg := func(tab [][]string, clients, rpcs int) float64 {
		for _, r := range tab {
			if r[0] == strconv.Itoa(clients) && r[1] == strconv.Itoa(rpcs) {
				return cell(t, r[2])
			}
		}
		t.Fatalf("row %d/%d missing", clients, rpcs)
		return 0
	}
	r1 := agg(read.Rows, 1, 16)
	r32 := agg(read.Rows, 32, 16)
	if ratio := r32 / r1; ratio < 25 || ratio > 33 {
		t.Errorf("read scaling 1->32 clients = %.1fx, want ~linear", ratio)
	}
	// Per-client saturation ~1.7 GiB/s: 32-client aggregate ~54 GiB/s.
	if r32 < 50*1024 || r32 > 58*1024 {
		t.Errorf("32-client read aggregate = %v MiB/s, want ~55 GiB/s", r32)
	}
	w32 := agg(write.Rows, 32, 16)
	if w32 <= r32 {
		t.Errorf("writes (%v) should peak above reads (%v)", w32, r32)
	}
	// Stability vs in-flight RPCs: within 15% between 1 and 16 RPCs.
	if a, b := agg(read.Rows, 32, 1), agg(read.Rows, 32, 16); b/a > 1.15 {
		t.Errorf("per-client bandwidth not stable vs RPCs: %v vs %v", a, b)
	}
}

// TestFig8Shape checks the Lustre-vs-DCPMM comparison: NVM aggregates
// linearly while Lustre stays flat, with an order-of-magnitude gap at
// 32 nodes.
func TestFig8Shape(t *testing.T) {
	tab := Fig8()
	get := func(nodes int, col int) float64 {
		for _, r := range tab.Rows {
			if r[0] == strconv.Itoa(nodes) {
				return cell(t, r[col])
			}
		}
		t.Fatalf("nodes %d missing", nodes)
		return 0
	}
	// NVM read scales linearly: 32 nodes = 32x one node.
	nvm1, nvm32 := get(1, 2), get(32, 2)
	if ratio := nvm32 / nvm1; ratio < 30 || ratio > 34 {
		t.Errorf("DCPMM read scaling = %.1fx, want ~32x", ratio)
	}
	// Lustre median roughly flat: within 3x across the sweep.
	l1, l32 := get(1, 1), get(32, 1)
	if l32 > 3*l1 || l1 > 3*l32 {
		t.Errorf("Lustre read medians not flat: %v vs %v", l1, l32)
	}
	// Order-of-magnitude gap at 32 nodes.
	if nvm32 < 8*l32 {
		t.Errorf("NVM/Lustre gap at 32 nodes = %.1fx, want ~10x", nvm32/l32)
	}
	// Write columns behave the same way.
	if w1, w32 := get(1, 4), get(32, 4); w32/w1 < 30 {
		t.Errorf("DCPMM write scaling = %.1fx", w32/w1)
	}
}

// TestTable3Shape checks the producer/consumer workflow: NVM beats
// Lustre on both components, with the consumer improving the most, and
// the overall workflow speedup near the paper's ~45%.
func TestTable3Shape(t *testing.T) {
	tab, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, r := range tab.Rows {
		vals[r[0]+"/"+r[1]] = cell(t, r[2])
	}
	lp, lc := vals["Producer/Lustre"], vals["Consumer/Lustre"]
	np, nc := vals["Producer/NVM"], vals["Consumer/NVM"]
	if np >= lp || nc >= lc {
		t.Fatalf("NVM not faster: producer %v vs %v, consumer %v vs %v", np, lp, nc, lc)
	}
	// Paper: 170 s total on Lustre vs 94 s on NVM (~45% faster).
	speedup := 1 - (np+nc)/(lp+lc)
	if speedup < 0.30 || speedup > 0.60 {
		t.Errorf("workflow speedup = %.0f%%, want ~46%%", speedup*100)
	}
	// Absolute shapes: producer ~96 vs ~64+, consumer ~74 vs ~30+.
	if lp < 85 || lp > 110 {
		t.Errorf("Lustre producer = %v, want ~96", lp)
	}
	if lc < 65 || lc > 85 {
		t.Errorf("Lustre consumer = %v, want ~74", lc)
	}
	if np < 60 || np > 72 {
		t.Errorf("NVM producer = %v, want ~64-66", np)
	}
	if nc < 28 || nc > 38 {
		t.Errorf("NVM consumer = %v, want ~30-32", nc)
	}
}

// TestTable4Shape checks the staging-impact result: HPCG slows ~10-20%
// under staging and the producer/consumer are unaffected.
func TestTable4Shape(t *testing.T) {
	tab, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, r := range tab.Rows {
		vals[r[0]] = cell(t, r[1])
	}
	base := vals["HPCG no activity"]
	out := vals["HPCG stage out"]
	in := vals["HPCG stage in"]
	if base < 120 || base > 124 {
		t.Errorf("HPCG base = %v, want ~122", base)
	}
	for name, v := range map[string]float64{"stage out": out, "stage in": in} {
		slow := (v - base) / base
		if slow < 0.08 || slow > 0.25 {
			t.Errorf("HPCG %s slowdown = %.0f%% (%v s), want ~15%%", name, slow*100, v)
		}
	}
	if in <= out {
		t.Errorf("stage-in (%v) should hurt more than stage-out (%v): PFS reads are slower", in, out)
	}
	if p := vals["Producer"]; p < 60 || p > 72 {
		t.Errorf("producer = %v", p)
	}
}

// TestTable5Shape checks the OpenFOAM workflow: decomposition improves
// modestly, staging costs ~32 s, and the solver is ~2x faster on NVM.
func TestTable5Shape(t *testing.T) {
	tab, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][2]string{}
	for _, r := range tab.Rows {
		vals[r[0]] = [2]string{r[1], r[2]}
	}
	ld := cell(t, vals["decomposition"][0])
	nd := cell(t, vals["decomposition"][1])
	if ld < 1150 || ld > 1230 {
		t.Errorf("Lustre decomposition = %v, want ~1191", ld)
	}
	if nd < 1100 || nd > 1120 {
		t.Errorf("NVM decomposition = %v, want ~1105", nd)
	}
	stage := cell(t, vals["data-staging"][1])
	if stage < 20 || stage > 45 {
		t.Errorf("staging = %v, want ~32", stage)
	}
	ls := cell(t, vals["solver"][0])
	ns := cell(t, vals["solver"][1])
	if ls < 110 || ls > 135 {
		t.Errorf("Lustre solver = %v, want ~123", ls)
	}
	if ratio := ls / ns; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("solver speedup = %.2fx (%v vs %v), want ~2x", ratio, ls, ns)
	}
	// End-to-end: staging cost well below the solver savings.
	if stage > ls-ns {
		t.Errorf("staging (%v) exceeds solver savings (%v)", stage, ls-ns)
	}
}

// TestFig4SmokeAndShape runs the real-daemon request benchmark at small
// scale: throughput must grow from 1 to more clients.
func TestFig4SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket benchmark")
	}
	tab, err := Fig4(t.TempDir(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(ClientCounts) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// On a dedicated testbed throughput rises with clients (the paper's
	// shape); in CI the benchmark clients and daemon share one process
	// and a small CPU budget, so we only assert the service does not
	// collapse under concurrency.
	rps1 := cell(t, tab.Rows[0][1])
	rps8 := cell(t, tab.Rows[3][1])
	if rps8 < rps1/2 {
		t.Errorf("throughput collapsed under concurrency: 1 client %v, 8 clients %v", rps1, rps8)
	}
	for _, r := range tab.Rows {
		if lat := cell(t, r[2]); lat <= 0 {
			t.Errorf("non-positive latency in row %v", r)
		}
	}
}

// TestFig5Smoke runs the remote-request benchmark at small scale.
func TestFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket benchmark")
	}
	tab, err := Fig5(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2*len(ClientCounts) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

// TestAblationDataAware verifies the data-aware allocation saves the
// redistribution.
func TestAblationDataAware(t *testing.T) {
	tab, err := AblationDataAware()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	aware := cell(t, tab.Rows[0][4])
	remote := cell(t, tab.Rows[1][4])
	if aware >= remote {
		t.Errorf("data-aware total (%v) not faster than remote placement (%v)", aware, remote)
	}
	if stage := cell(t, tab.Rows[1][2]); stage <= 0 {
		t.Errorf("remote placement shows no staging cost: %v", stage)
	}
}

// TestAblationBufSize verifies larger chunks do not lose bandwidth.
// The shape check gets one retry: this is a real-socket bandwidth
// measurement, and on a loaded single-core builder (the full test
// suite runs packages in parallel) a descheduled large transfer can
// transiently halve its measured rate without any regression in the
// code under test.
func TestAblationBufSize(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket benchmark")
	}
	for attempt := 0; ; attempt++ {
		tab, err := AblationBufSize(16 << 20)
		if err != nil {
			t.Fatal(err)
		}
		small := cell(t, tab.Rows[0][1])
		large := cell(t, tab.Rows[len(tab.Rows)-1][1])
		if large >= small/2 {
			return
		}
		if attempt >= 1 {
			t.Errorf("large chunks collapsed: %v vs %v MiB/s", large, small)
			return
		}
	}
}

// TestAblationStreams verifies the streams × segment-size sweep runs
// the full staging path and reports positive bandwidth in every cell.
// The actual scaling claim is the benchmark's job — on small CI boxes
// single-core saturation can flatten the curve, so the test asserts
// shape, not speedup.
func TestAblationStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket benchmark")
	}
	tab, err := AblationStreams(t.TempDir(), 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	for i, row := range tab.Rows {
		if bw := cell(t, row[2]); bw <= 0 {
			t.Errorf("row %d: bandwidth %v", i, bw)
		}
	}
}

// TestAblationStagingTier verifies the tier ordering: node-local NVM
// beats the shared burst buffer, which beats the PFS.
func TestAblationStagingTier(t *testing.T) {
	tab, err := AblationStagingTier()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	totals := map[string]float64{}
	for _, r := range tab.Rows {
		totals[r[0]] = cell(t, r[3])
	}
	if !(totals["nvme0://"] < totals["bb0://"] && totals["bb0://"] < totals["lustre://"]) {
		t.Fatalf("tier ordering wrong: %v", totals)
	}
}

// TestBatchSubmitSmoke runs the batch-submission comparison at small
// scale: both rates must be positive, and the batched path must not be
// dramatically slower than per-task submission (on a quiet machine it
// is meaningfully faster; CI noise only permits the weaker bound).
func TestBatchSubmitSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket benchmark")
	}
	// One retry on the rate-shape check, for the same reason as
	// TestAblationBufSize: on a loaded single-core builder either side
	// of the comparison can be descheduled mid-measurement.
	for attempt := 0; ; attempt++ {
		tab, err := BatchSubmit(t.TempDir(), 512)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != len(BatchSizes) {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		ok := true
		for _, r := range tab.Rows {
			single, batched := cell(t, r[1]), cell(t, r[2])
			if single <= 0 || batched <= 0 {
				t.Errorf("non-positive rate in row %v", r)
			}
			if batched < single/2 {
				ok = false
				if attempt >= 1 {
					t.Errorf("batched submission collapsed: %v vs %v single-op", batched, single)
				}
			}
		}
		if ok || attempt >= 1 {
			return
		}
	}
}

// TestLocalCopySmoke runs the offload-vs-fallback comparison at small
// scale: both engines must move and verify every byte and report
// positive bandwidth. The speedup claim is the benchmark's job — on a
// builder without reflink the offload is the generic splice path and
// the ratio is modest, so the test asserts shape, not a margin.
func TestLocalCopySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket benchmark")
	}
	tab, err := LocalCopy(t.TempDir(), 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	for _, r := range tab.Rows {
		if bw := cell(t, r[1]); bw <= 0 {
			t.Errorf("row %v: non-positive bandwidth", r)
		}
	}
	if ratio := cell(t, tab.Rows[0][2]); ratio <= 0 {
		t.Errorf("non-positive speedup %v", ratio)
	}
}

// TestAutotuneConvergeSmoke drives a few tasks through the autotuner on
// a real daemon and checks the route surfaces a sane operating point:
// bounded streams/segment size, positive goodput, and a non-seeding
// state once samples are in.
func TestAutotuneConvergeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket benchmark")
	}
	tab, err := AutotuneConverge(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if s := cell(t, last[1]); s < 1 || s > 32 {
		t.Errorf("streams %v out of bounds", s)
	}
	if seg := cell(t, last[2]); seg < 0.25 || seg > 64 {
		t.Errorf("segment size %v MiB out of bounds", seg)
	}
	if g := cell(t, last[3]); g <= 0 {
		t.Errorf("non-positive goodput %v", g)
	}
	if last[4] == "seeding" {
		t.Errorf("route still seeding after 3 tasks: %v", last)
	}
}

// TestAutotuneCapCeiling runs the governed-autotune experiment, whose
// cap assertions (per-task burst-bounded, aggregate at the cap) are
// enforced inside the experiment itself.
func TestAutotuneCapCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket benchmark: ~3s of capped staging")
	}
	tab, err := AutotuneCapCeiling(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(tab.Rows); n != 4 {
		t.Fatalf("rows = %d", n)
	}
}
