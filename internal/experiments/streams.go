package experiments

import (
	"fmt"
	"os"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/urd"
)

// AblationStreams sweeps the segmented transfer engine's two knobs —
// parallel streams and segment size — on a real remote-to-local pull
// between two urd daemons over the ofi+tcp loopback fabric (the
// figure 6/7 staging path). Each cell stages one totalBytes file and
// reports the achieved bandwidth; the streams=1 rows are the
// pre-segmentation sequential baseline.
func AblationStreams(socketDir string, totalBytes int64) (*metrics.Table, error) {
	if totalBytes <= 0 {
		totalBytes = 64 << 20
	}
	// Sockets live in a fresh subdirectory so repeated sweeps over the
	// same parent never collide on half-torn-down socket paths.
	dir, err := os.MkdirTemp(socketDir, "streams")
	if err != nil {
		return nil, err
	}
	socketDir = dir
	t := metrics.NewTable(
		"Ablation — parallel transfer streams × segment size (ofi+tcp loopback)",
		"Streams", "Segment MiB", "Bandwidth MiB/s")
	payload := make([]byte, totalBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	run := 0
	for _, streams := range []int{1, 2, 4, 8} {
		for _, segSize := range []int64{4 << 20, 16 << 20} {
			run++
			bw, err := streamsRun(socketDir, run, streams, segSize, payload)
			if err != nil {
				return nil, err
			}
			t.AddRow(streams, segSize>>20, bw/mib)
		}
	}
	return t, nil
}

// streamsRun stages payload from a target daemon to an initiator daemon
// configured with the given stream count and segment size, returning
// the achieved bandwidth in bytes/s.
func streamsRun(socketDir string, run, streams int, segSize int64, payload []byte) (float64, error) {
	resolver := urd.NewStaticResolver()
	target, err := urd.New(urd.Config{
		NodeName:      "target",
		ControlSocket: fmt.Sprintf("%s/st%d-t.sock", socketDir, run),
		Fabric:        "ofi+tcp",
		Resolver:      resolver,
	})
	if err != nil {
		return 0, err
	}
	defer target.Close()
	init, err := urd.New(urd.Config{
		NodeName:        "init",
		ControlSocket:   fmt.Sprintf("%s/st%d-i.sock", socketDir, run),
		Fabric:          "ofi+tcp",
		Resolver:        resolver,
		TransferStreams: streams,
		SegmentSize:     segSize,
	})
	if err != nil {
		return 0, err
	}
	defer init.Close()
	resolver.Set("target", target.FabricAddr())
	resolver.Set("init", init.FabricAddr())

	tctl, err := nornsctl.Dial(fmt.Sprintf("%s/st%d-t.sock", socketDir, run))
	if err != nil {
		return 0, err
	}
	defer tctl.Close()
	if err := tctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "mem0://", Backend: nornsctl.BackendMemory}); err != nil {
		return 0, err
	}
	// Seed the source file directly in the target's dataspace (an
	// inline submit would put the whole payload in one wire frame).
	ds, err := target.Controller.Spaces.Get("mem0://")
	if err != nil {
		return 0, err
	}
	w, err := ds.Backend.FS.Create("src")
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		w.Close()
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}

	ictl, err := nornsctl.Dial(fmt.Sprintf("%s/st%d-i.sock", socketDir, run))
	if err != nil {
		return 0, err
	}
	defer ictl.Close()
	if err := ictl.RegisterDataspace(nornsctl.DataspaceDef{ID: "mem0://", Backend: nornsctl.BackendMemory}); err != nil {
		return 0, err
	}

	// Best of three repetitions: loopback throughput is noisy and the
	// sweep is about the trend, not one sample.
	var best float64
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		id, err := ictl.Submit(task.Copy,
			task.RemotePosixPath("target", "mem0://", "src"),
			task.PosixPath("mem0://", "staged"), 0, 0)
		if err != nil {
			return 0, err
		}
		st, err := ictl.Wait(id, 5*time.Minute)
		if err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		if st.Status != task.Finished {
			return 0, fmt.Errorf("staging failed: %+v", st)
		}
		if st.MovedBytes != int64(len(payload)) {
			return 0, fmt.Errorf("moved %d of %d bytes", st.MovedBytes, len(payload))
		}
		if bw := float64(st.MovedBytes) / elapsed.Seconds(); bw > best {
			best = bw
		}
	}
	return best, nil
}
