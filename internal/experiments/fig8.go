package experiments

import (
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/simstore"
)

// fig8Config calibrates the NEXTGenIO storage comparison: a Lustre file
// system (6 OSTs over a 56 Gbps InfiniBand link) against node-local
// Intel DCPMM. IOR spawns 48 processes per node writing/reading
// independent files with 512 KiB transfers.
type fig8Config struct {
	lustreReadBW  float64
	lustreWriteBW float64
	nvmReadBW     float64 // per node
	nvmWriteBW    float64 // per node
	perNodeBytes  float64
	reps          int
	noiseLoad     float64 // light (maintenance-window) interference
}

func defaultFig8Config() fig8Config {
	return fig8Config{
		lustreReadBW:  5.5 * gb,
		lustreWriteBW: 4.5 * gb,
		nvmReadBW:     3.0 * gb,
		nvmWriteBW:    2.4 * gb,
		perNodeBytes:  48 * 4.1 * gb, // >192 GiB per node to defeat the page cache
		reps:          5,
		noiseLoad:     0.10,
	}
}

// fig8Lustre measures the median aggregate Lustre bandwidth for the
// given node count under light background load.
func fig8Lustre(cfg fig8Config, nodes int, write bool) float64 {
	sample := metrics.NewSample(cfg.reps)
	for r := 0; r < cfg.reps; r++ {
		eng := sim.NewEngine()
		pfs := simstore.NewPFS(eng, simstore.PFSConfig{
			Name: "lustre", ReadBW: cfg.lustreReadBW, WriteBW: cfg.lustreWriteBW, Stripes: 6,
		})
		rng := sim.NewRNG(int64(r)*77 + int64(nodes))
		cap := cfg.lustreWriteBW
		if !write {
			cap = cfg.lustreReadBW
		}
		noise := pfs.StartNoise(rng, simstore.NoiseConfig{
			MeanInterarrival: 1,
			MeanBytes:        cfg.noiseLoad * cap,
			TailShape:        1.5,
			WriteShare:       0.5,
		})
		remaining := nodes
		var makespan float64
		for i := 0; i < nodes; i++ {
			done := func(float64) {
				remaining--
				if remaining == 0 {
					makespan = eng.Now()
					noise.Stop()
				}
			}
			if write {
				pfs.Write("n", cfg.perNodeBytes, done)
			} else {
				pfs.Read("n", cfg.perNodeBytes, done)
			}
		}
		eng.RunUntil(1e7)
		if makespan > 0 {
			sample.Add(cfg.perNodeBytes * float64(nodes) / makespan)
		}
	}
	return sample.Median()
}

// fig8NVM measures aggregate node-local DCPMM bandwidth: each node's
// device is private, so this is deterministic.
func fig8NVM(cfg fig8Config, nodes int, write bool) float64 {
	eng := sim.NewEngine()
	nvm := simstore.NewNodeLocal(eng, simstore.NodeLocalConfig{
		Name: "dcpmm", ReadBW: cfg.nvmReadBW, WriteBW: cfg.nvmWriteBW,
	})
	remaining := nodes
	var makespan float64
	for i := 0; i < nodes; i++ {
		node := string(rune('a'+i%26)) + string(rune('0'+i/26))
		done := func(float64) {
			remaining--
			if remaining == 0 {
				makespan = eng.Now()
			}
		}
		if write {
			nvm.Write(node, cfg.perNodeBytes, done)
		} else {
			nvm.Read(node, cfg.perNodeBytes, done)
		}
	}
	eng.Run()
	return cfg.perNodeBytes * float64(nodes) / makespan
}

// Fig8 reproduces the Lustre-vs-node-local-DCPMM comparison: aggregate
// read/write bandwidth for 1-32 nodes; the paper's shape is flat Lustre
// medians vs linearly scaling NVM, an order of magnitude apart at high
// node counts.
func Fig8() *metrics.Table {
	cfg := defaultFig8Config()
	t := metrics.NewTable(
		"Figure 8 — Lustre vs node-local Intel DCPMM on the NEXTGenIO prototype",
		"Nodes", "Read Lustre MB/s (median)", "Read DCPMM MB/s", "Write Lustre MB/s (median)", "Write DCPMM MB/s")
	nodeCounts := []int{1, 2, 4, 8, 16, 24, 32}
	for _, n := range nodeCounts {
		t.AddRow(n,
			fig8Lustre(cfg, n, false)/mb,
			fig8NVM(cfg, n, false)/mb,
			fig8Lustre(cfg, n, true)/mb,
			fig8NVM(cfg, n, true)/mb,
		)
	}
	return t
}
