package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/gateway"
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/urd"
)

// GatewaySubmit measures the HTTP gateway's batch-submit path against
// the wire protocol's: the same volume of NoOp tasks pushed as
// POST /v2/tasks batches over TCP versus OpSubmitBatch RPCs over the
// AF_UNIX socket, at each batch size of the standard sweep. The gap is
// the cost of HTTP framing + JSON encoding relative to the binary
// protocol — the price a non-wire client (dashboard, workflow engine,
// curl) pays for not linking the client library.
func GatewaySubmit(socketDir string, tasksPerRun int) (*metrics.Table, error) {
	if tasksPerRun <= 0 {
		tasksPerRun = 4096
	}
	t := metrics.NewTable(
		"Gateway submission — HTTP POST /v2/tasks batches vs wire OpSubmitBatch (NoOp tasks)",
		"Batch", "Wire tasks/s", "HTTP tasks/s", "HTTP/wire")
	for _, batch := range BatchSizes {
		d, err := urd.New(urd.Config{
			NodeName:      "bench",
			UserSocket:    fmt.Sprintf("%s/gw-%d.sock", socketDir, batch),
			ControlSocket: fmt.Sprintf("%s/gw-%d-ctl.sock", socketDir, batch),
			Workers:       4,
			HTTPAddr:      "127.0.0.1:0",
			HTTPToken:     "bench-token",
		})
		if err != nil {
			return nil, err
		}
		wireRate, httpRate, err := gatewayRunRates(socketDir, d.HTTPAddr(), batch, tasksPerRun)
		d.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(batch, wireRate, httpRate, httpRate/wireRate)
	}
	return t, nil
}

func gatewayRunRates(socketDir, httpAddr string, batch, tasksPerRun int) (wire, http float64, err error) {
	ctx := context.Background()

	// The user API authorizes by registered process; the gateway
	// dispatches as control and needs none.
	ctl, err := nornsctl.Dial(fmt.Sprintf("%s/gw-%d-ctl.sock", socketDir, batch))
	if err != nil {
		return 0, 0, err
	}
	defer ctl.Close()
	if err := ctl.RegisterJob(nornsctl.JobDef{ID: 1, Hosts: []string{"bench"}}); err != nil {
		return 0, 0, err
	}
	if err := ctl.AddProcess(1, nornsctl.ProcDef{PID: uint64(os.Getpid())}); err != nil {
		return 0, 0, err
	}
	gw := &gateway.Client{Base: "http://" + httpAddr, Token: "bench-token"}
	c, err := norns.Dial(fmt.Sprintf("%s/gw-%d.sock", socketDir, batch))
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()

	noop := func() *norns.IOTask {
		tk := norns.NewIOTask(norns.NoOp, norns.MemoryRegion(nil), norns.MemoryRegion(nil))
		return &tk
	}
	start := time.Now()
	for done := 0; done < tasksPerRun; {
		n := min(batch, tasksPerRun-done)
		tasks := make([]*norns.IOTask, n)
		for i := range tasks {
			tasks[i] = noop()
		}
		results, err := c.SubmitBatch(ctx, tasks)
		if err != nil {
			return 0, 0, err
		}
		for i, r := range results {
			if r.Err != nil {
				return 0, 0, fmt.Errorf("wire batch entry %d: %w", i, r.Err)
			}
		}
		done += n
	}
	wire = float64(tasksPerRun) / time.Since(start).Seconds()

	// HTTP: the same volume as POST /v2/tasks batches of `batch` records.
	noopRec := gateway.Record{
		Kind:   "noop",
		Input:  gateway.Resource{Kind: "memory"},
		Output: gateway.Resource{Kind: "memory"},
	}
	start = time.Now()
	for done := 0; done < tasksPerRun; {
		n := min(batch, tasksPerRun-done)
		recs := make([]gateway.Record, n)
		for i := range recs {
			recs[i] = noopRec
		}
		results, err := gw.SubmitBatch(ctx, recs)
		if err != nil {
			return 0, 0, err
		}
		for i, r := range results {
			if r.Error != "" {
				return 0, 0, fmt.Errorf("http batch entry %d: %s", i, r.Error)
			}
		}
		done += n
	}
	http = float64(tasksPerRun) / time.Since(start).Seconds()
	return wire, http, nil
}
