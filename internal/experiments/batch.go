package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/urd"
)

// BatchSizes is the sweep of the batch-submission experiment.
var BatchSizes = []int{16, 64, 256, 1024}

// BatchSubmit measures the v2 submit path against the v1 one over a
// real AF_UNIX socket: the same number of NoOp tasks submitted as
// per-task Submit RPCs (pipelined, as the figure-4 benchmark drives
// them) versus as OpSubmitBatch RPCs of the given batch size. Reported
// are both rates and the speedup — the round-trip amortization a
// batched client keeps as batches grow.
func BatchSubmit(socketDir string, tasksPerRun int) (*metrics.Table, error) {
	if tasksPerRun <= 0 {
		tasksPerRun = 4096
	}
	t := metrics.NewTable(
		"Batch submission — one OpSubmitBatch vs per-task Submit RPCs (NoOp tasks)",
		"Batch", "Single-op tasks/s", "Batched tasks/s", "Speedup")
	for _, batch := range BatchSizes {
		d, err := urd.New(urd.Config{
			NodeName:      "bench",
			UserSocket:    fmt.Sprintf("%s/batch-%d.sock", socketDir, batch),
			ControlSocket: fmt.Sprintf("%s/batch-%d-ctl.sock", socketDir, batch),
			Workers:       4,
		})
		if err != nil {
			return nil, err
		}
		singleRate, batchRate, err := batchRunRates(socketDir, batch, tasksPerRun)
		d.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(batch, singleRate, batchRate, batchRate/singleRate)
	}
	return t, nil
}

func batchRunRates(socketDir string, batch, tasksPerRun int) (single, batched float64, err error) {
	ctl, err := nornsctl.Dial(fmt.Sprintf("%s/batch-%d-ctl.sock", socketDir, batch))
	if err != nil {
		return 0, 0, err
	}
	defer ctl.Close()
	if err := ctl.RegisterJob(nornsctl.JobDef{ID: 1, Hosts: []string{"bench"}}); err != nil {
		return 0, 0, err
	}
	if err := ctl.AddProcess(1, nornsctl.ProcDef{PID: uint64(os.Getpid())}); err != nil {
		return 0, 0, err
	}
	c, err := norns.Dial(fmt.Sprintf("%s/batch-%d.sock", socketDir, batch))
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()

	noop := func() *norns.IOTask {
		tk := norns.NewIOTask(norns.NoOp, norns.MemoryRegion(nil), norns.MemoryRegion(nil))
		return &tk
	}

	// v1 baseline: one Submit RPC per task, pipelined `batch` deep so
	// the comparison isolates per-request overhead, not round-trip
	// serialization.
	start := time.Now()
	for done := 0; done < tasksPerRun; {
		n := min(batch, tasksPerRun-done)
		resolvers := make([]func() error, 0, n)
		for i := 0; i < n; i++ {
			resolve, err := c.SubmitAsync(noop())
			if err != nil {
				return 0, 0, err
			}
			resolvers = append(resolvers, resolve)
		}
		for _, resolve := range resolvers {
			if err := resolve(); err != nil {
				return 0, 0, err
			}
		}
		done += n
	}
	single = float64(tasksPerRun) / time.Since(start).Seconds()

	// v2: the same volume in OpSubmitBatch RPCs of `batch` specs each.
	ctx := context.Background()
	start = time.Now()
	for done := 0; done < tasksPerRun; {
		n := min(batch, tasksPerRun-done)
		tasks := make([]*norns.IOTask, n)
		for i := range tasks {
			tasks[i] = noop()
		}
		results, err := c.SubmitBatch(ctx, tasks)
		if err != nil {
			return 0, 0, err
		}
		for i, r := range results {
			if r.Err != nil {
				return 0, 0, fmt.Errorf("batch entry %d: %w", i, r.Err)
			}
		}
		done += n
	}
	batched = float64(tasksPerRun) / time.Since(start).Seconds()
	return single, batched, nil
}
