package experiments

import (
	"fmt"
	"os"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/urd"
)

// RepeatStageIn measures the content-addressed staging cache on the
// two-daemon loopback fabric: the same payload is staged in cold (first
// contact, everything crosses the fabric and fills the cache), warm
// (repeat stage-ins served from the cache), and delta (the source
// changes one segment; only that segment crosses the fabric, the rest
// are digest-matched against the destination and skipped).
//
// The phases are also acceptance checks: warm must cut fabric bytes by
// at least 90% versus cold, and delta must move exactly the changed
// segment — a regression returns an error rather than a quietly worse
// table.
func RepeatStageIn(socketDir string) (*metrics.Table, error) {
	dir, err := os.MkdirTemp(socketDir, "cache")
	if err != nil {
		return nil, err
	}

	const (
		segSize   = 1 << 20
		segments  = 16
		totalSize = int64(segments * segSize)
		warmReps  = 4
	)
	// Mix the segment index into the pattern: a plain periodic fill
	// would make every segment content-identical, and the cold phase
	// would already dedupe against the cache instead of establishing an
	// all-fabric baseline.
	payload := make([]byte, totalSize)
	for i := range payload {
		payload[i] = byte(i*31 + i/segSize)
	}

	resolver := urd.NewStaticResolver()
	target, err := urd.New(urd.Config{
		NodeName:      "target",
		ControlSocket: dir + "/t.sock",
		Fabric:        "ofi+tcp",
		Resolver:      resolver,
	})
	if err != nil {
		return nil, err
	}
	defer target.Close()
	init, err := urd.New(urd.Config{
		NodeName:      "init",
		ControlSocket: dir + "/i.sock",
		Fabric:        "ofi+tcp",
		Resolver:      resolver,
		SegmentSize:   segSize,
		CacheDir:      dir + "/cas",
	})
	if err != nil {
		return nil, err
	}
	defer init.Close()
	resolver.Set("target", target.FabricAddr())
	resolver.Set("init", init.FabricAddr())

	tctl, err := nornsctl.Dial(dir + "/t.sock")
	if err != nil {
		return nil, err
	}
	defer tctl.Close()
	if err := tctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "mem0://", Backend: nornsctl.BackendMemory}); err != nil {
		return nil, err
	}
	ictl, err := nornsctl.Dial(dir + "/i.sock")
	if err != nil {
		return nil, err
	}
	defer ictl.Close()
	if err := ictl.RegisterDataspace(nornsctl.DataspaceDef{ID: "mem0://", Backend: nornsctl.BackendMemory}); err != nil {
		return nil, err
	}
	seed := func(data []byte) error {
		ds, err := target.Controller.Spaces.Get("mem0://")
		if err != nil {
			return err
		}
		w, err := ds.Backend.FS.Create("src")
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	}
	if err := seed(payload); err != nil {
		return nil, err
	}

	// stage runs one stage-in of src to dst and returns its final stats.
	stage := func(dst string) (nornsctl.Stats, error) {
		id, err := ictl.Submit(task.Copy,
			task.RemotePosixPath("target", "mem0://", "src"),
			task.PosixPath("mem0://", dst), 0, 0)
		if err != nil {
			return nornsctl.Stats{}, err
		}
		st, err := ictl.Wait(id, 5*time.Minute)
		if err != nil {
			return nornsctl.Stats{}, err
		}
		if st.Status != task.Finished {
			return nornsctl.Stats{}, fmt.Errorf("stage-in to %s failed: %+v", dst, st)
		}
		return st, nil
	}

	t := metrics.NewTable(
		"Repeat stage-in — content-addressed staging cache (ofi+tcp loopback)",
		"Phase", "Tasks", "Fabric MiB", "Cache MiB", "Delta MiB", "Tasks/s")

	// Cold: first contact with the content; everything crosses the
	// fabric and tees into the cache.
	start := time.Now()
	st, err := stage("staged")
	if err != nil {
		return nil, err
	}
	coldElapsed := time.Since(start)
	coldFabric := st.MovedBytes - st.CacheBytes
	t.AddRow("cold", 1, float64(coldFabric)/mib, float64(st.CacheBytes)/mib, float64(st.DeltaBytes)/mib, 1/coldElapsed.Seconds())

	// Warm: repeat stage-ins of the unchanged payload to fresh
	// destinations; segments are served from the cache.
	var warmFabric, warmCache, warmDelta int64
	start = time.Now()
	for rep := 0; rep < warmReps; rep++ {
		st, err := stage(fmt.Sprintf("warm-%d", rep))
		if err != nil {
			return nil, err
		}
		warmFabric += st.MovedBytes - st.CacheBytes
		warmCache += st.CacheBytes
		warmDelta += st.DeltaBytes
	}
	warmElapsed := time.Since(start)
	t.AddRow("warm", warmReps, float64(warmFabric)/mib, float64(warmCache)/mib, float64(warmDelta)/mib, warmReps/warmElapsed.Seconds())
	if warmFabric*10 > coldFabric*warmReps {
		return nil, fmt.Errorf("warm stage-ins moved %d fabric bytes over %d tasks against %d cold: less than the required 90%% reduction",
			warmFabric, warmReps, coldFabric)
	}

	// Delta: one segment of the source changes; re-staging onto the
	// existing destination digest-matches the other segments in place
	// and pulls only the changed one.
	changed := append([]byte(nil), payload...)
	for i := 5 * segSize; i < 6*segSize; i++ {
		changed[i] = ^changed[i]
	}
	if err := seed(changed); err != nil {
		return nil, err
	}
	start = time.Now()
	st, err = stage("staged")
	if err != nil {
		return nil, err
	}
	deltaElapsed := time.Since(start)
	deltaFabric := st.MovedBytes - st.CacheBytes
	t.AddRow("delta", 1, float64(deltaFabric)/mib, float64(st.CacheBytes)/mib, float64(st.DeltaBytes)/mib, 1/deltaElapsed.Seconds())
	if deltaFabric != segSize {
		return nil, fmt.Errorf("delta stage-in moved %d fabric bytes, want exactly the %d-byte changed segment", deltaFabric, int64(segSize))
	}
	if st.DeltaBytes != totalSize-segSize {
		return nil, fmt.Errorf("delta stage-in skipped %d bytes, want %d", st.DeltaBytes, totalSize-segSize)
	}
	return t, nil
}
