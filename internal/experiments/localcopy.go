package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/urd"
)

// localNode is one daemon with two directory-mounted dataspaces — the
// local-to-local staging pair (NVM tier to parallel-FS tier) every
// experiment in this file moves data across.
type localNode struct {
	daemon   *urd.Daemon
	ctl      *nornsctl.Client
	src, dst string // host directories backing lustre:// and nvme0://
}

func newLocalNode(socketDir, tag string, cfg urd.Config) (*localNode, error) {
	dir, err := os.MkdirTemp(socketDir, tag)
	if err != nil {
		return nil, err
	}
	n := &localNode{src: filepath.Join(dir, "src"), dst: filepath.Join(dir, "dst")}
	cfg.NodeName = "bench"
	cfg.ControlSocket = filepath.Join(dir, "c.sock")
	n.daemon, err = urd.New(cfg)
	if err != nil {
		return nil, err
	}
	n.ctl, err = nornsctl.Dial(cfg.ControlSocket)
	if err != nil {
		n.daemon.Close()
		return nil, err
	}
	for _, ds := range []nornsctl.DataspaceDef{
		{ID: "lustre://", Backend: nornsctl.BackendParallelFS, Mount: n.src},
		{ID: "nvme0://", Backend: nornsctl.BackendNVM, Mount: n.dst},
	} {
		if err := n.ctl.RegisterDataspace(ds); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

func (n *localNode) Close() {
	if n.ctl != nil {
		n.ctl.Close()
	}
	if n.daemon != nil {
		n.daemon.Close()
	}
}

// stage copies lustre://src to nvme0://dstName and returns the achieved
// bandwidth in bytes/s, verifying the moved byte count is exact. The
// rate is the daemon's own meter (MovedBytes over the task's running
// window — what `nornsctl status` reports), so submit/wait RPC latency
// and dispatch scheduling noise stay out of the engine comparison; the
// client-side wall clock is only the fallback for sub-resolution runs.
func (n *localNode) stage(dstName string, want int64) (float64, error) {
	start := time.Now()
	id, err := n.ctl.Submit(task.Copy,
		task.PosixPath("lustre://", "src"),
		task.PosixPath("nvme0://", dstName), 0, 0)
	if err != nil {
		return 0, err
	}
	st, err := n.ctl.Wait(id, 5*time.Minute)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if st.Status != task.Finished {
		return 0, fmt.Errorf("staging failed: %+v", st)
	}
	if st.MovedBytes != want {
		return 0, fmt.Errorf("moved %d of %d bytes", st.MovedBytes, want)
	}
	if st.BandwidthBps > 0 {
		return st.BandwidthBps, nil
	}
	return float64(st.MovedBytes) / elapsed.Seconds(), nil
}

// LocalCopy measures the zero-copy local staging path against its
// portable user-space fallback: the same ≥64 MiB file staged between
// two directory-mounted dataspaces by a real daemon, once with the
// kernel range-copy offload (copy_file_range/sendfile) and once forced
// onto the buffered read/write path. Staged output is verified
// byte-for-byte against the source in both arms. On platforms without
// the offload the first arm transparently falls back, so the speedup
// reads ~1× rather than failing.
func LocalCopy(socketDir string, totalBytes int64) (*metrics.Table, error) {
	if totalBytes <= 0 {
		totalBytes = 64 << 20
	}
	t := metrics.NewTable(
		"Local staging — kernel offload vs user-space copy (64 MiB file)",
		"Engine", "Bandwidth MiB/s", "Speedup")
	payload := make([]byte, totalBytes)
	for i := range payload {
		payload[i] = byte(i*7 + i/251)
	}
	nodes := map[bool]*localNode{}
	for _, disabled := range []bool{false, true} {
		n, err := newLocalNode(socketDir, "lc", urd.Config{DisableOffload: disabled})
		if err != nil {
			return nil, err
		}
		defer n.Close()
		if err := os.WriteFile(filepath.Join(n.src, "src"), payload, 0o644); err != nil {
			return nil, err
		}
		nodes[disabled] = n
	}
	// Interleave the arms rep by rep (after one unscored warm-up each),
	// alternating which arm goes first, so both see the same page-cache,
	// writeback, and CPU-credit state — running one arm to completion
	// first hands the other arm a disk saturated by the first arm's
	// dirty pages (or a hypervisor CPU-credit bucket the first arm
	// drained), and the comparison measures the run order instead of the
	// copy engine. Best of five scored reps: on a shared-CPU builder
	// individual runs can lose most of their wall clock to throttling,
	// and the engines' uncontended speeds are what is being compared.
	bw := map[bool]float64{}
	for rep := -1; rep < 5; rep++ {
		order := []bool{false, true}
		if rep%2 != 0 {
			order = []bool{true, false}
		}
		for _, disabled := range order {
			n := nodes[disabled]
			name := fmt.Sprintf("staged-%d", rep)
			b, err := n.stage(name, totalBytes)
			if err != nil {
				return nil, err
			}
			staged, err := os.ReadFile(filepath.Join(n.dst, name))
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(staged, payload) {
				return nil, fmt.Errorf("disableOffload=%v rep %d: staged content differs from source", disabled, rep)
			}
			// Drop the verified copy before the next rep: keeping every
			// staged replica live grows the dirty/resident page set until
			// writeback (or, on ballooning VMs, host page refaulting)
			// throttles both engines to the same memory-reclaim rate and
			// the comparison measures the accumulation, not the copy.
			if err := os.Remove(filepath.Join(n.dst, name)); err != nil {
				return nil, err
			}
			if rep >= 0 && b > bw[disabled] {
				bw[disabled] = b
			}
		}
	}
	t.AddRow("kernel offload", bw[false]/mib, bw[false]/bw[true])
	t.AddRow("user-space copy", bw[true]/mib, 1.0)
	return t, nil
}

// AutotuneConverge runs a cold route through the per-route autotuner on
// a real daemon: the same file staged task after task while the
// controller probes streams and segment size from their static
// defaults. Each row is the daemon-reported operating point after that
// task (what `nornsctl status` shows), ending in the route's converged
// shape and EWMA goodput.
func AutotuneConverge(socketDir string, tasks int) (*metrics.Table, error) {
	if tasks <= 0 {
		tasks = 8
	}
	t := metrics.NewTable(
		"Autotune — cold local route, operating point per task",
		"Task", "Streams", "Segment MiB", "Goodput MiB/s", "State")
	n, err := newLocalNode(socketDir, "at", urd.Config{Autotune: true, AutotuneMinSamples: 1})
	if err != nil {
		return nil, err
	}
	defer n.Close()
	const totalBytes = 32 << 20
	payload := make([]byte, totalBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := os.WriteFile(filepath.Join(n.src, "src"), payload, 0o644); err != nil {
		return nil, err
	}
	for i := 1; i <= tasks; i++ {
		name := fmt.Sprintf("staged-%d", i)
		if _, err := n.stage(name, totalBytes); err != nil {
			return nil, err
		}
		// Drop each replica so page accumulation never skews the
		// goodput the controller is converging on (see LocalCopy).
		if err := os.Remove(filepath.Join(n.dst, name)); err != nil {
			return nil, err
		}
		st, err := n.ctl.StatusInfo()
		if err != nil {
			return nil, err
		}
		if len(st.AutotuneRoutes) != 1 {
			return nil, fmt.Errorf("after task %d: %d autotune routes, want 1", i, len(st.AutotuneRoutes))
		}
		r := st.AutotuneRoutes[0]
		t.AddRow(i, r.Streams, float64(r.SegSize)/mib, r.GoodputBps/mib, r.State)
	}
	return t, nil
}

// AutotuneCapCeiling stages under a binding -max-bandwidth cap with the
// autotuner on: the governor stays authoritative (the long-run rate
// never exceeds the cap beyond the bucket's one-burst credit — enforced
// here, not just reported) and the tuner parks the route as capped
// instead of chasing governor-shaped goodput.
func AutotuneCapCeiling(socketDir string) (*metrics.Table, error) {
	const (
		capBps     = int64(16 << 20)
		totalBytes = int64(16 << 20)
		tasks      = 3
	)
	t := metrics.NewTable(
		"Autotune under -max-bandwidth (cap 16 MiB/s)",
		"Task", "Observed MiB/s", "Cap MiB/s", "Route state")
	n, err := newLocalNode(socketDir, "cap", urd.Config{
		Autotune: true, AutotuneMinSamples: 1, MaxBandwidthBps: capBps,
	})
	if err != nil {
		return nil, err
	}
	defer n.Close()
	payload := make([]byte, totalBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := os.WriteFile(filepath.Join(n.src, "src"), payload, 0o644); err != nil {
		return nil, err
	}
	var moved int64
	start := time.Now()
	for i := 1; i <= tasks; i++ {
		name := fmt.Sprintf("staged-%d", i)
		bw, err := n.stage(name, totalBytes)
		if err != nil {
			return nil, err
		}
		os.Remove(filepath.Join(n.dst, name))
		moved += totalBytes
		// One task may ride the bucket's burst credit (rate/4 admitted
		// ahead of the clock): over 16 MiB the first task can observe up
		// to cap·S/(S-burst) ≈ 1.33×. Anything past that is a leak.
		if bw > 1.4*float64(capBps) {
			return nil, fmt.Errorf("task %d ran at %.1f MiB/s, above the %d MiB/s cap", i, bw/mib, capBps>>20)
		}
		state := "-"
		if st, err := n.ctl.StatusInfo(); err == nil && len(st.AutotuneRoutes) == 1 {
			state = st.AutotuneRoutes[0].State
		}
		t.AddRow(i, bw/mib, capBps>>20, state)
	}
	// The burst credit amortizes away across tasks: the aggregate rate
	// must sit at the cap.
	agg := float64(moved) / time.Since(start).Seconds()
	if agg > 1.15*float64(capBps) {
		return nil, fmt.Errorf("aggregate rate %.1f MiB/s exceeds the %d MiB/s cap", agg/mib, capBps>>20)
	}
	t.AddRow("all", agg/mib, capBps>>20, "-")
	return t, nil
}
