package experiments

import (
	"fmt"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/mercury"
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/queue"
	"github.com/ngioproject/norns-go/internal/simstore"
	"github.com/ngioproject/norns-go/internal/slurm"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/urd"
	"github.com/ngioproject/norns-go/internal/workload"
)

// AblationScheduler compares the task-queue arbitration policies on a
// real urd daemon under a bimodal workload (many small tasks + a few
// large ones, from two competing jobs): mean time-to-completion of the
// small tasks shows FCFS's head-of-line blocking vs SJF and the fairness
// of per-job round-robin.
func AblationScheduler(socketDir string, smallTasks int) (*metrics.Table, error) {
	if smallTasks <= 0 {
		smallTasks = 64
	}
	t := metrics.NewTable(
		"Ablation — task queue arbitration policy",
		"Policy", "Small-task mean wait ms", "Makespan ms")
	policies := map[string]func() queue.Policy{
		"fcfs":       func() queue.Policy { return queue.NewFCFS() },
		"sjf":        func() queue.Policy { return queue.NewSJF(nil) },
		"fair-share": func() queue.Policy { return queue.NewFairShare() },
	}
	for _, name := range []string{"fcfs", "sjf", "fair-share"} {
		d, err := urd.New(urd.Config{
			NodeName:      "ablation",
			ControlSocket: fmt.Sprintf("%s/abl-%s.sock", socketDir, name),
			Workers:       1, // serialize execution so ordering matters
			Policy:        policies[name](),
		})
		if err != nil {
			return nil, err
		}
		ctl, err := nornsctl.Dial(fmt.Sprintf("%s/abl-%s.sock", socketDir, name))
		if err != nil {
			d.Close()
			return nil, err
		}
		if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
			ctl.Close()
			d.Close()
			return nil, err
		}
		big := make([]byte, 8<<20)
		small := make([]byte, 4<<10)
		var ids []uint64
		start := time.Now()
		// Job 1 floods with large transfers, then job 2's small tasks
		// arrive behind them.
		for i := 0; i < 8; i++ {
			id, err := ctl.Submit(task.Copy, task.MemoryRegion(big),
				task.PosixPath("tmp0://", fmt.Sprintf("big/%d", i)), 1, 0)
			if err != nil {
				ctl.Close()
				d.Close()
				return nil, err
			}
			ids = append(ids, id)
		}
		var smallIDs []uint64
		for i := 0; i < smallTasks; i++ {
			id, err := ctl.Submit(task.Copy, task.MemoryRegion(small),
				task.PosixPath("tmp0://", fmt.Sprintf("small/%d", i)), 2, 0)
			if err != nil {
				ctl.Close()
				d.Close()
				return nil, err
			}
			smallIDs = append(smallIDs, id)
		}
		wait := metrics.NewSample(smallTasks)
		for _, id := range smallIDs {
			if _, err := ctl.Wait(id, time.Minute); err != nil {
				ctl.Close()
				d.Close()
				return nil, err
			}
			wait.Add(float64(time.Since(start).Milliseconds()))
		}
		for _, id := range ids {
			if _, err := ctl.Wait(id, time.Minute); err != nil {
				ctl.Close()
				d.Close()
				return nil, err
			}
		}
		makespan := time.Since(start)
		ctl.Close()
		d.Close()
		t.AddRow(name, wait.Mean(), float64(makespan.Milliseconds()))
	}
	return t, nil
}

// AblationWorkers sweeps the urd worker-pool size under concurrent
// local copy tasks: throughput rises with workers until the storage
// path saturates.
func AblationWorkers(socketDir string, tasksPerRun int) (*metrics.Table, error) {
	if tasksPerRun <= 0 {
		tasksPerRun = 64
	}
	t := metrics.NewTable(
		"Ablation — urd worker pool size",
		"Workers", "Tasks/s")
	payload := make([]byte, 1<<20)
	for _, workers := range []int{1, 2, 4, 8} {
		d, err := urd.New(urd.Config{
			NodeName:      "workers",
			ControlSocket: fmt.Sprintf("%s/w%d.sock", socketDir, workers),
			Workers:       workers,
		})
		if err != nil {
			return nil, err
		}
		ctl, err := nornsctl.Dial(fmt.Sprintf("%s/w%d.sock", socketDir, workers))
		if err != nil {
			d.Close()
			return nil, err
		}
		if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
			ctl.Close()
			d.Close()
			return nil, err
		}
		start := time.Now()
		ids := make([]uint64, 0, tasksPerRun)
		for i := 0; i < tasksPerRun; i++ {
			id, err := ctl.Submit(task.Copy, task.MemoryRegion(payload),
				task.PosixPath("tmp0://", fmt.Sprintf("f/%d", i)), 0, 0)
			if err != nil {
				ctl.Close()
				d.Close()
				return nil, err
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			if _, err := ctl.Wait(id, time.Minute); err != nil {
				ctl.Close()
				d.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		ctl.Close()
		d.Close()
		t.AddRow(workers, float64(tasksPerRun)/elapsed.Seconds())
	}
	return t, nil
}

// AblationBufSize sweeps the bulk chunk size on a real ofi+tcp bulk
// pull, reproducing the paper's observation that 16 MiB buffers
// saturate the transport and larger ones do not help.
func AblationBufSize(totalBytes int) (*metrics.Table, error) {
	if totalBytes <= 0 {
		totalBytes = 64 << 20
	}
	t := metrics.NewTable(
		"Ablation — bulk transfer buffer size (ofi+tcp loopback)",
		"Chunk KiB", "Bandwidth MiB/s")
	data := make([]byte, totalBytes)
	for _, chunk := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		srv, err := mercury.NewClass("ofi+tcp")
		if err != nil {
			return nil, err
		}
		srv.SetBulkChunk(chunk)
		addr, err := srv.Listen("")
		if err != nil {
			srv.Close()
			return nil, err
		}
		cli, err := mercury.NewClass("ofi+tcp")
		if err != nil {
			srv.Close()
			return nil, err
		}
		cli.SetBulkChunk(chunk)
		h := srv.ExposeBulk(mercury.NewMemRegion(data))
		ep, err := cli.Lookup(addr)
		if err != nil {
			cli.Close()
			srv.Close()
			return nil, err
		}
		dst := mercury.NewMemRegion(make([]byte, totalBytes))
		// Best of three repetitions: loopback throughput is noisy and
		// the sweep is about the trend, not one sample.
		var best float64
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			n, perr := ep.BulkPull(h, 0, 0, dst)
			elapsed := time.Since(start)
			if perr != nil {
				cli.Close()
				srv.Close()
				return nil, perr
			}
			if bw := float64(n) / elapsed.Seconds() / mib; bw > best {
				best = bw
			}
		}
		cli.Close()
		srv.Close()
		t.AddRow(chunk>>10, best)
	}
	return t, nil
}

// AblationStagingTier compares where a workflow's intermediate data
// lives: the shared PFS, a shared burst-buffer appliance (the paper's
// future-work transfer-plugin target — faster than the PFS but still a
// shared, contended resource), or node-local NVM. The shape matches the
// paper's argument for node-local staging: the burst buffer closes part
// of the gap but keeps the shared-resource contention profile.
func AblationStagingTier() (*metrics.Table, error) {
	t := metrics.NewTable(
		"Ablation — intermediate-data tier for the producer/consumer workflow",
		"Tier", "Producer s", "Consumer s", "Total s")
	run := func(tier string, sameNode bool, mk func(tb *slurmEngine)) error {
		tb := newWorkflowTestbed(0.15)
		if mk != nil {
			mk(tb)
		}
		p, c, err := runWorkflowPair(tb, tier, sameNode)
		if err != nil {
			return err
		}
		t.AddRow(tier, p, c, p+c)
		return nil
	}
	if err := run("lustre://", false, nil); err != nil {
		return nil, err
	}
	if err := run("bb0://", false, func(tb *slurmEngine) {
		// A DataWarp-class appliance: ~4x the PFS bandwidth, shared.
		tb.Env.AddTier("bb0://", simstore.NewPFS(tb.Eng, simstore.PFSConfig{
			Name: "burst-buffer", ReadBW: 10 * gb, WriteBW: 12 * gb, Stripes: 1,
		}))
	}); err != nil {
		return nil, err
	}
	if err := run("nvme0://", true, nil); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationDataAware compares workflow makespans when the consumer lands
// on the producer's node (data-aware selection) versus on a different
// node (the unlucky placement data-aware selection avoids), where the
// 100 GB of intermediate data must first be redistributed over the
// fabric.
func AblationDataAware() (*metrics.Table, error) {
	t := metrics.NewTable(
		"Ablation — data-aware node selection",
		"Placement", "Producer s", "Staging s", "Consumer s", "Total s")

	// Data-aware: consumer co-located, data read straight from the
	// producer's node-local NVM.
	tb := newWorkflowTestbed(0.15)
	prodSec, consSec, err := runWorkflowPair(tb, "nvme0://", true)
	if err != nil {
		return nil, err
	}
	t.AddRow("co-located (data-aware)", prodSec, 0.0, consSec, prodSec+consSec)

	// Unlucky placement: consumer on another node; the intermediate
	// dataset crosses the fabric before the consumer can start.
	tb2 := newWorkflowTestbed(0.15)
	tb2.Env.PutData("n1", "nvme0://inter", table3Bytes)
	var stageSec float64
	var stageErr error
	d := slurm.StageDirective{Kind: slurm.StageIn, Origin: "nvme0://inter", Destination: "nvme0://inter"}
	start := tb2.Eng.Now()
	tb2.Env.Stage(&slurm.Job{Spec: &slurm.JobSpec{}}, d, []string{"n2"}, func(err error) {
		stageErr = err
		stageSec = tb2.Eng.Now() - start
	})
	tb2.Eng.Run()
	if stageErr != nil {
		return nil, stageErr
	}
	// Consumer then runs on n2 against its local copy.
	ctx := &workload.Context{
		Eng:     tb2.Eng,
		Nodes:   []string{"n2"},
		Tier:    tb2.Env.Tier,
		Mem:     tb2.Env.Mem,
		PutData: func(n, r string, b float64) { tb2.Env.PutData(n, r, b) },
		GetData: tb2.Env.GetData,
	}
	consStart := tb2.Eng.Now()
	var consRemote float64
	var consErr error
	workload.Seq{
		workload.IO{Dataspace: "nvme0://", Ref: "inter", Procs: workflowProcs},
		workload.Compute{Seconds: consumerCPU},
	}.Run(ctx, func(err error) {
		consErr = err
		consRemote = tb2.Eng.Now() - consStart
	})
	tb2.Eng.Run()
	if consErr != nil {
		return nil, consErr
	}
	t.AddRow("remote (first-free, unlucky)", prodSec, stageSec, consRemote, prodSec+stageSec+consRemote)
	return t, nil
}
