// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section V), each regenerating the corresponding
// rows/series. Absolute numbers depend on the calibrated substrate; the
// shapes — who wins, by what factor, where saturation falls — are the
// reproduction targets (see EXPERIMENTS.md).
package experiments

import (
	"fmt"

	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/simnet"
)

// NodeCounts is the 1-32 sweep used across the paper's figures.
var NodeCounts = []int{1, 2, 4, 8, 16, 32}

const (
	gib = float64(1 << 30)
	mib = float64(1 << 20)
	gb  = 1e9
	mb  = 1e6
)

// fig1Run runs one PFS write/read experiment: nodes inject
// perNodeBytes each (capped at nodeCap B/s per node) into a file system
// of the given aggregate capacity, while heavy-tailed background bursts
// compete. The noise *level* itself is drawn per run — the paper notes
// the only difference between repetitions of the same configuration is
// the other traffic on the machine at that moment. Returns the achieved
// aggregate bandwidth in bytes/sec.
func fig1Run(seed int64, nodes int, perNodeBytes, nodeCap, fsCapacity float64, maxLoad float64) float64 {
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	res := simnet.NewCappedResource(eng, fsCapacity)

	// This repetition's background level: anywhere from a quiet machine
	// to near saturation.
	noiseLoad := 0.02 + (maxLoad-0.02)*rng.Float64()
	// Background interference: bursts arriving forever; offered load is
	// noiseLoad (fraction of fsCapacity).
	meanBurst := fsCapacity * 0.5 // half a second of capacity per burst
	interarrival := meanBurst / (noiseLoad * fsCapacity)
	// Each burst is a competing application running many ranks, so it
	// outweighs one of our writer streams in the fair-share contention.
	const burstWeight = 24
	// The machine is already busy when the benchmark starts: seed a
	// backlog proportional to the load level.
	for i := 0; i < 1+int(noiseLoad*10); i++ {
		res.StartWeighted(rng.Pareto(meanBurst/3, 1.5), 0, burstWeight, nil)
	}
	stopNoise := false
	var scheduleNoise func()
	scheduleNoise = func() {
		if stopNoise {
			return
		}
		eng.After(rng.Exp(1/interarrival), func() {
			if stopNoise {
				return
			}
			bytes := rng.Pareto(meanBurst/3, 1.5)
			if bytes > fsCapacity*30 {
				bytes = fsCapacity * 30 // bound pathological bursts
			}
			res.StartWeighted(bytes, 0, burstWeight, nil)
			scheduleNoise()
		})
	}
	scheduleNoise()

	var finished int
	var makespan float64
	for i := 0; i < nodes; i++ {
		res.Start(perNodeBytes, nodeCap, func() {
			finished++
			if finished == nodes {
				makespan = eng.Now()
				stopNoise = true
			}
		})
	}
	eng.RunUntil(1e7)
	if makespan == 0 {
		return 0
	}
	return perNodeBytes * float64(nodes) / makespan
}

// Fig1a reproduces the ARCHER experiment: repeated collective-write
// benchmarks (100 MB per writer, 24 writers/node) under production
// interference, with default (4 OSTs) vs full (48 OSTs) Lustre striping.
// Reported: min and max achieved bandwidth over the repetitions.
func Fig1a(reps int) *metrics.Table {
	if reps <= 0 {
		reps = 15
	}
	t := metrics.NewTable(
		"Figure 1a — ARCHER: cross-application interference, collective MPI-IO writes",
		"Nodes", "Striping", "Min MB/s", "Max MB/s")
	const (
		fsCapacity   = 20 * gb  // theoretical filesystem write rate
		nodeCap      = 1.4 * gb // injection limit per compute node
		perNode      = 24 * 100 * mb
		totalStripes = 48.0
	)
	for _, stripe := range []struct {
		name string
		osts float64
	}{{"default(4)", 4}, {"full(48)", 48}} {
		for _, n := range NodeCounts {
			sample := metrics.NewSample(reps)
			for r := 0; r < reps; r++ {
				seed := int64(r)*1000 + int64(n)*7 + int64(stripe.osts)
				// Striping over k of S OSTs limits the reachable share
				// of the file system.
				cap := fsCapacity * stripe.osts / totalStripes
				bw := fig1Run(seed, n, perNode, nodeCap, cap, 0.85)
				sample.Add(bw / mb)
			}
			t.AddRow(n, stripe.name, sample.Min(), sample.Max())
		}
	}
	return t
}

// Fig1b reproduces the MareNostrum IV experiment: IOR file-per-process
// read/write (24 writers/node) repeated across a week of production
// load; reported min/median/max bandwidth.
func Fig1b(reps int) *metrics.Table {
	if reps <= 0 {
		reps = 25
	}
	t := metrics.NewTable(
		"Figure 1b — MareNostrum IV: GPFS I/O variability, file-per-process IOR",
		"Nodes", "Op", "Min MB/s", "Median MB/s", "Max MB/s")
	const (
		readCap  = 12 * gb
		writeCap = 10 * gb
		nodeCap  = 1.2 * gb
		perNode  = 24 * 200 * mb
	)
	for _, op := range []struct {
		name string
		cap  float64
		load float64
	}{{"read", readCap, 0.95}, {"write", writeCap, 0.95}} {
		for _, n := range NodeCounts {
			sample := metrics.NewSample(reps)
			for r := 0; r < reps; r++ {
				seed := int64(r)*337 + int64(n)*11
				if op.name == "write" {
					seed += 50000
				}
				bw := fig1Run(seed, n, perNode, nodeCap, op.cap, op.load)
				sample.Add(bw / mb)
			}
			t.AddRow(n, op.name, sample.Min(), sample.Median(), sample.Max())
		}
	}
	return t
}

// Fig1Check verifies the reproduction's shape properties; the benchmark
// harness prints the outcome alongside the tables.
func Fig1Check(t *metrics.Table) string {
	return fmt.Sprintf("%d rows; shape checks live in experiments tests", len(t.Rows))
}
