package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/urd"
	"github.com/ngioproject/norns-go/internal/wire"
)

// HotPathClients is the client-concurrency sweep of the hot-path
// benchmark: a single caller, a busy node, and the bursty many-client
// regime the lock-striped registry and group-commit exist for.
var HotPathClients = []int{1, 8, 64}

// hotPathBatch is how many tasks each client keeps in flight per
// SubmitBatch RPC — deep enough to amortize round trips (the PR 4
// result), so what remains is the daemon's own per-task cost.
const hotPathBatch = 64

// HotPath measures the end-to-end submit→complete hot path against a
// real daemon over real AF_UNIX sockets: NoOp tasks move no bytes, so
// the numbers isolate the per-task pipeline — wire encode/decode,
// framing, dispatch, registry, event push, and (for the journaled rows)
// the write-ahead log. Reported per row: completed tasks/s, process-wide
// heap bytes and allocations per task (client and daemon share the
// process, so this is the full round trip), and batch submit→complete
// latency percentiles.
func HotPath(socketDir string, tasksPerClient int) (*metrics.Table, error) {
	if tasksPerClient <= 0 {
		tasksPerClient = 512
	}
	t := metrics.NewTable(
		"Hot path — submit→complete NoOp tasks (batch=64, push events)",
		"Clients", "Journal", "Tasks/s", "B/op", "Allocs/op", "p50 ms", "p99 ms")
	for _, journaled := range []bool{false, true} {
		for _, clients := range HotPathClients {
			r, err := hotPathRun(socketDir, clients, tasksPerClient, journaled)
			if err != nil {
				return nil, fmt.Errorf("hotpath clients=%d journal=%v: %w", clients, journaled, err)
			}
			jr := "off"
			if journaled {
				jr = "on"
			}
			t.AddRow(clients, jr, r.opsPerSec, r.bytesPerOp, r.allocsPerOp, r.p50ms, r.p99ms)
		}
	}
	return t, nil
}

type hotPathResult struct {
	opsPerSec   float64
	bytesPerOp  float64
	allocsPerOp float64
	p50ms       float64
	p99ms       float64
}

func hotPathRun(dir string, clients, perClient int, journaled bool) (hotPathResult, error) {
	tag := fmt.Sprintf("hp%d", clients)
	if journaled {
		tag += "j"
	}
	cfg := urd.Config{
		NodeName:      "bench",
		UserSocket:    filepath.Join(dir, tag+".sock"),
		ControlSocket: filepath.Join(dir, tag+"c.sock"),
		Workers:       4,
	}
	if journaled {
		cfg.StateDir = filepath.Join(dir, tag+"-state")
	}
	d, err := urd.New(cfg)
	if err != nil {
		return hotPathResult{}, err
	}
	defer d.Close()

	ctl, err := nornsctl.Dial(cfg.ControlSocket)
	if err != nil {
		return hotPathResult{}, err
	}
	defer ctl.Close()
	if err := ctl.RegisterJob(nornsctl.JobDef{ID: 1, Hosts: []string{"bench"}}); err != nil {
		return hotPathResult{}, err
	}
	if err := ctl.AddProcess(1, nornsctl.ProcDef{PID: uint64(os.Getpid())}); err != nil {
		return hotPathResult{}, err
	}

	conns := make([]*norns.Client, clients)
	for i := range conns {
		c, err := norns.Dial(cfg.UserSocket)
		if err != nil {
			return hotPathResult{}, err
		}
		defer c.Close()
		conns[i] = c
	}

	lat := metrics.NewSample(clients * (perClient/hotPathBatch + 1))
	errs := make(chan error, clients)
	startC := make(chan struct{})
	var wg sync.WaitGroup
	ctx := context.Background()
	for _, c := range conns {
		wg.Add(1)
		go func(c *norns.Client) {
			defer wg.Done()
			<-startC
			for done := 0; done < perClient; {
				n := min(hotPathBatch, perClient-done)
				descs := make([]norns.IOTask, n)
				tasks := make([]*norns.IOTask, n)
				for i := range descs {
					descs[i] = norns.NewIOTask(norns.NoOp, norns.MemoryRegion(nil), norns.MemoryRegion(nil))
					tasks[i] = &descs[i]
				}
				t0 := time.Now()
				results, err := c.SubmitBatch(ctx, tasks)
				if err != nil {
					errs <- err
					return
				}
				handles := make([]*norns.TaskHandle, 0, n)
				for i, r := range results {
					if r.Err != nil {
						errs <- fmt.Errorf("batch entry %d: %w", i, r.Err)
						return
					}
					handles = append(handles, r.Handle)
				}
				if err := c.WaitAll(ctx, handles...); err != nil {
					errs <- err
					return
				}
				lat.AddDuration(time.Since(t0))
				done += n
			}
		}(c)
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	close(startC)
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	select {
	case err := <-errs:
		return hotPathResult{}, err
	default:
	}

	ops := float64(clients * perClient)
	return hotPathResult{
		opsPerSec:   ops / elapsed.Seconds(),
		bytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / ops,
		allocsPerOp: float64(m1.Mallocs-m0.Mallocs) / ops,
		p50ms:       lat.Median() * 1e3,
		p99ms:       lat.Percentile(99) * 1e3,
	}, nil
}

// hotPathWireIters is the measurement loop length for the wire-level
// microbenchmark; large enough that per-run noise (a stray GC cycle)
// amortizes away in the per-op averages.
const hotPathWireIters = 200_000

// HotPathWire measures the protocol serialization round trip in
// isolation: a submit Request and its Response encoded through the
// frame writer and decoded back through the frame reader, exactly as
// the transport does per RPC — ns, heap bytes, and allocations per
// round trip. This is the allocs/op trajectory the wire buffer pooling
// targets (guarded by the wire package's AllocsPerRun regression
// tests).
func HotPathWire() *metrics.Table {
	t := metrics.NewTable(
		"Hot path — wire Request/Response round trip (encode+frame+decode)",
		"Message", "ns/op", "B/op", "Allocs/op")

	req := &proto.Request{
		Op:  proto.OpSubmit,
		Seq: 42, PID: 4711,
		Task: &proto.TaskSpec{
			Kind:   uint32(2),
			Input:  proto.ResourceSpec{Kind: 2, Dataspace: "lustre://", Path: "/scratch/in.dat"},
			Output: proto.ResourceSpec{Kind: 2, Dataspace: "nvme0://", Path: "/staging/out.dat"},
		},
	}
	resp := &proto.Response{Status: proto.Success, Seq: 42, TaskID: 99,
		Stats: &proto.TaskStats{Status: 3, TotalBytes: 1 << 20, MovedBytes: 1 << 20}}

	row := func(name string, m wire.Marshaler, fresh func() wire.Unmarshaler) {
		var buf bytes.Buffer
		fw := wire.NewFrameWriter(&buf)
		fr := wire.NewFrameReader(&buf)
		// Warm up pools and the reader scratch outside the window.
		for i := 0; i < 64; i++ {
			buf.Reset()
			_ = fw.WriteMessage(m)
			_ = fr.ReadMessage(fresh())
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < hotPathWireIters; i++ {
			buf.Reset()
			if err := fw.WriteMessage(m); err != nil {
				panic(err)
			}
			if err := fr.ReadMessage(fresh()); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		t.AddRow(name,
			float64(elapsed.Nanoseconds())/hotPathWireIters,
			float64(m1.TotalAlloc-m0.TotalAlloc)/hotPathWireIters,
			float64(m1.Mallocs-m0.Mallocs)/hotPathWireIters)
	}
	row("Request(submit)", req, func() wire.Unmarshaler { return new(proto.Request) })
	row("Response(stats)", resp, func() wire.Unmarshaler { return new(proto.Response) })
	return t
}
