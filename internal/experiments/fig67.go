package experiments

import (
	"github.com/ngioproject/norns-go/internal/metrics"
	"github.com/ngioproject/norns-go/internal/sim"
	"github.com/ngioproject/norns-go/internal/simnet"
)

// RPCCounts is the in-flight sweep of figures 6-7.
var RPCCounts = []int{1, 2, 4, 8, 16}

// fig67Config calibrates the remote-transfer model against the paper's
// NEXTGenIO measurements: per-client ofi+tcp saturation at ≈1.7 GiB/s
// for reads and ≈1.8 GiB/s for writes, a target link far above the
// 32-client aggregate (so scaling stays linear, peaking at ≈55-60
// GiB/s), and a ≈0.9 ms RPC round trip amortized by in-flight RPCs.
type fig67Config struct {
	perClientCap float64
	targetLink   float64
	rpcLatency   float64
	bufBytes     float64
	buffers      int
}

func fig67Run(cfg fig67Config, clients, inflight int) float64 {
	eng := sim.NewEngine()
	fab := simnet.NewFabric(eng, cfg.targetLink, cfg.perClientCap, cfg.rpcLatency)
	var makespan float64
	remaining := clients
	for c := 0; c < clients; c++ {
		// Each client moves `buffers` buffers sequentially; inflight
		// RPCs amortize latency within each buffer's protocol exchange.
		var step func(i int)
		step = func(i int) {
			if i == cfg.buffers {
				remaining--
				if remaining == 0 {
					makespan = eng.Now()
				}
				return
			}
			fab.Transfer("target", cfg.bufBytes, inflight, func(float64) { step(i + 1) })
		}
		step(0)
	}
	eng.Run()
	total := cfg.bufBytes * float64(cfg.buffers) * float64(clients)
	return total / makespan
}

// Fig6 reproduces the aggregated remote-read bandwidth sweep:
// 1-32 clients reading 16 MiB buffers from a single NORNS instance with
// 1-16 RPCs in flight.
func Fig6() *metrics.Table {
	cfg := fig67Config{
		perClientCap: 1.7 * gib,
		targetLink:   64 * gib,
		rpcLatency:   0.0009,
		bufBytes:     16 * mib,
		buffers:      64,
	}
	t := metrics.NewTable(
		"Figure 6 — NORNS aggregated bandwidth for remote data reads",
		"Clients", "RPCs", "Aggregate MiB/s")
	for _, clients := range ClientCounts {
		for _, rpcs := range RPCCounts {
			bw := fig67Run(cfg, clients, rpcs)
			t.AddRow(clients, rpcs, bw/mib)
		}
	}
	return t
}

// Fig7 reproduces the aggregated remote-write bandwidth sweep
// (per-client saturation ≈1.8 GiB/s).
func Fig7() *metrics.Table {
	cfg := fig67Config{
		perClientCap: 1.8 * gib,
		targetLink:   64 * gib,
		rpcLatency:   0.0009,
		bufBytes:     16 * mib,
		buffers:      64,
	}
	t := metrics.NewTable(
		"Figure 7 — NORNS aggregated bandwidth for remote data writes",
		"Clients", "RPCs", "Aggregate MiB/s")
	for _, clients := range ClientCounts {
		for _, rpcs := range RPCCounts {
			bw := fig67Run(cfg, clients, rpcs)
			t.AddRow(clients, rpcs, bw/mib)
		}
	}
	return t
}
