package dataspace

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/ngioproject/norns-go/internal/storage"
)

func memBackend() Backend {
	return Backend{Kind: NVM, Mount: "/mnt/pmem0", FS: storage.NewMemFS()}
}

func TestValidateID(t *testing.T) {
	for _, good := range []string{"lustre://", "nvme0://", "pmdk0://", "tmp-1://", "A_b3://"} {
		if err := ValidateID(good); err != nil {
			t.Errorf("ValidateID(%q) = %v", good, err)
		}
	}
	for _, bad := range []string{"", "://", "lustre", "lustre:/", "lu stre://", "x/y://"} {
		if err := ValidateID(bad); !errors.Is(err, ErrBadID) {
			t.Errorf("ValidateID(%q) = %v, want ErrBadID", bad, err)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register("nvme0://", memBackend()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("nvme0://", memBackend()); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Register = %v", err)
	}
	if _, err := r.Register("bad", memBackend()); !errors.Is(err, ErrBadID) {
		t.Fatalf("bad ID Register = %v", err)
	}
	if _, err := r.Register("x://", Backend{Kind: NVM}); !errors.Is(err, ErrNilFS) {
		t.Fatalf("nil FS Register = %v", err)
	}
	ds, err := r.Get("nvme0://")
	if err != nil || ds.ID != "nvme0://" {
		t.Fatalf("Get = %v, %v", ds, err)
	}
	nb := memBackend()
	nb.Mount = "/mnt/pmem1"
	if err := r.Update("nvme0://", nb); err != nil {
		t.Fatal(err)
	}
	ds, _ = r.Get("nvme0://")
	if ds.Backend.Mount != "/mnt/pmem1" {
		t.Fatalf("Update did not apply: %+v", ds.Backend)
	}
	if err := r.Update("missing://", nb); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Update missing = %v", err)
	}
	if err := r.Unregister("nvme0://"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unregister("nvme0://"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Unregister = %v", err)
	}
}

func TestRegistryList(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"z://", "a://", "m://"} {
		if _, err := r.Register(id, memBackend()); err != nil {
			t.Fatal(err)
		}
	}
	got := r.List()
	want := []string{"a://", "m://", "z://"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("List = %v", got)
	}
}

func TestTrackedDataspaces(t *testing.T) {
	r := NewRegistry()
	fs := storage.NewMemFS()
	if _, err := r.Register("nvme0://", Backend{Kind: NVM, FS: fs}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("nvme1://", memBackend()); err != nil {
		t.Fatal(err)
	}
	if err := r.SetTrack("nvme0://", true); err != nil {
		t.Fatal(err)
	}
	if err := r.SetTrack("nvme1://", true); err != nil {
		t.Fatal(err)
	}
	if err := r.SetTrack("missing://", true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetTrack missing = %v", err)
	}
	// Both tracked, both empty.
	ids, err := r.NonEmptyTracked()
	if err != nil || len(ids) != 0 {
		t.Fatalf("NonEmptyTracked = %v, %v", ids, err)
	}
	// Leave data behind in one.
	if err := fs.WriteFile("leftover.dat", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ids, err = r.NonEmptyTracked()
	if err != nil || len(ids) != 1 || ids[0] != "nvme0://" {
		t.Fatalf("NonEmptyTracked = %v, %v", ids, err)
	}
}

func TestBackendKindShared(t *testing.T) {
	if !ParallelFS.Shared() || !BurstBuffer.Shared() {
		t.Error("shared tiers misreported")
	}
	if PosixDir.Shared() || NVM.Shared() || MemoryTier.Shared() {
		t.Error("local tiers misreported as shared")
	}
}

func TestControllerJobLifecycle(t *testing.T) {
	c := NewController()
	job := Job{ID: 7, Hosts: []string{"n1", "n2"}, Limits: []JobLimits{{Dataspace: "nvme0://"}}}
	if err := c.RegisterJob(job); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterJob(job); !errors.Is(err, ErrJobExists) {
		t.Fatalf("duplicate RegisterJob = %v", err)
	}
	got, err := c.Job(7)
	if err != nil || len(got.Hosts) != 2 {
		t.Fatalf("Job = %+v, %v", got, err)
	}
	job.Hosts = []string{"n1"}
	if err := c.UpdateJob(job); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Job(7)
	if len(got.Hosts) != 1 {
		t.Fatalf("UpdateJob did not apply: %+v", got)
	}
	if err := c.UpdateJob(Job{ID: 99}); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("UpdateJob missing = %v", err)
	}
	if err := c.UnregisterJob(7); err != nil {
		t.Fatal(err)
	}
	if err := c.UnregisterJob(7); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("double UnregisterJob = %v", err)
	}
}

func TestControllerProcesses(t *testing.T) {
	c := NewController()
	if err := c.RegisterJob(Job{ID: 1}); err != nil {
		t.Fatal(err)
	}
	p := Proc{PID: 100, UID: 1000, GID: 1000}
	if err := c.AddProcess(99, p); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("AddProcess to missing job = %v", err)
	}
	if err := c.AddProcess(1, p); err != nil {
		t.Fatal(err)
	}
	if err := c.AddProcess(1, p); !errors.Is(err, ErrProcExists) {
		t.Fatalf("duplicate AddProcess = %v", err)
	}
	jid, err := c.JobOf(100)
	if err != nil || jid != 1 {
		t.Fatalf("JobOf = %d, %v", jid, err)
	}
	if err := c.RemoveProcess(1, p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.JobOf(100); !errors.Is(err, ErrProcNotFound) {
		t.Fatalf("JobOf after remove = %v", err)
	}
}

func TestUnregisterJobRemovesProcs(t *testing.T) {
	c := NewController()
	if err := c.RegisterJob(Job{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddProcess(1, Proc{PID: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.UnregisterJob(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.JobOf(100); !errors.Is(err, ErrProcNotFound) {
		t.Fatalf("process survived job unregistration: %v", err)
	}
}

func TestAuthorize(t *testing.T) {
	c := NewController()
	if _, err := c.Spaces.Register("nvme0://", memBackend()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Spaces.Register("lustre://", memBackend()); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterJob(Job{ID: 1, Limits: []JobLimits{{Dataspace: "nvme0://"}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddProcess(1, Proc{PID: 100}); err != nil {
		t.Fatal(err)
	}

	// Unregistered process: rejected (rule 2 of Section IV-C).
	if _, err := c.Authorize(555, "nvme0://"); !errors.Is(err, ErrDenied) {
		t.Fatalf("unregistered process authorized: %v", err)
	}
	// Registered process, allowed dataspace.
	jid, err := c.Authorize(100, "nvme0://")
	if err != nil || jid != 1 {
		t.Fatalf("Authorize = %d, %v", jid, err)
	}
	// Registered process, dataspace outside job limits (rule 3).
	if _, err := c.Authorize(100, "lustre://"); !errors.Is(err, ErrDenied) {
		t.Fatalf("out-of-limits dataspace authorized: %v", err)
	}
	// Nonexistent dataspace.
	if _, err := c.Authorize(100, "ghost://"); !errors.Is(err, ErrDenied) {
		t.Fatalf("ghost dataspace authorized: %v", err)
	}
	// Empty dataspace IDs (memory resources) are skipped.
	if _, err := c.Authorize(100, "", "nvme0://"); err != nil {
		t.Fatalf("empty ID not skipped: %v", err)
	}
}

func TestAuthorizeAdmin(t *testing.T) {
	c := NewController()
	if _, err := c.Spaces.Register("nvme0://", memBackend()); err != nil {
		t.Fatal(err)
	}
	if err := c.AuthorizeAdmin("nvme0://", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.AuthorizeAdmin("missing://"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AuthorizeAdmin missing = %v", err)
	}
}

// TestRegistryPropertyRegisterGet checks that any validly-shaped ID that
// registers successfully can be fetched and listed exactly once.
func TestRegistryPropertyRegisterGet(t *testing.T) {
	f := func(n uint8) bool {
		r := NewRegistry()
		count := int(n%16) + 1
		for i := 0; i < count; i++ {
			id := fmt.Sprintf("tier%d://", i)
			if _, err := r.Register(id, memBackend()); err != nil {
				return false
			}
		}
		if len(r.List()) != count {
			return false
		}
		for i := 0; i < count; i++ {
			if _, err := r.Get(fmt.Sprintf("tier%d://", i)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDataspaceUsage(t *testing.T) {
	r := NewRegistry()
	fs := storage.NewMemFS()
	ds, err := r.Register("nvme0://", Backend{Kind: NVM, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	u, err := ds.Usage()
	if err != nil || u != 100 {
		t.Fatalf("Usage = %d, %v", u, err)
	}
	empty, err := ds.Empty()
	if err != nil || empty {
		t.Fatalf("Empty = %v, %v", empty, err)
	}
}
