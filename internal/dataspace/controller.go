package dataspace

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Controller errors.
var (
	ErrJobExists    = errors.New("dataspace: job already registered")
	ErrJobNotFound  = errors.New("dataspace: job not registered")
	ErrProcExists   = errors.New("dataspace: process already registered")
	ErrProcNotFound = errors.New("dataspace: process not registered")
	ErrDenied       = errors.New("dataspace: access denied")
)

// JobLimits bounds a job's use of a dataspace (nornsctl_job_init limits).
type JobLimits struct {
	Dataspace string
	// Quota is the job's byte allowance in the dataspace (0 = unlimited).
	Quota int64
}

// Job is a batch job registered with the controller.
type Job struct {
	ID uint64
	// Hosts are the nodes allocated to the job.
	Hosts []string
	// Limits lists the dataspaces the job may use, with quotas.
	Limits []JobLimits
}

// allowed reports whether the job may use the given dataspace.
func (j *Job) allowed(dataspaceID string) bool {
	for _, l := range j.Limits {
		if l.Dataspace == dataspaceID {
			return true
		}
	}
	return false
}

// Proc identifies a registered client process (nornsctl_proc_init).
type Proc struct {
	PID uint64
	UID uint64
	GID uint64
}

// Controller is the urd daemon's job & dataspace controller: it tracks
// registered jobs, the processes belonging to them, and validates task
// submissions against both (Section IV-B). It is safe for concurrent
// use.
type Controller struct {
	Spaces *Registry

	mu    sync.RWMutex
	jobs  map[uint64]*Job
	procs map[uint64]uint64 // PID -> JobID
}

// NewController returns a controller over a fresh dataspace registry.
func NewController() *Controller {
	return &Controller{
		Spaces: NewRegistry(),
		jobs:   make(map[uint64]*Job),
		procs:  make(map[uint64]uint64),
	}
}

// RegisterJob adds a job (nornsctl_register_job).
func (c *Controller) RegisterJob(job Job) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[job.ID]; ok {
		return fmt.Errorf("%w: %d", ErrJobExists, job.ID)
	}
	j := job
	c.jobs[job.ID] = &j
	return nil
}

// UpdateJob replaces a job's hosts and limits (nornsctl_update_job).
func (c *Controller) UpdateJob(job Job) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[job.ID]; !ok {
		return fmt.Errorf("%w: %d", ErrJobNotFound, job.ID)
	}
	j := job
	c.jobs[job.ID] = &j
	return nil
}

// UnregisterJob removes a job and its processes
// (nornsctl_unregister_job).
func (c *Controller) UnregisterJob(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[id]; !ok {
		return fmt.Errorf("%w: %d", ErrJobNotFound, id)
	}
	delete(c.jobs, id)
	for pid, jid := range c.procs {
		if jid == id {
			delete(c.procs, pid)
		}
	}
	return nil
}

// Job returns a copy of the registered job.
func (c *Controller) Job(id uint64) (Job, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	j, ok := c.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %d", ErrJobNotFound, id)
	}
	return *j, nil
}

// Jobs returns the registered job IDs in sorted order.
func (c *Controller) Jobs() []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]uint64, 0, len(c.jobs))
	for id := range c.jobs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddProcess attaches a process to a job (nornsctl_add_process).
func (c *Controller) AddProcess(jobID uint64, p Proc) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[jobID]; !ok {
		return fmt.Errorf("%w: %d", ErrJobNotFound, jobID)
	}
	if _, ok := c.procs[p.PID]; ok {
		return fmt.Errorf("%w: pid %d", ErrProcExists, p.PID)
	}
	c.procs[p.PID] = jobID
	return nil
}

// RemoveProcess detaches a process (nornsctl_remove_process).
func (c *Controller) RemoveProcess(jobID uint64, p Proc) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	jid, ok := c.procs[p.PID]
	if !ok || jid != jobID {
		return fmt.Errorf("%w: pid %d", ErrProcNotFound, p.PID)
	}
	delete(c.procs, p.PID)
	return nil
}

// JobOf returns the job a process is registered under.
func (c *Controller) JobOf(pid uint64) (uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	jid, ok := c.procs[pid]
	if !ok {
		return 0, fmt.Errorf("%w: pid %d", ErrProcNotFound, pid)
	}
	return jid, nil
}

// Authorize validates that the process may run a task touching the given
// dataspaces: the process must belong to a registered job, and every
// dataspace must be registered and listed in the job's limits. It
// returns the job ID on success. This implements the three rejection
// rules of Section IV-C.
func (c *Controller) Authorize(pid uint64, dataspaceIDs ...string) (uint64, error) {
	c.mu.RLock()
	jid, ok := c.procs[pid]
	var job *Job
	if ok {
		job = c.jobs[jid]
	}
	c.mu.RUnlock()
	if job == nil {
		return 0, fmt.Errorf("%w: process %d is not registered with any job", ErrDenied, pid)
	}
	for _, id := range dataspaceIDs {
		if id == "" {
			continue
		}
		if _, err := c.Spaces.Get(id); err != nil {
			return 0, fmt.Errorf("%w: dataspace %s: %v", ErrDenied, id, err)
		}
		if !job.allowed(id) {
			return 0, fmt.Errorf("%w: job %d may not access dataspace %s", ErrDenied, jid, id)
		}
	}
	return jid, nil
}

// AuthorizeAdmin validates an administrative request touching the given
// dataspaces: they must merely exist. The transport layer has already
// verified the caller reached the control socket.
func (c *Controller) AuthorizeAdmin(dataspaceIDs ...string) error {
	for _, id := range dataspaceIDs {
		if id == "" {
			continue
		}
		if _, err := c.Spaces.Get(id); err != nil {
			return err
		}
	}
	return nil
}
