// Package dataspace implements NORNS dataspaces — the named abstraction
// that hides storage-tier details behind an ID like "lustre://" or
// "nvme0://" — and the job & dataspace controller the urd daemon uses to
// validate that a calling process may touch the dataspaces a task names.
package dataspace

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ngioproject/norns-go/internal/storage"
)

// BackendKind classifies a dataspace's storage tier.
type BackendKind uint8

// Backend kinds, covering the tiers in the paper's architecture figure.
const (
	PosixDir    BackendKind = iota + 1 // node-local directory (SSD/NVMe mount)
	NVM                                // node-local NVM (DCPMM-style, DAX mount)
	ParallelFS                         // shared parallel file system (Lustre/GPFS)
	BurstBuffer                        // shared burst-buffer appliance
	MemoryTier                         // RAM-backed scratch
)

// String returns the lowercase backend name.
func (k BackendKind) String() string {
	switch k {
	case PosixDir:
		return "posix-dir"
	case NVM:
		return "nvm"
	case ParallelFS:
		return "parallel-fs"
	case BurstBuffer:
		return "burst-buffer"
	case MemoryTier:
		return "memory"
	default:
		return fmt.Sprintf("backend(%d)", uint8(k))
	}
}

// Shared reports whether the tier is shared across nodes (so the
// scheduler must treat its bandwidth as a cluster-wide resource).
func (k BackendKind) Shared() bool {
	return k == ParallelFS || k == BurstBuffer
}

// Backend couples a tier kind with the FS that stores its data and an
// optional capacity limit in bytes.
type Backend struct {
	Kind     BackendKind
	Mount    string // mount point or descriptive location
	FS       storage.FS
	Capacity int64 // 0 = unlimited
}

// Dataspace is one registered data namespace.
type Dataspace struct {
	ID      string // e.g. "nvme0://"
	Backend Backend
	// Track requests an emptiness check when the owning node is released
	// (Section IV-A: Slurm can ask NORNS to "track" dataspaces).
	Track bool
}

// Usage returns the bytes currently stored in the dataspace.
func (d *Dataspace) Usage() (int64, error) { return d.Backend.FS.Usage() }

// Empty reports whether the dataspace holds no files.
func (d *Dataspace) Empty() (bool, error) {
	files, err := d.Backend.FS.List("")
	if err != nil {
		return false, err
	}
	return len(files) == 0, nil
}

// Registry errors.
var (
	ErrExists     = errors.New("dataspace: already registered")
	ErrNotFound   = errors.New("dataspace: not registered")
	ErrBadID      = errors.New("dataspace: malformed ID")
	ErrNilFS      = errors.New("dataspace: backend FS is nil")
	ErrNotTracked = errors.New("dataspace: not tracked")
)

// ValidateID checks that an ID has the "name://" shape the paper uses.
func ValidateID(id string) error {
	if !strings.HasSuffix(id, "://") || len(id) <= len("://") {
		return fmt.Errorf("%w: %q (want e.g. \"nvme0://\")", ErrBadID, id)
	}
	name := strings.TrimSuffix(id, "://")
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
			return fmt.Errorf("%w: %q contains %q", ErrBadID, id, r)
		}
	}
	return nil
}

// Registry is the set of dataspaces registered on one node. It is safe
// for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	spaces map[string]*Dataspace
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{spaces: make(map[string]*Dataspace)}
}

// Register adds a dataspace (nornsctl_register_dataspace).
func (r *Registry) Register(id string, b Backend) (*Dataspace, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	if b.FS == nil {
		return nil, ErrNilFS
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.spaces[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	ds := &Dataspace{ID: id, Backend: b}
	r.spaces[id] = ds
	return ds, nil
}

// Update replaces a dataspace's backend (nornsctl_update_dataspace).
func (r *Registry) Update(id string, b Backend) error {
	if b.FS == nil {
		return ErrNilFS
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.spaces[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	ds.Backend = b
	return nil
}

// Unregister removes a dataspace (nornsctl_unregister_dataspace).
func (r *Registry) Unregister(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.spaces[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(r.spaces, id)
	return nil
}

// Get returns the dataspace with the given ID.
func (r *Registry) Get(id string) (*Dataspace, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ds, ok := r.spaces[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return ds, nil
}

// SetTrack marks or clears dataspace tracking.
func (r *Registry) SetTrack(id string, track bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ds, ok := r.spaces[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	ds.Track = track
	return nil
}

// List returns the registered dataspace IDs in sorted order.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.spaces))
	for id := range r.spaces {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// NonEmptyTracked returns the IDs of tracked dataspaces that still hold
// data — the check Slurm performs before releasing a node.
func (r *Registry) NonEmptyTracked() ([]string, error) {
	r.mu.RLock()
	tracked := make([]*Dataspace, 0, len(r.spaces))
	for _, ds := range r.spaces {
		if ds.Track {
			tracked = append(tracked, ds)
		}
	}
	r.mu.RUnlock()
	var out []string
	for _, ds := range tracked {
		empty, err := ds.Empty()
		if err != nil {
			return nil, err
		}
		if !empty {
			out = append(out, ds.ID)
		}
	}
	sort.Strings(out)
	return out, nil
}
