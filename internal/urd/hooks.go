package urd

import (
	"github.com/ngioproject/norns-go/internal/storage"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transfer"
)

// Hooks are the daemon's fault-injection points, used by the scenario
// lab (internal/lab) and by tests to place faults at exact moments of
// the transfer pipeline without patching the pipeline itself. The zero
// value installs nothing: every hook site first checks for nil, so an
// unset Hooks struct leaves the daemon byte-for-byte on its production
// paths (hooks_test.go pins that down).
//
// Hooks are wired once in New and never mutated afterwards, so
// implementations may be stateful but must be safe for concurrent
// calls — transfer workers invoke them in parallel.
type Hooks struct {
	// Remote, when non-nil, replaces the executor's network manager:
	// remote-path plugins route SendFile/OpenFile/StatFile through it
	// instead of a live fabric. The lab installs a capped-resource
	// shim here to simulate peers and partitions without sockets. It
	// takes precedence over a configured Fabric.
	Remote transfer.Remote
	// AfterSegment, when non-nil, runs after each completed segment —
	// after the journal has recorded the segment's checkpoint, so a
	// hook that freezes the journal at the Kth call produces a WAL
	// holding exactly K segment bits (with TransferStreams=1). This is
	// the "daemon killed mid-transfer" fault point.
	AfterSegment func(t *task.Task)
	// WrapFS, when non-nil, wraps every dataspace backend the daemon
	// builds from a spec — at registration and again at journal
	// replay — so slow/stalling-disk faults and byte-level write
	// accounting survive a crash/restart cycle. id is the dataspace ID;
	// the returned FS must not be nil.
	WrapFS func(id string, fs storage.FS) storage.FS
	// FabricFault, when non-nil, is consulted before every outbound
	// fabric RPC and bulk pull (mercury's fault hook): a non-nil return
	// fails that call as a transport error without touching the wire,
	// which the endpoint's circuit breaker counts like a real fault. The
	// lab scripts "endpoint X fails its next K calls" with it. Requires
	// a configured Fabric; ignored when Hooks.Remote replaces the
	// network manager.
	FabricFault func(addr, name string) error
}

// wrapFS applies the WrapFS hook to a freshly built backend.
func (d *Daemon) wrapFS(id string, fs storage.FS) storage.FS {
	if d.cfg.Hooks.WrapFS == nil {
		return fs
	}
	return d.cfg.Hooks.WrapFS(id, fs)
}

// installHooks wires the configured hooks into the transfer env. Called
// once from New, after the journal's own OnSegment checkpoint hook is
// in place, so AfterSegment observes a WAL that already holds the
// segment it is told about.
func (d *Daemon) installHooks(env *transfer.Env) {
	if r := d.cfg.Hooks.Remote; r != nil {
		env.Net = r
	}
	if h := d.cfg.Hooks.AfterSegment; h != nil {
		base := env.OnSegment
		env.OnSegment = func(t *task.Task) {
			if base != nil {
				base(t)
			}
			h(t)
		}
	}
}
