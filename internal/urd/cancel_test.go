package urd

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/queue"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transfer"
)

// policyFactories enumerates the built-in arbitration policies the
// cancellation races run under.
var policyFactories = map[string]func() queue.Policy{
	"fcfs":       func() queue.Policy { return queue.NewFCFS() },
	"sjf":        func() queue.Policy { return queue.NewSJF(nil) },
	"priority":   func() queue.Policy { return queue.NewPriority() },
	"fair-share": func() queue.Policy { return queue.NewFairShare() },
}

// cancelNode is a daemon with a gated mem->local plugin: every task
// parks in the plugin until the gate closes (or its context fires), so
// tests can pin tasks in the Running state deterministically.
type cancelNode struct {
	*testNode
	gate    chan struct{}
	started chan uint64
}

func startCancelNode(t *testing.T, pf func() queue.Policy, cfgEdit func(*Config)) *cancelNode {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		NodeName:      "node1",
		UserSocket:    dir + "/user.sock",
		ControlSocket: dir + "/ctl.sock",
		Workers:       1,
		PolicyFactory: pf,
	}
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	n := &cancelNode{
		testNode: &testNode{d: d},
		gate:     make(chan struct{}),
		started:  make(chan uint64, 64),
	}
	d.Executor().Registry.Register(task.Copy, task.Memory, task.LocalPath,
		func(ctx context.Context, env *transfer.Env, tk *task.Task, progress func(int64)) (int64, error) {
			n.started <- tk.ID
			select {
			case <-n.gate:
				nb := int64(len(tk.Input.Data))
				progress(nb)
				return nb, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		})
	user, err := norns.Dial(cfg.UserSocket)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { user.Close() })
	ctl, err := nornsctl.Dial(cfg.ControlSocket)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	n.user, n.ctl = user, ctl
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	setupJob(t, n.testNode, 1, 4242, "tmp0://")
	user.SetPID(4242)
	return n
}

func (n *cancelNode) submit(t *testing.T) *norns.IOTask {
	t.Helper()
	tk := norns.NewIOTask(norns.Copy, norns.MemoryRegion([]byte("cancel payload")), norns.PosixPath("tmp0://", "out"))
	if err := n.user.Submit(&tk); err != nil {
		t.Fatal(err)
	}
	return &tk
}

func (n *cancelNode) awaitRunning(t *testing.T, id uint64) {
	t.Helper()
	select {
	case got := <-n.started:
		if got != id {
			t.Fatalf("worker started task %d, want %d", got, id)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("task %d never started", id)
	}
}

func pollStatus(t *testing.T, n *cancelNode, tk *norns.IOTask, want task.Status) norns.Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := n.user.Error(tk)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("task %d stuck at %v, want %v", tk.ID, st.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelPendingFreesQueueSlot: a task submitted through the user
// API and cancelled through the control API while still queued must
// vanish from its shard's queue immediately — under every policy.
func TestCancelPendingFreesQueueSlot(t *testing.T) {
	for name, pf := range policyFactories {
		t.Run(name, func(t *testing.T) {
			n := startCancelNode(t, pf, nil)
			running := n.submit(t) // occupies the shard's only worker
			n.awaitRunning(t, running.ID)
			pending := n.submit(t)
			if got := n.d.PendingTasks(); got != 1 {
				t.Fatalf("PendingTasks = %d, want 1", got)
			}

			st, err := n.ctl.Cancel(pending.ID)
			if err != nil {
				t.Fatal(err)
			}
			if st.Status != task.Cancelled {
				t.Fatalf("cancel stats = %+v", st)
			}
			if got := n.d.PendingTasks(); got != 0 {
				t.Fatalf("queue slot not freed: PendingTasks = %d", got)
			}
			pollStatus(t, n, pending, task.Cancelled)

			// Double-cancel of the now-terminal task rejects.
			if _, err := n.ctl.Cancel(pending.ID); err == nil || !strings.Contains(err.Error(), "EBADREQUEST") {
				t.Fatalf("double cancel: %v", err)
			}

			// The freed slot is usable: a later task still executes.
			third := n.submit(t)
			close(n.gate)
			n.awaitRunning(t, third.ID)
			pollStatus(t, n, running, task.Finished)
			pollStatus(t, n, third, task.Finished)
		})
	}
}

// TestCancelRunningInterruptsCooperatively: cancelling a task that is
// mid-transfer interrupts it at the next cancellation point and
// preserves the Cancelled terminal state, observable via polling.
func TestCancelRunningInterruptsCooperatively(t *testing.T) {
	for name, pf := range policyFactories {
		t.Run(name, func(t *testing.T) {
			n := startCancelNode(t, pf, nil)
			tk := n.submit(t)
			n.awaitRunning(t, tk.ID)

			st, err := n.ctl.Cancel(tk.ID)
			if err != nil {
				t.Fatal(err)
			}
			if st.Status != task.Cancelling && st.Status != task.Cancelled {
				t.Fatalf("cancel snapshot = %+v", st)
			}
			final := pollStatus(t, n, tk, task.Cancelled)
			if final.Err != "" {
				t.Fatalf("cancelled task carries error: %+v", final)
			}

			// Cancel of the terminal task now rejects; Wait returns too.
			if _, err := n.ctl.Cancel(tk.ID); err == nil || !strings.Contains(err.Error(), "EBADREQUEST") {
				t.Fatalf("cancel after terminal: %v", err)
			}
			if err := n.user.Wait(tk, 5*time.Second); err != nil {
				t.Fatal(err)
			}

			m, err := n.ctl.TransferStats()
			if err != nil {
				t.Fatal(err)
			}
			if m.Cancelled != 1 {
				t.Fatalf("TransferStats.Cancelled = %d", m.Cancelled)
			}
		})
	}
}

// TestCancelUnknownTaskRejected covers the remaining control-plane
// corner: cancelling a task the daemon never saw.
func TestCancelUnknownTaskRejected(t *testing.T) {
	n := startCancelNode(t, nil, nil)
	if _, err := n.ctl.Cancel(4242); err == nil || !strings.Contains(err.Error(), "ENOTFOUND") {
		t.Fatalf("cancel unknown: %v", err)
	}
	close(n.gate)
}

// TestCancelRequiresOwnership: user-socket cancellation is authorized —
// a process from another job (or no job) cannot abort someone else's
// task, while the owning process and the control socket can.
func TestCancelRequiresOwnership(t *testing.T) {
	n := startCancelNode(t, nil, nil)
	tk := n.submit(t)
	n.awaitRunning(t, tk.ID)

	intruder, err := norns.Dial(n.d.cfg.UserSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer intruder.Close()
	// Unregistered process: denied.
	intruder.SetPID(6666)
	if _, err := intruder.Cancel(tk); err == nil || !strings.Contains(err.Error(), "EPERMISSION") {
		t.Fatalf("cancel by unregistered process: %v", err)
	}
	// Process registered to a different job: denied.
	setupJob(t, n.testNode, 2, 7777, "tmp0://")
	intruder.SetPID(7777)
	if _, err := intruder.Cancel(tk); err == nil || !strings.Contains(err.Error(), "EPERMISSION") {
		t.Fatalf("cancel by foreign job: %v", err)
	}
	if got := pollStatusOnce(t, n, tk); got != task.Running && got != task.Cancelling {
		t.Fatalf("task state changed by denied cancels: %v", got)
	}
	// The owner cancels fine.
	if _, err := n.user.Cancel(tk); err != nil {
		t.Fatal(err)
	}
	pollStatus(t, n, tk, task.Cancelled)
	close(n.gate)
}

func pollStatusOnce(t *testing.T, n *cancelNode, tk *norns.IOTask) task.Status {
	t.Helper()
	st, err := n.user.Error(tk)
	if err != nil {
		t.Fatal(err)
	}
	return st.Status
}

// TestShardsIsolateDataspacePairs: a transfer stuck on one dataspace
// pair must not head-of-line-block a transfer on another pair, because
// each pair owns its own queue and workers.
func TestShardsIsolateDataspacePairs(t *testing.T) {
	n := startCancelNode(t, nil, nil)
	if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "fast0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}

	// Pin the mem->tmp0:// shard's only worker.
	stuck := n.submit(t)
	n.awaitRunning(t, stuck.ID)

	// An admin task on the mem->fast0:// route goes through the same
	// gated plugin and parks too — what proves shard isolation is that
	// it REACHES its own worker while tmp0://'s worker is stuck:
	id, err := n.ctl.Submit(task.Copy, task.MemoryRegion([]byte("seed")), task.PosixPath("fast0://", "seed"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-n.started:
		if got != id {
			t.Fatalf("fast0 shard started task %d, want %d", got, id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast0:// transfer head-of-line-blocked behind tmp0://")
	}

	shards := n.d.Shards()
	if len(shards) != 2 {
		t.Fatalf("Shards = %v, want 2 lanes", shards)
	}
	close(n.gate)
	pollStatus(t, n, stuck, task.Finished)
	if st, err := n.ctl.Wait(id, 5*time.Second); err != nil || st.Status != task.Finished {
		t.Fatalf("fast0 task: %+v, %v", st, err)
	}
}

// TestBackpressureLimits: the global in-flight cap and the per-shard
// queue bound both surface NORNS_EAGAIN instead of queueing unboundedly.
func TestBackpressureLimits(t *testing.T) {
	t.Run("global", func(t *testing.T) {
		n := startCancelNode(t, nil, func(cfg *Config) { cfg.MaxInFlight = 2 })
		running := n.submit(t)
		n.awaitRunning(t, running.ID)
		pending := n.submit(t)
		tk := norns.NewIOTask(norns.Copy, norns.MemoryRegion([]byte("x")), norns.PosixPath("tmp0://", "over"))
		if err := n.user.Submit(&tk); err == nil || !strings.Contains(err.Error(), "EAGAIN") {
			t.Fatalf("submit over MaxInFlight: %v", err)
		}
		// Cancelling the queued task frees an in-flight slot.
		if _, err := n.ctl.Cancel(pending.ID); err != nil {
			t.Fatal(err)
		}
		if err := n.user.Submit(&tk); err != nil {
			t.Fatalf("submit after cancel freed a slot: %v", err)
		}
		close(n.gate)
		pollStatus(t, n, &tk, task.Finished)
	})
	t.Run("shard-queue", func(t *testing.T) {
		n := startCancelNode(t, nil, func(cfg *Config) { cfg.MaxShardQueue = 1 })
		running := n.submit(t)
		n.awaitRunning(t, running.ID)
		n.submit(t) // fills the shard's single queue slot
		tk := norns.NewIOTask(norns.Copy, norns.MemoryRegion([]byte("x")), norns.PosixPath("tmp0://", "over"))
		if err := n.user.Submit(&tk); err == nil || !strings.Contains(err.Error(), "EAGAIN") {
			t.Fatalf("submit over MaxShardQueue: %v", err)
		}
		close(n.gate)
	})
}

// TestDeadlineThroughUserAPI: a submit-time deadline bounds execution
// end to end — the parked transfer fails once it expires.
func TestDeadlineThroughUserAPI(t *testing.T) {
	n := startCancelNode(t, nil, nil)
	tk := norns.NewIOTask(norns.Copy, norns.MemoryRegion([]byte("late")), norns.PosixPath("tmp0://", "late"))
	tk.Deadline = 50 * time.Millisecond
	if err := n.user.Submit(&tk); err != nil {
		t.Fatal(err)
	}
	st := pollStatus(t, n, &tk, task.Failed)
	if !strings.Contains(st.Err, "deadline") {
		t.Fatalf("stats = %+v", st)
	}
	close(n.gate)
}

// TestDeadlineExpiresWhilePending: a deadline that passes while the
// task waits behind a busy shard is enforced lazily at the status/wait
// surface — the task fails and frees its queue slot without ever
// reaching a worker.
func TestDeadlineExpiresWhilePending(t *testing.T) {
	n := startCancelNode(t, nil, nil)
	blocker := n.submit(t) // pins the shard's only worker
	n.awaitRunning(t, blocker.ID)

	tk := norns.NewIOTask(norns.Copy, norns.MemoryRegion([]byte("stale")), norns.PosixPath("tmp0://", "stale"))
	tk.Deadline = 30 * time.Millisecond
	if err := n.user.Submit(&tk); err != nil {
		t.Fatal(err)
	}
	if got := n.d.PendingTasks(); got != 1 {
		t.Fatalf("PendingTasks = %d, want 1", got)
	}
	// Wait must not stay blocked past the deadline even though the
	// worker never picks the task up.
	if err := n.user.Wait(&tk, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := n.user.Error(&tk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != task.Failed || !strings.Contains(st.Err, "deadline") {
		t.Fatalf("stats = %+v", st)
	}
	if got := n.d.PendingTasks(); got != 0 {
		t.Fatalf("expired task still queued: PendingTasks = %d", got)
	}
	close(n.gate)
	pollStatus(t, n, blocker, task.Finished)
}
