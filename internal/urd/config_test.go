package urd

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/queue"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
)

func TestFabricWithoutResolverRejected(t *testing.T) {
	if _, err := New(Config{NodeName: "n", Fabric: "ofi+tcp"}); err == nil {
		t.Fatal("fabric without resolver accepted")
	}
}

func TestUnknownFabricPluginRejected(t *testing.T) {
	if _, err := New(Config{NodeName: "n", Fabric: "verbs", Resolver: NewStaticResolver()}); err == nil {
		t.Fatal("unknown fabric plugin accepted")
	}
}

func TestPolicyNameSurfacesInStatus(t *testing.T) {
	for _, tc := range []struct {
		policy queue.Policy
		want   string
	}{
		{nil, "policy=fcfs"},
		{queue.NewSJF(nil), "policy=sjf"},
		{queue.NewPriority(), "policy=priority"},
		{queue.NewFairShare(), "policy=fair-share"},
	} {
		dir := t.TempDir()
		d, err := New(Config{
			NodeName:      "p",
			ControlSocket: filepath.Join(dir, "c.sock"),
			Workers:       1,
			Policy:        tc.policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := nornsctl.Dial(filepath.Join(dir, "c.sock"))
		if err != nil {
			d.Close()
			t.Fatal(err)
		}
		status, err := ctl.Status()
		ctl.Close()
		d.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(status, tc.want) {
			t.Errorf("status %q missing %q", status, tc.want)
		}
	}
}

// customPolicy is a non-built-in policy used to exercise the
// PolicyFactory requirement.
type customPolicy struct{ queue.Policy }

func (customPolicy) Name() string { return "my-policy" }

// TestCustomPolicyWithoutFactoryRejected: policies are stateful and
// per-shard, so a custom instance without a factory cannot serve a
// sharded daemon — construction must fail loudly instead of silently
// degrading later shards to FCFS.
func TestCustomPolicyWithoutFactoryRejected(t *testing.T) {
	_, err := New(Config{NodeName: "n", Policy: customPolicy{queue.NewFCFS()}})
	if err == nil {
		t.Fatal("custom policy without PolicyFactory accepted")
	}
	if !strings.Contains(err.Error(), "PolicyFactory") {
		t.Fatalf("error %q does not point at PolicyFactory", err)
	}

	// The same policy with a factory is fine.
	d, err := New(Config{
		NodeName:      "n",
		PolicyFactory: func() queue.Policy { return customPolicy{queue.NewFCFS()} },
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
}

// TestSJFPolicyEndToEnd verifies the daemon honors a size-aware policy:
// with a single worker and the queue held back by one large task, small
// tasks submitted later complete before a second large one.
func TestSJFPolicyEndToEnd(t *testing.T) {
	dir := t.TempDir()
	d, err := New(Config{
		NodeName:      "sjf",
		ControlSocket: filepath.Join(dir, "c.sock"),
		Workers:       1,
		Policy:        queue.NewSJF(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctl, err := nornsctl.Dial(filepath.Join(dir, "c.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "m://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	// Head task occupies the worker while we enqueue the contest.
	head, err := ctl.Submit(task.Copy, task.MemoryRegion(make([]byte, 8<<20)), task.PosixPath("m://", "head"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bigID, err := ctl.Submit(task.Copy, task.MemoryRegion(make([]byte, 16<<20)), task.PosixPath("m://", "big"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var smallIDs []uint64
	for i := 0; i < 4; i++ {
		id, err := ctl.Submit(task.Copy, task.MemoryRegion(make([]byte, 4<<10)), task.PosixPath("m://", fmt.Sprintf("s%d", i)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		smallIDs = append(smallIDs, id)
	}
	// All smalls must be done; their waits return quickly under SJF.
	for _, id := range smallIDs {
		if st, err := ctl.Wait(id, 30*time.Second); err != nil || st.Status != task.Finished {
			t.Fatalf("small task %d: %+v, %v", id, st, err)
		}
	}
	if st, err := ctl.Wait(bigID, 30*time.Second); err != nil || st.Status != task.Finished {
		t.Fatalf("big task: %+v, %v", st, err)
	}
	if st, err := ctl.Wait(head, 30*time.Second); err != nil || st.Status != task.Finished {
		t.Fatalf("head task: %+v, %v", st, err)
	}
}

// TestDaemonCloseIdempotent ensures double Close is safe and waiters
// drain.
func TestDaemonCloseIdempotent(t *testing.T) {
	d, err := New(Config{NodeName: "x", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Close()
		}()
	}
	wg.Wait()
	d.Close()
}

// TestShutdownOpReleasesDone: a shutdown over the control API must run
// Close to completion and release Done, so cmd/urd can exit instead of
// lingering on its signal wait.
func TestShutdownOpReleasesDone(t *testing.T) {
	d, err := New(Config{NodeName: "sd", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp := d.Handle(transport.PeerInfo{Control: true}, &proto.Request{Op: proto.OpShutdown})
	if resp.Status != proto.Success {
		t.Fatalf("shutdown: %+v", resp)
	}
	select {
	case <-d.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("Done not released after OpShutdown")
	}
}

// TestPendingTasksGauge exercises the queue-depth reporting.
func TestPendingTasksGauge(t *testing.T) {
	d, err := New(Config{NodeName: "g", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.PendingTasks(); got != 0 {
		t.Fatalf("fresh daemon pending = %d", got)
	}
}
