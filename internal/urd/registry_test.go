package urd

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
)

// TestRegistryBasics covers the striped table's single-threaded
// contract: Put/Get/Delete round trips, batch insertion landing every
// task, and the atomic length.
func TestRegistryBasics(t *testing.T) {
	r := newTaskRegistry()
	if _, ok := r.Get(1); ok {
		t.Fatal("empty registry resolved a task")
	}
	batch := make([]*task.Task, 200)
	for i := range batch {
		batch[i] = task.New(uint64(i+1), task.NoOp, task.Resource{}, task.Resource{})
	}
	r.PutBatch(batch)
	if got := r.Len(); got != 200 {
		t.Fatalf("Len = %d after PutBatch(200)", got)
	}
	for _, want := range batch {
		got, ok := r.Get(want.ID)
		if !ok || got != want {
			t.Fatalf("Get(%d) = %v, %v", want.ID, got, ok)
		}
	}
	r.Delete(7)
	if _, ok := r.Get(7); ok {
		t.Fatal("deleted task still resolves")
	}
	if got := r.Len(); got != 199 {
		t.Fatalf("Len = %d after delete", got)
	}
	r.Delete(7) // idempotent: the count must not double-decrement
	if got := r.Len(); got != 199 {
		t.Fatalf("Len = %d after double delete", got)
	}
	seen := 0
	r.Range(func(*task.Task) { seen++ })
	if seen != 199 {
		t.Fatalf("Range visited %d tasks, want 199", seen)
	}
}

// TestRegistryStress hammers the striped registry through the real
// daemon surface under the race detector: concurrent batch submitters,
// status pollers, cancellers, and aggregate-stats readers, all against
// one in-process daemon. This is the regression net for the lock-
// striping work — any missing synchronization between the stripes, the
// atomic counters, and the shard map shows up here under -race.
func TestRegistryStress(t *testing.T) {
	d, err := New(Config{NodeName: "stress", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	peer := transport.PeerInfo{Control: true}

	const (
		submitters = 4
		batches    = 8
		batchSize  = 32
	)
	var ids [submitters][]uint64
	var wg sync.WaitGroup
	var stop atomic.Bool

	// Status pollers and stats readers run for the whole test,
	// contending every lookup against the submit/dispatch path.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := uint64(1); !stop.Load(); n++ {
				req := &proto.Request{Op: proto.OpTaskStatus, TaskID: n%512 + 1}
				_ = d.Handle(peer, req)
				_ = d.Handle(peer, &proto.Request{Op: proto.OpTransferStats})
				_ = d.Handle(peer, &proto.Request{Op: proto.OpStatus})
			}
		}()
	}

	var submitWG sync.WaitGroup
	for s := 0; s < submitters; s++ {
		submitWG.Add(1)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer submitWG.Done()
			for b := 0; b < batches; b++ {
				specs := make([]proto.TaskSpec, batchSize)
				for i := range specs {
					specs[i] = proto.TaskSpec{Kind: uint32(task.NoOp)}
				}
				results := d.SubmitBatch(specs, 0, true)
				for i, r := range results {
					if proto.StatusCode(r.Status) != proto.Success {
						t.Errorf("submitter %d batch %d entry %d: %s", s, b, i, r.Error)
						return
					}
					ids[s] = append(ids[s], r.TaskID)
				}
				// Cancel a few of our own recent submissions to race the
				// dequeue/terminal accounting against the workers.
				for i := 0; i < 4 && i < len(ids[s]); i++ {
					_, _ = d.Cancel(ids[s][len(ids[s])-1-i])
				}
			}
		}(s)
	}
	submitWG.Wait()
	stop.Store(true)
	wg.Wait()

	// Every accepted ID resolves and every accepted task is accounted:
	// submitted = distinct IDs, and once the queues drain the in-flight
	// gauge returns to zero.
	total := 0
	unique := make(map[uint64]struct{})
	for s := range ids {
		total += len(ids[s])
		for _, id := range ids[s] {
			unique[id] = struct{}{}
			if _, err := d.Task(id); err != nil {
				t.Fatalf("accepted task %d does not resolve: %v", id, err)
			}
		}
	}
	if total != submitters*batches*batchSize || len(unique) != total {
		t.Fatalf("accepted %d tasks, %d unique, want %d", total, len(unique), submitters*batches*batchSize)
	}
	for s := range ids {
		for _, id := range ids[s] {
			tk, err := d.Task(id)
			if err != nil {
				t.Fatal(err)
			}
			if !tk.Wait(0) {
				t.Fatalf("task %d never terminated", id)
			}
		}
	}
	if got := d.tasks.Len(); got != total {
		t.Fatalf("registry holds %d tasks, want %d", got, total)
	}
	if fl := d.inFlight.Load(); fl != 0 {
		t.Fatalf("inFlight = %d after drain, want 0", fl)
	}
	fin := d.doneFinished.Load()
	can := d.doneCancelled.Load()
	if fin+can+d.doneFailed.Load() != uint64(total) {
		t.Fatalf("terminal accounting %d+%d+%d != %d",
			fin, can, d.doneFailed.Load(), total)
	}
}

// TestRetainTasksEviction: beyond the configured retention, the oldest
// terminal tasks leave the in-memory table (and only the oldest — the
// newest keep answering).
func TestRetainTasksEviction(t *testing.T) {
	d, err := New(Config{NodeName: "retain", Workers: 2, RetainTasks: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	specs := make([]proto.TaskSpec, 48)
	for i := range specs {
		specs[i] = proto.TaskSpec{Kind: uint32(task.NoOp)}
	}
	results := d.SubmitBatch(specs, 0, true)
	ids := make([]uint64, 0, len(results))
	for i, r := range results {
		if proto.StatusCode(r.Status) != proto.Success {
			t.Fatalf("entry %d: %s", i, r.Error)
		}
		ids = append(ids, r.TaskID)
	}
	for _, id := range ids {
		tk, err := d.Task(id)
		if err != nil {
			continue // already evicted mid-drain: fine
		}
		tk.Wait(0)
	}
	// All 48 terminated; retention 16 means at most 16 remain.
	if got := d.tasks.Len(); got > 16 {
		t.Fatalf("registry holds %d terminal tasks, retention is 16", got)
	}
	evicted := 0
	for _, id := range ids {
		if _, err := d.Task(id); err != nil {
			evicted++
		}
	}
	if evicted != len(ids)-d.tasks.Len() {
		t.Fatalf("evicted %d of %d with %d retained", evicted, len(ids), d.tasks.Len())
	}
}
