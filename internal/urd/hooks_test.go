package urd

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/mercury"
	"github.com/ngioproject/norns-go/internal/storage"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transfer"
)

// TestHooksZeroValueIsNoop pins the contract the scenario lab depends
// on: a zero Hooks struct changes nothing. wrapFS must return the very
// backend it was handed and a daemon built without hooks must behave
// exactly like one from before the hooks existed.
func TestHooksZeroValueIsNoop(t *testing.T) {
	n := startNode(t, "node1", nil)
	mem := storage.NewMemFS()
	if got := n.d.wrapFS("x://", mem); got != mem {
		t.Fatalf("zero-value wrapFS replaced the backend: %T", got)
	}
	if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	id, err := n.ctl.Submit(task.Copy, task.MemoryRegion([]byte("plain")), task.PosixPath("tmp0://", "f"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := n.ctl.Wait(id, 5*time.Second); err != nil || st.Status != task.Finished {
		t.Fatalf("status=%v err=%v", st.Status, err)
	}
}

// TestAfterSegmentHook proves the hook fires once per completed segment
// and only after the daemon's own checkpoint ran: by the time the hook
// observes the task, the completed-segment counter already includes the
// segment that triggered it.
func TestAfterSegmentHook(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	var monotone atomic.Bool
	monotone.Store(true)
	cfg := Config{
		NodeName:      "node1",
		UserSocket:    filepath.Join(dir, "user.sock"),
		ControlSocket: filepath.Join(dir, "ctl.sock"),
		Workers:       1,
		SegmentSize:   1 << 10,
		Hooks: Hooks{
			AfterSegment: func(tk *task.Task) {
				done := int64(tk.Stats().SegmentsDone)
				if done < calls.Add(1) {
					monotone.Store(false)
				}
			},
		},
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctl, err := nornsctl.Dial(cfg.ControlSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("s"), 4<<10+100) // 5 segments at 1 KiB
	id, err := ctl.Submit(task.Copy, task.MemoryRegion(payload), task.PosixPath("tmp0://", "f"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := ctl.Wait(id, 5*time.Second); err != nil || st.Status != task.Finished {
		t.Fatalf("status=%v err=%v", st.Status, err)
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("AfterSegment calls = %d, want 5", got)
	}
	if !monotone.Load() {
		t.Fatal("hook observed a task whose segment counter lagged the call count: hook ran before the checkpoint")
	}
}

// countingFS wraps an FS and counts files created through it, proving
// the daemon routed a registered backend through Hooks.WrapFS.
type countingFS struct {
	storage.FS
	creates atomic.Int64
}

func (c *countingFS) Create(name string) (io.WriteCloser, error) {
	c.creates.Add(1)
	return c.FS.Create(name)
}

// TestWrapFSHook proves every backend built from a dataspace spec is
// passed through the hook, and that the daemon then uses the wrapper.
func TestWrapFSHook(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	wrapped := map[string]*countingFS{}
	cfg := Config{
		NodeName:      "node1",
		UserSocket:    filepath.Join(dir, "user.sock"),
		ControlSocket: filepath.Join(dir, "ctl.sock"),
		Workers:       1,
		Hooks: Hooks{
			WrapFS: func(id string, fs storage.FS) storage.FS {
				c := &countingFS{FS: fs}
				mu.Lock()
				wrapped[id] = c
				mu.Unlock()
				return c
			},
		},
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctl, err := nornsctl.Dial(cfg.ControlSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	id, err := ctl.Submit(task.Copy, task.MemoryRegion([]byte("through the wrapper")), task.PosixPath("tmp0://", "f"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := ctl.Wait(id, 5*time.Second); err != nil || st.Status != task.Finished {
		t.Fatalf("status=%v err=%v", st.Status, err)
	}
	mu.Lock()
	c := wrapped["tmp0://"]
	mu.Unlock()
	if c == nil {
		t.Fatal("WrapFS never saw the registered dataspace")
	}
	if c.creates.Load() == 0 {
		t.Fatal("daemon wrote around the WrapFS wrapper")
	}
}

// hookRemote is a transfer.Remote that records sends in memory.
type hookRemote struct {
	mu    sync.Mutex
	sends []string
}

func (r *hookRemote) SendFile(node, ds, path string, src mercury.BulkProvider) (int64, error) {
	buf := make([]byte, src.Size())
	if _, err := src.ReadAt(buf, 0); err != nil && err != io.EOF {
		return 0, err
	}
	r.mu.Lock()
	r.sends = append(r.sends, fmt.Sprintf("%s %s%s %d", node, ds, path, len(buf)))
	r.mu.Unlock()
	return int64(len(buf)), nil
}

func (r *hookRemote) OpenFile(node, ds, path string) (transfer.RemoteFile, error) {
	return nil, fmt.Errorf("hookRemote: no files")
}

func (r *hookRemote) StatFile(node, ds, path string) (int64, error) {
	return 0, fmt.Errorf("hookRemote: no files")
}

// TestRemoteHookOverride proves Hooks.Remote substitutes for the fabric
// network manager: a daemon with no fabric configured still executes a
// remote copy, through the injected Remote.
func TestRemoteHookOverride(t *testing.T) {
	dir := t.TempDir()
	fake := &hookRemote{}
	cfg := Config{
		NodeName:      "node1",
		UserSocket:    filepath.Join(dir, "user.sock"),
		ControlSocket: filepath.Join(dir, "ctl.sock"),
		Workers:       1,
		Hooks:         Hooks{Remote: fake},
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctl, err := nornsctl.Dial(cfg.ControlSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	id, err := ctl.Submit(task.Copy,
		task.MemoryRegion([]byte("over the shim")),
		task.RemotePosixPath("node2", "tmp0://", "dst"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ctl.Wait(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != task.Finished {
		t.Fatalf("status = %v (%s)", st.Status, st.Err)
	}
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if len(fake.sends) != 1 || fake.sends[0] != "node2 tmp0://dst 13" {
		t.Fatalf("sends = %q", fake.sends)
	}
}
