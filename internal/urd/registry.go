package urd

import (
	"sync"
	"sync/atomic"

	"github.com/ngioproject/norns-go/internal/task"
)

// taskStripes is the registry's stripe count. Power of two so routing
// is a mask; 64 stripes keep the collision probability negligible at
// the daemon's worker/connection counts (dozens of concurrent
// submitters hash across 64 locks) while costing only ~64 map headers
// of fixed overhead. Task IDs are sequential, so consecutive
// submissions land on distinct stripes by construction.
const taskStripes = 64

// taskStripe is one lock shard of the registry. RWMutex because the
// read side (OpTaskStatus, event-hub snapshots, cancel lookups)
// dominates and must never serialize behind unrelated submissions.
type taskStripe struct {
	sync.RWMutex
	m map[uint64]*task.Task
}

// taskRegistry is the daemon's lock-striped task table. The previous
// design guarded the task map, the ID counter, and the in-flight gauge
// with the daemon's single mutex, so every status poll contended with
// every submit and every worker completion; here each task ID routes to
// one of taskStripes independent locks and the scalar state is atomic,
// so lookups and inserts on different stripes never touch the same
// cache line, and size queries touch no lock at all.
type taskRegistry struct {
	stripes [taskStripes]taskStripe
	count   atomic.Int64
}

func newTaskRegistry() *taskRegistry {
	r := &taskRegistry{}
	for i := range r.stripes {
		r.stripes[i].m = make(map[uint64]*task.Task)
	}
	return r
}

func (r *taskRegistry) stripe(id uint64) *taskStripe {
	return &r.stripes[id&(taskStripes-1)]
}

// Get returns the task registered under id.
func (r *taskRegistry) Get(id uint64) (*task.Task, bool) {
	s := r.stripe(id)
	s.RLock()
	t, ok := s.m[id]
	s.RUnlock()
	return t, ok
}

// Put registers one task.
func (r *taskRegistry) Put(t *task.Task) {
	s := r.stripe(t.ID)
	s.Lock()
	s.m[t.ID] = t
	s.Unlock()
	r.count.Add(1)
}

// PutBatch registers many tasks, acquiring each stripe exactly once: a
// pass per stripe inserts that stripe's share of the batch under one
// lock hold. A 1000-task batch therefore costs at most taskStripes lock
// acquisitions instead of 1000. The stripes×batch scan is branch-
// predictable arithmetic and allocates nothing, which beats bucketing
// the batch into per-stripe slices first.
func (r *taskRegistry) PutBatch(tasks []*task.Task) {
	if len(tasks) == 0 {
		return
	}
	for i := uint64(0); i < taskStripes; i++ {
		locked := false
		for _, t := range tasks {
			if t.ID&(taskStripes-1) != i {
				continue
			}
			if !locked {
				r.stripes[i].Lock()
				locked = true
			}
			r.stripes[i].m[t.ID] = t
		}
		if locked {
			r.stripes[i].Unlock()
		}
	}
	r.count.Add(int64(len(tasks)))
}

// Delete removes a task (a submission whose enqueue failed).
func (r *taskRegistry) Delete(id uint64) {
	s := r.stripe(id)
	s.Lock()
	_, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.Unlock()
	if ok {
		r.count.Add(-1)
	}
}

// Len is the registered-task count — one atomic load, no lock, so
// status snapshots never contend with the submit path.
func (r *taskRegistry) Len() int {
	return int(r.count.Load())
}

// Range calls fn for every registered task, one stripe at a time under
// that stripe's read lock; fn must not call back into the registry.
// Iteration is not a consistent snapshot across stripes — callers
// (diagnostics, aggregate metrics) tolerate tasks registered or removed
// mid-walk.
func (r *taskRegistry) Range(fn func(*task.Task)) {
	for i := range r.stripes {
		s := &r.stripes[i]
		s.RLock()
		for _, t := range s.m {
			fn(t)
		}
		s.RUnlock()
	}
}
