package urd

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
)

// collectingPush is a push sink whose delivery can be stalled, standing
// in for a subscriber connection with a full TCP window.
type collectingPush struct {
	mu      sync.Mutex
	events  []proto.Event
	gate    chan struct{} // nil = never blocks
	failing bool
}

func (p *collectingPush) push(resp *proto.Response) error {
	if p.gate != nil {
		<-p.gate
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failing {
		return errors.New("peer gone")
	}
	if resp.HasEvent {
		p.events = append(p.events, resp.Event)
	}
	return nil
}

func (p *collectingPush) snapshot() []proto.Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]proto.Event(nil), p.events...)
}

func noSnapshot(id uint64) (task.Stats, error) {
	return task.Stats{Status: task.Pending}, nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSlowSubscriberNeverBlocksAndGapFires is the hub's core contract:
// a subscriber whose connection is wedged costs publishers nothing,
// and once it drains it learns how much was coalesced away.
func TestSlowSubscriberNeverBlocksAndGapFires(t *testing.T) {
	h := NewEventHub(4, time.Millisecond)
	defer h.Close()
	p := &collectingPush{gate: make(chan struct{})}
	subID, err := h.Subscribe(&proto.SubscribeSpec{All: true}, noSnapshot, Pusher{Push: p.push}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if subID == 0 {
		t.Fatal("zero subscription ID")
	}

	// Publish far beyond the queue bound while the pump is stalled.
	// Every publish must return promptly — the worker-side guarantee.
	const n = 500
	start := time.Now()
	for i := uint64(1); i <= n; i++ {
		h.PublishState(i, task.Stats{Status: task.Pending})
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("publishing against a stalled subscriber took %v", d)
	}

	close(p.gate) // un-wedge the connection
	var evs []proto.Event
	waitFor(t, "gap event", func() bool {
		evs = p.snapshot()
		return len(evs) > 0 && proto.EventKind(evs[len(evs)-1].Kind) == proto.EvGap
	})
	gap := evs[len(evs)-1]
	delivered := uint64(len(evs) - 1)
	if delivered+gap.Dropped < n {
		t.Fatalf("delivered %d + dropped %d < published %d", delivered, gap.Dropped, n)
	}
	if gap.Dropped == 0 {
		t.Fatal("expected a non-zero drop count")
	}
	if gap.SubID != subID {
		t.Fatalf("gap SubID = %d, want %d", gap.SubID, subID)
	}
}

// TestExplicitTerminalEventsSurviveOverflow: terminal transitions of
// explicitly subscribed tasks bypass the queue bound, so a handle
// never misses its task's fate however slow its connection was.
func TestExplicitTerminalEventsSurviveOverflow(t *testing.T) {
	h := NewEventHub(2, time.Millisecond)
	defer h.Close()
	p := &collectingPush{gate: make(chan struct{})}
	ids := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := h.Subscribe(&proto.SubscribeSpec{TaskIDs: ids}, noSnapshot, Pusher{Push: p.push}, nil); err != nil {
		t.Fatal(err)
	}
	// Stalled pump, queue bound of 2, 8 terminal transitions: with the
	// force path every one of them must come out the other side.
	for _, id := range ids {
		h.PublishState(id, task.Stats{Status: task.Finished, MovedBytes: int64(id)})
	}
	close(p.gate)
	waitFor(t, "all terminal events", func() bool {
		seen := map[uint64]bool{}
		for _, ev := range p.snapshot() {
			if proto.EventKind(ev.Kind) == proto.EvState && ev.HasStats &&
				task.Status(ev.Stats.Status) == task.Finished {
				seen[ev.TaskID] = true
			}
		}
		return len(seen) == len(ids)
	})
	// The subscription is spent once every task terminated.
	waitFor(t, "auto-unsubscribe", func() bool { return h.Subscribers() == 0 })
}

// TestSubscribeSnapshotCoversRace: subscribing to a task that already
// terminated delivers its terminal state as the initial snapshot — the
// mechanism that closes the submit/subscribe window.
func TestSubscribeSnapshotCoversRace(t *testing.T) {
	h := NewEventHub(0, 0)
	defer h.Close()
	p := &collectingPush{}
	snapshot := func(id uint64) (task.Stats, error) {
		if id == 42 {
			return task.Stats{Status: task.Finished, MovedBytes: 7}, nil
		}
		return task.Stats{}, fmt.Errorf("%w: task %d", errNotFound, id)
	}
	subID, err := h.Subscribe(&proto.SubscribeSpec{TaskIDs: []uint64{42}}, snapshot, Pusher{Push: p.push}, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "snapshot event", func() bool {
		evs := p.snapshot()
		return len(evs) == 1 && evs[0].TaskID == 42 && evs[0].SubID == subID &&
			task.Status(evs[0].Stats.Status) == task.Finished && evs[0].Stats.MovedBytes == 7
	})
	waitFor(t, "spent subscription reaped", func() bool { return h.Subscribers() == 0 })

	// Unknown tasks fail the subscribe outright.
	if _, err := h.Subscribe(&proto.SubscribeSpec{TaskIDs: []uint64{99}}, snapshot, Pusher{Push: p.push}, nil); !errors.Is(err, errNotFound) {
		t.Fatalf("Subscribe(unknown) = %v, want errNotFound", err)
	}
	// As does an empty filter.
	if _, err := h.Subscribe(&proto.SubscribeSpec{}, snapshot, Pusher{Push: p.push}, nil); !errors.Is(err, errBadRequest) {
		t.Fatalf("Subscribe(empty) = %v, want errBadRequest", err)
	}
}

// TestDuplicateTerminalPublishSuppressed: the cancel path and the
// worker path can both publish the same terminal state; subscribers
// must see it once.
func TestDuplicateTerminalPublishSuppressed(t *testing.T) {
	h := NewEventHub(0, 0)
	defer h.Close()
	p := &collectingPush{}
	if _, err := h.Subscribe(&proto.SubscribeSpec{All: true}, noSnapshot, Pusher{Push: p.push}, nil); err != nil {
		t.Fatal(err)
	}
	st := task.Stats{Status: task.Cancelled}
	h.PublishState(9, st)
	h.PublishState(9, st) // racing duplicate
	// A stale pre-terminal snapshot delivered late (Cancel's Cancelling
	// racing the worker's Cancelled) must not resurrect the task.
	h.PublishState(9, task.Stats{Status: task.Cancelling})
	h.PublishState(10, task.Stats{Status: task.Pending})
	waitFor(t, "events", func() bool { return len(p.snapshot()) >= 2 })
	time.Sleep(20 * time.Millisecond) // allow a wrong extra event to land
	count := 0
	for _, ev := range p.snapshot() {
		if ev.TaskID == 9 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("task 9 delivered %d times, want 1", count)
	}
}

// TestProgressThrottle: progress ticks are rate-limited per task at
// the hub floor, however often the transfer hot path fires.
func TestProgressThrottle(t *testing.T) {
	h := NewEventHub(1024, 50*time.Millisecond)
	defer h.Close()
	p := &collectingPush{}
	if _, err := h.Subscribe(&proto.SubscribeSpec{All: true, ProgressMS: 1}, noSnapshot, Pusher{Push: p.push}, nil); err != nil {
		t.Fatal(err)
	}
	tk := task.New(5, task.Copy, task.MemoryRegion([]byte("x")), task.PosixPath("m://", "f"))
	if err := tk.Start(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		h.PublishProgress(tk)
	}
	time.Sleep(20 * time.Millisecond)
	ticks := 0
	for _, ev := range p.snapshot() {
		if proto.EventKind(ev.Kind) == proto.EvProgress {
			ticks++
		}
	}
	if ticks > 2 {
		t.Fatalf("%d progress ticks through a 50ms floor in a tight loop", ticks)
	}
	if ticks == 0 {
		t.Fatal("no progress tick at all")
	}
}

// TestUnsubscribeStopsDelivery and failed pushes reap the subscription.
func TestUnsubscribeStopsDelivery(t *testing.T) {
	h := NewEventHub(0, 0)
	defer h.Close()
	p := &collectingPush{}
	id, err := h.Subscribe(&proto.SubscribeSpec{All: true}, noSnapshot, Pusher{Push: p.push}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.PublishState(1, task.Stats{Status: task.Pending})
	waitFor(t, "first event", func() bool { return len(p.snapshot()) == 1 })
	if err := h.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if err := h.Unsubscribe(id); err == nil {
		t.Fatal("double unsubscribe succeeded")
	}
	waitFor(t, "reaped", func() bool { return h.Subscribers() == 0 })
	h.PublishState(2, task.Stats{Status: task.Pending})
	time.Sleep(20 * time.Millisecond)
	if n := len(p.snapshot()); n != 1 {
		t.Fatalf("%d events after unsubscribe, want 1", n)
	}

	// A push error reaps the subscription too.
	bad := &collectingPush{failing: true}
	if _, err := h.Subscribe(&proto.SubscribeSpec{All: true}, noSnapshot, Pusher{Push: bad.push}, nil); err != nil {
		t.Fatal(err)
	}
	h.PublishState(3, task.Stats{Status: task.Pending})
	waitFor(t, "failed-push reap", func() bool { return h.Subscribers() == 0 })
}

// TestPeerClosedReapsSubscription: connection teardown tears the
// subscription down with it.
func TestPeerClosedReapsSubscription(t *testing.T) {
	h := NewEventHub(0, 0)
	defer h.Close()
	p := &collectingPush{}
	closed := make(chan struct{})
	if _, err := h.Subscribe(&proto.SubscribeSpec{All: true}, noSnapshot, Pusher{Push: p.push}, closed); err != nil {
		t.Fatal(err)
	}
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers = %d", h.Subscribers())
	}
	close(closed)
	waitFor(t, "peer-closed reap", func() bool { return h.Subscribers() == 0 })
}
