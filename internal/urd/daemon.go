package urd

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ngioproject/norns-go/internal/dataspace"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/queue"
	"github.com/ngioproject/norns-go/internal/storage"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transfer"
	"github.com/ngioproject/norns-go/internal/transport"
)

// Version is reported by OpStatus.
const Version = "urd/1.0 (norns-go)"

// Config parameterizes a daemon instance.
type Config struct {
	// NodeName is this compute node's cluster name.
	NodeName string
	// UserSocket and ControlSocket are the AF_UNIX paths for the two
	// permission domains. Empty disables that listener (tests may drive
	// the daemon in-process).
	UserSocket    string
	ControlSocket string
	// Workers sizes the transfer worker pool (<=0 selects 4, matching
	// the prototype's default).
	Workers int
	// Policy arbitrates the task queue (nil selects FCFS).
	Policy queue.Policy
	// Fabric selects the mercury NA plugin for node-to-node transfers
	// ("" disables the network manager).
	Fabric string
	// FabricAddr is the listen address for the fabric ("" = ephemeral).
	FabricAddr string
	// Resolver maps node names to fabric addresses (required with
	// Fabric).
	Resolver NodeResolver
	// BufSize is the local copy buffer size (<=0: 1 MiB).
	BufSize int
}

// Daemon is one urd instance.
type Daemon struct {
	cfg        Config
	Controller *dataspace.Controller
	queue      *queue.Queue
	executor   *transfer.Executor
	net        *NetManager

	userSrv *transport.Server
	ctlSrv  *transport.Server

	mu     sync.Mutex
	tasks  map[uint64]*task.Task
	nextID uint64
	closed bool

	wg sync.WaitGroup
}

// New builds and starts a daemon: workers are spawned, sockets (if
// configured) listen, and the fabric (if configured) is live.
func New(cfg Config) (*Daemon, error) {
	d := &Daemon{
		cfg:        cfg,
		Controller: dataspace.NewController(),
		queue:      queue.New(cfg.Policy),
		tasks:      make(map[uint64]*task.Task),
	}
	ctx := &transfer.Context{Spaces: d.Controller.Spaces, BufSize: cfg.BufSize}
	if cfg.Fabric != "" {
		if cfg.Resolver == nil {
			return nil, errors.New("urd: fabric configured without a node resolver")
		}
		nm, err := NewNetManager(cfg.Fabric, cfg.FabricAddr, d.Controller.Spaces, cfg.Resolver)
		if err != nil {
			return nil, err
		}
		d.net = nm
		ctx.Net = nm
	}
	d.executor = transfer.NewExecutor(ctx)

	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	for i := 0; i < workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}

	if cfg.UserSocket != "" {
		d.userSrv = transport.NewServer(d.Handle, false)
		if _, err := d.userSrv.Listen("unix", cfg.UserSocket); err != nil {
			d.Close()
			return nil, err
		}
	}
	if cfg.ControlSocket != "" {
		d.ctlSrv = transport.NewServer(d.Handle, true)
		if _, err := d.ctlSrv.Listen("unix", cfg.ControlSocket); err != nil {
			d.Close()
			return nil, err
		}
	}
	return d, nil
}

// NodeName returns the configured node name.
func (d *Daemon) NodeName() string { return d.cfg.NodeName }

// FabricAddr returns the network manager's address ("" without fabric).
func (d *Daemon) FabricAddr() string {
	if d.net == nil {
		return ""
	}
	return d.net.Addr()
}

// Executor exposes the transfer executor (the slurm simulation reads its
// E.T.A. estimates).
func (d *Daemon) Executor() *transfer.Executor { return d.executor }

// worker drains the task queue, mirroring the urd worker threads.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		t := d.queue.Next()
		if t == nil {
			return
		}
		d.executor.Execute(t)
	}
}

// Close drains listeners, workers and the fabric.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	if d.userSrv != nil {
		d.userSrv.Close()
	}
	if d.ctlSrv != nil {
		d.ctlSrv.Close()
	}
	d.queue.Close()
	d.wg.Wait()
	if d.net != nil {
		d.net.Close()
	}
}

// Submit validates, registers, and enqueues a task, returning its ID.
// Control callers bypass process authorization (admin == true).
func (d *Daemon) Submit(spec *proto.TaskSpec, pid uint64, admin bool) (uint64, error) {
	in := spec.Input.ToResource()
	out := spec.Output.ToResource()
	kind := task.Kind(spec.Kind)

	d.mu.Lock()
	d.nextID++
	id := d.nextID
	d.mu.Unlock()

	t := task.New(id, kind, in, out)
	t.Priority = int(spec.Priority)
	t.JobID = spec.JobID
	if err := t.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	// Authorization: local dataspaces the task touches must be allowed.
	var local []string
	if in.Kind == task.LocalPath {
		local = append(local, in.Dataspace)
	}
	if out.Kind == task.LocalPath {
		local = append(local, out.Dataspace)
	}
	if admin {
		if err := d.Controller.AuthorizeAdmin(local...); err != nil {
			return 0, fmt.Errorf("%w: %v", errNotFound, err)
		}
	} else {
		jid, err := d.Controller.Authorize(pid, local...)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", errDenied, err)
		}
		t.JobID = jid
	}

	d.mu.Lock()
	d.tasks[id] = t
	d.mu.Unlock()
	if err := d.queue.Submit(t); err != nil {
		d.mu.Lock()
		delete(d.tasks, id)
		d.mu.Unlock()
		return 0, err
	}
	return id, nil
}

// Task returns a registered task.
func (d *Daemon) Task(id uint64) (*task.Task, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tasks[id]
	if !ok {
		return nil, fmt.Errorf("%w: task %d", errNotFound, id)
	}
	return t, nil
}

// PendingTasks returns the queue depth.
func (d *Daemon) PendingTasks() int { return d.queue.Len() }

// sentinel errors mapped to protocol status codes.
var (
	errBadRequest = errors.New("bad request")
	errNotFound   = errors.New("not found")
	errExists     = errors.New("already exists")
	errDenied     = errors.New("permission denied")
)

func statusOf(err error) proto.StatusCode {
	switch {
	case err == nil:
		return proto.Success
	case errors.Is(err, errBadRequest):
		return proto.EBadRequest
	case errors.Is(err, errNotFound), errors.Is(err, dataspace.ErrNotFound),
		errors.Is(err, dataspace.ErrJobNotFound), errors.Is(err, dataspace.ErrProcNotFound):
		return proto.ENotFound
	case errors.Is(err, errExists), errors.Is(err, dataspace.ErrExists),
		errors.Is(err, dataspace.ErrJobExists), errors.Is(err, dataspace.ErrProcExists):
		return proto.EExists
	case errors.Is(err, errDenied), errors.Is(err, dataspace.ErrDenied):
		return proto.EPermission
	case errors.Is(err, dataspace.ErrBadID), errors.Is(err, dataspace.ErrNilFS):
		return proto.EBadRequest
	default:
		return proto.EInternal
	}
}

func errResp(err error) *proto.Response {
	return &proto.Response{Status: statusOf(err), Error: err.Error()}
}

// Handle is the transport dispatch: it implements every protocol op.
// It is exported so tests and single-process simulations can drive the
// daemon without sockets.
func (d *Daemon) Handle(peer transport.PeerInfo, req *proto.Request) *proto.Response {
	if req.Op.Control() && !peer.Control {
		return &proto.Response{
			Status: proto.EPermission,
			Error:  fmt.Sprintf("op %s requires the control socket", req.Op),
		}
	}
	switch req.Op {
	case proto.OpPing:
		return &proto.Response{Status: proto.Success}
	case proto.OpStatus:
		return d.handleStatus()
	case proto.OpSubmit:
		return d.handleSubmit(peer, req)
	case proto.OpWait:
		return d.handleWait(req)
	case proto.OpTaskStatus:
		return d.handleTaskStatus(req)
	case proto.OpGetDataspaceInfo:
		return d.handleDataspaceInfo()
	case proto.OpRegisterDataspace:
		return d.handleRegisterDataspace(req)
	case proto.OpUpdateDataspace:
		return d.handleUpdateDataspace(req)
	case proto.OpUnregisterDataspace:
		return d.handleUnregisterDataspace(req)
	case proto.OpTrackDataspace:
		return d.handleTrackDataspace(req)
	case proto.OpTrackedNonEmpty:
		return d.handleTrackedNonEmpty()
	case proto.OpRegisterJob, proto.OpUpdateJob:
		return d.handleRegisterJob(req)
	case proto.OpUnregisterJob:
		return d.handleUnregisterJob(req)
	case proto.OpAddProcess:
		return d.handleAddProcess(req)
	case proto.OpRemoveProcess:
		return d.handleRemoveProcess(req)
	case proto.OpTransferStats:
		return d.handleTransferStats()
	case proto.OpShutdown:
		go d.Close()
		return &proto.Response{Status: proto.Success}
	default:
		return &proto.Response{Status: proto.EBadRequest, Error: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

func (d *Daemon) handleStatus() *proto.Response {
	d.mu.Lock()
	nTasks := len(d.tasks)
	d.mu.Unlock()
	info := fmt.Sprintf("%s node=%s policy=%s pending=%d tasks=%d",
		Version, d.cfg.NodeName, d.queue.PolicyName(), d.queue.Len(), nTasks)
	return &proto.Response{Status: proto.Success, DaemonInfo: info}
}

// handleTransferStats reports observed transfer performance so the
// scheduler can refine its staging estimates — the feedback loop the
// paper's conclusions call for.
func (d *Daemon) handleTransferStats() *proto.Response {
	m := &proto.TransferMetrics{
		BandwidthBps: d.executor.ETA.Bandwidth(),
		Samples:      uint64(d.executor.ETA.Samples()),
		Pending:      uint64(d.queue.Len()),
	}
	d.mu.Lock()
	for _, t := range d.tasks {
		st := t.Stats()
		switch st.Status {
		case task.Running:
			m.Running++
		case task.Finished:
			m.Finished++
			m.MovedBytes += st.MovedBytes
		case task.Failed:
			m.Failed++
			m.MovedBytes += st.MovedBytes
		}
	}
	d.mu.Unlock()
	return &proto.Response{Status: proto.Success, Metrics: m}
}

func (d *Daemon) handleSubmit(peer transport.PeerInfo, req *proto.Request) *proto.Response {
	if req.Task == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "submit without task"}
	}
	id, err := d.Submit(req.Task, req.PID, peer.Control)
	if err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success, TaskID: id}
}

func (d *Daemon) handleWait(req *proto.Request) *proto.Response {
	t, err := d.Task(req.TaskID)
	if err != nil {
		return errResp(err)
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if !t.Wait(timeout) {
		return &proto.Response{Status: proto.ETimeout, TaskID: t.ID}
	}
	st := proto.FromStats(t.Stats())
	return &proto.Response{Status: proto.Success, TaskID: t.ID, Stats: &st}
}

func (d *Daemon) handleTaskStatus(req *proto.Request) *proto.Response {
	t, err := d.Task(req.TaskID)
	if err != nil {
		return errResp(err)
	}
	st := proto.FromStats(t.Stats())
	code := proto.Success
	if task.Status(st.Status) == task.Failed {
		code = proto.ETaskError
	}
	return &proto.Response{Status: code, TaskID: t.ID, Stats: &st}
}

func (d *Daemon) handleDataspaceInfo() *proto.Response {
	resp := &proto.Response{Status: proto.Success}
	for _, id := range d.Controller.Spaces.List() {
		ds, err := d.Controller.Spaces.Get(id)
		if err != nil {
			continue
		}
		used, _ := ds.Usage()
		resp.Dataspaces = append(resp.Dataspaces, proto.DataspaceSpec{
			ID:        ds.ID,
			Backend:   uint32(ds.Backend.Kind),
			Mount:     ds.Backend.Mount,
			Capacity:  ds.Backend.Capacity,
			Track:     ds.Track,
			UsedBytes: used,
		})
	}
	return resp
}

// backendFromSpec builds a dataspace backend: a Mount selects a rooted
// OSFS (the real mount point of the tier); no Mount selects an
// in-memory FS (used by tests and the memory tier).
func backendFromSpec(spec *proto.DataspaceSpec) (dataspace.Backend, error) {
	b := dataspace.Backend{
		Kind:     dataspace.BackendKind(spec.Backend),
		Mount:    spec.Mount,
		Capacity: spec.Capacity,
	}
	if spec.Mount != "" {
		fs, err := storage.NewOSFS(spec.Mount)
		if err != nil {
			return b, err
		}
		b.FS = fs
	} else if spec.Capacity > 0 {
		b.FS = storage.NewMemFSWithCapacity(spec.Capacity)
	} else {
		b.FS = storage.NewMemFS()
	}
	return b, nil
}

func (d *Daemon) handleRegisterDataspace(req *proto.Request) *proto.Response {
	if req.Dataspace == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "register without dataspace"}
	}
	b, err := backendFromSpec(req.Dataspace)
	if err != nil {
		return errResp(err)
	}
	ds, err := d.Controller.Spaces.Register(req.Dataspace.ID, b)
	if err != nil {
		return errResp(err)
	}
	ds.Track = req.Dataspace.Track
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleUpdateDataspace(req *proto.Request) *proto.Response {
	if req.Dataspace == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "update without dataspace"}
	}
	b, err := backendFromSpec(req.Dataspace)
	if err != nil {
		return errResp(err)
	}
	if err := d.Controller.Spaces.Update(req.Dataspace.ID, b); err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleUnregisterDataspace(req *proto.Request) *proto.Response {
	if req.Dataspace == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "unregister without dataspace"}
	}
	if err := d.Controller.Spaces.Unregister(req.Dataspace.ID); err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleTrackDataspace(req *proto.Request) *proto.Response {
	if req.Dataspace == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "track without dataspace"}
	}
	if err := d.Controller.Spaces.SetTrack(req.Dataspace.ID, req.Track); err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleTrackedNonEmpty() *proto.Response {
	ids, err := d.Controller.Spaces.NonEmptyTracked()
	if err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success, NonEmpty: ids}
}

func (d *Daemon) handleRegisterJob(req *proto.Request) *proto.Response {
	if req.Job == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "register without job"}
	}
	job := dataspace.Job{ID: req.Job.ID, Hosts: req.Job.Hosts}
	for _, l := range req.Job.Limits {
		job.Limits = append(job.Limits, dataspace.JobLimits{Dataspace: l.Dataspace, Quota: l.Quota})
	}
	var err error
	if req.Op == proto.OpRegisterJob {
		err = d.Controller.RegisterJob(job)
	} else {
		err = d.Controller.UpdateJob(job)
	}
	if err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleUnregisterJob(req *proto.Request) *proto.Response {
	if req.Job == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "unregister without job"}
	}
	if err := d.Controller.UnregisterJob(req.Job.ID); err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleAddProcess(req *proto.Request) *proto.Response {
	if req.Proc == nil || req.Job == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "add-process needs job and proc"}
	}
	p := dataspace.Proc{PID: req.Proc.PID, UID: req.Proc.UID, GID: req.Proc.GID}
	if err := d.Controller.AddProcess(req.Job.ID, p); err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleRemoveProcess(req *proto.Request) *proto.Response {
	if req.Proc == nil || req.Job == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "remove-process needs job and proc"}
	}
	p := dataspace.Proc{PID: req.Proc.PID, UID: req.Proc.UID, GID: req.Proc.GID}
	if err := d.Controller.RemoveProcess(req.Job.ID, p); err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}
