package urd

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ngioproject/norns-go/internal/cascache"
	"github.com/ngioproject/norns-go/internal/dataspace"
	"github.com/ngioproject/norns-go/internal/gateway"
	"github.com/ngioproject/norns-go/internal/gateway/auth"
	"github.com/ngioproject/norns-go/internal/journal"
	"github.com/ngioproject/norns-go/internal/mercury"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/queue"
	"github.com/ngioproject/norns-go/internal/storage"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transfer"
	"github.com/ngioproject/norns-go/internal/transport"
)

// Version is reported by OpStatus.
const Version = "urd/2.0 (norns-go)"

// Config parameterizes a daemon instance.
type Config struct {
	// NodeName is this compute node's cluster name.
	NodeName string
	// UserSocket and ControlSocket are the AF_UNIX paths for the two
	// permission domains. Empty disables that listener (tests may drive
	// the daemon in-process).
	UserSocket    string
	ControlSocket string
	// Workers sizes each shard's worker pool (<=0 selects 4, matching
	// the prototype's default). Shards are created per dataspace pair,
	// so total worker concurrency scales with the number of distinct
	// transfer routes in flight.
	Workers int
	// Policy arbitrates each shard's task queue (nil selects FCFS). The
	// built-in policies are recognized by name and re-instantiated per
	// shard. Custom policies are stateful and cannot be shared across
	// shard queues, so New rejects a custom Policy without a
	// PolicyFactory instead of silently serving only the first shard.
	Policy queue.Policy
	// PolicyFactory, when set, builds one queue policy per shard and
	// takes precedence over Policy. It is invoked under the daemon lock
	// (plus once during New to learn its name), so it must not block.
	PolicyFactory func() queue.Policy
	// MaxShardQueue bounds each shard's pending queue (<=0: unbounded);
	// submissions beyond it fail with NORNS_EAGAIN.
	MaxShardQueue int
	// MaxInFlight is the global backpressure limit on tasks that are
	// queued or running across all shards (<=0: unbounded); submissions
	// beyond it fail with NORNS_EAGAIN.
	MaxInFlight int
	// Fabric selects the mercury NA plugin for node-to-node transfers
	// ("" disables the network manager).
	Fabric string
	// FabricAddr is the listen address for the fabric ("" = ephemeral).
	FabricAddr string
	// Resolver maps node names to fabric addresses (required with
	// Fabric).
	Resolver NodeResolver
	// BufSize is the copy/throttle chunk size (<=0: 256 KiB).
	// Cancellation and bandwidth limits are observed between chunks, so
	// it bounds cancel latency — the transfer unit itself is SegmentSize.
	BufSize int
	// SegmentSize is the transfer planner's segment unit (<=0: 8 MiB):
	// files are split into segments that move on parallel streams and
	// checkpoint individually in the journal.
	SegmentSize int64
	// TransferStreams is how many segments one task moves concurrently
	// (<=0: 4).
	TransferStreams int
	// MaxBandwidthBps caps the daemon's aggregate transfer bandwidth in
	// bytes per second (<=0: unlimited) — the staging throttle of the
	// paper's interference experiments. Inbound pulls served for peers
	// count against the same budget.
	MaxBandwidthBps int64
	// Autotune enables the per-route transfer autotuner: streams and
	// segment size adapt to each route's observed goodput, starting
	// from the static TransferStreams/SegmentSize configuration (which
	// remains the escape hatch when disabled).
	Autotune bool
	// AutotuneMinSamples is how many transfers the tuner observes at an
	// operating point before scoring it (<=0: 2). Lower converges
	// faster on noisy-free media; higher resists jitter.
	AutotuneMinSamples int
	// DisableOffload forces local staging onto the portable user-space
	// copy path even when the kernel range-copy offload is available.
	// It exists for benchmarking the offload against its fallback and
	// for diagnosing suspected kernel-side copy bugs; leave it off in
	// production.
	DisableOffload bool
	// RPCTimeout bounds each peer RPC and bulk-stream idle gap (<=0:
	// none). A hung peer then fails the transfer instead of wedging a
	// worker forever.
	RPCTimeout time.Duration
	// EventQueue bounds each event subscriber's pending queue (<=0:
	// 256). A subscriber that falls further behind gets its overflow
	// coalesced into one gap event instead of blocking workers;
	// terminal transitions of explicitly subscribed tasks are admitted
	// past the bound so task handles always resolve.
	EventQueue int
	// ProgressInterval is the hub-wide floor between progress-tick
	// events per task (<=0: 100ms), whatever rate subscribers request.
	ProgressInterval time.Duration
	// RetainTasks bounds how many terminal tasks stay in the in-memory
	// task table answering status queries (<=0: 16384; negative values
	// also select the default). Beyond it the oldest terminal tasks are
	// retired — their IDs stop resolving, exactly as after a restart
	// once the journal's own RetainTerminal GC has run. Without the
	// bound a long-lived daemon's task table (and the GC work to scan
	// it) grew without limit — the opposite of "as fast as the hardware
	// allows" under millions of submissions.
	RetainTasks int
	// StateDir, when set, enables the durable task journal: every
	// submission and state transition is appended to a write-ahead log
	// under this directory, and on startup the journal is replayed —
	// dataspaces are restored, tasks that were pending or running at
	// the crash are re-queued (re-running a copy is idempotent), and
	// terminal tasks are resurrected for status queries without being
	// re-run. Empty disables persistence (tasks live in memory only).
	StateDir string
	// JournalOptions tunes the journal (compaction cadence, terminal
	// retention, per-record fsync). The zero value selects the journal
	// package defaults. Ignored without StateDir.
	JournalOptions journal.Options
	// RetryMax is the daemon's default retry budget: a task that fails
	// with a transient transport fault is sent back to Pending and
	// re-executed up to this many times (exponential backoff) before it
	// is quarantined in the dead-letter state. 0 disables automatic
	// retries — the historical fail-on-first-error behavior. A task's
	// own Spec.RetryMax overrides the default.
	RetryMax int
	// RetryBackoff is the base of the exponential retry schedule:
	// attempt N re-queues after roughly RetryBackoff·2^(N-1), jittered
	// ±25% and capped at 30s. <=0 selects 250ms.
	RetryBackoff time.Duration
	// JournalProbeInterval is how often a degraded daemon re-probes its
	// journal for recovery (<=0: 1s). Ignored without StateDir.
	JournalProbeInterval time.Duration
	// BreakerThreshold and BreakerCooldown tune the fabric circuit
	// breakers: BreakerThreshold consecutive transport failures to one
	// endpoint trip its breaker, which re-probes after BreakerCooldown.
	// Zero values select the mercury defaults (5 failures, 1s); a
	// negative threshold disables breaking. Ignored without Fabric.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// CacheDir, when non-empty, enables the content-addressed staging
	// cache rooted at that directory: repeated stage-ins of unchanged
	// segments are served from local disk instead of the fabric, and
	// transfers delta-skip segments the destination already holds.
	// CacheSize bounds the cache footprint in bytes (<=0 selects 1 GiB).
	CacheDir  string
	CacheSize int64
	// Hooks are optional fault-injection points for the scenario lab
	// and tests. The zero value installs nothing; see Hooks.
	Hooks Hooks
	// HTTPAddr, when non-empty, starts the HTTP/JSON gateway on this
	// TCP address (host:port; port 0 picks one — see Daemon.HTTPAddr).
	// The gateway serves the v2 API over JSON, SSE event streaming, and
	// the NDJSON bulk import/export endpoints. HTTPToken is the bearer
	// secret and is mandatory with HTTPAddr: the gateway refuses to
	// serve unauthenticated. HTTPMaxBody clamps JSON request bodies
	// (<=0: 8 MiB); HTTPMaxLine clamps one NDJSON line (<=0: 1 MiB).
	HTTPAddr    string
	HTTPToken   string
	HTTPMaxBody int64
	HTTPMaxLine int
}

// shard is one lane of the dispatcher: all tasks moving data between
// the same (input, output) dataspace pair share a queue and worker set,
// so independent routes never head-of-line-block each other.
type shard struct {
	key string
	q   *queue.Queue
}

// Recovered counts what a journal replay restored at startup.
type Recovered struct {
	// Pending and Running tasks were re-queued (the latter were
	// mid-transfer at the crash and restart from scratch).
	Pending int
	Running int
	// Cancelled tasks were mid-cancellation and recovered straight to
	// their terminal state — the user asked for the abort; a restart
	// does not un-ask it.
	Cancelled int
	// Terminal tasks were already complete and were resurrected so
	// their IDs keep answering status queries. They are never re-run.
	Terminal int
}

// Requeued is the number of tasks the replay put back into the pipeline.
func (r Recovered) Requeued() int { return r.Pending + r.Running }

// Daemon is one urd instance.
type Daemon struct {
	cfg        Config
	Controller *dataspace.Controller
	executor   *transfer.Executor
	net        *NetManager
	newPolicy  func() queue.Policy
	policyName string
	workers    int

	// journal is the durable task log (nil without Config.StateDir);
	// recovered is immutable after New.
	journal   *journal.Journal
	recovered Recovered

	// cache is the content-addressed staging cache (nil without
	// Config.CacheDir); its hit/miss/evict gauges surface in OpStatus.
	cache *cascache.Cache

	// hub fans task lifecycle events out to OpSubscribe subscribers.
	hub *EventHub
	// statusPolls counts OpTaskStatus requests served — the gauge the
	// event-driven API exists to drive to zero (tests assert on it).
	statusPolls atomic.Uint64

	userSrv *transport.Server
	ctlSrv  *transport.Server
	// gw is the HTTP/JSON gateway (nil without Config.HTTPAddr).
	gw *gateway.Server

	// ctx is the root context every worker executes under. Close drains
	// gracefully — in-flight and queued tasks run to completion — and
	// cancels ctx only after the workers exit, as a final release for
	// any bridging goroutines; it is not an abort path. Use Cancel (or
	// task deadlines) to bound individual transfers.
	ctx  context.Context
	stop context.CancelFunc

	// tasks is the lock-striped task table: lookups (OpTaskStatus, the
	// event hub's subscribe snapshots, cancel authorization) take one
	// stripe's read lock and never contend with submissions or worker
	// completions on other stripes. The scalar state that used to share
	// the daemon's single mutex is atomic: nextID allocates IDs with one
	// fetch-add, inFlight is the global backpressure gauge (admission
	// CASes it so MaxInFlight is never overshot), and closed gates
	// submission without a lock.
	tasks    *taskRegistry
	nextID   atomic.Uint64
	inFlight atomic.Int64 // tasks queued or running
	closed   atomic.Bool

	// degraded marks journal degrade mode: the WAL hit a write error,
	// so new submissions are shed with NORNS_EUNAVAILABLE (retryable)
	// while already-admitted tasks run to their terminal states. The
	// probe loop re-tests the journal and lifts the flag if it heals.
	degraded atomic.Bool
	// draining marks a graceful Shutdown: workers stop picking up
	// queued tasks (they stay journaled Pending for the next daemon)
	// while running transfers finish. drainAbandon is set when the
	// drain deadline expires — in-flight transfers are then aborted and
	// handed back to Pending with their segment checkpoints instead of
	// being failed.
	draining     atomic.Bool
	drainAbandon atomic.Bool
	// recoveredClean reports that the replayed journal ended with a
	// clean-shutdown marker (immutable after New).
	recoveredClean bool

	// retryMu guards the backoff timers of tasks awaiting re-queue
	// after a transient failure.
	retryMu     sync.Mutex
	retryTimers map[uint64]*time.Timer

	// dlMu guards the dead-letter set: quarantined task IDs an operator
	// has not yet requeued.
	dlMu sync.Mutex
	dl   map[uint64]struct{}

	// Terminal accounting, maintained exactly once per task when its
	// in-flight slot is released (and seeded from the journal for
	// resurrected tasks), so OpTransferStats aggregates without walking
	// the task table.
	doneFinished  atomic.Uint64
	doneFailed    atomic.Uint64
	doneCancelled atomic.Uint64
	doneMoved     atomic.Int64

	// retired is the FIFO ring of terminal task IDs still held in the
	// table; when it wraps, the overwritten ID is evicted from the
	// registry and the hub — the in-memory mirror of the journal's
	// RetainTerminal GC, keeping the live set (and GC scan work)
	// bounded however long the daemon runs.
	retiredMu sync.Mutex
	retired   []uint64
	retiredN  int

	// shardMu guards only the shard map (created lazily per dataspace
	// pair); the queues behind it have their own locks.
	shardMu sync.Mutex
	shards  map[routeKey]*shard

	// done is closed when Close finishes, so a host process can wait
	// for a shutdown requested over the control API (OpShutdown).
	done chan struct{}

	wg sync.WaitGroup
}

// policyFactory resolves the per-shard policy constructor from cfg.
// New has already validated that a factory-less Policy is one of the
// built-ins, so re-instantiating by name is always possible here.
func policyFactory(cfg Config) func() queue.Policy {
	if cfg.PolicyFactory != nil {
		return cfg.PolicyFactory
	}
	if cfg.Policy == nil {
		return func() queue.Policy { return queue.NewFCFS() }
	}
	name := cfg.Policy.Name()
	return func() queue.Policy {
		switch name {
		case "sjf":
			return queue.NewSJF(nil)
		case "priority":
			return queue.NewPriority()
		case "fair-share":
			return queue.NewFairShare()
		default: // "fcfs"
			return queue.NewFCFS()
		}
	}
}

// New builds and starts a daemon: sockets (if configured) listen and the
// fabric (if configured) is live. Shards — and their workers — are
// created lazily as the first task for each dataspace pair arrives.
func New(cfg Config) (*Daemon, error) {
	// Policies are stateful and per-shard: a custom policy instance
	// cannot serve every shard, so it must come with a factory. (The
	// built-ins are re-instantiated by name.)
	if cfg.PolicyFactory == nil && cfg.Policy != nil {
		switch cfg.Policy.Name() {
		case "fcfs", "sjf", "priority", "fair-share":
		default:
			return nil, fmt.Errorf(
				"urd: custom policy %q requires Config.PolicyFactory (each shard needs its own policy instance)",
				cfg.Policy.Name())
		}
	}
	d := &Daemon{
		cfg:        cfg,
		Controller: dataspace.NewController(),
		newPolicy:  policyFactory(cfg),
		shards:     make(map[routeKey]*shard),
		tasks:      newTaskRegistry(),
		done:       make(chan struct{}),
	}
	d.ctx, d.stop = context.WithCancel(context.Background())
	d.workers = cfg.Workers
	if d.workers <= 0 {
		d.workers = 4
	}
	// Name resolution mirrors policyFactory's precedence: PolicyFactory
	// wins over Policy. The probe instance is safe here — the daemon has
	// no concurrency yet — and is discarded.
	switch {
	case cfg.PolicyFactory != nil:
		d.policyName = cfg.PolicyFactory().Name()
	case cfg.Policy != nil:
		d.policyName = cfg.Policy.Name()
	default:
		d.policyName = "fcfs"
	}
	d.hub = NewEventHub(cfg.EventQueue, cfg.ProgressInterval)
	env := &transfer.Env{
		Spaces:         d.Controller.Spaces,
		BufSize:        cfg.BufSize,
		SegmentSize:    cfg.SegmentSize,
		Streams:        cfg.TransferStreams,
		Governor:       transfer.NewGovernor(cfg.MaxBandwidthBps),
		DisableOffload: cfg.DisableOffload,
		// Lifecycle hooks feed the event hub; both are cheap no-ops
		// while nobody is subscribed.
		OnStart:    func(t *task.Task) { d.hub.PublishState(t.ID, t.Stats()) },
		OnProgress: func(t *task.Task) { d.hub.PublishProgress(t) },
	}
	if cfg.Autotune {
		env.Tuner = transfer.NewTuner(cfg.AutotuneMinSamples)
	}
	if cfg.CacheDir != "" {
		size := cfg.CacheSize
		if size <= 0 {
			size = 1 << 30
		}
		c, err := cascache.Open(cfg.CacheDir, size)
		if err != nil {
			d.stop()
			return nil, fmt.Errorf("urd: staging cache: %w", err)
		}
		d.cache = c
		env.Cache = c
	}
	if cfg.Fabric != "" {
		if cfg.Resolver == nil {
			d.stop()
			return nil, errors.New("urd: fabric configured without a node resolver")
		}
		nm, err := NewNetManager(cfg.Fabric, cfg.FabricAddr, d.Controller.Spaces, cfg.Resolver)
		if err != nil {
			d.stop()
			return nil, err
		}
		nm.SetRPCTimeout(cfg.RPCTimeout)
		nm.SetTransfer(cfg.TransferStreams, cfg.SegmentSize, env.Governor)
		// Circuit breakers are on by default: one dead peer should cost
		// dial attempts during its cooldown windows, not an RPC timeout
		// per call fleet-wide.
		if thr := cfg.BreakerThreshold; thr >= 0 {
			if thr == 0 {
				thr = mercury.DefaultBreakerThreshold
			}
			nm.SetBreaker(thr, cfg.BreakerCooldown)
		}
		if cfg.Hooks.FabricFault != nil {
			nm.SetFaultHook(cfg.Hooks.FabricFault)
		}
		d.net = nm
		env.Net = nm
	}
	d.executor = transfer.NewExecutor(env)
	d.executor.Decide = d.decideRetry

	// Replay the durable journal before the sockets open: dataspaces are
	// restored first so re-queued tasks find their tiers, and clients
	// connecting after New observe the recovered state, never a window
	// of it.
	if cfg.StateDir != "" {
		j, err := journal.Open(cfg.StateDir, cfg.JournalOptions)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.journal = j
		// Checkpoint each completed segment's bitmap so a crash resumes
		// the transfer from the segments that already landed instead of
		// re-copying whole files. A task without a resumable plan records
		// all-zero fields — the journal-side clear the engine emits when
		// it discards a stale checkpoint (see Env.validateResume).
		env.OnSegment = func(t *task.Task) {
			segSize, planBytes, bits := t.SegmentBitmap()
			if err := j.RecordProgress(t.ID, segSize, planBytes, bits, t.Stats().MovedBytes); err != nil {
				log.Printf("urd: journal: progress %d: %v", t.ID, err)
			}
		}
	}
	// Fault hooks layer over the production wiring (journal checkpoint
	// included), never under it; no-ops when Config.Hooks is zero. They
	// must be in place before the replay below: re-queued tasks start
	// executing as soon as their shard exists, and a worker reading env
	// while hooks were still being installed would race.
	d.installHooks(env)
	if d.journal != nil {
		if err := d.replayJournal(); err != nil {
			d.Close()
			return nil, err
		}
		// The probe loop is the degrade mode's way back: it re-tests a
		// failed journal until the disk heals, then lifts the shed.
		go d.journalProbeLoop()
	}

	if cfg.UserSocket != "" {
		d.userSrv = transport.NewServer(d.Handle, false)
		d.userSrv.SetFastPath(d.fastOp)
		if _, err := d.userSrv.Listen("unix", cfg.UserSocket); err != nil {
			d.Close()
			return nil, err
		}
	}
	if cfg.ControlSocket != "" {
		d.ctlSrv = transport.NewServer(d.Handle, true)
		d.ctlSrv.SetFastPath(d.fastOp)
		if _, err := d.ctlSrv.Listen("unix", cfg.ControlSocket); err != nil {
			d.Close()
			return nil, err
		}
	}
	if cfg.HTTPAddr != "" {
		gw, err := gateway.New(gateway.Config{
			Addr:    cfg.HTTPAddr,
			Daemon:  d,
			Token:   auth.NewToken(cfg.HTTPToken),
			MaxBody: cfg.HTTPMaxBody,
			MaxLine: cfg.HTTPMaxLine,
			Logf:    log.Printf,
		})
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("urd: %w", err)
		}
		d.gw = gw
	}
	return d, nil
}

// HTTPAddr is the gateway's bound listen address (resolving port 0), or
// "" when no gateway is configured.
func (d *Daemon) HTTPAddr() string {
	if d.gw == nil {
		return ""
	}
	return d.gw.Addr()
}

// fastOp marks the requests the transport may handle inline on the
// connection's read loop (no handler goroutine per request). Everything
// the daemon serves is non-blocking except OpWait, which parks until
// the task terminates and would stall the connection's pipeline. The
// ops that append to the journal are inline only when an append is
// cheap: with -journal-flush each append blocks for the window, and
// with -state-sync it blocks for an fsync — inline handling would
// serialize a connection's pipelined submissions at one disk wait each
// instead of coalescing their waits into the same flush.
func (d *Daemon) fastOp(req *proto.Request) bool {
	switch req.Op {
	case proto.OpWait:
		return false
	case proto.OpSubmit, proto.OpSubmitBatch, proto.OpCancel,
		proto.OpRegisterDataspace, proto.OpUpdateDataspace, proto.OpUnregisterDataspace:
		return d.journal == nil ||
			(d.cfg.JournalOptions.FlushInterval == 0 && !d.cfg.JournalOptions.Sync)
	default:
		return true
	}
}

// replayJournal rebuilds the daemon's state from the journal: restore
// dataspaces, resurrect terminal tasks, confirm interrupted
// cancellations, and re-queue everything that was pending or running
// when the previous daemon died. Each non-terminal task is re-queued
// exactly once; the replay ends with a compaction so a second restart
// sees the re-queued tasks as plain pending work.
func (d *Daemon) replayJournal() error {
	j := d.journal
	d.nextID.Store(j.NextID())
	// Snapshot the clean-shutdown marker before this replay appends its
	// own records (any append clears it): a true value attests the
	// previous daemon drained in an orderly fashion, so nothing below
	// needs re-running from scratch.
	d.recoveredClean = j.Clean()

	for _, spec := range j.Dataspaces() {
		b, err := d.backendFromSpec(&spec)
		if err != nil {
			return fmt.Errorf("urd: recovering dataspace %s: %w", spec.ID, err)
		}
		ds, err := d.Controller.Spaces.Register(spec.ID, b)
		if err != nil {
			return fmt.Errorf("urd: recovering dataspace %s: %w", spec.ID, err)
		}
		ds.Track = spec.Track
	}

	for _, tr := range j.Tasks() {
		t := tr.Spec.Task(tr.ID)
		switch {
		case tr.Status.Terminal():
			// Already complete: never re-run, but keep the ID answering
			// status queries — final byte counters included — until
			// compaction retires it.
			st := task.Stats{
				Status: tr.Status, Err: tr.Err, Attempts: tr.Attempts,
				TotalBytes: tr.TotalBytes, MovedBytes: tr.MovedBytes,
				CacheBytes: tr.CacheBytes, DeltaBytes: tr.DeltaBytes,
				SegmentsTotal: tr.SegsTotal, SegmentsDone: tr.SegsDone,
			}
			if err := t.Restore(st); err == nil {
				d.tasks.Put(t)
				d.accountTerminal(st)
				d.retire(tr.ID)
				if tr.Status == task.DeadLetter {
					// Quarantined tasks stay inspectable and requeueable
					// across restarts.
					d.dlAdd(tr.ID)
				}
				d.recovered.Terminal++
			}
		case tr.Status == task.Cancelling:
			// The abort was requested before the crash; a restart does
			// not un-ask it, so confirm instead of re-running.
			st := task.Stats{
				Status:     task.Cancelled,
				TotalBytes: tr.TotalBytes, MovedBytes: tr.MovedBytes,
				CacheBytes: tr.CacheBytes, DeltaBytes: tr.DeltaBytes,
				SegmentsTotal: tr.SegsTotal, SegmentsDone: tr.SegsDone,
			}
			if err := t.Restore(st); err == nil {
				d.tasks.Put(t)
				d.accountTerminal(st)
				d.retire(tr.ID)
				// Journal the confirmation with the preserved counters —
				// the terminal record is sticky, so zeros here would
				// permanently shadow the partial progress.
				d.recordStats(tr.ID, st)
				d.recovered.Cancelled++
			}
		default: // Pending or Running: re-queue, resuming from checkpoints.
			if tr.Attempts > 0 {
				// Resume the retry schedule where the dead daemon left it
				// rather than granting a fresh budget.
				t.RestoreAttempts(tr.Attempts)
			}
			if tr.SegSize > 0 && tr.SegPlan > 0 && len(tr.SegBits) > 0 {
				// The transfer checkpointed segments before the crash; the
				// re-run re-copies only the ones missing from the bitmap
				// (the destination keeps landed segments: OpenWriterAt does
				// not truncate). The plan size travels with the checkpoint
				// so a source that changed size discards it instead.
				t.RestoreSegments(tr.SegSize, tr.SegPlan, tr.SegBits)
			}
			if err := t.Validate(); err != nil {
				// A spec that cannot be re-executed (e.g. written by a
				// newer build) must not wedge the replay.
				msg := "unreplayable journal spec: " + err.Error()
				if t.Restore(task.Stats{Status: task.Failed, Err: msg}) == nil {
					d.tasks.Put(t)
					d.accountTerminal(t.Stats())
					d.record(tr.ID, task.Failed, msg)
				}
				continue
			}
			sh, err := d.shardFor(shardKey(t))
			if err != nil {
				// Unreachable in practice (New has not returned, so Close
				// cannot have run), but fail the task rather than wedge.
				if t.Fail("recovery: "+err.Error()) == nil {
					d.tasks.Put(t)
					d.accountTerminal(t.Stats())
					d.record(tr.ID, task.Failed, "recovery: "+err.Error())
				}
				continue
			}
			d.tasks.Put(t)
			d.inFlight.Add(1)
			// Record the re-queue before the workers can race ahead of
			// it, then enqueue. Recovery deliberately bypasses both the
			// MaxInFlight gate and the per-shard queue bound: these are
			// pre-crash obligations the dead daemon had already
			// admitted, not new load to shed. The pre-crash byte counters
			// ride along so the journal does not forget the progress a
			// checkpoint attests to.
			d.recordStats(tr.ID, task.Stats{
				Status:     task.Pending,
				TotalBytes: tr.TotalBytes,
				MovedBytes: tr.MovedBytes,
				Attempts:   tr.Attempts,
			})
			if err := sh.q.Requeue(t); err != nil {
				msg := "recovery: " + err.Error()
				if t.Fail(msg) == nil {
					d.record(tr.ID, task.Failed, msg)
				}
				// Releases the slot and accounts the failure.
				d.taskDone(t)
				continue
			}
			if tr.Status == task.Running {
				d.recovered.Running++
			} else {
				d.recovered.Pending++
			}
		}
	}
	return j.Compact()
}

// Recovered reports what the startup journal replay restored (zero
// without Config.StateDir). It is fixed once New returns.
func (d *Daemon) Recovered() Recovered { return d.recovered }

// Journal exposes the daemon's durable journal (nil without
// Config.StateDir) for diagnostics and crash-injection tests.
func (d *Daemon) Journal() *journal.Journal { return d.journal }

// noteJournalError flips the daemon into degrade mode when the journal
// reports a sticky write failure: in-flight work keeps running (their
// transitions are best-effort records), but new submissions are shed
// with NORNS_EUNAVAILABLE until the probe loop sees the journal heal.
func (d *Daemon) noteJournalError() {
	if d.journal == nil || d.journal.WriteErr() == nil {
		return
	}
	if !d.degraded.Swap(true) {
		log.Printf("urd: journal degraded, shedding new submissions: %v", d.journal.WriteErr())
	}
}

// record journals a task state transition. Journaling is best-effort at
// this layer: an append failure costs restart fidelity, not correctness
// of the in-memory pipeline, so it is logged rather than propagated.
func (d *Daemon) record(id uint64, s task.Status, errMsg string) {
	if d.journal == nil {
		return
	}
	if err := d.journal.RecordState(id, s, errMsg); err != nil {
		log.Printf("urd: journal: task %d -> %s: %v", id, s, err)
		d.noteJournalError()
	}
}

// recordStats journals a state transition with its byte counters.
func (d *Daemon) recordStats(id uint64, st task.Stats) {
	if d.journal == nil {
		return
	}
	if err := d.journal.RecordStats(id, st); err != nil {
		log.Printf("urd: journal: task %d -> %s: %v", id, st.Status, err)
		d.noteJournalError()
	}
}

// recordSubmit journals a task submission (spec included, so the task
// can be rebuilt and re-run from the journal alone). Unlike the other
// record helpers the failure propagates: an acked submission that never
// reached the WAL would be silently lost by the next restart, so the
// submit path must roll back and shed instead of acking.
func (d *Daemon) recordSubmit(t *task.Task) error {
	if d.journal == nil {
		return nil
	}
	if err := d.journal.RecordSubmit(t.ID, task.SpecOf(t)); err != nil {
		d.noteJournalError()
		return fmt.Errorf("%w: journal: %v", errUnavailable, err)
	}
	return nil
}

// recordSubmitBatch journals a whole batch of submissions as one
// group-commit append — one disk round trip however large the batch.
// Like recordSubmit, a failure propagates so the batch is shed rather
// than acked-and-lost.
func (d *Daemon) recordSubmitBatch(tasks []*task.Task) error {
	if d.journal == nil || len(tasks) == 0 {
		return nil
	}
	ids := make([]uint64, len(tasks))
	specs := make([]task.Spec, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
		specs[i] = task.SpecOf(t)
	}
	if err := d.journal.RecordSubmitBatch(ids, specs); err != nil {
		d.noteJournalError()
		return fmt.Errorf("%w: journal: %v", errUnavailable, err)
	}
	return nil
}

// NodeName returns the configured node name.
func (d *Daemon) NodeName() string { return d.cfg.NodeName }

// FabricAddr returns the network manager's address ("" without fabric).
func (d *Daemon) FabricAddr() string {
	if d.net == nil {
		return ""
	}
	return d.net.Addr()
}

// Executor exposes the transfer executor (the slurm simulation reads its
// E.T.A. estimates).
func (d *Daemon) Executor() *transfer.Executor { return d.executor }

// routeKey identifies a dispatcher lane by its (input, output)
// dataspace pair. A comparable struct instead of a concatenated string:
// the submit path computes it once per task, and two string headers
// cost no allocation where the "in->out" concat allocated every time.
type routeKey struct {
	in, out string
}

// display renders the route for diagnostics ("lustre://->nvme0://").
func (k routeKey) display() string { return k.in + "->" + k.out }

// shardKey routes a task to its dispatcher lane by dataspace pair.
func shardKey(t *task.Task) routeKey {
	return routeKey{in: resourceKey(t.Input), out: resourceKey(t.Output)}
}

func resourceKey(r task.Resource) string {
	switch r.Kind {
	case task.Memory:
		return "mem"
	case task.LocalPath:
		return r.Dataspace
	case task.RemotePath:
		return r.Node + "@" + r.Dataspace
	default:
		return "-"
	}
}

// shardFor returns (creating if needed) the shard for key. Only the
// shard map is locked; queue operations behind it take the queue's own
// lock. Creation re-checks the closed flag under shardMu so a shard can
// never materialize after Close has snapshotted the map — its workers
// would otherwise outlive the drain.
func (d *Daemon) shardFor(key routeKey) (*shard, error) {
	d.shardMu.Lock()
	defer d.shardMu.Unlock()
	if sh, ok := d.shards[key]; ok {
		return sh, nil
	}
	if d.closed.Load() {
		return nil, queue.ErrClosed
	}
	sh := &shard{key: key.display(), q: queue.NewBounded(d.newPolicy(), d.cfg.MaxShardQueue)}
	d.shards[key] = sh
	for i := 0; i < d.workers; i++ {
		d.wg.Add(1)
		go d.worker(sh)
	}
	return sh, nil
}

// worker drains one shard's queue, mirroring the urd worker threads.
// Dispatch and completion are journaled around the transfer: a crash
// after the Running record but before the terminal one re-queues the
// task on restart (re-running the copy is idempotent).
func (d *Daemon) worker(sh *shard) {
	defer d.wg.Done()
	for {
		t := sh.q.Next()
		if t == nil {
			return
		}
		if d.draining.Load() && t.Status() == task.Pending {
			// Graceful drain: queued tasks are not started — they stay
			// journaled Pending and the next daemon's replay re-queues
			// them. The exiting daemon keeps their in-flight slots.
			continue
		}
		d.record(t.ID, task.Running, "")
		d.executor.Execute(d.ctx, t)
		st := t.Stats()
		if st.Status == task.Pending {
			// The Decide hook handed the task back for another attempt.
			// Its in-flight slot stays held across the backoff window so
			// admission still counts the retrying task.
			d.scheduleRetry(t, st)
			continue
		}
		if st.Status.Terminal() {
			d.recordStats(t.ID, st)
			d.hub.PublishState(t.ID, st)
			if st.Status == task.DeadLetter {
				d.dlAdd(t.ID)
			}
		}
		d.taskDone(t)
	}
}

// decideRetry is the executor's Decide hook — the daemon's retry
// policy. Only transient transport faults are retried: an app-level
// failure (bad path, permission, quota) fails identically on every
// attempt. The budget is the task's own RetryMax when set, the daemon
// default otherwise; once spent, the task is quarantined in the
// dead-letter state instead of failed, so an operator can inspect it
// and requeue via OpDeadletterRequeue.
func (d *Daemon) decideRetry(t *task.Task, err error) transfer.RetryDecision {
	if d.drainAbandon.Load() {
		// Drain deadline: the abort is ours, not the fabric's. Hand the
		// task back to Pending with its segment checkpoint so the next
		// daemon resumes it (scheduleRetry refunds the attempt).
		return transfer.DecideRetry
	}
	if d.closed.Load() || d.ctx.Err() != nil {
		return transfer.DecideFail
	}
	budget := uint64(t.RetryMax)
	if budget == 0 {
		if d.cfg.RetryMax <= 0 {
			return transfer.DecideFail
		}
		budget = uint64(d.cfg.RetryMax)
	}
	if !mercury.IsTransient(err) {
		return transfer.DecideFail
	}
	if t.Attempts() >= budget {
		return transfer.DecideDeadLetter
	}
	return transfer.DecideRetry
}

// Retry backoff defaults: 250ms base doubling per attempt, capped at
// 30s, jittered ±25% so a burst of same-fault retries spreads out.
const (
	defaultRetryBackoff = 250 * time.Millisecond
	maxRetryBackoff     = 30 * time.Second
)

func (d *Daemon) retryBackoffBase() time.Duration {
	if d.cfg.RetryBackoff > 0 {
		return d.cfg.RetryBackoff
	}
	return defaultRetryBackoff
}

// retryDelay computes the jittered exponential backoff after the
// attempts-th consecutive failure (attempts >= 1 when called).
func (d *Daemon) retryDelay(attempts uint64) time.Duration {
	base := d.retryBackoffBase()
	shift := attempts - 1
	if shift > 20 {
		shift = 20
	}
	delay := base << shift
	if delay <= 0 || delay > maxRetryBackoff {
		delay = maxRetryBackoff
	}
	if quarter := int64(delay / 4); quarter > 0 {
		delay += time.Duration(rand.Int63n(2*quarter+1) - quarter)
	}
	return delay
}

// scheduleRetry journals a retrying task's hand-back to Pending —
// attempt counter included, so a restart resumes the schedule even
// mid-backoff — and arms the timer that re-queues it. During shutdown
// no timer is armed: the journaled Pending record is the handoff to
// the next daemon.
func (d *Daemon) scheduleRetry(t *task.Task, st task.Stats) {
	attempts := st.Attempts
	if d.drainAbandon.Load() && attempts > 0 {
		// A drain abort is not a failed attempt: refund it.
		attempts--
		t.RestoreAttempts(attempts)
	}
	if d.journal != nil {
		if err := d.journal.RecordRetry(t.ID, attempts, st.Err); err != nil {
			log.Printf("urd: journal: retry %d: %v", t.ID, err)
			d.noteJournalError()
		}
	}
	d.hub.PublishState(t.ID, t.Stats())
	if d.closed.Load() {
		return
	}
	delay := d.retryDelay(st.Attempts)
	id := t.ID
	d.retryMu.Lock()
	if d.retryTimers == nil {
		d.retryTimers = make(map[uint64]*time.Timer)
	}
	d.retryTimers[id] = time.AfterFunc(delay, func() {
		d.retryMu.Lock()
		delete(d.retryTimers, id)
		d.retryMu.Unlock()
		d.requeueRetry(t)
	})
	d.retryMu.Unlock()
}

// requeueRetry puts a backed-off task back on its shard queue. A task
// cancelled during the backoff window releases its in-flight slot
// here — it sits in no queue, so nobody else will.
func (d *Daemon) requeueRetry(t *task.Task) {
	if d.closed.Load() {
		return // journaled Pending; the next daemon resumes it
	}
	if t.Status() != task.Pending {
		d.taskDone(t)
		return
	}
	sh, err := d.shardFor(shardKey(t))
	if err == nil {
		err = sh.q.Requeue(t)
	}
	if err != nil {
		if errors.Is(err, queue.ErrClosed) {
			return // raced a shutdown: same handoff as above
		}
		msg := "retry requeue: " + err.Error()
		if t.Fail(msg) == nil {
			d.recordStats(t.ID, t.Stats())
			d.hub.PublishState(t.ID, t.Stats())
		}
		d.taskDone(t)
	}
}

// stopRetryTimers halts pending backoff timers at shutdown. Their
// tasks are already journaled Pending (scheduleRetry records before
// arming), so the next daemon resumes the schedule.
func (d *Daemon) stopRetryTimers() {
	d.retryMu.Lock()
	for id, tm := range d.retryTimers {
		tm.Stop()
		delete(d.retryTimers, id)
	}
	d.retryMu.Unlock()
}

// dlAdd quarantines a task ID in the dead-letter set.
func (d *Daemon) dlAdd(id uint64) {
	d.dlMu.Lock()
	if d.dl == nil {
		d.dl = make(map[uint64]struct{})
	}
	d.dl[id] = struct{}{}
	d.dlMu.Unlock()
}

// dlForget drops a task from the dead-letter set (requeued, or retired
// from the task table).
func (d *Daemon) dlForget(id uint64) {
	d.dlMu.Lock()
	delete(d.dl, id)
	d.dlMu.Unlock()
}

// dlIDs snapshots the quarantined task IDs, sorted for stable output.
func (d *Daemon) dlIDs() []uint64 {
	d.dlMu.Lock()
	ids := make([]uint64, 0, len(d.dl))
	for id := range d.dl {
		ids = append(ids, id)
	}
	d.dlMu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (d *Daemon) dlCount() int {
	d.dlMu.Lock()
	defer d.dlMu.Unlock()
	return len(d.dl)
}

// journalProbeLoop periodically re-tests a degraded journal: when a
// probe flush-and-compact cycle succeeds (the disk healed), degrade
// mode lifts and submissions are accepted again.
func (d *Daemon) journalProbeLoop() {
	iv := d.cfg.JournalProbeInterval
	if iv <= 0 {
		iv = time.Second
	}
	tick := time.NewTicker(iv)
	defer tick.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-tick.C:
			if !d.degraded.Load() || d.closed.Load() {
				continue
			}
			if err := d.journal.Probe(); err != nil {
				continue
			}
			d.degraded.Store(false)
			log.Printf("urd: journal recovered, accepting submissions again")
		}
	}
}

// taskDone releases a task's in-flight slot once it can no longer run
// (executed to a terminal state, or removed from its queue) and folds
// its terminal outcome into the aggregate counters. The slot is
// released exactly once per admitted task — by the worker that executed
// it, or by the dequeue that removed it — so the accounting is
// exactly-once too.
func (d *Daemon) taskDone(t *task.Task) {
	d.inFlight.Add(-1)
	d.accountTerminal(t.Stats())
	d.retire(t.ID)
}

// defaultRetainTasks is the terminal-task retention bound when
// Config.RetainTasks is zero.
const defaultRetainTasks = 16384

// retainTasks resolves the configured in-memory terminal retention.
func (d *Daemon) retainTasks() int {
	if d.cfg.RetainTasks > 0 {
		return d.cfg.RetainTasks
	}
	return defaultRetainTasks
}

// retire records one more terminal task and, once the retention ring
// wraps, evicts the oldest one from the task table and the event hub's
// dedup state. Status queries for the evicted ID answer not-found from
// then on — the same answer a restart gives once the journal's
// RetainTerminal GC has retired it.
func (d *Daemon) retire(id uint64) {
	n := d.retainTasks()
	var evict uint64
	have := false
	d.retiredMu.Lock()
	if d.retired == nil {
		d.retired = make([]uint64, n)
	}
	slot := d.retiredN % n
	if d.retiredN >= n {
		evict, have = d.retired[slot], true
	}
	d.retired[slot] = id
	d.retiredN++
	d.retiredMu.Unlock()
	if have {
		d.tasks.Delete(evict)
		d.hub.ForgetTask(evict)
		d.dlForget(evict)
	}
}

// accountTerminal adds one terminal task's outcome to the atomic
// aggregates OpTransferStats reports, so that op is O(1) instead of a
// walk of the task table under a lock.
func (d *Daemon) accountTerminal(st task.Stats) {
	switch st.Status {
	case task.Finished:
		d.doneFinished.Add(1)
	case task.Failed:
		d.doneFailed.Add(1)
	case task.Cancelled:
		d.doneCancelled.Add(1)
	default:
		return
	}
	d.doneMoved.Add(st.MovedBytes)
}

// shardOf returns the shard a task routes to, or nil before any task
// for that route has been submitted.
func (d *Daemon) shardOf(t *task.Task) *shard {
	d.shardMu.Lock()
	defer d.shardMu.Unlock()
	return d.shards[shardKey(t)]
}

// dequeue removes a task from its shard queue if it is still pending
// there, releasing its in-flight slot. A racing worker that already
// popped the task releases the slot itself after Execute, so exactly
// one side accounts for it.
func (d *Daemon) dequeue(t *task.Task) {
	if sh := d.shardOf(t); sh != nil {
		if removed := sh.q.Remove(t.ID); removed != nil {
			d.taskDone(t)
		}
	}
}

// expireIfPast fails a still-pending task whose deadline has passed and
// frees its queue slot — the lazy enforcement point for deadlines that
// expire while the task waits behind a busy shard. Running tasks are
// handled by the executor's own deadline context.
func (d *Daemon) expireIfPast(t *task.Task) {
	if t.Deadline.IsZero() || time.Now().Before(t.Deadline) {
		return
	}
	if t.Status() != task.Pending {
		return
	}
	if err := t.Fail("deadline exceeded before start"); err == nil {
		d.record(t.ID, task.Failed, "deadline exceeded before start")
		d.hub.PublishState(t.ID, t.Stats())
		d.dequeue(t)
	}
}

// Close drains listeners, shards, workers and the fabric. In-flight
// transfers complete (or observe their own cancellation); queued tasks
// still execute, as before the shutdown — only new submissions fail.
func (d *Daemon) Close() { d.shutdown(0, false) }

// Shutdown is the graceful SIGTERM drain: admission stops, queued
// tasks are left journaled Pending for the next daemon (their segment
// checkpoints are already in the WAL), running transfers get up to
// timeout to finish — past it they are aborted and handed back to
// Pending with their checkpoints — and the journal is sealed with a
// clean-shutdown marker so the next replay starts fast and re-copies
// nothing that already landed. timeout <= 0 waits indefinitely for the
// running transfers.
func (d *Daemon) Shutdown(timeout time.Duration) { d.shutdown(timeout, true) }

func (d *Daemon) shutdown(timeout time.Duration, drain bool) {
	if d.closed.Swap(true) {
		<-d.done
		return
	}
	if drain {
		d.draining.Store(true)
	}
	// Backoff timers die first: their tasks are journaled Pending, and
	// a timer firing into closing queues would be pure noise.
	d.stopRetryTimers()
	d.shardMu.Lock()
	shards := make([]*shard, 0, len(d.shards))
	for _, sh := range d.shards {
		shards = append(shards, sh)
	}
	d.shardMu.Unlock()
	// The gateway goes first: HTTP requests dispatch into Handle, so no
	// new work (or SSE subscription) can arrive once it is down. Open
	// SSE streams are dropped — their hub subscriptions unwind via the
	// handlers' deferred unsubscribes.
	if d.gw != nil {
		d.gw.Close()
	}
	if d.userSrv != nil {
		d.userSrv.Close()
	}
	if d.ctlSrv != nil {
		d.ctlSrv.Close()
	}
	for _, sh := range shards {
		sh.q.Close()
	}
	if drain && timeout > 0 {
		// Bounded drain: wait for the running transfers up to the
		// deadline, then abort them. drainAbandon flips the Decide hook
		// so the aborts hand tasks back to Pending (checkpoint kept)
		// instead of failing them; the workers then journal the
		// hand-back and exit.
		drained := make(chan struct{})
		go func() {
			d.wg.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(timeout):
			log.Printf("urd: drain deadline (%s) expired, checkpointing in-flight tasks", timeout)
			d.drainAbandon.Store(true)
			d.stop()
			<-drained
		}
	} else {
		d.wg.Wait()
	}
	// After the drain: the workers have published their final terminal
	// events, so closing the hub now lets subscriber pumps flush them
	// before exiting (their connections are already gone if the
	// listeners closed above; pushes then fail harmlessly).
	d.hub.Close()
	d.stop()
	if d.net != nil {
		d.net.Close()
	}
	// Last, after the drained workers have journaled their terminal
	// transitions: compact and release the journal. A graceful drain
	// additionally seals it with the clean-shutdown marker — MarkClean
	// refuses if the journal is degraded, in which case the restart
	// replays the WAL the hard way, exactly as it should.
	if d.journal != nil {
		if drain {
			if err := d.journal.MarkClean(); err != nil {
				log.Printf("urd: journal: clean-shutdown marker: %v", err)
			}
		}
		if err := d.journal.Close(); err != nil {
			log.Printf("urd: journal: close: %v", err)
		}
	}
	close(d.done)
}

// Done returns a channel closed once Close has fully completed — the
// hook cmd/urd uses to exit when shutdown arrives over the control API
// instead of a signal.
func (d *Daemon) Done() <-chan struct{} { return d.done }

// buildTask validates and authorizes one submission, returning the
// constructed (not yet registered) task. Control callers bypass process
// authorization (admin == true).
func (d *Daemon) buildTask(spec *proto.TaskSpec, pid uint64, admin bool) (*task.Task, error) {
	return d.buildTaskID(spec, pid, admin, d.nextID.Add(1))
}

// buildTaskID is buildTask with the ID supplied by the caller, so a
// validate-only probe (ValidateSpec, the gateway's dry-run import) can
// run the full validation+authorization pipeline without consuming an
// ID — dry runs must mutate nothing, the ID counter included.
func (d *Daemon) buildTaskID(spec *proto.TaskSpec, pid uint64, admin bool, id uint64) (*task.Task, error) {
	in := spec.Input.ToResource()
	out := spec.Output.ToResource()

	t := task.New(id, task.Kind(spec.Kind), in, out)
	t.Priority = int(spec.Priority)
	t.JobID = spec.JobID
	if spec.DeadlineMS > 0 {
		t.Deadline = time.Now().Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	}
	if spec.MaxBps > 0 {
		t.MaxBps = spec.MaxBps
	}
	if spec.RetryMax > 0 {
		t.RetryMax = spec.RetryMax
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	// Authorization: local dataspaces the task touches must be allowed.
	var local []string
	if in.Kind == task.LocalPath {
		local = append(local, in.Dataspace)
	}
	if out.Kind == task.LocalPath {
		local = append(local, out.Dataspace)
	}
	if admin {
		if err := d.Controller.AuthorizeAdmin(local...); err != nil {
			return nil, fmt.Errorf("%w: %v", errNotFound, err)
		}
	} else {
		jid, err := d.Controller.Authorize(pid, local...)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errDenied, err)
		}
		t.JobID = jid
	}
	return t, nil
}

// admit claims one in-flight slot against the MaxInFlight gate. The
// CAS loop admits exactly up to the cap under concurrent submitters —
// a plain add-then-check could overshoot and shed load it already
// accepted.
func (d *Daemon) admit() error {
	max := int64(d.cfg.MaxInFlight)
	if max <= 0 {
		d.inFlight.Add(1)
		return nil
	}
	for {
		cur := d.inFlight.Load()
		if cur >= max {
			return fmt.Errorf("%w: %d tasks in flight", errBusy, d.cfg.MaxInFlight)
		}
		if d.inFlight.CompareAndSwap(cur, cur+1) {
			return nil
		}
	}
}

// enqueue makes a registered, journaled task runnable, rolling back the
// registration if the shard queue rejects it.
func (d *Daemon) enqueue(sh *shard, t *task.Task) error {
	// All-tasks subscribers see the submission; a racing worker may
	// already have advanced the task, which the hub's dedup absorbs.
	d.hub.PublishState(t.ID, task.Stats{Status: task.Pending})
	if err := sh.q.Submit(t); err != nil {
		d.tasks.Delete(t.ID)
		d.inFlight.Add(-1)
		// The client got an error; the journaled submission must not be
		// resurrected on restart.
		d.record(t.ID, task.Failed, "never enqueued: "+err.Error())
		d.hub.PublishState(t.ID, task.Stats{Status: task.Failed, Err: "never enqueued: " + err.Error()})
		if errors.Is(err, queue.ErrFull) {
			return fmt.Errorf("%w: shard %s at capacity", errBusy, sh.key)
		}
		return err
	}
	return nil
}

// Submit validates, registers, and enqueues a task, returning its ID.
// Control callers bypass process authorization (admin == true).
func (d *Daemon) Submit(spec *proto.TaskSpec, pid uint64, admin bool) (uint64, error) {
	t, err := d.buildTask(spec, pid, admin)
	if err != nil {
		return 0, err
	}
	if d.closed.Load() {
		return 0, queue.ErrClosed
	}
	if d.degraded.Load() {
		return 0, fmt.Errorf("%w: journal degraded (read-only)", errUnavailable)
	}
	if err := d.admit(); err != nil {
		return 0, err
	}
	sh, err := d.shardFor(shardKey(t))
	if err != nil {
		d.inFlight.Add(-1)
		return 0, err
	}
	d.tasks.Put(t)
	// WAL ordering: the submission is journaled before the task becomes
	// runnable, so a worker's Running record can never precede it. A
	// journal that cannot take the append sheds the submission instead
	// of acking work the next restart would forget.
	if err := d.recordSubmit(t); err != nil {
		d.tasks.Delete(t.ID)
		d.inFlight.Add(-1)
		return 0, err
	}
	if err := d.enqueue(sh, t); err != nil {
		return 0, err
	}
	return t.ID, nil
}

// SubmitBatch queues many tasks with per-entry acceptance: a full shard
// or an exhausted in-flight budget rejects that entry with its own
// status while the rest proceed. The batch amortizes the per-task
// bookkeeping the single-op path pays N times — the task registry is
// locked once per stripe (not once per task), and the journal records
// the whole batch as one group-commit flush. Results align with specs.
func (d *Daemon) SubmitBatch(specs []proto.TaskSpec, pid uint64, admin bool) []proto.SubmitResult {
	results, _ := d.submitBatch(specs, pid, admin, nil)
	return results
}

// submitBatch implements SubmitBatch. When subscribe is non-nil it runs
// after the accepted tasks are registered and journaled but BEFORE any
// of them becomes runnable — the one point where a subscription can be
// attached with zero chance of a missed event and zero need for
// snapshots (see EventHub.SubscribeSubmitted). It returns whatever
// subscription ID the hook yields.
func (d *Daemon) submitBatch(specs []proto.TaskSpec, pid uint64, admin bool, subscribe func(ids []uint64) uint64) ([]proto.SubmitResult, uint64) {
	results := make([]proto.SubmitResult, len(specs))
	accepted := make([]*task.Task, 0, len(specs))
	shards := make([]*shard, 0, len(specs))
	closed := d.closed.Load()
	var degradedErr error
	if d.degraded.Load() {
		degradedErr = fmt.Errorf("%w: journal degraded (read-only)", errUnavailable)
	}
	for i := range specs {
		if closed {
			results[i] = proto.SubmitResult{Status: uint32(statusOf(queue.ErrClosed)), Error: queue.ErrClosed.Error()}
			continue
		}
		if degradedErr != nil {
			results[i] = proto.SubmitResult{Status: uint32(statusOf(degradedErr)), Error: degradedErr.Error()}
			continue
		}
		t, err := d.buildTask(&specs[i], pid, admin)
		if err != nil {
			results[i] = proto.SubmitResult{Status: uint32(statusOf(err)), Error: err.Error()}
			continue
		}
		if err := d.admit(); err != nil {
			results[i] = proto.SubmitResult{Status: uint32(statusOf(err)), Error: err.Error()}
			continue
		}
		sh, err := d.shardFor(shardKey(t))
		if err != nil {
			d.inFlight.Add(-1)
			results[i] = proto.SubmitResult{Status: uint32(statusOf(err)), Error: err.Error()}
			continue
		}
		results[i] = proto.SubmitResult{TaskID: t.ID, Status: uint32(proto.Success)}
		accepted = append(accepted, t)
		shards = append(shards, sh)
	}
	// Register the whole batch stripe-by-stripe, then journal it as one
	// coalesced append before any entry becomes runnable (same WAL
	// ordering rule as the single-op path, amortized).
	d.tasks.PutBatch(accepted)
	if err := d.recordSubmitBatch(accepted); err != nil {
		// Nothing in the batch became runnable yet: unwind every
		// acceptance and shed the whole batch — an acked-but-unjournaled
		// task would be lost by the next restart.
		for _, t := range accepted {
			d.tasks.Delete(t.ID)
			d.inFlight.Add(-1)
		}
		for r := range results {
			if results[r].Status == uint32(proto.Success) {
				results[r] = proto.SubmitResult{Status: uint32(statusOf(err)), Error: err.Error()}
			}
		}
		return results, 0
	}
	var subID uint64
	if subscribe != nil && len(accepted) > 0 {
		ids := make([]uint64, len(accepted))
		for i, t := range accepted {
			ids[i] = t.ID
		}
		subID = subscribe(ids)
	}
	for i, t := range accepted {
		if err := d.enqueue(shards[i], t); err != nil {
			// enqueue rolled the entry back; surface its per-entry error.
			for r := range results {
				if results[r].TaskID == t.ID {
					results[r] = proto.SubmitResult{Status: uint32(statusOf(err)), Error: err.Error()}
					break
				}
			}
		}
	}
	return results, subID
}

// Cancel aborts a task, mirroring norns_cancel: a pending task is
// removed from its shard queue and terminates immediately; a running
// task is interrupted cooperatively at its next chunk boundary; a
// terminal task rejects. The returned stats are a snapshot taken right
// after the request (a running task may still be Cancelling in it).
func (d *Daemon) Cancel(id uint64) (task.Stats, error) {
	t, ok := d.tasks.Get(id)
	if !ok {
		return task.Stats{}, fmt.Errorf("%w: task %d", errNotFound, id)
	}
	if err := t.Cancel(); err != nil {
		return t.Stats(), fmt.Errorf("%w: %v", errBadRequest, err)
	}
	// Journal the observed post-cancel state: Cancelled for a pending
	// task, Cancelling for a running one (its worker journals the
	// terminal state when the interrupt is confirmed). The full stats
	// snapshot is recorded because a racing worker may already have
	// finalized the task — a terminal record is sticky in the journal,
	// so it must carry the real byte counters, not zeros.
	st := t.Stats()
	d.recordStats(id, st)
	d.hub.PublishState(id, st)
	// Free the queue slot if the task was still pending; a racing worker
	// that already popped it sees Start fail and releases the slot.
	d.dequeue(t)
	return t.Stats(), nil
}

// Task returns a registered task. One stripe read-lock — status polls
// never serialize behind submissions or each other.
func (d *Daemon) Task(id uint64) (*task.Task, error) {
	t, ok := d.tasks.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: task %d", errNotFound, id)
	}
	return t, nil
}

// PendingTasks returns the queue depth across all shards.
func (d *Daemon) PendingTasks() int {
	d.shardMu.Lock()
	shards := make([]*shard, 0, len(d.shards))
	for _, sh := range d.shards {
		shards = append(shards, sh)
	}
	d.shardMu.Unlock()
	n := 0
	for _, sh := range shards {
		n += sh.q.Len()
	}
	return n
}

// Shards returns the active dispatcher lanes and their queue depths,
// sorted by key (diagnostics and tests).
func (d *Daemon) Shards() map[string]int {
	d.shardMu.Lock()
	defer d.shardMu.Unlock()
	out := make(map[string]int, len(d.shards))
	for key, sh := range d.shards {
		out[key.display()] = sh.q.Len()
	}
	return out
}

// sentinel errors mapped to protocol status codes.
var (
	errBadRequest = errors.New("bad request")
	errNotFound   = errors.New("not found")
	errExists     = errors.New("already exists")
	errDenied     = errors.New("permission denied")
	errBusy       = errors.New("resource busy")
	// errUnavailable is the retryable shed: the daemon is degraded
	// (journal write failure) or shutting down, and the client should
	// try again later — possibly against a restarted daemon.
	errUnavailable = errors.New("temporarily unavailable")
)

func statusOf(err error) proto.StatusCode {
	switch {
	case err == nil:
		return proto.Success
	case errors.Is(err, errBadRequest), errors.Is(err, task.ErrBadTransition):
		return proto.EBadRequest
	case errors.Is(err, errNotFound), errors.Is(err, dataspace.ErrNotFound),
		errors.Is(err, dataspace.ErrJobNotFound), errors.Is(err, dataspace.ErrProcNotFound):
		return proto.ENotFound
	case errors.Is(err, errExists), errors.Is(err, dataspace.ErrExists),
		errors.Is(err, dataspace.ErrJobExists), errors.Is(err, dataspace.ErrProcExists):
		return proto.EExists
	case errors.Is(err, errDenied), errors.Is(err, dataspace.ErrDenied):
		return proto.EPermission
	case errors.Is(err, errBusy), errors.Is(err, queue.ErrFull):
		return proto.EAgain
	case errors.Is(err, errUnavailable), errors.Is(err, queue.ErrClosed),
		errors.Is(err, journal.ErrDegraded):
		return proto.EUnavailable
	case errors.Is(err, dataspace.ErrBadID), errors.Is(err, dataspace.ErrNilFS):
		return proto.EBadRequest
	default:
		return proto.EInternal
	}
}

func errResp(err error) *proto.Response {
	return &proto.Response{Status: statusOf(err), Error: err.Error()}
}

// Handle is the transport dispatch: it implements every protocol op.
// It is exported so tests and single-process simulations can drive the
// daemon without sockets.
func (d *Daemon) Handle(peer transport.PeerInfo, req *proto.Request) *proto.Response {
	if req.Op.Control() && !peer.Control {
		return &proto.Response{
			Status: proto.EPermission,
			Error:  fmt.Sprintf("op %s requires the control socket", req.Op),
		}
	}
	switch req.Op {
	case proto.OpPing:
		return &proto.Response{Status: proto.Success}
	case proto.OpStatus:
		return d.handleStatus()
	case proto.OpHealth:
		return d.handleHealth()
	case proto.OpDeadletterList:
		return d.handleDeadletterList()
	case proto.OpDeadletterRequeue:
		return d.handleDeadletterRequeue(req)
	case proto.OpSubmit:
		return d.handleSubmit(peer, req)
	case proto.OpSubmitBatch:
		return d.handleSubmitBatch(peer, req)
	case proto.OpSubscribe:
		return d.handleSubscribe(peer, req)
	case proto.OpUnsubscribe:
		return d.handleUnsubscribe(req)
	case proto.OpWait:
		return d.handleWait(req)
	case proto.OpTaskStatus:
		return d.handleTaskStatus(req)
	case proto.OpCancel:
		return d.handleCancel(peer, req)
	case proto.OpGetDataspaceInfo:
		return d.handleDataspaceInfo()
	case proto.OpRegisterDataspace:
		return d.handleRegisterDataspace(req)
	case proto.OpUpdateDataspace:
		return d.handleUpdateDataspace(req)
	case proto.OpUnregisterDataspace:
		return d.handleUnregisterDataspace(req)
	case proto.OpTrackDataspace:
		return d.handleTrackDataspace(req)
	case proto.OpTrackedNonEmpty:
		return d.handleTrackedNonEmpty()
	case proto.OpRegisterJob, proto.OpUpdateJob:
		return d.handleRegisterJob(req)
	case proto.OpUnregisterJob:
		return d.handleUnregisterJob(req)
	case proto.OpAddProcess:
		return d.handleAddProcess(req)
	case proto.OpRemoveProcess:
		return d.handleRemoveProcess(req)
	case proto.OpTransferStats:
		return d.handleTransferStats()
	case proto.OpShutdown:
		go d.Close()
		return &proto.Response{Status: proto.Success}
	default:
		return &proto.Response{Status: proto.EBadRequest, Error: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

// handleHealth is the readiness probe: Success while the daemon
// accepts new work, EUnavailable (retryable) while it sheds — degraded
// journal, draining, or closed. Liveness is implicit: a dead daemon
// answers nothing.
func (d *Daemon) handleHealth() *proto.Response {
	switch {
	case d.closed.Load():
		return &proto.Response{Status: proto.EUnavailable, Error: "daemon shutting down"}
	case d.degraded.Load():
		return &proto.Response{Status: proto.EUnavailable, Error: "journal degraded (read-only)"}
	default:
		return &proto.Response{Status: proto.Success}
	}
}

// handleDeadletterList reports the quarantined tasks: budget-exhausted
// transfers parked for operator inspection.
func (d *Daemon) handleDeadletterList() *proto.Response {
	resp := &proto.Response{Status: proto.Success}
	for _, id := range d.dlIDs() {
		t, ok := d.tasks.Get(id)
		if !ok {
			continue
		}
		st := t.Stats()
		if st.Status != task.DeadLetter {
			continue
		}
		resp.DeadLetters = append(resp.DeadLetters, proto.DeadLetterEntry{
			TaskID: id, Attempts: st.Attempts, Err: st.Err,
		})
	}
	return resp
}

// handleDeadletterRequeue resubmits one quarantined task (Request.
// TaskID) or all of them (TaskID == 0) as fresh tasks with fresh retry
// budgets. The quarantined originals stay in the table as an audit
// trail; they only leave the dead-letter listing.
func (d *Daemon) handleDeadletterRequeue(req *proto.Request) *proto.Response {
	ids := d.dlIDs()
	if req.TaskID != 0 {
		ids = []uint64{req.TaskID}
	}
	resp := &proto.Response{Status: proto.Success}
	for _, id := range ids {
		nid, err := d.requeueDeadLetter(id)
		if err != nil {
			// A targeted requeue reports its failure; the sweep skips
			// entries a concurrent operator already handled.
			if req.TaskID != 0 {
				return errResp(err)
			}
			continue
		}
		resp.TaskIDs = append(resp.TaskIDs, nid)
	}
	return resp
}

// requeueDeadLetter clones a quarantined task's spec into a fresh
// submission (new ID, zeroed attempt counter) and enqueues it through
// the normal admission path. Returns the fresh task's ID.
func (d *Daemon) requeueDeadLetter(id uint64) (uint64, error) {
	t, ok := d.tasks.Get(id)
	if !ok {
		return 0, fmt.Errorf("%w: task %d", errNotFound, id)
	}
	if t.Status() != task.DeadLetter {
		return 0, fmt.Errorf("%w: task %d is not dead-lettered", errBadRequest, id)
	}
	if d.closed.Load() {
		return 0, queue.ErrClosed
	}
	if d.degraded.Load() {
		return 0, fmt.Errorf("%w: journal degraded (read-only)", errUnavailable)
	}
	nt := task.SpecOf(t).Task(d.nextID.Add(1))
	if err := d.admit(); err != nil {
		return 0, err
	}
	sh, err := d.shardFor(shardKey(nt))
	if err != nil {
		d.inFlight.Add(-1)
		return 0, err
	}
	d.tasks.Put(nt)
	if err := d.recordSubmit(nt); err != nil {
		d.tasks.Delete(nt.ID)
		d.inFlight.Add(-1)
		return 0, err
	}
	if err := d.enqueue(sh, nt); err != nil {
		return 0, err
	}
	d.dlForget(id)
	return nt.ID, nil
}

func (d *Daemon) handleStatus() *proto.Response {
	nTasks := d.tasks.Len()
	d.shardMu.Lock()
	nShards := len(d.shards)
	d.shardMu.Unlock()
	pending := d.PendingTasks()
	info := fmt.Sprintf("%s node=%s policy=%s shards=%d pending=%d tasks=%d",
		Version, d.cfg.NodeName, d.policyName, nShards, pending, nTasks)
	rec := d.recovered
	if d.journal != nil {
		info += fmt.Sprintf(" recovered=%d", rec.Requeued())
		if d.recoveredClean {
			info += " clean"
		}
	}
	if d.degraded.Load() {
		info += " DEGRADED"
	}
	st := &proto.DaemonStatus{
		Version:            Version,
		Node:               d.cfg.NodeName,
		Policy:             d.policyName,
		Shards:             uint64(nShards),
		Pending:            uint64(pending),
		Tasks:              uint64(nTasks),
		Journal:            d.journal != nil,
		RecoveredPending:   uint64(rec.Pending),
		RecoveredRunning:   uint64(rec.Running),
		RecoveredCancelled: uint64(rec.Cancelled),
		RecoveredTerminal:  uint64(rec.Terminal),
		RecoveredClean:     d.recoveredClean,
		Degraded:           d.degraded.Load(),
		DeadLetterTasks:    uint64(d.dlCount()),
		RetryBackoffMS:     d.retryBackoffBase().Milliseconds(),
	}
	if d.cfg.RetryMax > 0 {
		st.RetryMax = uint64(d.cfg.RetryMax)
	}
	if d.net != nil {
		for _, b := range d.net.Breakers() {
			st.Breakers = append(st.Breakers, proto.BreakerState{
				Addr: b.Addr, State: b.State, Fails: b.Fails, Trips: b.Trips,
			})
		}
	}
	if tn := d.executor.Env.Tuner; tn != nil {
		st.Autotune = true
		for _, r := range tn.Snapshot() {
			st.AutotuneRoutes = append(st.AutotuneRoutes, proto.AutotuneRoute{
				In: r.In, Out: r.Out, Kind: r.Kind,
				Streams:    uint32(r.Streams),
				SegSize:    r.SegSize,
				GoodputBps: r.Goodput,
				Samples:    uint64(r.Samples),
				State:      r.State,
			})
		}
		info += " autotune=on"
	}
	if d.cache != nil {
		cs := d.cache.Stats()
		st.CacheEnabled = true
		st.CacheHits = cs.Hits
		st.CacheMisses = cs.Misses
		st.CacheEvictions = cs.Evictions
		st.CacheBytes = cs.Bytes
		st.CacheCapBytes = cs.CapBytes
		info += fmt.Sprintf(" cache=%d/%dMiB hits=%d misses=%d evicts=%d",
			cs.Bytes>>20, cs.CapBytes>>20, cs.Hits, cs.Misses, cs.Evictions)
	}
	return &proto.Response{
		Status:     proto.Success,
		DaemonInfo: info,
		StatusInfo: st,
	}
}

// handleTransferStats reports observed transfer performance so the
// scheduler can refine its staging estimates — the feedback loop the
// paper's conclusions call for. The terminal tallies come from the
// exactly-once atomic counters taskDone maintains, so this op is O(1):
// it no longer walks the task table under a lock (on a long-lived
// daemon that walk grew with history, and it serialized against the
// submit path). Counters are lifetime aggregates — compaction retiring
// old terminal tasks from the table no longer deflates them. Running is
// derived (admitted minus queued), so a racing dequeue can transiently
// skew it by one; it is a scheduler hint, not an invariant.
func (d *Daemon) handleTransferStats() *proto.Response {
	pending := d.PendingTasks()
	running := int(d.inFlight.Load()) - pending
	if running < 0 {
		running = 0
	}
	m := &proto.TransferMetrics{
		BandwidthBps: d.executor.ETA.Bandwidth(),
		Samples:      uint64(d.executor.ETA.Samples()),
		Pending:      uint64(pending),
		Running:      uint64(running),
		Finished:     d.doneFinished.Load(),
		Failed:       d.doneFailed.Load(),
		Cancelled:    d.doneCancelled.Load(),
		MovedBytes:   d.doneMoved.Load(),
	}
	return &proto.Response{Status: proto.Success, Metrics: m}
}

func (d *Daemon) handleSubmit(peer transport.PeerInfo, req *proto.Request) *proto.Response {
	if req.Task == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "submit without task"}
	}
	id, err := d.Submit(req.Task, req.PID, peer.Control)
	if err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success, TaskID: id}
}

// handleSubmitBatch queues N tasks from one RPC with per-entry
// acceptance: a full shard or an exhausted in-flight budget rejects
// that entry with its own status (EAgain for backpressure) while the
// rest of the batch proceeds. The response's Results align with the
// request's Tasks. The batch path amortizes registry locking (once per
// stripe) and the journal append (one group-commit flush) across the
// whole batch.
func (d *Daemon) handleSubmitBatch(peer transport.PeerInfo, req *proto.Request) *proto.Response {
	if len(req.Tasks) == 0 {
		return &proto.Response{Status: proto.EBadRequest, Error: "submit-batch without tasks"}
	}
	// Combined submit+subscribe: when the request carries a Subscribe
	// spec and the connection can take pushes, the subscription is
	// attached before the accepted tasks become runnable — one RPC
	// replaces the old submit-then-subscribe pair, and because nothing
	// can have transitioned yet, no per-task snapshot events are needed
	// at all. Clients detect support by SubID != 0 and fall back to the
	// separate OpSubscribe RPC against older daemons.
	var subscribe func(ids []uint64) uint64
	if req.Subscribe != nil && peer.Push != nil {
		subscribe = func(ids []uint64) uint64 {
			subID, err := d.hub.SubscribeSubmitted(req.Subscribe, ids,
				Pusher{Push: peer.Push, PushBatch: peer.PushBatch}, peer.Closed)
			if err != nil {
				return 0 // hub closing: the client falls back to OpSubscribe
			}
			return subID
		}
	}
	results, subID := d.submitBatch(req.Tasks, req.PID, peer.Control, subscribe)
	return &proto.Response{Status: proto.Success, Results: results, SubID: subID}
}

// handleSubscribe registers the connection for server-push task events.
// The subscription's pump writes Event frames (Seq 0) interleaved with
// this connection's pipelined responses until the task set terminates,
// the client unsubscribes, or the connection drops.
func (d *Daemon) handleSubscribe(peer transport.PeerInfo, req *proto.Request) *proto.Response {
	if req.Subscribe == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "subscribe without spec"}
	}
	if peer.Push == nil {
		return &proto.Response{Status: proto.EBadRequest,
			Error: "subscriptions need a push-capable connection"}
	}
	// Expire lapsed deadlines before the hub takes its lock: expireIfPast
	// publishes a state event, and the snapshot callback runs under the
	// hub lock where publishing would self-deadlock — so it must stay
	// pure (Task lookup + Stats only).
	for _, id := range req.Subscribe.TaskIDs {
		if t, err := d.Task(id); err == nil {
			d.expireIfPast(t)
		}
	}
	snapshot := func(id uint64) (task.Stats, error) {
		t, err := d.Task(id)
		if err != nil {
			return task.Stats{}, err
		}
		return t.Stats(), nil
	}
	subID, err := d.hub.Subscribe(req.Subscribe, snapshot,
		Pusher{Push: peer.Push, PushBatch: peer.PushBatch}, peer.Closed)
	if err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success, SubID: subID}
}

func (d *Daemon) handleUnsubscribe(req *proto.Request) *proto.Response {
	if err := d.hub.Unsubscribe(req.SubID); err != nil {
		return &proto.Response{Status: proto.ENotFound, Error: err.Error()}
	}
	return &proto.Response{Status: proto.Success}
}

// StatusPolls reports how many OpTaskStatus requests the daemon has
// served — zero for a client that tracks its tasks via subscriptions.
func (d *Daemon) StatusPolls() uint64 { return d.statusPolls.Load() }

func (d *Daemon) handleWait(req *proto.Request) *proto.Response {
	t, err := d.Task(req.TaskID)
	if err != nil {
		return errResp(err)
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	// A deadlined task must not keep its waiters blocked past the
	// deadline while it sits behind a busy shard: wait only until the
	// deadline, expire it if it is still pending, then resume waiting
	// for whatever terminal state results.
	if !t.Deadline.IsZero() && t.Status() == task.Pending {
		until := time.Until(t.Deadline)
		if until > 0 && (timeout <= 0 || until < timeout) {
			if !t.Wait(until) && timeout > 0 {
				timeout -= until
				if timeout <= 0 {
					return &proto.Response{Status: proto.ETimeout, TaskID: t.ID}
				}
			}
		}
		d.expireIfPast(t)
	}
	if !t.Wait(timeout) {
		return &proto.Response{Status: proto.ETimeout, TaskID: t.ID}
	}
	st := proto.FromStats(t.Stats())
	return &proto.Response{Status: proto.Success, TaskID: t.ID, Stats: &st}
}

func (d *Daemon) handleTaskStatus(req *proto.Request) *proto.Response {
	d.statusPolls.Add(1)
	t, err := d.Task(req.TaskID)
	if err != nil {
		return errResp(err)
	}
	d.expireIfPast(t)
	st := proto.FromStats(t.Stats())
	code := proto.Success
	if task.Status(st.Status) == task.Failed {
		code = proto.ETaskError
	}
	return &proto.Response{Status: code, TaskID: t.ID, Stats: &st}
}

func (d *Daemon) handleCancel(peer transport.PeerInfo, req *proto.Request) *proto.Response {
	// Cancellation is destructive, so unlike Wait/TaskStatus it is
	// authorized: user-socket callers may only cancel tasks belonging to
	// their own job. Control-socket callers cancel anything.
	if !peer.Control {
		t, err := d.Task(req.TaskID)
		if err != nil {
			return errResp(err)
		}
		jid, err := d.Controller.Authorize(req.PID)
		if err != nil {
			return errResp(fmt.Errorf("%w: %v", errDenied, err))
		}
		if jid != t.JobID {
			return errResp(fmt.Errorf("%w: task %d belongs to another job", errDenied, req.TaskID))
		}
	}
	stats, err := d.Cancel(req.TaskID)
	if err != nil {
		return errResp(err)
	}
	st := proto.FromStats(stats)
	return &proto.Response{Status: proto.Success, TaskID: req.TaskID, Stats: &st}
}

func (d *Daemon) handleDataspaceInfo() *proto.Response {
	resp := &proto.Response{Status: proto.Success}
	for _, id := range d.Controller.Spaces.List() {
		ds, err := d.Controller.Spaces.Get(id)
		if err != nil {
			continue
		}
		used, _ := ds.Usage()
		resp.Dataspaces = append(resp.Dataspaces, proto.DataspaceSpec{
			ID:        ds.ID,
			Backend:   uint32(ds.Backend.Kind),
			Mount:     ds.Backend.Mount,
			Capacity:  ds.Backend.Capacity,
			Track:     ds.Track,
			UsedBytes: used,
		})
	}
	return resp
}

// backendFromSpec builds a dataspace backend: a Mount selects a rooted
// OSFS (the real mount point of the tier); no Mount selects an
// in-memory FS (used by tests and the memory tier). The WrapFS fault
// hook (if any) wraps the result, so injected disk faults apply both to
// freshly registered dataspaces and to ones rebuilt at journal replay.
func (d *Daemon) backendFromSpec(spec *proto.DataspaceSpec) (dataspace.Backend, error) {
	b := dataspace.Backend{
		Kind:     dataspace.BackendKind(spec.Backend),
		Mount:    spec.Mount,
		Capacity: spec.Capacity,
	}
	if spec.Mount != "" {
		fs, err := storage.NewOSFS(spec.Mount)
		if err != nil {
			return b, err
		}
		b.FS = fs
	} else if spec.Capacity > 0 {
		b.FS = storage.NewMemFSWithCapacity(spec.Capacity)
	} else {
		b.FS = storage.NewMemFS()
	}
	b.FS = d.wrapFS(spec.ID, b.FS)
	return b, nil
}

func (d *Daemon) handleRegisterDataspace(req *proto.Request) *proto.Response {
	if req.Dataspace == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "register without dataspace"}
	}
	b, err := d.backendFromSpec(req.Dataspace)
	if err != nil {
		return errResp(err)
	}
	ds, err := d.Controller.Spaces.Register(req.Dataspace.ID, b)
	if err != nil {
		return errResp(err)
	}
	ds.Track = req.Dataspace.Track
	d.recordDataspace(req.Dataspace)
	return &proto.Response{Status: proto.Success}
}

// recordDataspace journals a dataspace configuration so recovered tasks
// find their tiers after a restart. Best-effort, like record.
func (d *Daemon) recordDataspace(spec *proto.DataspaceSpec) {
	if d.journal == nil {
		return
	}
	if err := d.journal.RecordDataspace(*spec); err != nil {
		log.Printf("urd: journal: dataspace %s: %v", spec.ID, err)
	}
}

func (d *Daemon) handleUpdateDataspace(req *proto.Request) *proto.Response {
	if req.Dataspace == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "update without dataspace"}
	}
	b, err := d.backendFromSpec(req.Dataspace)
	if err != nil {
		return errResp(err)
	}
	if err := d.Controller.Spaces.Update(req.Dataspace.ID, b); err != nil {
		return errResp(err)
	}
	d.recordDataspace(req.Dataspace)
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleUnregisterDataspace(req *proto.Request) *proto.Response {
	if req.Dataspace == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "unregister without dataspace"}
	}
	if err := d.Controller.Spaces.Unregister(req.Dataspace.ID); err != nil {
		return errResp(err)
	}
	if d.journal != nil {
		if err := d.journal.RecordDataspaceRemoved(req.Dataspace.ID); err != nil {
			log.Printf("urd: journal: dataspace %s: %v", req.Dataspace.ID, err)
		}
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleTrackDataspace(req *proto.Request) *proto.Response {
	if req.Dataspace == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "track without dataspace"}
	}
	if err := d.Controller.Spaces.SetTrack(req.Dataspace.ID, req.Track); err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleTrackedNonEmpty() *proto.Response {
	ids, err := d.Controller.Spaces.NonEmptyTracked()
	if err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success, NonEmpty: ids}
}

func (d *Daemon) handleRegisterJob(req *proto.Request) *proto.Response {
	if req.Job == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "register without job"}
	}
	job := dataspace.Job{ID: req.Job.ID, Hosts: req.Job.Hosts}
	for _, l := range req.Job.Limits {
		job.Limits = append(job.Limits, dataspace.JobLimits{Dataspace: l.Dataspace, Quota: l.Quota})
	}
	var err error
	if req.Op == proto.OpRegisterJob {
		err = d.Controller.RegisterJob(job)
	} else {
		err = d.Controller.UpdateJob(job)
	}
	if err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleUnregisterJob(req *proto.Request) *proto.Response {
	if req.Job == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "unregister without job"}
	}
	if err := d.Controller.UnregisterJob(req.Job.ID); err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleAddProcess(req *proto.Request) *proto.Response {
	if req.Proc == nil || req.Job == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "add-process needs job and proc"}
	}
	p := dataspace.Proc{PID: req.Proc.PID, UID: req.Proc.UID, GID: req.Proc.GID}
	if err := d.Controller.AddProcess(req.Job.ID, p); err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}

func (d *Daemon) handleRemoveProcess(req *proto.Request) *proto.Response {
	if req.Proc == nil || req.Job == nil {
		return &proto.Response{Status: proto.EBadRequest, Error: "remove-process needs job and proc"}
	}
	p := dataspace.Proc{PID: req.Proc.PID, UID: req.Proc.UID, GID: req.Proc.GID}
	if err := d.Controller.RemoveProcess(req.Job.ID, p); err != nil {
		return errResp(err)
	}
	return &proto.Response{Status: proto.Success}
}
