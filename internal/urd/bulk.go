package urd

import (
	"fmt"

	"github.com/ngioproject/norns-go/internal/api/apierr"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/queue"
	"github.com/ngioproject/norns-go/internal/task"
)

// This file is the daemon surface behind the HTTP gateway's bulk
// endpoints: spec validation without side effects (dry-run import),
// task-table iteration (NDJSON export), and the staged all-or-nothing
// batch (atomic import). Errors cross the package boundary as
// *apierr.Error so the gateway maps them to HTTP statuses without
// importing urd's private sentinels.

// typedErr wraps a daemon error with its protocol status code.
func typedErr(err error) error {
	if err == nil {
		return nil
	}
	return &apierr.Error{API: "urd", Code: statusOf(err), Msg: err.Error()}
}

// ValidateSpec runs one submission through the full validation and
// authorization pipeline without submitting it — no ID is allocated, no
// task registered, nothing journaled. It backs the import endpoint's
// dry_run mode, which must provably mutate nothing.
func (d *Daemon) ValidateSpec(spec *proto.TaskSpec, pid uint64, admin bool) error {
	_, err := d.buildTaskID(spec, pid, admin, 0)
	return typedErr(err)
}

// HasTask reports whether id resolves in the task table (one stripe
// read-lock). The import endpoint's dedupe modes key on it.
func (d *Daemon) HasTask(id uint64) bool {
	_, ok := d.tasks.Get(id)
	return ok
}

// RangeTasks calls fn for every registered task, one registry stripe at
// a time — the export endpoint streams the table without ever holding
// more than one stripe's tasks under a lock. fn must not call back into
// the daemon's task paths. Iteration is not a consistent snapshot;
// tasks submitted or retired mid-walk may or may not appear.
func (d *Daemon) RangeTasks(fn func(t *task.Task)) {
	d.tasks.Range(fn)
}

// admitN claims n in-flight slots against the MaxInFlight gate, all or
// none — the admission step of an atomic batch. Same CAS discipline as
// admit: concurrent submitters can never overshoot the cap.
func (d *Daemon) admitN(n int64) error {
	max := int64(d.cfg.MaxInFlight)
	if max <= 0 {
		d.inFlight.Add(n)
		return nil
	}
	for {
		cur := d.inFlight.Load()
		if cur+n > max {
			return fmt.Errorf("%w: batch of %d exceeds %d tasks in flight", errBusy, n, d.cfg.MaxInFlight)
		}
		if d.inFlight.CompareAndSwap(cur, cur+n) {
			return nil
		}
	}
}

// SubmitBatchAtomic queues a batch all-or-nothing: every spec is
// validated and authorized, the whole batch is admitted against
// MaxInFlight in one step, and only then is anything registered — the
// staged batch lands in the registry and the journal as one group-
// commit append, so a failure at any earlier stage leaves no partial
// batch visible in either, even across a restart. Accepted tasks are
// enqueued past the shard bound (like journal recovery: the batch was
// already admitted once, entries must not be shed piecemeal).
//
// The returned error is an *apierr.Error carrying the protocol status
// of the first failure (EBadRequest for a bad spec, EAgain when the
// batch does not fit the in-flight budget, ...).
func (d *Daemon) SubmitBatchAtomic(specs []proto.TaskSpec, pid uint64, admin bool) ([]uint64, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if d.closed.Load() {
		return nil, typedErr(queue.ErrClosed)
	}
	// Stage 1: build every task. Nothing is held yet, so the first bad
	// spec aborts with zero rollback. IDs allocated for a batch that
	// later fails admission are gaps, exactly like a rejected single
	// submit.
	tasks := make([]*task.Task, len(specs))
	for i := range specs {
		t, err := d.buildTask(&specs[i], pid, admin)
		if err != nil {
			return nil, typedErr(fmt.Errorf("entry %d: %w", i, err))
		}
		tasks[i] = t
	}
	// Stage 2: admit the whole batch or none of it.
	if err := d.admitN(int64(len(tasks))); err != nil {
		return nil, typedErr(err)
	}
	// Stage 3: resolve shards (creating lanes as needed) before anything
	// becomes visible, so a shard failure can still unwind cleanly.
	shards := make([]*shard, len(tasks))
	for i, t := range tasks {
		sh, err := d.shardFor(shardKey(t))
		if err != nil {
			d.inFlight.Add(-int64(len(tasks)))
			return nil, typedErr(err)
		}
		shards[i] = sh
	}
	// Stage 4: the batch becomes visible as one unit — registry stripes
	// locked once each, one journal append (WAL ordering: journaled
	// before any entry is runnable).
	d.tasks.PutBatch(tasks)
	d.recordSubmitBatch(tasks)
	ids := make([]uint64, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
		d.hub.PublishState(t.ID, task.Stats{Status: task.Pending})
		if err := shards[i].q.Requeue(t); err != nil {
			// Only a closing daemon rejects Requeue. The batch is already
			// durable; mark the stragglers failed the way enqueue does so
			// no journaled submission resurrects as runnable on restart.
			d.tasks.Delete(t.ID)
			d.inFlight.Add(-1)
			d.record(t.ID, task.Failed, "never enqueued: "+err.Error())
			d.hub.PublishState(t.ID, task.Stats{Status: task.Failed, Err: "never enqueued: " + err.Error()})
		}
	}
	return ids, nil
}
