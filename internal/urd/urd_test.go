package urd

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/api/norns"
	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
)

// testNode is one simulated compute node: a daemon with user+control
// sockets and connected clients.
type testNode struct {
	d    *Daemon
	user *norns.Client
	ctl  *nornsctl.Client
}

func startNode(t *testing.T, name string, resolver *StaticResolver) *testNode {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		NodeName:      name,
		UserSocket:    filepath.Join(dir, "user.sock"),
		ControlSocket: filepath.Join(dir, "ctl.sock"),
		Workers:       2,
	}
	if resolver != nil {
		cfg.Fabric = "ofi+tcp"
		cfg.Resolver = resolver
		// Exercise the hung-peer protection paths (per-RPC deadlines and
		// the send watchdog) on every fabric test.
		cfg.RPCTimeout = 30 * time.Second
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if resolver != nil {
		resolver.Set(name, d.FabricAddr())
	}
	user, err := norns.Dial(cfg.UserSocket)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { user.Close() })
	ctl, err := nornsctl.Dial(cfg.ControlSocket)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	return &testNode{d: d, user: user, ctl: ctl}
}

func TestPingAndStatus(t *testing.T) {
	n := startNode(t, "node1", nil)
	if err := n.ctl.Ping(); err != nil {
		t.Fatal(err)
	}
	status, err := n.ctl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "urd/2.0") || !strings.Contains(status, "node1") {
		t.Fatalf("status = %q", status)
	}
}

func TestControlOpsRejectedOnUserSocket(t *testing.T) {
	n := startNode(t, "node1", nil)
	// Craft a control op through the user client's connection by using
	// the daemon handler contract: dial the user socket with a ctl client.
	cfg := n.d.cfg
	ctlOnUser, err := nornsctl.Dial(cfg.UserSocket)
	if err != nil {
		t.Fatal(err)
	}
	defer ctlOnUser.Close()
	err = ctlOnUser.RegisterDataspace(nornsctl.DataspaceDef{ID: "x://", Backend: nornsctl.BackendMemory})
	if err == nil || !strings.Contains(err.Error(), "EPERMISSION") {
		t.Fatalf("control op on user socket: %v", err)
	}
}

func setupJob(t *testing.T, n *testNode, jobID, pid uint64, spaces ...string) {
	t.Helper()
	var limits []nornsctl.JobLimit
	for _, s := range spaces {
		limits = append(limits, nornsctl.JobLimit{Dataspace: s})
	}
	if err := n.ctl.RegisterJob(nornsctl.JobDef{ID: jobID, Hosts: []string{n.d.NodeName()}, Limits: limits}); err != nil {
		t.Fatal(err)
	}
	if err := n.ctl.AddProcess(jobID, nornsctl.ProcDef{PID: pid, UID: 1000, GID: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestUserSubmitCopyMemToLocal(t *testing.T) {
	n := startNode(t, "node1", nil)
	if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	setupJob(t, n, 1, 4242, "tmp0://")
	n.user.SetPID(4242)

	// This is Listing 2: define, submit, wait, check.
	data := []byte("buffer offload payload")
	tk := norns.NewIOTask(norns.Copy, norns.MemoryRegion(data), norns.PosixPath("tmp0://", "path/to/output"))
	if err := n.user.Submit(&tk); err != nil {
		t.Fatalf("norns_submit failed: %v", err)
	}
	if tk.ID == 0 {
		t.Fatal("submit did not assign a task ID")
	}
	if err := n.user.Wait(&tk, 5*time.Second); err != nil {
		t.Fatalf("norns_wait failed: %v", err)
	}
	stats, err := n.user.Error(&tk)
	if err != nil {
		t.Fatalf("norns_error failed: %v", err)
	}
	if stats.Status != task.Finished {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.MovedBytes != int64(len(data)) {
		t.Fatalf("moved %d bytes, want %d", stats.MovedBytes, len(data))
	}
	ds, err := n.d.Controller.Spaces.Get("tmp0://")
	if err != nil {
		t.Fatal(err)
	}
	r, err := ds.Backend.FS.Open("path/to/output")
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

func TestUnauthorizedSubmitRejected(t *testing.T) {
	n := startNode(t, "node1", nil)
	if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	// No job registered for this PID.
	n.user.SetPID(999)
	tk := norns.NewIOTask(norns.Copy, norns.MemoryRegion([]byte("x")), norns.PosixPath("tmp0://", "f"))
	err := n.user.Submit(&tk)
	if err == nil || !strings.Contains(err.Error(), "EPERMISSION") {
		t.Fatalf("unauthorized submit: %v", err)
	}
}

func TestSubmitToForbiddenDataspaceRejected(t *testing.T) {
	n := startNode(t, "node1", nil)
	for _, id := range []string{"tmp0://", "secret://"} {
		if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: id, Backend: nornsctl.BackendMemory}); err != nil {
			t.Fatal(err)
		}
	}
	setupJob(t, n, 1, 100, "tmp0://") // job may not use secret://
	n.user.SetPID(100)
	tk := norns.NewIOTask(norns.Copy, norns.MemoryRegion([]byte("x")), norns.PosixPath("secret://", "f"))
	if err := n.user.Submit(&tk); err == nil || !strings.Contains(err.Error(), "EPERMISSION") {
		t.Fatalf("forbidden dataspace submit: %v", err)
	}
}

func TestAdminSubmitBypassesJobAuth(t *testing.T) {
	n := startNode(t, "node1", nil)
	if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	id, err := n.ctl.Submit(task.Copy, task.MemoryRegion([]byte("staged")), task.PosixPath("tmp0://", "in/staged"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := n.ctl.Wait(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != task.Finished {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWaitTimeout(t *testing.T) {
	n := startNode(t, "node1", nil)
	if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	// Submit against a missing remote node so the task stays failed...
	// Instead use a task that waits in queue: saturate workers with big
	// transfers is racy; simply wait on a nonexistent task.
	_, err := n.ctl.Wait(9999, 10*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "ENOTFOUND") {
		t.Fatalf("wait on unknown task: %v", err)
	}
}

func TestTaskFailureReportedThroughAPI(t *testing.T) {
	n := startNode(t, "node1", nil)
	if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	// Remove of a nonexistent path fails at execution time.
	id, err := n.ctl.Submit(task.Remove, task.PosixPath("tmp0://", "ghost"), task.Resource{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := n.ctl.Wait(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != task.Failed || st.Err == "" {
		t.Fatalf("stats = %+v", st)
	}
	// norns_error on the failed task returns ETASKERROR semantics.
	ts, err := n.ctl.TaskStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Status != task.Failed {
		t.Fatalf("TaskStatus = %+v", ts)
	}
}

func TestGetDataspaceInfo(t *testing.T) {
	n := startNode(t, "node1", nil)
	defs := []nornsctl.DataspaceDef{
		{ID: "lustre://", Backend: nornsctl.BackendParallelFS},
		{ID: "nvme0://", Backend: nornsctl.BackendNVM, Capacity: 3 << 30},
	}
	for _, def := range defs {
		if err := n.ctl.RegisterDataspace(def); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := n.user.GetDataspaceInfo()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("infos = %+v", infos)
	}
	if infos[0].ID != "lustre://" || infos[1].ID != "nvme0://" {
		t.Fatalf("IDs = %v, %v", infos[0].ID, infos[1].ID)
	}
	if infos[1].Capacity != 3<<30 {
		t.Fatalf("capacity = %d", infos[1].Capacity)
	}
}

func TestDataspaceLifecycleOverAPI(t *testing.T) {
	n := startNode(t, "node1", nil)
	def := nornsctl.DataspaceDef{ID: "nvme0://", Backend: nornsctl.BackendNVM}
	if err := n.ctl.RegisterDataspace(def); err != nil {
		t.Fatal(err)
	}
	if err := n.ctl.RegisterDataspace(def); err == nil || !strings.Contains(err.Error(), "EEXISTS") {
		t.Fatalf("duplicate register: %v", err)
	}
	if err := n.ctl.UpdateDataspace(def); err != nil {
		t.Fatal(err)
	}
	if err := n.ctl.UnregisterDataspace("nvme0://"); err != nil {
		t.Fatal(err)
	}
	if err := n.ctl.UnregisterDataspace("nvme0://"); err == nil || !strings.Contains(err.Error(), "ENOTFOUND") {
		t.Fatalf("double unregister: %v", err)
	}
}

func TestTrackedDataspaceOverAPI(t *testing.T) {
	n := startNode(t, "node1", nil)
	if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "nvme0://", Backend: nornsctl.BackendNVM}); err != nil {
		t.Fatal(err)
	}
	if err := n.ctl.TrackDataspace("nvme0://", true); err != nil {
		t.Fatal(err)
	}
	ids, err := n.ctl.TrackedNonEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("fresh dataspace non-empty: %v", ids)
	}
	// Leave data behind via an admin task, then the node-release check
	// must flag it.
	id, err := n.ctl.Submit(task.Copy, task.MemoryRegion([]byte("left")), task.PosixPath("nvme0://", "leftover"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ctl.Wait(id, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	ids, err = n.ctl.TrackedNonEmpty()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "nvme0://" {
		t.Fatalf("TrackedNonEmpty = %v", ids)
	}
}

func TestNodeToNodeTransfer(t *testing.T) {
	resolver := NewStaticResolver()
	n1 := startNode(t, "node1", resolver)
	n2 := startNode(t, "node2", resolver)
	for _, n := range []*testNode{n1, n2} {
		if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "nvme0://", Backend: nornsctl.BackendNVM}); err != nil {
			t.Fatal(err)
		}
	}
	payload := bytes.Repeat([]byte("inter-node"), 200000) // ~2 MB

	// Stage the payload onto node1 (admin task).
	id, err := n1.ctl.Submit(task.Copy, task.MemoryRegion(payload), task.PosixPath("nvme0://", "out/data.bin"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := n1.ctl.Wait(id, 10*time.Second); err != nil || st.Status != task.Finished {
		t.Fatalf("stage to node1: %+v, %v", st, err)
	}

	// node1 pushes to node2 (local path => remote path).
	id, err = n1.ctl.Submit(task.Copy,
		task.PosixPath("nvme0://", "out/data.bin"),
		task.RemotePosixPath("node2", "nvme0://", "in/data.bin"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := n1.ctl.Wait(id, 30*time.Second)
	if err != nil || st.Status != task.Finished {
		t.Fatalf("push to node2: %+v, %v", st, err)
	}
	if st.MovedBytes != int64(len(payload)) {
		t.Fatalf("moved %d, want %d", st.MovedBytes, len(payload))
	}
	ds, err := n2.d.Controller.Spaces.Get("nvme0://")
	if err != nil {
		t.Fatal(err)
	}
	fi, err := ds.Backend.FS.Stat("in/data.bin")
	if err != nil || fi.Size != int64(len(payload)) {
		t.Fatalf("node2 file: %+v, %v", fi, err)
	}

	// node2 pulls back from node1 (remote path => local path).
	id, err = n2.ctl.Submit(task.Copy,
		task.RemotePosixPath("node1", "nvme0://", "out/data.bin"),
		task.PosixPath("nvme0://", "pulled/data.bin"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err = n2.ctl.Wait(id, 30*time.Second)
	if err != nil || st.Status != task.Finished || st.MovedBytes != int64(len(payload)) {
		t.Fatalf("pull from node1: %+v, %v", st, err)
	}
}

func TestMoveToRemoteNode(t *testing.T) {
	resolver := NewStaticResolver()
	n1 := startNode(t, "node1", resolver)
	n2 := startNode(t, "node2", resolver)
	for _, n := range []*testNode{n1, n2} {
		if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "nvme0://", Backend: nornsctl.BackendNVM}); err != nil {
			t.Fatal(err)
		}
	}
	id, err := n1.ctl.Submit(task.Copy, task.MemoryRegion([]byte("move me")), task.PosixPath("nvme0://", "f"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n1.ctl.Wait(id, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id, err = n1.ctl.Submit(task.Move, task.PosixPath("nvme0://", "f"), task.RemotePosixPath("node2", "nvme0://", "f"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := n1.ctl.Wait(id, 10*time.Second)
	if err != nil || st.Status != task.Finished {
		t.Fatalf("move: %+v, %v", st, err)
	}
	ds, _ := n1.d.Controller.Spaces.Get("nvme0://")
	if _, err := ds.Backend.FS.Stat("f"); err == nil {
		t.Fatal("move left the source behind")
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	n := startNode(t, "node1", nil)
	if err := n.ctl.RegisterDataspace(nornsctl.DataspaceDef{ID: "tmp0://", Backend: nornsctl.BackendMemory}); err != nil {
		t.Fatal(err)
	}
	const clients, tasksEach = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			for i := 0; i < tasksEach; i++ {
				id, err := n.ctl.Submit(task.Copy,
					task.MemoryRegion([]byte(fmt.Sprintf("c%d-%d", cid, i))),
					task.PosixPath("tmp0://", fmt.Sprintf("c%d/f%d", cid, i)), 0, 0)
				if err != nil {
					errs <- err
					return
				}
				if st, err := n.ctl.Wait(id, 10*time.Second); err != nil || st.Status != task.Finished {
					errs <- fmt.Errorf("task %d: %+v, %v", id, st, err)
					return
				}
			}
		}(cid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ds, _ := n.d.Controller.Spaces.Get("tmp0://")
	files, err := ds.Backend.FS.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != clients*tasksEach {
		t.Fatalf("%d files, want %d", len(files), clients*tasksEach)
	}
}

func TestInProcessHandleNoSockets(t *testing.T) {
	// The daemon is drivable without sockets, which the slurm simulation
	// and benchmarks rely on.
	d, err := New(Config{NodeName: "inproc", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp := d.Handle(peerCtl(), &proto.Request{Op: proto.OpPing})
	if resp.Status != proto.Success {
		t.Fatalf("ping = %+v", resp)
	}
	resp = d.Handle(peerCtl(), &proto.Request{
		Op:        proto.OpRegisterDataspace,
		Dataspace: &proto.DataspaceSpec{ID: "m://", Backend: 5},
	})
	if resp.Status != proto.Success {
		t.Fatalf("register = %+v", resp)
	}
}

func TestInvalidTaskRejected(t *testing.T) {
	d, err := New(Config{NodeName: "n", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Memory output is unsupported.
	spec := &proto.TaskSpec{
		Kind:   uint32(task.Copy),
		Input:  proto.FromResource(task.PosixPath("d://", "p")),
		Output: proto.FromResource(task.MemoryRegion(make([]byte, 4))),
	}
	if _, err := d.Submit(spec, 0, true); !errors.Is(err, errBadRequest) {
		t.Fatalf("invalid task submit: %v", err)
	}
}

func TestStaticResolver(t *testing.T) {
	r := NewStaticResolver()
	if _, err := r.Resolve("ghost"); err == nil {
		t.Fatal("unknown node resolved")
	}
	r.Set("n1", "127.0.0.1:9")
	addr, err := r.Resolve("n1")
	if err != nil || addr != "127.0.0.1:9" {
		t.Fatalf("Resolve = %q, %v", addr, err)
	}
}

func peerCtl() (p transportPeer) { return transportPeer{Control: true} }

// transportPeer aliases transport.PeerInfo for brevity in tests.
type transportPeer = transport.PeerInfo
