// Package urd implements the NORNS resource-control daemon that runs on
// every compute node: the accept loop on the control and user sockets,
// the pending-task queue and its scheduler, the worker pool, the job &
// dataspace controller, the completion registry, and the network manager
// that executes node-to-node transfers over Mercury RPCs and bulk
// (RDMA-style) pulls.
package urd

import (
	"fmt"
	"io"
	"sync"

	"github.com/ngioproject/norns-go/internal/dataspace"
	"github.com/ngioproject/norns-go/internal/mercury"
	"github.com/ngioproject/norns-go/internal/transfer"
	"github.com/ngioproject/norns-go/internal/wire"
)

// RPC names exchanged between urd network managers.
const (
	rpcStat    = "norns.stat"    // query_target: size of a remote file
	rpcExpose  = "norns.expose"  // expose a file for bulk pull, returns handle
	rpcRelease = "norns.release" // release an exposed handle
	rpcPull    = "norns.pull"    // ask the peer to pull a handle into its dataspace
)

// fileRef names a file inside a dataspace on the wire.
type fileRef struct {
	Dataspace string
	Path      string
}

func (f *fileRef) MarshalWire(e *wire.Encoder) {
	e.String(1, f.Dataspace)
	e.String(2, f.Path)
}

func (f *fileRef) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			f.Dataspace = d.String()
		case 2:
			f.Path = d.String()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

type sizeResp struct {
	Size int64
}

func (s *sizeResp) MarshalWire(e *wire.Encoder) { e.Int64(1, s.Size) }
func (s *sizeResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			s.Size = d.Int64()
		} else {
			d.Skip()
		}
	}
	return d.Err()
}

type handleResp struct {
	Handle mercury.BulkHandle
}

func (h *handleResp) MarshalWire(e *wire.Encoder) { e.Message(1, &h.Handle) }
func (h *handleResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			d.Message(&h.Handle)
		} else {
			d.Skip()
		}
	}
	return d.Err()
}

type pullReq struct {
	Handle mercury.BulkHandle
	Dst    fileRef
}

func (p *pullReq) MarshalWire(e *wire.Encoder) {
	e.Message(1, &p.Handle)
	e.Message(2, &p.Dst)
}

func (p *pullReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			d.Message(&p.Handle)
		case 2:
			d.Message(&p.Dst)
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// NodeResolver maps cluster node names to mercury addresses. slurmctld
// populates it as nodes register.
type NodeResolver interface {
	Resolve(node string) (string, error)
}

// StaticResolver is a map-backed NodeResolver.
type StaticResolver struct {
	mu    sync.RWMutex
	addrs map[string]string
}

// NewStaticResolver returns an empty resolver.
func NewStaticResolver() *StaticResolver {
	return &StaticResolver{addrs: make(map[string]string)}
}

// Set maps node to a mercury address.
func (r *StaticResolver) Set(node, addr string) {
	r.mu.Lock()
	r.addrs[node] = addr
	r.mu.Unlock()
}

// Resolve implements NodeResolver.
func (r *StaticResolver) Resolve(node string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	addr, ok := r.addrs[node]
	if !ok {
		return "", fmt.Errorf("urd: unknown node %q", node)
	}
	return addr, nil
}

// NetManager is the urd network manager: it serves peer RPCs against the
// local dataspaces and implements transfer.Remote for outbound
// node-to-node transfers.
type NetManager struct {
	class    *mercury.Class
	spaces   *dataspace.Registry
	resolver NodeResolver

	mu      sync.Mutex
	exposed map[uint64]io.Closer
}

// NewNetManager builds a network manager over the given mercury plugin,
// listening on listenAddr ("" picks an ephemeral address).
func NewNetManager(plugin, listenAddr string, spaces *dataspace.Registry, resolver NodeResolver) (*NetManager, error) {
	class, err := mercury.NewClass(plugin)
	if err != nil {
		return nil, err
	}
	nm := &NetManager{class: class, spaces: spaces, resolver: resolver, exposed: make(map[uint64]io.Closer)}
	nm.registerRPCs()
	if _, err := class.Listen(listenAddr); err != nil {
		return nil, err
	}
	return nm, nil
}

// Addr returns the manager's mercury listen address.
func (nm *NetManager) Addr() string { return nm.class.Addr() }

// SetBulkChunk adjusts the bulk chunk size (ablation benchmarks).
func (nm *NetManager) SetBulkChunk(n int) { nm.class.SetBulkChunk(n) }

// Close shuts the fabric down.
func (nm *NetManager) Close() {
	nm.mu.Lock()
	for id, c := range nm.exposed {
		c.Close()
		delete(nm.exposed, id)
	}
	nm.mu.Unlock()
	nm.class.Close()
}

func (nm *NetManager) registerRPCs() {
	nm.class.Register(rpcStat, nm.handleStat)
	nm.class.Register(rpcExpose, nm.handleExpose)
	nm.class.Register(rpcRelease, nm.handleRelease)
	nm.class.Register(rpcPull, nm.handlePull)
}

func (nm *NetManager) handleStat(payload []byte) ([]byte, error) {
	var ref fileRef
	if err := wire.Unmarshal(payload, &ref); err != nil {
		return nil, err
	}
	ds, err := nm.spaces.Get(ref.Dataspace)
	if err != nil {
		return nil, err
	}
	st, err := ds.Backend.FS.Stat(ref.Path)
	if err != nil {
		return nil, err
	}
	return wire.Marshal(&sizeResp{Size: st.Size}), nil
}

func (nm *NetManager) handleExpose(payload []byte) ([]byte, error) {
	var ref fileRef
	if err := wire.Unmarshal(payload, &ref); err != nil {
		return nil, err
	}
	ds, err := nm.spaces.Get(ref.Dataspace)
	if err != nil {
		return nil, err
	}
	prov, err := transfer.NewFSReadProvider(ds.Backend.FS, ref.Path)
	if err != nil {
		return nil, err
	}
	h := nm.class.ExposeBulk(prov)
	nm.mu.Lock()
	nm.exposed[h.ID] = prov.(io.Closer)
	nm.mu.Unlock()
	return wire.Marshal(&handleResp{Handle: h}), nil
}

func (nm *NetManager) handleRelease(payload []byte) ([]byte, error) {
	var h handleResp
	if err := wire.Unmarshal(payload, &h); err != nil {
		return nil, err
	}
	nm.class.ReleaseBulk(h.Handle)
	nm.mu.Lock()
	if c, ok := nm.exposed[h.Handle.ID]; ok {
		c.Close()
		delete(nm.exposed, h.Handle.ID)
	}
	nm.mu.Unlock()
	return nil, nil
}

// handlePull serves the initiator side of "send": the peer announced a
// bulk handle; we pull it into the named local dataspace path.
func (nm *NetManager) handlePull(payload []byte) ([]byte, error) {
	var req pullReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	ds, err := nm.spaces.Get(req.Dst.Dataspace)
	if err != nil {
		return nil, err
	}
	dst, err := transfer.NewFSWriteProvider(ds.Backend.FS, req.Dst.Path, req.Handle.Len, nil)
	if err != nil {
		return nil, err
	}
	ep, err := nm.class.Lookup(req.Handle.Addr)
	if err != nil {
		dst.Close()
		return nil, err
	}
	n, err := ep.BulkPull(req.Handle, 0, req.Handle.Len, dst)
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return wire.Marshal(&sizeResp{Size: n}), nil
}

func (nm *NetManager) endpoint(node string) (*mercury.Endpoint, error) {
	addr, err := nm.resolver.Resolve(node)
	if err != nil {
		return nil, err
	}
	return nm.class.Lookup(addr)
}

// StatFile implements transfer.Remote.
func (nm *NetManager) StatFile(node, srcDataspace, srcPath string) (int64, error) {
	ep, err := nm.endpoint(node)
	if err != nil {
		return 0, err
	}
	out, err := ep.Forward(rpcStat, wire.Marshal(&fileRef{Dataspace: srcDataspace, Path: srcPath}))
	if err != nil {
		return 0, err
	}
	var resp sizeResp
	if err := wire.Unmarshal(out, &resp); err != nil {
		return 0, err
	}
	return resp.Size, nil
}

// SendFile implements transfer.Remote: expose src locally, then ask the
// target to pull it into its dataspace (Table II: send_to_target +
// RDMA_PULL at target).
func (nm *NetManager) SendFile(node, dstDataspace, dstPath string, src mercury.BulkProvider) (int64, error) {
	ep, err := nm.endpoint(node)
	if err != nil {
		return 0, err
	}
	h := nm.class.ExposeBulk(src)
	defer nm.class.ReleaseBulk(h)
	req := pullReq{Handle: h, Dst: fileRef{Dataspace: dstDataspace, Path: dstPath}}
	out, err := ep.Forward(rpcPull, wire.Marshal(&req))
	if err != nil {
		return 0, err
	}
	var resp sizeResp
	if err := wire.Unmarshal(out, &resp); err != nil {
		return 0, err
	}
	return resp.Size, nil
}

// FetchFile implements transfer.Remote: ask the target to expose the
// source (query_target), bulk-pull it, release the handle.
func (nm *NetManager) FetchFile(node, srcDataspace, srcPath string, dst mercury.BulkProvider) (int64, error) {
	ep, err := nm.endpoint(node)
	if err != nil {
		return 0, err
	}
	out, err := ep.Forward(rpcExpose, wire.Marshal(&fileRef{Dataspace: srcDataspace, Path: srcPath}))
	if err != nil {
		return 0, err
	}
	var h handleResp
	if err := wire.Unmarshal(out, &h); err != nil {
		return 0, err
	}
	defer func() {
		_, _ = ep.Forward(rpcRelease, wire.Marshal(&h))
	}()
	return ep.BulkPull(h.Handle, 0, h.Handle.Len, dst)
}

var _ transfer.Remote = (*NetManager)(nil)
