// Package urd implements the NORNS resource-control daemon that runs on
// every compute node: the accept loop on the control and user sockets,
// the pending-task queue and its scheduler, the worker pool, the job &
// dataspace controller, the completion registry, and the network manager
// that executes node-to-node transfers over Mercury RPCs and bulk
// (RDMA-style) pulls.
package urd

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ngioproject/norns-go/internal/cascache"
	"github.com/ngioproject/norns-go/internal/dataspace"
	"github.com/ngioproject/norns-go/internal/mercury"
	"github.com/ngioproject/norns-go/internal/storage"
	"github.com/ngioproject/norns-go/internal/transfer"
	"github.com/ngioproject/norns-go/internal/wire"
)

// RPC names exchanged between urd network managers.
const (
	rpcStat    = "norns.stat"    // query_target: size of a remote file
	rpcExpose  = "norns.expose"  // expose a file for bulk pull, returns handle
	rpcRelease = "norns.release" // release an exposed handle
	rpcPull    = "norns.pull"    // ask the peer to pull a handle into its dataspace
)

// Bounds on peer-supplied pull parameters (handlePull): a pullReq sizes
// this daemon's goroutine pool, connection fan-out, and segment plan,
// so the remote end's wishes are clamped to sane local limits.
const (
	maxPullStreams  = 16
	minPullSegSize  = 256 << 10
	maxPullSegments = 1 << 20
	// maxPullBytes bounds any single peer-declared transfer length (16
	// TiB): destination sizing and plan allocation scale with it, so an
	// absurd length is rejected outright instead of OOMing the daemon.
	maxPullBytes = 1 << 44
)

// fileRef names a file inside a dataspace on the wire. DigestSegSize,
// when positive, asks the exposing side to also return per-segment
// SHA-256 digests at that segment size, riding the expose round trip —
// the staging cache and delta transfers consume them. Old peers skip
// the unknown tag and simply omit digests.
type fileRef struct {
	Dataspace     string
	Path          string
	DigestSegSize int64
}

func (f *fileRef) MarshalWire(e *wire.Encoder) {
	e.String(1, f.Dataspace)
	e.String(2, f.Path)
	if f.DigestSegSize != 0 {
		e.Int64(3, f.DigestSegSize)
	}
}

func (f *fileRef) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			f.Dataspace = d.String()
		case 2:
			f.Path = d.String()
		case 3:
			f.DigestSegSize = d.Int64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

type sizeResp struct {
	Size int64
}

func (s *sizeResp) MarshalWire(e *wire.Encoder) { e.Int64(1, s.Size) }
func (s *sizeResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		if d.Tag() == 1 {
			s.Size = d.Int64()
		} else {
			d.Skip()
		}
	}
	return d.Err()
}

type handleResp struct {
	Handle mercury.BulkHandle
	// Concurrent reports whether the exposed provider serves concurrent
	// random reads; pullers drop to one stream when it is false so a
	// sequential adapter is not thrashed by interleaved offsets.
	Concurrent bool
	// Digests is the concatenated 32-byte per-segment SHA-256 digests of
	// the exposed file at DigestSegSize-byte segments, present only when
	// the request asked for them (fileRef.DigestSegSize) and the exposing
	// side honored that exact size. A requester validates the echoed size
	// and the digest count before trusting the blob.
	Digests       []byte
	DigestSegSize int64
}

func (h *handleResp) MarshalWire(e *wire.Encoder) {
	e.Message(1, &h.Handle)
	if h.Concurrent {
		e.Bool(2, h.Concurrent)
	}
	if len(h.Digests) > 0 {
		e.Bytes(3, h.Digests)
		e.Int64(4, h.DigestSegSize)
	}
}

func (h *handleResp) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			d.Message(&h.Handle)
		case 2:
			h.Concurrent = d.Bool()
		case 3:
			h.Digests = d.Bytes()
		case 4:
			h.DigestSegSize = d.Int64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

type pullReq struct {
	Handle mercury.BulkHandle
	Dst    fileRef
	// Streams/SegSize ask the pulling side to fetch the handle in
	// SegSize segments over Streams fabric connections — the initiator
	// propagates its transfer engine's knobs so a send parallelizes the
	// same way a fetch does. Zero values select a single ordered pull
	// (and keep old peers compatible: unknown fields are skipped).
	Streams uint32
	SegSize int64
}

func (p *pullReq) MarshalWire(e *wire.Encoder) {
	e.Message(1, &p.Handle)
	e.Message(2, &p.Dst)
	if p.Streams != 0 {
		e.Uint32(3, p.Streams)
	}
	if p.SegSize != 0 {
		e.Int64(4, p.SegSize)
	}
}

func (p *pullReq) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			d.Message(&p.Handle)
		case 2:
			d.Message(&p.Dst)
		case 3:
			p.Streams = d.Uint32()
		case 4:
			p.SegSize = d.Int64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// NodeResolver maps cluster node names to mercury addresses. slurmctld
// populates it as nodes register.
type NodeResolver interface {
	Resolve(node string) (string, error)
}

// StaticResolver is a map-backed NodeResolver.
type StaticResolver struct {
	mu    sync.RWMutex
	addrs map[string]string
}

// NewStaticResolver returns an empty resolver.
func NewStaticResolver() *StaticResolver {
	return &StaticResolver{addrs: make(map[string]string)}
}

// Set maps node to a mercury address.
func (r *StaticResolver) Set(node, addr string) {
	r.mu.Lock()
	r.addrs[node] = addr
	r.mu.Unlock()
}

// Resolve implements NodeResolver.
func (r *StaticResolver) Resolve(node string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	addr, ok := r.addrs[node]
	if !ok {
		return "", fmt.Errorf("urd: unknown node %q", node)
	}
	return addr, nil
}

// NetManager is the urd network manager: it serves peer RPCs against the
// local dataspaces and implements transfer.Remote for outbound
// node-to-node transfers.
type NetManager struct {
	class    *mercury.Class
	spaces   *dataspace.Registry
	resolver NodeResolver

	// streams/segSize parameterize segmented pulls this manager serves
	// or requests; governor throttles inbound pull bandwidth; rpcTimeout
	// mirrors the class's RPC deadline for the send watchdog. Set once
	// at daemon construction, before traffic.
	streams    int
	segSize    int64
	governor   *transfer.Governor
	rpcTimeout time.Duration

	mu      sync.Mutex
	exposed map[uint64]io.Closer
}

// NewNetManager builds a network manager over the given mercury plugin,
// listening on listenAddr ("" picks an ephemeral address).
func NewNetManager(plugin, listenAddr string, spaces *dataspace.Registry, resolver NodeResolver) (*NetManager, error) {
	class, err := mercury.NewClass(plugin)
	if err != nil {
		return nil, err
	}
	nm := &NetManager{class: class, spaces: spaces, resolver: resolver, exposed: make(map[uint64]io.Closer)}
	nm.registerRPCs()
	if _, err := class.Listen(listenAddr); err != nil {
		return nil, err
	}
	return nm, nil
}

// Addr returns the manager's mercury listen address.
func (nm *NetManager) Addr() string { return nm.class.Addr() }

// SetBulkChunk adjusts the bulk chunk size (ablation benchmarks).
func (nm *NetManager) SetBulkChunk(n int) { nm.class.SetBulkChunk(n) }

// SetBreaker configures the per-endpoint circuit breakers: threshold
// consecutive transport failures to one address trip its breaker, and
// an open breaker admits a single half-open probe after cooldown.
// threshold <= 0 disables breaking. Set before serving traffic.
func (nm *NetManager) SetBreaker(threshold int, cooldown time.Duration) {
	nm.class.SetBreaker(threshold, cooldown)
}

// SetFaultHook installs a deterministic outbound-call fault injector
// (scenario lab); nil clears it.
func (nm *NetManager) SetFaultHook(h func(addr, name string) error) {
	nm.class.SetFaultHook(h)
}

// Breakers snapshots every tracked endpoint's circuit-breaker state,
// sorted by address — the DaemonStatus export.
func (nm *NetManager) Breakers() []mercury.BreakerInfo { return nm.class.Breakers() }

// SetRPCTimeout bounds every peer RPC and bulk-stream idle gap so a
// hung peer surfaces as a transfer error instead of a stuck worker.
func (nm *NetManager) SetRPCTimeout(d time.Duration) {
	nm.class.SetRPCTimeout(d)
	if d > 0 {
		nm.rpcTimeout = d
	}
}

// SetTransfer installs the segmented-transfer parameters: streams
// concurrent segment pulls of segSize bytes, throttled by gov (which is
// the daemon's shared governor, so inbound staging traffic counts
// against the same budget as outbound). Non-positive values select the
// transfer package defaults, mirroring Env, so the parameters this
// manager advertises in pull requests match what the engine runs with.
// Call before serving traffic.
func (nm *NetManager) SetTransfer(streams int, segSize int64, gov *transfer.Governor) {
	if streams <= 0 {
		streams = transfer.DefaultStreams
	}
	if segSize <= 0 {
		segSize = transfer.DefaultSegmentSize
	}
	nm.streams = streams
	nm.segSize = segSize
	nm.governor = gov
}

// Close shuts the fabric down.
func (nm *NetManager) Close() {
	nm.mu.Lock()
	for id, c := range nm.exposed {
		c.Close()
		delete(nm.exposed, id)
	}
	nm.mu.Unlock()
	nm.class.Close()
}

func (nm *NetManager) registerRPCs() {
	nm.class.Register(rpcStat, nm.handleStat)
	nm.class.Register(rpcExpose, nm.handleExpose)
	nm.class.Register(rpcRelease, nm.handleRelease)
	nm.class.Register(rpcPull, nm.handlePull)
}

func (nm *NetManager) handleStat(payload []byte) ([]byte, error) {
	var ref fileRef
	if err := wire.Unmarshal(payload, &ref); err != nil {
		return nil, err
	}
	ds, err := nm.spaces.Get(ref.Dataspace)
	if err != nil {
		return nil, err
	}
	st, err := ds.Backend.FS.Stat(ref.Path)
	if err != nil {
		return nil, err
	}
	return wire.Marshal(&sizeResp{Size: st.Size}), nil
}

func (nm *NetManager) handleExpose(payload []byte) ([]byte, error) {
	var ref fileRef
	if err := wire.Unmarshal(payload, &ref); err != nil {
		return nil, err
	}
	ds, err := nm.spaces.Get(ref.Dataspace)
	if err != nil {
		return nil, err
	}
	prov, err := transfer.NewFSReadProvider(ds.Backend.FS, ref.Path)
	if err != nil {
		return nil, err
	}
	h := nm.class.ExposeBulk(prov)
	nm.mu.Lock()
	nm.exposed[h.ID] = prov.(io.Closer)
	nm.mu.Unlock()
	resp := handleResp{Handle: h}
	if c, ok := prov.(mercury.ConcurrentReaderAt); ok {
		resp.Concurrent = c.ConcurrentReadAt()
	}
	// Digest request riding the expose: hash the file at the requested
	// segment size so the peer can serve warm segments from its staging
	// cache and delta-skip unchanged ones. Best effort — an unreasonable
	// request (or a read error) just omits the digests, never fails the
	// expose itself.
	if ss := ref.DigestSegSize; ss > 0 && h.Len > 0 && h.Len/ss < maxPullSegments {
		if digests, err := cascache.HashSegments(prov, h.Len, ss); err == nil {
			blob := make([]byte, 0, len(digests)*cascache.DigestLen)
			for _, sum := range digests {
				blob = append(blob, sum...)
			}
			resp.Digests = blob
			resp.DigestSegSize = ss
		}
	}
	return wire.Marshal(&resp), nil
}

func (nm *NetManager) handleRelease(payload []byte) ([]byte, error) {
	var h handleResp
	if err := wire.Unmarshal(payload, &h); err != nil {
		return nil, err
	}
	nm.class.ReleaseBulk(h.Handle)
	nm.mu.Lock()
	if c, ok := nm.exposed[h.Handle.ID]; ok {
		c.Close()
		delete(nm.exposed, h.Handle.ID)
	}
	nm.mu.Unlock()
	return nil, nil
}

// handlePull serves the initiator side of "send": the peer announced a
// bulk handle; we pull it into the named local dataspace path — in
// parallel segments when the request asks for them and the destination
// supports random-access writes, as a single ordered stream otherwise.
// Inbound bandwidth is charged to this daemon's governor either way.
func (nm *NetManager) handlePull(payload []byte) ([]byte, error) {
	var req pullReq
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	ds, err := nm.spaces.Get(req.Dst.Dataspace)
	if err != nil {
		return nil, err
	}
	// Clamp peer-supplied parameters: Streams sizes a goroutine pool and
	// one fabric connection per slot, SegSize and Handle.Len size the
	// plan — none may be dictated unboundedly by the remote end.
	if req.Handle.Len < 0 || req.Handle.Len > maxPullBytes {
		return nil, fmt.Errorf("urd: pull length %d out of range", req.Handle.Len)
	}
	streams := req.Streams
	if streams > maxPullStreams {
		streams = maxPullStreams
	}
	// Resolve the segment size BEFORE the clamps so a peer omitting it
	// cannot slip the default past the segment-count bound.
	segSize := req.SegSize
	if segSize <= 0 {
		segSize = transfer.DefaultSegmentSize
	}
	if segSize < minPullSegSize {
		segSize = minPullSegSize
	}
	if req.Handle.Len/segSize >= maxPullSegments {
		// Bound the plan's segment count whatever length the peer
		// claims; the segment size grows instead. (Division first:
		// rounding-up arithmetic would overflow near MaxInt64.)
		segSize = req.Handle.Len/maxPullSegments + 1
	}
	wfs, wok := ds.Backend.FS.(storage.RandomWriteFS)
	if streams > 1 && wok {
		w, err := wfs.OpenWriterAt(req.Dst.Path, req.Handle.Len)
		if err != nil {
			return nil, err
		}
		segs := transfer.Plan(req.Handle.Len, segSize)
		ctx := context.Background()
		var got int64
		err = transfer.RunSegments(ctx, segs, int(streams), func(ctx context.Context, stream int, sg transfer.Segment) error {
			ep, err := nm.class.LookupSlot(req.Handle.Addr, stream)
			if err != nil {
				return err
			}
			sink := transfer.NewSegmentSink(ctx, w, sg.Off, sg.Len, nm.governor, func(n int64) {
				atomic.AddInt64(&got, n)
			})
			n, err := ep.BulkPull(req.Handle, sg.Off, sg.Len, sink)
			if err == nil && n != sg.Len {
				err = fmt.Errorf("urd: segment %d short pull: %d of %d bytes", sg.Index, n, sg.Len)
			}
			return err
		})
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		return wire.Marshal(&sizeResp{Size: atomic.LoadInt64(&got)}), nil
	}
	dst, err := transfer.NewFSWriteProvider(ds.Backend.FS, req.Dst.Path, req.Handle.Len, nil)
	if err != nil {
		return nil, err
	}
	ep, err := nm.class.Lookup(req.Handle.Addr)
	if err != nil {
		dst.Close()
		return nil, err
	}
	sink := transfer.NewSegmentSink(context.Background(), seqWriter{dst}, 0, req.Handle.Len, nm.governor, nil)
	n, err := ep.BulkPull(req.Handle, 0, req.Handle.Len, sink)
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return wire.Marshal(&sizeResp{Size: n}), nil
}

// seqWriter adapts the ordered fsWriteProvider to the io.WriterAt the
// segment sink wraps (offsets still arrive in order on this path).
type seqWriter struct{ p mercury.BulkProvider }

func (s seqWriter) WriteAt(b []byte, off int64) (int, error) { return s.p.WriteAt(b, off) }

func (nm *NetManager) endpoint(node string) (*mercury.Endpoint, error) {
	addr, err := nm.resolver.Resolve(node)
	if err != nil {
		return nil, err
	}
	return nm.class.Lookup(addr)
}

// StatFile implements transfer.Remote.
func (nm *NetManager) StatFile(node, srcDataspace, srcPath string) (int64, error) {
	ep, err := nm.endpoint(node)
	if err != nil {
		return 0, err
	}
	out, err := ep.ForwardMarshal(rpcStat, &fileRef{Dataspace: srcDataspace, Path: srcPath})
	if err != nil {
		return 0, err
	}
	var resp sizeResp
	if err := wire.Unmarshal(out, &resp); err != nil {
		return 0, err
	}
	return resp.Size, nil
}

// activityProvider wraps an exposed provider so the send watchdog can
// tell an actively-pulling peer from a hung one: every bulk call is
// timestamped, and calls currently blocked inside the provider — e.g.
// waiting on the bandwidth governor — count as activity too, so a
// heavily throttled transfer is never mistaken for a dead peer.
type activityProvider struct {
	p        mercury.BulkProvider
	last     atomic.Int64 // unix nanos of the most recent bulk call edge
	inFlight atomic.Int64
}

func newActivityProvider(p mercury.BulkProvider) *activityProvider {
	a := &activityProvider{p: p}
	a.touch()
	return a
}

func (a *activityProvider) touch() { a.last.Store(time.Now().UnixNano()) }

// stalled reports whether the peer has gone silent for longer than d:
// no bulk call in flight and none completed recently.
func (a *activityProvider) stalled(d time.Duration) bool {
	if a.inFlight.Load() > 0 {
		return false
	}
	return time.Since(time.Unix(0, a.last.Load())) > d
}

func (a *activityProvider) Size() int64 { return a.p.Size() }

// ConcurrentReadAt delegates the wrapped provider's capability.
func (a *activityProvider) ConcurrentReadAt() bool {
	if cc, ok := a.p.(mercury.ConcurrentReaderAt); ok {
		return cc.ConcurrentReadAt()
	}
	return false
}

func (a *activityProvider) ReadAt(b []byte, off int64) (int, error) {
	a.touch()
	a.inFlight.Add(1)
	defer func() {
		a.touch()
		a.inFlight.Add(-1)
	}()
	return a.p.ReadAt(b, off)
}

func (a *activityProvider) WriteAt(b []byte, off int64) (int, error) {
	a.touch()
	a.inFlight.Add(1)
	defer func() {
		a.touch()
		a.inFlight.Add(-1)
	}()
	return a.p.WriteAt(b, off)
}

// SendFile implements transfer.Remote: expose src locally, then ask the
// target to pull it into its dataspace (Table II: send_to_target +
// RDMA_PULL at target). The request carries this daemon's stream and
// segment parameters so the target pulls in parallel when it can.
//
// The pull RPC only answers once the peer has pulled everything, so it
// cannot ride the ordinary one-shot RPC deadline — a transfer merely
// longer than the deadline would spuriously fail. Instead the RPC runs
// without a deadline and a watchdog bounds peer *silence*: if the peer
// stops pulling the exposed handle for a full RPC-timeout interval, the
// endpoint is torn down and the send fails.
func (nm *NetManager) SendFile(node, dstDataspace, dstPath string, src mercury.BulkProvider) (int64, error) {
	ep, err := nm.endpoint(node)
	if err != nil {
		return 0, err
	}
	act := newActivityProvider(src)
	h := nm.class.ExposeBulk(act)
	defer nm.class.ReleaseBulk(h)
	// Multi-stream pulls are only advertised when the source serves
	// concurrent random reads; a sequential adapter would be thrashed by
	// interleaved segment offsets (reopen-and-discard per chunk).
	streams := uint32(nm.streams)
	if !act.ConcurrentReadAt() {
		streams = 1
	}
	req := pullReq{
		Handle:  h,
		Dst:     fileRef{Dataspace: dstDataspace, Path: dstPath},
		Streams: streams,
		SegSize: nm.segSize,
	}
	type result struct {
		out []byte
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := ep.ForwardMarshalNoDeadline(rpcPull, &req)
		ch <- result{out, err}
	}()
	var r result
	if nm.rpcTimeout <= 0 {
		r = <-ch
	} else {
		tick := time.NewTicker(nm.rpcTimeout / 4)
		defer tick.Stop()
	waitLoop:
		for {
			select {
			case r = <-ch:
				break waitLoop
			case <-tick.C:
				if act.stalled(nm.rpcTimeout) {
					// The peer went silent mid-send: tear the endpoint
					// down (unblocking the Forward goroutine) and fail.
					ep.Close()
					<-ch
					return 0, fmt.Errorf("urd: send to %s: %w", node, mercury.ErrRPCTimeout)
				}
			}
		}
	}
	if r.err != nil {
		return 0, r.err
	}
	var resp sizeResp
	if err := wire.Unmarshal(r.out, &resp); err != nil {
		return 0, err
	}
	return resp.Size, nil
}

// remoteFile is an open handle on a peer's exposed file: the expose
// round trip happens once, segment pulls share it, Close releases it.
type remoteFile struct {
	nm *NetManager
	ep *mercury.Endpoint // control endpoint, for release
	h  handleResp
}

// Size implements transfer.RemoteFile.
func (f *remoteFile) Size() int64 { return f.h.Handle.Len }

// Concurrent implements transfer.RemoteFile. Peers predating the
// capability bit report false and are pulled on a single stream — the
// conservative reading of an absent field.
func (f *remoteFile) Concurrent() bool { return f.h.Concurrent }

// PullRange implements transfer.RemoteFile. Each stream slot rides its
// own fabric connection, so concurrent segment pulls do not serialize
// behind one connection's framing.
func (f *remoteFile) PullRange(stream int, off, count int64, dst mercury.BulkProvider) (int64, error) {
	ep, err := f.nm.class.LookupSlot(f.h.Handle.Addr, stream)
	if err != nil {
		return 0, err
	}
	return ep.BulkPull(f.h.Handle, off, count, dst)
}

// Close implements transfer.RemoteFile.
func (f *remoteFile) Close() error {
	_, err := f.ep.ForwardMarshal(rpcRelease, &f.h)
	return err
}

// OpenFile implements transfer.Remote: ask the target to expose the
// source (query_target) and hold the handle for segment pulls.
func (nm *NetManager) OpenFile(node, srcDataspace, srcPath string) (transfer.RemoteFile, error) {
	ep, err := nm.endpoint(node)
	if err != nil {
		return nil, err
	}
	out, err := ep.ForwardMarshal(rpcExpose, &fileRef{Dataspace: srcDataspace, Path: srcPath})
	if err != nil {
		return nil, err
	}
	var h handleResp
	if err := wire.Unmarshal(out, &h); err != nil {
		return nil, err
	}
	if h.Handle.Len < 0 || h.Handle.Len > maxPullBytes {
		// The declared size drives destination allocation and the
		// segment plan on our side; an absurd value is a broken or
		// hostile peer, not a file to fetch.
		_, _ = ep.ForwardMarshal(rpcRelease, &h)
		return nil, fmt.Errorf("urd: %s declares file length %d out of range", node, h.Handle.Len)
	}
	return &remoteFile{nm: nm, ep: ep, h: h}, nil
}

// OpenFileDigested implements transfer.DigestRemote: the same expose
// round trip as OpenFile, but asking the peer for per-segment SHA-256
// digests at segSize. Digests are strictly optional — a peer predating
// them (or declining the request) yields a usable handle with a nil
// digest set, and a malformed blob is discarded rather than trusted.
func (nm *NetManager) OpenFileDigested(node, srcDataspace, srcPath string, segSize int64) (transfer.RemoteFile, [][]byte, error) {
	ep, err := nm.endpoint(node)
	if err != nil {
		return nil, nil, err
	}
	out, err := ep.ForwardMarshal(rpcExpose, &fileRef{Dataspace: srcDataspace, Path: srcPath, DigestSegSize: segSize})
	if err != nil {
		return nil, nil, err
	}
	var h handleResp
	if err := wire.Unmarshal(out, &h); err != nil {
		return nil, nil, err
	}
	if h.Handle.Len < 0 || h.Handle.Len > maxPullBytes {
		_, _ = ep.ForwardMarshal(rpcRelease, &h)
		return nil, nil, fmt.Errorf("urd: %s declares file length %d out of range", node, h.Handle.Len)
	}
	var digests [][]byte
	if segSize > 0 && h.DigestSegSize == segSize && len(h.Digests) > 0 && len(h.Digests)%cascache.DigestLen == 0 {
		want := (h.Handle.Len + segSize - 1) / segSize
		if int64(len(h.Digests)/cascache.DigestLen) == want {
			digests = make([][]byte, 0, want)
			for off := 0; off < len(h.Digests); off += cascache.DigestLen {
				digests = append(digests, h.Digests[off:off+cascache.DigestLen])
			}
		}
	}
	return &remoteFile{nm: nm, ep: ep, h: h}, digests, nil
}

var (
	_ transfer.Remote       = (*NetManager)(nil)
	_ transfer.DigestRemote = (*NetManager)(nil)
)
