package urd

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/api/nornsctl"
	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/queue"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/transport"
)

// gatedPolicy holds queued tasks back until opened, letting recovery
// tests pin tasks in the Pending state deterministically. Closing the
// daemon with the gate shut leaves the tasks queued — exactly the state
// a crash leaves behind in the journal.
type gatedPolicy struct {
	mu    sync.Mutex
	open  bool
	inner *queue.FCFS
}

func (g *gatedPolicy) Name() string { return "gated" }
func (g *gatedPolicy) Push(t *task.Task) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner.Push(t)
}
func (g *gatedPolicy) Pop() *task.Task {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.open {
		return nil
	}
	return g.inner.Pop()
}
func (g *gatedPolicy) Remove(id uint64) *task.Task {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.Remove(id)
}
func (g *gatedPolicy) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.Len()
}

func adminSubmit(t *testing.T, d *Daemon, payload, path string) uint64 {
	t.Helper()
	spec := &proto.TaskSpec{
		Kind:   uint32(task.Copy),
		Input:  proto.FromResource(task.MemoryRegion([]byte(payload))),
		Output: proto.FromResource(task.PosixPath("nvme0://", path)),
	}
	id, err := d.Submit(spec, 0, true)
	if err != nil {
		t.Fatalf("submit %s: %v", path, err)
	}
	return id
}

func registerMounted(t *testing.T, d *Daemon, mount string) {
	t.Helper()
	resp := d.Handle(transport.PeerInfo{Control: true}, &proto.Request{
		Op:        proto.OpRegisterDataspace,
		Dataspace: &proto.DataspaceSpec{ID: "nvme0://", Backend: 1, Mount: mount},
	})
	if resp.Status != proto.Success {
		t.Fatalf("register dataspace: %+v", resp)
	}
}

func waitFinished(t *testing.T, d *Daemon, id uint64) {
	t.Helper()
	tk, err := d.Task(id)
	if err != nil {
		t.Fatal(err)
	}
	if !tk.Wait(30 * time.Second) {
		t.Fatalf("task %d did not terminate", id)
	}
	if st := tk.Stats(); st.Status != task.Finished {
		t.Fatalf("task %d = %+v, want finished", id, st)
	}
}

// TestKillAndRestartRecovery is the end-to-end crash-recovery scenario:
// a daemon dies with one task finished, one mid-cancellation, one
// recorded as running, and two still pending. The restarted daemon must
// restore the dataspace from the journal, re-queue the pending and
// running tasks exactly once and drive them to completion, confirm the
// interrupted cancellation, and never re-run the finished task.
func TestKillAndRestartRecovery(t *testing.T) {
	base := t.TempDir()
	state := filepath.Join(base, "state")
	mount := filepath.Join(base, "nvme0")
	if err := os.MkdirAll(mount, 0o755); err != nil {
		t.Fatal(err)
	}

	gate := &gatedPolicy{inner: queue.NewFCFS(), open: true}
	d1, err := New(Config{
		NodeName:      "crash1",
		Workers:       1,
		StateDir:      state,
		PolicyFactory: func() queue.Policy { return gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	registerMounted(t, d1, mount)

	// Task A runs to completion while the gate is open; its terminal
	// state is journaled.
	idA := adminSubmit(t, d1, "alpha", "out/a")
	waitFinished(t, d1, idA)

	// Shut the gate: everything below stays Pending in d1 forever.
	gate.mu.Lock()
	gate.open = false
	gate.mu.Unlock()

	idB := adminSubmit(t, d1, "bravo", "out/b")
	idC := adminSubmit(t, d1, "charlie", "out/c")
	idD := adminSubmit(t, d1, "delta", "out/d")
	idE := adminSubmit(t, d1, "echo", "out/e")

	// Simulate the dispatch record of a worker that died mid-transfer
	// (B) and a cancellation that was requested but never confirmed (E).
	if err := d1.Journal().RecordState(idB, task.Running, ""); err != nil {
		t.Fatal(err)
	}
	if err := d1.Journal().RecordState(idE, task.Cancelling, ""); err != nil {
		t.Fatal(err)
	}

	// Crash: nothing after this instant reaches disk. Close() then
	// behaves like the process dying — the gated queue never drains and
	// the frozen journal neither records nor compacts.
	d1.Journal().Freeze()
	d1.Close()

	// A's output vanished between the runs; if recovery wrongly re-ran
	// the finished task, the file would reappear.
	if err := os.Remove(filepath.Join(mount, "out", "a")); err != nil {
		t.Fatal(err)
	}

	sock := filepath.Join(base, "ctl.sock")
	d2, err := New(Config{NodeName: "crash2", Workers: 2, StateDir: state, ControlSocket: sock})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	rec := d2.Recovered()
	if rec.Running != 1 || rec.Pending != 2 || rec.Cancelled != 1 || rec.Terminal != 1 {
		t.Fatalf("recovered = %+v, want running=1 pending=2 cancelled=1 terminal=1", rec)
	}

	// The re-queued tasks complete without any re-registration: the
	// dataspace came back from the journal.
	for id, want := range map[uint64]string{idB: "bravo", idC: "charlie", idD: "delta"} {
		waitFinished(t, d2, id)
		got, err := os.ReadFile(filepath.Join(mount, "out", string(want[0])))
		if err != nil {
			t.Fatalf("recovered task %d output: %v", id, err)
		}
		if string(got) != want {
			t.Fatalf("recovered task %d wrote %q, want %q", id, got, want)
		}
	}

	// The finished task was resurrected, not re-run.
	tkA, err := d2.Task(idA)
	if err != nil {
		t.Fatal(err)
	}
	if st := tkA.Stats(); st.Status != task.Finished || st.MovedBytes != int64(len("alpha")) {
		t.Fatalf("task A = %+v, want finished with %d bytes moved", st, len("alpha"))
	}
	if _, err := os.Stat(filepath.Join(mount, "out", "a")); !os.IsNotExist(err) {
		t.Fatal("finished task was re-run after restart")
	}

	// The interrupted cancellation was confirmed, not restarted.
	tkE, err := d2.Task(idE)
	if err != nil {
		t.Fatal(err)
	}
	if st := tkE.Stats(); st.Status != task.Cancelled {
		t.Fatalf("task E = %+v, want cancelled", st)
	}
	if _, err := os.Stat(filepath.Join(mount, "out", "e")); !os.IsNotExist(err) {
		t.Fatal("cancelled task was re-run after restart")
	}

	// The ID space continues past everything the journal saw.
	idF := adminSubmit(t, d2, "foxtrot", "out/f")
	if idF <= idE {
		t.Fatalf("post-recovery ID %d not above recovered IDs (max %d)", idF, idE)
	}
	waitFinished(t, d2, idF)

	// The recovery counters surface through nornsctl status.
	ctl, err := nornsctl.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	st, err := ctl.StatusInfo()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Journal || st.RecoveredRunning != 1 || st.RecoveredPending != 2 ||
		st.RecoveredCancelled != 1 || st.RecoveredTerminal != 1 {
		t.Fatalf("status info = %+v", st)
	}
}

// TestRestartAfterGracefulCloseRequeuesNothing: the second restart sees
// only terminal tasks — recovery re-queues exactly once, never again.
func TestRestartAfterGracefulCloseRequeuesNothing(t *testing.T) {
	base := t.TempDir()
	state := filepath.Join(base, "state")
	mount := filepath.Join(base, "nvme0")
	if err := os.MkdirAll(mount, 0o755); err != nil {
		t.Fatal(err)
	}

	gate := &gatedPolicy{inner: queue.NewFCFS()}
	d1, err := New(Config{
		NodeName:      "g1",
		Workers:       1,
		StateDir:      state,
		PolicyFactory: func() queue.Policy { return gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	registerMounted(t, d1, mount)
	idA := adminSubmit(t, d1, "alpha", "out/a")
	idB := adminSubmit(t, d1, "bravo", "out/b")
	d1.Journal().Freeze()
	d1.Close()

	d2, err := New(Config{NodeName: "g2", Workers: 2, StateDir: state})
	if err != nil {
		t.Fatal(err)
	}
	if rec := d2.Recovered(); rec.Requeued() != 2 {
		t.Fatalf("first restart recovered = %+v, want 2 requeued", rec)
	}
	waitFinished(t, d2, idA)
	waitFinished(t, d2, idB)
	d2.Close() // graceful: terminal states journaled and compacted

	d3, err := New(Config{NodeName: "g3", Workers: 2, StateDir: state})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	rec := d3.Recovered()
	if rec.Requeued() != 0 || rec.Terminal != 2 {
		t.Fatalf("second restart recovered = %+v, want 0 requeued, 2 terminal", rec)
	}
	// Terminal resurrection keeps old IDs answering status queries.
	tk, err := d3.Task(idA)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Status() != task.Finished {
		t.Fatalf("task A after two restarts = %v", tk.Status())
	}
}

// TestRecoveryBypassesQueueBounds: re-queued tasks are pre-crash
// obligations the dead daemon had already admitted, so a restart with a
// tighter shard-queue bound (or MaxInFlight) must still recover all of
// them instead of failing the overflow.
func TestRecoveryBypassesQueueBounds(t *testing.T) {
	base := t.TempDir()
	state := filepath.Join(base, "state")
	mount := filepath.Join(base, "nvme0")
	if err := os.MkdirAll(mount, 0o755); err != nil {
		t.Fatal(err)
	}

	gate := &gatedPolicy{inner: queue.NewFCFS()}
	d1, err := New(Config{
		NodeName:      "b1",
		Workers:       1,
		StateDir:      state,
		PolicyFactory: func() queue.Policy { return gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	registerMounted(t, d1, mount)
	ids := []uint64{
		adminSubmit(t, d1, "alpha", "out/a"),
		adminSubmit(t, d1, "bravo", "out/b"),
		adminSubmit(t, d1, "charlie", "out/c"),
	}
	d1.Journal().Freeze()
	d1.Close()

	d2, err := New(Config{
		NodeName: "b2", Workers: 1, StateDir: state,
		MaxShardQueue: 1, MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec := d2.Recovered(); rec.Requeued() != 3 {
		t.Fatalf("recovered = %+v, want all 3 re-queued despite bounds", rec)
	}
	for _, id := range ids {
		waitFinished(t, d2, id)
	}
}

// TestRecoveryWithDeadlineExpired: a recovered task whose deadline
// passed while the daemon was down must expire, not re-run.
func TestRecoveryWithDeadlineExpired(t *testing.T) {
	base := t.TempDir()
	state := filepath.Join(base, "state")
	mount := filepath.Join(base, "nvme0")
	if err := os.MkdirAll(mount, 0o755); err != nil {
		t.Fatal(err)
	}

	gate := &gatedPolicy{inner: queue.NewFCFS()}
	d1, err := New(Config{
		NodeName:      "dl1",
		Workers:       1,
		StateDir:      state,
		PolicyFactory: func() queue.Policy { return gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	registerMounted(t, d1, mount)
	spec := &proto.TaskSpec{
		Kind:       uint32(task.Copy),
		Input:      proto.FromResource(task.MemoryRegion([]byte("late"))),
		Output:     proto.FromResource(task.PosixPath("nvme0://", "out/late")),
		DeadlineMS: 50,
	}
	id, err := d1.Submit(spec, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	d1.Journal().Freeze()
	d1.Close()

	time.Sleep(100 * time.Millisecond) // the daemon is "down" past the deadline

	d2, err := New(Config{NodeName: "dl2", Workers: 1, StateDir: state})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tk, err := d2.Task(id)
	if err != nil {
		t.Fatal(err)
	}
	if !tk.Wait(30 * time.Second) {
		t.Fatal("deadlined task did not terminate")
	}
	if st := tk.Stats(); st.Status != task.Failed {
		t.Fatalf("deadlined task = %+v, want failed", st)
	}
	if _, err := os.Stat(filepath.Join(mount, "out", "late")); !os.IsNotExist(err) {
		t.Fatal("expired task still wrote its output")
	}
}

// registerMountedID registers an OSFS-backed dataspace under an
// arbitrary ID (the segment-resume test needs two tiers).
func registerMountedID(t *testing.T, d *Daemon, id, mount string) {
	t.Helper()
	resp := d.Handle(transport.PeerInfo{Control: true}, &proto.Request{
		Op:        proto.OpRegisterDataspace,
		Dataspace: &proto.DataspaceSpec{ID: id, Backend: 1, Mount: mount},
	})
	if resp.Status != proto.Success {
		t.Fatalf("register dataspace %s: %+v", id, resp)
	}
}

// TestCrashRestartResumesSegments is the segment-resume acceptance
// scenario: a throttled multi-stream copy checkpoints segment bitmaps
// into the journal, the daemon "crashes" (journal frozen, transfer
// aborted) mid-transfer, and the restarted daemon re-queues the task
// and re-copies ONLY the missing segments — the bytes moved after the
// restart stay below the file size while the destination file comes out
// byte-identical.
func TestCrashRestartResumesSegments(t *testing.T) {
	base := t.TempDir()
	state := filepath.Join(base, "state")
	srcMount := filepath.Join(base, "lustre")
	dstMount := filepath.Join(base, "nvme")

	payload := make([]byte, 2<<20)
	for i := range payload {
		payload[i] = byte(i*13 + i/509)
	}
	if err := os.MkdirAll(srcMount, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(srcMount, "big.dat"), payload, 0o644); err != nil {
		t.Fatal(err)
	}

	const segSize = 256 << 10 // 8 segments
	cfg := Config{
		NodeName:        "n1",
		Workers:         1,
		StateDir:        state,
		SegmentSize:     segSize,
		TransferStreams: 2,
		// Throttle run 1 so the crash reliably lands mid-transfer.
		MaxBandwidthBps: 2 << 20,
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	registerMountedID(t, d, "lustre://", srcMount)
	registerMountedID(t, d, "nvme0://", dstMount)

	spec := &proto.TaskSpec{
		Kind:   uint32(task.Copy),
		Input:  proto.FromResource(task.PosixPath("lustre://", "big.dat")),
		Output: proto.FromResource(task.PosixPath("nvme0://", "big.dat")),
	}
	id, err := d.Submit(spec, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := d.Task(id)
	if err != nil {
		t.Fatal(err)
	}
	// Let a few segments land (and checkpoint) before the crash.
	deadline := time.Now().Add(30 * time.Second)
	for tk.Stats().SegmentsDone < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("no segment progress: %+v", tk.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Crash instant: nothing after this reaches disk; the in-flight
	// transfer is aborted the way a dying process aborts it — partial
	// destination left behind, no terminal record journaled.
	d.Journal().Freeze()
	if _, err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	tk.Wait(30 * time.Second)
	d.Close()

	// Restart over the same state dir, unthrottled.
	cfg.MaxBandwidthBps = 0
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rec := d2.Recovered(); rec.Running != 1 {
		t.Fatalf("recovered = %+v, want 1 running", rec)
	}
	waitFinished(t, d2, id)
	tk2, err := d2.Task(id)
	if err != nil {
		t.Fatal(err)
	}
	st := tk2.Stats()
	if st.SegmentsTotal != 8 || st.SegmentsDone != 8 {
		t.Fatalf("segments after resume = %d/%d, want 8/8", st.SegmentsDone, st.SegmentsTotal)
	}
	// The resume must NOT have re-copied the whole file: at least the
	// checkpointed segments were skipped.
	if st.MovedBytes >= int64(len(payload)) {
		t.Fatalf("resume re-copied everything: moved %d of %d", st.MovedBytes, len(payload))
	}
	if st.MovedBytes <= 0 {
		t.Fatalf("resume moved nothing: %+v", st)
	}
	got, err := os.ReadFile(filepath.Join(dstMount, "big.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("destination size %d, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("destination corrupt at byte %d", i)
		}
	}
}
