package urd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
)

// EventHub fans task lifecycle transitions and throttled progress
// updates out to subscribers. Each subscriber owns a bounded queue
// drained by its own pump goroutine, which writes push frames over the
// subscriber's connection; publishing never blocks, so a slow or stuck
// consumer costs itself coalesced events (an EvGap marker) but can
// never stall a transfer worker or another subscriber.
//
// Two delivery guarantees shape the queue policy:
//
//   - Terminal transitions of explicitly subscribed tasks are never
//     dropped: the overflow check admits them past the cap, growing the
//     queue by at most the size of the subscription's task set. A
//     handle-holding client therefore always learns its tasks' fates.
//   - Everything else (progress ticks, transitions on all-tasks
//     subscriptions) is coalesced under pressure into one EvGap event
//     carrying the drop count, delivered in-order once the queue
//     drains.
type EventHub struct {
	queueCap int
	// progressMin is the hub-wide floor between progress ticks per
	// task, whatever rate subscribers request. It bounds the cost of
	// the per-chunk OnProgress hook on the transfer hot path.
	progressMin time.Duration

	// subCount mirrors len(subs) so the publish hot path can skip the
	// lock entirely while nobody is subscribed.
	subCount atomic.Int32

	mu     sync.Mutex
	subs   map[uint64]*eventSub
	nextID uint64
	// byTask / byTaskMore index explicit subscriptions by task ID and
	// allSubs holds the all-tasks subscriptions, so a publish touches
	// exactly the subscribers that want the event. Before the index,
	// every publish walked every live subscription under mu — with
	// hundreds of batch-submitting clients (one explicit subscription
	// each), each of the daemon's state events per task scanned them
	// all, which serialized the worker pool on the hub lock. The index
	// is split single/overflow because a task almost always has exactly
	// one explicit subscriber: a direct map entry costs no allocation
	// where a one-element slice cost one per task.
	byTask     map[uint64]*eventSub
	byTaskMore map[uint64][]*eventSub
	allSubs    map[uint64]*eventSub
	// lastState dedups state events per task: racing publishers (a
	// cancel and the executing worker both reach terminal bookkeeping)
	// must not deliver the same transition twice. Entries live as long
	// as the daemon's task table, which has the same lifetime.
	lastState map[uint64]task.Status
	closed    bool

	// lastTick throttles progress events per task at the hub floor. It
	// is a sync.Map (task ID -> time.Time) so the per-chunk hot path
	// can reject a too-soon tick without touching the hub mutex —
	// workers only contend on mu for the ticks that actually fan out.
	lastTick sync.Map
}

// defaults for Config.EventQueue and Config.ProgressInterval.
const (
	defaultEventQueue       = 256
	defaultProgressInterval = 100 * time.Millisecond
)

// NewEventHub returns a hub with the given per-subscriber queue bound
// and hub-wide progress-tick floor (<=0 selects the defaults).
func NewEventHub(queueCap int, progressMin time.Duration) *EventHub {
	if queueCap <= 0 {
		queueCap = defaultEventQueue
	}
	if progressMin <= 0 {
		progressMin = defaultProgressInterval
	}
	return &EventHub{
		queueCap:    queueCap,
		progressMin: progressMin,
		subs:        make(map[uint64]*eventSub),
		byTask:      make(map[uint64]*eventSub),
		byTaskMore:  make(map[uint64][]*eventSub),
		allSubs:     make(map[uint64]*eventSub),
		lastState:   make(map[uint64]task.Status),
	}
}

// eventSub is one subscription: its filter, its bounded queue, and the
// plumbing its pump goroutine drains through.
type eventSub struct {
	id  uint64
	all bool
	// terminalOnly subscriptions receive progress ticks and terminal
	// transitions only — the pending/running chatter a task handle
	// never acts on is filtered at the source, before it costs a queue
	// slot or a push frame.
	terminalOnly bool
	tasks        map[uint64]struct{} // explicit set; emptied as tasks terminate
	progress     time.Duration       // 0 = no progress ticks
	lastTick     map[uint64]time.Time

	mu      sync.Mutex
	queue   []proto.Event
	spare   []proto.Event // drained buffer handed back by the pump
	dropped uint64
	notify  chan struct{} // cap 1: queue became non-empty
	done    chan struct{} // closed on unsubscribe/hub close
	closed  bool
}

// offer appends an event to the subscriber's queue without ever
// blocking. force admits the event past the cap (terminal transitions
// of explicitly subscribed tasks); otherwise overflow is counted and
// later surfaces as one EvGap event.
func (s *eventSub) offer(ev proto.Event, limit int, force bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if len(s.queue) >= limit && !force {
		s.dropped++
		s.mu.Unlock()
		return
	}
	if s.queue == nil && s.spare != nil {
		// Reuse the buffer the pump drained rather than growing a fresh
		// one per drain cycle.
		s.queue, s.spare = s.spare[:0], nil
	}
	s.queue = append(s.queue, ev)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// take hands the pump everything queued plus the pending gap count.
func (s *eventSub) take() ([]proto.Event, uint64) {
	s.mu.Lock()
	evs := s.queue
	s.queue = nil
	dropped := s.dropped
	s.dropped = 0
	s.mu.Unlock()
	return evs, dropped
}

// giveBack returns a drained buffer for reuse once the pump has pushed
// (and therefore encoded) every event in it.
func (s *eventSub) giveBack(evs []proto.Event) {
	const maxSpare = 4096
	if cap(evs) > maxSpare {
		return
	}
	s.mu.Lock()
	if s.spare == nil {
		s.spare = evs[:0]
	}
	s.mu.Unlock()
}

// Pusher delivers event frames to one subscriber's connection. Push
// writes a single frame; PushBatch, when non-nil, writes a burst of
// frames with one gathered write — the pump prefers it so a drained
// queue of N events costs one syscall, not N.
type Pusher struct {
	Push      func(*proto.Response) error
	PushBatch func([]*proto.Response) error
}

// ErrHubClosed is returned for subscriptions on a closing daemon.
var ErrHubClosed = errors.New("urd: event hub closed")

// errNoSuchSub is mapped to ENotFound by the protocol layer.
var errNoSuchSub = errors.New("no such subscription")

// Subscribe registers a subscriber and starts its pump. snapshot
// resolves a task's current stats (explicit subscriptions get an
// immediate EvState snapshot per task, so subscribing after submission
// cannot miss a task that raced to a terminal state); it runs under
// the hub lock, so it must not call back into the hub — in particular
// it must not reach a Publish path. push writes one frame to the
// subscriber's connection; pushClosed signals connection teardown. The pump exits — and the subscription is removed — when the
// connection closes, push fails, the subscriber is unsubscribed, or an
// explicit task set has fully terminated.
func (h *EventHub) Subscribe(
	spec *proto.SubscribeSpec,
	snapshot func(id uint64) (task.Stats, error),
	push Pusher,
	pushClosed <-chan struct{},
) (uint64, error) {
	if !spec.All && len(spec.TaskIDs) == 0 {
		return 0, fmt.Errorf("%w: subscription needs task IDs or all", errBadRequest)
	}
	sub := &eventSub{
		all:          spec.All,
		terminalOnly: spec.TerminalOnly,
		notify:       make(chan struct{}, 1),
		done:         make(chan struct{}),
	}
	if spec.ProgressMS > 0 {
		sub.progress = time.Duration(spec.ProgressMS) * time.Millisecond
		if sub.progress < h.progressMin {
			sub.progress = h.progressMin
		}
		sub.lastTick = make(map[uint64]time.Time)
	}

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, ErrHubClosed
	}
	h.nextID++
	sub.id = h.nextID
	// Register — and make subCount visible — BEFORE taking the
	// snapshots. Registration and the snapshots are atomic under the
	// hub lock, so a concurrent publisher either blocks on mu and
	// delivers to the queue behind the snapshot, or took the
	// subCount==0 fast path — and the atomics' total order then
	// guarantees its transition happened before our Store, hence
	// before the snapshot read, which therefore already reflects it.
	// Either way no transition is lost in the subscribe window.
	h.subs[sub.id] = sub
	h.subCount.Store(int32(len(h.subs)))
	if spec.All {
		h.allSubs[sub.id] = sub
	} else {
		sub.tasks = make(map[uint64]struct{}, len(spec.TaskIDs))
		for _, id := range spec.TaskIDs {
			st, err := snapshot(id)
			if err != nil {
				delete(h.subs, sub.id)
				h.subCount.Store(int32(len(h.subs)))
				h.unindexLocked(sub)
				h.mu.Unlock()
				return 0, err
			}
			// A terminal-only subscriber skips non-terminal snapshots:
			// interest is still registered, and the task's one terminal
			// event will arrive when it happens.
			if !sub.terminalOnly || st.Status.Terminal() {
				sub.offer(proto.Event{
					SubID: sub.id, Kind: uint32(proto.EvState), TaskID: id,
					Stats: proto.FromStats(st), HasStats: true,
				}, h.queueCap, true)
			}
			if !st.Status.Terminal() {
				if _, dup := sub.tasks[id]; !dup {
					sub.tasks[id] = struct{}{}
					h.indexTaskLocked(id, sub)
				}
			}
		}
	}
	// An explicit set whose every task already terminated still gets
	// its snapshots delivered: the pump drains the queue, then exits.
	exhausted := !sub.all && len(sub.tasks) == 0
	h.mu.Unlock()
	if exhausted {
		h.remove(sub.id)
	}

	go h.pump(sub, push, pushClosed)
	// SubID stamps every event so one connection can demultiplex
	// several subscriptions.
	return sub.id, nil
}

// SubscribeSubmitted registers an explicit subscription over tasks
// that are registered but NOT YET runnable — the combined
// submit+subscribe path. Because no task in ids can have transitioned
// yet, there is nothing to snapshot: interest is recorded and the
// first event any of these tasks ever produces is delivered. This is
// what lets one OpSubmitBatch RPC replace the old submit-then-
// subscribe pair without a lost-event window. spec contributes the
// delivery options (progress rate, terminal-only); its task list is
// ignored in favor of ids.
func (h *EventHub) SubscribeSubmitted(
	spec *proto.SubscribeSpec,
	ids []uint64,
	push Pusher,
	pushClosed <-chan struct{},
) (uint64, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("%w: subscription needs task IDs", errBadRequest)
	}
	sub := &eventSub{
		terminalOnly: spec.TerminalOnly,
		notify:       make(chan struct{}, 1),
		done:         make(chan struct{}),
	}
	if spec.ProgressMS > 0 {
		sub.progress = time.Duration(spec.ProgressMS) * time.Millisecond
		if sub.progress < h.progressMin {
			sub.progress = h.progressMin
		}
		sub.lastTick = make(map[uint64]time.Time)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, ErrHubClosed
	}
	h.nextID++
	sub.id = h.nextID
	h.subs[sub.id] = sub
	h.subCount.Store(int32(len(h.subs)))
	sub.tasks = make(map[uint64]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := sub.tasks[id]; !dup {
			sub.tasks[id] = struct{}{}
			h.indexTaskLocked(id, sub)
		}
	}
	h.mu.Unlock()
	go h.pump(sub, push, pushClosed)
	return sub.id, nil
}

// Unsubscribe removes a subscription. The pump drains what is already
// queued, then exits.
func (h *EventHub) Unsubscribe(id uint64) error {
	h.mu.Lock()
	_, ok := h.subs[id]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w %d", errNoSuchSub, id)
	}
	h.remove(id)
	return nil
}

// unindexLocked removes sub from the publish indexes (byTask for its
// remaining explicit tasks, allSubs otherwise). Caller holds h.mu.
func (h *EventHub) unindexLocked(sub *eventSub) {
	if sub.all {
		delete(h.allSubs, sub.id)
		return
	}
	for id := range sub.tasks {
		h.unindexTaskLocked(id, sub)
	}
}

// indexTaskLocked records sub's interest in id. Caller holds h.mu.
func (h *EventHub) indexTaskLocked(id uint64, sub *eventSub) {
	if cur, ok := h.byTask[id]; !ok {
		h.byTask[id] = sub
	} else if cur != sub {
		h.byTaskMore[id] = append(h.byTaskMore[id], sub)
	}
}

// unindexTaskLocked removes sub's interest in id, promoting an
// overflow subscriber into the single slot if one exists. Caller holds
// h.mu.
func (h *EventHub) unindexTaskLocked(id uint64, sub *eventSub) {
	if h.byTask[id] == sub {
		more := h.byTaskMore[id]
		if n := len(more); n > 0 {
			h.byTask[id] = more[n-1]
			if n == 1 {
				delete(h.byTaskMore, id)
			} else {
				h.byTaskMore[id] = more[:n-1]
			}
		} else {
			delete(h.byTask, id)
		}
		return
	}
	more := h.byTaskMore[id]
	for i, s := range more {
		if s == sub {
			more[i] = more[len(more)-1]
			if len(more) == 1 {
				delete(h.byTaskMore, id)
			} else {
				h.byTaskMore[id] = more[:len(more)-1]
			}
			return
		}
	}
}

// remove drops a subscription and signals its pump (idempotent).
func (h *EventHub) remove(id uint64) {
	h.mu.Lock()
	sub, ok := h.subs[id]
	if ok {
		delete(h.subs, id)
		h.unindexLocked(sub)
	}
	h.subCount.Store(int32(len(h.subs)))
	h.mu.Unlock()
	if ok {
		sub.mu.Lock()
		closed := sub.closed
		sub.closed = true
		sub.mu.Unlock()
		if !closed {
			close(sub.done)
		}
	}
}

// Close removes every subscription. Pumps drain their queues and exit;
// publishing afterwards is a no-op.
func (h *EventHub) Close() {
	h.mu.Lock()
	h.closed = true
	ids := make([]uint64, 0, len(h.subs))
	for id := range h.subs {
		ids = append(ids, id)
	}
	h.mu.Unlock()
	for _, id := range ids {
		h.remove(id)
	}
}

// Subscribers reports the live subscription count (diagnostics/tests).
func (h *EventHub) Subscribers() int { return int(h.subCount.Load()) }

// ForgetTask drops a retired task's dedup and throttle state. The
// daemon calls it when the task leaves the in-memory table, so the
// hub's per-task maps stay bounded by the same retention policy.
func (h *EventHub) ForgetTask(id uint64) {
	h.lastTick.Delete(id)
	h.mu.Lock()
	delete(h.lastState, id)
	delete(h.byTask, id)
	delete(h.byTaskMore, id)
	h.mu.Unlock()
}

// PublishState fans a task state transition out to matching
// subscribers. Duplicate publishes of the same state (racing cancel and
// worker paths) are suppressed. Never blocks.
func (h *EventHub) PublishState(id uint64, st task.Stats) {
	if st.Status.Terminal() {
		// The task will never tick again: drop its throttle state
		// unconditionally — the subCount fast path below must not skip
		// this, or churning watchers leak one entry per finished task.
		h.lastTick.Delete(id)
	}
	if h.subCount.Load() == 0 {
		// Still record the state for dedup? No subscriber has seen
		// anything, so there is nothing to dedup against; skipping the
		// map write keeps the no-subscriber path allocation-free.
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	// Dedup, with sticky terminals: a racing publisher holding a stale
	// pre-terminal snapshot (Cancel's Cancelling vs the worker's
	// Cancelled) must not resurrect a task after its terminal event.
	if prev := h.lastState[id]; prev == st.Status || prev.Terminal() {
		h.mu.Unlock()
		return
	}
	h.lastState[id] = st.Status
	terminal := st.Status.Terminal()
	// The indexes hand us exactly the interested subscribers: the
	// explicit subscriptions holding this task plus the all-tasks ones.
	// Built lazily on the first matching subscriber, like
	// PublishProgress: most transitions fan out to nobody when only
	// unrelated explicit subscriptions are live.
	var ps proto.TaskStats
	built := false
	var exhausted []uint64
	deliver := func(sub *eventSub, explicit bool) {
		if terminal {
			delete(sub.lastTick, id)
		}
		if sub.terminalOnly && !terminal {
			return
		}
		if !built {
			ps = proto.FromStats(st)
			built = true
		}
		// Terminal transitions of explicitly subscribed tasks bypass
		// the cap: the client is provably waiting on them, and the
		// overshoot is bounded by its own subscription size.
		sub.offer(proto.Event{
			SubID: sub.id, Kind: uint32(proto.EvState), TaskID: id, Stats: ps, HasStats: true,
		}, h.queueCap, explicit && terminal)
	}
	explicitDeliver := func(sub *eventSub) {
		deliver(sub, true)
		if terminal {
			delete(sub.tasks, id)
			if len(sub.tasks) == 0 {
				exhausted = append(exhausted, sub.id)
			}
		}
	}
	if sub, ok := h.byTask[id]; ok {
		explicitDeliver(sub)
		for _, s := range h.byTaskMore[id] {
			explicitDeliver(s)
		}
	}
	if terminal {
		// Every interested explicit subscription was just detached from
		// this task; drop its index entries wholesale.
		delete(h.byTask, id)
		delete(h.byTaskMore, id)
	}
	for _, sub := range h.allSubs {
		deliver(sub, false)
	}
	h.mu.Unlock()
	// An explicit subscription whose last task just terminated is spent:
	// reap it so long-lived connections submitting many batches do not
	// accumulate dead subscriptions.
	for _, sid := range exhausted {
		h.remove(sid)
	}
}

// PublishProgress fans a rate-limited progress tick for a running task
// out to subscribers that asked for progress. Called from the transfer
// hot path (once per copied chunk), so the no-subscriber fast path is a
// single atomic load and ticks are throttled per task at the hub floor
// before any snapshot is taken. Never blocks.
func (h *EventHub) PublishProgress(t *task.Task) {
	if h.subCount.Load() == 0 {
		return
	}
	now := time.Now()
	// Lock-free throttle rejection first: the overwhelming majority of
	// per-chunk calls end here without serializing the workers.
	if v, ok := h.lastTick.Load(t.ID); ok && now.Sub(v.(time.Time)) < h.progressMin {
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	// Re-check under the lock so racing workers emit one tick, not one
	// each.
	if v, ok := h.lastTick.Load(t.ID); ok && now.Sub(v.(time.Time)) < h.progressMin {
		h.mu.Unlock()
		return
	}
	h.lastTick.Store(t.ID, now)
	var ps proto.TaskStats
	built := false
	tick := func(sub *eventSub) {
		if sub.progress == 0 {
			return
		}
		if now.Sub(sub.lastTick[t.ID]) < sub.progress {
			return
		}
		sub.lastTick[t.ID] = now
		if !built {
			ps = proto.FromStats(t.Stats())
			built = true
		}
		sub.offer(proto.Event{
			SubID: sub.id, Kind: uint32(proto.EvProgress), TaskID: t.ID, Stats: ps, HasStats: true,
		}, h.queueCap, false)
	}
	if sub, ok := h.byTask[t.ID]; ok {
		tick(sub)
		for _, s := range h.byTaskMore[t.ID] {
			tick(s)
		}
	}
	for _, sub := range h.allSubs {
		tick(sub)
	}
	h.mu.Unlock()
}

// pump drains one subscriber's queue onto its connection. It is the
// only goroutine that writes this subscription's frames, so queue order
// is delivery order, with one EvGap appended whenever overflow was
// coalesced since the last drain. A drain of N events goes out as one
// gathered write when the connection supports it — under burst load
// (a batch subscription's snapshot, a worker pool completing tasks)
// that divides the push-path syscalls by the drain size.
func (h *EventHub) pump(sub *eventSub, push Pusher, pushClosed <-chan struct{}) {
	// Per-pump scratch, grown once and reused every drain: the batch
	// push consumes (encodes) the frames before returning, so nothing
	// outlives the call.
	var vals []proto.Response
	var resps []*proto.Response
	flush := func() bool {
		evs, dropped := sub.take()
		if dropped > 0 {
			evs = append(evs, proto.Event{
				SubID: sub.id, Kind: uint32(proto.EvGap), Dropped: dropped,
			})
		}
		if len(evs) == 0 {
			return true
		}
		if push.PushBatch != nil {
			vals = vals[:0]
			resps = resps[:0]
			for i := range evs {
				vals = append(vals, proto.Response{Status: proto.Success, Event: evs[i], HasEvent: true})
			}
			for i := range vals {
				resps = append(resps, &vals[i])
			}
			ok := push.PushBatch(resps) == nil
			sub.giveBack(evs)
			return ok
		}
		for i := range evs {
			if err := push.Push(&proto.Response{Status: proto.Success, Event: evs[i], HasEvent: true}); err != nil {
				return false
			}
		}
		sub.giveBack(evs)
		return true
	}
	for {
		select {
		case <-sub.notify:
			if !flush() {
				h.remove(sub.id)
				return
			}
		case <-sub.done:
			// Unsubscribed (or spent, or hub closing): deliver what is
			// already queued, then stop. A failed push is moot here.
			flush()
			return
		case <-pushClosed:
			h.remove(sub.id)
			return
		}
	}
}
