package journal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ngioproject/norns-go/internal/task"
)

// gcSpec builds a minimal valid spec for group-commit tests.
func gcSpec(id uint64) task.Spec {
	return task.Spec{
		Kind:   task.Copy,
		Input:  task.Resource{Kind: task.LocalPath, Dataspace: "gc://", Path: fmt.Sprintf("in-%d", id)},
		Output: task.Resource{Kind: task.LocalPath, Dataspace: "gc://", Path: fmt.Sprintf("out-%d", id)},
	}
}

// TestGroupCommitCrashInjection is the flush-window durability proof:
// many goroutines submit concurrently against a journal with a real
// coalescing window while the journal is frozen (killed) at a random
// point mid-storm. Every submission whose RecordSubmit returned before
// the kill was initiated must be recoverable from disk — group commit
// may batch the writes, but it must never acknowledge a submit that is
// not yet durable.
func TestGroupCommitCrashInjection(t *testing.T) {
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		j := mustOpen(t, dir, Options{FlushInterval: 2 * time.Millisecond})

		var (
			mu     sync.Mutex
			acked  = map[uint64]bool{}
			killed atomic.Bool
			nextID atomic.Uint64
			wg     sync.WaitGroup
		)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !killed.Load() {
					id := nextID.Add(1)
					if err := j.RecordSubmit(id, gcSpec(id)); err != nil {
						t.Errorf("RecordSubmit(%d): %v", id, err)
						return
					}
					// Count the ack only while the kill has not been
					// initiated: RecordSubmit returning after the freeze
					// flag is the in-flight call of a dying process — its
					// ack never escaped, so it makes no durability claim.
					mu.Lock()
					if !killed.Load() {
						acked[id] = true
					}
					mu.Unlock()
				}
			}()
		}
		// Let a few flush windows elapse, then kill mid-storm. The flag
		// flips strictly before Freeze so no goroutine can record an ack
		// for a write the freeze may have dropped.
		time.Sleep(time.Duration(3+round) * time.Millisecond)
		killed.Store(true)
		j.Freeze()
		wg.Wait()
		_ = j.Close() // frozen close: releases files, writes nothing

		j2 := mustOpen(t, dir, Options{})
		recovered := map[uint64]bool{}
		for _, tr := range j2.Tasks() {
			recovered[tr.ID] = true
		}
		mu.Lock()
		for id := range acked {
			if !recovered[id] {
				t.Fatalf("round %d: acknowledged submit %d lost across the flush-window kill (acked %d, recovered %d)",
					round, id, len(acked), len(recovered))
			}
		}
		mu.Unlock()
		j2.Close()
	}
}

// TestGroupCommitCoalesces proves the group commit actually groups:
// concurrent appends against a journal with a flush window land in far
// fewer flush generations than records. (With a window of 5ms and 64
// concurrent appenders, anything close to one generation per record
// would mean the batching is broken.)
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{FlushInterval: 5 * time.Millisecond})
	defer j.Close()

	const appenders = 16
	const perAppender = 8
	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				id := uint64(g*perAppender + i + 1)
				if err := j.RecordSubmit(id, gcSpec(id)); err != nil {
					t.Errorf("RecordSubmit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	j.mu.Lock()
	gens := j.doneGen
	records := j.walRecords
	j.mu.Unlock()
	if records != appenders*perAppender {
		t.Fatalf("walRecords = %d, want %d", records, appenders*perAppender)
	}
	if gens >= uint64(records)/2 {
		t.Errorf("%d records took %d flush generations — group commit is not coalescing", records, gens)
	}
}

// TestGroupCommitBatchOrder: a RecordSubmitBatch followed by state
// transitions replays in order — the batch's records precede the
// transitions in the WAL, so a terminal state never applies before its
// submission.
func TestGroupCommitBatchOrder(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	ids := []uint64{1, 2, 3, 4}
	specs := make([]task.Spec, len(ids))
	for i, id := range ids {
		specs[i] = gcSpec(id)
	}
	if err := j.RecordSubmitBatch(ids, specs); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordState(3, task.Running, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordStats(3, task.Stats{Status: task.Finished, TotalBytes: 9, MovedBytes: 9}); err != nil {
		t.Fatal(err)
	}
	j.Freeze() // recover from the WAL alone, no Close-time compaction
	_ = j.Close()

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	recs := j2.Tasks()
	if len(recs) != 4 {
		t.Fatalf("recovered %d tasks, want 4", len(recs))
	}
	for _, tr := range recs {
		want := task.Pending
		if tr.ID == 3 {
			want = task.Finished
		}
		if tr.Status != want {
			t.Errorf("task %d recovered as %s, want %s", tr.ID, tr.Status, want)
		}
	}
	if id := j2.NextID(); id != 4 {
		t.Errorf("NextID = %d, want 4", id)
	}
}
