package journal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
)

func specFor(payload string, path string) task.Spec {
	return task.Spec{
		Kind:   task.Copy,
		Input:  task.MemoryRegion([]byte(payload)),
		Output: task.PosixPath("nvme0://", path),
		JobID:  7,
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func taskByID(t *testing.T, j *Journal, id uint64) TaskRecord {
	t.Helper()
	for _, tr := range j.Tasks() {
		if tr.ID == id {
			return tr
		}
	}
	t.Fatalf("task %d not in journal", id)
	return TaskRecord{}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	if err := j.RecordDataspace(proto.DataspaceSpec{ID: "nvme0://", Backend: 2, Capacity: 1 << 30, Track: true}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordSubmit(1, specFor("abc", "a")); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordState(1, task.Running, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordSubmit(2, specFor("def", "b")); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordStats(1, task.Stats{Status: task.Finished, TotalBytes: 3, MovedBytes: 3}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got := j2.NextID(); got != 2 {
		t.Fatalf("NextID = %d, want 2", got)
	}
	dss := j2.Dataspaces()
	if len(dss) != 1 || dss[0].ID != "nvme0://" || !dss[0].Track || dss[0].Capacity != 1<<30 {
		t.Fatalf("dataspaces = %+v", dss)
	}
	if tr := taskByID(t, j2, 1); tr.Status != task.Finished || tr.MovedBytes != 3 || tr.TotalBytes != 3 {
		t.Fatalf("task 1 = %+v, want finished with 3/3 bytes", tr)
	}
	tr := taskByID(t, j2, 2)
	if tr.Status != task.Pending || string(tr.Spec.Input.Data) != "def" || tr.Spec.JobID != 7 {
		t.Fatalf("task 2 = %+v", tr)
	}
}

// TestCrashBetweenRecordPoints freezes the journal at every record
// boundary of a submit→running→finished sequence and checks what a
// replay would re-queue: everything recorded before the crash, nothing
// after, and a terminal record is never resurrected.
func TestCrashBetweenRecordPoints(t *testing.T) {
	type step struct {
		name string
		do   func(j *Journal)
	}
	steps := []step{
		{"submit", func(j *Journal) { _ = j.RecordSubmit(1, specFor("xyz", "x")) }},
		{"running", func(j *Journal) { _ = j.RecordState(1, task.Running, "") }},
		{"finished", func(j *Journal) { _ = j.RecordState(1, task.Finished, "") }},
	}
	// crashAfter = number of record points that made it to disk.
	for crashAfter := 0; crashAfter <= len(steps); crashAfter++ {
		dir := t.TempDir()
		j := mustOpen(t, dir, Options{})
		for i, s := range steps {
			if i == crashAfter {
				j.Freeze()
			}
			s.do(j)
		}
		if crashAfter == len(steps) {
			j.Freeze() // crash after everything landed
		}
		_ = j.Close() // frozen: writes nothing, like the process dying

		j2 := mustOpen(t, dir, Options{})
		recs := j2.Tasks()
		switch crashAfter {
		case 0:
			if len(recs) != 0 {
				t.Errorf("crash before submit: recovered %+v, want none", recs)
			}
		case 1:
			if len(recs) != 1 || recs[0].Status != task.Pending {
				t.Errorf("crash after submit: recovered %+v, want 1 pending", recs)
			}
		case 2:
			if len(recs) != 1 || recs[0].Status != task.Running {
				t.Errorf("crash after running: recovered %+v, want 1 running", recs)
			}
		case 3:
			if len(recs) != 1 || recs[0].Status != task.Finished {
				t.Errorf("crash after finished: recovered %+v, want 1 finished", recs)
			}
		}
		// A late stale record must never resurrect a terminal task.
		if crashAfter == 3 {
			if err := j2.RecordState(1, task.Running, ""); err != nil {
				t.Fatal(err)
			}
			if tr := taskByID(t, j2, 1); tr.Status != task.Finished {
				t.Errorf("terminal task resurrected to %v", tr.Status)
			}
		}
		j2.Close()
	}
}

// TestTornTailDiscarded simulates a crash mid-append: a partial final
// frame must be discarded on open and appends must resume cleanly.
func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	if err := j.RecordSubmit(1, specFor("abc", "a")); err != nil {
		t.Fatal(err)
	}
	// "Crash" the journal — frozen Close writes nothing and compacts
	// nothing, it only releases the file handles — then tear the WAL
	// tail as an interrupted append would.
	j.Freeze()
	_ = j.Close()
	wal := filepath.Join(dir, "wal")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A frame claiming 200 payload bytes, with only 3 present.
	if _, err := f.Write([]byte{200, 1, 'x', 'y', 'z'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := mustOpen(t, dir, Options{})
	if len(j2.Tasks()) != 1 {
		t.Fatalf("recovered %+v, want the one whole record", j2.Tasks())
	}
	if err := j2.RecordSubmit(2, specFor("def", "b")); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3 := mustOpen(t, dir, Options{})
	defer j3.Close()
	if len(j3.Tasks()) != 2 {
		t.Fatalf("after torn-tail repair: %+v, want 2 tasks", j3.Tasks())
	}
}

// TestCompactionBoundsWAL drives many transitions through a journal with
// a tiny compaction threshold and checks the WAL never grows past it.
func TestCompactionBoundsWAL(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: 8, RetainTerminal: 4})
	for id := uint64(1); id <= 50; id++ {
		if err := j.RecordSubmit(id, specFor("p", "x")); err != nil {
			t.Fatal(err)
		}
		if err := j.RecordState(id, task.Running, ""); err != nil {
			t.Fatal(err)
		}
		if err := j.RecordState(id, task.Finished, ""); err != nil {
			t.Fatal(err)
		}
		if n := j.WALRecords(); n >= 8 {
			t.Fatalf("WAL grew to %d records despite CompactEvery=8", n)
		}
	}
	// Terminal retention: only the newest 4 terminal tasks survive.
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	recs := j.Tasks()
	if len(recs) != 4 {
		t.Fatalf("retained %d terminal tasks, want 4", len(recs))
	}
	for _, tr := range recs {
		if tr.ID <= 46 {
			t.Errorf("old terminal task %d retained", tr.ID)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got := j2.NextID(); got != 50 {
		t.Fatalf("NextID across GC = %d, want 50 (header high-water mark)", got)
	}
}

func TestDataspaceRemovalJournaled(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	if err := j.RecordDataspace(proto.DataspaceSpec{ID: "a://"}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordDataspace(proto.DataspaceSpec{ID: "b://"}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordDataspaceRemoved("a://"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	dss := j2.Dataspaces()
	if len(dss) != 1 || dss[0].ID != "b://" {
		t.Fatalf("dataspaces = %+v, want only b://", dss)
	}
}

// TestStateDirLockedExclusively: two journals on one directory would
// interleave WAL frames and truncate each other's records at
// compaction, so the second Open must fail while the first holds the
// lock — and succeed once it is released.
func TestStateDirLockedExclusively(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a locked state dir succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir, Options{})
	j2.Close()
}

func TestClosedJournalRejectsAppends(t *testing.T) {
	j := mustOpen(t, t.TempDir(), Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordState(1, task.Running, ""); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestConcurrentAppends exercises the journal under parallel writers
// (run with -race) and verifies nothing is lost or duplicated.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{CompactEvery: 32})
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i + 1)
				if err := j.RecordSubmit(id, specFor("p", "x")); err != nil {
					t.Errorf("submit %d: %v", id, err)
				}
				if err := j.RecordState(id, task.Finished, ""); err != nil {
					t.Errorf("state %d: %v", id, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got := j2.NextID(); got != writers*perWriter {
		t.Fatalf("NextID = %d, want %d", got, writers*perWriter)
	}
	for _, tr := range j2.Tasks() {
		if tr.Status != task.Finished {
			t.Fatalf("task %d = %v, want finished", tr.ID, tr.Status)
		}
	}
}

// TestProgressCheckpointAndClear: segment checkpoints accumulate on a
// task record, an all-zero progress record clears them (the engine's
// journal-side discard when a destination vanished), and both states
// survive compaction and reopen.
func TestProgressCheckpointAndClear(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	if err := j.RecordSubmit(1, specFor("x", "f")); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordState(1, task.Running, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordProgress(1, 256, 1024, []byte{0x03}, 512); err != nil {
		t.Fatal(err)
	}
	tr := taskByID(t, j, 1)
	if tr.SegSize != 256 || tr.SegPlan != 1024 || len(tr.SegBits) != 1 || tr.SegBits[0] != 0x03 {
		t.Fatalf("checkpoint = %+v", tr)
	}
	// Survives compaction + reopen.
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j = mustOpen(t, dir, Options{})
	tr = taskByID(t, j, 1)
	if tr.SegSize != 256 || tr.SegPlan != 1024 || len(tr.SegBits) != 1 {
		t.Fatalf("checkpoint lost across reopen: %+v", tr)
	}
	// The clear record wipes it.
	if err := j.RecordProgress(1, 0, 0, nil, 0); err != nil {
		t.Fatal(err)
	}
	tr = taskByID(t, j, 1)
	if tr.SegSize != 0 || tr.SegPlan != 0 || len(tr.SegBits) != 0 {
		t.Fatalf("clear record did not wipe checkpoint: %+v", tr)
	}
	// Terminal transitions retain the scalar counters but never the
	// bitmap.
	if err := j.RecordStats(1, task.Stats{
		Status: task.Finished, TotalBytes: 1024, MovedBytes: 1024,
		SegmentsTotal: 4, SegmentsDone: 4,
	}); err != nil {
		t.Fatal(err)
	}
	tr = taskByID(t, j, 1)
	if len(tr.SegBits) != 0 || tr.SegsTotal != 4 || tr.SegsDone != 4 {
		t.Fatalf("terminal record = %+v", tr)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
