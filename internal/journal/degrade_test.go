package journal

import (
	"errors"
	"testing"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
)

// errDisk is the injected fault standing in for ENOSPC.
var errDisk = errors.New("no space left on device")

// TestWriteFailurePoisonsEveryOp proves the sticky-writeErr contract:
// after one WAL write fails, every append-path operation returns a
// typed error satisfying errors.Is(err, ErrDegraded) — not just the
// Sync paths — and WriteErr reports the same.
func TestWriteFailurePoisonsEveryOp(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	defer j.Close()

	if err := j.RecordSubmit(1, specFor("abc", "a")); err != nil {
		t.Fatal(err)
	}
	j.SetFailWrites(errDisk)
	if err := j.RecordSubmit(2, specFor("def", "b")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("RecordSubmit after fault = %v, want ErrDegraded", err)
	}

	ops := []struct {
		name string
		do   func() error
	}{
		{"RecordState", func() error { return j.RecordState(1, task.Running, "") }},
		{"RecordStats", func() error { return j.RecordStats(1, task.Stats{Status: task.Running}) }},
		{"RecordProgress", func() error { return j.RecordProgress(1, 4, 16, []byte{0xff}, 4) }},
		{"RecordRetry", func() error { return j.RecordRetry(1, 1, "boom") }},
		{"RecordDataspace", func() error { return j.RecordDataspace(proto.DataspaceSpec{ID: "nvme0://"}) }},
		{"RecordDataspaceRemoved", func() error { return j.RecordDataspaceRemoved("nvme0://") }},
		{"RecordSubmitBatch", func() error {
			return j.RecordSubmitBatch([]uint64{3}, []task.Spec{specFor("ghi", "c")})
		}},
		{"Compact", j.Compact},
		{"MarkClean", j.MarkClean},
	}
	for _, op := range ops {
		if err := op.do(); !errors.Is(err, ErrDegraded) {
			t.Errorf("%s after write failure = %v, want ErrDegraded", op.name, err)
		}
	}
	if err := j.WriteErr(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("WriteErr = %v, want ErrDegraded", err)
	}
}

// TestAckedSubmitsSurviveWriteFailure proves durability across the
// fault: a submission acknowledged before the disk broke is still
// replayed after the daemon closes (with the fault live) and reopens,
// while the rejected post-fault submission never reappears as acked
// state the caller could rely on.
func TestAckedSubmitsSurviveWriteFailure(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	if err := j.RecordSubmit(1, specFor("abc", "a")); err != nil {
		t.Fatal(err)
	}
	j.SetFailWrites(errDisk)
	if err := j.RecordSubmit(2, specFor("def", "b")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("RecordSubmit after fault = %v, want ErrDegraded", err)
	}
	// Close fails (it cannot compact onto the broken disk) but must still
	// release the state dir.
	if err := j.Close(); err == nil {
		t.Fatal("Close on a degraded journal with a live fault = nil, want error")
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if tr := taskByID(t, j2, 1); tr.Status != task.Pending {
		t.Fatalf("acked task 1 replayed as %v, want pending", tr.Status)
	}
}

// TestProbeRecoversDegradedJournal exercises the recovery path: once
// the disk heals, Probe rebuilds the snapshot from memory, clears the
// sticky error, and appends work again — with every acked record (from
// before and after the outage) surviving a reopen.
func TestProbeRecoversDegradedJournal(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	if err := j.RecordSubmit(1, specFor("abc", "a")); err != nil {
		t.Fatal(err)
	}
	j.SetFailWrites(errDisk)
	if err := j.RecordSubmit(2, specFor("def", "b")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("RecordSubmit after fault = %v, want ErrDegraded", err)
	}
	// While the fault is live, Probe must keep reporting failure.
	if err := j.Probe(); err == nil {
		t.Fatal("Probe with the fault still live = nil, want error")
	}
	if err := j.WriteErr(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("WriteErr after failed probe = %v, want still degraded", err)
	}

	j.SetFailWrites(nil)
	if err := j.Probe(); err != nil {
		t.Fatalf("Probe after heal = %v, want nil", err)
	}
	if err := j.WriteErr(); err != nil {
		t.Fatalf("WriteErr after recovery = %v, want nil", err)
	}
	if err := j.RecordSubmit(3, specFor("ghi", "c")); err != nil {
		t.Fatalf("RecordSubmit after recovery = %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	taskByID(t, j2, 1)
	taskByID(t, j2, 3)
}

// TestCleanShutdownMarker checks the fast-replay marker life cycle:
// MarkClean seals the journal so the next open reports Clean, and any
// record appended after that replay clears the flag again.
func TestCleanShutdownMarker(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	if err := j.RecordSubmit(1, specFor("abc", "a")); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordStats(1, task.Stats{Status: task.Finished, TotalBytes: 3, MovedBytes: 3}); err != nil {
		t.Fatal(err)
	}
	if j.Clean() {
		t.Fatal("Clean before MarkClean = true")
	}
	if err := j.MarkClean(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir, Options{})
	if !j2.Clean() {
		t.Fatal("Clean after sealed reopen = false, want true")
	}
	if tr := taskByID(t, j2, 1); tr.Status != task.Finished {
		t.Fatalf("task 1 replayed as %v, want finished", tr.Status)
	}
	// New work dirties the journal: the marker is only meaningful as the
	// final record.
	if err := j2.RecordSubmit(2, specFor("def", "b")); err != nil {
		t.Fatal(err)
	}
	if j2.Clean() {
		t.Fatal("Clean after post-marker append = true, want false")
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	j3 := mustOpen(t, dir, Options{})
	defer j3.Close()
	if j3.Clean() {
		t.Fatal("Clean after unsealed close = true, want false")
	}
}

// TestRetryAttemptsPersist checks that RecordRetry makes the attempt
// counter durable: a reopened journal reports the task Pending with the
// journaled attempt count, so the daemon resumes the backoff schedule
// instead of resetting the budget.
func TestRetryAttemptsPersist(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{})
	if err := j.RecordSubmit(1, specFor("abc", "a")); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordState(1, task.Running, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordRetry(1, 2, "endpoint unreachable"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	tr := taskByID(t, j2, 1)
	if tr.Status != task.Pending || tr.Attempts != 2 || tr.Err != "endpoint unreachable" {
		t.Fatalf("retried task = status %v attempts %d err %q, want pending/2/endpoint unreachable", tr.Status, tr.Attempts, tr.Err)
	}
}
