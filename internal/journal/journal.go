// Package journal implements the urd daemon's durable task journal: an
// append-only write-ahead log of task submissions and state transitions,
// periodically compacted into a snapshot so the log stays bounded.
//
// The paper's premise is that asynchronous staging decouples data
// movement from job lifetime — which only holds if the staging work
// survives the daemon itself. The journal records enough to rebuild the
// task table after a crash: replaying it re-queues tasks that were
// pending or running when the daemon died (re-running a copy is
// idempotent, the paper-consistent recovery model) and never resurrects
// tasks that already reached a terminal state.
//
// On-disk layout (inside the state directory):
//
//	wal       — append-only stream of length-prefixed wire records
//	snapshot  — compacted state, written atomically via rename
//
// Both files reuse the internal/wire framing (uvarint length prefix +
// tagged-field payload), so the format is forward-compatible: unknown
// record kinds and fields are skipped. A partial final WAL record from
// an interrupted write is detected and discarded on open.
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"syscall"
	"time"

	"github.com/ngioproject/norns-go/internal/proto"
	"github.com/ngioproject/norns-go/internal/task"
	"github.com/ngioproject/norns-go/internal/wire"
)

// Record kinds. Values are on-disk stable; add new kinds, never renumber.
const (
	recSubmit    = 1 // a task submission (spec; snapshot records carry state too)
	recState     = 2 // a task state transition
	recDataspace = 3 // a dataspace registration, update, or removal
	recHeader    = 4 // snapshot header (ID high-water mark)
	recProgress  = 5 // a segment-bitmap checkpoint of a running transfer
	recShutdown  = 6 // clean-shutdown marker; meaningful only as the final record
)

// record is the single on-disk message. One struct with optional fields
// keeps the decoder trivial and the format evolvable.
type record struct {
	Kind    uint32
	TaskID  uint64
	Spec    *task.Spec
	Status  uint32
	Err     string
	DS      *proto.DataspaceSpec
	DSDel   bool
	NextID  uint64
	DSDelID string
	Total   int64
	Moved   int64
	SegSize int64
	SegBits []byte
	SegPlan int64
	// SegsTotal/SegsDone are the final segment counters of a terminal
	// record, so a resurrected task keeps reporting its segment plan.
	SegsTotal uint32
	SegsDone  uint32
	// Cache/Delta are the staging-cache byte counters of a state record
	// (bytes served from the local content-addressed cache and bytes
	// skipped by delta matching), so resurrection keeps them honest.
	Cache int64
	Delta int64
	// Attempts is the task's retry attempt counter, journaled on every
	// retry re-queue so a restart resumes the backoff budget instead of
	// granting a crashed task a fresh one.
	Attempts uint64
}

// MarshalWire implements wire.Marshaler.
func (r *record) MarshalWire(e *wire.Encoder) {
	e.Uint32(1, r.Kind)
	if r.TaskID != 0 {
		e.Uint64(2, r.TaskID)
	}
	if r.Spec != nil {
		e.Message(3, r.Spec)
	}
	if r.Status != 0 {
		e.Uint32(4, r.Status)
	}
	if r.Err != "" {
		e.String(5, r.Err)
	}
	if r.DS != nil {
		e.Message(6, r.DS)
	}
	if r.DSDel {
		e.Bool(7, r.DSDel)
	}
	if r.NextID != 0 {
		e.Uint64(8, r.NextID)
	}
	if r.DSDelID != "" {
		e.String(9, r.DSDelID)
	}
	if r.Total != 0 {
		e.Int64(10, r.Total)
	}
	if r.Moved != 0 {
		e.Int64(11, r.Moved)
	}
	if r.SegSize != 0 {
		e.Int64(12, r.SegSize)
	}
	if len(r.SegBits) > 0 {
		e.Bytes(13, r.SegBits)
	}
	if r.SegPlan != 0 {
		e.Int64(14, r.SegPlan)
	}
	if r.SegsTotal != 0 {
		e.Uint32(15, r.SegsTotal)
	}
	if r.SegsDone != 0 {
		e.Uint32(16, r.SegsDone)
	}
	if r.Cache != 0 {
		e.Int64(17, r.Cache)
	}
	if r.Delta != 0 {
		e.Int64(18, r.Delta)
	}
	if r.Attempts != 0 {
		e.Uint64(19, r.Attempts)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *record) UnmarshalWire(d *wire.Decoder) error {
	for d.Next() {
		switch d.Tag() {
		case 1:
			r.Kind = d.Uint32()
		case 2:
			r.TaskID = d.Uint64()
		case 3:
			r.Spec = new(task.Spec)
			d.Message(r.Spec)
		case 4:
			r.Status = d.Uint32()
		case 5:
			r.Err = d.String()
		case 6:
			r.DS = new(proto.DataspaceSpec)
			d.Message(r.DS)
		case 7:
			r.DSDel = d.Bool()
		case 8:
			r.NextID = d.Uint64()
		case 9:
			r.DSDelID = d.String()
		case 10:
			r.Total = d.Int64()
		case 11:
			r.Moved = d.Int64()
		case 12:
			r.SegSize = d.Int64()
		case 13:
			r.SegBits = append([]byte(nil), d.Bytes()...)
		case 14:
			r.SegPlan = d.Int64()
		case 15:
			r.SegsTotal = d.Uint32()
		case 16:
			r.SegsDone = d.Uint32()
		case 17:
			r.Cache = d.Int64()
		case 18:
			r.Delta = d.Int64()
		case 19:
			r.Attempts = d.Uint64()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

// TaskRecord is one task's journaled state: its durable spec plus the
// last recorded life-cycle transition (with final byte counters for
// terminal records, so a resurrected task reports real progress).
type TaskRecord struct {
	ID         uint64
	Spec       task.Spec
	Status     task.Status
	Err        string
	TotalBytes int64
	MovedBytes int64
	// SegSize/SegPlan/SegBits are the last progress checkpoint of a
	// running transfer: the segment size, the planned total bytes (the
	// checkpoint's identity — a resized source invalidates it), and the
	// completion bitmap. A recovered task with a matching checkpoint
	// re-copies only the segments missing from the bitmap instead of
	// the whole file. Cleared once the task is terminal.
	SegSize int64
	SegPlan int64
	SegBits []byte
	// SegsTotal/SegsDone are the final segment counters of a terminal
	// task (resurrection fidelity; zero while running).
	SegsTotal int
	SegsDone  int
	// CacheBytes/DeltaBytes are the staging-cache counters of the last
	// recorded transition: bytes served locally from the content-
	// addressed cache and bytes skipped because the destination already
	// matched the remote digests.
	CacheBytes int64
	DeltaBytes int64
	// Attempts is the task's retry attempt counter at the last journaled
	// transition, so a restarted daemon resumes the retry budget rather
	// than resetting it.
	Attempts uint64
}

// Options tunes a journal. The zero value selects the defaults.
type Options struct {
	// CompactEvery is the number of WAL records appended before an
	// automatic compaction (<=0 selects 4096).
	CompactEvery int
	// RetainTerminal is how many of the most recent terminal tasks a
	// snapshot keeps, so completed-task IDs keep answering status
	// queries across a restart before being garbage-collected
	// (<=0 selects 1024; older terminal tasks are dropped at compaction).
	RetainTerminal int
	// Sync fsyncs the WAL after each group-commit flush. Off by default:
	// the urd recovery model tolerates losing the last few transitions
	// (a re-run copy is idempotent), so fsync latency is not worth
	// paying on the submit path. With group commit one fsync covers the
	// whole coalesced batch, so turning this on costs one disk sync per
	// flush window, not per record.
	Sync bool
	// FlushInterval is the group-commit window: an append signals the
	// flusher and the flusher waits this long before writing, so
	// concurrent appends — submissions from many clients, the progress-
	// checkpoint firehose from transfer workers — coalesce into one
	// buffered write (and one fsync, with Sync) instead of one syscall
	// each. Every Record* call still blocks until its record is on disk,
	// so acknowledged work is never lost to a crash; the window only
	// bounds how long an append may wait for co-travellers. Zero flushes
	// immediately (appends racing an in-progress flush still coalesce).
	FlushInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.CompactEvery <= 0 {
		o.CompactEvery = 4096
	}
	if o.RetainTerminal <= 0 {
		o.RetainTerminal = 1024
	}
	return o
}

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("journal: closed")

// ErrDegraded wraps the journal's sticky write error: once a WAL write
// or sync fails, every subsequent append returns an error satisfying
// errors.Is(err, ErrDegraded) until Probe successfully recovers. The
// daemon keys its degraded read-only mode off this.
var ErrDegraded = errors.New("journal: degraded after write failure")

// Journal is a durable task journal. All methods are safe for
// concurrent use.
//
// Appends are group-committed: a Record* call encodes its record into
// the shared pending buffer under mu, then blocks until the flusher
// goroutine writes the whole buffer with one write(2) — and one fsync,
// when Options.Sync is set — so N concurrent appenders cost one disk
// round trip, not N. A call returns only after its record is durably
// written (modulo the OS page cache when Sync is off), which preserves
// the crash-recovery contract: an acknowledged submission is always
// recoverable.
//
// Lock order: ioMu before mu. ioMu serializes the disk writers (flusher,
// compaction, close); mu protects the in-memory state and the pending
// buffer.
type Journal struct {
	dir  string
	opts Options

	ioMu sync.Mutex // serializes WAL writes, compaction, close
	mu   sync.Mutex

	f    *os.File
	lock *os.File

	// Group-commit state (under mu). pending accumulates encoded frames
	// in append order; spare is the drained buffer the flusher hands
	// back so the two swap forever instead of reallocating. Generations
	// replace per-batch channels: an append joins generation accumGen
	// and waits on flushed (a condvar on mu) until doneGen reaches it,
	// reading its outcome from genErr — no allocation per batch, no
	// channel per flush. flushC (capacity 1) wakes the flusher; quit
	// stops it.
	pending  []byte
	spare    []byte
	accumGen uint64
	doneGen  uint64
	// writeErr is sticky: a WAL write or sync failure poisons the
	// journal (later appends report it immediately) rather than being
	// attributed to exactly one batch — a journal whose disk fails is
	// not a journal to keep trusting.
	writeErr error
	flushed  *sync.Cond
	flushC   chan struct{}
	quit     chan struct{}

	tasks      map[uint64]*TaskRecord
	dataspaces map[string]proto.DataspaceSpec
	nextID     uint64
	walRecords int
	frozen     bool
	closed     bool
	// clean tracks whether the most recently applied record was the
	// clean-shutdown marker: true only when replay ended exactly on it,
	// false again the moment any later record lands.
	clean bool
	// sealed is set by MarkClean after the marker is on disk; Close then
	// skips its final compaction so the marker stays the WAL's last
	// record for the next replay.
	sealed bool

	// failMu guards failWrites, the injected disk fault the degrade-mode
	// tests and lab scenarios use to simulate ENOSPC without an actual
	// full filesystem. Separate from mu because writeWAL runs with only
	// ioMu held.
	failMu     sync.Mutex
	failWrites error
}

// walPath and snapPath locate the journal's two files.
func walPath(dir string) string  { return filepath.Join(dir, "wal") }
func snapPath(dir string) string { return filepath.Join(dir, "snapshot") }

// Open loads (creating if needed) the journal in dir: the snapshot is
// applied first, then the WAL on top of it. A truncated or corrupt WAL
// tail — the signature of a crash mid-append — is discarded; everything
// before it replays.
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		dir:        dir,
		opts:       opts.withDefaults(),
		tasks:      make(map[uint64]*TaskRecord),
		dataspaces: make(map[string]proto.DataspaceSpec),
	}

	// Two daemons appending to one WAL would interleave frames and each
	// compaction would truncate the other's records, so the directory is
	// exclusively flock-ed. The kernel drops the lock when the holder
	// dies, so a crashed daemon never wedges its own restart.
	lock, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("journal: state dir %s is locked by another process: %w", dir, err)
	}
	j.lock = lock
	opened := false
	defer func() {
		if !opened {
			lock.Close() // releases the flock
		}
	}()

	if buf, err := os.ReadFile(snapPath(dir)); err == nil {
		// Snapshots are written to a temp file and renamed, so a partial
		// snapshot means external corruption, not a crash: fail loudly.
		if _, err := j.applyAll(buf, false); err != nil {
			return nil, fmt.Errorf("journal: corrupt snapshot: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.walRecords = 0 // snapshot replay does not count against the WAL bound

	if buf, err := os.ReadFile(walPath(dir)); err == nil {
		good, err := j.applyAll(buf, true)
		if err != nil {
			return nil, fmt.Errorf("journal: corrupt wal: %w", err)
		}
		if good < len(buf) {
			// Drop the partial final record so appends resume cleanly.
			if err := os.Truncate(walPath(dir), int64(good)); err != nil {
				return nil, fmt.Errorf("journal: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: %w", err)
	}

	f, err := os.OpenFile(walPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	for id := range j.tasks {
		if id > j.nextID {
			j.nextID = id
		}
	}
	j.flushC = make(chan struct{}, 1)
	j.quit = make(chan struct{})
	j.flushed = sync.NewCond(&j.mu)
	// Generation 0 is "already flushed" (doneGen's zero value), so the
	// first real generation must be 1.
	j.accumGen = 1
	go j.flushLoop()
	opened = true
	return j, nil
}

// applyAll replays a stream of framed records, returning the offset of
// the last cleanly parsed frame. With tolerateTail set, a truncated
// final frame is not an error (the caller truncates the file there);
// mid-stream decode failures always are.
func (j *Journal) applyAll(buf []byte, tolerateTail bool) (int, error) {
	rest := buf
	for len(rest) > 0 {
		msg, next, err := wire.ParseFrame(rest)
		if err != nil {
			if tolerateTail && errors.Is(err, wire.ErrTruncated) {
				return len(buf) - len(rest), nil
			}
			return len(buf) - len(rest), err
		}
		var rec record
		if err := wire.Unmarshal(msg, &rec); err != nil {
			if tolerateTail {
				// A torn write can also corrupt the payload of the last
				// frame; treat an undecodable tail record like truncation.
				return len(buf) - len(rest), nil
			}
			return len(buf) - len(rest), err
		}
		j.apply(&rec)
		rest = next
		j.walRecords++
	}
	return len(buf), nil
}

// apply folds one record into the in-memory state. Terminal task states
// are sticky: a stale non-terminal record can never resurrect a task
// that already completed.
func (j *Journal) apply(rec *record) {
	// The clean-shutdown marker only counts if it is the final record:
	// any record applied after it (during replay or live operation)
	// means the journal has moved on since that shutdown.
	j.clean = rec.Kind == recShutdown
	switch rec.Kind {
	case recSubmit:
		tr, ok := j.tasks[rec.TaskID]
		if !ok {
			tr = &TaskRecord{ID: rec.TaskID, Status: task.Pending}
			j.tasks[rec.TaskID] = tr
		}
		if rec.Spec != nil {
			tr.Spec = *rec.Spec
		}
		if s := task.Status(rec.Status); s != 0 && !tr.Status.Terminal() {
			tr.Status = s
			tr.Err = rec.Err
			tr.TotalBytes = rec.Total
			tr.MovedBytes = rec.Moved
			tr.SegsTotal = int(rec.SegsTotal)
			tr.SegsDone = int(rec.SegsDone)
			tr.CacheBytes = rec.Cache
			tr.DeltaBytes = rec.Delta
		}
		if rec.SegSize != 0 {
			tr.SegSize = rec.SegSize
			tr.SegPlan = rec.SegPlan
			tr.SegBits = rec.SegBits
		}
		if rec.Attempts != 0 {
			tr.Attempts = rec.Attempts
		}
	case recState:
		tr, ok := j.tasks[rec.TaskID]
		if !ok {
			// State for an unknown task (its submit record was lost):
			// keep it so a terminal state still blocks resurrection.
			tr = &TaskRecord{ID: rec.TaskID}
			j.tasks[rec.TaskID] = tr
		}
		if tr.Status.Terminal() {
			return
		}
		tr.Status = task.Status(rec.Status)
		tr.Err = rec.Err
		if rec.Attempts != 0 {
			tr.Attempts = rec.Attempts
		}
		tr.TotalBytes = rec.Total
		tr.MovedBytes = rec.Moved
		tr.CacheBytes = rec.Cache
		tr.DeltaBytes = rec.Delta
		if tr.Status.Terminal() {
			// A terminal task never resumes; keeping its checkpoint would
			// only bloat every later snapshot. The scalar segment counters
			// stay for status resurrection.
			tr.SegSize, tr.SegPlan, tr.SegBits = 0, 0, nil
			tr.SegsTotal = int(rec.SegsTotal)
			tr.SegsDone = int(rec.SegsDone)
		}
	case recProgress:
		tr, ok := j.tasks[rec.TaskID]
		if !ok || tr.Status.Terminal() {
			return
		}
		tr.SegSize = rec.SegSize
		tr.SegPlan = rec.SegPlan
		tr.SegBits = rec.SegBits
		tr.MovedBytes = rec.Moved
	case recDataspace:
		if rec.DSDel {
			delete(j.dataspaces, rec.DSDelID)
		} else if rec.DS != nil {
			j.dataspaces[rec.DS.ID] = *rec.DS
		}
	case recHeader:
		if rec.NextID > j.nextID {
			j.nextID = rec.NextID
		}
	default:
		// Unknown record kind from a newer build: skip.
	}
}

// enqueueLocked encodes rec into the pending group-commit buffer and
// folds it into the in-memory state. The caller holds j.mu and has
// checked frozen/closed.
func (j *Journal) enqueueLocked(rec *record) error {
	if j.pending == nil && j.spare != nil {
		// Reuse the buffer the flusher handed back, so the two swap
		// forever instead of growing a fresh one every generation.
		j.pending, j.spare = j.spare[:0], nil
	}
	first := len(j.pending) == 0
	buf, err := wire.AppendFrame(j.pending, rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.pending = buf
	if first {
		// First record of this generation: wake the flusher.
		select {
		case j.flushC <- struct{}{}:
		default: // a wake-up is already queued; it will steal this too
		}
	}
	j.apply(rec)
	j.walRecords++
	return nil
}

// waitFlushed blocks until generation gen has been committed (or
// dropped by a freeze), returning the journal's sticky write error.
// The caller holds j.mu; the condition variable releases it while
// waiting. Generations replace the old per-batch channel: joining one
// costs no allocation at all.
func (j *Journal) waitFlushed(gen uint64) error {
	for j.doneGen < gen {
		j.flushed.Wait()
	}
	return j.writeErr
}

// append group-commits one record: encode into the shared pending
// buffer, wait for the flusher's coalesced write, then compact if the
// WAL has grown past the configured bound. A frozen journal drops
// everything silently (see Freeze).
func (j *Journal) append(rec *record) error {
	j.mu.Lock()
	if j.frozen {
		j.mu.Unlock()
		return nil
	}
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if err := j.enqueueLocked(rec); err != nil {
		j.mu.Unlock()
		return err
	}
	gen := j.accumGen
	compact := j.compactDueLocked()
	err := j.waitFlushed(gen)
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if compact {
		return j.maybeCompact()
	}
	return nil
}

// appendBatch group-commits several records with a single wait: all of
// them enter the pending buffer back to back (so replay order matches
// call order) and the caller blocks once for the one coalesced write.
// The daemon's batch-submit path uses this so a 1000-task batch costs
// one disk round trip.
func (j *Journal) appendBatch(recs []*record) error {
	if len(recs) == 0 {
		return nil
	}
	j.mu.Lock()
	if j.frozen {
		j.mu.Unlock()
		return nil
	}
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	for _, rec := range recs {
		if err := j.enqueueLocked(rec); err != nil {
			j.mu.Unlock()
			return err
		}
	}
	gen := j.accumGen
	compact := j.compactDueLocked()
	err := j.waitFlushed(gen)
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if compact {
		return j.maybeCompact()
	}
	return nil
}

// flushLoop is the group-commit flusher: woken by the first append of a
// generation, it optionally lingers for the flush window so co-arriving
// appends pile on, then writes the whole pending buffer with one
// write(2) (+ one fsync with Sync) and releases every waiter.
func (j *Journal) flushLoop() {
	for {
		select {
		case <-j.quit:
			return
		case <-j.flushC:
		}
		if d := j.opts.FlushInterval; d > 0 {
			// The latency knob: wait out the window (or the journal's
			// shutdown) before committing, to coalesce more appends.
			select {
			case <-j.quit:
				// Close drains the pending buffer itself; nothing to do.
				return
			case <-time.After(d):
			}
		} else {
			// Micro-batching: one yield lets appenders that are already
			// runnable join this generation before it is stolen, turning
			// lockstep append-flush-append cycles into real batches at
			// roughly no latency cost.
			runtime.Gosched()
		}
		j.ioMu.Lock()
		j.mu.Lock()
		if len(j.pending) == 0 {
			// An inline flush (compaction, close) beat us to it.
			j.mu.Unlock()
			j.ioMu.Unlock()
			continue
		}
		buf, gen := j.stealLocked()
		frozen, closed := j.frozen, j.closed
		j.mu.Unlock()
		var err error
		if !frozen && !closed {
			err = j.writeWAL(buf)
		}
		j.mu.Lock()
		j.commitLocked(gen, buf, err)
		j.mu.Unlock()
		j.ioMu.Unlock()
	}
}

// stealLocked takes ownership of the pending buffer and opens the next
// generation. Caller holds j.mu.
func (j *Journal) stealLocked() ([]byte, uint64) {
	buf := j.pending
	j.pending = nil
	gen := j.accumGen
	j.accumGen++
	return buf, gen
}

// injectedFault returns the disk fault installed by SetFailWrites, if
// any. Checked by every disk-writing path so an injected ENOSPC behaves
// exactly like a real one.
func (j *Journal) injectedFault() error {
	j.failMu.Lock()
	defer j.failMu.Unlock()
	return j.failWrites
}

// SetFailWrites installs (or, with nil, clears) an injected disk fault:
// while set, every WAL write and snapshot attempt fails with err. The
// degrade-mode tests and the journal-disk-full lab scenario use this to
// simulate a full or failing disk deterministically.
func (j *Journal) SetFailWrites(err error) {
	j.failMu.Lock()
	j.failWrites = err
	j.failMu.Unlock()
}

// writeWAL performs the one coalesced write (and fsync, with Sync) of
// a stolen buffer. Caller holds ioMu (the disk-writer lock).
func (j *Journal) writeWAL(buf []byte) error {
	if err := j.injectedFault(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.opts.Sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	return nil
}

// commitLocked publishes a generation's outcome: doneGen advances, a
// failure poisons writeErr, the drained buffer is kept for reuse, and
// every waiter is woken. Caller holds j.mu.
func (j *Journal) commitLocked(gen uint64, buf []byte, err error) {
	j.doneGen = gen
	if err != nil && j.writeErr == nil {
		// First failure wins and is wrapped so callers can classify it:
		// errors.Is(writeErr, ErrDegraded) holds for every poisoned op.
		j.writeErr = fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	if j.spare == nil && cap(buf) <= maxPendingReuse {
		j.spare = buf[:0]
	}
	j.flushed.Broadcast()
}

// maxPendingReuse bounds the group-commit buffer capacity kept for
// reuse, so one giant batch does not pin its footprint forever.
const maxPendingReuse = 1 << 20

// flushPendingLocked writes the pending buffer inline and releases its
// waiters — the synchronous variant the compaction and close paths use.
// The caller holds ioMu and mu.
func (j *Journal) flushPendingLocked() error {
	if len(j.pending) == 0 {
		return j.writeErr
	}
	buf, gen := j.stealLocked()
	var err error
	if !j.frozen {
		err = j.writeWAL(buf)
	}
	j.commitLocked(gen, buf, err)
	return err
}

// compactDueLocked reports whether the WAL has earned a compaction:
// past the configured bound AND at least as many records as the live
// state a snapshot would have to write. The second condition keeps
// compaction amortized-O(1) per record — without it, a daemon with a
// deep backlog (thousands of live tasks) re-snapshotted its whole
// table every CompactEvery records, turning the journal quadratic
// exactly when the node was busiest. Caller holds j.mu.
func (j *Journal) compactDueLocked() bool {
	return j.walRecords >= j.opts.CompactEvery && j.walRecords >= len(j.tasks)
}

// maybeCompact runs a compaction if the WAL is still past its bound —
// the post-flush trigger. Concurrent appenders that crossed the bound
// together race here benignly: the first compacts, the rest re-check
// and return.
func (j *Journal) maybeCompact() error {
	j.ioMu.Lock()
	defer j.ioMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.frozen || j.closed || !j.compactDueLocked() {
		return nil
	}
	if err := j.flushPendingLocked(); err != nil {
		return err
	}
	return j.compactLocked()
}

// RecordSubmit journals a task submission. Call it before the task
// becomes runnable so a crash cannot lose an accepted task.
func (j *Journal) RecordSubmit(id uint64, spec task.Spec) error {
	j.mu.Lock()
	if id > j.nextID {
		j.nextID = id
	}
	j.mu.Unlock()
	return j.append(&record{Kind: recSubmit, TaskID: id, Spec: &spec})
}

// RecordSubmitBatch journals many task submissions as one group-commit
// batch: the records enter the WAL back to back (replay order matches
// slice order) and the call blocks once for the single coalesced write
// — the journal-side amortization behind OpSubmitBatch. ids and specs
// are parallel slices.
func (j *Journal) RecordSubmitBatch(ids []uint64, specs []task.Spec) error {
	if len(ids) == 0 {
		return nil
	}
	j.mu.Lock()
	for _, id := range ids {
		if id > j.nextID {
			j.nextID = id
		}
	}
	j.mu.Unlock()
	recs := make([]*record, len(ids))
	for i, id := range ids {
		recs[i] = &record{Kind: recSubmit, TaskID: id, Spec: &specs[i]}
	}
	return j.appendBatch(recs)
}

// recordPool recycles the scratch record structs the per-transition
// appends encode through — the struct escapes into the encoder, so
// without the pool every state/progress record allocated one. apply
// copies values out (and may retain the SegBits slice, which is the
// caller's to give), so returning the struct is safe.
var recordPool = sync.Pool{New: func() any { return new(record) }}

// RecordState journals a task state transition.
func (j *Journal) RecordState(id uint64, s task.Status, errMsg string) error {
	rec := recordPool.Get().(*record)
	*rec = record{Kind: recState, TaskID: id, Status: uint32(s), Err: errMsg}
	err := j.append(rec)
	*rec = record{}
	recordPool.Put(rec)
	return err
}

// RecordStats journals a state transition with its byte counters, so a
// restart can resurrect the progress/completion report intact.
func (j *Journal) RecordStats(id uint64, st task.Stats) error {
	rec := recordPool.Get().(*record)
	*rec = record{
		Kind:      recState,
		TaskID:    id,
		Status:    uint32(st.Status),
		Err:       st.Err,
		Total:     st.TotalBytes,
		Moved:     st.MovedBytes,
		SegsTotal: uint32(st.SegmentsTotal),
		SegsDone:  uint32(st.SegmentsDone),
		Cache:     st.CacheBytes,
		Delta:     st.DeltaBytes,
		Attempts:  st.Attempts,
	}
	err := j.append(rec)
	*rec = record{}
	recordPool.Put(rec)
	return err
}

// RecordRetry journals a retry re-queue: the task transitioned back to
// Pending with its attempt counter bumped. Journaling the counter is
// what makes the retry budget durable — a daemon restart resumes the
// schedule at attempt N instead of granting a fresh budget.
func (j *Journal) RecordRetry(id uint64, attempts uint64, errMsg string) error {
	rec := recordPool.Get().(*record)
	*rec = record{
		Kind:     recState,
		TaskID:   id,
		Status:   uint32(task.Pending),
		Err:      errMsg,
		Attempts: attempts,
	}
	err := j.append(rec)
	*rec = record{}
	recordPool.Put(rec)
	return err
}

// RecordProgress checkpoints a running transfer's segment bitmap so a
// crash-restart resumes from the completed segments instead of
// re-copying the whole file. planBytes is the planned transfer size —
// the checkpoint's identity alongside segSize; moved is the task's
// MovedBytes at the checkpoint, kept for journal observability (the
// resumed task counts only its own newly moved bytes; resume
// correctness comes from the bitmap and plan alone).
func (j *Journal) RecordProgress(id uint64, segSize, planBytes int64, bits []byte, moved int64) error {
	rec := recordPool.Get().(*record)
	*rec = record{
		Kind:    recProgress,
		TaskID:  id,
		SegSize: segSize,
		SegPlan: planBytes,
		SegBits: bits,
		Moved:   moved,
	}
	err := j.append(rec)
	*rec = record{}
	recordPool.Put(rec)
	return err
}

// RecordDataspace journals a dataspace registration or update, so
// recovered tasks find their tiers after a restart.
func (j *Journal) RecordDataspace(spec proto.DataspaceSpec) error {
	spec.UsedBytes = 0 // live usage, not configuration
	return j.append(&record{Kind: recDataspace, DS: &spec})
}

// RecordDataspaceRemoved journals a dataspace unregistration.
func (j *Journal) RecordDataspaceRemoved(id string) error {
	return j.append(&record{Kind: recDataspace, DSDel: true, DSDelID: id})
}

// Tasks returns the journaled tasks sorted by ID.
func (j *Journal) Tasks() []TaskRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]TaskRecord, 0, len(j.tasks))
	for _, tr := range j.tasks {
		out = append(out, *tr)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Dataspaces returns the journaled dataspace configurations sorted by ID.
func (j *Journal) Dataspaces() []proto.DataspaceSpec {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]proto.DataspaceSpec, 0, len(j.dataspaces))
	for _, ds := range j.dataspaces {
		out = append(out, ds)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// NextID returns the highest task ID the journal has seen; a restarted
// daemon continues the ID space from here so recovered and new tasks
// never collide.
func (j *Journal) NextID() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextID
}

// WALRecords reports how many records the current WAL holds (resets to
// zero at compaction) — a bound the compaction tests assert on.
func (j *Journal) WALRecords() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.walRecords
}

// Compact writes the live state as a fresh snapshot and truncates the
// WAL. Terminal tasks beyond the RetainTerminal newest are dropped.
func (j *Journal) Compact() error {
	j.ioMu.Lock()
	defer j.ioMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.frozen {
		return nil
	}
	if j.closed {
		return ErrClosed
	}
	// Records still waiting on the flusher must reach the WAL (and their
	// waiters must be released) before it is truncated.
	if err := j.flushPendingLocked(); err != nil {
		return err
	}
	return j.compactLocked()
}

// compactLocked implements Compact; the caller holds ioMu and j.mu, and
// has flushed the pending group-commit buffer.
func (j *Journal) compactLocked() error {
	if err := j.injectedFault(); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	// Garbage-collect old terminal tasks before the state is written out.
	var terminal []uint64
	for id, tr := range j.tasks {
		if tr.Status.Terminal() {
			terminal = append(terminal, id)
		}
	}
	if len(terminal) > j.opts.RetainTerminal {
		sort.Slice(terminal, func(a, b int) bool { return terminal[a] > terminal[b] })
		for _, id := range terminal[j.opts.RetainTerminal:] {
			delete(j.tasks, id)
		}
	}

	tmpPath := snapPath(j.dir) + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	// The snapshot is assembled in memory and written with one syscall —
	// the same frame-building path the group-commit buffer uses.
	var buf []byte
	var rec record
	rec = record{Kind: recHeader, NextID: j.nextID}
	buf, werr := wire.AppendFrame(buf, &rec)
	for _, ds := range j.dataspaces {
		if werr != nil {
			break
		}
		spec := ds
		rec = record{Kind: recDataspace, DS: &spec}
		buf, werr = wire.AppendFrame(buf, &rec)
	}
	for _, tr := range j.tasks {
		if werr != nil {
			break
		}
		rec = record{
			Kind:      recSubmit,
			TaskID:    tr.ID,
			Spec:      &tr.Spec,
			Status:    uint32(tr.Status),
			Err:       tr.Err,
			Total:     tr.TotalBytes,
			Moved:     tr.MovedBytes,
			SegSize:   tr.SegSize,
			SegPlan:   tr.SegPlan,
			SegBits:   tr.SegBits,
			SegsTotal: uint32(tr.SegsTotal),
			SegsDone:  uint32(tr.SegsDone),
			Cache:     tr.CacheBytes,
			Delta:     tr.DeltaBytes,
			Attempts:  tr.Attempts,
		}
		buf, werr = wire.AppendFrame(buf, &rec)
	}
	if werr == nil {
		_, werr = tmp.Write(buf)
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: snapshot: %w", werr)
	}
	if err := os.Rename(tmpPath, snapPath(j.dir)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: %w", err)
	}
	// The rename must be durable before the WAL is truncated: if the
	// directory entry were lost to a crash after the truncate, the next
	// Open would see a stale snapshot and an empty WAL — losing the
	// whole task table, not just a tail.
	if err := syncDir(j.dir); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.walRecords = 0
	return nil
}

// syncDir fsyncs a directory, making its entries (renames) durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the state directory the journal persists into, so crash
// harnesses can bundle it (or reopen it) for replay.
func (j *Journal) Dir() string { return j.dir }

// WriteErr returns the journal's sticky write error, nil while healthy.
// Non-nil means every append is failing and the daemon should shed new
// durable work; the error satisfies errors.Is(err, ErrDegraded).
func (j *Journal) WriteErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeErr
}

// Probe attempts to recover a degraded journal. The in-memory state is
// always a superset of what reached disk (appends fold into memory
// before the failed write), so recovery is a compaction: write a fresh
// snapshot from memory, truncate the possibly-torn WAL, and — only if
// all of that succeeds — clear the sticky write error. Returns nil when
// the journal is healthy again (or was never degraded), else the error
// that keeps it degraded. The daemon polls this from its degrade-mode
// probe loop.
func (j *Journal) Probe() error {
	j.ioMu.Lock()
	defer j.ioMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.frozen || j.writeErr == nil {
		return nil
	}
	// Records stuck in the pending buffer were already folded into the
	// in-memory state; the snapshot below is their durability. Commit
	// them without touching the broken WAL so their waiters are released
	// (they read writeErr, which stays poisoned until recovery succeeds).
	if len(j.pending) > 0 {
		buf, gen := j.stealLocked()
		j.commitLocked(gen, buf, nil)
	}
	if err := j.compactLocked(); err != nil {
		return err
	}
	j.writeErr = nil
	return nil
}

// MarkClean seals the journal for a graceful shutdown: flush, compact,
// then write the clean-shutdown marker as the WAL's only record. The
// next Open replays the snapshot plus the lone marker and reports
// Clean() == true — the fast-replay signal that no task state was in
// flight. After MarkClean, Close skips its usual compaction so the
// marker stays last; the caller must not append afterwards.
func (j *Journal) MarkClean() error {
	j.ioMu.Lock()
	defer j.ioMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.frozen {
		return nil
	}
	if j.closed {
		return ErrClosed
	}
	if err := j.flushPendingLocked(); err != nil {
		return err
	}
	if j.writeErr != nil {
		// A degraded journal cannot promise a clean state; leave the
		// marker out and let the next open replay defensively.
		return j.writeErr
	}
	if err := j.compactLocked(); err != nil {
		return err
	}
	rec := record{Kind: recShutdown}
	buf, err := wire.AppendFrame(nil, &rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.writeWAL(buf); err != nil {
		return err
	}
	j.walRecords++
	j.clean = true
	j.sealed = true
	return nil
}

// Clean reports whether the journal currently ends on the clean-shutdown
// marker. Read it right after Open: true means the previous daemon
// drained and sealed before exiting, so replay found no in-flight work.
func (j *Journal) Clean() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.clean
}

// Freeze silently drops every subsequent append and compaction,
// simulating the daemon process dying at this instant: later state
// changes never reach disk. It is the crash-injection hook the recovery
// tests use; a frozen journal never thaws.
func (j *Journal) Freeze() {
	j.mu.Lock()
	j.frozen = true
	j.mu.Unlock()
}

// Close flushes any pending group-commit batch, compacts the journal
// (bounding the next open's replay), stops the flusher, and releases
// the WAL file. Further appends fail with ErrClosed.
func (j *Journal) Close() error {
	j.ioMu.Lock()
	defer j.ioMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	close(j.quit)
	// Drain the pending buffer inline (releasing its waiters) before the
	// WAL file goes away; the flusher, if mid-cycle, blocks on ioMu and
	// then finds nothing to do.
	err := j.flushPendingLocked()
	j.closed = true
	if !j.frozen && !j.sealed {
		if cerr := j.compactLocked(); err == nil {
			err = cerr
		}
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	if cerr := j.lock.Close(); err == nil { // releases the flock
		err = cerr
	}
	return err
}
