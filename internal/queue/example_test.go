package queue_test

import (
	"fmt"

	"github.com/ngioproject/norns-go/internal/queue"
	"github.com/ngioproject/norns-go/internal/task"
)

// ExampleSJF shows size-aware arbitration: the smallest transfer runs
// first regardless of arrival order.
func ExampleSJF() {
	q := queue.New(queue.NewSJF(nil))
	sizes := []int{300, 100, 200}
	for i, n := range sizes {
		t := task.New(uint64(i+1), task.Copy,
			task.MemoryRegion(make([]byte, n)),
			task.PosixPath("nvme0://", fmt.Sprintf("f%d", i)))
		_ = q.Submit(t)
	}
	q.Close()
	for t := q.Next(); t != nil; t = q.Next() {
		fmt.Println(len(t.Input.Data))
	}
	// Output:
	// 100
	// 200
	// 300
}

// ExampleFairShare shows per-job round-robin: job 2's task is not
// starved behind job 1's backlog.
func ExampleFairShare() {
	q := queue.New(queue.NewFairShare())
	mk := func(id, job uint64) *task.Task {
		t := task.New(id, task.NoOp, task.Resource{}, task.Resource{})
		t.JobID = job
		return t
	}
	_ = q.Submit(mk(1, 1))
	_ = q.Submit(mk(2, 1))
	_ = q.Submit(mk(3, 1))
	_ = q.Submit(mk(4, 2))
	q.Close()
	for t := q.Next(); t != nil; t = q.Next() {
		fmt.Printf("task %d (job %d)\n", t.ID, t.JobID)
	}
	// Output:
	// task 1 (job 1)
	// task 4 (job 2)
	// task 2 (job 1)
	// task 3 (job 1)
}
