package queue

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/ngioproject/norns-go/internal/task"
)

func memTask(id uint64, size int) *task.Task {
	return task.New(id, task.Copy, task.MemoryRegion(make([]byte, size)), task.PosixPath("d://", "p"))
}

func TestFCFSOrder(t *testing.T) {
	p := NewFCFS()
	for i := uint64(1); i <= 5; i++ {
		p.Push(memTask(i, int(i)))
	}
	if p.Len() != 5 {
		t.Fatalf("Len = %d", p.Len())
	}
	for i := uint64(1); i <= 5; i++ {
		got := p.Pop()
		if got == nil || got.ID != i {
			t.Fatalf("Pop %d = %v", i, got)
		}
	}
	if p.Pop() != nil {
		t.Fatal("Pop on empty != nil")
	}
}

func TestSJFOrder(t *testing.T) {
	p := NewSJF(nil)
	p.Push(memTask(1, 300))
	p.Push(memTask(2, 100))
	p.Push(memTask(3, 200))
	want := []uint64{2, 3, 1}
	for _, id := range want {
		if got := p.Pop(); got.ID != id {
			t.Fatalf("Pop = %d, want %d", got.ID, id)
		}
	}
}

func TestSJFTieBreaksFIFO(t *testing.T) {
	p := NewSJF(nil)
	p.Push(memTask(1, 100))
	p.Push(memTask(2, 100))
	p.Push(memTask(3, 100))
	for _, id := range []uint64{1, 2, 3} {
		if got := p.Pop(); got.ID != id {
			t.Fatalf("tie order: got %d, want %d", got.ID, id)
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	p := NewPriority()
	low := memTask(1, 1)
	low.Priority = 1
	hi := memTask(2, 1)
	hi.Priority = 10
	mid := memTask(3, 1)
	mid.Priority = 5
	p.Push(low)
	p.Push(hi)
	p.Push(mid)
	for _, id := range []uint64{2, 3, 1} {
		if got := p.Pop(); got.ID != id {
			t.Fatalf("priority order: got %d, want %d", got.ID, id)
		}
	}
}

func TestPriorityFIFOWithinLevel(t *testing.T) {
	p := NewPriority()
	for i := uint64(1); i <= 3; i++ {
		tk := memTask(i, 1)
		tk.Priority = 7
		p.Push(tk)
	}
	for _, id := range []uint64{1, 2, 3} {
		if got := p.Pop(); got.ID != id {
			t.Fatalf("FIFO within level: got %d, want %d", got.ID, id)
		}
	}
}

func TestFairShareRoundRobin(t *testing.T) {
	p := NewFairShare()
	mk := func(id, job uint64) *task.Task {
		tk := memTask(id, 1)
		tk.JobID = job
		return tk
	}
	// Job 1 floods first; job 2 submits later but must interleave.
	p.Push(mk(1, 1))
	p.Push(mk(2, 1))
	p.Push(mk(3, 1))
	p.Push(mk(4, 2))
	p.Push(mk(5, 2))
	var got []uint64
	for tk := p.Pop(); tk != nil; tk = p.Pop() {
		got = append(got, tk.ID)
	}
	want := []uint64{1, 4, 2, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("drained %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFairShareSingleJobIsFIFO(t *testing.T) {
	p := NewFairShare()
	for i := uint64(1); i <= 4; i++ {
		p.Push(memTask(i, 1))
	}
	for i := uint64(1); i <= 4; i++ {
		if got := p.Pop(); got.ID != i {
			t.Fatalf("got %d, want %d", got.ID, i)
		}
	}
}

// TestPolicyConservation: every policy returns exactly the tasks pushed,
// each once, regardless of interleaving.
func TestPolicyConservation(t *testing.T) {
	mk := map[string]func() Policy{
		"fcfs":     func() Policy { return NewFCFS() },
		"sjf":      func() Policy { return NewSJF(nil) },
		"priority": func() Policy { return NewPriority() },
		"fair":     func() Policy { return NewFairShare() },
	}
	for name, factory := range mk {
		t.Run(name, func(t *testing.T) {
			f := func(sizes []uint8, jobs []uint8) bool {
				p := factory()
				n := len(sizes)
				if n > 50 {
					n = 50
				}
				seen := make(map[uint64]bool)
				for i := 0; i < n; i++ {
					tk := memTask(uint64(i+1), int(sizes[i])+1)
					if i < len(jobs) {
						tk.JobID = uint64(jobs[i] % 4)
					}
					tk.Priority = int(sizes[i] % 5)
					p.Push(tk)
				}
				count := 0
				for tk := p.Pop(); tk != nil; tk = p.Pop() {
					if seen[tk.ID] {
						return false // duplicate
					}
					seen[tk.ID] = true
					count++
				}
				return count == n && p.Len() == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQueueBlockingNext(t *testing.T) {
	q := New(nil)
	got := make(chan *task.Task, 1)
	go func() { got <- q.Next() }()
	select {
	case <-got:
		t.Fatal("Next returned before Submit")
	case <-time.After(10 * time.Millisecond):
	}
	if err := q.Submit(memTask(1, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case tk := <-got:
		if tk.ID != 1 {
			t.Fatalf("got task %d", tk.ID)
		}
	case <-time.After(time.Second):
		t.Fatal("Next never returned")
	}
}

func TestQueueClose(t *testing.T) {
	q := New(nil)
	if err := q.Submit(memTask(1, 1)); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if err := q.Submit(memTask(2, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v", err)
	}
	// Drain remaining, then nil.
	if tk := q.Next(); tk == nil || tk.ID != 1 {
		t.Fatalf("Next after close = %v", tk)
	}
	if tk := q.Next(); tk != nil {
		t.Fatalf("Next on drained closed queue = %v", tk)
	}
}

func TestQueueCloseWakesWaiters(t *testing.T) {
	q := New(nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tk := q.Next(); tk != nil {
				t.Errorf("waiter got task %v", tk.ID)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close did not wake waiters")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := New(NewFairShare())
	const producers, perProducer = 4, 100
	var consumed sync.Map
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tk := q.Next()
				if tk == nil {
					return
				}
				if _, dup := consumed.LoadOrStore(tk.ID, true); dup {
					t.Errorf("task %d consumed twice", tk.ID)
				}
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				tk := memTask(uint64(p*perProducer+i+1), 1)
				tk.JobID = uint64(p)
				if err := q.Submit(tk); err != nil {
					t.Errorf("Submit: %v", err)
				}
			}
		}(p)
	}
	pwg.Wait()
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	wg.Wait()
	n := 0
	consumed.Range(func(_, _ any) bool { n++; return true })
	if n != producers*perProducer {
		t.Fatalf("consumed %d tasks, want %d", n, producers*perProducer)
	}
}

func TestQueueTryNext(t *testing.T) {
	q := New(nil)
	if tk := q.TryNext(); tk != nil {
		t.Fatal("TryNext on empty queue != nil")
	}
	if err := q.Submit(memTask(1, 1)); err != nil {
		t.Fatal(err)
	}
	if tk := q.TryNext(); tk == nil || tk.ID != 1 {
		t.Fatalf("TryNext = %v", tk)
	}
}

func TestQueuePolicyName(t *testing.T) {
	if New(nil).PolicyName() != "fcfs" {
		t.Fatal("default policy is not fcfs")
	}
	if New(NewSJF(nil)).PolicyName() != "sjf" {
		t.Fatal("sjf name")
	}
}

func BenchmarkQueueSubmitNext(b *testing.B) {
	q := New(nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := q.Submit(memTask(1, 1)); err != nil {
				b.Fatal(err)
			}
			q.Next()
		}
	})
}

func TestPolicyRemove(t *testing.T) {
	policies := map[string]func() Policy{
		"fcfs":       func() Policy { return NewFCFS() },
		"sjf":        func() Policy { return NewSJF(nil) },
		"priority":   func() Policy { return NewPriority() },
		"fair-share": func() Policy { return NewFairShare() },
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			p := mk()
			for i := uint64(1); i <= 5; i++ {
				tk := memTask(i, int(i)*100)
				tk.JobID = i % 2 // exercise fair-share's per-job lists
				tk.Priority = int(i)
				p.Push(tk)
			}
			got := p.Remove(3)
			if got == nil || got.ID != 3 {
				t.Fatalf("Remove(3) = %v", got)
			}
			if p.Remove(3) != nil {
				t.Fatal("second Remove(3) found the task again")
			}
			if p.Remove(99) != nil {
				t.Fatal("Remove of unknown ID != nil")
			}
			if p.Len() != 4 {
				t.Fatalf("Len after Remove = %d", p.Len())
			}
			seen := map[uint64]bool{}
			for tk := p.Pop(); tk != nil; tk = p.Pop() {
				seen[tk.ID] = true
			}
			for _, id := range []uint64{1, 2, 4, 5} {
				if !seen[id] {
					t.Fatalf("task %d lost after Remove (saw %v)", id, seen)
				}
			}
			if seen[3] {
				t.Fatal("removed task still popped")
			}
		})
	}
}

func TestQueueRemove(t *testing.T) {
	q := New(nil)
	for i := uint64(1); i <= 3; i++ {
		if err := q.Submit(memTask(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if tk := q.Remove(2); tk == nil || tk.ID != 2 {
		t.Fatalf("Remove(2) = %v", tk)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if tk := q.Remove(2); tk != nil {
		t.Fatalf("double Remove = %v", tk)
	}
}

func TestBoundedQueueBackpressure(t *testing.T) {
	q := NewBounded(NewFCFS(), 2)
	for i := uint64(1); i <= 2; i++ {
		if err := q.Submit(memTask(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Submit(memTask(3, 1)); !errors.Is(err, ErrFull) {
		t.Fatalf("Submit over capacity: %v", err)
	}
	// Both draining and cancellation-removal free capacity.
	if q.TryNext() == nil {
		t.Fatal("TryNext on full queue = nil")
	}
	if err := q.Submit(memTask(3, 1)); err != nil {
		t.Fatalf("Submit after drain: %v", err)
	}
	if q.Remove(2) == nil {
		t.Fatal("Remove(2) = nil")
	}
	if err := q.Submit(memTask(4, 1)); err != nil {
		t.Fatalf("Submit after Remove: %v", err)
	}
}

// TestRequeueBypassesBound: Requeue is the journal-recovery path — it
// must admit tasks past the capacity bound (the dead daemon already
// accepted them) while Submit keeps rejecting new load.
func TestRequeueBypassesBound(t *testing.T) {
	q := NewBounded(NewFCFS(), 1)
	if err := q.Submit(task.New(1, task.NoOp, task.Resource{}, task.Resource{})); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(task.New(2, task.NoOp, task.Resource{}, task.Resource{})); err != ErrFull {
		t.Fatalf("second Submit = %v, want ErrFull", err)
	}
	if err := q.Requeue(task.New(3, task.NoOp, task.Resource{}, task.Resource{})); err != nil {
		t.Fatalf("Requeue past bound = %v, want nil", err)
	}
	if got := q.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	q.Close()
	if err := q.Requeue(task.New(4, task.NoOp, task.Resource{}, task.Resource{})); err != ErrClosed {
		t.Fatalf("Requeue after close = %v, want ErrClosed", err)
	}
}
