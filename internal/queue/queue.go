// Package queue implements the urd daemon's pending-task queue and the
// arbitration policies that order task execution. The paper ships FCFS
// as the default policy and explicitly designs the component for other
// strategies to be plugged in; this package provides FCFS plus the
// shortest-job-first, priority, and per-job fair-share policies our
// ablation benchmarks compare.
package queue

import (
	"container/heap"
	"errors"
	"sync"

	"github.com/ngioproject/norns-go/internal/task"
)

// Policy orders pending tasks. Implementations are not safe for
// concurrent use; Queue serializes access.
type Policy interface {
	// Name identifies the policy ("fcfs", "sjf", ...).
	Name() string
	// Push adds a pending task.
	Push(t *task.Task)
	// Pop removes and returns the next task, or nil when empty.
	Pop() *task.Task
	// Remove extracts the task with the given ID without executing it
	// (cancellation of a pending task), returning nil when absent.
	Remove(id uint64) *task.Task
	// Len returns the number of pending tasks.
	Len() int
}

// SizeFunc estimates a task's transfer size for size-aware policies.
type SizeFunc func(*task.Task) int64

// ResourceSize is the default SizeFunc: the declared size of memory
// inputs, zero otherwise (path sizes are unknown until execution).
func ResourceSize(t *task.Task) int64 {
	in := t.Input
	if in.Kind == task.Memory {
		if in.Data != nil {
			return int64(len(in.Data))
		}
		return in.Size
	}
	return 0
}

// --- FCFS ---

// FCFS executes tasks in arrival order (the paper's default). It is a
// sliding window over one reusable backing array: the old
// `items = items[1:]` pop leaked capacity with every slide, so a busy
// queue reallocated (and re-copied) its array over and over; tracking a
// head index instead lets a drained queue rewind to the same array
// forever.
type FCFS struct {
	items []*task.Task
	head  int
}

// NewFCFS returns a first-come-first-served policy.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Policy.
func (f *FCFS) Name() string { return "fcfs" }

// Push implements Policy.
func (f *FCFS) Push(t *task.Task) { f.items = append(f.items, t) }

// Pop implements Policy.
func (f *FCFS) Pop() *task.Task {
	if f.head == len(f.items) {
		return nil
	}
	t := f.items[f.head]
	f.items[f.head] = nil
	f.head++
	f.compact()
	return t
}

// compact rewinds an emptied window to the front of the backing array,
// and slides a long-lived non-empty one down once the dead prefix
// dominates, so capacity is reused instead of leaked.
func (f *FCFS) compact() {
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
		return
	}
	if f.head > 1024 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		for i := n; i < len(f.items); i++ {
			f.items[i] = nil
		}
		f.items = f.items[:n]
		f.head = 0
	}
}

// Remove implements Policy.
func (f *FCFS) Remove(id uint64) *task.Task {
	for i := f.head; i < len(f.items); i++ {
		if f.items[i].ID == id {
			t := f.items[i]
			f.items = append(f.items[:i], f.items[i+1:]...)
			return t
		}
	}
	return nil
}

// Len implements Policy.
func (f *FCFS) Len() int { return len(f.items) - f.head }

// --- ordered heap shared by SJF and Priority ---

type heapItem struct {
	t   *task.Task
	key int64
	seq int64
}

type taskHeap struct {
	items []heapItem
	// less returns true when a should run before b.
	less func(a, b heapItem) bool
}

func (h *taskHeap) Len() int           { return len(h.items) }
func (h *taskHeap) Less(i, j int) bool { return h.less(h.items[i], h.items[j]) }
func (h *taskHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *taskHeap) Push(x any)         { h.items = append(h.items, x.(heapItem)) }
func (h *taskHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	old[n-1] = heapItem{}
	h.items = old[:n-1]
	return it
}

// remove extracts the item holding task id, restoring heap order.
func (h *taskHeap) remove(id uint64) *task.Task {
	for i := range h.items {
		if h.items[i].t.ID == id {
			return heap.Remove(h, i).(heapItem).t
		}
	}
	return nil
}

// --- SJF ---

// SJF executes the smallest estimated transfer first, breaking ties by
// arrival order. Favors request latency at the risk of starving large
// staging tasks under sustained load.
type SJF struct {
	h    taskHeap
	size SizeFunc
	seq  int64
}

// NewSJF returns a shortest-job-first policy using size (nil selects
// ResourceSize).
func NewSJF(size SizeFunc) *SJF {
	if size == nil {
		size = ResourceSize
	}
	s := &SJF{size: size}
	s.h.less = func(a, b heapItem) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.seq < b.seq
	}
	return s
}

// Name implements Policy.
func (s *SJF) Name() string { return "sjf" }

// Push implements Policy.
func (s *SJF) Push(t *task.Task) {
	s.seq++
	heap.Push(&s.h, heapItem{t: t, key: s.size(t), seq: s.seq})
}

// Pop implements Policy.
func (s *SJF) Pop() *task.Task {
	if s.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&s.h).(heapItem).t
}

// Remove implements Policy.
func (s *SJF) Remove(id uint64) *task.Task { return s.h.remove(id) }

// Len implements Policy.
func (s *SJF) Len() int { return s.h.Len() }

// --- Priority ---

// Priority executes the highest task.Priority first, FIFO within a
// priority level. The Slurm extensions raise the priority of staging
// tasks whose jobs are closest to their scheduled start.
type Priority struct {
	h   taskHeap
	seq int64
}

// NewPriority returns a priority policy.
func NewPriority() *Priority {
	p := &Priority{}
	p.h.less = func(a, b heapItem) bool {
		if a.key != b.key {
			return a.key > b.key // higher priority first
		}
		return a.seq < b.seq
	}
	return p
}

// Name implements Policy.
func (p *Priority) Name() string { return "priority" }

// Push implements Policy.
func (p *Priority) Push(t *task.Task) {
	p.seq++
	heap.Push(&p.h, heapItem{t: t, key: int64(t.Priority), seq: p.seq})
}

// Pop implements Policy.
func (p *Priority) Pop() *task.Task {
	if p.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&p.h).(heapItem).t
}

// Remove implements Policy.
func (p *Priority) Remove(id uint64) *task.Task { return p.h.remove(id) }

// Len implements Policy.
func (p *Priority) Len() int { return p.h.Len() }

// --- FairShare ---

// FairShare round-robins across job IDs so one chatty job cannot starve
// the staging traffic of others, FIFO within a job.
type FairShare struct {
	order   []uint64 // round-robin ring of job IDs with pending work
	pending map[uint64][]*task.Task
	next    int
	n       int
}

// NewFairShare returns a per-job fair-share policy.
func NewFairShare() *FairShare {
	return &FairShare{pending: make(map[uint64][]*task.Task)}
}

// Name implements Policy.
func (f *FairShare) Name() string { return "fair-share" }

// Push implements Policy.
func (f *FairShare) Push(t *task.Task) {
	q, ok := f.pending[t.JobID]
	if !ok {
		f.order = append(f.order, t.JobID)
	}
	f.pending[t.JobID] = append(q, t)
	f.n++
}

// Pop implements Policy.
func (f *FairShare) Pop() *task.Task {
	if f.n == 0 {
		return nil
	}
	for {
		if f.next >= len(f.order) {
			f.next = 0
		}
		jid := f.order[f.next]
		q := f.pending[jid]
		if len(q) == 0 {
			// Job drained: drop it from the ring.
			f.order = append(f.order[:f.next], f.order[f.next+1:]...)
			delete(f.pending, jid)
			continue
		}
		t := q[0]
		q[0] = nil
		f.pending[jid] = q[1:]
		f.n--
		f.next++
		return t
	}
}

// Remove implements Policy.
func (f *FairShare) Remove(id uint64) *task.Task {
	for jid, q := range f.pending {
		for i, t := range q {
			if t.ID == id {
				f.pending[jid] = append(q[:i:i], q[i+1:]...)
				f.n--
				// An emptied per-job list is reaped lazily by Pop, which
				// also drops the job from the round-robin ring.
				return t
			}
		}
	}
	return nil
}

// Len implements Policy.
func (f *FairShare) Len() int { return f.n }

// --- Queue ---

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("queue: closed")

// ErrFull is returned by Submit when a bounded queue is at capacity —
// the backpressure signal the daemon's shards surface to clients.
var ErrFull = errors.New("queue: full")

// Queue is the concurrency-safe pending-task queue: the accept loop
// submits, worker goroutines block on Next. Ordering is delegated to the
// configured Policy.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	policy Policy
	// cap bounds the number of pending tasks (0 = unbounded).
	cap    int
	closed bool
}

// New returns an unbounded queue over the given policy (nil selects
// FCFS).
func New(policy Policy) *Queue { return NewBounded(policy, 0) }

// NewBounded returns a queue holding at most capacity pending tasks
// (capacity <= 0 means unbounded); Submit returns ErrFull beyond it.
func NewBounded(policy Policy, capacity int) *Queue {
	if policy == nil {
		policy = NewFCFS()
	}
	if capacity < 0 {
		capacity = 0
	}
	q := &Queue{policy: policy, cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// PolicyName returns the active policy's name.
func (q *Queue) PolicyName() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.policy.Name()
}

// Submit enqueues a pending task.
func (q *Queue) Submit(t *task.Task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.cap > 0 && q.policy.Len() >= q.cap {
		return ErrFull
	}
	q.policy.Push(t)
	q.cond.Signal()
	return nil
}

// Requeue enqueues a task ignoring the capacity bound. It exists for
// journal recovery: re-queued tasks are pre-crash obligations that were
// already admitted once, so they must not be dropped because the bound
// happens to be lower than what the dead daemon had accepted.
func (q *Queue) Requeue(t *task.Task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.policy.Push(t)
	q.cond.Signal()
	return nil
}

// Remove extracts a pending task by ID without executing it, returning
// nil if the task is not queued (already popped, or never submitted).
func (q *Queue) Remove(id uint64) *task.Task {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.policy.Remove(id)
}

// Next blocks until a task is available or the queue closes, returning
// nil in the latter case.
func (q *Queue) Next() *task.Task {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if t := q.policy.Pop(); t != nil {
			return t
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// TryNext returns the next task without blocking, or nil.
func (q *Queue) TryNext() *task.Task {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.policy.Pop()
}

// Len returns the number of pending tasks.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.policy.Len()
}

// Close wakes all waiters; subsequent Submits fail and Next drains the
// remaining tasks before returning nil.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
